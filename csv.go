package dbs3

import (
	"fmt"
	"io"
	"strings"

	"dbs3/internal/partition"
	"dbs3/internal/relation"
)

// LoadCSV reads a relation from CSV (header row of "name:TYPE" column specs,
// TYPE = INT or STRING) and registers it hash-partitioned on key into degree
// fragments. User data enters the engine exactly like the generated
// benchmarks: statically partitioned, ready for parallel plans.
func (db *Database) LoadCSV(name string, r io.Reader, key string, degree int) error {
	rel, err := relation.ReadCSV(name, r)
	if err != nil {
		return err
	}
	h, err := partition.NewHash(rel.Schema, []string{key}, degree)
	if err != nil {
		return err
	}
	p, err := partition.Partition(rel, h, 1)
	if err != nil {
		return err
	}
	return db.register(p, h)
}

// DumpCSV writes a registered relation as CSV.
func (db *Database) DumpCSV(name string, w io.Writer) error {
	db.mu.RLock()
	p, ok := db.rels[name]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("dbs3: no relation %q", name)
	}
	return p.Union().WriteCSV(w)
}

// String renders the materialized result as an aligned text table with the
// FormatStats footer of scheduling statistics.
func (r *Result) String() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Data))
	for ri, row := range r.Data {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := fmt.Sprint(v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteString("\n")
	}
	writeRow(r.Columns)
	for _, row := range cells {
		writeRow(row)
	}
	b.WriteString(FormatStats(len(r.Data), r.Threads, r.ChainThreads, r.Operators))
	return b.String()
}
