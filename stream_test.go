package dbs3

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPreparedStatementReuse: Prepare compiles once; repeated executions of
// the same Stmt reuse the bound plan, and the cache-hit counters make the
// skipped recompilation observable for ad-hoc queries too.
func TestPreparedStatementReuse(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 2000, 8, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	m := db.Manager(ManagerConfig{Budget: 4})

	stmt, err := db.Prepare("SELECT unique2 FROM wisc WHERE unique1 < 100", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cols := stmt.Columns(); len(cols) != 1 || cols[0] != "unique2" {
		t.Fatalf("Columns = %v", cols)
	}
	hits0, misses0 := db.PlanCacheStats()
	if hits0 != 0 || misses0 != 1 {
		t.Fatalf("after Prepare: hits/misses = %d/%d, want 0/1", hits0, misses0)
	}
	for i := 0; i < 3; i++ {
		rows, err := stmt.Query()
		if err != nil {
			t.Fatal(err)
		}
		res, err := rows.All()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Data) != 100 {
			t.Fatalf("execution %d: %d rows, want 100", i, len(res.Data))
		}
	}
	// Stmt executions never touch the compiler or the cache.
	if hits, misses := db.PlanCacheStats(); hits != hits0 || misses != misses0 {
		t.Errorf("Stmt executions changed cache counters: %d/%d", hits, misses)
	}

	// An ad-hoc query for the same SQL + join algo hits the cached plan —
	// the repeated statement skips recompilation, observably.
	if _, err := db.QueryAll("SELECT unique2 FROM wisc WHERE unique1 < 100", nil); err != nil {
		t.Fatal(err)
	}
	hits, misses := db.PlanCacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("after ad-hoc repeat: hits/misses = %d/%d, want 1/1", hits, misses)
	}
	if st := m.Stats(); st.PlanCacheHits != 1 || st.PlanCacheMisses != 1 {
		t.Errorf("manager mirror: hits/misses = %d/%d, want 1/1", st.PlanCacheHits, st.PlanCacheMisses)
	}

	// A different join algorithm compiles a different plan.
	if _, err := db.QueryAll("SELECT unique2 FROM wisc WHERE unique1 < 100", &Options{JoinAlgo: "nested-loop"}); err != nil {
		t.Fatal(err)
	}
	if _, misses := db.PlanCacheStats(); misses != 2 {
		t.Errorf("distinct join algo should miss: misses = %d, want 2", misses)
	}
}

// TestPlanCacheInvalidationAfterDDL: relation creation bumps the catalog
// epoch, so cached plans recompile instead of serving pre-DDL bindings.
func TestPlanCacheInvalidationAfterDDL(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 1000, 4, "unique2", 1); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT unique2 FROM wisc WHERE unique1 < 10"
	if _, err := db.QueryAll(sql, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryAll(sql, nil); err != nil {
		t.Fatal(err)
	}
	hits, misses := db.PlanCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("warm cache: hits/misses = %d/%d, want 1/1", hits, misses)
	}

	// DDL invalidates: the same SQL recompiles once, then caches again.
	if err := db.CreateWisconsin("other", 500, 4, "unique2", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryAll(sql, nil); err != nil {
		t.Fatal(err)
	}
	if hits, misses = db.PlanCacheStats(); hits != 1 || misses != 2 {
		t.Fatalf("post-DDL: hits/misses = %d/%d, want 1/2", hits, misses)
	}
	if _, err := db.QueryAll(sql, nil); err != nil {
		t.Fatal(err)
	}
	if hits, _ = db.PlanCacheStats(); hits != 2 {
		t.Fatalf("recompiled plan should cache: hits = %d, want 2", hits)
	}
}

// TestStmtRevalidatesAfterDDL: a held Stmt notices a catalog-epoch change
// and re-resolves through the plan cache on its next execution, instead of
// executing a plan bound against the pre-DDL catalog forever. Executions
// with an unchanged catalog never touch the cache.
func TestStmtRevalidatesAfterDDL(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 1000, 4, "unique2", 1); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare("SELECT unique2 FROM wisc WHERE unique1 < 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateWisconsin("other", 500, 4, "unique2", 2); err != nil {
		t.Fatal(err)
	}
	_, misses0 := db.PlanCacheStats()
	rows, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 10 {
		t.Fatalf("post-DDL execution: %d rows, want 10", len(res.Data))
	}
	hits1, misses1 := db.PlanCacheStats()
	if misses1 != misses0+1 {
		t.Errorf("post-DDL execution should re-resolve with a miss: misses %d -> %d", misses0, misses1)
	}
	// Revalidated: further executions skip the cache again.
	rows2, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows2.All(); err != nil {
		t.Fatal(err)
	}
	if hits2, misses2 := db.PlanCacheStats(); hits2 != hits1 || misses2 != misses1 {
		t.Errorf("steady-state Stmt execution touched the cache: %d/%d -> %d/%d", hits1, misses1, hits2, misses2)
	}
}

// TestStmtConcurrentReuse: one Stmt shared by many goroutines produces
// correct results for every execution — the compiled plan is immutable and
// each execution carries its own allocation and cursor.
func TestStmtConcurrentReuse(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 4000, 8, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	db.Manager(ManagerConfig{Budget: 8})
	stmt, err := db.Prepare("SELECT two, COUNT(*) FROM wisc WHERE two = 0 GROUP BY two", nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				rows, err := stmt.Query()
				if err != nil {
					t.Error(err)
					return
				}
				var two, count int64
				n := 0
				for rows.Next() {
					if err := rows.Scan(&two, &count); err != nil {
						t.Error(err)
					}
					n++
				}
				if err := rows.Err(); err != nil {
					t.Error(err)
					return
				}
				if n != 1 || two != 0 || count != 2000 {
					t.Errorf("got %d rows, two=%d count=%d", n, two, count)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestStreamFirstRowBeforeMaterialization is the streaming acceptance test:
// a SELECT * over a 100k-tuple relation yields its first row while the
// query is still executing (bounded sink + queue backpressure make full
// materialization impossible before the consumer drains), and closing the
// cursor mid-stream hands the query's threads back to the manager budget.
func TestStreamFirstRowBeforeMaterialization(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("big", 100_000, 8, "unique2", 7); err != nil {
		t.Fatal(err)
	}
	m := db.Manager(ManagerConfig{Budget: 4})

	rows, err := db.QueryContext(context.Background(), "SELECT * FROM big", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	// The first row arrived, and the query is demonstrably still running:
	// its admission is active and its threads are still allocated. The
	// bounded sink (64 rows) plus per-queue caps cannot hold 100k tuples,
	// so this is only reachable before full materialization.
	st := m.Stats()
	if st.Active != 1 {
		t.Fatalf("query not active after first row: %+v", st)
	}
	if st.ThreadsInFlight < 1 {
		t.Fatalf("no threads in flight after first row: %+v", st)
	}

	// Read a few more rows mid-stream, then abandon the result.
	for i := 0; i < 10 && rows.Next(); i++ {
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.ThreadsInFlight != 0 || st.Active != 0 {
		t.Fatalf("threads not released by mid-stream Close: %+v", st)
	}
	if st.Cancelled != 1 {
		t.Errorf("mid-stream Close should count as cancelled: %+v", st)
	}
	if err := rows.Err(); err != nil {
		t.Errorf("Err after explicit Close = %v, want nil", err)
	}

	// The budget is immediately reusable.
	res, err := db.QueryAll("SELECT unique2 FROM big WHERE unique1 < 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 5 {
		t.Errorf("follow-up query got %d rows, want 5", len(res.Data))
	}
}

// TestCancelWhileBlockedInNext: a consumer blocked in Next (the query
// produces no rows for a while) is released by context cancellation with
// the context's error on the cursor.
func TestCancelWhileBlockedInNext(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("bigA", 40_000, 16, "unique2", 7); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateWisconsin("bigB", 40_000, 16, "unique2", 8); err != nil {
		t.Fatal(err)
	}
	db.Manager(ManagerConfig{Budget: 4})

	// The WHERE clause rejects every join tuple, so the store never emits a
	// row and the consumer parks in Next until cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx,
		"SELECT * FROM bigA JOIN bigB ON bigA.unique2 = bigB.unique2 WHERE bigA.unique1 < 0",
		&Options{JoinAlgo: "nested-loop", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if rows.Next() {
		t.Fatal("unexpected row from an all-rejecting predicate")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Next blocked %v after cancellation", elapsed)
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", err)
	}
}

// TestCloseSurfacesExternalAbort: Close only swallows the cancellation it
// caused itself. An external cancellation or deadline that already aborted
// the query stays visible on Close and Err — a timeout-truncated partial
// result must not look like a complete one.
func TestCloseSurfacesExternalAbort(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("bigA", 40_000, 16, "unique2", 7); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateWisconsin("bigB", 40_000, 16, "unique2", 8); err != nil {
		t.Fatal(err)
	}

	// All-rejecting predicate: the query grinds without emitting, so the
	// deadline fires mid-execution.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	rows, err := db.QueryContext(ctx,
		"SELECT * FROM bigA JOIN bigB ON bigA.unique2 = bigB.unique2 WHERE bigA.unique1 < 0",
		&Options{JoinAlgo: "nested-loop", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the deadline to abort the execution, then Close — the
	// deferred-Close-after-timeout shape a real consumer hits.
	<-ctx.Done()
	time.Sleep(50 * time.Millisecond)
	if err := rows.Close(); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Close after external deadline = %v, want context.DeadlineExceeded", err)
	}
	if err := rows.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Err after external deadline = %v, want context.DeadlineExceeded", err)
	}
}

// TestRowsScanAndColumns: Scan destination checking, Columns before rows,
// and iteration-after-Close behavior.
func TestRowsScanAndColumns(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 500, 4, "unique2", 3); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT unique1, stringu1 FROM wisc WHERE unique1 < 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if cols := rows.Columns(); fmt.Sprint(cols) != "[unique1 stringu1]" {
		t.Fatalf("Columns = %v", cols)
	}
	if err := rows.Scan(new(int64)); err == nil {
		t.Error("Scan before Next accepted")
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	var u int64
	var s string
	if err := rows.Scan(&u); err == nil {
		t.Error("wrong destination count accepted")
	}
	if err := rows.Scan(&s, &u); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := rows.Scan(&u, &s); err != nil {
		t.Error(err)
	}
	var anyU, anyS any
	if err := rows.Scan(&anyU, &anyS); err != nil {
		t.Error(err)
	}
	if _, ok := anyU.(int64); !ok {
		t.Errorf("any destination got %T", anyU)
	}
	rows.Close()
	if rows.Next() {
		t.Error("Next after Close returned a row")
	}
	if err := rows.Scan(&u, &s); err == nil {
		t.Error("Scan after Close re-read a stale row")
	}

	// A drained cursor likewise rejects Scan instead of re-reading the
	// final row.
	drained, err := db.Query("SELECT unique1 FROM wisc WHERE unique1 < 3", nil)
	if err != nil {
		t.Fatal(err)
	}
	for drained.Next() {
	}
	if err := drained.Err(); err != nil {
		t.Fatal(err)
	}
	if err := drained.Scan(&u); err == nil {
		t.Error("Scan after exhaustion re-read a stale row")
	}

	// Unmanaged mid-stream Close also unwinds cleanly, and All on a cursor
	// closed before exhaustion is an error, not an empty result.
	rows2, err := db.Query("SELECT * FROM wisc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows2.Next() {
		t.Fatalf("no rows: %v", rows2.Err())
	}
	if err := rows2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rows2.All(); err == nil {
		t.Error("All on a mid-stream-closed cursor returned no error")
	}
}

// TestOptionsPriorityValidation: the facade rejects unknown priorities and
// executes both valid classes.
func TestOptionsPriorityValidation(t *testing.T) {
	db := New()
	if err := db.CreateWisconsin("wisc", 200, 4, "unique2", 1); err != nil {
		t.Fatal(err)
	}
	db.Manager(ManagerConfig{Budget: 4})
	if _, err := db.Query("SELECT * FROM wisc", &Options{Priority: "background"}); err == nil {
		t.Error("unknown priority accepted")
	}
	for _, pri := range []string{"", "interactive", "batch"} {
		res, err := db.QueryAll("SELECT * FROM wisc", &Options{Priority: pri})
		if err != nil {
			t.Fatalf("priority %q: %v", pri, err)
		}
		if len(res.Data) != 200 {
			t.Fatalf("priority %q: %d rows", pri, len(res.Data))
		}
	}
}

// TestQueryAllMatchesCursor: the materialized shim and a manual cursor
// drain agree.
func TestQueryAllMatchesCursor(t *testing.T) {
	db := New()
	if err := db.CreateJoinPair("", 1000, 100, 10, 0.5); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryAll("SELECT * FROM A JOIN B ON A.k = B.k", nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT * FROM A JOIN B ON A.k = B.k", nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(res.Data) || n != 1000 {
		t.Errorf("cursor drained %d rows, QueryAll %d, want 1000", n, len(res.Data))
	}
	if len(res.Operators) == 0 || len(rows.Operators()) == 0 {
		t.Error("missing operator stats after drain")
	}
}
