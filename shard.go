package dbs3

import (
	"fmt"

	"dbs3/internal/partition"
	"dbs3/internal/relation"
)

// ShardRelation restricts a registered relation to one node's shard of a
// cluster: it keeps exactly the tuples that hash on col into shard (of
// shards total) and drops the rest, leaving the relation's degree of
// partitioning and local fragment placement untouched — fragments just get
// sparser. Every node of a cluster runs the same creation calls (same seeds)
// followed by ShardRelation with its own shard index, so the union of the
// nodes' relations is exactly the unsharded relation and no tuple lives on
// two nodes.
//
// col is the cluster distribution key. Relations joined against each other
// must be sharded on their join attributes (with the same shards count) so
// matching tuples co-locate on one node — the standard shared-nothing
// placement contract; scatter-gather over relations sharded on other columns
// silently loses join matches, exactly as in any distribution-key database.
// For grouped aggregates any distribution column is correct: the coordinator
// re-merges partial groups across nodes.
func (db *Database) ShardRelation(name, col string, shard, shards int) error {
	if shards <= 0 {
		return fmt.Errorf("dbs3: shards must be positive, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return fmt.Errorf("dbs3: shard %d outside [0,%d)", shard, shards)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	p, ok := db.rels[name]
	if !ok {
		return fmt.Errorf("dbs3: no relation %q", name)
	}
	h, err := partition.NewHash(p.Schema, []string{col}, shards)
	if err != nil {
		return err
	}
	kept := make([][]relation.Tuple, len(p.Fragments))
	for i, frag := range p.Fragments {
		for _, t := range frag {
			if h.FragmentOf(t) == shard {
				kept[i] = append(kept[i], t)
			}
		}
	}
	shardP := &partition.Partitioned{
		Name:      p.Name,
		Schema:    p.Schema,
		Key:       p.Key,
		Fragments: kept,
		Disk:      p.Disk,
	}
	db.rels[name] = shardP
	ri := db.resolver[name]
	ri.FragSizes = shardP.FragmentSizes()
	db.resolver[name] = ri
	// Sharding is DDL: any cached plan was costed against the full relation.
	db.epoch.Add(1)
	return nil
}
