package dbs3

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"dbs3/internal/core"
	"dbs3/internal/esql"
	"dbs3/internal/lera"
	dbruntime "dbs3/internal/runtime"
)

// planCacheCap bounds the per-database LRU plan cache. Serving workloads
// repeat a small statement vocabulary; 128 distinct (SQL, join algo) shapes
// is far beyond what one front end issues.
const planCacheCap = 128

// defaultStreamBuffer is the bounded row-sink capacity between the engine's
// final store node and a Rows cursor when Options.StreamBuffer is zero.
const defaultStreamBuffer = 64

// preparedPlan is one compiled statement: the bound Lera-par plan, the graph
// for EXPLAIN, and the result column names (known statically from the store
// node's input schema). It is immutable after compilation — executions only
// read it — which is what makes a Stmt safe for concurrent reuse.
type preparedPlan struct {
	plan  *lera.Plan
	graph *lera.Graph
	cols  []string
	epoch uint64
}

// planCache is an LRU of compiled statements keyed on SQL + join algorithm.
// Entries are tagged with the catalog epoch at compile time; DDL (relation
// creation) bumps the epoch, so stale plans miss and recompile against the
// new catalog instead of serving pre-DDL bindings. Today's DDL is purely
// additive — an existing plan cannot actually go stale — but the blanket
// bump keeps the invalidation contract ahead of destructive DDL
// (DROP/ALTER, repartitioning) rather than auditing every future catalog
// mutation for cache safety; the cost is a recompile per cached statement
// after a load, visible as a miss spike in PlanCacheStats.
type planCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *cacheItem
	entries map[string]*list.Element

	hits, misses atomic.Int64
}

type cacheItem struct {
	key string
	p   *preparedPlan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached plan for key if it exists and was compiled at the
// current catalog epoch.
func (c *planCache) get(key string, epoch uint64) (*preparedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	item := el.Value.(*cacheItem)
	if item.p.epoch != epoch {
		// Stale: compiled against a pre-DDL catalog.
		c.ll.Remove(el)
		delete(c.entries, key)
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return item.p, true
}

// put inserts a compiled plan, evicting the least recently used entry beyond
// capacity.
func (c *planCache) put(key string, p *preparedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A compile that raced with DDL must not clobber a fresher entry:
		// keep whichever plan was compiled at the newer catalog epoch.
		if item := el.Value.(*cacheItem); item.p.epoch <= p.epoch {
			item.p = p
		}
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheItem{key: key, p: p})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.entries, el.Value.(*cacheItem).key)
	}
}

// PlanCacheStats reports the database's plan-cache hit/miss counters. When a
// QueryManager is installed the same counters are mirrored into its Stats.
func (db *Database) PlanCacheStats() (hits, misses int64) {
	return db.cache.hits.Load(), db.cache.misses.Load()
}

// Stmt is a prepared statement: one compilation (lex, parse, plan, bind)
// reused across many executions — the compile-once / execute-many half of
// the serving-scale API. A Stmt is safe for concurrent use by multiple
// goroutines; each QueryContext executes against the catalog snapshot and
// manager installed at call time.
type Stmt struct {
	db  *Database
	sql string
	opt Options
	// prep is the compiled plan, swapped atomically when a catalog-epoch
	// change forces revalidation (see QueryContext).
	prep atomic.Pointer[preparedPlan]

	strat core.StrategyKind
	pri   dbruntime.Priority
}

// Prepare compiles one ESQL statement into a reusable bound plan. The
// Options are captured as the statement's execution defaults (thread count,
// strategy, join algorithm, grain, priority); the join algorithm also shapes
// the plan itself and keys the underlying plan cache. Repeated Prepare calls
// for the same SQL and join algorithm share the compiled plan.
func (db *Database) Prepare(sql string, opt *Options) (*Stmt, error) {
	strat, err := opt.strategy()
	if err != nil {
		return nil, err
	}
	pri, err := opt.priority()
	if err != nil {
		return nil, err
	}
	prep, err := db.prepare(sql, opt)
	if err != nil {
		return nil, err
	}
	s := &Stmt{db: db, sql: sql, strat: strat, pri: pri}
	s.prep.Store(prep)
	if opt != nil {
		s.opt = *opt
	}
	return s, nil
}

// prepare resolves a statement through the plan cache, compiling on miss.
func (db *Database) prepare(sql string, opt *Options) (*preparedPlan, error) {
	algo, err := opt.joinAlgo()
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s\x00%d", sql, algo)
	epoch := db.epoch.Load()
	prep, hit := db.cache.get(key, epoch)
	if m := db.currentManager(); m != nil {
		m.NotePlanCache(hit)
	}
	if hit {
		return prep, nil
	}
	c := &esql.Compiler{Resolver: db.snapshotResolver(), JoinAlgo: algo}
	plan, g, err := c.Compile(sql)
	if err != nil {
		return nil, err
	}
	prep = &preparedPlan{plan: plan, graph: g, cols: outputColumns(plan), epoch: epoch}
	db.cache.put(key, prep)
	return prep, nil
}

// outputColumns reads the result column names off the final store node's
// input schema — available at compile time, before any row is produced.
func outputColumns(plan *lera.Plan) []string {
	id, ok := plan.Outputs[esql.OutputName]
	if !ok {
		return nil
	}
	schema := plan.Nodes[id].InSchema
	cols := make([]string, schema.Len())
	for i := range cols {
		cols[i] = schema.Column(i).Name
	}
	return cols
}

// SQL returns the statement's source text.
func (s *Stmt) SQL() string { return s.sql }

// Columns names the result columns the statement produces.
func (s *Stmt) Columns() []string { return append([]string(nil), s.prep.Load().cols...) }

// Close releases the statement. The compiled plan stays in the database's
// plan cache for future statements; Close exists for API symmetry and
// forward compatibility.
func (s *Stmt) Close() error { return nil }

// Query executes the prepared statement with a background context.
func (s *Stmt) Query() (*Rows, error) {
	return s.QueryContext(context.Background())
}

// QueryContext executes the prepared statement against the current catalog
// snapshot and returns a streaming cursor. Compilation is skipped entirely —
// the bound plan is reused — so the per-execution cost is admission plus
// execution. Cancelling ctx (or closing the cursor) aborts the execution and
// returns its threads to the manager budget.
func (s *Stmt) QueryContext(ctx context.Context) (*Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Epoch revalidation: the common path is one atomic load — no cache
	// lock, no compiler. Only when DDL moved the catalog since this plan
	// was compiled does the statement re-resolve, through the plan cache
	// (a hit when another caller already recompiled the statement).
	prep := s.prep.Load()
	if prep.epoch != s.db.epoch.Load() {
		fresh, err := s.db.prepare(s.sql, &s.opt)
		if err != nil {
			return nil, err
		}
		// CAS, not Store: a racing revalidation may have installed a plan
		// compiled at a newer epoch; never replace it with an older one.
		s.prep.CompareAndSwap(prep, fresh)
		prep = fresh
	}
	rels, manager := s.db.snapshotRels()

	buf := s.opt.StreamBuffer
	if buf <= 0 {
		buf = defaultStreamBuffer
	}
	qctx, cancel := context.WithCancel(ctx)
	ch := make(chan []any, buf)
	copts := core.Options{
		Threads:      s.opt.Threads,
		Strategy:     s.strat,
		TriggerGrain: s.opt.Grain,
		Utilization:  s.opt.Utilization,
		StreamOutput: esql.OutputName,
		Sink:         &rowSink{ctx: qctx, ch: ch},
	}

	var adm *dbruntime.Admission
	var alloc core.Allocation
	utilization := s.opt.Utilization
	var err error
	if manager != nil {
		adm, err = manager.Admit(qctx, prep.plan, rels, &copts, s.pri)
		if err != nil {
			cancel()
			return nil, err
		}
		alloc = adm.Alloc()
		utilization = adm.Stats.Utilization
	} else {
		alloc, err = core.PlanAllocation(prep.plan, rels, copts)
		if err != nil {
			cancel()
			return nil, err
		}
	}

	r := &Rows{
		cols:        prep.cols,
		threads:     alloc.Total,
		utilization: utilization,
		ch:          ch,
		done:        make(chan struct{}),
		cancel:      cancel,
		parent:      ctx,
	}
	go func() {
		res, execErr := core.ExecuteAllocated(qctx, prep.plan, rels, copts, alloc)
		if adm != nil {
			// Threads are back in the budget before the cursor observes the
			// end of the stream — Close-mid-result frees them immediately.
			adm.Finish(execErr)
		}
		r.execErr = execErr
		if execErr == nil && res != nil {
			r.operators = operatorStats(prep.plan, res)
		}
		close(r.done)
		close(ch)
	}()
	return r, nil
}
