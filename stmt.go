package dbs3

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"dbs3/internal/core"
	"dbs3/internal/esql"
	"dbs3/internal/lera"
	"dbs3/internal/relation"
	dbruntime "dbs3/internal/runtime"
	"dbs3/internal/storage"
)

// planCacheCap bounds the per-database LRU plan cache. Serving workloads
// repeat a small statement vocabulary; 128 distinct (SQL, join algo) shapes
// is far beyond what one front end issues.
const planCacheCap = 128

// defaultStreamBuffer is the bounded row-sink capacity between the engine's
// final store node and a Rows cursor when Options.StreamBuffer is zero.
const defaultStreamBuffer = 64

// preparedPlan is one compiled statement: the bound Lera-par plan, the graph
// for EXPLAIN, the result column names and types (known statically from the
// store node's input schema), and the `?` placeholder count. It is immutable
// after compilation — executions only read it (placeholder arguments are
// substituted into a per-execution shallow copy of the plan) — which is what
// makes a Stmt safe for concurrent reuse.
type preparedPlan struct {
	plan   *lera.Plan
	graph  *lera.Graph
	cols   []string
	types  []string
	params int
	epoch  uint64
}

// planCache is an LRU of compiled statements keyed on SQL + join algorithm.
// Entries are tagged with the catalog epoch at compile time; DDL (relation
// creation) bumps the epoch, so stale plans miss and recompile against the
// new catalog instead of serving pre-DDL bindings. Today's DDL is purely
// additive — an existing plan cannot actually go stale — but the blanket
// bump keeps the invalidation contract ahead of destructive DDL
// (DROP/ALTER, repartitioning) rather than auditing every future catalog
// mutation for cache safety; the cost is a recompile per cached statement
// after a load, visible as a miss spike in PlanCacheStats.
type planCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *cacheItem
	entries map[string]*list.Element

	hits, misses atomic.Int64
}

type cacheItem struct {
	key string
	p   *preparedPlan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached plan for key if it exists and was compiled at the
// current catalog epoch.
func (c *planCache) get(key string, epoch uint64) (*preparedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	item := el.Value.(*cacheItem)
	if item.p.epoch != epoch {
		// Stale: compiled against a pre-DDL catalog.
		c.ll.Remove(el)
		delete(c.entries, key)
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return item.p, true
}

// put inserts a compiled plan, evicting the least recently used entry beyond
// capacity.
func (c *planCache) put(key string, p *preparedPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A compile that raced with DDL must not clobber a fresher entry:
		// keep whichever plan was compiled at the newer catalog epoch.
		if item := el.Value.(*cacheItem); item.p.epoch <= p.epoch {
			item.p = p
		}
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheItem{key: key, p: p})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.entries, el.Value.(*cacheItem).key)
	}
}

// PlanCacheStats reports the database's plan-cache hit/miss counters. When a
// QueryManager is installed the same counters are mirrored into its Stats.
func (db *Database) PlanCacheStats() (hits, misses int64) {
	return db.cache.hits.Load(), db.cache.misses.Load()
}

// Stmt is a prepared statement: one compilation (lex, parse, plan, bind)
// reused across many executions — the compile-once / execute-many half of
// the serving-scale API. A Stmt is safe for concurrent use by multiple
// goroutines; each QueryContext executes against the catalog snapshot and
// manager installed at call time.
type Stmt struct {
	db  *Database
	sql string
	opt Options
	// prep is the compiled plan, swapped atomically when a catalog-epoch
	// change forces revalidation (see QueryContext).
	prep atomic.Pointer[preparedPlan]

	strat core.StrategyKind
	pri   dbruntime.Priority
}

// Prepare compiles one ESQL statement into a reusable bound plan. The
// Options are captured as the statement's execution defaults (thread count,
// strategy, join algorithm, grain, priority); the join algorithm also shapes
// the plan itself and keys the underlying plan cache. Repeated Prepare calls
// for the same SQL and join algorithm share the compiled plan.
func (db *Database) Prepare(sql string, opt *Options) (*Stmt, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	strat, err := opt.strategy()
	if err != nil {
		return nil, err
	}
	pri, err := opt.priority()
	if err != nil {
		return nil, err
	}
	prep, err := db.prepare(sql, opt)
	if err != nil {
		return nil, err
	}
	s := &Stmt{db: db, sql: sql, strat: strat, pri: pri}
	s.prep.Store(prep)
	if opt != nil {
		s.opt = *opt
	}
	return s, nil
}

// prepare resolves a statement through the plan cache, compiling on miss.
func (db *Database) prepare(sql string, opt *Options) (*preparedPlan, error) {
	algo, err := opt.joinAlgo()
	if err != nil {
		return nil, err
	}
	materialize := opt != nil && opt.Materialize
	key := fmt.Sprintf("%s\x00%d\x00%t", sql, algo, materialize)
	epoch := db.epoch.Load()
	prep, hit := db.cache.get(key, epoch)
	if m := db.currentManager(); m != nil {
		m.NotePlanCache(hit)
	}
	if hit {
		return prep, nil
	}
	c := &esql.Compiler{Resolver: db.snapshotResolver(), JoinAlgo: algo, Materialize: materialize}
	plan, g, err := c.Compile(sql)
	if err != nil {
		return nil, err
	}
	cols, types := outputColumns(plan)
	prep = &preparedPlan{plan: plan, graph: g, cols: cols, types: types, params: plan.NumParams(), epoch: epoch}
	db.cache.put(key, prep)
	return prep, nil
}

// outputColumns reads the result column names and types off the final store
// node's input schema — available at compile time, before any row is
// produced. Types use the SQL-ish names ("INT", "STRING") so they can cross
// a wire protocol verbatim.
func outputColumns(plan *lera.Plan) (cols, types []string) {
	id, ok := plan.Outputs[esql.OutputName]
	if !ok {
		return nil, nil
	}
	schema := plan.Nodes[id].InSchema
	cols = make([]string, schema.Len())
	types = make([]string, schema.Len())
	for i := range cols {
		cols[i] = schema.Column(i).Name
		types[i] = schema.Column(i).Type.String()
	}
	return cols, types
}

// bindArgs converts caller-supplied placeholder arguments to engine values.
// The engine's type system is INT and STRING; every Go integer kind maps to
// INT (unsigned values must fit int64), strings map to STRING.
func bindArgs(args []any) ([]relation.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	vals := make([]relation.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case int:
			vals[i] = relation.Int(int64(v))
		case int8:
			vals[i] = relation.Int(int64(v))
		case int16:
			vals[i] = relation.Int(int64(v))
		case int32:
			vals[i] = relation.Int(int64(v))
		case int64:
			vals[i] = relation.Int(v)
		case uint:
			if uint64(v) > math.MaxInt64 {
				return nil, fmt.Errorf("dbs3: argument %d overflows INT", i+1)
			}
			vals[i] = relation.Int(int64(v))
		case uint8:
			vals[i] = relation.Int(int64(v))
		case uint16:
			vals[i] = relation.Int(int64(v))
		case uint32:
			vals[i] = relation.Int(int64(v))
		case uint64:
			if v > math.MaxInt64 {
				return nil, fmt.Errorf("dbs3: argument %d overflows INT", i+1)
			}
			vals[i] = relation.Int(int64(v))
		case string:
			vals[i] = relation.Str(v)
		default:
			return nil, fmt.Errorf("dbs3: unsupported argument %d type %T (want an integer or string)", i+1, a)
		}
	}
	return vals, nil
}

// SQL returns the statement's source text.
func (s *Stmt) SQL() string { return s.sql }

// Columns names the result columns the statement produces.
func (s *Stmt) Columns() []string { return append([]string(nil), s.prep.Load().cols...) }

// ColumnTypes reports the result column types ("INT" or "STRING"), aligned
// with Columns — the static half of a wire protocol's row encoding.
func (s *Stmt) ColumnTypes() []string { return append([]string(nil), s.prep.Load().types...) }

// NumParams reports how many `?` placeholder arguments each execution must
// supply.
func (s *Stmt) NumParams() int { return s.prep.Load().params }

// Close releases the statement. The compiled plan stays in the database's
// plan cache for future statements; Close exists for API symmetry and
// forward compatibility.
func (s *Stmt) Close() error { return nil }

// Query executes the prepared statement with a background context, binding
// args to the statement's `?` placeholders in order.
func (s *Stmt) Query(args ...any) (*Rows, error) {
	//dbs3lint:ignore ctxflow documented ctx-less convenience shim over QueryContext
	return s.QueryContext(context.Background(), args...)
}

// QueryContext executes the prepared statement against the current catalog
// snapshot and returns a streaming cursor. Compilation is skipped entirely —
// the bound plan is reused; args are substituted into the plan's placeholder
// predicates per execution (type-checked against the column each `?`
// compares with), so one cached plan serves a whole family of predicates.
// Cancelling ctx (or closing the cursor) aborts the execution and returns
// its threads to the manager budget.
func (s *Stmt) QueryContext(ctx context.Context, args ...any) (*Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Epoch revalidation: the common path is one atomic load — no cache
	// lock, no compiler. Only when DDL moved the catalog since this plan
	// was compiled does the statement re-resolve, through the plan cache
	// (a hit when another caller already recompiled the statement).
	prep := s.prep.Load()
	if prep.epoch != s.db.epoch.Load() {
		fresh, err := s.db.prepare(s.sql, &s.opt)
		if err != nil {
			return nil, err
		}
		// CAS, not Store: a racing revalidation may have installed a plan
		// compiled at a newer epoch; never replace it with an older one.
		s.prep.CompareAndSwap(prep, fresh)
		prep = fresh
	}
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	// Per-execution placeholder binding: a shallow copy of the plan with
	// ColParam predicates replaced by the argument constants. The cached
	// plan itself is never mutated, so concurrent executions with distinct
	// bindings cannot see each other's arguments.
	execPlan, err := prep.plan.BindParams(vals)
	if err != nil {
		return nil, err
	}
	rels, manager := s.db.snapshotRels()

	buf := s.opt.StreamBuffer
	if buf <= 0 {
		buf = defaultStreamBuffer
	}
	qctx, cancel := context.WithCancel(ctx)
	ch := make(chan []any, buf)
	copts := core.Options{
		Threads:      s.opt.Threads,
		Strategy:     s.strat,
		TriggerGrain: s.opt.Grain,
		BatchGrain:   s.opt.BatchGrain,
		NoVectorize:  s.opt.NoVectorize,
		Utilization:  s.opt.Utilization,
		MemoryBudget: s.opt.MemoryBudget,
		SpillDir:     s.opt.SpillDir,
		StreamOutput: esql.OutputName,
		Sink:         &rowSink{ctx: qctx, ch: ch},
	}

	var adm *dbruntime.Admission
	var alloc core.Allocation
	var env *storage.SpillEnv
	utilization := s.opt.Utilization
	if manager != nil {
		adm, err = manager.Admit(qctx, execPlan, rels, &copts, s.pri)
		if err != nil {
			cancel()
			return nil, err
		}
		// Mid-flight re-admission: at each chain boundary of a multi-chain
		// plan the engine renegotiates the reservation — surplus threads
		// return to the shared budget between chains instead of at Finish —
		// and the spill accountant is retargeted to the shrunk memory
		// reservation (env is assigned below, before any chain runs).
		copts.Readmit = func(chain, want, min int) int {
			grant := manager.ReadmitAt(adm, chain, want, min)
			if env != nil && adm.MemoryGrant() > 0 {
				env.Mem.SetGrant(adm.MemoryHeld())
			}
			return grant
		}
		alloc = adm.Alloc()
		utilization = adm.Stats.Utilization
	} else {
		alloc, err = core.PlanAllocation(execPlan, rels, copts)
		if err != nil {
			cancel()
			return nil, err
		}
	}
	// Larger-than-memory execution: own the spill environment (instead of
	// letting the engine create one) so the admission grant can be
	// renegotiated mid-query and the database-wide buffer-pool metrics see
	// this query's read-back traffic. Admit rewrote copts.MemoryBudget to
	// the granted bytes when the manager runs memory admission.
	if copts.MemoryBudget > 0 {
		env, err = storage.NewSpillEnv(copts.SpillDir, copts.MemoryBudget, storage.PoolPagesFor(copts.MemoryBudget), &s.db.poolMetrics)
		if err != nil {
			if adm != nil {
				adm.Finish(err)
			}
			cancel()
			return nil, err
		}
		copts.Spill = env
	}

	r := &Rows{
		cols:        prep.cols,
		types:       prep.types,
		threads:     alloc.Total,
		utilization: utilization,
		ch:          ch,
		done:        make(chan struct{}),
		cancel:      cancel,
		parent:      ctx,
	}
	go func() {
		res, execErr := core.ExecuteAllocated(qctx, execPlan, rels, copts, alloc)
		if env != nil {
			// Spill totals settle when the engine returns; Close removes the
			// temp files on every exit path, including cancellation.
			r.spilledBytes, r.spillPasses = env.Spilled()
			if adm != nil {
				adm.NoteSpill(r.spilledBytes, r.spillPasses)
			}
			env.Close()
		}
		if adm != nil {
			// Threads are back in the budget before the cursor observes the
			// end of the stream — Close-mid-result frees them immediately.
			adm.Finish(execErr)
			r.chainThreads = adm.ChainTrace()
		}
		r.execErr = execErr
		if execErr == nil && res != nil {
			r.operators = operatorStats(execPlan, res)
		}
		close(r.done)
		close(ch)
	}()
	return r, nil
}
