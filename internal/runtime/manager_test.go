package runtime

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dbs3/internal/core"
	"dbs3/internal/lera"
	"dbs3/internal/workload"
)

func joinPlan(t *testing.T) (*lera.Plan, core.DB) {
	t.Helper()
	db, err := workload.NewJoinDB(2_000, 200, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	return plan, db.Relations()
}

func TestManagerBudgetNeverExceeded(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 6})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				_, qs, err := m.Execute(context.Background(), plan, db, core.Options{})
				if err != nil {
					t.Error(err)
					return
				}
				if qs.Threads < 1 || qs.Threads > 6 {
					t.Errorf("query got %d threads outside [1, budget]", qs.Threads)
				}
			}
		}()
	}
	wg.Wait()
	st := m.Stats()
	if st.PeakThreads > 6 {
		t.Errorf("peak threads %d exceeded budget 6", st.PeakThreads)
	}
	if st.ThreadsInFlight != 0 || st.Active != 0 || st.Queued != 0 {
		t.Errorf("manager did not drain: %+v", st)
	}
	if st.Admitted != 80 || st.Completed != 80 {
		t.Errorf("admitted/completed = %d/%d, want 80/80", st.Admitted, st.Completed)
	}
}

func TestManagerMeasuredUtilization(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 8})

	// Idle: no concurrent load measured.
	_, qs, err := m.Execute(context.Background(), plan, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if qs.Utilization != 0 {
		t.Errorf("idle utilization = %v, want 0", qs.Utilization)
	}
	idleThreads := qs.Threads

	// Under load: 6 of 8 threads held elsewhere.
	release, err := m.Reserve(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Utilization(); got != 0.75 {
		t.Errorf("Utilization() = %v, want 0.75", got)
	}
	_, qs, err = m.Execute(context.Background(), plan, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	release()
	if qs.Utilization != 0.75 {
		t.Errorf("loaded utilization = %v, want 0.75", qs.Utilization)
	}
	if qs.Available != 2 {
		t.Errorf("available = %d, want 2", qs.Available)
	}
	if qs.Threads >= idleThreads && idleThreads > 1 {
		t.Errorf("threads under load = %d, not reduced from idle %d", qs.Threads, idleThreads)
	}
	if qs.Threads > 2 {
		t.Errorf("threads = %d exceed the 2 available", qs.Threads)
	}
}

func TestManagerExplicitThreadsWaitForBudget(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 4})
	release, err := m.Reserve(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var admitted atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, qs, err := m.Execute(context.Background(), plan, db, core.Options{Threads: 3})
		admitted.Store(true)
		if err == nil && qs.Threads != 3 {
			err = errors.New("explicit thread request not honored")
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if admitted.Load() {
		t.Fatal("query admitted while the full budget was reserved")
	}
	if st := m.Stats(); st.Queued != 1 {
		t.Fatalf("Queued = %d, want 1", st.Queued)
	}
	release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query not admitted after threads freed")
	}
}

func TestManagerQueueFull(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 2, MaxQueued: 1})
	release, err := m.Reserve(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// One query fills the queue...
	firstQueued := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		close(firstQueued)
		m.Execute(ctx, plan, db, core.Options{})
	}()
	<-firstQueued
	for m.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	// ...the next is shed.
	if _, _, err := m.Execute(context.Background(), plan, db, core.Options{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := m.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
}

func TestManagerCancelWhileQueued(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 2})
	release, err := m.Reserve(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := m.Execute(ctx, plan, db, core.Options{})
		done <- err
	}()
	for m.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queued query did not return")
	}
	if st := m.Stats(); st.Cancelled != 1 || st.Queued != 0 {
		t.Errorf("stats after cancel: %+v", st)
	}
}

// TestManagerFIFOFairness: a large explicit request queued first is served
// before a small query queued behind it — small queries cannot starve it.
func TestManagerFIFOFairness(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 4})
	release, err := m.Reserve(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 2)
	go func() {
		if _, _, err := m.Execute(context.Background(), plan, db, core.Options{Threads: 4}); err != nil {
			t.Error(err)
		}
		order <- "big"
	}()
	for m.Stats().Queued < 1 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		if _, _, err := m.Execute(context.Background(), plan, db, core.Options{}); err != nil {
			t.Error(err)
		}
		order <- "small"
	}()
	for m.Stats().Queued < 2 {
		time.Sleep(time.Millisecond)
	}

	release()
	if first := <-order; first != "big" {
		t.Errorf("first served = %q, want the big query queued first", first)
	}
	<-order
}

// TestManagerAbandonedTicketSkipped: cancelling a queued query must not
// stall the line behind its ticket.
func TestManagerAbandonedTicketSkipped(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 2})
	release, err := m.Reserve(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiting := make(chan error, 1)
	go func() {
		_, _, err := m.Execute(ctx, plan, db, core.Options{})
		waiting <- err
	}()
	for m.Stats().Queued < 1 {
		time.Sleep(time.Millisecond)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := m.Execute(context.Background(), plan, db, core.Options{})
		done <- err
	}()
	for m.Stats().Queued < 2 {
		time.Sleep(time.Millisecond)
	}

	cancel() // abandon the head-of-line ticket
	if err := <-waiting; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("line stalled behind an abandoned ticket")
	}
}

// TestManagerFailedQueryCounted: execution errors land in Failed, not
// Completed.
func TestManagerFailedQueryCounted(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 4})
	if _, _, err := m.Execute(context.Background(), plan, core.DB{}, core.Options{}); err == nil {
		t.Fatal("empty database accepted")
	}
	st := m.Stats()
	if st.Failed != 1 || st.Completed != 0 {
		t.Errorf("Failed/Completed = %d/%d, want 1/0", st.Failed, st.Completed)
	}
	if _, _, err := m.Execute(context.Background(), plan, db, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Completed != 1 {
		t.Errorf("Completed = %d, want 1", st.Completed)
	}
}

func TestManagerClose(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 2})
	m.Close()
	if _, _, err := m.Execute(context.Background(), plan, db, core.Options{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := m.Reserve(context.Background(), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reserve err = %v, want ErrClosed", err)
	}
}
