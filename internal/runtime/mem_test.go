package runtime

// Memory as a scheduled resource: admission reserves a working-memory grant
// next to the thread reservation, a query that does not fit queues instead
// of overcommitting, the chain-boundary renegotiation returns surplus early,
// and the spill ledgers aggregate per-query disk traffic. These tests drive
// the ledger through the planAllocation seam with fabricated estimates so
// grant arithmetic is exact.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dbs3/internal/core"
	"dbs3/internal/lera"
)

// fabricateMem wraps the real allocation planner and overrides the memory
// estimate, so thread-side behaviour stays realistic while the memory side
// is deterministic. Restores the seam on test cleanup.
func fabricateMem(t *testing.T, est int64, chainMem []int64) {
	t.Helper()
	old := planAllocation
	planAllocation = func(p *lera.Plan, d core.DB, o core.Options) (core.Allocation, error) {
		alloc, err := core.PlanAllocation(p, d, o)
		if err != nil {
			return alloc, err
		}
		alloc.MemEstimate = est
		alloc.ChainMem = chainMem
		return alloc, nil
	}
	t.Cleanup(func() { planAllocation = old })
}

// TestMemoryGrantArithmetic: the grant is min(estimate, per-query ceiling,
// free budget), floored at the minimum grant, and Admit rewrites the
// caller's MemoryBudget to it so the execution's accountant enforces what
// admission actually reserved. Finish returns every byte.
func TestMemoryGrantArithmetic(t *testing.T) {
	plan, db := joinPlan(t)
	const budget = 64 << 20
	fabricateMem(t, 10<<20, []int64{10 << 20})

	m := NewManager(Config{Budget: 8, MemoryBudget: budget})
	if st := m.Stats(); st.MemBudget != budget {
		t.Fatalf("MemBudget = %d, want %d", st.MemBudget, budget)
	}

	// Estimate below budget and ceiling: granted in full.
	opts := core.Options{}
	adm, err := m.Admit(context.Background(), plan, db, &opts, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if adm.MemoryGrant() != 10<<20 || opts.MemoryBudget != 10<<20 {
		t.Fatalf("grant = %d, opts.MemoryBudget = %d, want estimate %d", adm.MemoryGrant(), opts.MemoryBudget, 10<<20)
	}
	if st := m.Stats(); st.MemInFlight != 10<<20 || st.PeakMem != 10<<20 {
		t.Fatalf("in flight = %d, peak = %d", st.MemInFlight, st.PeakMem)
	}
	if adm.Stats.MemoryGrant != 10<<20 {
		t.Fatalf("QueryStats.MemoryGrant = %d", adm.Stats.MemoryGrant)
	}

	// A per-query ceiling caps the grant below the estimate.
	opts2 := core.Options{MemoryBudget: 4 << 20}
	adm2, err := m.Admit(context.Background(), plan, db, &opts2, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if adm2.MemoryGrant() != 4<<20 || opts2.MemoryBudget != 4<<20 {
		t.Fatalf("ceiled grant = %d, opts = %d, want %d", adm2.MemoryGrant(), opts2.MemoryBudget, 4<<20)
	}

	// Free headroom caps the grant below the estimate: 64-10-4 = 50 MiB
	// free, estimate asks for 60.
	fabricateMem(t, 60<<20, []int64{60 << 20})
	opts3 := core.Options{}
	adm3, err := m.Admit(context.Background(), plan, db, &opts3, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if adm3.MemoryGrant() != 50<<20 {
		t.Fatalf("headroom-capped grant = %d, want %d", adm3.MemoryGrant(), int64(50<<20))
	}
	if st := m.Stats(); st.MemInFlight != budget {
		t.Fatalf("in flight = %d, want full budget %d", st.MemInFlight, budget)
	}

	adm.Finish(nil)
	adm2.Finish(nil)
	adm3.Finish(nil)
	if st := m.Stats(); st.MemInFlight != 0 {
		t.Fatalf("in flight = %d after Finish, want 0", st.MemInFlight)
	}
	if st := m.Stats(); st.PeakMem != budget {
		t.Fatalf("peak = %d, want high-water %d", st.PeakMem, budget)
	}
}

// TestMemoryStarvedQueryQueues: when the free budget cannot cover even the
// minimum grant, the next query waits in line rather than admitting with a
// zero (= unlimited) grant, and proceeds once a finisher returns its bytes.
// This is the OOM fix in scheduling form: denial means queueing, never an
// unaccounted allocation.
func TestMemoryStarvedQueryQueues(t *testing.T) {
	plan, db := joinPlan(t)
	const budget = 8 << 20
	fabricateMem(t, budget, []int64{budget})

	m := NewManager(Config{Budget: 16, MemoryBudget: budget})
	opts := core.Options{Threads: 2}
	hog, err := m.Admit(context.Background(), plan, db, &opts, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if hog.MemoryGrant() != budget {
		t.Fatalf("hog grant = %d, want full budget", hog.MemoryGrant())
	}

	fabricateMem(t, 2<<20, []int64{2 << 20})
	admitted := make(chan *Admission, 1)
	errc := make(chan error, 1)
	go func() {
		opts2 := core.Options{Threads: 2}
		adm, err := m.Admit(context.Background(), plan, db, &opts2, PriorityInteractive)
		if err != nil {
			errc <- err
			return
		}
		admitted <- adm
	}()

	// Threads are free (2 of 16 held); only memory blocks the second query.
	deadline := time.Now().Add(2 * time.Second)
	for m.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := m.Stats(); st.Queued != 1 {
		t.Fatalf("starved query not queued: %+v", st)
	}
	select {
	case adm := <-admitted:
		adm.Finish(nil)
		t.Fatal("query admitted with no free memory")
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(50 * time.Millisecond):
	}

	hog.Finish(nil)
	select {
	case adm := <-admitted:
		if adm.MemoryGrant() != 2<<20 {
			t.Fatalf("post-wait grant = %d, want estimate", adm.MemoryGrant())
		}
		adm.Finish(nil)
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("queued query not admitted after memory freed")
	}
	if st := m.Stats(); st.MemInFlight != 0 {
		t.Fatalf("in flight = %d at drain, want 0", st.MemInFlight)
	}
}

// TestReadmitShrinksMemory: crossing a chain boundary renegotiates the
// memory reservation down to what the remaining chains need — surplus goes
// back to the pool mid-flight, floored at the minimum grant so the
// accountant is never retargeted to unlimited. Growth is never granted: the
// estimate was the high-water mark.
func TestReadmitShrinksMemory(t *testing.T) {
	plan, db := joinPlan(t)
	const budget = 64 << 20
	fabricateMem(t, 24<<20, []int64{24 << 20, 6 << 20, 512 << 10})

	m := NewManager(Config{Budget: 8, MemoryBudget: budget})
	opts := core.Options{}
	adm, err := m.Admit(context.Background(), plan, db, &opts, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if adm.MemoryHeld() != 24<<20 {
		t.Fatalf("held = %d at admit", adm.MemoryHeld())
	}

	// Entering chain 1: only chains 1.. matter, max(6MiB, 512KiB) = 6MiB.
	m.ReadmitAt(adm, 1, adm.Alloc().Want(1), 1)
	if held := adm.MemoryHeld(); held != 6<<20 {
		t.Fatalf("held = %d after chain-1 readmit, want %d", held, int64(6<<20))
	}
	st := m.Stats()
	if st.MemInFlight != 6<<20 || st.MemReturnedEarly != 18<<20 {
		t.Fatalf("in flight = %d, returned early = %d", st.MemInFlight, st.MemReturnedEarly)
	}

	// Entering chain 2: the remaining need (512KiB) is below the minimum
	// grant, so the hold floors there instead of shrinking to a value the
	// accountant would read as unlimited.
	m.ReadmitAt(adm, 2, adm.Alloc().Want(2), 1)
	if held := adm.MemoryHeld(); held != minMemGrant {
		t.Fatalf("held = %d after chain-2 readmit, want floor %d", held, int64(minMemGrant))
	}

	// The immutable grant is untouched by renegotiation.
	if adm.MemoryGrant() != 24<<20 {
		t.Fatalf("grant = %d, want original", adm.MemoryGrant())
	}
	adm.Finish(nil)
	if st := m.Stats(); st.MemInFlight != 0 {
		t.Fatalf("in flight = %d after Finish", st.MemInFlight)
	}
}

// TestNoteSpillLedgers: per-query spill traffic reported at Finish shows up
// on both the query's stats and the manager's machine-wide counters.
func TestNoteSpillLedgers(t *testing.T) {
	plan, db := joinPlan(t)
	fabricateMem(t, 4<<20, []int64{4 << 20})
	m := NewManager(Config{Budget: 8, MemoryBudget: 16 << 20})
	opts := core.Options{}
	adm, err := m.Admit(context.Background(), plan, db, &opts, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	adm.NoteSpill(1<<20, 2)
	adm.NoteSpill(512<<10, 1)
	adm.NoteSpill(0, 0) // no-op
	adm.Finish(nil)
	if adm.Stats.SpilledBytes != 1<<20+512<<10 || adm.Stats.SpillPasses != 3 {
		t.Fatalf("query spill = (%d, %d)", adm.Stats.SpilledBytes, adm.Stats.SpillPasses)
	}
	st := m.Stats()
	if st.SpilledBytes != 1<<20+512<<10 || st.SpillPasses != 3 {
		t.Fatalf("manager spill = (%d, %d)", st.SpilledBytes, st.SpillPasses)
	}
}

// TestMemoryBudgetNeverExceeded: under concurrent admissions with varied
// estimates, the reserved total observed at any instant never exceeds the
// manager's memory budget. This is the acceptance invariant for
// multi-resource admission.
func TestMemoryBudgetNeverExceeded(t *testing.T) {
	plan, db := joinPlan(t)
	const budget = 16 << 20
	fabricateMem(t, 5<<20, []int64{5 << 20})
	m := NewManager(Config{Budget: 64, MemoryBudget: budget})

	var exceeded atomic.Bool
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := m.Stats(); st.MemInFlight > budget {
				exceeded.Store(true)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				opts := core.Options{Threads: 2}
				adm, err := m.Admit(context.Background(), plan, db, &opts, PriorityInteractive)
				if err != nil {
					t.Error(err)
					return
				}
				if adm.MemoryGrant() > opts.MemoryBudget {
					t.Errorf("grant %d above rewritten budget %d", adm.MemoryGrant(), opts.MemoryBudget)
				}
				adm.Finish(nil)
			}
		}()
	}
	wg.Wait()
	close(stop)
	sampler.Wait()
	if exceeded.Load() {
		t.Fatal("reserved memory exceeded the manager budget")
	}
	if st := m.Stats(); st.MemInFlight != 0 || st.PeakMem > budget {
		t.Fatalf("drain state: in flight %d, peak %d (budget %d)", st.MemInFlight, st.PeakMem, budget)
	}
}
