// Package runtime turns the single-shot execution engine into a concurrent
// query runtime. Its QueryManager owns a machine-wide thread budget shared by
// every concurrently executing query, admits queries through a bounded queue,
// and closes the paper's [Rahm93] feedback loop: the Utilization that step 1
// of the Figure 5 scheduler uses to shrink a query's degree of parallelism
// "to increase the multi-user throughput" is no longer a hand-set constant
// but is measured from the threads currently allocated to other queries at
// admission time, smoothed by an EWMA over recently completed queries so the
// signal stays informative between bursts.
//
// Admission is split into two halves so callers can stream results: Admit
// reserves the query's thread allocation against the budget and returns an
// Admission; the caller runs core.ExecuteAllocated at its leisure (possibly
// feeding a row cursor) and calls Admission.Finish when the execution ends —
// including when a client closes its cursor mid-result, which is how
// streaming queries hand threads back early. Execute remains the one-call
// convenience wrapper.
//
// Reservations are renegotiable mid-flight: at each chain boundary of a
// multi-chain query — the paper's materialization points — the engine calls
// Manager.Readmit with the next chain's desired thread count, and the
// manager returns the finished chain's surplus to the budget or grows the
// allocation into freed headroom, re-running the scheduler's utilization
// throttle with a fresh measurement. A long batch query thus stops pinning
// its admission-time thread count through chains that need fewer, and can
// expand into budget released by completed peers.
package runtime

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"

	"dbs3/internal/core"
	"dbs3/internal/lera"
	"dbs3/internal/storage"
)

// ErrQueueFull is returned when a query arrives while the bounded admission
// queue is at capacity. Callers should shed the query (or retry later)
// rather than pile unbounded demand onto a saturated machine.
var ErrQueueFull = errors.New("runtime: admission queue full")

// ErrClosed is returned for queries submitted to a closed manager.
var ErrClosed = errors.New("runtime: manager closed")

// Priority is a query's admission class. Interactive queries are served
// ahead of batch queries at the ticket line; aging guarantees batch is never
// starved (see Config.BatchAging).
type Priority int

const (
	// PriorityInteractive is the default class: short, latency-sensitive
	// queries served first.
	PriorityInteractive Priority = iota
	// PriorityBatch marks long, throughput-oriented queries that yield to
	// interactive traffic.
	PriorityBatch

	priorityCount
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityInteractive:
		return "interactive"
	case PriorityBatch:
		return "batch"
	default:
		return "unknown"
	}
}

// Config sizes a QueryManager.
type Config struct {
	// Budget is the machine-wide thread budget shared by all concurrent
	// queries; 0 defaults to GOMAXPROCS. The sum of threads allocated to
	// in-flight queries never exceeds it.
	Budget int
	// MaxQueued bounds the admission queue: queries beyond it are rejected
	// with ErrQueueFull instead of waiting. A quarter of the bound (when
	// it is at least 4) is reserved for interactive arrivals — batch
	// queries are rejected earlier so a batch flood cannot shed the
	// latency-sensitive class. 0 defaults to 4*Budget.
	MaxQueued int
	// BatchAging bounds batch starvation: after this many consecutive
	// interactive admissions while a batch query waited, the batch head is
	// served next as soon as its threads fit the free budget; after twice
	// this many, it is served next unconditionally — blocking the line
	// until its threads accumulate. 0 defaults to 4.
	BatchAging int
	// MemoryBudget is the machine-wide working-memory budget in bytes shared
	// by all concurrent queries, reserved next to threads: at admission each
	// query is granted min(its cost-model memory estimate, its caller
	// ceiling, the free budget) and a query whose minimum grant does not fit
	// waits in its line instead of OOMing the process. 0 disables memory
	// admission — queries run with whatever per-query ceiling the caller
	// set, unmanaged.
	MemoryBudget int64
}

// Stats is a snapshot of the manager's aggregate counters.
type Stats struct {
	// Admitted, Completed, Failed, Cancelled and Rejected count queries
	// over the manager's lifetime. Failed counts both planning errors at
	// the admission point (bad data, missing relations — these never
	// reach Admitted) and execution errors; Cancelled counts context
	// cancellations both while queued and mid-execution (cursor Close
	// mid-result lands here too); Rejected counts ErrQueueFull sheds.
	// Admitted = Completed + Failed-during-execution +
	// Cancelled-during-execution + Active once drained.
	Admitted, Completed, Failed, Cancelled, Rejected int64
	// Queued and Active are the current admission-queue length and the
	// number of queries executing right now. QueuedInteractive and
	// QueuedBatch split Queued by priority class.
	Queued, QueuedInteractive, QueuedBatch, Active int
	// ThreadsInFlight is the thread count currently allocated across active
	// queries; PeakThreads is its lifetime high-water mark (always <= the
	// budget).
	ThreadsInFlight, PeakThreads int
	// MemBudget is the configured memory budget (0 = memory admission off);
	// MemInFlight is the byte total currently reserved by active queries and
	// PeakMem its lifetime high-water mark (always <= MemBudget).
	MemBudget, MemInFlight, PeakMem int64
	// SpilledBytes and SpillPasses total the larger-than-memory activity of
	// finished and in-flight queries: bytes written to spill runs and
	// partitioning/merge passes taken, as reported by each query's spill
	// accountant.
	SpilledBytes, SpillPasses int64
	// MemReturnedEarly totals the bytes chain-boundary renegotiations handed
	// back to the memory budget mid-flight (before Finish) — the memory
	// analogue of ThreadsReturnedEarly. Memory renegotiation is shrink-only.
	MemReturnedEarly int64
	// Readmissions counts chain-boundary renegotiations: every time a
	// multi-chain query re-ran the Figure 5 scheduler step at a
	// materialization point (Manager.Readmit), whether or not the grant
	// changed. ThreadsReturnedEarly totals the threads such renegotiations
	// handed back to the budget mid-flight (before Finish);
	// ThreadsGrownMidFlight totals the threads they took out of freed
	// budget to grow a later chain.
	Readmissions, ThreadsReturnedEarly, ThreadsGrownMidFlight int64
	// SmoothedUtilization is the EWMA over recently completed queries'
	// leftover utilization — the slow half of the admission feedback
	// signal.
	SmoothedUtilization float64
	// PlanCacheHits and PlanCacheMisses count the facade's plan-cache
	// outcomes — every statement resolution while this manager was
	// installed, including Prepare and EXPLAIN, not just executed
	// queries. They measure compilations avoided, so they are not
	// comparable 1:1 with Admitted (a prepared statement resolves once
	// and executes many times).
	PlanCacheHits, PlanCacheMisses int64
}

// QueryStats describes one admitted query's passage through the manager —
// the per-query half of the feedback loop.
type QueryStats struct {
	// Utilization is the effective processor utilization fed to the
	// scheduler: the maximum of the caller's Options value and Smoothed.
	Utilization float64
	// Measured is the raw instantaneous sample at admission: threads
	// already allocated to other queries divided by the budget.
	Measured float64
	// Smoothed blends Measured with the manager's EWMA over recently
	// completed queries' utilization. The blend only ever raises the
	// sample (a calm instant right after a burst is still treated as
	// busy); a genuinely loaded instant is never watered down by a calm
	// history.
	Smoothed float64
	// Threads is the thread count reserved for (and used by) the query.
	Threads int
	// Available is the budget headroom the query was admitted into.
	Available int
	// Priority is the admission class the query was queued under.
	Priority Priority
	// ChainThreads is the per-chain thread trace of a multi-chain query:
	// the totals granted at each materialization-point renegotiation, in
	// chain order. Empty for single-chain queries, explicit-thread queries
	// and unmanaged executions (populated at Finish).
	ChainThreads []int
	// MemoryGrant is the working-memory byte budget reserved for the query
	// at admission — min(cost-model estimate, caller ceiling, free budget).
	// 0 when memory admission is off or the plan has no blocking operators.
	MemoryGrant int64
	// SpilledBytes and SpillPasses record the query's larger-than-memory
	// activity: bytes written to spill runs and partition/merge passes
	// taken. Zero for queries that fit their grant.
	SpilledBytes, SpillPasses int64
}

// ewmaAlpha weighs a completed query's leftover-utilization sample into the
// manager's EWMA; ewmaBlend weighs the EWMA against the instantaneous sample
// at admission.
const (
	ewmaAlpha = 0.3
	ewmaBlend = 0.5
)

// minMemGrant is the smallest working-memory grant a query with any memory
// need waits for (1 MiB, clamped to the budget when the budget is smaller).
// Admission never hands out a zero grant to a query that needs memory — a
// zero grant would read as "unlimited" to the spill accountant — so a query
// arriving while the budget is exhausted queues until at least this much
// frees up, rather than OOMing or running unbounded.
const minMemGrant = 1 << 20

// Manager is the concurrent query runtime: a machine-wide thread budget, a
// bounded two-class admission queue, and measured-utilization feedback into
// each admitted query's scheduler. The zero value is not usable; call
// NewManager.
//
// Admission within a class is FIFO by ticket: a query with a large explicit
// thread request cannot be starved by a stream of small queries — it blocks
// its line until its threads free up (head-of-line blocking is the price of
// fairness). Across classes, interactive is served before batch, with aging
// so batch is never starved.
type Manager struct {
	budget     int
	maxQueued  int
	batchAging int
	memBudget  int64 // working-memory budget in bytes; 0 = memory admission off

	mu   sync.Mutex
	cond *sync.Cond

	allocated    int   // threads reserved by in-flight queries
	memAllocated int64 // working-memory bytes reserved by in-flight queries
	queued       [priorityCount]int
	active       int
	closed       bool

	// Two FIFO ticket lines, one per priority class. headLocked picks the
	// single ticket allowed to admit next; admitting pins it so the choice
	// cannot flip while that ticket plans its allocation outside the lock.
	nextTicket  int64
	lines       [priorityCount][]waiter
	admitting   int64 // ticket currently mid-admission, -1 if none
	iStreak     int   // consecutive interactive admissions while batch waited
	ewma        float64
	ewmaSet     bool
	cacheHits   int64
	cacheMisses int64

	admitted        int64
	completed       int64
	failed          int64
	cancelled       int64
	rejected        int64
	readmissions    int64
	threadsReturned int64
	threadsGrown    int64
	memReturned     int64
	spilledBytes    int64
	spillPasses     int64
	peak            int
	peakMem         int64
}

// planAllocation is the out-of-lock allocation-planning step of Admit,
// swappable in tests to interpose exactly between a ticket passing its wait
// and the reservation (the cancel/Close-during-planning races).
var planAllocation = core.PlanAllocation

// NewManager creates a manager with the given configuration.
func NewManager(cfg Config) *Manager {
	if cfg.Budget <= 0 {
		cfg.Budget = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 4 * cfg.Budget
	}
	if cfg.BatchAging <= 0 {
		cfg.BatchAging = 4
	}
	if cfg.MemoryBudget < 0 {
		cfg.MemoryBudget = 0
	}
	m := &Manager{budget: cfg.Budget, maxQueued: cfg.MaxQueued, batchAging: cfg.BatchAging, memBudget: cfg.MemoryBudget, admitting: -1}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// waiter is one queued admission: its line ticket plus the thread count and
// working-memory bytes it must see free before it can take its turn (used by
// awaitTurnLocked and headLocked's aging fit-check).
type waiter struct {
	ticket  int64
	need    int
	memNeed int64
}

// takeTicketLocked joins the FIFO line of the given class.
func (m *Manager) takeTicketLocked(pri Priority, need int, memNeed int64) int64 {
	t := m.nextTicket
	m.nextTicket++
	m.lines[pri] = append(m.lines[pri], waiter{ticket: t, need: need, memNeed: memNeed})
	return t
}

// memFitsLocked reports whether need bytes fit the free memory budget (true
// whenever memory admission is off).
func (m *Manager) memFitsLocked(need int64) bool {
	return m.memBudget <= 0 || m.memBudget-m.memAllocated >= need
}

// headLocked returns the ticket allowed to admit next. A ticket that already
// passed its wait and is planning its allocation outside the lock stays head
// until it reserves or leaves, so headroom measured at its admission point
// cannot be claimed by anyone else meanwhile.
func (m *Manager) headLocked() (int64, bool) {
	if m.admitting >= 0 {
		return m.admitting, true
	}
	iLine, bLine := m.lines[PriorityInteractive], m.lines[PriorityBatch]
	switch {
	case len(iLine) > 0 && len(bLine) > 0:
		// Aging is soft at first: the batch head is promoted once the
		// streak trips, but only when its threads actually fit the current
		// headroom — a batch query too big to run must not stall
		// interactive admissions that would fit. Past twice the aging
		// bound the promotion turns hard (head regardless of fit), so a
		// big batch query still gets the head-of-line blocking it needs to
		// ever accumulate its threads.
		if m.iStreak >= m.batchAging {
			if m.iStreak >= 2*m.batchAging || (m.budget-m.allocated >= bLine[0].need && m.memFitsLocked(bLine[0].memNeed)) {
				return bLine[0].ticket, true
			}
		}
		return iLine[0].ticket, true
	case len(iLine) > 0:
		return iLine[0].ticket, true
	case len(bLine) > 0:
		return bLine[0].ticket, true
	}
	return 0, false
}

// removeLocked takes a ticket out of its line. The aging streak only
// measures bypasses of the batch queries currently waiting: when the last
// one leaves (admitted or abandoned), the streak resets so a later batch
// arrival starts aging from zero instead of inheriting instant promotion.
func (m *Manager) removeLocked(pri Priority, ticket int64) {
	line := m.lines[pri]
	for i, w := range line {
		if w.ticket == ticket {
			m.lines[pri] = append(line[:i], line[i+1:]...)
			break
		}
	}
	if pri == PriorityBatch && len(m.lines[PriorityBatch]) == 0 {
		m.iStreak = 0
	}
}

// leaveLocked abandons a ticket (cancellation, close, planning error) and
// wakes the line so the next head can proceed.
func (m *Manager) leaveLocked(pri Priority, ticket int64) {
	m.removeLocked(pri, ticket)
	if m.admitting == ticket {
		m.admitting = -1
	}
	m.cond.Broadcast()
}

// awaitTurnLocked blocks until the ticket is the head of the line with need
// threads and memNeed working-memory bytes available, or the manager closes
// / ctx is cancelled. On success the ticket is pinned as the admitting
// ticket. The memory fit is what makes a query arriving into an exhausted
// memory budget queue instead of OOM: it waits here, like a query whose
// threads do not fit, until peers finish (or renegotiate down) and free
// enough bytes for its minimum grant.
func (m *Manager) awaitTurnLocked(ctx context.Context, pri Priority, ticket int64, need int, memNeed int64) error {
	for {
		if m.closed {
			m.leaveLocked(pri, ticket)
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			m.leaveLocked(pri, ticket)
			return err
		}
		if head, ok := m.headLocked(); ok && head == ticket && m.budget-m.allocated >= need && m.memFitsLocked(memNeed) {
			m.admitting = ticket
			return nil
		}
		m.cond.Wait()
	}
}

// reserveLocked finalizes an admission: takes n threads and mem bytes out of
// the budgets, retires the ticket, and updates the cross-class aging streak.
func (m *Manager) reserveLocked(pri Priority, ticket int64, n int, mem int64) {
	m.allocated += n
	if m.allocated > m.peak {
		m.peak = m.allocated
	}
	m.memAllocated += mem
	if m.memAllocated > m.peakMem {
		m.peakMem = m.memAllocated
	}
	m.removeLocked(pri, ticket)
	m.admitting = -1
	if pri == PriorityBatch {
		m.iStreak = 0
	} else if len(m.lines[PriorityBatch]) > 0 {
		m.iStreak++
	} else {
		m.iStreak = 0
	}
	m.cond.Broadcast()
}

// Budget returns the machine-wide thread budget.
func (m *Manager) Budget() int { return m.budget }

// Utilization returns the current measured utilization: allocated threads
// over budget, in [0, 1].
func (m *Manager) Utilization() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return float64(m.allocated) / float64(m.budget)
}

// SmoothedUtilization returns the EWMA over recently completed queries'
// leftover utilization (0 until the first completion).
func (m *Manager) SmoothedUtilization() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ewma
}

// NotePlanCache records one facade plan-cache outcome, surfaced in Stats.
func (m *Manager) NotePlanCache(hit bool) {
	m.mu.Lock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMisses++
	}
	m.mu.Unlock()
}

// Stats snapshots the aggregate counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Admitted:              m.admitted,
		Completed:             m.completed,
		Failed:                m.failed,
		Cancelled:             m.cancelled,
		Rejected:              m.rejected,
		Queued:                m.queued[PriorityInteractive] + m.queued[PriorityBatch],
		QueuedInteractive:     m.queued[PriorityInteractive],
		QueuedBatch:           m.queued[PriorityBatch],
		Active:                m.active,
		ThreadsInFlight:       m.allocated,
		PeakThreads:           m.peak,
		MemBudget:             m.memBudget,
		MemInFlight:           m.memAllocated,
		PeakMem:               m.peakMem,
		SpilledBytes:          m.spilledBytes,
		SpillPasses:           m.spillPasses,
		MemReturnedEarly:      m.memReturned,
		Readmissions:          m.readmissions,
		ThreadsReturnedEarly:  m.threadsReturned,
		ThreadsGrownMidFlight: m.threadsGrown,
		SmoothedUtilization:   m.ewma,
		PlanCacheHits:         m.cacheHits,
		PlanCacheMisses:       m.cacheMisses,
	}
}

// blendLocked blends an instantaneous utilization sample with the
// completion EWMA, only ever upward: a calm instant right after a burst is
// still treated as busy, while a genuinely loaded instant is never watered
// down by a calm history. Shared by the admission sample and the
// chain-boundary renegotiation so the two throttles cannot drift apart.
func (m *Manager) blendLocked(u float64) float64 {
	if m.ewmaSet {
		if blended := ewmaBlend*u + (1-ewmaBlend)*m.ewma; blended > u {
			u = blended
		}
	}
	return u
}

// Readmit renegotiates an in-flight admission's thread reservation at a
// chain boundary — the paper's materialization points, where a plan-based
// re-optimization is safe because no operator is mid-pipeline. want is the
// next chain's desired thread count (Allocation.ChainWant) and min its node
// count — the floor the chain actually runs with, since every node pool
// needs at least one thread. Readmit re-runs the Figure 5 step-1 throttle
// against utilization measured freshly from the threads other queries hold
// right now (blended, like the admission sample, with the completion EWMA
// so a momentary trough reads as busy), then:
//
//   - shrinks the reservation when the chain needs less than is held,
//     returning the surplus to the budget immediately (queued admissions
//     are woken), or
//   - grows it into free headroom when the chain wants more — never
//     blocking: the grant is capped at held + free, because a mid-flight
//     query that waited for threads while holding threads could deadlock
//     against the admission line.
//
// The granted total (>= 1) is returned; the engine redistributes the
// chain's node threads over it (core.Options.Readmit). When growth is
// unavailable (planning window, or free headroom below min) the grant can
// still land under min — the same nominal-ledger mismatch an admission
// into a squeezed budget has, never an overcommit. Releases do not feed
// the utilization EWMA — only Finish samples it, once per query. Calling
// Readmit on a finished admission is a harmless no-op.
func (m *Manager) Readmit(a *Admission, want, min int) int {
	return m.ReadmitAt(a, -1, want, min)
}

// ReadmitAt is Readmit with the chain boundary made explicit: chain is the
// index of the chain about to start, and alongside the thread renegotiation
// the query's working-memory reservation is shrunk to the peak estimate of
// the remaining chains (Allocation.ChainMem[chain:]), capped at the original
// grant. Memory renegotiation is shrink-only and never blocks — growth would
// reintroduce hold-and-wait against the admission line, and a chain that
// turns out to need more than the shrunk grant degrades by spilling, not by
// waiting. Returned bytes wake queued admissions immediately, so a long
// multi-chain query stops pinning its peak-chain memory through cheap tail
// chains. The estimate ledger is approximate (materialized intermediates
// from earlier chains are priced into the chain that wrote them); the spill
// accountant, retargeted to the shrunk grant by the caller, is the
// enforcement boundary. chain < 0 (or out of range) skips the memory step.
func (m *Manager) ReadmitAt(a *Admission, chain, want, min int) int {
	if min < 1 {
		min = 1
	}
	if min > m.budget {
		min = m.budget
	}
	if want < min {
		want = min
	}
	if a == nil || a.m != m {
		return want
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if a.finished {
		return a.held
	}
	// Fresh utilization from the other queries' threads: the same throttle
	// step 1 applied at admission, re-measured at the boundary.
	others := m.allocated - a.held
	if others < 0 {
		others = 0
	}
	u := m.blendLocked(float64(others) / float64(m.budget))
	grant := want
	if u > 0 && u < 1 {
		grant = int(math.Round(float64(want) * (1 - u)))
	}
	// The throttle never cuts below the chain's node count: a smaller
	// grant could not be honored (every pool runs >= 1 thread) and would
	// overstate the threads returned to the budget.
	if grant < min {
		grant = min
	}
	if grant > a.held {
		// Growth takes free budget — but never while an admission is
		// planning its allocation outside the lock: the pinned admitting
		// ticket measured the headroom it will reserve from, and growing
		// under it would overcommit the budget when it reserves. (A shrink
		// during the window is always safe — it only adds headroom beyond
		// what the ticket measured.) Declining growth keeps Readmit
		// non-blocking; the chain simply runs with what it holds.
		if m.admitting >= 0 {
			grant = a.held
		} else if free := m.budget - m.allocated; grant > a.held+free {
			grant = a.held + free
		}
	}
	switch {
	case grant < a.held:
		m.allocated -= a.held - grant
		m.threadsReturned += int64(a.held - grant)
		m.cond.Broadcast()
	case grant > a.held:
		m.allocated += grant - a.held
		m.threadsGrown += int64(grant - a.held)
		if m.allocated > m.peak {
			m.peak = m.allocated
		}
	}
	a.held = grant
	a.trace = append(a.trace, grant)
	m.readmissions++
	// Memory renegotiation: shrink the reservation to the peak estimate of
	// the chains still to run, floored so the accountant never retargets to
	// zero (zero reads as "unlimited") while the query holds a grant.
	if m.memBudget > 0 && a.memHeld > 0 && chain >= 0 && chain < len(a.alloc.ChainMem) {
		var remain int64
		for _, n := range a.alloc.ChainMem[chain:] {
			if n > remain {
				remain = n
			}
		}
		floor := a.memGrant
		if floor > minMemGrant {
			floor = minMemGrant
		}
		if remain < floor {
			remain = floor
		}
		if remain > a.memGrant {
			remain = a.memGrant
		}
		if remain < a.memHeld {
			m.memAllocated -= a.memHeld - remain
			m.memReturned += a.memHeld - remain
			a.memHeld = remain
			m.cond.Broadcast()
		}
	}
	return grant
}

// Close rejects all future submissions and wakes queued queries, which
// return ErrClosed. In-flight executions are not interrupted.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Reserve takes n threads out of the budget for work outside the manager
// (or to simulate load in tests), waiting in the interactive line until they
// are available. A waiting Reserve counts against MaxQueued and is visible
// in Stats.Queued/QueuedInteractive like any queued query — the queue bound
// and the pressure /stats reports cover every consumer of the line, not
// just Admit. The returned release function returns the threads; it is
// idempotent. Releases do not feed the utilization EWMA — that signal
// samples query completions only (Admission.Finish).
func (m *Manager) Reserve(ctx context.Context, n int) (release func(), err error) {
	if n < 0 {
		n = 0
	}
	if n > m.budget {
		n = m.budget
	}
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if m.queued[PriorityInteractive]+m.queued[PriorityBatch] >= m.maxQueued {
		m.rejected++
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.queued[PriorityInteractive]++
	ticket := m.takeTicketLocked(PriorityInteractive, n, 0)
	err = m.awaitTurnLocked(ctx, PriorityInteractive, ticket, n, 0)
	m.queued[PriorityInteractive]--
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.reserveLocked(PriorityInteractive, ticket, n, 0)
	m.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			m.allocated -= n
			m.cond.Broadcast()
			m.mu.Unlock()
		})
	}, nil
}

// Admission is one admitted query's reservation against the budget. The
// caller owns the reserved threads until Finish returns them; Stats and
// Alloc describe what the admission decided. Between chains of a
// multi-chain query the reservation is renegotiable: Manager.Readmit
// adjusts the held thread count at each materialization point.
type Admission struct {
	m     *Manager
	alloc core.Allocation
	// Stats is the per-query feedback record (effective utilization fed to
	// the scheduler, reserved threads, admission class). ChainThreads is
	// filled in at Finish; reading Stats while the query still executes
	// races with renegotiation.
	Stats QueryStats

	once sync.Once

	// held is the thread count currently reserved (starts at alloc.Total,
	// renegotiated by Readmit); trace records each renegotiated grant;
	// finished blocks late Readmit calls. memGrant is the working-memory
	// bytes granted at admission (immutable); memHeld is the bytes
	// currently reserved (shrunk by ReadmitAt). All but memGrant guarded
	// by m.mu.
	held     int
	memGrant int64
	memHeld  int64
	finished bool
	trace    []int
}

// Alloc is the thread allocation reserved for the query; pass it to
// core.ExecuteAllocated together with the Options Admit adjusted.
func (a *Admission) Alloc() core.Allocation { return a.alloc }

// ChainTrace returns the per-chain thread grants renegotiated so far (one
// entry per Manager.Readmit call, in chain order).
func (a *Admission) ChainTrace() []int {
	a.m.mu.Lock()
	defer a.m.mu.Unlock()
	return append([]int(nil), a.trace...)
}

// MemoryGrant returns the working-memory bytes granted at admission (0 when
// memory admission is off or the plan estimates no blocking-operator state).
// This is the grant a query's spill accountant starts from.
func (a *Admission) MemoryGrant() int64 { return a.memGrant }

// MemoryHeld returns the working-memory bytes currently reserved — the
// admission grant, minus what chain-boundary renegotiations handed back.
func (a *Admission) MemoryHeld() int64 {
	a.m.mu.Lock()
	defer a.m.mu.Unlock()
	return a.memHeld
}

// NoteSpill records a query's larger-than-memory activity — bytes written
// to spill runs and partition/merge passes — into the manager's lifetime
// counters and the admission's QueryStats. Call it once, when the execution
// ends and the spill accountant's totals are final (before or after Finish).
func (a *Admission) NoteSpill(bytes, passes int64) {
	if bytes == 0 && passes == 0 {
		return
	}
	m := a.m
	m.mu.Lock()
	m.spilledBytes += bytes
	m.spillPasses += passes
	a.Stats.SpilledBytes += bytes
	a.Stats.SpillPasses += passes
	m.mu.Unlock()
}

// Finish returns the reservation — whatever Readmit has left of it — to the
// budget and classifies the outcome from err itself: nil = completed, a
// context cancellation or deadline = cancelled, anything else = failed. An
// operator failure stays Failed even when the caller's context also died
// (cancel-on-error), so the ledgers stay truthful. It is idempotent; later
// calls are no-ops. Finish also feeds the completion into the manager's
// utilization EWMA.
func (a *Admission) Finish(err error) {
	a.once.Do(func() {
		m := a.m
		m.mu.Lock()
		a.finished = true
		a.Stats.ChainThreads = append([]int(nil), a.trace...)
		m.allocated -= a.held
		m.memAllocated -= a.memHeld
		a.memHeld = 0
		m.active--
		switch {
		case err == nil:
			m.completed++
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			m.cancelled++
		default:
			m.failed++
		}
		// The leftover load this query's run leaves behind is the EWMA
		// sample: under sustained concurrency completions sample high, so
		// a query arriving in a momentary trough is still throttled; a
		// machine running one query at a time samples zero and keeps
		// single-user parallelism.
		sample := float64(m.allocated) / float64(m.budget)
		if m.ewmaSet {
			m.ewma = ewmaAlpha*sample + (1-ewmaAlpha)*m.ewma
		} else {
			m.ewma = sample
			m.ewmaSet = true
		}
		m.cond.Broadcast()
		m.mu.Unlock()
	})
}

// Admit reserves one query's thread allocation against the shared budget.
//
// The query waits in its class line (bounded by MaxQueued across classes)
// until the budget has headroom — one thread for auto-threaded queries, the
// full explicit opts.Threads otherwise (clamped to the budget). On admission
// the manager measures utilization from the threads other queries hold,
// blends it with the completion EWMA, caps the query's usable processors at
// the remaining headroom, runs the Figure 5 scheduler, and reserves the
// chosen thread count before returning — so the sum of reserved threads
// never exceeds the budget. opts is adjusted in place (Utilization,
// Processors) and must be the Options later passed to ExecuteAllocated.
//
// The caller must call Finish on the returned Admission exactly when the
// execution ends — normal completion, failure, or a streaming client closing
// its cursor mid-result — to hand the threads back.
func (m *Manager) Admit(ctx context.Context, plan *lera.Plan, db core.DB, opts *core.Options, pri Priority) (*Admission, error) {
	if pri < 0 || pri >= priorityCount {
		pri = PriorityInteractive
	}
	if opts.Threads > m.budget {
		opts.Threads = m.budget
	}
	need := 1
	if opts.Threads > 0 {
		need = opts.Threads
	}
	// With memory admission on, every query waits for at least the minimum
	// grant — its true estimate is not known until the plan is costed, which
	// happens after the wait. The pinned admitting ticket keeps the free
	// memory measured here stable through planning, so the post-planning
	// grant never overcommits the budget.
	var memNeed int64
	if m.memBudget > 0 {
		memNeed = minMemGrant
		if memNeed > m.memBudget {
			memNeed = m.memBudget
		}
	}

	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	// Batch admissions stop short of the full queue bound so a batch flood
	// cannot shed the latency-sensitive class — the reserved slots are
	// usable by interactive arrivals only.
	limit := m.maxQueued
	if pri == PriorityBatch {
		limit -= m.maxQueued / 4
	}
	if m.queued[PriorityInteractive]+m.queued[PriorityBatch] >= limit {
		m.rejected++
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.queued[pri]++
	ticket := m.takeTicketLocked(pri, need, memNeed)
	if err := m.awaitTurnLocked(ctx, pri, ticket, need, memNeed); err != nil {
		m.queued[pri]--
		if err != ErrClosed {
			m.cancelled++
		}
		m.mu.Unlock()
		return nil, err
	}

	// Admission point: measure concurrent load and feed it to the
	// scheduler. Cost estimation runs outside the lock — the pinned
	// admitting ticket guarantees no other query can reserve threads
	// meanwhile (completions only grow the headroom), so the allocation
	// stays within budget.
	available := m.budget - m.allocated
	measured := float64(m.allocated) / float64(m.budget)
	smoothed := m.blendLocked(measured)
	m.mu.Unlock()
	if smoothed > opts.Utilization {
		opts.Utilization = smoothed
	}
	if opts.Processors <= 0 || opts.Processors > available {
		opts.Processors = available
	}
	// Processors is squeezed to the instantaneous headroom so the initial
	// allocation fits; Machine keeps the whole budget in view so a
	// chain-boundary renegotiation can grow into budget freed later.
	opts.Machine = m.budget
	alloc, planErr := planAllocation(plan, db, *opts)
	m.mu.Lock()
	m.queued[pri]--
	if planErr != nil {
		m.failed++
		m.leaveLocked(pri, ticket)
		m.mu.Unlock()
		return nil, planErr
	}
	// Allocation planning ran outside the lock: the query may have died —
	// or the manager closed — meanwhile. Reserving anyway would launch an
	// execution that instantly aborts while its threads sit out the abort
	// in the budget; re-check before committing.
	if m.closed {
		m.leaveLocked(pri, ticket)
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		m.cancelled++
		m.leaveLocked(pri, ticket)
		m.mu.Unlock()
		return nil, err
	}
	// Memory grant: the cost-model estimate, capped by the caller's
	// per-query ceiling and the free budget, floored (when the query needs
	// any memory at all) so the spill accountant never starts from zero.
	// The wait guaranteed minMemGrant free, and nothing could take memory
	// during planning (the pinned ticket blocks reservations; renegotiation
	// only shrinks), so the grant always fits the budget.
	var memGrant int64
	if m.memBudget > 0 && alloc.MemEstimate > 0 {
		memGrant = alloc.MemEstimate
		if opts.MemoryBudget > 0 && memGrant > opts.MemoryBudget {
			memGrant = opts.MemoryBudget
		}
		if free := m.memBudget - m.memAllocated; memGrant > free {
			memGrant = free
		}
		if memGrant < memNeed {
			memGrant = memNeed
		}
		// The grant becomes the query's enforcement ceiling: the engine
		// builds its spill accountant from opts.MemoryBudget.
		opts.MemoryBudget = memGrant
	}
	m.reserveLocked(pri, ticket, alloc.Total, memGrant)
	m.admitted++
	m.active++
	m.mu.Unlock()

	return &Admission{
		m:        m,
		alloc:    alloc,
		held:     alloc.Total,
		memGrant: memGrant,
		memHeld:  memGrant,
		Stats: QueryStats{
			Utilization: opts.Utilization,
			Measured:    measured,
			Smoothed:    smoothed,
			Threads:     alloc.Total,
			Available:   available,
			Priority:    pri,
			MemoryGrant: memGrant,
		},
	}, nil
}

// Execute admits one query and runs it under the shared budget: Admit +
// core.ExecuteAllocated + Finish in one call, for callers that do not stream
// results. The query is queued as PriorityInteractive. Multi-chain queries
// renegotiate their reservation at each materialization point (Readmit);
// the per-chain grants come back in QueryStats.ChainThreads.
func (m *Manager) Execute(ctx context.Context, plan *lera.Plan, db core.DB, opts core.Options) (*core.Result, QueryStats, error) {
	adm, err := m.Admit(ctx, plan, db, &opts, PriorityInteractive)
	if err != nil {
		return nil, QueryStats{}, err
	}
	// Own the spill environment (rather than letting the engine create one)
	// so chain-boundary renegotiation can retarget the accountant to the
	// shrunk reservation, and the query's spill totals land in the manager
	// ledgers at the end.
	var env *storage.SpillEnv
	if opts.Spill == nil && opts.MemoryBudget > 0 {
		env, err = storage.NewSpillEnv(opts.SpillDir, opts.MemoryBudget, storage.PoolPagesFor(opts.MemoryBudget), nil)
		if err != nil {
			adm.Finish(err)
			return nil, adm.Stats, err
		}
		opts.Spill = env
	}
	opts.Readmit = func(chain, want, min int) int {
		grant := m.ReadmitAt(adm, chain, want, min)
		if env != nil {
			env.Mem.SetGrant(adm.MemoryHeld())
		}
		return grant
	}
	res, err := core.ExecuteAllocated(ctx, plan, db, opts, adm.Alloc())
	if env != nil {
		adm.NoteSpill(env.Spilled())
		env.Close()
	}
	adm.Finish(err)
	return res, adm.Stats, err
}
