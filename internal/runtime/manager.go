// Package runtime turns the single-shot execution engine into a concurrent
// query runtime. Its QueryManager owns a machine-wide thread budget shared by
// every concurrently executing query, admits queries through a bounded queue,
// and closes the paper's [Rahm93] feedback loop: the Utilization that step 1
// of the Figure 5 scheduler uses to shrink a query's degree of parallelism
// "to increase the multi-user throughput" is no longer a hand-set constant
// but is measured from the threads currently allocated to other queries at
// admission time.
package runtime

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"dbs3/internal/core"
	"dbs3/internal/lera"
)

// ErrQueueFull is returned when a query arrives while the bounded admission
// queue is at capacity. Callers should shed the query (or retry later)
// rather than pile unbounded demand onto a saturated machine.
var ErrQueueFull = errors.New("runtime: admission queue full")

// ErrClosed is returned for queries submitted to a closed manager.
var ErrClosed = errors.New("runtime: manager closed")

// Config sizes a QueryManager.
type Config struct {
	// Budget is the machine-wide thread budget shared by all concurrent
	// queries; 0 defaults to GOMAXPROCS. The sum of threads allocated to
	// in-flight queries never exceeds it.
	Budget int
	// MaxQueued bounds the admission queue: queries beyond it are rejected
	// with ErrQueueFull instead of waiting. 0 defaults to 4*Budget.
	MaxQueued int
}

// Stats is a snapshot of the manager's aggregate counters.
type Stats struct {
	// Admitted, Completed, Failed, Cancelled and Rejected count queries
	// over the manager's lifetime. Failed counts execution errors (bad
	// data, missing relations); Cancelled counts context cancellations
	// both while queued and mid-execution; Rejected counts ErrQueueFull
	// sheds. Admitted = Completed + Failed + Cancelled-during-execution
	// + Active once drained.
	Admitted, Completed, Failed, Cancelled, Rejected int64
	// Queued and Active are the current admission-queue length and the
	// number of queries executing right now.
	Queued, Active int
	// ThreadsInFlight is the thread count currently allocated across active
	// queries; PeakThreads is its lifetime high-water mark (always <= the
	// budget).
	ThreadsInFlight, PeakThreads int
}

// QueryStats describes one admitted query's passage through the manager —
// the per-query half of the feedback loop.
type QueryStats struct {
	// Utilization is the measured processor utilization fed to the
	// scheduler: threads already allocated to other queries divided by the
	// budget, sampled at admission.
	Utilization float64
	// Threads is the thread count reserved for (and used by) the query.
	Threads int
	// Available is the budget headroom the query was admitted into.
	Available int
}

// Manager is the concurrent query runtime: a machine-wide thread budget, a
// bounded admission queue, and measured-utilization feedback into each
// admitted query's scheduler. The zero value is not usable; call NewManager.
//
// Admission is FIFO by ticket: a query with a large explicit thread request
// cannot be starved by a stream of small queries — it blocks the queue
// until its threads free up (head-of-line blocking is the price of
// fairness).
type Manager struct {
	budget    int
	maxQueued int

	mu   sync.Mutex
	cond *sync.Cond

	allocated int // threads reserved by in-flight queries
	queued    int
	active    int
	closed    bool

	// FIFO ticket line: serving is the ticket allowed to admit next;
	// waiters that give up out of turn park their ticket in abandoned so
	// the line can skip them.
	nextTicket int64
	serving    int64
	abandoned  map[int64]bool

	admitted  int64
	completed int64
	failed    int64
	cancelled int64
	rejected  int64
	peak      int
}

// NewManager creates a manager with the given configuration.
func NewManager(cfg Config) *Manager {
	if cfg.Budget <= 0 {
		cfg.Budget = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 4 * cfg.Budget
	}
	m := &Manager{budget: cfg.Budget, maxQueued: cfg.MaxQueued, abandoned: make(map[int64]bool)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// takeTicketLocked joins the FIFO line.
func (m *Manager) takeTicketLocked() int64 {
	t := m.nextTicket
	m.nextTicket++
	return t
}

// advanceLocked passes the head of the line on, skipping abandoned tickets,
// and wakes the waiters so the new head can proceed.
func (m *Manager) advanceLocked() {
	m.serving++
	for m.abandoned[m.serving] {
		delete(m.abandoned, m.serving)
		m.serving++
	}
	m.cond.Broadcast()
}

// leaveLocked abandons a ticket (cancellation, close, planning error),
// advancing the line if it was at the head.
func (m *Manager) leaveLocked(ticket int64) {
	if ticket == m.serving {
		m.advanceLocked()
		return
	}
	m.abandoned[ticket] = true
}

// awaitTurnLocked blocks until the ticket is at the head of the line with
// need threads available, or the manager closes / ctx is cancelled.
func (m *Manager) awaitTurnLocked(ctx context.Context, ticket int64, need int) error {
	for m.serving != ticket || m.budget-m.allocated < need {
		if m.closed {
			m.leaveLocked(ticket)
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			m.leaveLocked(ticket)
			return err
		}
		m.cond.Wait()
	}
	return nil
}

// Budget returns the machine-wide thread budget.
func (m *Manager) Budget() int { return m.budget }

// Utilization returns the current measured utilization: allocated threads
// over budget, in [0, 1].
func (m *Manager) Utilization() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return float64(m.allocated) / float64(m.budget)
}

// Stats snapshots the aggregate counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Admitted:        m.admitted,
		Completed:       m.completed,
		Failed:          m.failed,
		Cancelled:       m.cancelled,
		Rejected:        m.rejected,
		Queued:          m.queued,
		Active:          m.active,
		ThreadsInFlight: m.allocated,
		PeakThreads:     m.peak,
	}
}

// Close rejects all future submissions and wakes queued queries, which
// return ErrClosed. In-flight executions are not interrupted.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Reserve takes n threads out of the budget for work outside the manager
// (or to simulate load in tests), waiting until they are available. The
// returned release function returns them; it is idempotent.
func (m *Manager) Reserve(ctx context.Context, n int) (release func(), err error) {
	if n < 0 {
		n = 0
	}
	if n > m.budget {
		n = m.budget
	}
	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	ticket := m.takeTicketLocked()
	if err := m.awaitTurnLocked(ctx, ticket, n); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.allocated += n
	if m.allocated > m.peak {
		m.peak = m.allocated
	}
	m.advanceLocked()
	m.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			m.allocated -= n
			m.cond.Broadcast()
			m.mu.Unlock()
		})
	}, nil
}

// Execute admits one query and runs it under the shared budget.
//
// Admission: the query waits (in the bounded queue) until the budget has
// headroom — one thread for auto-threaded queries, the full explicit
// opts.Threads otherwise (clamped to the budget). On admission the manager
// measures utilization from the threads other queries hold, caps the
// query's usable processors at the remaining headroom, runs the Figure 5
// scheduler, and reserves the chosen thread count before execution starts —
// so the sum of reserved threads never exceeds the budget. The reservation
// is returned when the query finishes or is cancelled.
func (m *Manager) Execute(ctx context.Context, plan *lera.Plan, db core.DB, opts core.Options) (*core.Result, QueryStats, error) {
	if opts.Threads > m.budget {
		opts.Threads = m.budget
	}
	need := 1
	if opts.Threads > 0 {
		need = opts.Threads
	}

	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer stop()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, QueryStats{}, ErrClosed
	}
	if m.queued >= m.maxQueued {
		m.rejected++
		m.mu.Unlock()
		return nil, QueryStats{}, ErrQueueFull
	}
	m.queued++
	ticket := m.takeTicketLocked()
	if err := m.awaitTurnLocked(ctx, ticket, need); err != nil {
		m.queued--
		if err != ErrClosed {
			m.cancelled++
		}
		m.mu.Unlock()
		return nil, QueryStats{}, err
	}

	// Admission point: measure concurrent load and feed it to the
	// scheduler. Cost estimation runs outside the lock — the ticket line
	// guarantees no other query can reserve threads meanwhile (completions
	// only grow the headroom), so the allocation stays within budget.
	available := m.budget - m.allocated
	measured := float64(m.allocated) / float64(m.budget)
	m.mu.Unlock()
	if measured > opts.Utilization {
		opts.Utilization = measured
	}
	if opts.Processors <= 0 || opts.Processors > available {
		opts.Processors = available
	}
	alloc, planErr := core.PlanAllocation(plan, db, opts)
	m.mu.Lock()
	m.queued--
	if planErr != nil {
		m.failed++
		m.leaveLocked(ticket)
		m.mu.Unlock()
		return nil, QueryStats{}, planErr
	}
	m.allocated += alloc.Total
	if m.allocated > m.peak {
		m.peak = m.allocated
	}
	m.admitted++
	m.active++
	m.advanceLocked()
	m.mu.Unlock()

	res, err := core.ExecuteAllocated(ctx, plan, db, opts, alloc)

	m.mu.Lock()
	m.allocated -= alloc.Total
	m.active--
	switch {
	case err == nil:
		m.completed++
	case ctx.Err() != nil:
		m.cancelled++
	default:
		m.failed++
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	qs := QueryStats{Utilization: opts.Utilization, Threads: alloc.Total, Available: available}
	return res, qs, err
}
