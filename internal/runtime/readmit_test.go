package runtime

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"dbs3/internal/core"
	"dbs3/internal/lera"
	"dbs3/internal/relation"
	"dbs3/internal/workload"
)

// twoChainPlan: chain 0 filters Br into T1, chain 1 repartitions T1 and
// joins it with A — one materialization point between them.
func twoChainPlan(t testing.TB) (*lera.Plan, core.DB) {
	t.Helper()
	db, err := workload.NewJoinDB(4_000, 400, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := lera.NewGraph()
	f := g.Filter("f", "Br", lera.ColConst{Col: "k", Op: lera.GE, Val: relation.Int(0)})
	s1 := g.Store("s1", "T1")
	g.ConnectSame(f, s1)
	tr := g.Transmit("t", "T1")
	j := g.JoinPipelined("j", "A", []string{"k"}, []string{"k"}, lera.HashJoin)
	s2 := g.Store("s2", "Res")
	g.ConnectHash(tr, j, []string{"k"})
	g.ConnectSame(j, s2)
	plan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	return plan, db.Relations()
}

// TestReadmitReleasesSurplus: shrinking a reservation at a boundary returns
// threads to the budget immediately and is visible in the counters; growing
// later is capped by free headroom.
func TestReadmitReleasesSurplus(t *testing.T) {
	plan, db := twoChainPlan(t)
	m := NewManager(Config{Budget: 8})
	opts := core.Options{Threads: 6}
	adm, err := m.Admit(context.Background(), plan, db, &opts, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.ThreadsInFlight != 6 {
		t.Fatalf("after Admit: %+v", st)
	}

	if grant := m.Readmit(adm, 2, 1); grant != 2 {
		t.Fatalf("shrink grant = %d, want 2", grant)
	}
	st := m.Stats()
	if st.ThreadsInFlight != 2 || st.ThreadsReturnedEarly != 4 || st.Readmissions != 1 {
		t.Fatalf("after shrink: %+v", st)
	}

	// Growth takes only free budget: with 2 held and 6 free, a want of 8
	// is granted in full; with a bystander holding 4 of the remaining 6,
	// the same want caps at held+free and throttles against the fresh
	// utilization measurement.
	release, err := m.Reserve(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	grant := m.Readmit(adm, 8, 1)
	// others = 4 of 8 -> utilization 0.5 -> effective want 4; free = 2, so
	// the grant lands at min(4, 2+2) = 4.
	if grant != 4 {
		t.Fatalf("constrained growth grant = %d, want 4", grant)
	}
	st = m.Stats()
	if st.ThreadsInFlight != 8 || st.ThreadsGrownMidFlight != 2 {
		t.Fatalf("after growth: %+v", st)
	}
	if st.PeakThreads > 8 {
		t.Fatalf("peak %d exceeded budget", st.PeakThreads)
	}
	release()
	adm.Finish(nil)
	st = m.Stats()
	if st.ThreadsInFlight != 0 || st.Active != 0 || st.Completed != 1 {
		t.Fatalf("after Finish: %+v", st)
	}
	if got := adm.Stats.ChainThreads; len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("ChainThreads trace = %v, want [2 4]", got)
	}
}

// TestReadmitAdmitsWaiterMidFlight is the acceptance scenario: a second
// query blocked on the budget is admitted into threads a multi-chain query
// returned at a chain boundary, before the first query finishes.
func TestReadmitAdmitsWaiterMidFlight(t *testing.T) {
	plan, db := twoChainPlan(t)
	m := NewManager(Config{Budget: 4})
	opts1 := core.Options{Threads: 4}
	adm1, err := m.Admit(context.Background(), plan, db, &opts1, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}

	admitted := make(chan *Admission, 1)
	go func() {
		opts2 := core.Options{Threads: 3}
		adm2, err := m.Admit(context.Background(), plan, db, &opts2, PriorityInteractive)
		if err != nil {
			t.Error(err)
		}
		admitted <- adm2
	}()
	for m.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-admitted:
		t.Fatal("second query admitted while the budget was fully held")
	case <-time.After(20 * time.Millisecond):
	}

	// The boundary: query 1's next chain needs one thread; the surplus
	// admits query 2 while query 1 is still mid-flight.
	if grant := m.Readmit(adm1, 1, 1); grant != 1 {
		t.Fatalf("grant = %d, want 1", grant)
	}
	var adm2 *Admission
	select {
	case adm2 = <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("second query not admitted into mid-flight-freed threads")
	}
	st := m.Stats()
	if st.ThreadsInFlight != 4 || st.Active != 2 {
		t.Fatalf("both in flight: %+v", st)
	}
	if st.PeakThreads > 4 {
		t.Fatalf("budget exceeded: %+v", st)
	}
	adm1.Finish(nil)
	if adm2 != nil {
		adm2.Finish(nil)
	}
	if st := m.Stats(); st.ThreadsInFlight != 0 || st.Completed != 2 {
		t.Fatalf("drain: %+v", st)
	}
}

// TestExecuteRenegotiatesChains runs a real multi-chain execution through
// the manager end to end: the reservation is renegotiated once per chain,
// the trace surfaces in QueryStats, and the budget holds.
func TestExecuteRenegotiatesChains(t *testing.T) {
	plan, db := twoChainPlan(t)
	m := NewManager(Config{Budget: 6})
	res, qs, err := m.Execute(context.Background(), plan, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["Res"] == nil {
		t.Fatal("no result")
	}
	if len(qs.ChainThreads) != 2 {
		t.Fatalf("ChainThreads = %v, want one grant per chain", qs.ChainThreads)
	}
	for ci, g := range qs.ChainThreads {
		if g < 1 || g > 6 {
			t.Errorf("chain %d granted %d threads outside [1, budget]", ci, g)
		}
	}
	st := m.Stats()
	if st.Readmissions != 2 {
		t.Errorf("Readmissions = %d, want 2", st.Readmissions)
	}
	if st.PeakThreads > 6 {
		t.Errorf("peak %d exceeded budget", st.PeakThreads)
	}
	if st.ThreadsInFlight != 0 || st.Active != 0 {
		t.Errorf("not drained: %+v", st)
	}
}

// TestAdmitCancelDuringPlanning: a query whose context dies while its
// allocation is planned outside the lock must not reserve threads, count as
// admitted, or launch.
func TestAdmitCancelDuringPlanning(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 4})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	old := planAllocation
	planAllocation = func(p *lera.Plan, d core.DB, o core.Options) (core.Allocation, error) {
		cancel() // the caller gives up exactly while we plan
		return core.PlanAllocation(p, d, o)
	}
	defer func() { planAllocation = old }()

	opts := core.Options{}
	if _, err := m.Admit(ctx, plan, db, &opts, PriorityInteractive); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := m.Stats()
	if st.ThreadsInFlight != 0 || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("dead query left a reservation: %+v", st)
	}
	if st.Admitted != 0 || st.Cancelled != 1 {
		t.Fatalf("Admitted/Cancelled = %d/%d, want 0/1", st.Admitted, st.Cancelled)
	}
	// The budget is intact: a full-budget query still fits.
	opts2 := core.Options{Threads: 4}
	adm, err := m.Admit(context.Background(), plan, db, &opts2, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	adm.Finish(nil)
}

// TestAdmitCloseDuringPlanning: a manager closed while a query plans its
// allocation must reject the query without reserving threads.
func TestAdmitCloseDuringPlanning(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 4})
	old := planAllocation
	planAllocation = func(p *lera.Plan, d core.DB, o core.Options) (core.Allocation, error) {
		m.Close()
		return core.PlanAllocation(p, d, o)
	}
	defer func() { planAllocation = old }()

	opts := core.Options{}
	if _, err := m.Admit(context.Background(), plan, db, &opts, PriorityInteractive); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	st := m.Stats()
	if st.ThreadsInFlight != 0 || st.Active != 0 || st.Admitted != 0 {
		t.Fatalf("closed manager reserved threads: %+v", st)
	}
}

// TestFinishClassification: the outcome ledgers classify from the error
// itself, not from the admission context — an operator failure stays Failed
// even when the caller cancelled on error.
func TestFinishClassification(t *testing.T) {
	plan, db := joinPlan(t)
	cases := []struct {
		name      string
		err       error
		cancelCtx bool
		want      string
	}{
		{"nil is completed", nil, false, "completed"},
		{"canceled is cancelled", context.Canceled, true, "cancelled"},
		{"wrapped deadline is cancelled", fmt.Errorf("chain 2: %w", context.DeadlineExceeded), true, "cancelled"},
		{"operator error is failed", errors.New("join: hash table overflow"), false, "failed"},
		{"operator error with dead ctx is still failed", errors.New("join: hash table overflow"), true, "failed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewManager(Config{Budget: 4})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opts := core.Options{Threads: 2}
			adm, err := m.Admit(ctx, plan, db, &opts, PriorityInteractive)
			if err != nil {
				t.Fatal(err)
			}
			if tc.cancelCtx {
				cancel() // caller cancels (e.g. on error) before Finish
			}
			adm.Finish(tc.err)
			st := m.Stats()
			got := map[string]int64{"completed": st.Completed, "cancelled": st.Cancelled, "failed": st.Failed}
			for _, k := range []string{"completed", "cancelled", "failed"} {
				want := int64(0)
				if k == tc.want {
					want = 1
				}
				if got[k] != want {
					t.Errorf("%s = %d, want %d (stats %+v)", k, got[k], want, st)
				}
			}
			if st.ThreadsInFlight != 0 {
				t.Errorf("threads not returned: %+v", st)
			}
		})
	}
}

// TestReserveCountsInQueue: Reserve waiters are visible queue pressure and
// subject to the MaxQueued bound.
func TestReserveCountsInQueue(t *testing.T) {
	m := NewManager(Config{Budget: 2, MaxQueued: 2})
	release, err := m.Reserve(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiting := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, err := m.Reserve(ctx, 1)
			if err == nil {
				r()
			}
			waiting <- err
		}()
	}
	for m.Stats().Queued < 2 {
		time.Sleep(time.Millisecond)
	}
	if st := m.Stats(); st.QueuedInteractive != 2 {
		t.Fatalf("QueuedInteractive = %d, want the 2 Reserve waiters", st.QueuedInteractive)
	}
	// The line is at MaxQueued: the next Reserve is shed, not queued.
	if _, err := m.Reserve(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := m.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	release()
	for i := 0; i < 2; i++ {
		if err := <-waiting; err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.Queued != 0 || st.ThreadsInFlight != 0 {
		t.Errorf("not drained: %+v", st)
	}
}

// TestReadmitBlendsEWMA: the boundary throttle blends the instantaneous
// sample with the completion EWMA exactly like admission does — a chain
// boundary reached in a momentary trough between bursts is still throttled.
func TestReadmitBlendsEWMA(t *testing.T) {
	plan, db := twoChainPlan(t)
	m := NewManager(Config{Budget: 8})

	// Seed the EWMA at 0.5: a query completes while 4 threads are held.
	release, err := m.Reserve(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Threads: 1}
	adm, err := m.Admit(context.Background(), plan, db, &opts, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	adm.Finish(nil)
	release()
	if got := m.SmoothedUtilization(); got != 0.5 {
		t.Fatalf("EWMA = %v, want 0.5", got)
	}

	// An idle instant at the boundary: others = 0, but the blend keeps the
	// throttle at 0.25, so a want of 8 is granted 6, not 8.
	opts2 := core.Options{Threads: 8}
	adm2, err := m.Admit(context.Background(), plan, db, &opts2, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if grant := m.Readmit(adm2, 8, 1); grant != 6 {
		t.Fatalf("trough grant = %d, want 6 (throttled by the 0.25 blend)", grant)
	}
	if st := m.Stats(); st.ThreadsReturnedEarly != 2 {
		t.Fatalf("ThreadsReturnedEarly = %d, want 2", st.ThreadsReturnedEarly)
	}
	adm2.Finish(nil)
}

// TestReadmitGrowthYieldsToPlanningAdmission: growing at a boundary must
// not take headroom a pinned admitting ticket already measured — the ticket
// plans its allocation outside the lock and reserves blindly, so a
// concurrent grow would overcommit the budget.
func TestReadmitGrowthYieldsToPlanningAdmission(t *testing.T) {
	plan, db := twoChainPlan(t)
	m := NewManager(Config{Budget: 8})

	// Query A holds 2 threads.
	optsA := core.Options{Threads: 2}
	admA, err := m.Admit(context.Background(), plan, db, &optsA, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}

	// Query B passes its wait and pauses mid-planning, outside the lock.
	planning := make(chan struct{})
	resume := make(chan struct{})
	old := planAllocation
	planAllocation = func(p *lera.Plan, d core.DB, o core.Options) (core.Allocation, error) {
		close(planning)
		<-resume
		return core.PlanAllocation(p, d, o)
	}
	defer func() { planAllocation = old }()
	admitted := make(chan *Admission, 1)
	go func() {
		optsB := core.Options{Threads: 6}
		admB, err := m.Admit(context.Background(), plan, db, &optsB, PriorityInteractive)
		if err != nil {
			t.Error(err)
		}
		admitted <- admB
	}()
	<-planning

	// A's boundary hits inside B's planning window: growth must be
	// declined (B measured 6 free and will reserve exactly that).
	if grant := m.Readmit(admA, 8, 1); grant != 2 {
		t.Fatalf("grant = %d during an admission's planning window, want the held 2", grant)
	}
	close(resume)
	admB := <-admitted
	st := m.Stats()
	if st.ThreadsInFlight != 8 || st.PeakThreads > 8 {
		t.Fatalf("budget overcommitted: %+v", st)
	}
	admA.Finish(nil)
	admB.Finish(nil)
	if st := m.Stats(); st.ThreadsInFlight != 0 {
		t.Fatalf("not drained: %+v", st)
	}
}

// TestReadmitFloorsAtChainNodeCount: the throttle never grants below the
// next chain's node count — every node pool runs at least one thread, so a
// smaller grant would overstate the threads returned to the budget.
func TestReadmitFloorsAtChainNodeCount(t *testing.T) {
	plan, db := twoChainPlan(t)
	m := NewManager(Config{Budget: 8})
	opts := core.Options{Threads: 6}
	adm, err := m.Admit(context.Background(), plan, db, &opts, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	// The chain wants 1 thread but has 3 nodes: the grant floors at 3.
	if grant := m.Readmit(adm, 1, 3); grant != 3 {
		t.Fatalf("grant = %d, want the 3-node floor", grant)
	}
	if st := m.Stats(); st.ThreadsReturnedEarly != 3 {
		t.Fatalf("ThreadsReturnedEarly = %d, want 3 (6 held - 3 floor)", st.ThreadsReturnedEarly)
	}
	adm.Finish(nil)
}
