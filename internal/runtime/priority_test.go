package runtime

import (
	"context"
	"errors"
	"testing"
	"time"

	"dbs3/internal/core"
)

// TestManagerInteractiveBeforeBatch: with both classes waiting, the
// interactive query is served first even though the batch query queued
// earlier.
func TestManagerInteractiveBeforeBatch(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 4})
	release, err := m.Reserve(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan Priority, 2)
	exec := func(pri Priority) {
		opts := core.Options{Threads: 4} // serialize: each run needs the full budget
		adm, err := m.Admit(context.Background(), plan, db, &opts, pri)
		if err != nil {
			t.Error(err)
			return
		}
		order <- adm.Stats.Priority
		res, err := core.ExecuteAllocated(context.Background(), plan, db, opts, adm.Alloc())
		adm.Finish(err)
		if err != nil || res == nil {
			t.Error(err)
		}
	}
	go exec(PriorityBatch)
	for m.Stats().QueuedBatch < 1 {
		time.Sleep(time.Millisecond)
	}
	go exec(PriorityInteractive)
	for m.Stats().QueuedInteractive < 1 {
		time.Sleep(time.Millisecond)
	}

	release()
	if first := <-order; first != PriorityInteractive {
		t.Errorf("first served = %v, want interactive", first)
	}
	if second := <-order; second != PriorityBatch {
		t.Errorf("second served = %v, want batch", second)
	}
}

// TestManagerBatchAging: after BatchAging consecutive interactive
// admissions bypass a waiting batch query, the batch head is served next
// even though interactive queries are still queued — batch is never starved.
func TestManagerBatchAging(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 4, BatchAging: 1})
	release, err := m.Reserve(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 3)
	exec := func(name string, pri Priority) {
		opts := core.Options{Threads: 4}
		adm, err := m.Admit(context.Background(), plan, db, &opts, pri)
		if err != nil {
			t.Error(err)
			return
		}
		order <- name
		res, err := core.ExecuteAllocated(context.Background(), plan, db, opts, adm.Alloc())
		adm.Finish(err)
		if err != nil || res == nil {
			t.Error(err)
		}
	}
	// Queue: batch B, then interactive I1, then interactive I2. With
	// BatchAging=1, service order must be I1 (streak 0→1), B (aged), I2.
	go exec("B", PriorityBatch)
	for m.Stats().QueuedBatch < 1 {
		time.Sleep(time.Millisecond)
	}
	go exec("I1", PriorityInteractive)
	for m.Stats().QueuedInteractive < 1 {
		time.Sleep(time.Millisecond)
	}
	go exec("I2", PriorityInteractive)
	for m.Stats().QueuedInteractive < 2 {
		time.Sleep(time.Millisecond)
	}

	release()
	got := []string{<-order, <-order, <-order}
	want := []string{"I1", "B", "I2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service order = %v, want %v", got, want)
		}
	}
}

// TestManagerAgingFitCheck: an aged batch head whose thread request does
// not fit the current headroom must not stall interactive queries that do
// fit — soft promotion checks fit first. The hard bound (2× aging) still
// guarantees the batch query eventually blocks the line and runs.
func TestManagerAgingFitCheck(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 4, BatchAging: 2})
	// Pin half the budget: the full-budget batch query cannot fit until
	// this releases, but 1-thread interactive queries can.
	release, err := m.Reserve(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan string, 8)
	exec := func(name string, pri Priority, threads int) {
		opts := core.Options{Threads: threads}
		adm, err := m.Admit(context.Background(), plan, db, &opts, pri)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := core.ExecuteAllocated(context.Background(), plan, db, opts, adm.Alloc())
		adm.Finish(err)
		if err != nil || res == nil {
			t.Error(err)
		}
		done <- name
	}

	go exec("B", PriorityBatch, 4)
	for m.Stats().QueuedBatch < 1 {
		time.Sleep(time.Millisecond)
	}
	// Interactive queries beyond the aging streak still get served while
	// the batch head cannot fit (2 of 4 threads pinned).
	for i := 0; i < 3; i++ {
		go exec("I", PriorityInteractive, 1)
	}
	for i := 0; i < 3; i++ {
		select {
		case name := <-done:
			if name != "I" {
				t.Fatalf("served %q while batch head could not fit", name)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("interactive query stalled behind an unfittable batch head")
		}
	}

	// Headroom restored: the aged batch query runs.
	release()
	select {
	case name := <-done:
		if name != "B" {
			t.Fatalf("served %q, want the aged batch query", name)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch query starved after headroom freed")
	}
}

// TestManagerBatchQueueReserve: the queue bound keeps slots in reserve for
// interactive arrivals — a batch flood is shed with ErrQueueFull while an
// interactive query can still join the line.
func TestManagerBatchQueueReserve(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 4, MaxQueued: 4})
	release, err := m.Reserve(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Batch limit is MaxQueued - MaxQueued/4 = 3: fill it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		go func() {
			opts := core.Options{Threads: 1}
			if _, err := m.Admit(ctx, plan, db, &opts, PriorityBatch); err != nil && !errors.Is(err, context.Canceled) {
				t.Error(err)
			}
		}()
	}
	for m.Stats().QueuedBatch < 3 {
		time.Sleep(time.Millisecond)
	}

	// The 4th batch query is shed; an interactive query still queues.
	opts := core.Options{Threads: 1}
	if _, err := m.Admit(ctx, plan, db, &opts, PriorityBatch); err != ErrQueueFull {
		t.Errorf("4th batch admission = %v, want ErrQueueFull", err)
	}
	go func() {
		opts := core.Options{Threads: 1}
		if _, err := m.Admit(ctx, plan, db, &opts, PriorityInteractive); err != nil && !errors.Is(err, context.Canceled) {
			t.Error(err)
		}
	}()
	for m.Stats().QueuedInteractive < 1 {
		time.Sleep(time.Millisecond)
	}
	if st := m.Stats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
}

// TestManagerSmoothedUtilization: a completion feeds the EWMA, and a later
// query admitted into a momentarily idle budget still sees a smoothed
// utilization above its instantaneous sample.
func TestManagerSmoothedUtilization(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 8})

	// 4 of 8 threads held elsewhere while a query runs to completion: its
	// Finish samples the leftover load 0.5 into the EWMA.
	release, err := m.Reserve(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Execute(context.Background(), plan, db, core.Options{Threads: 1}); err != nil {
		t.Fatal(err)
	}
	release()
	if got := m.SmoothedUtilization(); got != 0.5 {
		t.Fatalf("EWMA after completion = %v, want 0.5", got)
	}
	if got := m.Stats().SmoothedUtilization; got != 0.5 {
		t.Fatalf("Stats.SmoothedUtilization = %v, want 0.5", got)
	}

	// The budget is idle now, but the burst just ended: the blend keeps the
	// feedback above the instantaneous zero.
	_, qs, err := m.Execute(context.Background(), plan, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if qs.Measured != 0 {
		t.Errorf("Measured = %v, want 0 (idle instant)", qs.Measured)
	}
	if qs.Smoothed != 0.25 {
		t.Errorf("Smoothed = %v, want 0.25 (blend of 0 instant and 0.5 EWMA)", qs.Smoothed)
	}
	if qs.Utilization != 0.25 {
		t.Errorf("Utilization = %v, want the smoothed 0.25", qs.Utilization)
	}

	// A genuinely loaded instant is never watered down by a calm history.
	release2, err := m.Reserve(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	_, qs, err = m.Execute(context.Background(), plan, db, core.Options{})
	release2()
	if err != nil {
		t.Fatal(err)
	}
	if qs.Measured != 0.75 || qs.Utilization != 0.75 {
		t.Errorf("Measured/Utilization = %v/%v, want 0.75/0.75", qs.Measured, qs.Utilization)
	}
}

// TestAdmitFinishLifecycle: the split admission API reserves threads until
// Finish, classifies outcomes from the error, and Finish is idempotent.
func TestAdmitFinishLifecycle(t *testing.T) {
	plan, db := joinPlan(t)
	m := NewManager(Config{Budget: 4})

	opts := core.Options{Threads: 2}
	adm, err := m.Admit(context.Background(), plan, db, &opts, PriorityInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.ThreadsInFlight != 2 || st.Active != 1 {
		t.Fatalf("after Admit: %+v", st)
	}
	if adm.Alloc().Total != 2 {
		t.Fatalf("Alloc.Total = %d, want 2", adm.Alloc().Total)
	}
	res, err := core.ExecuteAllocated(context.Background(), plan, db, opts, adm.Alloc())
	if err != nil || res == nil {
		t.Fatal(err)
	}
	adm.Finish(nil)
	adm.Finish(nil) // idempotent
	st := m.Stats()
	if st.ThreadsInFlight != 0 || st.Active != 0 || st.Completed != 1 {
		t.Fatalf("after Finish x2: %+v", st)
	}

	// A cancelled execution lands in Cancelled, not Failed.
	ctx, cancel := context.WithCancel(context.Background())
	opts2 := core.Options{Threads: 2}
	adm2, err := m.Admit(ctx, plan, db, &opts2, PriorityBatch)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	adm2.Finish(context.Canceled)
	if st := m.Stats(); st.Cancelled != 1 || st.ThreadsInFlight != 0 {
		t.Fatalf("after cancelled Finish: %+v", st)
	}

	// NotePlanCache counters surface in Stats.
	m.NotePlanCache(false)
	m.NotePlanCache(true)
	m.NotePlanCache(true)
	if st := m.Stats(); st.PlanCacheHits != 2 || st.PlanCacheMisses != 1 {
		t.Fatalf("plan cache counters: %+v", st)
	}
}
