package operator

import (
	"sort"
	"sync"
	"sync/atomic"

	"dbs3/internal/relation"
	"dbs3/internal/storage"
)

// Larger-than-memory execution for the blocking operators. Each spilling
// operator shares the query's storage.SpillEnv: one accountant enforcing the
// admission-granted memory budget, one temp-file set, one read-back buffer
// pool. The accountant never blocks — exceeding the grant means "go to
// disk", so memory pressure cannot deadlock against the thread scheduler.

// spillCounters is embedded by spilling operators and exposes per-operator
// spill totals to the engine's OpStats harvest.
type spillCounters struct {
	spilledBytes atomic.Int64
	spillPasses  atomic.Int64
}

// SpillStats returns cumulative (bytes written to spill files, passes).
func (c *spillCounters) SpillStats() (bytes, passes int64) {
	return c.spilledBytes.Load(), c.spillPasses.Load()
}

// notePass records one spill sweep of run.Bytes() on both the per-operator
// counters and the query-wide accountant.
func (c *spillCounters) notePass(bytes int64, env *storage.SpillEnv) {
	c.spilledBytes.Add(bytes)
	c.spillPasses.Add(1)
	env.Mem.NotePass()
}

// aggStateOverhead approximates the bytes of one aggState beyond its group
// key: the struct, the map bucket share, and the chain slice entry.
const aggStateOverhead = 96

// indexOverhead approximates the per-tuple bytes a join build structure
// adds on top of the retained tuples: hash/key slots or the sorted arrays.
const indexOverhead = 24

// buildFootprint estimates the resident bytes of an in-memory build side:
// the tuples plus the index built over them.
func buildFootprint(build []relation.Tuple) int64 {
	var n int64
	for _, b := range build {
		n += storage.TupleFootprint(b) + indexOverhead
	}
	return n
}

// maxGraceDepth bounds recursive repartitioning. A partition that still
// exceeds the grant at the bottom (e.g. one giant duplicate key, which no
// salt can split) is joined in memory best-effort rather than recursing
// forever.
const maxGraceDepth = 4

// maxGraceParts caps a partitioning fan-out; each open partition holds one
// build and one probe page buffer.
const maxGraceParts = 32

// partIndex maps a join-key hash to its partition. The hash is remixed with
// the recursion salt so every level cuts along fresh bits — the raw hash's
// low bits stay reserved for the in-memory table slots.
func partIndex(h, salt uint64, parts int) int {
	return int(mix64(h^salt)>>32) & (parts - 1)
}

// childSalt derives the next recursion level's salt.
func childSalt(salt uint64, depth int) uint64 {
	return mix64(salt + uint64(depth+1)*0x9e3779b97f4a7c15)
}

// graceState replaces the in-memory build index when the build side exceeds
// the grant: build tuples are partitioned to disk in Setup, probe tuples
// are routed to matching partitions as they arrive, and OnClose joins the
// pairs partition by partition.
type graceState struct {
	mu    sync.Mutex
	salt  uint64
	parts []gracePart
}

type gracePart struct {
	build *storage.RunWriter
	probe *storage.RunWriter
}

// graceFanout sizes the partition count so each partition's build side is
// expected to fit in about half the grant (probing needs headroom).
func graceFanout(bytes, grant int64) int {
	p := 2
	if grant <= 0 {
		return p
	}
	for p < maxGraceParts && bytes/int64(p) > grant/2 {
		p *= 2
	}
	return p
}

// newGraceState partitions the build tuples to disk. Each call is one spill
// pass; the run bytes are counted when partitions are finished in joinPart.
func (j *Join) newGraceState(build []relation.Tuple, salt uint64) (*graceState, error) {
	fan := graceFanout(buildFootprint(build), j.Spill.Mem.Grant())
	g := &graceState{salt: salt, parts: make([]gracePart, fan)}
	for _, b := range build {
		p := &g.parts[partIndex(hashKey(b, j.BuildKey), salt, fan)]
		if p.build == nil {
			p.build = j.Spill.NewRun()
		}
		if err := p.build.Add(b); err != nil {
			return nil, err
		}
	}
	j.spillPasses.Add(1)
	j.Spill.Mem.NotePass()
	return g, nil
}

// addProbe routes one probe tuple to its partition.
func (g *graceState) addProbe(j *Join, t relation.Tuple) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addProbeLocked(j, t)
}

// addProbeBatch routes a run of probe tuples under one lock epoch.
func (g *graceState) addProbeBatch(j *Join, ts []relation.Tuple) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, t := range ts {
		if err := g.addProbeLocked(j, t); err != nil {
			return err
		}
	}
	return nil
}

func (g *graceState) addProbeLocked(j *Join, t relation.Tuple) error {
	p := &g.parts[partIndex(hashKey(t, j.ProbeKey), g.salt, len(g.parts))]
	if p.probe == nil {
		p.probe = j.Spill.NewRun()
	}
	return p.probe.Add(t)
}

// closeGrace joins every partition pair of a grace state.
func (j *Join) closeGrace(g *graceState, emit Emit, depth int) error {
	for i := range g.parts {
		if err := j.joinPart(&g.parts[i], emit, g.salt, depth); err != nil {
			return err
		}
	}
	return nil
}

// joinPart loads one partition's build side; if it fits the grant (or
// recursion bottomed out) it builds the in-memory structure and streams the
// probe run through it, otherwise it repartitions both runs one level down.
func (j *Join) joinPart(p *gracePart, emit Emit, salt uint64, depth int) error {
	if p.build == nil || p.probe == nil {
		return nil // an empty side of an equi-join produces nothing
	}
	buildRun, err := p.build.Finish()
	if err != nil {
		return err
	}
	probeRun, err := p.probe.Finish()
	if err != nil {
		return err
	}
	j.spilledBytes.Add(buildRun.Bytes() + probeRun.Bytes())
	if buildRun.Empty() || probeRun.Empty() {
		return nil
	}
	build, err := buildRun.All()
	if err != nil {
		return err
	}
	need := buildFootprint(build)
	if !j.Spill.Mem.Reserve(need) && depth < maxGraceDepth {
		j.Spill.Mem.Release(need)
		return j.repartition(build, probeRun, emit, childSalt(salt, depth), depth)
	}
	// Fits (or bottomed out): join this pair in memory.
	ctx := &Context{Build: build}
	if err := j.buildState(ctx); err != nil {
		j.Spill.Mem.Release(need)
		return err
	}
	err = probeRun.Each(func(t relation.Tuple) error {
		j.probe(ctx, t, emit)
		return nil
	})
	j.Spill.Mem.Release(need)
	return err
}

// repartition pushes one oversized partition a recursion level down: the
// build tuples and the probe run are re-split under a fresh salt, then the
// sub-partitions are joined.
func (j *Join) repartition(build []relation.Tuple, probeRun storage.Run, emit Emit, salt uint64, depth int) error {
	sub, err := j.newGraceState(build, salt)
	if err != nil {
		return err
	}
	err = probeRun.Each(func(t relation.Tuple) error {
		return sub.addProbeLocked(j, t)
	})
	if err != nil {
		return err
	}
	return j.closeGrace(sub, emit, depth+1)
}

// --- Aggregate spill ---------------------------------------------------------

// An aggregate accumulator spills as its group key concatenated with five
// fixed accumulator columns; agg runs are written in group order so OnClose
// can stream-merge them.
const aggSuffix = 5

// encodeAgg renders an accumulator as a spillable tuple.
func encodeAgg(st *aggState) relation.Tuple {
	min, max := st.min, st.max
	if !st.seen {
		min, max = relation.Int(0), relation.Int(0)
	}
	seen := int64(0)
	if st.seen {
		seen = 1
	}
	return st.group.Concat(relation.Tuple{
		relation.Int(st.count), relation.Int(st.sum), relation.Int(seen), min, max,
	})
}

// decodeAgg rebuilds an accumulator from its spilled form.
func decodeAgg(t relation.Tuple) *aggState {
	n := len(t) - aggSuffix
	st := &aggState{
		group: t[:n:n],
		count: t[n].AsInt(),
		sum:   t[n+1].AsInt(),
		seen:  t[n+2].AsInt() != 0,
	}
	if st.seen {
		st.min, st.max = t[n+3], t[n+4]
	}
	return st
}

// combine folds another accumulator for the same group into st.
func (st *aggState) combine(o *aggState) {
	st.count += o.count
	st.sum += o.sum
	if o.seen {
		if !st.seen || o.min.Compare(st.min) < 0 {
			st.min = o.min
		}
		if !st.seen || o.max.Compare(st.max) > 0 {
			st.max = o.max
		}
		st.seen = true
	}
}

// sortedStates flattens a group table into group-key order.
func sortedStates(groups map[uint64][]*aggState) []*aggState {
	out := make([]*aggState, 0, len(groups))
	for _, bucket := range groups {
		out = append(out, bucket...)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].group.Compare(out[k].group) < 0 })
	return out
}

// spillLocked writes the instance's live group table as one sorted run and
// resets it; the caller holds ctx.Mu.
func (a *Aggregate) spillLocked(inst *aggInst) error {
	states := sortedStates(inst.groups)
	if len(states) == 0 {
		return nil
	}
	w := a.Spill.NewRun()
	for _, st := range states {
		if err := w.Add(encodeAgg(st)); err != nil {
			return err
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	inst.runs = append(inst.runs, run)
	a.notePass(run.Bytes(), a.Spill)
	a.Spill.Mem.Release(inst.bytes)
	inst.bytes = 0
	inst.groups = make(map[uint64][]*aggState)
	return nil
}

// aggSource streams accumulators in group order, from either a spilled run
// or the final in-memory table.
type aggSource struct {
	cur    *aggState
	cursor *storage.RunCursor
	mem    []*aggState
	pos    int
}

func (s *aggSource) advance() error {
	if s.cursor != nil {
		t, ok, err := s.cursor.Next()
		if err != nil {
			return err
		}
		if !ok {
			s.cur = nil
			return nil
		}
		s.cur = decodeAgg(t)
		return nil
	}
	if s.pos >= len(s.mem) {
		s.cur = nil
		return nil
	}
	s.cur = s.mem[s.pos]
	s.pos++
	return nil
}

// mergeRunsLocked k-way merges the spilled runs with the in-memory table,
// combining accumulators for equal groups and emitting results in group
// order; the caller holds ctx.Mu.
func (a *Aggregate) mergeRunsLocked(inst *aggInst, emit Emit) error {
	sources := make([]*aggSource, 0, len(inst.runs)+1)
	for _, r := range inst.runs {
		sources = append(sources, &aggSource{cursor: r.Cursor()})
	}
	sources = append(sources, &aggSource{mem: sortedStates(inst.groups)})
	for _, s := range sources {
		if err := s.advance(); err != nil {
			return err
		}
	}
	for {
		var lead *aggSource
		for _, s := range sources {
			if s.cur != nil && (lead == nil || s.cur.group.Compare(lead.cur.group) < 0) {
				lead = s
			}
		}
		if lead == nil {
			return nil
		}
		merged := &aggState{group: lead.cur.group}
		for _, s := range sources {
			for s.cur != nil && s.cur.group.Compare(merged.group) == 0 {
				merged.combine(s.cur)
				if err := s.advance(); err != nil {
					return err
				}
			}
		}
		emit(a.final(merged))
	}
}
