// Package operator implements the sequential relational operators that
// Lera-par nodes execute. Each operator processes *activations* — a trigger
// (process my bound fragment) or a tuple (process one pipelined tuple) — and
// emits result tuples downstream. The execution engine (package core) owns
// queues, threads and routing; operators only see their instance context and
// an emit callback, which is what makes any pool thread able to execute any
// instance's activation (§3).
package operator

import (
	"sort"
	"sync"

	"dbs3/internal/lera"
	"dbs3/internal/relation"
	"dbs3/internal/storage"
)

// Emit sends one result tuple downstream. The engine routes it to the right
// consumer instance(s); Emit may block on queue backpressure.
type Emit func(t relation.Tuple)

// Context is the per-instance execution context. Fragments are immutable
// during execution; State is operator-private per-instance state, prepared
// by Setup (the engine guarantees Setup runs exactly once per instance,
// before any activation).
type Context struct {
	// Instance is the operator instance index (= fragment index).
	Instance int
	// Input is the bound fragment of filter/transmit instances.
	Input []relation.Tuple
	// Build and Probe are the bound fragments of join instances; Probe is
	// nil for pipelined joins.
	Build, Probe []relation.Tuple
	// State is operator-private; set by Setup.
	State any
	// Mu guards State for operators that mutate it per-tuple (aggregates):
	// the execution model lets any pool thread process any instance's
	// activation, so two threads can be inside the same instance at once.
	Mu sync.Mutex
}

// Operator is the sequential logic of one Lera-par node.
type Operator interface {
	// Setup prepares per-instance state (e.g. builds a hash table on the
	// build fragment). Runs once per instance.
	Setup(ctx *Context) error
	// OnTrigger processes a control activation (triggered operations).
	OnTrigger(ctx *Context, emit Emit) error
	// OnTuple processes one pipelined tuple (pipelined operations).
	OnTuple(ctx *Context, t relation.Tuple, emit Emit) error
	// OnClose runs after the instance's last activation completed (the
	// engine guarantees exactly-once, after-everything ordering). Operators
	// with buffered state (aggregates) emit it here.
	OnClose(ctx *Context, emit Emit) error
}

// BatchOperator is an optional extension of Operator: the engine hands
// operators implementing it whole runs of pipelined tuple activations in one
// call (bounded by the internal cache size), instead of unpacking the batch
// into per-tuple OnTuple calls. Implementations process the batch
// vectorized — selection vectors, one key-hash pass, one lock epoch — but
// must stay observably equivalent to the per-tuple path: same emitted
// multiset, same emission semantics (emit may block on backpressure), and no
// retention of the tuples slice after return (it is worker-owned scratch;
// the Tuples inside it are immutable and may be kept).
//
// Operators that do not implement BatchOperator keep working unchanged: the
// engine falls back to the per-tuple OnTuple loop.
type BatchOperator interface {
	Operator
	// OnBatch processes a run of pipelined tuples. Equivalent to calling
	// OnTuple for each tuple in order; an error stops the batch (tuples
	// before the failure may already have emitted).
	OnBatch(ctx *Context, tuples []relation.Tuple, emit Emit) error
}

// batchScratch holds the per-batch working buffers of vectorized operators
// (key hashes, selection vectors). Pooled so the hot path allocates nothing
// per batch without per-operator-instance state: any pool thread can run any
// instance, so the scratch cannot live on the Context without locking.
type batchScratch struct {
	keys []uint64
	sel  relation.Selection
	// arena backs batch-built result tuples (join concatenations): values
	// accumulate into one chunk that is handed out as capped sub-slices, so
	// a run of results costs one allocation per ~chunk instead of one per
	// tuple. Emitted tuples keep their chunk alive; the scratch only ever
	// appends past them, never rewrites.
	arena []relation.Value
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// arenaChunk is the value capacity of one concat arena chunk.
const arenaChunk = 4096

// concat builds b ++ t in the scratch arena. The returned tuple is capped to
// its own span — later appends can never write into it — and remains valid
// after the scratch returns to the pool.
func (sc *batchScratch) concat(b, t relation.Tuple) relation.Tuple {
	need := len(b) + len(t)
	if cap(sc.arena)-len(sc.arena) < need {
		size := arenaChunk
		if need > size {
			size = need
		}
		sc.arena = make([]relation.Value, 0, size)
	}
	off := len(sc.arena)
	sc.arena = append(sc.arena, b...)
	sc.arena = append(sc.arena, t...)
	return relation.Tuple(sc.arena[off:len(sc.arena):len(sc.arena)])
}

// nopClose is embedded by operators with nothing to flush.
type nopClose struct{}

func (nopClose) OnClose(*Context, Emit) error { return nil }

// nopSetup is embedded by operators with no per-instance state.
type nopSetup struct{}

func (nopSetup) Setup(*Context) error { return nil }

// errNoTrigger panics for pipelined-only operators receiving triggers; the
// planner prevents this, so it is an engine bug, not a user error.
func errNoTrigger(name string) error {
	panic("operator: " + name + " received a trigger; plan binding should have prevented this")
}

// Filter scans its bound fragment and emits tuples satisfying the bound
// predicate. Triggered: one activation processes the whole fragment, which
// is the paper's "coarse grain" unit of work.
type Filter struct {
	nopSetup
	nopClose
	Pred lera.Predicate
}

// OnTrigger implements Operator.
func (f *Filter) OnTrigger(ctx *Context, emit Emit) error {
	for _, t := range ctx.Input {
		if f.Pred.Eval(t) {
			emit(t)
		}
	}
	return nil
}

// OnTuple implements Operator: a pipelined filter applies the predicate to
// the redistributed stream (used for residual predicates after joins).
func (f *Filter) OnTuple(_ *Context, t relation.Tuple, emit Emit) error {
	if f.Pred.Eval(t) {
		emit(t)
	}
	return nil
}

// OnBatch implements BatchOperator: the predicate is evaluated over the
// whole batch into a selection vector (column index and comparison hoisted
// out of the loop, conjunctions narrowing progressively), then only the
// survivors are emitted.
func (f *Filter) OnBatch(_ *Context, ts []relation.Tuple, emit Emit) error {
	sc := scratchPool.Get().(*batchScratch)
	sel := lera.EvalBatch(f.Pred, ts, sc.sel)
	for _, i := range sel {
		emit(ts[i])
	}
	sc.sel = sel
	scratchPool.Put(sc)
	return nil
}

// Transmit forwards tuples downstream; redistribution happens on the edge
// (the engine routes each emitted tuple by hash). Bound transmits are
// triggered and read their fragment; pipelined transmits re-route a stream.
type Transmit struct {
	nopSetup
	nopClose
}

// OnTrigger implements Operator.
func (tr *Transmit) OnTrigger(ctx *Context, emit Emit) error {
	for _, t := range ctx.Input {
		emit(t)
	}
	return nil
}

// OnTuple implements Operator.
func (tr *Transmit) OnTuple(_ *Context, t relation.Tuple, emit Emit) error {
	emit(t)
	return nil
}

// OnBatch implements BatchOperator.
func (tr *Transmit) OnBatch(_ *Context, ts []relation.Tuple, emit Emit) error {
	for _, t := range ts {
		emit(t)
	}
	return nil
}

// Map projects tuples onto a column subset.
type Map struct {
	nopSetup
	nopClose
	Cols []int
}

// OnTrigger implements Operator.
func (m *Map) OnTrigger(*Context, Emit) error { return errNoTrigger("map") }

// OnTuple implements Operator.
func (m *Map) OnTuple(_ *Context, t relation.Tuple, emit Emit) error {
	emit(t.Project(m.Cols))
	return nil
}

// OnBatch implements BatchOperator.
func (m *Map) OnBatch(_ *Context, ts []relation.Tuple, emit Emit) error {
	for _, t := range ts {
		emit(t.Project(m.Cols))
	}
	return nil
}

// Store materializes its input: tuples accumulate per instance and the
// engine collects Results when the operation completes. Store terminates a
// pipeline chain (a materialization point between subqueries). With a Spill
// env, an instance whose accumulation exceeds the query's memory grant
// flushes its buffered tuples to a spill run and keeps going; Results reads
// the runs back in.
type Store struct {
	nopSetup
	nopClose
	mu      sync.Mutex
	results [][]relation.Tuple
	bytes   []int64
	runs    [][]storage.Run
	// Spill enables larger-than-memory accumulation; nil stores everything
	// in memory (the paper's regime).
	Spill *storage.SpillEnv
	spillCounters
}

// NewStore creates a store with the given instance count.
func NewStore(degree int) *Store {
	return &Store{
		results: make([][]relation.Tuple, degree),
		bytes:   make([]int64, degree),
		runs:    make([][]storage.Run, degree),
	}
}

// OnTrigger implements Operator.
func (s *Store) OnTrigger(*Context, Emit) error { return errNoTrigger("store") }

// OnTuple implements Operator.
func (s *Store) OnTuple(ctx *Context, t relation.Tuple, _ Emit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := ctx.Instance
	s.results[i] = append(s.results[i], t)
	return s.chargeLocked(i, storage.TupleFootprint(t))
}

// OnBatch implements BatchOperator: one lock acquire appends the whole run
// (the batch slice is scratch; the appended Tuples are immutable and safely
// retained).
func (s *Store) OnBatch(ctx *Context, ts []relation.Tuple, _ Emit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := ctx.Instance
	s.results[i] = append(s.results[i], ts...)
	var add int64
	for _, t := range ts {
		add += storage.TupleFootprint(t)
	}
	return s.chargeLocked(i, add)
}

// chargeLocked accounts freshly buffered bytes and flushes the instance to
// a spill run when the query's grant is exceeded. Flushing waits for at
// least a page of buffered tuples so overrun never degenerates into a run
// per tuple; the caller holds s.mu.
func (s *Store) chargeLocked(i int, add int64) error {
	s.bytes[i] += add
	if s.Spill == nil {
		return nil
	}
	if s.Spill.Mem.Reserve(add) || s.bytes[i] < storage.PageSize {
		return nil
	}
	w := s.Spill.NewRun()
	for _, t := range s.results[i] {
		if err := w.Add(t); err != nil {
			return err
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	s.runs[i] = append(s.runs[i], run)
	s.notePass(run.Bytes(), s.Spill)
	s.Spill.Mem.Release(s.bytes[i])
	s.bytes[i] = 0
	s.results[i] = nil
	return nil
}

// Results returns the materialized fragments, reading spilled runs back
// through the buffer pool. Call only after execution completes.
func (s *Store) Results() ([][]relation.Tuple, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]relation.Tuple, len(s.results))
	for i := range s.results {
		if len(s.runs[i]) == 0 {
			out[i] = s.results[i]
			continue
		}
		n := len(s.results[i])
		for _, r := range s.runs[i] {
			n += r.Len()
		}
		frag := make([]relation.Tuple, 0, n)
		for _, r := range s.runs[i] {
			ts, err := r.All()
			if err != nil {
				return nil, err
			}
			frag = append(frag, ts...)
		}
		out[i] = append(frag, s.results[i]...)
	}
	return out, nil
}

// Sink terminates a pipeline chain like Store, but hands each tuple to an
// external consumer as it arrives instead of accumulating fragments — the
// engine-side half of a streaming row cursor. Push may block (bounded-buffer
// backpressure propagates into the producing pool threads) and its error
// aborts the operation, which is how closing a cursor mid-result unwinds the
// execution.
type Sink struct {
	nopSetup
	nopClose
	// Push delivers one result tuple; it must be safe for concurrent calls
	// (any pool thread can execute any instance's activation).
	Push func(t relation.Tuple) error
	// PushBatch, when set, delivers a whole run of tuples in one call (one
	// sink synchronization per batch instead of per tuple). Same contract as
	// Push plus BatchOperator's: the slice is scratch and must not be
	// retained after return.
	PushBatch func(ts []relation.Tuple) error
}

// OnTrigger implements Operator.
func (s *Sink) OnTrigger(*Context, Emit) error { return errNoTrigger("sink") }

// OnTuple implements Operator.
func (s *Sink) OnTuple(_ *Context, t relation.Tuple, _ Emit) error {
	return s.Push(t)
}

// OnBatch implements BatchOperator.
func (s *Sink) OnBatch(_ *Context, ts []relation.Tuple, _ Emit) error {
	if s.PushBatch != nil {
		return s.PushBatch(ts)
	}
	for _, t := range ts {
		if err := s.Push(t); err != nil {
			return err
		}
	}
	return nil
}

// Join and group-by keys are 64-bit hashes computed directly over the key
// columns: no projected tuple, no canonical string — nothing is materialized
// or allocated per probed/grouped tuple. Distinct keys can collide on the
// hash, so every hash-equal candidate is verified against the actual key
// columns (joinKeysEqual / groupMatches) before it joins or accumulates.
//
// The hash only needs to be consistent *within* one operator instance (build
// vs probe, accumulate vs lookup) — it never has to match the partitioning
// hash — so the hot single-int-key case uses a 3-round multiply/xorshift
// mixer instead of byte-at-a-time FNV (relation.Tuple.HashOn), which the
// scalar and batch paths below both go through.

// mix64 is the splitmix64 finalizer: full avalanche over a 64-bit key in six
// data-independent-latency ops.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashKey computes the join/group key hash of one tuple.
func hashKey(t relation.Tuple, cols []int) uint64 {
	if len(cols) == 1 {
		if v := t[cols[0]]; v.Kind() == relation.TInt {
			return mix64(uint64(v.AsInt()))
		}
	}
	return t.HashOn(cols)
}

// hashKeys is the batch form of hashKey: one bounds-checked pass over the
// run, appending to dst. Per-tuple results are identical to hashKey.
func hashKeys(ts []relation.Tuple, cols []int, dst []uint64) []uint64 {
	if len(cols) == 1 {
		c := cols[0]
		for _, t := range ts {
			if v := t[c]; v.Kind() == relation.TInt {
				dst = append(dst, mix64(uint64(v.AsInt())))
			} else {
				dst = append(dst, t.HashOn(cols))
			}
		}
		return dst
	}
	return relation.HashTuplesOn(ts, cols, dst)
}

// buildIndex is the per-instance state of hash and temp-index joins.
type buildIndex struct {
	// HashJoin: a flat chained hash table over build-key hashes. slots maps
	// hash&mask to a 1-based entry index; entries with colliding slots chain
	// through next. Four flat allocations total (no per-bucket slices), and
	// probing is two array loads per visited entry — the probe verifies each
	// hash-equal entry against the real key columns.
	mask  uint64
	slots []int32
	next  []int32
	keys  []uint64
	build []relation.Tuple
	// sorted holds build tuples ordered by key hash with a parallel hash
	// slice for binary search (TempIndex — DBS3 "builds indexes on the
	// fly"); probes verify the hash-equal run against the key columns.
	sortedKeys []uint64
	sorted     []relation.Tuple
}

// Join implements the three join algorithms over equi-join keys. The build
// side is always a bound fragment; the probe side is either the bound Probe
// fragment (triggered, the paper's IdealJoin) or the pipelined input (the
// paper's AssocJoin).
type Join struct {
	Algo     lera.JoinAlgo
	BuildKey []int
	ProbeKey []int
	// Spill enables Grace-style larger-than-memory execution for the hash
	// and temp-index algorithms: a build side exceeding the query's memory
	// grant is partitioned to disk, probe tuples are routed to matching
	// partitions, and OnClose joins partition pairs (recursively
	// repartitioning ones that still don't fit). Nil means always in
	// memory; nested loop never spills (it probes the resident fragment
	// directly and builds no auxiliary state).
	Spill *storage.SpillEnv
	spillCounters
}

// Setup implements Operator: builds the hash table or temporary index, or —
// when the build side exceeds the memory grant — partitions it to disk.
func (j *Join) Setup(ctx *Context) error {
	if j.Spill != nil && j.Algo != lera.NestedLoop {
		need := buildFootprint(ctx.Build)
		if !j.Spill.Mem.Reserve(need) {
			j.Spill.Mem.Release(need)
			g, err := j.newGraceState(ctx.Build, 0)
			if err != nil {
				return err
			}
			ctx.State = g
			return nil
		}
	}
	return j.buildState(ctx)
}

// buildState constructs the in-memory build structure for ctx.Build.
func (j *Join) buildState(ctx *Context) error {
	switch j.Algo {
	case lera.NestedLoop:
		// No auxiliary structure: probing scans the fragment.
	case lera.HashJoin:
		n := len(ctx.Build)
		size := 8
		for size < 2*n {
			size *= 2
		}
		idx := &buildIndex{
			mask:  uint64(size - 1),
			slots: make([]int32, size),
			next:  make([]int32, n),
			keys:  make([]uint64, n),
			build: ctx.Build,
		}
		for i, b := range ctx.Build {
			k := hashKey(b, j.BuildKey)
			s := k & idx.mask
			idx.keys[i] = k
			idx.next[i] = idx.slots[s]
			idx.slots[s] = int32(i + 1)
		}
		ctx.State = idx
	case lera.TempIndex:
		// Each build key is hashed exactly once, then tuples are reordered
		// by the precomputed keys — never O(n log n) key computations
		// inside the sort comparator.
		n := len(ctx.Build)
		keys := make([]uint64, n)
		order := make([]int, n)
		for i, b := range ctx.Build {
			keys[i] = hashKey(b, j.BuildKey)
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
		idx := &buildIndex{
			sortedKeys: make([]uint64, n),
			sorted:     make([]relation.Tuple, n),
		}
		for i, o := range order {
			idx.sortedKeys[i] = keys[o]
			idx.sorted[i] = ctx.Build[o]
		}
		ctx.State = idx
	}
	return nil
}

// probe emits build⨝probe concatenations for one probe tuple.
func (j *Join) probe(ctx *Context, t relation.Tuple, emit Emit) {
	switch j.Algo {
	case lera.NestedLoop:
		for _, b := range ctx.Build {
			if joinKeysEqual(b, t, j.BuildKey, j.ProbeKey) {
				emit(b.Concat(t))
			}
		}
	case lera.HashJoin:
		idx := ctx.State.(*buildIndex)
		k := hashKey(t, j.ProbeKey)
		for e := idx.slots[k&idx.mask]; e != 0; e = idx.next[e-1] {
			if idx.keys[e-1] == k {
				if b := idx.build[e-1]; joinKeysEqual(b, t, j.BuildKey, j.ProbeKey) {
					emit(b.Concat(t))
				}
			}
		}
	case lera.TempIndex:
		idx := ctx.State.(*buildIndex)
		k := hashKey(t, j.ProbeKey)
		keys := idx.sortedKeys
		i := sort.Search(len(keys), func(m int) bool { return keys[m] >= k })
		for ; i < len(keys) && keys[i] == k; i++ {
			if b := idx.sorted[i]; joinKeysEqual(b, t, j.BuildKey, j.ProbeKey) {
				emit(b.Concat(t))
			}
		}
	}
}

func joinKeysEqual(b, p relation.Tuple, bk, pk []int) bool {
	for i := range bk {
		if !b[bk[i]].Equal(p[pk[i]]) {
			return false
		}
	}
	return true
}

// OnTrigger implements Operator: the triggered join processes its whole
// bound probe fragment as one sequential unit of work.
func (j *Join) OnTrigger(ctx *Context, emit Emit) error {
	if g, ok := ctx.State.(*graceState); ok {
		return g.addProbeBatch(j, ctx.Probe)
	}
	for _, t := range ctx.Probe {
		j.probe(ctx, t, emit)
	}
	return nil
}

// OnTuple implements Operator: the pipelined join probes one redistributed
// tuple (a fine-grain unit of work).
func (j *Join) OnTuple(ctx *Context, t relation.Tuple, emit Emit) error {
	if g, ok := ctx.State.(*graceState); ok {
		return g.addProbe(j, t)
	}
	j.probe(ctx, t, emit)
	return nil
}

// OnClose implements Operator: an instance that went to disk joins its
// partition pairs here, after the last probe activation.
func (j *Join) OnClose(ctx *Context, emit Emit) error {
	if g, ok := ctx.State.(*graceState); ok {
		return j.closeGrace(g, emit, 0)
	}
	return nil
}

// OnBatch implements BatchOperator: the whole probe run is key-hashed in one
// pass (one bounds-checked loop over the key columns, no per-call overhead
// interleaved with probing), then probed against the build structure hash-
// first. Nested loop has no key structure to amortize; it scans per tuple
// exactly like the per-tuple path.
func (j *Join) OnBatch(ctx *Context, ts []relation.Tuple, emit Emit) error {
	if g, ok := ctx.State.(*graceState); ok {
		return g.addProbeBatch(j, ts)
	}
	switch j.Algo {
	case lera.HashJoin:
		idx := ctx.State.(*buildIndex)
		sc := scratchPool.Get().(*batchScratch)
		keys := hashKeys(ts, j.ProbeKey, sc.keys[:0])
		for i, t := range ts {
			k := keys[i]
			for e := idx.slots[k&idx.mask]; e != 0; e = idx.next[e-1] {
				if idx.keys[e-1] == k {
					if b := idx.build[e-1]; joinKeysEqual(b, t, j.BuildKey, j.ProbeKey) {
						emit(sc.concat(b, t))
					}
				}
			}
		}
		sc.keys = keys
		scratchPool.Put(sc)
	case lera.TempIndex:
		idx := ctx.State.(*buildIndex)
		sc := scratchPool.Get().(*batchScratch)
		keys := hashKeys(ts, j.ProbeKey, sc.keys[:0])
		sorted := idx.sortedKeys
		for i, t := range ts {
			k := keys[i]
			m := sort.Search(len(sorted), func(n int) bool { return sorted[n] >= k })
			for ; m < len(sorted) && sorted[m] == k; m++ {
				if b := idx.sorted[m]; joinKeysEqual(b, t, j.BuildKey, j.ProbeKey) {
					emit(sc.concat(b, t))
				}
			}
		}
		sc.keys = keys
		scratchPool.Put(sc)
	default:
		for _, t := range ts {
			j.probe(ctx, t, emit)
		}
	}
	return nil
}

// aggState is one group's accumulator.
type aggState struct {
	group relation.Tuple
	count int64
	sum   int64
	min   relation.Value
	max   relation.Value
	seen  bool
}

// Aggregate groups pipelined tuples and emits one result per group on close.
// Groups must be routed so a group lands on exactly one instance (the plan
// validator enforces hash routing on the group key). With a Spill env, an
// instance whose group table exceeds the query's memory grant writes the
// accumulators as a group-key-sorted run and starts fresh; OnClose merges
// the runs with the final in-memory table, combining accumulators groupwise.
type Aggregate struct {
	GroupBy []int
	Kind    lera.AggKind
	AggCol  int // -1 for COUNT
	Spill   *storage.SpillEnv
	spillCounters
}

// aggInst is the per-instance aggregation state: the live group table plus
// any spilled runs. All fields are guarded by ctx.Mu.
type aggInst struct {
	groups map[uint64][]*aggState
	bytes  int64 // accounted resident bytes of groups
	runs   []storage.Run
}

// groupMatches reports whether tuple t belongs to the group keyed by g: g
// was built by projecting the group-by columns, so g[i] pairs with t[cols[i]].
func groupMatches(g, t relation.Tuple, cols []int) bool {
	for i, c := range cols {
		if !g[i].Equal(t[c]) {
			return false
		}
	}
	return true
}

// Setup implements Operator.
func (a *Aggregate) Setup(ctx *Context) error {
	ctx.State = &aggInst{groups: make(map[uint64][]*aggState)}
	return nil
}

// OnTrigger implements Operator.
func (a *Aggregate) OnTrigger(*Context, Emit) error { return errNoTrigger("aggregate") }

// OnTuple implements Operator.
func (a *Aggregate) OnTuple(ctx *Context, t relation.Tuple, _ Emit) error {
	// Group lookup by key-column hash with chained collision buckets: the
	// per-tuple fast path hashes in place and allocates nothing; only a
	// group's first tuple materializes the group key (Project).
	key := hashKey(t, a.GroupBy)
	ctx.Mu.Lock()
	defer ctx.Mu.Unlock()
	return a.accumulateLocked(ctx.State.(*aggInst), key, t)
}

// OnBatch implements BatchOperator: the whole run is group-hashed outside
// the instance lock, then accumulated under a single lock epoch — one
// acquire per batch where the per-tuple path pays one per tuple, which is
// the contention the execution model's any-thread-any-instance rule creates
// on aggregates.
func (a *Aggregate) OnBatch(ctx *Context, ts []relation.Tuple, _ Emit) error {
	sc := scratchPool.Get().(*batchScratch)
	keys := hashKeys(ts, a.GroupBy, sc.keys[:0])
	ctx.Mu.Lock()
	inst := ctx.State.(*aggInst)
	var err error
	for i, t := range ts {
		if err = a.accumulateLocked(inst, keys[i], t); err != nil {
			break
		}
	}
	ctx.Mu.Unlock()
	sc.keys = keys
	scratchPool.Put(sc)
	return err
}

// accumulateLocked folds one tuple into its group, spilling the group table
// when a new group pushes it past the memory grant; the caller holds ctx.Mu.
func (a *Aggregate) accumulateLocked(inst *aggInst, key uint64, t relation.Tuple) error {
	var st *aggState
	for _, cand := range inst.groups[key] {
		if groupMatches(cand.group, t, a.GroupBy) {
			st = cand
			break
		}
	}
	if st == nil {
		st = &aggState{group: t.Project(a.GroupBy)}
		inst.groups[key] = append(inst.groups[key], st)
		add := storage.TupleFootprint(st.group) + aggStateOverhead
		inst.bytes += add
		if a.Spill != nil && !a.Spill.Mem.Reserve(add) {
			if err := a.spillLocked(inst); err != nil {
				return err
			}
			// The just-created group spilled with the rest; re-create it so
			// this tuple has somewhere to accumulate.
			st = &aggState{group: t.Project(a.GroupBy)}
			inst.groups[key] = append(inst.groups[key], st)
			inst.bytes += add
			a.Spill.Mem.Reserve(add)
		}
	}
	st.count++
	if a.AggCol >= 0 {
		v := t[a.AggCol]
		switch a.Kind {
		case lera.AggSum:
			st.sum += v.AsInt()
		case lera.AggMin:
			if !st.seen || v.Compare(st.min) < 0 {
				st.min = v
			}
		case lera.AggMax:
			if !st.seen || v.Compare(st.max) > 0 {
				st.max = v
			}
		}
		st.seen = true
	}
	return nil
}

// final renders one group's result tuple.
func (a *Aggregate) final(st *aggState) relation.Tuple {
	var v relation.Value
	switch a.Kind {
	case lera.AggCount:
		v = relation.Int(st.count)
	case lera.AggSum:
		v = relation.Int(st.sum)
	case lera.AggMin:
		v = st.min
	case lera.AggMax:
		v = st.max
	}
	return st.group.Concat(relation.Tuple{v})
}

// OnClose implements Operator: emits one tuple per group, merging spilled
// runs with the in-memory table when the instance overflowed.
func (a *Aggregate) OnClose(ctx *Context, emit Emit) error {
	ctx.Mu.Lock()
	inst := ctx.State.(*aggInst)
	if len(inst.runs) > 0 {
		err := a.mergeRunsLocked(inst, emit)
		ctx.Mu.Unlock()
		return err
	}
	out := make([]relation.Tuple, 0, len(inst.groups))
	for _, bucket := range inst.groups {
		for _, st := range bucket {
			out = append(out, a.final(st))
		}
	}
	ctx.Mu.Unlock()
	// Deterministic emission order helps tests; sort by group values.
	sort.Slice(out, func(i, k int) bool { return out[i].Compare(out[k]) < 0 })
	for _, t := range out {
		emit(t)
	}
	return nil
}
