// Package operator implements the sequential relational operators that
// Lera-par nodes execute. Each operator processes *activations* — a trigger
// (process my bound fragment) or a tuple (process one pipelined tuple) — and
// emits result tuples downstream. The execution engine (package core) owns
// queues, threads and routing; operators only see their instance context and
// an emit callback, which is what makes any pool thread able to execute any
// instance's activation (§3).
package operator

import (
	"sort"
	"sync"

	"dbs3/internal/lera"
	"dbs3/internal/relation"
)

// Emit sends one result tuple downstream. The engine routes it to the right
// consumer instance(s); Emit may block on queue backpressure.
type Emit func(t relation.Tuple)

// Context is the per-instance execution context. Fragments are immutable
// during execution; State is operator-private per-instance state, prepared
// by Setup (the engine guarantees Setup runs exactly once per instance,
// before any activation).
type Context struct {
	// Instance is the operator instance index (= fragment index).
	Instance int
	// Input is the bound fragment of filter/transmit instances.
	Input []relation.Tuple
	// Build and Probe are the bound fragments of join instances; Probe is
	// nil for pipelined joins.
	Build, Probe []relation.Tuple
	// State is operator-private; set by Setup.
	State any
	// Mu guards State for operators that mutate it per-tuple (aggregates):
	// the execution model lets any pool thread process any instance's
	// activation, so two threads can be inside the same instance at once.
	Mu sync.Mutex
}

// Operator is the sequential logic of one Lera-par node.
type Operator interface {
	// Setup prepares per-instance state (e.g. builds a hash table on the
	// build fragment). Runs once per instance.
	Setup(ctx *Context) error
	// OnTrigger processes a control activation (triggered operations).
	OnTrigger(ctx *Context, emit Emit) error
	// OnTuple processes one pipelined tuple (pipelined operations).
	OnTuple(ctx *Context, t relation.Tuple, emit Emit) error
	// OnClose runs after the instance's last activation completed (the
	// engine guarantees exactly-once, after-everything ordering). Operators
	// with buffered state (aggregates) emit it here.
	OnClose(ctx *Context, emit Emit) error
}

// nopClose is embedded by operators with nothing to flush.
type nopClose struct{}

func (nopClose) OnClose(*Context, Emit) error { return nil }

// nopSetup is embedded by operators with no per-instance state.
type nopSetup struct{}

func (nopSetup) Setup(*Context) error { return nil }

// errNoTrigger panics for pipelined-only operators receiving triggers; the
// planner prevents this, so it is an engine bug, not a user error.
func errNoTrigger(name string) error {
	panic("operator: " + name + " received a trigger; plan binding should have prevented this")
}

// Filter scans its bound fragment and emits tuples satisfying the bound
// predicate. Triggered: one activation processes the whole fragment, which
// is the paper's "coarse grain" unit of work.
type Filter struct {
	nopSetup
	nopClose
	Pred lera.Predicate
}

// OnTrigger implements Operator.
func (f *Filter) OnTrigger(ctx *Context, emit Emit) error {
	for _, t := range ctx.Input {
		if f.Pred.Eval(t) {
			emit(t)
		}
	}
	return nil
}

// OnTuple implements Operator: a pipelined filter applies the predicate to
// the redistributed stream (used for residual predicates after joins).
func (f *Filter) OnTuple(_ *Context, t relation.Tuple, emit Emit) error {
	if f.Pred.Eval(t) {
		emit(t)
	}
	return nil
}

// Transmit forwards tuples downstream; redistribution happens on the edge
// (the engine routes each emitted tuple by hash). Bound transmits are
// triggered and read their fragment; pipelined transmits re-route a stream.
type Transmit struct {
	nopSetup
	nopClose
}

// OnTrigger implements Operator.
func (tr *Transmit) OnTrigger(ctx *Context, emit Emit) error {
	for _, t := range ctx.Input {
		emit(t)
	}
	return nil
}

// OnTuple implements Operator.
func (tr *Transmit) OnTuple(_ *Context, t relation.Tuple, emit Emit) error {
	emit(t)
	return nil
}

// Map projects tuples onto a column subset.
type Map struct {
	nopSetup
	nopClose
	Cols []int
}

// OnTrigger implements Operator.
func (m *Map) OnTrigger(*Context, Emit) error { return errNoTrigger("map") }

// OnTuple implements Operator.
func (m *Map) OnTuple(_ *Context, t relation.Tuple, emit Emit) error {
	emit(t.Project(m.Cols))
	return nil
}

// Store materializes its input: tuples accumulate per instance and the
// engine collects Results when the operation completes. Store terminates a
// pipeline chain (a materialization point between subqueries).
type Store struct {
	nopSetup
	nopClose
	mu      sync.Mutex
	results [][]relation.Tuple
}

// NewStore creates a store with the given instance count.
func NewStore(degree int) *Store {
	return &Store{results: make([][]relation.Tuple, degree)}
}

// OnTrigger implements Operator.
func (s *Store) OnTrigger(*Context, Emit) error { return errNoTrigger("store") }

// OnTuple implements Operator.
func (s *Store) OnTuple(ctx *Context, t relation.Tuple, _ Emit) error {
	s.mu.Lock()
	s.results[ctx.Instance] = append(s.results[ctx.Instance], t)
	s.mu.Unlock()
	return nil
}

// Results returns the materialized fragments. Call only after execution
// completes.
func (s *Store) Results() [][]relation.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.results
}

// Sink terminates a pipeline chain like Store, but hands each tuple to an
// external consumer as it arrives instead of accumulating fragments — the
// engine-side half of a streaming row cursor. Push may block (bounded-buffer
// backpressure propagates into the producing pool threads) and its error
// aborts the operation, which is how closing a cursor mid-result unwinds the
// execution.
type Sink struct {
	nopSetup
	nopClose
	// Push delivers one result tuple; it must be safe for concurrent calls
	// (any pool thread can execute any instance's activation).
	Push func(t relation.Tuple) error
}

// OnTrigger implements Operator.
func (s *Sink) OnTrigger(*Context, Emit) error { return errNoTrigger("sink") }

// OnTuple implements Operator.
func (s *Sink) OnTuple(_ *Context, t relation.Tuple, _ Emit) error {
	return s.Push(t)
}

// Join and group-by keys are 64-bit hashes computed directly over the key
// columns (relation.Tuple.HashOn): no projected tuple, no canonical string —
// nothing is materialized or allocated per probed/grouped tuple. Distinct
// keys can collide on the hash, so every hash-equal candidate is verified
// against the actual key columns (joinKeysEqual / groupMatches) before it
// joins or accumulates.

// buildIndex is the per-instance state of hash and temp-index joins.
type buildIndex struct {
	// hash groups build tuples by join-key hash (HashJoin); the probe
	// verifies each bucket entry against the real key columns.
	hash map[uint64][]relation.Tuple
	// sorted holds build tuples ordered by key hash with a parallel hash
	// slice for binary search (TempIndex — DBS3 "builds indexes on the
	// fly"); probes verify the hash-equal run against the key columns.
	sortedKeys []uint64
	sorted     []relation.Tuple
}

// Join implements the three join algorithms over equi-join keys. The build
// side is always a bound fragment; the probe side is either the bound Probe
// fragment (triggered, the paper's IdealJoin) or the pipelined input (the
// paper's AssocJoin).
type Join struct {
	Algo     lera.JoinAlgo
	BuildKey []int
	ProbeKey []int
}

// Setup implements Operator: builds the hash table or temporary index.
func (j *Join) Setup(ctx *Context) error {
	switch j.Algo {
	case lera.NestedLoop:
		// No auxiliary structure: probing scans the fragment.
	case lera.HashJoin:
		idx := &buildIndex{hash: make(map[uint64][]relation.Tuple, len(ctx.Build))}
		for _, b := range ctx.Build {
			k := b.HashOn(j.BuildKey)
			idx.hash[k] = append(idx.hash[k], b)
		}
		ctx.State = idx
	case lera.TempIndex:
		// Each build key is hashed exactly once, then tuples are reordered
		// by the precomputed keys — never O(n log n) key computations
		// inside the sort comparator.
		n := len(ctx.Build)
		keys := make([]uint64, n)
		order := make([]int, n)
		for i, b := range ctx.Build {
			keys[i] = b.HashOn(j.BuildKey)
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
		idx := &buildIndex{
			sortedKeys: make([]uint64, n),
			sorted:     make([]relation.Tuple, n),
		}
		for i, o := range order {
			idx.sortedKeys[i] = keys[o]
			idx.sorted[i] = ctx.Build[o]
		}
		ctx.State = idx
	}
	return nil
}

// probe emits build⨝probe concatenations for one probe tuple.
func (j *Join) probe(ctx *Context, t relation.Tuple, emit Emit) {
	switch j.Algo {
	case lera.NestedLoop:
		for _, b := range ctx.Build {
			if joinKeysEqual(b, t, j.BuildKey, j.ProbeKey) {
				emit(b.Concat(t))
			}
		}
	case lera.HashJoin:
		idx := ctx.State.(*buildIndex)
		for _, b := range idx.hash[t.HashOn(j.ProbeKey)] {
			if joinKeysEqual(b, t, j.BuildKey, j.ProbeKey) {
				emit(b.Concat(t))
			}
		}
	case lera.TempIndex:
		idx := ctx.State.(*buildIndex)
		k := t.HashOn(j.ProbeKey)
		keys := idx.sortedKeys
		i := sort.Search(len(keys), func(m int) bool { return keys[m] >= k })
		for ; i < len(keys) && keys[i] == k; i++ {
			if b := idx.sorted[i]; joinKeysEqual(b, t, j.BuildKey, j.ProbeKey) {
				emit(b.Concat(t))
			}
		}
	}
}

func joinKeysEqual(b, p relation.Tuple, bk, pk []int) bool {
	for i := range bk {
		if !b[bk[i]].Equal(p[pk[i]]) {
			return false
		}
	}
	return true
}

// OnTrigger implements Operator: the triggered join processes its whole
// bound probe fragment as one sequential unit of work.
func (j *Join) OnTrigger(ctx *Context, emit Emit) error {
	for _, t := range ctx.Probe {
		j.probe(ctx, t, emit)
	}
	return nil
}

// OnTuple implements Operator: the pipelined join probes one redistributed
// tuple (a fine-grain unit of work).
func (j *Join) OnTuple(ctx *Context, t relation.Tuple, emit Emit) error {
	j.probe(ctx, t, emit)
	return nil
}

// OnClose implements Operator.
func (j *Join) OnClose(*Context, Emit) error { return nil }

// aggState is one group's accumulator.
type aggState struct {
	group relation.Tuple
	count int64
	sum   int64
	min   relation.Value
	max   relation.Value
	seen  bool
}

// Aggregate groups pipelined tuples and emits one result per group on close.
// Groups must be routed so a group lands on exactly one instance (the plan
// validator enforces hash routing on the group key).
type Aggregate struct {
	GroupBy []int
	Kind    lera.AggKind
	AggCol  int // -1 for COUNT
}

// groupMatches reports whether tuple t belongs to the group keyed by g: g
// was built by projecting the group-by columns, so g[i] pairs with t[cols[i]].
func groupMatches(g, t relation.Tuple, cols []int) bool {
	for i, c := range cols {
		if !g[i].Equal(t[c]) {
			return false
		}
	}
	return true
}

// Setup implements Operator.
func (a *Aggregate) Setup(ctx *Context) error {
	ctx.State = make(map[uint64][]*aggState)
	return nil
}

// OnTrigger implements Operator.
func (a *Aggregate) OnTrigger(*Context, Emit) error { return errNoTrigger("aggregate") }

// OnTuple implements Operator.
func (a *Aggregate) OnTuple(ctx *Context, t relation.Tuple, _ Emit) error {
	// Group lookup by key-column hash with chained collision buckets: the
	// per-tuple fast path hashes in place and allocates nothing; only a
	// group's first tuple materializes the group key (Project).
	key := t.HashOn(a.GroupBy)
	ctx.Mu.Lock()
	defer ctx.Mu.Unlock()
	groups := ctx.State.(map[uint64][]*aggState)
	var st *aggState
	for _, cand := range groups[key] {
		if groupMatches(cand.group, t, a.GroupBy) {
			st = cand
			break
		}
	}
	if st == nil {
		st = &aggState{group: t.Project(a.GroupBy)}
		groups[key] = append(groups[key], st)
	}
	st.count++
	if a.AggCol >= 0 {
		v := t[a.AggCol]
		switch a.Kind {
		case lera.AggSum:
			st.sum += v.AsInt()
		case lera.AggMin:
			if !st.seen || v.Compare(st.min) < 0 {
				st.min = v
			}
		case lera.AggMax:
			if !st.seen || v.Compare(st.max) > 0 {
				st.max = v
			}
		}
		st.seen = true
	}
	return nil
}

// OnClose implements Operator: emits one tuple per group.
func (a *Aggregate) OnClose(ctx *Context, emit Emit) error {
	ctx.Mu.Lock()
	groups := ctx.State.(map[uint64][]*aggState)
	out := make([]relation.Tuple, 0, len(groups))
	for _, bucket := range groups {
		for _, st := range bucket {
			var v relation.Value
			switch a.Kind {
			case lera.AggCount:
				v = relation.Int(st.count)
			case lera.AggSum:
				v = relation.Int(st.sum)
			case lera.AggMin:
				v = st.min
			case lera.AggMax:
				v = st.max
			}
			out = append(out, st.group.Concat(relation.Tuple{v}))
		}
	}
	ctx.Mu.Unlock()
	// Deterministic emission order helps tests; sort by group values.
	sort.Slice(out, func(i, k int) bool { return out[i].Compare(out[k]) < 0 })
	for _, t := range out {
		emit(t)
	}
	return nil
}
