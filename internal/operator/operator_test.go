package operator

import (
	"testing"
	"testing/quick"

	"dbs3/internal/lera"
	"dbs3/internal/relation"
)

var kvSchema = relation.MustSchema(
	relation.Column{Name: "k", Type: relation.TInt},
	relation.Column{Name: "v", Type: relation.TString},
)

func kv(k int64, v string) relation.Tuple {
	return relation.NewTuple(relation.Int(k), relation.Str(v))
}

func collect() (Emit, *[]relation.Tuple) {
	var out []relation.Tuple
	return func(t relation.Tuple) { out = append(out, t) }, &out
}

func TestFilterOnTrigger(t *testing.T) {
	pred, err := (lera.ColConst{Col: "k", Op: lera.GE, Val: relation.Int(2)}).Bind(kvSchema)
	if err != nil {
		t.Fatal(err)
	}
	f := &Filter{Pred: pred}
	ctx := &Context{Input: []relation.Tuple{kv(1, "a"), kv(2, "b"), kv(3, "c")}}
	emit, out := collect()
	if err := f.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.OnTrigger(ctx, emit); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 2 || (*out)[0][0].AsInt() != 2 || (*out)[1][0].AsInt() != 3 {
		t.Errorf("filter output = %v", *out)
	}
	if err := f.OnClose(ctx, emit); err != nil {
		t.Fatal(err)
	}
}

func TestFilterPipelined(t *testing.T) {
	pred, err := (lera.ColConst{Col: "k", Op: lera.LT, Val: relation.Int(2)}).Bind(kvSchema)
	if err != nil {
		t.Fatal(err)
	}
	f := &Filter{Pred: pred}
	emit, out := collect()
	f.OnTuple(&Context{}, kv(1, "a"), emit)
	f.OnTuple(&Context{}, kv(5, "b"), emit)
	if len(*out) != 1 || (*out)[0][0].AsInt() != 1 {
		t.Errorf("pipelined filter output = %v", *out)
	}
}

func TestTransmitBothModes(t *testing.T) {
	tr := &Transmit{}
	ctx := &Context{Input: []relation.Tuple{kv(1, "a"), kv(2, "b")}}
	emit, out := collect()
	tr.OnTrigger(ctx, emit)
	if len(*out) != 2 {
		t.Errorf("triggered transmit emitted %d", len(*out))
	}
	tr.OnTuple(ctx, kv(3, "c"), emit)
	if len(*out) != 3 {
		t.Errorf("pipelined transmit emitted %d", len(*out))
	}
}

func TestMapProjects(t *testing.T) {
	m := &Map{Cols: []int{1}}
	emit, out := collect()
	m.OnTuple(&Context{}, kv(5, "x"), emit)
	if len(*out) != 1 || len((*out)[0]) != 1 || (*out)[0][0].AsString() != "x" {
		t.Errorf("map output = %v", *out)
	}
	defer func() {
		if recover() == nil {
			t.Error("map OnTrigger should panic")
		}
	}()
	m.OnTrigger(&Context{}, emit)
}

func TestStoreAccumulatesPerInstance(t *testing.T) {
	s := NewStore(3)
	emit := func(relation.Tuple) { t.Error("store must not emit") }
	s.OnTuple(&Context{Instance: 1}, kv(1, "a"), emit)
	s.OnTuple(&Context{Instance: 1}, kv(2, "b"), emit)
	s.OnTuple(&Context{Instance: 2}, kv(3, "c"), emit)
	res, err := s.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != 0 || len(res[1]) != 2 || len(res[2]) != 1 {
		t.Errorf("results = %v", res)
	}
	defer func() {
		if recover() == nil {
			t.Error("store OnTrigger should panic")
		}
	}()
	s.OnTrigger(&Context{}, emit)
}

func joinFixture() *Context {
	return &Context{
		Build: []relation.Tuple{kv(1, "b1"), kv(2, "b2"), kv(2, "b2x"), kv(3, "b3")},
		Probe: []relation.Tuple{kv(2, "p2"), kv(4, "p4"), kv(1, "p1")},
	}
}

func runJoin(t *testing.T, algo lera.JoinAlgo, pipelined bool) []relation.Tuple {
	t.Helper()
	j := &Join{Algo: algo, BuildKey: []int{0}, ProbeKey: []int{0}}
	ctx := joinFixture()
	if err := j.Setup(ctx); err != nil {
		t.Fatal(err)
	}
	emit, out := collect()
	if pipelined {
		probes := ctx.Probe
		ctx.Probe = nil
		for _, p := range probes {
			if err := j.OnTuple(ctx, p, emit); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		if err := j.OnTrigger(ctx, emit); err != nil {
			t.Fatal(err)
		}
	}
	return *out
}

func TestJoinAlgorithmsAgree(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		nl := relation.New("nl", nil)
		nl.Tuples = runJoin(t, lera.NestedLoop, pipelined)
		if len(nl.Tuples) != 3 { // k=2 matches two build tuples, k=1 one, k=4 none
			t.Fatalf("nested loop found %d matches", len(nl.Tuples))
		}
		for _, algo := range []lera.JoinAlgo{lera.HashJoin, lera.TempIndex} {
			other := relation.New("o", nil)
			other.Tuples = runJoin(t, algo, pipelined)
			if !nl.EqualMultiset(other) {
				t.Errorf("%v (pipelined=%v) disagrees with nested loop: %v vs %v", algo, pipelined, other.Tuples, nl.Tuples)
			}
		}
	}
}

func TestJoinOutputShape(t *testing.T) {
	out := runJoin(t, lera.HashJoin, false)
	for _, tup := range out {
		if len(tup) != 4 {
			t.Fatalf("join tuple arity = %d, want 4", len(tup))
		}
		if tup[0].AsInt() != tup[2].AsInt() {
			t.Errorf("join keys differ in %v", tup)
		}
	}
}

// Property: all three algorithms produce identical multisets on random data.
func TestJoinAlgorithmsAgreeProperty(t *testing.T) {
	f := func(buildKeys, probeKeys []uint8) bool {
		ctx := &Context{}
		for i, k := range buildKeys {
			if i >= 30 {
				break
			}
			ctx.Build = append(ctx.Build, kv(int64(k%16), "b"))
		}
		for i, k := range probeKeys {
			if i >= 30 {
				break
			}
			ctx.Probe = append(ctx.Probe, kv(int64(k%16), "p"))
		}
		var results []*relation.Relation
		for _, algo := range []lera.JoinAlgo{lera.NestedLoop, lera.HashJoin, lera.TempIndex} {
			j := &Join{Algo: algo, BuildKey: []int{0}, ProbeKey: []int{0}}
			c := &Context{Build: ctx.Build, Probe: ctx.Probe}
			if err := j.Setup(c); err != nil {
				return false
			}
			var out []relation.Tuple
			if err := j.OnTrigger(c, func(t relation.Tuple) { out = append(out, t) }); err != nil {
				return false
			}
			r := relation.New("r", nil)
			r.Tuples = out
			results = append(results, r)
		}
		return results[0].EqualMultiset(results[1]) && results[0].EqualMultiset(results[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAggregateCount(t *testing.T) {
	a := &Aggregate{GroupBy: []int{1}, Kind: lera.AggCount, AggCol: -1}
	ctx := &Context{}
	a.Setup(ctx)
	emit, out := collect()
	for _, tup := range []relation.Tuple{kv(1, "x"), kv(2, "x"), kv(3, "y")} {
		a.OnTuple(ctx, tup, emit)
	}
	if len(*out) != 0 {
		t.Fatal("aggregate must not emit before close")
	}
	a.OnClose(ctx, emit)
	if len(*out) != 2 {
		t.Fatalf("groups = %v", *out)
	}
	// Sorted by group key: "x" before "y".
	if (*out)[0][0].AsString() != "x" || (*out)[0][1].AsInt() != 2 {
		t.Errorf("group x = %v", (*out)[0])
	}
	if (*out)[1][0].AsString() != "y" || (*out)[1][1].AsInt() != 1 {
		t.Errorf("group y = %v", (*out)[1])
	}
}

func TestAggregateSumMinMax(t *testing.T) {
	tuples := []relation.Tuple{kv(5, "g"), kv(2, "g"), kv(9, "g")}
	cases := []struct {
		kind lera.AggKind
		want int64
	}{{lera.AggSum, 16}, {lera.AggMin, 2}, {lera.AggMax, 9}}
	for _, c := range cases {
		a := &Aggregate{GroupBy: []int{1}, Kind: c.kind, AggCol: 0}
		ctx := &Context{}
		a.Setup(ctx)
		emit, out := collect()
		for _, tup := range tuples {
			a.OnTuple(ctx, tup, emit)
		}
		a.OnClose(ctx, emit)
		if len(*out) != 1 || (*out)[0][1].AsInt() != c.want {
			t.Errorf("%v = %v, want %d", c.kind, *out, c.want)
		}
	}
}

func TestAggregateRejectsTrigger(t *testing.T) {
	a := &Aggregate{GroupBy: []int{0}, Kind: lera.AggCount, AggCol: -1}
	defer func() {
		if recover() == nil {
			t.Error("aggregate OnTrigger should panic")
		}
	}()
	a.OnTrigger(&Context{}, func(relation.Tuple) {})
}

func TestJoinCompositeKey(t *testing.T) {
	s := relation.MustSchema(
		relation.Column{Name: "a", Type: relation.TInt},
		relation.Column{Name: "b", Type: relation.TInt},
	)
	_ = s
	mk := func(a, b int64) relation.Tuple { return relation.NewTuple(relation.Int(a), relation.Int(b)) }
	ctx := &Context{
		Build: []relation.Tuple{mk(1, 1), mk(1, 2), mk(2, 1)},
		Probe: []relation.Tuple{mk(1, 1), mk(2, 2)},
	}
	j := &Join{Algo: lera.HashJoin, BuildKey: []int{0, 1}, ProbeKey: []int{0, 1}}
	j.Setup(ctx)
	emit, out := collect()
	j.OnTrigger(ctx, emit)
	if len(*out) != 1 {
		t.Errorf("composite key join = %v", *out)
	}
}
