package operator

// Hot-path microbenchmarks for the allocation-free join/aggregate keys.
// The *StringKey benchmarks freeze the pre-change probe path — projected
// tuple + canonical string per probed/grouped tuple — as the measuring
// stick for the allocs/op reduction archived in BENCH_core.json; they are
// baselines, not live code.

import (
	"fmt"
	"testing"

	"dbs3/internal/lera"
	"dbs3/internal/relation"
)

// benchFragment builds a (k, id, pad) fragment with nKeys distinct keys.
func benchFragment(n, nKeys int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = relation.NewTuple(
			relation.Int(int64(i%nKeys)),
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("pad-%d", i%7)),
		)
	}
	return out
}

func benchmarkJoinProbe(b *testing.B, algo lera.JoinAlgo) {
	j := &Join{Algo: algo, BuildKey: []int{0}, ProbeKey: []int{0}}
	ctx := &Context{Instance: 0, Build: benchFragment(10_000, 10_000)}
	if err := j.Setup(ctx); err != nil {
		b.Fatal(err)
	}
	probes := benchFragment(1024, 10_000)
	matched := 0
	emit := func(relation.Tuple) { matched++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.OnTuple(ctx, probes[i%len(probes)], emit); err != nil {
			b.Fatal(err)
		}
	}
	if matched == 0 {
		b.Fatal("probe never matched")
	}
}

func BenchmarkJoinProbeHashKey(b *testing.B)      { benchmarkJoinProbe(b, lera.HashJoin) }
func BenchmarkJoinProbeTempIndexKey(b *testing.B) { benchmarkJoinProbe(b, lera.TempIndex) }

// stringKeyOf is the pre-change key rendering: project the key columns into
// a fresh tuple and render it as a canonical string.
func stringKeyOf(t relation.Tuple, cols []int) string {
	return t.Project(cols).Key()
}

// BenchmarkJoinProbeStringKey replays the old HashJoin probe byte-for-byte:
// a string-keyed map probed with a per-tuple projected, rendered key.
func BenchmarkJoinProbeStringKey(b *testing.B) {
	buildKey := []int{0}
	probeKey := []int{0}
	build := benchFragment(10_000, 10_000)
	hash := make(map[string][]relation.Tuple, len(build))
	for _, t := range build {
		k := stringKeyOf(t, buildKey)
		hash[k] = append(hash[k], t)
	}
	probes := benchFragment(1024, 10_000)
	matched := 0
	emit := func(relation.Tuple) { matched++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := probes[i%len(probes)]
		for _, bt := range hash[stringKeyOf(t, probeKey)] {
			emit(bt.Concat(t))
		}
	}
	if matched == 0 {
		b.Fatal("probe never matched")
	}
}

func BenchmarkAggregateTupleHashKey(b *testing.B) {
	a := &Aggregate{GroupBy: []int{0}, Kind: lera.AggSum, AggCol: 1}
	ctx := &Context{Instance: 0}
	if err := a.Setup(ctx); err != nil {
		b.Fatal(err)
	}
	tuples := benchFragment(1024, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.OnTuple(ctx, tuples[i%len(tuples)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregateTupleStringKey replays the old group lookup: string map
// key rendered per tuple.
func BenchmarkAggregateTupleStringKey(b *testing.B) {
	groupBy := []int{0}
	type aggAcc struct {
		group relation.Tuple
		sum   int64
	}
	groups := make(map[string]*aggAcc)
	tuples := benchFragment(1024, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tuples[i%len(tuples)]
		key := stringKeyOf(t, groupBy)
		st, ok := groups[key]
		if !ok {
			st = &aggAcc{group: t.Project(groupBy)}
			groups[key] = st
		}
		st.sum += t[1].AsInt()
	}
}
