package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the engine's context-threading invariant: cancellation
// must flow from the caller to every blocking operation. Two rules:
//
//  1. A function that receives a context.Context (directly or from an
//     enclosing function literal's scope) must not mint a root context
//     with context.Background() or context.TODO() — doing so severs the
//     cancellation chain for everything downstream.
//  2. Library packages (anything that is not package main) must not call
//     context.Background()/TODO() at all: a library cannot know its
//     caller's lifecycle, so it has to be handed one. Deliberate API
//     shims (Query delegating to QueryContext) carry a
//     //dbs3lint:ignore ctxflow directive documenting the exception.
//
// Historical bug: internal/cluster's coordinator poll loop ran
// Poll(context.Background()) from its ticker goroutine, so closing the
// coordinator could not cancel in-flight /stats requests.
//
// _test.go files are exempt — tests are roots and mint contexts freely.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "context.Background()/TODO() must not appear where a caller's context is (or should be) available\n\n" +
		"A function with a context.Context parameter that calls context.Background() severs the\n" +
		"cancellation chain; a library function without one should be handed a context instead of\n" +
		"minting a root. Motivated by the cluster coordinator poll loop, whose background contexts\n" +
		"kept /stats polls alive after Close.",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	library := pass.Pkg.Name() != "main"
	for _, f := range pass.Files {
		if pass.TestFiles[f] {
			continue
		}
		// ctxDepth counts enclosing functions that bind a
		// context.Context parameter; any depth > 0 means a ctx is in
		// scope at the current node.
		var walk func(n ast.Node, ctxDepth int)
		walk = func(n ast.Node, ctxDepth int) {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return
				}
				if funcTakesCtx(pass.TypesInfo, n.Type) {
					ctxDepth++
				}
				walk(n.Body, ctxDepth)
				return
			case *ast.FuncLit:
				if funcTakesCtx(pass.TypesInfo, n.Type) {
					ctxDepth++
				}
				walk(n.Body, ctxDepth)
				return
			case *ast.CallExpr:
				fn := resolveCallee(pass.TypesInfo, n)
				if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
					switch {
					case ctxDepth > 0:
						pass.Reportf(n.Pos(),
							"context.%s() inside a function that receives a context.Context: thread the caller's ctx instead of severing cancellation", fn.Name())
					case library:
						pass.Reportf(n.Pos(),
							"context.%s() in library code: accept a context.Context from the caller (add //dbs3lint:ignore ctxflow <reason> for a deliberate API shim)", fn.Name())
					}
				}
			}
			if n != nil {
				for _, c := range childNodes(n) {
					walk(c, ctxDepth)
				}
			}
		}
		walk(f, 0)
	}
	return nil
}

// funcTakesCtx reports whether the function type binds a parameter of type
// context.Context.
func funcTakesCtx(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// childNodes returns n's immediate children, letting walkers manage their
// own recursion (ast.Inspect cannot carry per-subtree state down).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if c == n {
			return true
		}
		out = append(out, c)
		return false
	})
	return out
}
