package analysis

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{AtomicField, CancelClass, CtxFlow, LockIO}
}

// ByName resolves a comma-separated analyzer selection; nil input means
// all. Unknown names return ok=false with the offending name.
func ByName(names []string) (as []*Analyzer, unknown string, ok bool) {
	if len(names) == 0 {
		return All(), "", true
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, n := range names {
		a, found := byName[n]
		if !found {
			return nil, n, false
		}
		as = append(as, a)
	}
	return as, "", true
}
