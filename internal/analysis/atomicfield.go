package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicField enforces all-or-nothing atomicity: once any code path
// touches a variable or struct field through sync/atomic
// (atomic.AddInt64(&x, ...) and friends), every other access anywhere in
// the package — tests included — must be atomic too. A single plain read
// next to an atomic writer is a data race the race detector only reports
// when a test happens to interleave it.
//
// The analyzer works package-at-a-time over the test variant (production
// files + _test.go files), so an atomic store in production code convicts
// a plain read in a test and vice versa. Struct-literal keys are exempt
// (initialization before the value is shared is the documented safe
// idiom), as is the &x argument of the atomic call itself.
//
// Prefer the atomic.Int64/Uint64/Bool/Pointer wrapper types for new code:
// they make non-atomic access unrepresentable and this analyzer obsolete
// for the fields that use them.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "a variable accessed via sync/atomic anywhere must be accessed atomically everywhere\n\n" +
		"Mixing atomic.AddInt64(&x, 1) with a plain `x` read races. Motivated by the batch-mode\n" +
		"counters in cmd/dbs3, which mixed atomic adds from worker goroutines with plain reads.",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: collect every variable whose address feeds a sync/atomic
	// call, the first such site (for the diagnostic), and the exact
	// operand nodes (exempt from pass 2).
	atomicVars := make(map[*types.Var]token.Pos)
	exempt := make(map[ast.Expr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := resolveCallee(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !isAtomicOpName(fn.Name()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on atomic.Int64 etc. are always safe
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			operand := ast.Unparen(addr.X)
			if v := addressedVar(info, operand); v != nil {
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = call.Pos()
				}
				exempt[operand] = true
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: every other use of those variables must be exempt.
	litKeys := compositeLitKeys(pass.Files)
	var finds []Diagnostic // gathered locally to keep file order stable regardless of walk order
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var v *types.Var
			var at ast.Expr
			switch n := n.(type) {
			case *ast.SelectorExpr:
				at = n
				v = addressedVar(info, n)
			case *ast.Ident:
				at = n
				if obj, ok := info.Uses[n].(*types.Var); ok && !obj.IsField() {
					v = obj
				}
			default:
				return true
			}
			first, tracked := atomicVars[v]
			if !tracked || exempt[at] || litKeys[at] {
				return true
			}
			finds = append(finds, Diagnostic{
				Pos: pass.Fset.Position(at.Pos()),
				Message: "non-atomic access to " + v.Name() +
					", which is accessed with sync/atomic at " + relPos(pass.Fset.Position(first)) +
					": use sync/atomic (or migrate to atomic." + suggestType(v.Type()) + ")",
			})
			// Don't descend further: x in x.f names the struct, not
			// the field, and reporting both would double-count.
			return false
		})
	}
	sort.Slice(finds, func(i, j int) bool {
		a, b := finds[i].Pos, finds[j].Pos
		return a.Filename < b.Filename || (a.Filename == b.Filename && a.Offset < b.Offset)
	})
	for _, d := range finds {
		pass.reportAt(d.Pos, d.Message)
	}
	return nil
}

// addressedVar resolves a selector to the field it selects, or a qualified
// package-level variable. Returns nil for methods and non-var selections.
func addressedVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v // pkg.Var
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isAtomicOpName matches the sync/atomic package-level operation families.
func isAtomicOpName(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// compositeLitKeys marks the key expressions of keyed composite literals:
// S{count: 0} names the field without accessing shared memory.
func compositeLitKeys(files []*ast.File) map[ast.Expr]bool {
	keys := make(map[ast.Expr]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					keys[kv.Key] = true
				}
			}
			return true
		})
	}
	return keys
}

// suggestType picks the atomic wrapper type matching t, for the fix hint.
func suggestType(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64, types.Int:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64, types.Uint, types.Uintptr:
			return "Uint64"
		case types.Bool:
			return "Bool"
		}
	}
	return "Value"
}
