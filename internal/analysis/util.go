package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// resolveCallee returns the *types.Func a call expression statically
// resolves to: a package function, a method (through any embedding), or an
// interface method. Calls through function-typed variables, builtins, and
// type conversions return nil.
func resolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// No Selection entry: a package-qualified call (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeKey renders a resolved callee as "pkgpath.Func" or
// "pkgpath.Type.Method" (pointer receivers and interface methods
// included), the form used by lockio's blocklist.
func calleeKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return fn.Name()
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return "?." + fn.Name()
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// recvIsInterface reports whether fn is an interface method.
func recvIsInterface(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isPkgFunc reports whether fn is the package-level function path.name.
func isPkgFunc(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == path && fn.Name() == name
}

// chanType returns the channel type of t, or nil if t is not a channel.
func chanType(t types.Type) *types.Chan {
	if t == nil {
		return nil
	}
	ch, _ := t.Underlying().(*types.Chan)
	return ch
}

// relPos shortens a position to "file.go:line" for use inside messages.
func relPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}
