package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CancelClass enforces the error-classification invariant from the PR 4
// Finish-misclassification bug: whether an execution failed, was cancelled,
// or timed out must be decided from the error the operation returned, via
// errors.Is — never by identity-comparing against the context sentinel
// errors (wrapped errors make == lie) and never by re-reading ctx.Err()
// (the context may have been cancelled after an unrelated operator failure,
// which is exactly how Failed queries were once counted Cancelled).
//
// Flagged forms:
//
//	err == context.Canceled            (also !=, and DeadlineExceeded)
//	switch err { case context.Canceled: ... }
//	switch ctx.Err() { ... }
//	errors.Is(ctx.Err(), ...)          (re-reading instead of classifying)
//
// ctx.Err() != nil as a pure liveness check is fine and not flagged.
var CancelClass = &Analyzer{
	Name: "cancelclass",
	Doc: "classify cancellation with errors.Is(err, context.Canceled), never == or a re-read of ctx.Err()\n\n" +
		"Identity comparison misclassifies wrapped errors, and ctx.Err() answers \"is the context dead\",\n" +
		"not \"why did this operation fail\". Motivated by Finish counting operator failures under\n" +
		"cancel-on-error as Cancelled instead of Failed.",
	Run: runCancelClass,
}

func runCancelClass(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if name := ctxSentinelName(info, n.X); name != "" {
					pass.Reportf(n.Pos(), "error compared with %s against context.%s: use errors.Is(err, context.%s)", n.Op, name, name)
				} else if name := ctxSentinelName(info, n.Y); name != "" {
					pass.Reportf(n.Pos(), "error compared with %s against context.%s: use errors.Is(err, context.%s)", n.Op, name, name)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isCtxErrCall(info, n.Tag) {
					pass.Reportf(n.Tag.Pos(), "switch on ctx.Err() classifies the context's state, not the operation's error: use errors.Is on the returned error")
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if name := ctxSentinelName(info, v); name != "" {
							pass.Reportf(v.Pos(), "case context.%s compares errors by identity: use errors.Is(err, context.%s)", name, name)
						}
					}
				}
			case *ast.CallExpr:
				fn := resolveCallee(info, n)
				if isPkgFunc(fn, "errors", "Is") && len(n.Args) > 0 && isCtxErrCall(info, n.Args[0]) {
					pass.Reportf(n.Args[0].Pos(), "errors.Is on a re-read of ctx.Err(): classify the error the operation returned, not the context's current state")
				}
			}
			return true
		})
	}
	return nil
}

// ctxSentinelName returns "Canceled" or "DeadlineExceeded" if e resolves to
// that context sentinel error variable, else "".
func ctxSentinelName(info *types.Info, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "context" {
		return ""
	}
	if v.Name() == "Canceled" || v.Name() == "DeadlineExceeded" {
		return v.Name()
	}
	return ""
}

// isCtxErrCall reports whether e is a call of (context.Context).Err.
func isCtxErrCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := resolveCallee(info, call)
	if fn == nil || fn.Name() != "Err" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isContextType(sig.Recv().Type())
}
