package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one fully type-checked unit of analysis. When test loading is
// enabled the "package" for X is go's test variant "X [X.test]" — the same
// files plus the in-package _test.go files — so invariants that extend into
// tests (atomicfield) see every access.
type Package struct {
	Path      string // import path as reported by go list (variant suffix stripped)
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
	TestFiles map[*ast.File]bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	ForTest    string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns under dir (a directory
// inside the target module). It shells out to `go list -export` so every
// dependency — including the standard library — is resolved from compiled
// export data in the local build cache; no network, no GOPATH, no
// golang.org/x/tools. With tests true, in-package test variants replace
// their base package and external _test packages are loaded too.
func Load(dir string, tests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Pass 1: which import paths did the patterns actually match?
	// (`-deps` below adds the whole dependency closure; only pattern
	// matches are analyzed.)
	targets := make(map[string]bool)
	roots, err := goList(dir, append([]string{"-e"}, patterns...))
	if err != nil {
		return nil, err
	}
	for _, p := range roots {
		targets[p.ImportPath] = true
	}

	// Pass 2: the closure with export data. -test synthesizes the
	// variant and _test packages and compiles export data for their
	// dependency closure too.
	args := []string{"-e", "-export", "-deps"}
	if tests {
		args = append(args, "-test")
	}
	pkgs, err := goList(dir, append(args, patterns...))
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// Pick the units to analyze. For each target X: the variant
	// "X [X.test]" supersedes X when present; "X_test [X.test]"
	// rides along; the synthesized test main "X.test" never runs
	// (its source lives in the build cache, not the repo).
	hasVariant := make(map[string]bool)
	if tests {
		for _, p := range pkgs {
			if p.ForTest != "" && !strings.HasSuffix(p.ImportPath, ".test") &&
				strings.TrimSuffix(p.Name, "_test") == p.Name {
				hasVariant[p.ForTest] = true
			}
		}
	}
	var selected []*listPkg
	for _, p := range pkgs {
		if p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		switch {
		case p.ForTest != "" && strings.HasSuffix(p.Name, "_test"):
			if !targets[p.ForTest] {
				continue
			}
		case p.ForTest != "":
			if !targets[p.ForTest] {
				continue
			}
		default:
			if !targets[p.ImportPath] || hasVariant[p.ImportPath] {
				continue
			}
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		selected = append(selected, p)
	}

	fset := token.NewFileSet()
	var out []*Package
	for _, p := range selected {
		pkg, err := check(fset, p, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check parses and type-checks one package against export data. Each
// package gets a fresh importer: the gc importer caches packages by import
// path, and a test variant shares its base package's path, so a shared
// cache could hand the base export data to a unit that needs the variant.
func check(fset *token.FileSet, lp *listPkg, exports map[string]string) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	testFiles := make(map[*ast.File]bool, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		testFiles[f] = strings.HasSuffix(name, "_test.go")
	}

	lookup := func(ipath string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[ipath]; ok {
			ipath = mapped
		}
		exp, ok := exports[ipath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", ipath)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	path := lp.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i] // "X [X.test]" → X
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TestFiles: testFiles,
	}, nil
}

// goList runs `go list -json=<fields>` with the given extra args in dir and
// decodes the JSON stream.
func goList(dir string, args []string) ([]*listPkg, error) {
	fields := "-json=ImportPath,Name,ForTest,Dir,Export,GoFiles,ImportMap,Standard,Incomplete,Error"
	cmd := exec.Command("go", append([]string{"list", fields}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
