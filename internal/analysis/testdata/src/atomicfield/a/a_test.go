// Positive file: _test.go sources are NOT exempt from atomicfield — a
// test's plain read of an atomically-updated field is the same data race,
// just one the race detector only sees when an interleaving happens.
package a

func testBadRead(c *counter) int64 {
	return c.n // want `non-atomic access to n`
}
