// Fixture: the atomicfield invariant — a variable or field touched via
// sync/atomic anywhere must be accessed atomically everywhere (tests
// included; see a_test.go).
package a

import "sync/atomic"

type counter struct {
	n     int64
	other int64
	safe  atomic.Int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

// Positive: a plain read of an atomically-updated field races.
func (c *counter) badRead() int64 {
	return c.n // want `non-atomic access to n`
}

// Positive: a plain write races too.
func (c *counter) badWrite() {
	c.n = 0 // want `non-atomic access to n`
}

// Negative: atomic access is the invariant.
func (c *counter) goodLoad() int64 {
	return atomic.LoadInt64(&c.n)
}

// Negative: a sibling field never touched atomically is unconstrained.
func (c *counter) goodOther() int64 {
	c.other++
	return c.other
}

// Negative: the atomic wrapper types make violations unrepresentable.
func (c *counter) goodTyped() int64 {
	c.safe.Add(1)
	return c.safe.Load()
}

// Negative: keyed composite literals initialize before the value is
// shared — the documented safe idiom.
func newCounter() *counter {
	return &counter{n: 0}
}

// Negative: an audited exception, suppressed by the allowlist directive.
func (c *counter) goodAllowlisted() int64 {
	//dbs3lint:ignore atomicfield fixture: read after all writers joined
	return c.n
}

var hits int64

func incGlobal() {
	atomic.AddInt64(&hits, 1)
}

// Positive: package-level variables are convicted the same way.
func badGlobal() int64 {
	return hits // want `non-atomic access to hits`
}
