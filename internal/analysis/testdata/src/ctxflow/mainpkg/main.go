// Fixture: package main may mint root contexts (a binary's main is where
// lifecycles begin) — but a ctx-bearing function still may not sever.
package main

import "context"

func main() {
	run(context.Background()) // negative: roots are minted at main
}

func run(ctx context.Context) {
	use(context.Background()) // want `inside a function that receives a context\.Context`
	use(ctx)
}

func use(context.Context) {}
