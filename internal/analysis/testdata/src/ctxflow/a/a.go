// Fixture: the ctxflow invariant — no context.Background()/TODO() where a
// caller's context is (or should be) available. Package a is library code,
// so even ctx-less functions may not mint roots.
package a

import "context"

func sink(context.Context) {}

// Positive: a ctx-bearing function severing the cancellation chain.
func badSever(ctx context.Context) {
	sink(context.Background()) // want `inside a function that receives a context\.Context`
}

// Positive: context.TODO is the same severance.
func badTODO(ctx context.Context) {
	sink(context.TODO()) // want `inside a function that receives a context\.Context`
}

// Positive: a function literal inherits the enclosing function's ctx.
func badNestedLit(ctx context.Context) func() {
	return func() {
		sink(context.Background()) // want `inside a function that receives a context\.Context`
	}
}

// Positive: library code with no ctx parameter must be handed one.
func badLibraryRoot() {
	sink(context.Background()) // want `in library code`
}

// Negative: threading the caller's context is the invariant.
func goodThreaded(ctx context.Context) {
	sink(ctx)
}

// Negative: deriving from the caller's context is fine.
func goodDerived(ctx context.Context) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	sink(c)
}

// Negative: a documented API shim, suppressed by the allowlist directive.
func goodShim() {
	//dbs3lint:ignore ctxflow fixture: deliberate ctx-less convenience wrapper
	sink(context.Background())
}
