// Negative file: _test.go sources are roots — tests mint contexts freely,
// so nothing here may be reported even though the same shapes are
// positives in a.go.
package a

import "context"

func helperNoCtx() {
	sink(context.Background())
}

func helperWithCtx(ctx context.Context) {
	sink(context.Background())
}
