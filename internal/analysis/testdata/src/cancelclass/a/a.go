// Fixture: the cancelclass invariant — classify cancellation with
// errors.Is on the operation's error, never identity comparison against
// the context sentinels or a re-read of ctx.Err().
package a

import (
	"context"
	"errors"
)

// Positive: the PR 4 misclassification shape.
func badEq(err error) bool {
	return err == context.Canceled // want `use errors\.Is\(err, context\.Canceled\)`
}

// Positive: order and operator don't matter.
func badNeq(err error) bool {
	return context.DeadlineExceeded != err // want `use errors\.Is\(err, context\.DeadlineExceeded\)`
}

// Positive: switching on ctx.Err() classifies the context's state, not
// the operation's outcome.
func badSwitchCtxErr(ctx context.Context) string {
	switch ctx.Err() { // want `switch on ctx\.Err\(\)`
	case context.Canceled:
		return "cancelled"
	default:
		return "other"
	}
}

// Positive: a case clause is an identity comparison in disguise.
func badCase(err error) string {
	switch err {
	case context.Canceled: // want `case context\.Canceled compares errors by identity`
		return "cancelled"
	case nil:
		return "ok"
	}
	return "failed"
}

// Positive: errors.Is applied to a re-read of ctx.Err() still classifies
// the wrong thing.
func badReRead(ctx context.Context, err error) bool {
	return errors.Is(ctx.Err(), context.Canceled) // want `re-read of ctx\.Err\(\)`
}

// Negative: the invariant itself.
func goodErrorsIs(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Negative: ctx.Err() != nil as a pure liveness check is fine.
func goodLiveness(ctx context.Context) bool {
	return ctx.Err() != nil
}

// Negative: identity comparison against non-context sentinels is outside
// this analyzer's scope (io.EOF et al. are documented == sentinels).
var errSentinel = errors.New("sentinel")

func goodOtherSentinel(err error) bool {
	return err == errSentinel
}

// Negative: an audited exception, suppressed by the allowlist directive.
func goodAllowlisted(err error) bool {
	//dbs3lint:ignore cancelclass fixture: audited identity comparison
	return err == context.Canceled
}
