// Fixture: the lockio invariant — no blocking operation while a
// sync.Mutex/RWMutex is held. Positives carry want comments; everything
// else must stay silent.
package a

import (
	"os"
	"sync"
	"time"
)

type pool struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	src  *os.File
}

type source interface {
	Read(p []byte) (int, error)
}

// The acceptance-criteria pattern: a mutex held across os.File.Read — the
// PR 8 BufferPool.Get bug verbatim.
func (p *pool) badFileRead(buf []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.src.Read(buf) // want `reads from a file while mutex "p\.mu" is held`
}

func (p *pool) badSleep() {
	p.mu.Lock()
	time.Sleep(time.Millisecond) // want `sleeps while mutex "p\.mu" is held`
	p.mu.Unlock()
}

func (p *pool) badChanOps(ch chan int) {
	p.mu.Lock()
	ch <- 1 // want `sends on a channel while mutex "p\.mu" is held`
	<-ch    // want `receives from a channel while mutex "p\.mu" is held`
	p.mu.Unlock()
}

func (p *pool) badSelect(ch chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want `blocks in select while mutex "p\.mu" is held`
	case <-ch:
	default:
	}
}

func (p *pool) badIfaceRead(s source, buf []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s.Read(buf) // want `calls interface method Read \(potential I/O\) while mutex "p\.mu" is held`
}

func (p *pool) badRangeChan(ch chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for range ch { // want `receives from a channel while mutex "p\.mu" is held`
	}
}

func (p *pool) badRLock(buf []byte) {
	p.rw.RLock()
	defer p.rw.RUnlock()
	p.src.Read(buf) // want `reads from a file while mutex "p\.rw" is held`
}

func (p *pool) badWaitGroup(wg *sync.WaitGroup) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wg.Wait() // want `waits for a WaitGroup while mutex "p\.mu" is held`
}

// Negative: the blocking call happens after the unlock.
func (p *pool) goodAfterUnlock(buf []byte) {
	p.mu.Lock()
	n := len(buf)
	p.mu.Unlock()
	_ = n
	p.src.Read(buf)
}

// Negative: Cond.Wait releases the mutex while asleep — it is the
// sanctioned way to sleep at a lock.
func (p *pool) goodCondWait() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cond.Wait()
}

// Negative: a lock taken and released inside a branch does not leak into
// the code after it.
func (p *pool) goodBranchScoped(b bool, buf []byte) {
	if b {
		p.mu.Lock()
		p.mu.Unlock()
	}
	p.src.Read(buf)
}

// Negative: a goroutine body launched under the lock runs outside the
// critical section.
func (p *pool) goodGoroutineBody(ch chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		ch <- 1
	}()
}

// Negative: an audited exception, suppressed by the allowlist directive.
func (p *pool) goodAllowlisted() {
	p.mu.Lock()
	defer p.mu.Unlock()
	//dbs3lint:ignore lockio fixture: audited site, backing file is an in-memory pipe
	p.src.Sync()
}

// Negative: non-blocking work under the lock is the normal case.
func (p *pool) goodPlainWork(vals []int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	sum := 0
	for _, v := range vals {
		sum += v
	}
	return sum
}
