package analysis

import (
	"os/exec"
	"strings"
	"testing"
)

// TestModuleIsLintClean is the keep-it-clean gate: the full module —
// tests included — must produce zero dbs3lint diagnostics. A finding here
// means either fix the code or add an audited //dbs3lint:ignore with a
// reason; this test is what CI's lint job leans on.
func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	root := strings.TrimSpace(string(out))
	pkgs, err := Load(root, true, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}
