package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockIO enforces the no-blocking-under-mutex invariant: while a
// sync.Mutex or sync.RWMutex is held, a function must not perform
// operations with unbounded latency — file or network I/O, channel sends
// and receives, select, time.Sleep, WaitGroup.Wait. A blocked lock holder
// convoys every other user of that lock; the historical instance is PR 8's
// BufferPool.Get, which held the pool mutex across a page read from the
// backing source, so resident-page *hits* stalled behind one miss's disk
// I/O.
//
// (*sync.Cond).Wait is deliberately allowed: it releases the mutex while
// asleep, and is the sanctioned way to sleep at a lock — the bounded
// queues are built on it.
//
// The analysis is per-function and flow-approximate: a lock is "held" from
// a mu.Lock()/RLock() statement until a matching mu.Unlock()/RUnlock() on
// the same receiver expression in the same or an enclosing block (a
// deferred unlock holds to function end). Branch bodies are analyzed with
// a copy of the held set, so a conditional lock cannot leak into the code
// after the branch. Function literals are independent functions: their
// bodies start lock-free, and launching one (go/defer) is not itself
// blocking. Audited exceptions carry //dbs3lint:ignore lockio <reason>.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc: "no blocking I/O, channel operation, select, or sleep while a sync mutex is held\n\n" +
		"A lock holder that blocks convoys every other goroutine needing the lock. Motivated by\n" +
		"BufferPool.Get holding the pool mutex across source I/O, which serialized cache hits\n" +
		"behind a miss's disk read. Cond.Wait is allowed (it releases the mutex).",
	Run: runLockIO,
}

// blockingCalls maps calleeKey renderings to a short reason. Concrete
// types only; interface methods are matched by name in blockingIfaceMethod.
var blockingCalls = map[string]string{
	"time.Sleep": "sleeps",

	"os.File.Read":        "reads from a file",
	"os.File.ReadAt":      "reads from a file",
	"os.File.ReadFrom":    "reads from a file",
	"os.File.ReadDir":     "reads a directory",
	"os.File.Write":       "writes to a file",
	"os.File.WriteAt":     "writes to a file",
	"os.File.WriteString": "writes to a file",
	"os.File.Sync":        "syncs a file",
	"os.ReadFile":         "reads a file",
	"os.WriteFile":        "writes a file",

	"io.Copy":       "copies a stream",
	"io.CopyN":      "copies a stream",
	"io.CopyBuffer": "copies a stream",
	"io.ReadAll":    "reads a stream",
	"io.ReadFull":   "reads a stream",
	"io.ReadAtLeast": "reads a stream",
	"io.WriteString": "writes a stream",

	"bufio.Reader.Read":       "reads a buffered stream",
	"bufio.Reader.ReadByte":   "reads a buffered stream",
	"bufio.Reader.ReadBytes":  "reads a buffered stream",
	"bufio.Reader.ReadLine":   "reads a buffered stream",
	"bufio.Reader.ReadRune":   "reads a buffered stream",
	"bufio.Reader.ReadString": "reads a buffered stream",
	"bufio.Reader.Peek":       "reads a buffered stream",
	"bufio.Writer.Write":       "writes a buffered stream",
	"bufio.Writer.WriteString": "writes a buffered stream",
	"bufio.Writer.Flush":       "flushes a buffered stream",
	"bufio.Writer.ReadFrom":    "copies into a buffered stream",
	"bufio.Scanner.Scan":       "reads a buffered stream",

	"net.Dial":            "dials the network",
	"net.DialTimeout":     "dials the network",
	"net.Dialer.Dial":     "dials the network",
	"net.Listener.Accept": "waits for a connection",

	"net/http.Get":             "performs an HTTP request",
	"net/http.Post":            "performs an HTTP request",
	"net/http.PostForm":        "performs an HTTP request",
	"net/http.Head":            "performs an HTTP request",
	"net/http.Client.Do":       "performs an HTTP request",
	"net/http.Client.Get":      "performs an HTTP request",
	"net/http.Client.Post":     "performs an HTTP request",
	"net/http.Client.PostForm": "performs an HTTP request",
	"net/http.Client.Head":     "performs an HTTP request",

	"os/exec.Cmd.Run":            "waits for a subprocess",
	"os/exec.Cmd.Wait":           "waits for a subprocess",
	"os/exec.Cmd.Output":         "waits for a subprocess",
	"os/exec.Cmd.CombinedOutput": "waits for a subprocess",

	"sync.WaitGroup.Wait": "waits for a WaitGroup",
}

// blockingIfaceMethods: calling any interface method with one of these
// names is treated as potential I/O — the concrete implementation is
// unknowable statically, and in this codebase Read/Write-shaped interface
// methods are I/O by convention (io.Reader, net.Conn, the storage page
// sources). This is exactly the shape of the BufferPool bug.
var blockingIfaceMethods = map[string]bool{
	"Read": true, "ReadAt": true, "ReadFrom": true,
	"Write": true, "WriteAt": true, "WriteTo": true,
	"Flush": true, "Sync": true,
}

func runLockIO(pass *Pass) error {
	l := &lockio{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					l.walkStmts(n.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				l.walkStmts(n.Body.List, map[string]token.Pos{})
			}
			return true // nested FuncLits get their own visit
		})
	}
	return nil
}

type lockio struct {
	pass *Pass
}

// walkStmts runs the held-lock state machine over one statement list.
// held maps the rendered receiver expression ("p.mu") to its Lock site.
func (l *lockio) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		l.walkStmt(stmt, held)
	}
}

func (l *lockio) walkStmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if key, kind := l.mutexEvent(s.X); kind == lockEvt {
			held[key] = s.Pos()
			return
		} else if kind == unlockEvt {
			delete(held, key)
			return
		}
		l.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held for the remainder;
		// other deferred calls run at return, outside this pass's
		// scope. Argument expressions evaluate now, though.
		if _, kind := l.mutexEvent(s.Call); kind == unlockEvt {
			return
		}
		for _, arg := range s.Call.Args {
			l.scanExpr(arg, held)
		}
	case *ast.GoStmt:
		// The launch itself never blocks; the goroutine body starts
		// lock-free (handled by the FuncLit visit). Arguments
		// evaluate synchronously.
		for _, arg := range s.Call.Args {
			l.scanExpr(arg, held)
		}
	case *ast.BlockStmt:
		l.walkStmts(s.List, copyHeld(held))
	case *ast.IfStmt:
		if s.Init != nil {
			l.walkStmt(s.Init, held)
		}
		l.scanExpr(s.Cond, held)
		l.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			l.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			l.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			l.scanExpr(s.Cond, held)
		}
		inner := copyHeld(held)
		l.walkStmts(s.Body.List, inner)
		if s.Post != nil {
			l.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		if ch := chanType(l.typeOf(s.X)); ch != nil && len(held) > 0 {
			l.report(s.X.Pos(), "receives from a channel", held)
		}
		l.scanExpr(s.X, held)
		l.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			l.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			l.scanExpr(s.Tag, held)
		}
		for _, cs := range s.Body.List {
			if cc, ok := cs.(*ast.CaseClause); ok {
				for _, v := range cc.List {
					l.scanExpr(v, held)
				}
				l.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			l.walkStmt(s.Init, held)
		}
		for _, cs := range s.Body.List {
			if cc, ok := cs.(*ast.CaseClause); ok {
				l.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 {
			l.report(s.Pos(), "blocks in select", held)
		}
		for _, cs := range s.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok {
				l.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			l.report(s.Arrow, "sends on a channel", held)
		}
		l.scanExpr(s.Chan, held)
		l.scanExpr(s.Value, held)
	case *ast.LabeledStmt:
		l.walkStmt(s.Stmt, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			l.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			l.scanExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			l.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						l.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		l.scanExpr(s.X, held)
	}
}

// scanExpr reports blocking operations inside one expression while any
// lock is held. Function literals are skipped: their bodies do not run
// here.
func (l *lockio) scanExpr(e ast.Expr, held map[string]token.Pos) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				l.report(n.Pos(), "receives from a channel", held)
			}
		case *ast.CallExpr:
			if reason := l.blockingCall(n); reason != "" {
				l.report(n.Pos(), reason, held)
			}
		}
		return true
	})
}

// blockingCall classifies a call as blocking, returning a reason or "".
func (l *lockio) blockingCall(call *ast.CallExpr) string {
	fn := resolveCallee(l.pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	key := calleeKey(fn)
	if reason, ok := blockingCalls[key]; ok {
		return reason
	}
	if recvIsInterface(fn) && blockingIfaceMethods[fn.Name()] {
		return "calls interface method " + fn.Name() + " (potential I/O)"
	}
	return ""
}

type mutexEvtKind int

const (
	noEvt mutexEvtKind = iota
	lockEvt
	unlockEvt
)

// mutexEvent classifies an expression as a sync.Mutex/RWMutex lock or
// unlock call, keyed by the rendered receiver.
func (l *lockio) mutexEvent(e ast.Expr) (string, mutexEvtKind) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", noEvt
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", noEvt
	}
	fn := resolveCallee(l.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", noEvt
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", noEvt
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", noEvt
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, lockEvt
	case "Unlock", "RUnlock":
		return key, unlockEvt
	}
	return "", noEvt
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (l *lockio) typeOf(e ast.Expr) types.Type {
	if tv, ok := l.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (l *lockio) report(pos token.Pos, what string, held map[string]token.Pos) {
	// Name one held lock deterministically (the lexically smallest key).
	var key string
	for k := range held {
		if key == "" || k < key {
			key = k
		}
	}
	l.pass.Reportf(pos, "%s while mutex %q is held (locked at %s)",
		what, key, relPos(l.pass.Fset.Position(held[key])))
}
