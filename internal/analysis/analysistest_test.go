package analysis

// The fixture harness: an analysistest-shaped runner for this repo's
// stdlib-only framework. Each fixture directory under testdata/src/<name>/
// is one package; `// want "regexp"` comments mark expected diagnostics on
// their own line, every other line must stay silent, and unmatched
// expectations or extra diagnostics fail the test.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// fixtureStdlib is the closed set of imports fixtures may use. The
// harness materializes their export data once per test process.
var fixtureStdlib = []string{"context", "errors", "io", "os", "sync", "sync/atomic", "time"}

var (
	stdOnce    sync.Once
	stdExports map[string]string
	stdErr     error
)

func stdlibExports(t *testing.T) map[string]string {
	t.Helper()
	stdOnce.Do(func() {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export,Standard"}, fixtureStdlib...)
		out, err := exec.Command("go", args...).Output()
		if err != nil {
			stdErr = fmt.Errorf("go list (stdlib export data): %v", err)
			return
		}
		stdExports = make(map[string]string)
		dec := json.NewDecoder(strings.NewReader(string(out)))
		for {
			var p struct {
				ImportPath string
				Export     string
			}
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				stdErr = err
				return
			}
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	})
	if stdErr != nil {
		t.Fatal(stdErr)
	}
	return stdExports
}

// loadFixture parses and type-checks every .go file in dir as one package.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	exports := stdlibExports(t)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	testFiles := make(map[*ast.File]bool)
	var names []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		testFiles[f] = strings.HasSuffix(name, "_test.go")
	}
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("fixture imports %q, which is outside fixtureStdlib", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", dir, err)
	}
	return &Package{
		Path:      tpkg.Path(),
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TestFiles: testFiles,
	}
}

// wantRe extracts the quoted patterns of a `// want "p1" "p2"` comment.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	re  *regexp.Regexp
	hit bool
}

// collectWants maps file:line → expected-diagnostic patterns.
func collectWants(t *testing.T, pkg *Package) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

// runFixture runs one analyzer over one fixture package and matches the
// diagnostics (after //dbs3lint:ignore filtering) against want comments.
func runFixture(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	pkg := loadFixture(t, filepath.Join("testdata", "src", rel))
	wants := collectWants(t, pkg)
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

func TestLockIOFixture(t *testing.T)       { runFixture(t, LockIO, filepath.Join("lockio", "a")) }
func TestCtxFlowFixture(t *testing.T)      { runFixture(t, CtxFlow, filepath.Join("ctxflow", "a")) }
func TestCtxFlowMainPackage(t *testing.T)  { runFixture(t, CtxFlow, filepath.Join("ctxflow", "mainpkg")) }
func TestCancelClassFixture(t *testing.T)  { runFixture(t, CancelClass, filepath.Join("cancelclass", "a")) }
func TestAtomicFieldFixture(t *testing.T)  { runFixture(t, AtomicField, filepath.Join("atomicfield", "a")) }

// TestLockIOScratchSeed is the acceptance check in executable form:
// seeding the known-bad pattern — a mutex held across os.File.Read — into
// a scratch package outside testdata must be reported by lockio.
func TestLockIOScratchSeed(t *testing.T) {
	dir := t.TempDir()
	src := `package scratch

import (
	"os"
	"sync"
)

type cache struct {
	mu sync.Mutex
	f  *os.File
}

func (c *cache) get(buf []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.f.Read(buf)
}
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := loadFixture(t, dir)
	diags, err := Run([]*Package{pkg}, []*Analyzer{LockIO})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("lockio diagnostics = %d, want 1: %v", len(diags), diags)
	}
	if want := `reads from a file while mutex "c.mu" is held`; !strings.Contains(diags[0].Message, want) {
		t.Fatalf("diagnostic %q does not contain %q", diags[0].Message, want)
	}
}
