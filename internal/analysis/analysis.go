// Package analysis is dbs3's repo-specific static-analysis suite: a small,
// dependency-free skeleton of golang.org/x/tools/go/analysis (the container
// this repo builds in has no module proxy, so the real framework cannot be
// vendored) plus the analyzers that encode the engine's concurrency
// invariants. The API deliberately mirrors go/analysis — Analyzer, Pass,
// Diagnostic, Reportf — so the suite can migrate onto x/tools without
// touching any analyzer body once the dependency is available.
//
// Analyzers run over fully type-checked packages (see Load) and report
// diagnostics that the drivers (cmd/dbs3lint, the analysistest harness, the
// module smoke test) filter through //dbs3lint:ignore directives before
// surfacing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker. The shape matches
// x/tools/go/analysis.Analyzer minus facts and requires (every dbs3
// analyzer is package-local and independent).
type Analyzer struct {
	// Name is the analyzer's identifier: the word used on the command
	// line, in diagnostics, and in //dbs3lint:ignore directives.
	Name string
	// Doc is the one-paragraph description shown by `dbs3lint -help`.
	// By convention the first line names the invariant and the rest
	// cites the historical bug that motivated it.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer, mirroring
// x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// TestFiles reports, per *ast.File, whether the file is an
	// _test.go file. Analyzers whose invariant only binds production
	// code (ctxflow's no-root-contexts rule) consult this; analyzers
	// about data races (atomicfield) deliberately do not.
	TestFiles map[*ast.File]bool

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportAt(p.Fset.Position(pos), fmt.Sprintf(format, args...))
}

// reportAt records a diagnostic at an already-resolved position.
func (p *Pass) reportAt(pos token.Position, msg string) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  msg,
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics in file/line order, after dropping findings suppressed by a
// //dbs3lint:ignore directive. Malformed directives are themselves
// reported (analyzer name "dbs3lint"), so a typo cannot silently disable
// suppression — or silently keep it enabled.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	ignores := newIgnoreIndex()
	for _, pkg := range pkgs {
		diags = append(diags, ignores.collect(pkg)...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				TestFiles: pkg.TestFiles,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !ignores.suppresses(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}
