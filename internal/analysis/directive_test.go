package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeScratch materializes one source file as a package and loads it.
func writeScratch(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return loadFixture(t, dir)
}

// A directive without a reason is itself a finding — and one that cannot
// be suppressed, so audits can't be waved through silently.
func TestMalformedDirectiveReported(t *testing.T) {
	pkg := writeScratch(t, `package scratch

import "context"

func bare(ctx context.Context) {
	//dbs3lint:ignore ctxflow
	use(context.Background())
}

func use(context.Context) {}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{CtxFlow})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawCtxflow bool
	for _, d := range diags {
		switch d.Analyzer {
		case "dbs3lint":
			sawMalformed = sawMalformed || strings.Contains(d.Message, "reason")
		case "ctxflow":
			sawCtxflow = true
		}
	}
	if !sawMalformed {
		t.Errorf("missing malformed-directive diagnostic in %v", diags)
	}
	if !sawCtxflow {
		t.Errorf("malformed directive must not suppress the underlying finding, got %v", diags)
	}
}

// A directive naming analyzer X must not suppress analyzer Y on that line.
func TestDirectiveScopedToNamedAnalyzer(t *testing.T) {
	pkg := writeScratch(t, `package scratch

import "context"

func scoped(ctx context.Context) {
	//dbs3lint:ignore lockio wrong analyzer named on purpose
	use(context.Background())
}

func use(context.Context) {}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{CtxFlow})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "ctxflow" {
		t.Fatalf("diagnostics = %v, want exactly one ctxflow finding", diags)
	}
}

// A well-formed directive suppresses the same line and the next line, and
// supports comma-separated analyzer lists.
func TestDirectiveSuppression(t *testing.T) {
	pkg := writeScratch(t, `package scratch

import "context"

func shim(ctx context.Context) {
	//dbs3lint:ignore ctxflow,lockio fixture: deliberate API shim
	use(context.Background())
	use(context.Background()) // this one is past the directive window
}

func use(context.Context) {}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{CtxFlow})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one (only the line past the window)", diags)
	}
	if got := diags[0].Pos.Line; got != 8 {
		t.Errorf("surviving finding on line %d, want 8", got)
	}
}
