package analysis

import (
	"strings"
)

// The allowlist directive. A comment of the form
//
//	//dbs3lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses matching diagnostics on the comment's own line, or — when the
// comment stands alone — on the next source line. The reason is mandatory:
// an audited exception with no recorded justification is indistinguishable
// from a stale one, so a bare directive is reported as its own finding
// instead of being honored.
const ignorePrefix = "//dbs3lint:ignore"

// ignoreIndex maps filename → line → set of analyzer names suppressed on
// that line. "*" suppresses every analyzer.
type ignoreIndex struct {
	byLine map[string]map[int]map[string]bool
}

func newIgnoreIndex() *ignoreIndex {
	return &ignoreIndex{byLine: make(map[string]map[int]map[string]bool)}
}

// collect scans one package's comments for directives, recording the
// well-formed ones and returning a diagnostic for each malformed one.
func (ix *ignoreIndex) collect(pkg *Package) []Diagnostic {
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := c.Text[len(ignorePrefix):]
				names, reason := splitDirective(rest)
				if len(names) == 0 || reason == "" {
					malformed = append(malformed, Diagnostic{
						Analyzer: "dbs3lint",
						Pos:      pkg.Fset.Position(c.Pos()),
						Message:  "malformed directive: want //dbs3lint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				// A directive on its own line covers the line below;
				// a trailing directive covers its own line. Register
				// both — a diagnostic on the comment's own line can
				// only come from code sharing the line.
				ix.add(pos.Filename, line, names)
				ix.add(pos.Filename, line+1, names)
			}
		}
	}
	return malformed
}

func (ix *ignoreIndex) add(file string, line int, names []string) {
	lines := ix.byLine[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		ix.byLine[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	for _, n := range names {
		set[n] = true
	}
}

func (ix *ignoreIndex) suppresses(d Diagnostic) bool {
	if d.Analyzer == "dbs3lint" {
		return false // malformed-directive findings cannot be ignored away
	}
	set := ix.byLine[d.Pos.Filename][d.Pos.Line]
	return set["*"] || set[d.Analyzer]
}

// splitDirective parses "<names> <reason>" where names is a comma-separated
// analyzer list. Returns nil names if the list is empty or contains blanks.
func splitDirective(rest string) (names []string, reason string) {
	rest = strings.TrimSpace(rest)
	namesPart, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(reason)
	if namesPart == "" {
		return nil, reason
	}
	for _, n := range strings.Split(namesPart, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, reason
		}
		names = append(names, n)
	}
	return names, reason
}
