package lera

import (
	"encoding/json"
	"fmt"

	"dbs3/internal/relation"
)

// Plan graphs serialize to JSON so compiled plans can be stored, shipped to
// workers, or diffed in tests (the EDS project compiled Lera-par for a
// shared-nothing machine; a wire form is part of being a compiler target).
// Predicates are polymorphic and use a tagged-union encoding; only unbound
// plans round-trip (binding is repeated against the local catalog).

type jsonValue struct {
	Int *int64  `json:"int,omitempty"`
	Str *string `json:"str,omitempty"`
}

func encodeValue(v relation.Value) jsonValue {
	if v.Kind() == relation.TInt {
		i := v.AsInt()
		return jsonValue{Int: &i}
	}
	s := v.AsString()
	return jsonValue{Str: &s}
}

func (jv jsonValue) decode() (relation.Value, error) {
	switch {
	case jv.Int != nil && jv.Str == nil:
		return relation.Int(*jv.Int), nil
	case jv.Str != nil && jv.Int == nil:
		return relation.Str(*jv.Str), nil
	default:
		return relation.Value{}, fmt.Errorf("lera: value needs exactly one of int/str")
	}
}

type jsonPred struct {
	Type  string      `json:"type"`
	Col   string      `json:"col,omitempty"`
	Left  string      `json:"left,omitempty"`
	Right string      `json:"right,omitempty"`
	Op    string      `json:"op,omitempty"`
	Val   *jsonValue  `json:"val,omitempty"`
	Index *int        `json:"index,omitempty"`
	Terms []*jsonPred `json:"terms,omitempty"`
	Term  *jsonPred   `json:"term,omitempty"`
}

var opNames = map[CmpOp]string{EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">="}

func opFromName(s string) (CmpOp, error) {
	for op, name := range opNames {
		if name == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("lera: unknown comparison operator %q", s)
}

func encodePred(p Predicate) (*jsonPred, error) {
	switch t := p.(type) {
	case nil:
		return nil, nil
	case True:
		return &jsonPred{Type: "true"}, nil
	case ColConst:
		v := encodeValue(t.Val)
		return &jsonPred{Type: "colconst", Col: t.Col, Op: opNames[t.Op], Val: &v}, nil
	case ColCol:
		return &jsonPred{Type: "colcol", Left: t.Left, Op: opNames[t.Op], Right: t.Right}, nil
	case ColParam:
		idx := t.Index
		return &jsonPred{Type: "param", Col: t.Col, Op: opNames[t.Op], Index: &idx}, nil
	case And:
		out := &jsonPred{Type: "and"}
		for _, term := range t.Terms {
			e, err := encodePred(term)
			if err != nil {
				return nil, err
			}
			out.Terms = append(out.Terms, e)
		}
		return out, nil
	case Or:
		out := &jsonPred{Type: "or"}
		for _, term := range t.Terms {
			e, err := encodePred(term)
			if err != nil {
				return nil, err
			}
			out.Terms = append(out.Terms, e)
		}
		return out, nil
	case Not:
		e, err := encodePred(t.Term)
		if err != nil {
			return nil, err
		}
		return &jsonPred{Type: "not", Term: e}, nil
	default:
		return nil, fmt.Errorf("lera: cannot serialize predicate %T (bound predicates do not round-trip)", p)
	}
}

func (jp *jsonPred) decode() (Predicate, error) {
	if jp == nil {
		return nil, nil
	}
	switch jp.Type {
	case "true":
		return True{}, nil
	case "colconst":
		op, err := opFromName(jp.Op)
		if err != nil {
			return nil, err
		}
		if jp.Val == nil {
			return nil, fmt.Errorf("lera: colconst predicate without value")
		}
		v, err := jp.Val.decode()
		if err != nil {
			return nil, err
		}
		return ColConst{Col: jp.Col, Op: op, Val: v}, nil
	case "colcol":
		op, err := opFromName(jp.Op)
		if err != nil {
			return nil, err
		}
		return ColCol{Left: jp.Left, Op: op, Right: jp.Right}, nil
	case "param":
		op, err := opFromName(jp.Op)
		if err != nil {
			return nil, err
		}
		if jp.Index == nil || *jp.Index < 0 {
			return nil, fmt.Errorf("lera: param predicate needs a non-negative index")
		}
		return ColParam{Col: jp.Col, Op: op, Index: *jp.Index}, nil
	case "and", "or":
		terms := make([]Predicate, len(jp.Terms))
		for i, t := range jp.Terms {
			p, err := t.decode()
			if err != nil {
				return nil, err
			}
			terms[i] = p
		}
		if jp.Type == "and" {
			return And{Terms: terms}, nil
		}
		return Or{Terms: terms}, nil
	case "not":
		p, err := jp.Term.decode()
		if err != nil {
			return nil, err
		}
		return Not{Term: p}, nil
	default:
		return nil, fmt.Errorf("lera: unknown predicate type %q", jp.Type)
	}
}

type jsonNode struct {
	Name           string    `json:"name"`
	Kind           string    `json:"kind"`
	Rel            string    `json:"rel,omitempty"`
	BuildRel       string    `json:"buildRel,omitempty"`
	ProbeRel       string    `json:"probeRel,omitempty"`
	BuildKey       []string  `json:"buildKey,omitempty"`
	ProbeKey       []string  `json:"probeKey,omitempty"`
	Algo           string    `json:"algo,omitempty"`
	Pred           *jsonPred `json:"pred,omitempty"`
	Cols           []string  `json:"cols,omitempty"`
	GroupBy        []string  `json:"groupBy,omitempty"`
	Agg            string    `json:"agg,omitempty"`
	AggCol         string    `json:"aggCol,omitempty"`
	As             string    `json:"as,omitempty"`
	DegreeOverride int       `json:"degreeOverride,omitempty"`
}

type jsonEdge struct {
	From      int      `json:"from"`
	To        int      `json:"to"`
	Route     string   `json:"route"`
	RouteCols []string `json:"routeCols,omitempty"`
}

type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

var kindNames = map[OpKind]string{
	OpFilter: "filter", OpJoin: "join", OpTransmit: "transmit",
	OpStore: "store", OpMap: "map", OpAggregate: "aggregate",
}

var algoNames = map[JoinAlgo]string{NestedLoop: "nested-loop", HashJoin: "hash", TempIndex: "temp-index"}

var aggNames = map[AggKind]string{AggCount: "COUNT", AggSum: "SUM", AggMin: "MIN", AggMax: "MAX"}

func reverse[K comparable, V comparable](m map[K]V, want V) (K, bool) {
	for k, v := range m {
		if v == want {
			return k, true
		}
	}
	var zero K
	return zero, false
}

// MarshalGraph serializes an (unbound) plan graph to JSON.
func MarshalGraph(g *Graph) ([]byte, error) {
	out := jsonGraph{Nodes: make([]jsonNode, len(g.Nodes)), Edges: make([]jsonEdge, len(g.Edges))}
	for i, n := range g.Nodes {
		pred, err := encodePred(n.Pred)
		if err != nil {
			return nil, fmt.Errorf("lera: node %s: %w", n.Name, err)
		}
		jn := jsonNode{
			Name: n.Name, Kind: kindNames[n.Kind],
			Rel: n.Rel, BuildRel: n.BuildRel, ProbeRel: n.ProbeRel,
			BuildKey: n.BuildKey, ProbeKey: n.ProbeKey,
			Pred: pred, Cols: n.Cols, GroupBy: n.GroupBy, AggCol: n.AggCol,
			As: n.As, DegreeOverride: n.DegreeOverride,
		}
		if n.Kind == OpJoin {
			jn.Algo = algoNames[n.Algo]
		}
		if n.Kind == OpAggregate {
			jn.Agg = aggNames[n.Agg]
		}
		out.Nodes[i] = jn
	}
	for i, e := range g.Edges {
		route := "same"
		if e.Route == RouteHash {
			route = "hash"
		}
		out.Edges[i] = jsonEdge{From: e.From, To: e.To, Route: route, RouteCols: e.RouteCols}
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalGraph parses a plan graph from JSON. The result must still be
// bound against a resolver before execution.
func UnmarshalGraph(data []byte) (*Graph, error) {
	var in jsonGraph
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("lera: %w", err)
	}
	g := NewGraph()
	for _, jn := range in.Nodes {
		kind, ok := reverse(kindNames, jn.Kind)
		if !ok {
			return nil, fmt.Errorf("lera: unknown node kind %q", jn.Kind)
		}
		pred, err := jn.Pred.decode()
		if err != nil {
			return nil, err
		}
		n := &Node{
			Name: jn.Name, Kind: kind,
			Rel: jn.Rel, BuildRel: jn.BuildRel, ProbeRel: jn.ProbeRel,
			BuildKey: jn.BuildKey, ProbeKey: jn.ProbeKey,
			Pred: pred, Cols: jn.Cols, GroupBy: jn.GroupBy, AggCol: jn.AggCol,
			As: jn.As, DegreeOverride: jn.DegreeOverride,
		}
		if kind == OpJoin {
			algo, ok := reverse(algoNames, jn.Algo)
			if !ok {
				return nil, fmt.Errorf("lera: unknown join algorithm %q", jn.Algo)
			}
			n.Algo = algo
		}
		if kind == OpAggregate {
			agg, ok := reverse(aggNames, jn.Agg)
			if !ok {
				return nil, fmt.Errorf("lera: unknown aggregate %q", jn.Agg)
			}
			n.Agg = agg
		}
		g.add(n)
	}
	for _, je := range in.Edges {
		if je.From < 0 || je.From >= len(g.Nodes) || je.To < 0 || je.To >= len(g.Nodes) {
			return nil, fmt.Errorf("lera: edge %d->%d out of range", je.From, je.To)
		}
		switch je.Route {
		case "same":
			g.ConnectSame(g.Nodes[je.From], g.Nodes[je.To])
		case "hash":
			g.ConnectHash(g.Nodes[je.From], g.Nodes[je.To], je.RouteCols)
		default:
			return nil, fmt.Errorf("lera: unknown route kind %q", je.Route)
		}
	}
	return g, nil
}
