package lera

import (
	"fmt"

	"dbs3/internal/partition"
	"dbs3/internal/relation"
)

// BoundNode is a plan node after validation: schemas inferred, predicates
// and keys resolved to column positions, degree of parallelism of the
// extended view fixed.
type BoundNode struct {
	Node *Node
	// Degree is the node's instance count in the extended view.
	Degree int
	// InSchema is the schema of pipelined input tuples (nil for purely
	// triggered nodes whose inputs are bound relations).
	InSchema *relation.Schema
	// OutSchema is the schema of emitted tuples (nil for store nodes, which
	// terminate the flow).
	OutSchema *relation.Schema
	// Pred is the bound filter predicate (filter nodes).
	Pred Predicate
	// Rel/Build/Probe carry the metadata of bound relations.
	Rel, Build, Probe RelInfo
	// BuildKeyIdx/ProbeKeyIdx are join key positions. ProbeKeyIdx indexes
	// either ProbeRel's schema (triggered join) or InSchema (pipelined).
	BuildKeyIdx, ProbeKeyIdx []int
	// Router routes redistributed tuples into this join node's instances:
	// the build relation's own partitioning function, so probe tuples land
	// with their matching build fragment. Nil for non-join nodes.
	Router partition.Func
	// ColsIdx are projection positions (map nodes).
	ColsIdx []int
	// GroupIdx/AggIdx are aggregate positions; AggIdx is -1 for COUNT.
	GroupIdx []int
	AggIdx   int
}

// BoundEdge is a data edge after validation, with routing columns resolved
// against the producer's output schema.
type BoundEdge struct {
	Edge         *Edge
	RouteColsIdx []int
}

// Plan is a validated, executable Lera-par plan.
type Plan struct {
	Graph *Graph
	Nodes []*BoundNode
	Edges []*BoundEdge
	// Order is a topological order of node ids.
	Order []int
	// Chains lists the plan's subqueries (pipeline chains): the weakly
	// connected components of the data-edge graph, each ordered
	// topologically. Chains[i] must run before Chains[j] when j reads a
	// relation that a store node of i materializes (§3, Figure 5).
	Chains [][]int
	// Outputs maps store-output relation names to the producing node id.
	Outputs map[string]int
	// params is the `?` placeholder count, computed once at Bind (see
	// NumParams).
	params int
}

// Bind validates the plan against base-relation metadata and returns the
// executable form. All schema inference, key resolution, degree checks and
// chain decomposition happen here; execution assumes a valid plan.
func Bind(g *Graph, res Resolver) (*Plan, error) {
	if len(g.Nodes) == 0 {
		return nil, fmt.Errorf("lera: empty plan")
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	chains, err := chainOrder(g)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Graph:   g,
		Nodes:   make([]*BoundNode, len(g.Nodes)),
		Edges:   make([]*BoundEdge, len(g.Edges)),
		Order:   order,
		Chains:  chains,
		Outputs: make(map[string]int),
	}
	// Intermediate outputs become visible to later chains.
	overlay := make(map[string]RelInfo)
	lookup := func(name string) (RelInfo, error) {
		if ri, ok := overlay[name]; ok {
			return ri, nil
		}
		return res.RelInfo(name)
	}
	for _, chain := range chains {
		for _, id := range chain {
			bn, err := bindNode(g, p, g.Nodes[id], lookup)
			if err != nil {
				return nil, err
			}
			p.Nodes[id] = bn
			if bn.Node.Kind == OpStore {
				if _, dup := overlay[bn.Node.As]; dup {
					return nil, fmt.Errorf("lera: two store nodes write %q", bn.Node.As)
				}
				if _, err := res.RelInfo(bn.Node.As); err == nil {
					return nil, fmt.Errorf("lera: store output %q shadows a base relation", bn.Node.As)
				}
				overlay[bn.Node.As] = RelInfo{Schema: bn.InSchema, Degree: bn.Degree}
				p.Outputs[bn.Node.As] = id
			}
		}
	}
	// The placeholder count is fixed once every predicate is bound; cache it
	// so the per-execution BindParams arity check costs nothing.
	p.params = countParams(p)
	// Bind edge routing columns against producer output schemas.
	for i, e := range g.Edges {
		be := &BoundEdge{Edge: e}
		if e.Route == RouteHash {
			from := p.Nodes[e.From]
			if from.OutSchema == nil {
				return nil, fmt.Errorf("lera: edge from store node %s", g.Nodes[e.From].Name)
			}
			be.RouteColsIdx = make([]int, len(e.RouteCols))
			for j, c := range e.RouteCols {
				idx, ok := from.OutSchema.Index(c)
				if !ok {
					return nil, fmt.Errorf("lera: routing column %q not produced by %s %s", c, g.Nodes[e.From].Name, from.OutSchema)
				}
				be.RouteColsIdx[j] = idx
			}
		}
		p.Edges[i] = be
	}
	return p, nil
}

func bindNode(g *Graph, p *Plan, n *Node, lookup func(string) (RelInfo, error)) (*BoundNode, error) {
	bn := &BoundNode{Node: n, AggIdx: -1}
	in := g.In(n.ID)
	// Resolve the pipelined input schema: all producers must agree.
	for _, e := range in {
		from := p.Nodes[e.From]
		if from == nil {
			return nil, fmt.Errorf("lera: node %s consumed before produced (chain ordering bug)", g.Nodes[e.From].Name)
		}
		if from.OutSchema == nil {
			return nil, fmt.Errorf("lera: node %s consumes from store node %s", n.Name, from.Node.Name)
		}
		if bn.InSchema == nil {
			bn.InSchema = from.OutSchema
		} else if !bn.InSchema.Equal(from.OutSchema) {
			return nil, fmt.Errorf("lera: node %s has producers with different schemas", n.Name)
		}
	}

	switch n.Kind {
	case OpFilter, OpTransmit:
		if n.Rel != "" {
			if len(in) > 0 {
				return nil, fmt.Errorf("lera: %s %s is bound to %q but also has pipelined input", n.Kind, n.Name, n.Rel)
			}
			ri, err := lookup(n.Rel)
			if err != nil {
				return nil, fmt.Errorf("lera: %s %s: %w", n.Kind, n.Name, err)
			}
			bn.Rel = ri
			bn.Degree = ri.Degree
			bn.OutSchema = ri.Schema
		} else {
			if len(in) == 0 {
				return nil, fmt.Errorf("lera: %s %s has neither a bound relation nor pipelined input", n.Kind, n.Name)
			}
			bn.OutSchema = bn.InSchema
			bn.Degree = inheritDegree(g, p, n, in)
		}
		if n.Kind == OpFilter {
			pred := n.Pred
			if pred == nil {
				pred = True{}
			}
			bound, err := pred.Bind(bn.OutSchema)
			if err != nil {
				return nil, fmt.Errorf("lera: filter %s: %w", n.Name, err)
			}
			bn.Pred = bound
		}

	case OpJoin:
		if n.BuildRel == "" {
			return nil, fmt.Errorf("lera: join %s has no build relation", n.Name)
		}
		build, err := lookup(n.BuildRel)
		if err != nil {
			return nil, fmt.Errorf("lera: join %s: %w", n.Name, err)
		}
		bn.Build = build
		bn.Degree = build.Degree
		if len(n.BuildKey) == 0 || len(n.BuildKey) != len(n.ProbeKey) {
			return nil, fmt.Errorf("lera: join %s needs matching build/probe keys, got %v and %v", n.Name, n.BuildKey, n.ProbeKey)
		}
		bn.BuildKeyIdx = make([]int, len(n.BuildKey))
		for i, c := range n.BuildKey {
			idx, ok := build.Schema.Index(c)
			if !ok {
				return nil, fmt.Errorf("lera: join %s: build key %q not in %s", n.Name, c, build.Schema)
			}
			bn.BuildKeyIdx[i] = idx
		}
		var probeSchema *relation.Schema
		var probeName string
		if n.ProbeRel != "" {
			// Triggered join: both operands bound and co-partitioned.
			if len(in) > 0 {
				return nil, fmt.Errorf("lera: join %s has both a bound probe relation and pipelined input", n.Name)
			}
			probe, err := lookup(n.ProbeRel)
			if err != nil {
				return nil, fmt.Errorf("lera: join %s: %w", n.Name, err)
			}
			bn.Probe = probe
			if probe.Degree != build.Degree {
				return nil, fmt.Errorf("lera: join %s: build degree %d != probe degree %d (co-partitioning required)", n.Name, build.Degree, probe.Degree)
			}
			if err := checkCoPartitioning(n, build, probe); err != nil {
				return nil, err
			}
			probeSchema = probe.Schema
			probeName = n.ProbeRel
		} else {
			// Pipelined join: probe tuples arrive by data activation and
			// must be routed with the build relation's partitioning
			// function so they land on the co-located instance.
			if len(in) == 0 {
				return nil, fmt.Errorf("lera: join %s has no probe input", n.Name)
			}
			probeSchema = bn.InSchema
			probeName = "probe"
			router, err := buildRouter(n, build)
			if err != nil {
				return nil, err
			}
			bn.Router = router
			for _, e := range in {
				if e.Route != RouteHash {
					return nil, fmt.Errorf("lera: join %s: pipelined probe edges must redistribute (RouteHash)", n.Name)
				}
				if len(e.RouteCols) == 0 {
					e.RouteCols = append([]string(nil), n.ProbeKey...)
				} else if !sameStrings(e.RouteCols, n.ProbeKey) {
					return nil, fmt.Errorf("lera: join %s: probe edge routes on %v, join expects %v", n.Name, e.RouteCols, n.ProbeKey)
				}
			}
		}
		bn.ProbeKeyIdx = make([]int, len(n.ProbeKey))
		for i, c := range n.ProbeKey {
			idx, ok := probeSchema.Index(c)
			if !ok {
				return nil, fmt.Errorf("lera: join %s: probe key %q not in %s", n.Name, c, probeSchema)
			}
			bn.ProbeKeyIdx[i] = idx
			bt := build.Schema.Column(bn.BuildKeyIdx[i]).Type
			pt := probeSchema.Column(idx).Type
			if bt != pt {
				return nil, fmt.Errorf("lera: join %s: key %q is %s on build side, %s on probe side", n.Name, c, bt, pt)
			}
		}
		bn.OutSchema = build.Schema.Concat(probeSchema, n.BuildRel+".", probeName+".")

	case OpMap:
		if len(in) == 0 {
			return nil, fmt.Errorf("lera: map %s has no input", n.Name)
		}
		if len(n.Cols) == 0 {
			return nil, fmt.Errorf("lera: map %s projects no columns", n.Name)
		}
		bn.Degree = inheritDegree(g, p, n, in)
		cols := make([]relation.Column, len(n.Cols))
		bn.ColsIdx = make([]int, len(n.Cols))
		for i, c := range n.Cols {
			idx, ok := bn.InSchema.Index(c)
			if !ok {
				return nil, fmt.Errorf("lera: map %s: column %q not in %s", n.Name, c, bn.InSchema)
			}
			bn.ColsIdx[i] = idx
			cols[i] = bn.InSchema.Column(idx)
		}
		s, err := relation.NewSchema(cols...)
		if err != nil {
			return nil, fmt.Errorf("lera: map %s: %w", n.Name, err)
		}
		bn.OutSchema = s

	case OpAggregate:
		if len(in) == 0 {
			return nil, fmt.Errorf("lera: aggregate %s has no input", n.Name)
		}
		bn.Degree = inheritDegree(g, p, n, in)
		outCols := make([]relation.Column, 0, len(n.GroupBy)+1)
		bn.GroupIdx = make([]int, len(n.GroupBy))
		for i, c := range n.GroupBy {
			idx, ok := bn.InSchema.Index(c)
			if !ok {
				return nil, fmt.Errorf("lera: aggregate %s: group column %q not in %s", n.Name, c, bn.InSchema)
			}
			bn.GroupIdx[i] = idx
			outCols = append(outCols, bn.InSchema.Column(idx))
		}
		aggName := n.Agg.String()
		if n.Agg == AggCount {
			if n.AggCol != "" {
				return nil, fmt.Errorf("lera: aggregate %s: COUNT takes no column", n.Name)
			}
			outCols = append(outCols, relation.Column{Name: "count", Type: relation.TInt})
		} else {
			idx, ok := bn.InSchema.Index(n.AggCol)
			if !ok {
				return nil, fmt.Errorf("lera: aggregate %s: column %q not in %s", n.Name, n.AggCol, bn.InSchema)
			}
			if n.Agg == AggSum && bn.InSchema.Column(idx).Type != relation.TInt {
				return nil, fmt.Errorf("lera: aggregate %s: SUM needs an integer column", n.Name)
			}
			bn.AggIdx = idx
			typ := bn.InSchema.Column(idx).Type
			outCols = append(outCols, relation.Column{Name: aggName + "_" + n.AggCol, Type: typ})
		}
		s, err := relation.NewSchema(outCols...)
		if err != nil {
			return nil, fmt.Errorf("lera: aggregate %s: %w", n.Name, err)
		}
		bn.OutSchema = s
		// Redistributed group-by: hash-routed edges must route on the group
		// key so each group lands on exactly one instance.
		for _, e := range in {
			if e.Route == RouteHash && !sameStrings(e.RouteCols, n.GroupBy) {
				return nil, fmt.Errorf("lera: aggregate %s: input routes on %v, groups on %v", n.Name, e.RouteCols, n.GroupBy)
			}
		}

	case OpStore:
		if len(in) == 0 {
			return nil, fmt.Errorf("lera: store %s has no input", n.Name)
		}
		if n.As == "" {
			return nil, fmt.Errorf("lera: store %s has no output name", n.Name)
		}
		if len(g.Out(n.ID)) > 0 {
			return nil, fmt.Errorf("lera: store %s has outgoing edges; stores terminate a chain", n.Name)
		}
		bn.Degree = inheritDegree(g, p, n, in)
		bn.OutSchema = nil

	default:
		return nil, fmt.Errorf("lera: node %s has unknown kind %v", n.Name, n.Kind)
	}

	if bn.Degree <= 0 {
		return nil, fmt.Errorf("lera: node %s resolved to degree %d", n.Name, bn.Degree)
	}
	// RouteSame edges require degree agreement producer/consumer.
	for _, e := range in {
		if e.Route == RouteSame {
			from := p.Nodes[e.From]
			if from.Degree != bn.Degree {
				return nil, fmt.Errorf("lera: RouteSame edge %s->%s with degrees %d and %d", g.Nodes[e.From].Name, n.Name, from.Degree, bn.Degree)
			}
		}
	}
	return bn, nil
}

// inheritDegree resolves a pipelined node's degree: the explicit override,
// or the first producer's degree.
func inheritDegree(g *Graph, p *Plan, n *Node, in []*Edge) int {
	if n.DegreeOverride > 0 {
		return n.DegreeOverride
	}
	if len(in) > 0 {
		return p.Nodes[in[0].From].Degree
	}
	return 0
}

// checkCoPartitioning verifies that a triggered join's operands actually
// co-locate equal keys: both partitioned on the join key with compatible
// functions. Missing partition functions are accepted when the declared
// partitioning keys match the join keys (the caller vouches for placement).
func checkCoPartitioning(n *Node, build, probe RelInfo) error {
	// If either side declares a partitioning key, it must be the join key.
	if build.Part != nil && !sameStrings(build.Part.Key(), n.BuildKey) {
		return fmt.Errorf("lera: join %s: build relation partitioned on %v, join key is %v", n.Name, build.Part.Key(), n.BuildKey)
	}
	if probe.Part != nil && !sameStrings(probe.Part.Key(), n.ProbeKey) {
		return fmt.Errorf("lera: join %s: probe relation partitioned on %v, join key is %v", n.Name, probe.Part.Key(), n.ProbeKey)
	}
	if build.Part != nil && probe.Part != nil && build.Part.Signature() != probe.Part.Signature() {
		return fmt.Errorf("lera: join %s: operands partitioned with incompatible functions %s and %s", n.Name, build.Part.Signature(), probe.Part.Signature())
	}
	return nil
}

// buildRouter returns the function routing probe tuples to a pipelined
// join's instances: the build relation's own partitioning function, or a
// default hash with the same degree when the metadata carries none.
func buildRouter(n *Node, build RelInfo) (partition.Func, error) {
	if build.Part != nil {
		if !sameStrings(build.Part.Key(), n.BuildKey) {
			return nil, fmt.Errorf("lera: join %s: build relation partitioned on %v, join key is %v", n.Name, build.Part.Key(), n.BuildKey)
		}
		return build.Part, nil
	}
	return partition.NewHash(build.Schema, n.BuildKey, build.Degree)
}

// chainOrder decomposes the plan into pipeline chains (weakly connected
// components of the data-edge graph) and orders them so that a chain reading
// a store output runs after the chain producing it.
func chainOrder(g *Graph) ([][]int, error) {
	// Union-find over data edges.
	parent := make([]int, len(g.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range g.Edges {
		union(e.From, e.To)
	}
	// Group nodes by component, preserving topological node order within.
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	members := make(map[int][]int)
	var roots []int
	for _, id := range topo {
		r := find(id)
		if _, seen := members[r]; !seen {
			roots = append(roots, r)
		}
		members[r] = append(members[r], id)
	}
	// Chain dependency edges: consumer chain depends on producer chain when
	// a node reads a relation stored by another chain.
	producer := make(map[string]int) // output name -> chain root
	for _, n := range g.Nodes {
		if n.Kind == OpStore {
			producer[n.As] = find(n.ID)
		}
	}
	deps := make(map[int]map[int]bool)
	for _, n := range g.Nodes {
		for _, rel := range []string{n.Rel, n.BuildRel, n.ProbeRel} {
			if rel == "" {
				continue
			}
			if src, ok := producer[rel]; ok {
				dst := find(n.ID)
				if src == dst {
					return nil, fmt.Errorf("lera: node %s reads %q materialized in its own chain", n.Name, rel)
				}
				if deps[dst] == nil {
					deps[dst] = make(map[int]bool)
				}
				deps[dst][src] = true
			}
		}
	}
	// Topologically order the chains.
	ordered := make([][]int, 0, len(roots))
	done := make(map[int]bool)
	var visit func(r int, stack map[int]bool) error
	visit = func(r int, stack map[int]bool) error {
		if done[r] {
			return nil
		}
		if stack[r] {
			return fmt.Errorf("lera: cyclic dependency between pipeline chains")
		}
		stack[r] = true
		for d := range deps[r] {
			if err := visit(d, stack); err != nil {
				return err
			}
		}
		delete(stack, r)
		done[r] = true
		ordered = append(ordered, members[r])
		return nil
	}
	for _, r := range roots {
		if err := visit(r, map[int]bool{}); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
