package lera

import (
	"testing"
	"testing/quick"

	"dbs3/internal/relation"
)

var exprSchema = relation.MustSchema(
	relation.Column{Name: "a", Type: relation.TInt},
	relation.Column{Name: "b", Type: relation.TInt},
	relation.Column{Name: "s", Type: relation.TString},
)

func bindOK(t *testing.T, p Predicate) Predicate {
	t.Helper()
	b, err := p.Bind(exprSchema)
	if err != nil {
		t.Fatalf("Bind(%s): %v", p, err)
	}
	return b
}

func TestColConstEval(t *testing.T) {
	tup := relation.NewTuple(relation.Int(5), relation.Int(10), relation.Str("x"))
	cases := []struct {
		p    Predicate
		want bool
	}{
		{ColConst{Col: "a", Op: EQ, Val: relation.Int(5)}, true},
		{ColConst{Col: "a", Op: NE, Val: relation.Int(5)}, false},
		{ColConst{Col: "a", Op: LT, Val: relation.Int(6)}, true},
		{ColConst{Col: "a", Op: LE, Val: relation.Int(5)}, true},
		{ColConst{Col: "a", Op: GT, Val: relation.Int(5)}, false},
		{ColConst{Col: "a", Op: GE, Val: relation.Int(5)}, true},
		{ColConst{Col: "s", Op: EQ, Val: relation.Str("x")}, true},
		{ColConst{Col: "s", Op: LT, Val: relation.Str("y")}, true},
	}
	for _, c := range cases {
		if got := bindOK(t, c.p).Eval(tup); got != c.want {
			t.Errorf("%s on %v = %v, want %v", c.p, tup, got, c.want)
		}
	}
}

func TestColColEval(t *testing.T) {
	lt := relation.NewTuple(relation.Int(1), relation.Int(2), relation.Str(""))
	eq := relation.NewTuple(relation.Int(3), relation.Int(3), relation.Str(""))
	p := bindOK(t, ColCol{Left: "a", Op: LT, Right: "b"})
	if !p.Eval(lt) || p.Eval(eq) {
		t.Error("ColCol LT wrong")
	}
	q := bindOK(t, ColCol{Left: "a", Op: EQ, Right: "b"})
	if q.Eval(lt) || !q.Eval(eq) {
		t.Error("ColCol EQ wrong")
	}
}

func TestPredicateBindErrors(t *testing.T) {
	cases := []Predicate{
		ColConst{Col: "absent", Op: EQ, Val: relation.Int(1)},
		ColConst{Col: "a", Op: EQ, Val: relation.Str("type mismatch")},
		ColCol{Left: "absent", Op: EQ, Right: "b"},
		ColCol{Left: "a", Op: EQ, Right: "absent"},
		ColCol{Left: "a", Op: EQ, Right: "s"},
		And{Terms: []Predicate{ColConst{Col: "absent", Op: EQ, Val: relation.Int(1)}}},
		Or{Terms: []Predicate{ColConst{Col: "absent", Op: EQ, Val: relation.Int(1)}}},
		Not{Term: ColConst{Col: "absent", Op: EQ, Val: relation.Int(1)}},
	}
	for _, p := range cases {
		if _, err := p.Bind(exprSchema); err == nil {
			t.Errorf("Bind(%s) should fail", p)
		}
	}
}

func TestUnboundEvalPanics(t *testing.T) {
	tup := relation.NewTuple(relation.Int(1), relation.Int(2), relation.Str(""))
	for _, p := range []Predicate{
		ColConst{Col: "a", Op: EQ, Val: relation.Int(1)},
		ColCol{Left: "a", Op: EQ, Right: "b"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Eval on unbound %s should panic", p)
				}
			}()
			p.Eval(tup)
		}()
	}
}

func TestCompoundPredicates(t *testing.T) {
	tup := relation.NewTuple(relation.Int(5), relation.Int(10), relation.Str("x"))
	isFive := ColConst{Col: "a", Op: EQ, Val: relation.Int(5)}
	isBig := ColConst{Col: "b", Op: GT, Val: relation.Int(100)}
	and := bindOK(t, And{Terms: []Predicate{isFive, isBig}})
	or := bindOK(t, Or{Terms: []Predicate{isFive, isBig}})
	not := bindOK(t, Not{Term: isBig})
	tr := bindOK(t, True{})
	if and.Eval(tup) {
		t.Error("AND should be false")
	}
	if !or.Eval(tup) {
		t.Error("OR should be true")
	}
	if !not.Eval(tup) {
		t.Error("NOT should be true")
	}
	if !tr.Eval(tup) {
		t.Error("TRUE should be true")
	}
	if (And{}).Eval(tup) != true {
		t.Error("empty AND is true")
	}
	if (Or{}).Eval(tup) != false {
		t.Error("empty OR is false")
	}
}

func TestPredicateStrings(t *testing.T) {
	cases := []struct {
		p    Predicate
		want string
	}{
		{True{}, "TRUE"},
		{ColConst{Col: "a", Op: LE, Val: relation.Int(3)}, "a <= 3"},
		{ColConst{Col: "s", Op: EQ, Val: relation.Str("v")}, "s = 'v'"},
		{ColCol{Left: "a", Op: NE, Right: "b"}, "a <> b"},
		{Not{Term: True{}}, "NOT TRUE"},
		{And{Terms: []Predicate{True{}, True{}}}, "(TRUE AND TRUE)"},
		{Or{Terms: []Predicate{True{}, True{}}}, "(TRUE OR TRUE)"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
	wants := []string{"=", "<>", "<", "<=", ">", ">="}
	for i, op := range ops {
		if op.String() != wants[i] {
			t.Errorf("op %d string = %q", i, op.String())
		}
	}
}

// Property: De Morgan — NOT(x AND y) == (NOT x) OR (NOT y) over random
// integer thresholds.
func TestDeMorganProperty(t *testing.T) {
	f := func(av, bv, ta, tb int64) bool {
		tup := relation.NewTuple(relation.Int(av), relation.Int(bv), relation.Str(""))
		x := ColConst{Col: "a", Op: LT, Val: relation.Int(ta)}
		y := ColConst{Col: "b", Op: GE, Val: relation.Int(tb)}
		lhs, err := (Not{Term: And{Terms: []Predicate{x, y}}}).Bind(exprSchema)
		if err != nil {
			return false
		}
		rhs, err := (Or{Terms: []Predicate{Not{Term: x}, Not{Term: y}}}).Bind(exprSchema)
		if err != nil {
			return false
		}
		return lhs.Eval(tup) == rhs.Eval(tup)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
