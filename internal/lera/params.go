package lera

import (
	"fmt"

	"dbs3/internal/relation"
)

// ColParam compares a named column with a `?` placeholder bound at execution
// time. Bind resolves the column position and records its type — the static
// half of the check — so one compiled plan can be re-bound against many
// argument vectors; Plan.BindParams performs the per-execution substitution,
// turning each ColParam into a bound ColConst without touching the compiler.
// A ColParam must never reach Eval: a plan still holding placeholders is not
// executable.
type ColParam struct {
	Col string
	Op  CmpOp
	// Index is the placeholder's zero-based position in the argument vector
	// (placeholders are numbered left to right in the statement).
	Index int

	bound bool
	idx   int
	typ   relation.Type
}

// Eval implements Predicate. Evaluating an unsubstituted placeholder is a
// plan-construction bug, not a data error.
func (p ColParam) Eval(relation.Tuple) bool {
	panic("lera: Eval on parameter predicate " + p.String() + " (missing BindParams)")
}

// Bind implements Predicate: it resolves the column and memorizes its type so
// substitution can type-check arguments without a schema in hand.
func (p ColParam) Bind(s *relation.Schema) (Predicate, error) {
	i, ok := s.Index(p.Col)
	if !ok {
		return nil, fmt.Errorf("lera: predicate column %q not in schema %s", p.Col, s)
	}
	p.bound, p.idx, p.typ = true, i, s.Column(i).Type
	return p, nil
}

// String implements Predicate.
func (p ColParam) String() string { return fmt.Sprintf("%s %s ?%d", p.Col, p.Op, p.Index+1) }

// NumParams returns the number of `?` placeholders the plan's predicates
// expect. It is cached at Bind time, so calling it per execution is free.
func (p *Plan) NumParams() int { return p.params }

// countParams walks every bound predicate for the placeholder count — max
// index + 1, so a plan built by hand with gaps still demands a full
// argument vector.
func countParams(p *Plan) int {
	n := 0
	for _, bn := range p.Nodes {
		if bn == nil || bn.Pred == nil {
			continue
		}
		walkParams(bn.Pred, func(cp ColParam) {
			if cp.Index+1 > n {
				n = cp.Index + 1
			}
		})
	}
	return n
}

// BindParams substitutes an argument vector into the plan's placeholder
// predicates, returning an executable plan. The receiver is not modified:
// nodes holding placeholders are shallow-copied with their predicate replaced,
// everything else — graph, edges, chain order, untouched nodes — is shared,
// so re-binding a cached plan is allocation-light. A plan without
// placeholders is returned as-is (args must then be empty).
func (p *Plan) BindParams(args []relation.Value) (*Plan, error) {
	want := p.NumParams()
	if len(args) != want {
		return nil, fmt.Errorf("lera: statement wants %d argument(s), got %d", want, len(args))
	}
	if want == 0 {
		return p, nil
	}
	nodes := make([]*BoundNode, len(p.Nodes))
	copy(nodes, p.Nodes)
	for i, bn := range p.Nodes {
		if bn == nil || bn.Pred == nil {
			continue
		}
		sub, changed, err := substituteParams(bn.Pred, args)
		if err != nil {
			return nil, err
		}
		if changed {
			nb := *bn
			nb.Pred = sub
			nodes[i] = &nb
		}
	}
	out := *p
	out.Nodes = nodes
	// Every placeholder is now a constant: the bound copy is executable and
	// demands no further arguments.
	out.params = 0
	return &out, nil
}

// walkParams visits every ColParam in a predicate tree.
func walkParams(p Predicate, visit func(ColParam)) {
	switch t := p.(type) {
	case ColParam:
		visit(t)
	case And:
		for _, q := range t.Terms {
			walkParams(q, visit)
		}
	case Or:
		for _, q := range t.Terms {
			walkParams(q, visit)
		}
	case Not:
		walkParams(t.Term, visit)
	}
}

// substituteParams rebuilds a predicate with every ColParam replaced by a
// bound ColConst carrying the argument value, type-checked against the column
// type Bind recorded.
func substituteParams(p Predicate, args []relation.Value) (Predicate, bool, error) {
	switch t := p.(type) {
	case ColParam:
		if !t.bound {
			return nil, false, fmt.Errorf("lera: BindParams on unbound parameter predicate %s", t)
		}
		if t.Index < 0 || t.Index >= len(args) {
			return nil, false, fmt.Errorf("lera: parameter %s out of range for %d argument(s)", t, len(args))
		}
		v := args[t.Index]
		if v.Kind() != t.typ {
			return nil, false, fmt.Errorf("lera: argument %d is %s, column %q wants %s", t.Index+1, v.Kind(), t.Col, t.typ)
		}
		return ColConst{Col: t.Col, Op: t.Op, Val: v, bound: true, idx: t.idx}, true, nil
	case And:
		return substituteTerms(t.Terms, args, func(terms []Predicate) Predicate { return And{Terms: terms} }, t)
	case Or:
		return substituteTerms(t.Terms, args, func(terms []Predicate) Predicate { return Or{Terms: terms} }, t)
	case Not:
		sub, changed, err := substituteParams(t.Term, args)
		if err != nil {
			return nil, false, err
		}
		if !changed {
			return t, false, nil
		}
		return Not{Term: sub}, true, nil
	default:
		return p, false, nil
	}
}

// substituteTerms substitutes into a term list, sharing the original slice
// (and predicate) when no term held a placeholder.
func substituteTerms(terms []Predicate, args []relation.Value, rebuild func([]Predicate) Predicate, orig Predicate) (Predicate, bool, error) {
	out := make([]Predicate, len(terms))
	changed := false
	for i, q := range terms {
		sub, ch, err := substituteParams(q, args)
		if err != nil {
			return nil, false, err
		}
		out[i] = sub
		changed = changed || ch
	}
	if !changed {
		return orig, false, nil
	}
	return rebuild(out), true, nil
}
