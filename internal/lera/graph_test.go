package lera

import (
	"strings"
	"testing"

	"dbs3/internal/relation"
)

// idealJoinGraph builds the paper's IdealJoin plan shape (Figure 10): a
// triggered join of co-partitioned A and B, storing the result.
func idealJoinGraph() *Graph {
	g := NewGraph()
	j := g.JoinBound("join", "A", "B", []string{"unique2"}, []string{"unique2"}, NestedLoop)
	st := g.Store("store", "Res")
	g.ConnectSame(j, st)
	return g
}

// assocJoinGraph builds the paper's AssocJoin plan shape (Figure 11):
// transmit reads B and redistributes its tuples to a pipelined join against
// bound A.
func assocJoinGraph() *Graph {
	g := NewGraph()
	tr := g.Transmit("transmit", "B")
	j := g.JoinPipelined("join", "A", []string{"unique2"}, []string{"unique2"}, NestedLoop)
	st := g.Store("store", "Res")
	g.ConnectHash(tr, j, []string{"unique2"})
	g.ConnectSame(j, st)
	return g
}

func TestGraphBuilderIDsAndNames(t *testing.T) {
	g := NewGraph()
	f := g.Filter("", "A", nil)
	if f.ID != 0 || f.Name != "filter0" {
		t.Errorf("auto name/id = %q/%d", f.Name, f.ID)
	}
	j := g.JoinBound("myjoin", "A", "B", []string{"k"}, []string{"k"}, HashJoin)
	if j.ID != 1 || j.Name != "myjoin" {
		t.Errorf("id/name = %d/%q", j.ID, j.Name)
	}
}

func TestTriggeredDetection(t *testing.T) {
	g := assocJoinGraph()
	if !g.Triggered(0) {
		t.Error("transmit should be triggered (no data inputs)")
	}
	if g.Triggered(1) || g.Triggered(2) {
		t.Error("join and store are pipelined, not triggered")
	}
}

func TestInOutEdges(t *testing.T) {
	g := assocJoinGraph()
	if len(g.Out(0)) != 1 || g.Out(0)[0].To != 1 {
		t.Errorf("Out(0) = %v", g.Out(0))
	}
	if len(g.In(1)) != 1 || g.In(1)[0].From != 0 {
		t.Errorf("In(1) = %v", g.In(1))
	}
	if len(g.In(0)) != 0 {
		t.Error("transmit should have no inputs")
	}
}

func TestTopoOrder(t *testing.T) {
	g := assocJoinGraph()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] > pos[e.To] {
			t.Errorf("edge %d->%d violates order %v", e.From, e.To, order)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := NewGraph()
	a := g.TransmitPipelined("a")
	b := g.TransmitPipelined("b")
	g.ConnectSame(a, b)
	g.ConnectSame(b, a)
	if _, err := g.TopoOrder(); err == nil {
		t.Error("cycle accepted")
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{OpFilter, OpJoin, OpTransmit, OpStore, OpMap, OpAggregate}
	names := []string{"filter", "join", "transmit", "store", "map", "aggregate"}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Errorf("kind %d = %q", i, k.String())
		}
	}
	algos := []JoinAlgo{NestedLoop, HashJoin, TempIndex}
	anames := []string{"nested-loop", "hash", "temp-index"}
	for i, a := range algos {
		if a.String() != anames[i] {
			t.Errorf("algo %d = %q", i, a.String())
		}
	}
	aggs := []AggKind{AggCount, AggSum, AggMin, AggMax}
	gnames := []string{"COUNT", "SUM", "MIN", "MAX"}
	for i, a := range aggs {
		if a.String() != gnames[i] {
			t.Errorf("agg %d = %q", i, a.String())
		}
	}
}

func TestMapResolver(t *testing.T) {
	s := relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt})
	r := MapResolver{"A": {Schema: s, Degree: 4}}
	ri, err := r.RelInfo("A")
	if err != nil || ri.Degree != 4 {
		t.Errorf("RelInfo(A) = %+v, %v", ri, err)
	}
	if _, err := r.RelInfo("missing"); err == nil {
		t.Error("missing relation accepted")
	}
}

func TestDotOutput(t *testing.T) {
	g := assocJoinGraph()
	dot := g.Dot()
	for _, want := range []string{"digraph lera", "transmit", "join", "store", "hash(unique2)", "rel_A", "rel_B", "trigger ->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestDotSanitizesRelNames(t *testing.T) {
	g := NewGraph()
	f := g.Filter("f", "weird name-1", nil)
	st := g.Store("s", "out")
	g.ConnectSame(f, st)
	dot := g.Dot()
	if !strings.Contains(dot, "rel_weird_name_1") {
		t.Errorf("relation name not sanitized:\n%s", dot)
	}
}
