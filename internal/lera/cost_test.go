package lera

import (
	"testing"

	"dbs3/internal/partition"
	"dbs3/internal/relation"
)

// sizedResolver gives A and B real fragment sizes so cost estimates use true
// cardinalities.
func sizedResolver(t *testing.T, degree, aCard, bCard int) MapResolver {
	t.Helper()
	res := wiscResolver(t, degree)
	mk := func(total int) []int {
		s := make([]int, degree)
		for i := range s {
			s[i] = total / degree
		}
		return s
	}
	a := res["A"]
	a.FragSizes = mk(aCard)
	res["A"] = a
	b := res["B"]
	b.FragSizes = mk(bCard)
	res["B"] = b
	return res
}

func TestEstimateIdealJoinNestedLoop(t *testing.T) {
	res := sizedResolver(t, 10, 1000, 100)
	p, err := Bind(idealJoinGraph(), res)
	if err != nil {
		t.Fatal(err)
	}
	c := Estimate(p, DefaultCostModel())
	// Nested loop over 10 fragments: 10 * (100 * 10) = 10_000 pairs.
	if c.Node[0] != 10000 {
		t.Errorf("join cost = %v, want 10000", c.Node[0])
	}
	// Store cost = probe cardinality estimate (100 tuples).
	if c.Node[1] != 100 {
		t.Errorf("store cost = %v, want 100", c.Node[1])
	}
	if c.Total != c.Chain[0] {
		t.Errorf("total %v != single chain %v", c.Total, c.Chain[0])
	}
}

func TestEstimateHigherPartitioningCheapensNestedLoop(t *testing.T) {
	low, _ := Bind(idealJoinGraph(), sizedResolver(t, 10, 1000, 100))
	high, _ := Bind(idealJoinGraph(), sizedResolver(t, 100, 1000, 100))
	cl := Estimate(low, DefaultCostModel())
	ch := Estimate(high, DefaultCostModel())
	if ch.Node[0] >= cl.Node[0] {
		t.Errorf("nested loop with d=100 (%v) should be cheaper than d=10 (%v)", ch.Node[0], cl.Node[0])
	}
	// Exactly 10x cheaper: cost ~ |A||B|/d.
	if cl.Node[0]/ch.Node[0] != 10 {
		t.Errorf("ratio = %v, want 10", cl.Node[0]/ch.Node[0])
	}
}

func TestEstimateHashJoinIndependentOfPartitioning(t *testing.T) {
	g := NewGraph()
	g.JoinBound("j", "A", "B", []string{"unique2"}, []string{"unique2"}, HashJoin)
	low, _ := Bind(g, sizedResolver(t, 10, 1000, 100))
	g2 := NewGraph()
	g2.JoinBound("j", "A", "B", []string{"unique2"}, []string{"unique2"}, HashJoin)
	high, _ := Bind(g2, sizedResolver(t, 100, 1000, 100))
	cl := Estimate(low, DefaultCostModel())
	ch := Estimate(high, DefaultCostModel())
	if cl.Node[0] != ch.Node[0] {
		t.Errorf("hash join cost should not depend on d: %v vs %v", cl.Node[0], ch.Node[0])
	}
}

func TestEstimateAssocJoinChains(t *testing.T) {
	res := sizedResolver(t, 10, 1000, 100)
	p, err := Bind(assocJoinGraph(), res)
	if err != nil {
		t.Fatal(err)
	}
	c := Estimate(p, DefaultCostModel())
	// Transmit moves 100 tuples.
	if c.Node[0] != 100 {
		t.Errorf("transmit cost = %v", c.Node[0])
	}
	// Pipelined nested-loop join: (1000/10)*(100/10)*10 = 10000.
	if c.Node[1] != 10000 {
		t.Errorf("join cost = %v", c.Node[1])
	}
	for _, id := range []int{0, 1, 2} {
		if c.Node[id] <= 0 {
			t.Errorf("node %d has non-positive cost", id)
		}
	}
}

func TestEstimateFilterSelectivity(t *testing.T) {
	res := sizedResolver(t, 4, 1000, 100)
	g := NewGraph()
	f := g.Filter("f", "A", ColConst{Col: "two", Op: EQ, Val: relation.Int(0)})
	g.ConnectSame(f, g.Store("s", "out"))
	p, err := Bind(g, res)
	if err != nil {
		t.Fatal(err)
	}
	c := Estimate(p, DefaultCostModel())
	if c.OutCard[f.ID] != 500 {
		t.Errorf("filtered cardinality = %v, want 500 (default selectivity)", c.OutCard[f.ID])
	}
	// A TRUE filter passes everything.
	g2 := NewGraph()
	f2 := g2.Filter("f", "A", nil)
	g2.ConnectSame(f2, g2.Store("s", "out"))
	p2, _ := Bind(g2, res)
	c2 := Estimate(p2, DefaultCostModel())
	if c2.OutCard[f2.ID] != 1000 {
		t.Errorf("scan cardinality = %v, want 1000", c2.OutCard[f2.ID])
	}
}

func TestEstimateWithoutStatistics(t *testing.T) {
	// No FragSizes: estimator assumes nominal 1000 tuples per fragment.
	res := wiscResolver(t, 4)
	p, err := Bind(idealJoinGraph(), res)
	if err != nil {
		t.Fatal(err)
	}
	c := Estimate(p, DefaultCostModel())
	if c.Total <= 0 {
		t.Error("costs should be positive without statistics")
	}
}

func TestEstimateMapAggregate(t *testing.T) {
	g := NewGraph()
	f := g.Filter("f", "A", nil)
	m := g.Map("m", []string{"unique2"})
	a := g.Aggregate("agg", []string{"unique2"}, AggCount, "")
	g.ConnectSame(f, m)
	g.ConnectHash(m, a, []string{"unique2"})
	g.ConnectSame(a, g.Store("s", "out"))
	p, err := Bind(g, sizedResolver(t, 4, 1000, 100))
	if err != nil {
		t.Fatal(err)
	}
	c := Estimate(p, DefaultCostModel())
	if c.Node[m.ID] != 1000 {
		t.Errorf("map cost = %v", c.Node[m.ID])
	}
	if c.Node[a.ID] != 2000 {
		t.Errorf("agg cost = %v (AggTuple=2)", c.Node[a.ID])
	}
}

// partitionKeyCheck: the resolver must expose partition functions for the
// co-partitioning validation to be meaningful; make sure test helper does.
func TestSizedResolverHasPartitioning(t *testing.T) {
	res := sizedResolver(t, 4, 100, 10)
	ri, _ := res.RelInfo("A")
	if ri.Part == nil {
		t.Fatal("helper must set Part")
	}
	var _ partition.Func = ri.Part
}
