package lera

import (
	"strings"
	"testing"

	"dbs3/internal/relation"
)

func complexGraph() *Graph {
	g := NewGraph()
	f := g.Filter("f", "A", And{Terms: []Predicate{
		ColConst{Col: "unique1", Op: LT, Val: relation.Int(100)},
		Or{Terms: []Predicate{
			Not{Term: ColConst{Col: "stringu1", Op: EQ, Val: relation.Str("x")}},
			ColCol{Left: "unique1", Op: LE, Right: "unique2"},
			True{},
		}},
	}})
	s1 := g.Store("s1", "T1")
	g.ConnectSame(f, s1)
	tr := g.Transmit("t", "T1")
	j := g.JoinPipelined("j", "B", []string{"unique2"}, []string{"unique2"}, TempIndex)
	m := g.Map("m", []string{"unique2"})
	a := g.Aggregate("agg", []string{"unique2"}, AggSum, "unique2")
	s2 := g.Store("s2", "Res")
	g.ConnectHash(tr, j, []string{"unique2"})
	g.ConnectSame(j, m)
	g.ConnectHash(m, a, []string{"unique2"})
	g.ConnectSame(a, s2)
	return g
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := complexGraph()
	data, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGraph(data)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if len(back.Nodes) != len(g.Nodes) || len(back.Edges) != len(g.Edges) {
		t.Fatalf("shape changed: %d/%d nodes, %d/%d edges", len(back.Nodes), len(g.Nodes), len(back.Edges), len(g.Edges))
	}
	// Marshal again: byte-identical (canonical form).
	data2, err := MarshalGraph(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("round trip not canonical:\n%s\nvs\n%s", data, data2)
	}
	for i, n := range g.Nodes {
		b := back.Nodes[i]
		if n.Kind != b.Kind || n.Name != b.Name || n.Rel != b.Rel || n.As != b.As || n.Algo != b.Algo || n.Agg != b.Agg {
			t.Errorf("node %d differs: %+v vs %+v", i, n, b)
		}
		if (n.Pred == nil) != (b.Pred == nil) {
			t.Errorf("node %d predicate presence differs", i)
		}
		if n.Pred != nil && n.Pred.String() != b.Pred.String() {
			t.Errorf("node %d predicate %q -> %q", i, n.Pred.String(), b.Pred.String())
		}
	}
	for i, e := range g.Edges {
		b := back.Edges[i]
		if e.From != b.From || e.To != b.To || e.Route != b.Route {
			t.Errorf("edge %d differs", i)
		}
	}
}

func TestGraphJSONBindsIdentically(t *testing.T) {
	// A deserialized plan must bind and validate like the original.
	g := NewGraph()
	j := g.JoinBound("join", "A", "B", []string{"unique2"}, []string{"unique2"}, HashJoin)
	g.ConnectSame(j, g.Store("store", "Res"))
	data, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	res := wiscResolver(t, 8)
	p1, err := Bind(g, res)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Bind(back, res)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Nodes[0].Degree != p2.Nodes[0].Degree {
		t.Error("bound degrees differ")
	}
	if !p1.Nodes[0].OutSchema.Equal(p2.Nodes[0].OutSchema) {
		t.Error("bound schemas differ")
	}
}

func TestGraphJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"nodes":[{"name":"x","kind":"bogus"}]}`,
		`{"nodes":[{"name":"j","kind":"join","algo":"bogus"}]}`,
		`{"nodes":[{"name":"a","kind":"aggregate","agg":"bogus"}]}`,
		`{"nodes":[{"name":"f","kind":"filter","pred":{"type":"bogus"}}]}`,
		`{"nodes":[{"name":"f","kind":"filter","pred":{"type":"colconst","col":"c","op":"!!","val":{"int":1}}}]}`,
		`{"nodes":[{"name":"f","kind":"filter","pred":{"type":"colconst","col":"c","op":"="}}]}`,
		`{"nodes":[{"name":"f","kind":"filter","pred":{"type":"colconst","col":"c","op":"=","val":{}}}]}`,
		`{"nodes":[{"name":"f","kind":"filter","pred":{"type":"colconst","col":"c","op":"=","val":{"int":1,"str":"x"}}}]}`,
		`{"nodes":[{"name":"a","kind":"filter"}],"edges":[{"from":0,"to":5,"route":"same"}]}`,
		`{"nodes":[{"name":"a","kind":"filter"},{"name":"b","kind":"store"}],"edges":[{"from":0,"to":1,"route":"bogus"}]}`,
	}
	for _, c := range cases {
		if _, err := UnmarshalGraph([]byte(c)); err == nil {
			t.Errorf("UnmarshalGraph(%q) should fail", c)
		}
	}
}

func TestMarshalRejectsBoundPredicates(t *testing.T) {
	g := NewGraph()
	pred, err := (ColConst{Col: "unique1", Op: EQ, Val: relation.Int(1)}).Bind(relation.WisconsinSchema)
	if err != nil {
		t.Fatal(err)
	}
	// A bound ColConst is still a ColConst value, which serializes fine; the
	// unsupported case is a custom predicate type.
	g.Filter("f", "A", pred)
	if _, err := MarshalGraph(g); err != nil {
		t.Errorf("bound ColConst should still serialize: %v", err)
	}
	g2 := NewGraph()
	g2.Filter("f", "A", customPred{})
	if _, err := MarshalGraph(g2); err == nil {
		t.Error("unknown predicate type accepted")
	}
}

type customPred struct{}

func (customPred) Eval(relation.Tuple) bool                 { return true }
func (customPred) Bind(*relation.Schema) (Predicate, error) { return customPred{}, nil }
func (customPred) String() string                           { return "custom" }

func TestGraphJSONHumanReadable(t *testing.T) {
	g := complexGraph()
	data, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind": "join"`, `"route": "hash"`, `"type": "and"`, `"algo": "temp-index"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("serialized plan missing %q:\n%s", want, data)
		}
	}
}
