package lera

import (
	"strings"
	"testing"

	"dbs3/internal/relation"
)

// TestColParamJSONRoundTrip: placeholder predicates are part of the plan
// graph's wire form and round-trip canonically like the other predicate
// kinds.
func TestColParamJSONRoundTrip(t *testing.T) {
	g := NewGraph()
	f := g.Filter("f", "A", And{Terms: []Predicate{
		ColParam{Col: "unique1", Op: LT, Index: 0},
		Not{Term: ColParam{Col: "stringu1", Op: EQ, Index: 1}},
	}})
	s := g.Store("s", "Res")
	g.ConnectSame(f, s)

	data, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGraph(data)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	data2, err := MarshalGraph(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("round trip not canonical:\n%s\nvs\n%s", data, data2)
	}
	pred, ok := back.Nodes[0].Pred.(And)
	if !ok || len(pred.Terms) != 2 {
		t.Fatalf("predicate came back as %#v", back.Nodes[0].Pred)
	}
	cp, ok := pred.Terms[0].(ColParam)
	if !ok || cp.Col != "unique1" || cp.Op != LT || cp.Index != 0 {
		t.Errorf("first term came back as %#v", pred.Terms[0])
	}
}

// TestColParamContracts: the display form is 1-based, Eval before
// substitution is a hard bug (panic, not a wrong answer), and Bind resolves
// and type-records the column.
func TestColParamContracts(t *testing.T) {
	p := ColParam{Col: "k", Op: GE, Index: 2}
	if got := p.String(); got != "k >= ?3" {
		t.Errorf("String = %q", got)
	}
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(r.(string), "BindParams") {
				t.Errorf("Eval on unsubstituted placeholder: recover = %v", r)
			}
		}()
		p.Eval(relation.Tuple{relation.Int(1)})
	}()

	schema, err := relation.NewSchema(
		relation.Column{Name: "k", Type: relation.TInt},
		relation.Column{Name: "s", Type: relation.TString},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (ColParam{Col: "missing", Op: EQ}).Bind(schema); err == nil {
		t.Error("Bind resolved a missing column")
	}
	bound, err := ColParam{Col: "s", Op: EQ, Index: 0}.Bind(schema)
	if err != nil {
		t.Fatal(err)
	}
	// The bound placeholder substitutes into a working constant predicate.
	sub, changed, err := substituteParams(bound, []relation.Value{relation.Str("hit")})
	if err != nil || !changed {
		t.Fatalf("substitute: changed=%v err=%v", changed, err)
	}
	tup := relation.Tuple{relation.Int(1), relation.Str("hit")}
	if !sub.Eval(tup) {
		t.Error("substituted predicate rejected its matching tuple")
	}
	if sub.Eval(relation.Tuple{relation.Int(1), relation.Str("miss")}) {
		t.Error("substituted predicate accepted a non-matching tuple")
	}
	// Substituting an unbound placeholder is refused, not mis-evaluated.
	if _, _, err := substituteParams(ColParam{Col: "s", Op: EQ}, []relation.Value{relation.Str("x")}); err == nil {
		t.Error("substitute accepted an unbound placeholder")
	}
}
