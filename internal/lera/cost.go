package lera

// Cost estimation for the scheduler's thread-allocation steps (§3, Figure
// 5): step 1 needs the query's total sequential complexity, steps 2-3 need
// per-chain and per-operation complexities. Units are abstract "work units"
// (roughly tuples touched); only ratios matter for allocation.

// NodeCost estimates the sequential complexity of each node, and CostModel
// parameterizes the per-operation weights.
type CostModel struct {
	// FilterTuple is the cost of evaluating the predicate on one tuple.
	FilterTuple float64
	// TransmitTuple is the cost of routing one tuple.
	TransmitTuple float64
	// NestedLoopPair is the cost of one build-probe tuple comparison.
	NestedLoopPair float64
	// HashBuildTuple / HashProbeTuple are the costs of inserting and
	// probing one tuple in a hash table (hash and temp-index joins).
	HashBuildTuple float64
	HashProbeTuple float64
	// MapTuple / AggTuple / StoreTuple are per-tuple costs.
	MapTuple   float64
	AggTuple   float64
	StoreTuple float64
	// DefaultSelectivity scales output cardinalities of filters when no
	// statistics say otherwise.
	DefaultSelectivity float64
}

// DefaultCostModel returns the weights used when the caller supplies none.
func DefaultCostModel() CostModel {
	return CostModel{
		FilterTuple:        1,
		TransmitTuple:      1,
		NestedLoopPair:     1,
		HashBuildTuple:     2,
		HashProbeTuple:     1,
		MapTuple:           1,
		AggTuple:           2,
		StoreTuple:         1,
		DefaultSelectivity: 0.5,
	}
}

// Costs holds the estimation result.
type Costs struct {
	// Node[i] is node i's estimated sequential complexity.
	Node []float64
	// OutCard[i] is node i's estimated output cardinality.
	OutCard []float64
	// Chain[c] is the total complexity of plan chain c.
	Chain []float64
	// Total is the whole query's complexity.
	Total float64
}

// Estimate computes complexities for every node of a bound plan. Cardinality
// estimates flow along the topological order; bound relations contribute
// their true cardinalities (the engine knows fragment sizes at bind time).
func Estimate(p *Plan, m CostModel) *Costs {
	c := &Costs{
		Node:    make([]float64, len(p.Nodes)),
		OutCard: make([]float64, len(p.Nodes)),
		Chain:   make([]float64, len(p.Chains)),
	}
	for _, id := range p.Order {
		bn := p.Nodes[id]
		inCard := 0.0
		for _, e := range p.Graph.In(id) {
			inCard += c.OutCard[e.From]
		}
		switch bn.Node.Kind {
		case OpFilter:
			card := relCard(bn.Rel)
			c.Node[id] = card * m.FilterTuple
			sel := m.DefaultSelectivity
			if _, isTrue := bn.Pred.(True); isTrue {
				sel = 1
			}
			c.OutCard[id] = card * sel
		case OpTransmit:
			card := inCard
			if bn.Node.Rel != "" {
				card = relCard(bn.Rel)
			}
			c.Node[id] = card * m.TransmitTuple
			c.OutCard[id] = card
		case OpJoin:
			build := relCard(bn.Build)
			probe := inCard
			if bn.Node.ProbeRel != "" {
				probe = relCard(bn.Probe)
			}
			d := float64(bn.Degree)
			switch bn.Node.Algo {
			case NestedLoop:
				// Per-fragment nested loop: (build/d) * (probe/d) pairs per
				// instance, d instances.
				c.Node[id] = (build / d) * (probe / d) * d * m.NestedLoopPair
			case HashJoin, TempIndex:
				c.Node[id] = build*m.HashBuildTuple + probe*m.HashProbeTuple
			}
			// Keyed equijoin on a (near-)unique build key: out ~ probe.
			c.OutCard[id] = probe
		case OpMap:
			c.Node[id] = inCard * m.MapTuple
			c.OutCard[id] = inCard
		case OpAggregate:
			c.Node[id] = inCard * m.AggTuple
			c.OutCard[id] = inCard * m.DefaultSelectivity
		case OpStore:
			c.Node[id] = inCard * m.StoreTuple
			c.OutCard[id] = 0
		}
	}
	for ci, chain := range p.Chains {
		for _, id := range chain {
			c.Chain[ci] += c.Node[id]
		}
		c.Total += c.Chain[ci]
	}
	return c
}

func relCard(ri RelInfo) float64 {
	n := 0
	for _, s := range ri.FragSizes {
		n += s
	}
	if n == 0 && ri.Degree > 0 {
		// No statistics: assume a nominal fragment of 1000 tuples.
		return float64(ri.Degree) * 1000
	}
	return float64(n)
}
