package lera

import (
	"fmt"
	"strings"

	"dbs3/internal/relation"
)

// Predicate is a boolean expression over a tuple, used by filter nodes and
// theta-join residuals. Predicates are plain data (no closures) so plans can
// be inspected, validated against schemas, and printed.
type Predicate interface {
	// Eval evaluates the predicate on a tuple laid out per the bound schema.
	Eval(t relation.Tuple) bool
	// Bind resolves column names to positions in the schema, returning a
	// bound copy. Unresolved columns or type mismatches are errors.
	Bind(s *relation.Schema) (Predicate, error)
	// String renders the predicate in SQL-ish syntax.
	String() string
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators for predicates.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	default:
		return false
	}
}

// True is the always-true predicate (a pure scan).
type True struct{}

// Eval implements Predicate.
func (True) Eval(relation.Tuple) bool { return true }

// Bind implements Predicate.
func (p True) Bind(*relation.Schema) (Predicate, error) { return p, nil }

// String implements Predicate.
func (True) String() string { return "TRUE" }

// ColConst compares a named column with a constant.
type ColConst struct {
	Col string
	Op  CmpOp
	Val relation.Value

	bound bool
	idx   int
}

// Eval implements Predicate. The predicate must have been bound.
func (p ColConst) Eval(t relation.Tuple) bool {
	if !p.bound {
		panic("lera: Eval on unbound predicate " + p.String())
	}
	return cmpHolds(p.Op, t[p.idx].Compare(p.Val))
}

// Bind implements Predicate.
func (p ColConst) Bind(s *relation.Schema) (Predicate, error) {
	i, ok := s.Index(p.Col)
	if !ok {
		return nil, fmt.Errorf("lera: predicate column %q not in schema %s", p.Col, s)
	}
	if s.Column(i).Type != p.Val.Kind() {
		return nil, fmt.Errorf("lera: predicate %s compares %s column with %s constant", p.String(), s.Column(i).Type, p.Val.Kind())
	}
	p.bound, p.idx = true, i
	return p, nil
}

// String implements Predicate.
func (p ColConst) String() string {
	if p.Val.Kind() == relation.TString {
		return fmt.Sprintf("%s %s '%s'", p.Col, p.Op, p.Val)
	}
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Val)
}

// ColCol compares two named columns of the same tuple.
type ColCol struct {
	Left  string
	Op    CmpOp
	Right string

	bound  bool
	li, ri int
}

// Eval implements Predicate.
func (p ColCol) Eval(t relation.Tuple) bool {
	if !p.bound {
		panic("lera: Eval on unbound predicate " + p.String())
	}
	return cmpHolds(p.Op, t[p.li].Compare(t[p.ri]))
}

// Bind implements Predicate.
func (p ColCol) Bind(s *relation.Schema) (Predicate, error) {
	li, ok := s.Index(p.Left)
	if !ok {
		return nil, fmt.Errorf("lera: predicate column %q not in schema %s", p.Left, s)
	}
	ri, ok := s.Index(p.Right)
	if !ok {
		return nil, fmt.Errorf("lera: predicate column %q not in schema %s", p.Right, s)
	}
	if s.Column(li).Type != s.Column(ri).Type {
		return nil, fmt.Errorf("lera: predicate %s compares %s with %s", p.String(), s.Column(li).Type, s.Column(ri).Type)
	}
	p.bound, p.li, p.ri = true, li, ri
	return p, nil
}

// String implements Predicate.
func (p ColCol) String() string { return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right) }

// And is a conjunction of predicates.
type And struct{ Terms []Predicate }

// Eval implements Predicate.
func (p And) Eval(t relation.Tuple) bool {
	for _, q := range p.Terms {
		if !q.Eval(t) {
			return false
		}
	}
	return true
}

// Bind implements Predicate.
func (p And) Bind(s *relation.Schema) (Predicate, error) {
	out := And{Terms: make([]Predicate, len(p.Terms))}
	for i, q := range p.Terms {
		b, err := q.Bind(s)
		if err != nil {
			return nil, err
		}
		out.Terms[i] = b
	}
	return out, nil
}

// String implements Predicate.
func (p And) String() string {
	parts := make([]string, len(p.Terms))
	for i, q := range p.Terms {
		parts[i] = q.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// Or is a disjunction of predicates.
type Or struct{ Terms []Predicate }

// Eval implements Predicate.
func (p Or) Eval(t relation.Tuple) bool {
	for _, q := range p.Terms {
		if q.Eval(t) {
			return true
		}
	}
	return false
}

// Bind implements Predicate.
func (p Or) Bind(s *relation.Schema) (Predicate, error) {
	out := Or{Terms: make([]Predicate, len(p.Terms))}
	for i, q := range p.Terms {
		b, err := q.Bind(s)
		if err != nil {
			return nil, err
		}
		out.Terms[i] = b
	}
	return out, nil
}

// String implements Predicate.
func (p Or) String() string {
	parts := make([]string, len(p.Terms))
	for i, q := range p.Terms {
		parts[i] = q.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// Not negates a predicate.
type Not struct{ Term Predicate }

// Eval implements Predicate.
func (p Not) Eval(t relation.Tuple) bool { return !p.Term.Eval(t) }

// Bind implements Predicate.
func (p Not) Bind(s *relation.Schema) (Predicate, error) {
	b, err := p.Term.Bind(s)
	if err != nil {
		return nil, err
	}
	return Not{Term: b}, nil
}

// String implements Predicate.
func (p Not) String() string { return "NOT " + p.Term.String() }
