package lera

import (
	"strings"
	"testing"

	"dbs3/internal/partition"
	"dbs3/internal/relation"
)

// wiscResolver builds a resolver with Wisconsin relations A and B, both
// partitioned by hash on unique2 with the given degree.
func wiscResolver(t *testing.T, degree int) MapResolver {
	t.Helper()
	pa, err := partition.NewHash(relation.WisconsinSchema, []string{"unique2"}, degree)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := partition.NewHash(relation.WisconsinSchema, []string{"unique2"}, degree)
	if err != nil {
		t.Fatal(err)
	}
	return MapResolver{
		"A": {Schema: relation.WisconsinSchema, Degree: degree, Part: pa},
		"B": {Schema: relation.WisconsinSchema, Degree: degree, Part: pb},
	}
}

func TestBindIdealJoin(t *testing.T) {
	g := idealJoinGraph()
	p, err := Bind(g, wiscResolver(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	join := p.Nodes[0]
	if join.Degree != 8 {
		t.Errorf("join degree = %d", join.Degree)
	}
	if join.OutSchema.Len() != 2*relation.WisconsinSchema.Len() {
		t.Errorf("join output arity = %d", join.OutSchema.Len())
	}
	// Colliding column names must be prefixed with relation names.
	if _, ok := join.OutSchema.Index("A.unique2"); !ok {
		t.Errorf("expected A.unique2 in %s", join.OutSchema)
	}
	if _, ok := join.OutSchema.Index("B.unique2"); !ok {
		t.Errorf("expected B.unique2 in %s", join.OutSchema)
	}
	store := p.Nodes[1]
	if store.Degree != 8 || store.OutSchema != nil {
		t.Errorf("store degree=%d out=%v", store.Degree, store.OutSchema)
	}
	if p.Outputs["Res"] != 1 {
		t.Errorf("Outputs = %v", p.Outputs)
	}
	if len(p.Chains) != 1 || len(p.Chains[0]) != 2 {
		t.Errorf("Chains = %v", p.Chains)
	}
}

func TestBindAssocJoin(t *testing.T) {
	g := assocJoinGraph()
	p, err := Bind(g, wiscResolver(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	join := p.Nodes[1]
	if join.Router == nil {
		t.Fatal("pipelined join must have a router")
	}
	if join.Router.Degree() != 8 {
		t.Errorf("router degree = %d", join.Router.Degree())
	}
	// Router must be A's own partitioning function so probes co-locate.
	if join.Router.Signature() != "hash/8" {
		t.Errorf("router signature = %s", join.Router.Signature())
	}
	// The probe edge's routing columns must have been resolved.
	if len(p.Edges[0].RouteColsIdx) != 1 {
		t.Errorf("edge route cols = %v", p.Edges[0].RouteColsIdx)
	}
}

func TestBindAssocJoinDefaultsEdgeRouteCols(t *testing.T) {
	g := NewGraph()
	tr := g.Transmit("transmit", "B")
	j := g.JoinPipelined("join", "A", []string{"unique2"}, []string{"unique2"}, NestedLoop)
	st := g.Store("store", "Res")
	g.ConnectHash(tr, j, nil) // no explicit cols: binder fills in probe key
	g.ConnectSame(j, st)
	p, err := Bind(g, wiscResolver(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Edges[0].RouteCols; len(got) != 1 || got[0] != "unique2" {
		t.Errorf("defaulted route cols = %v", got)
	}
	if len(p.Edges[0].RouteColsIdx) != 1 {
		t.Errorf("bound route cols = %v", p.Edges[0].RouteColsIdx)
	}
}

func TestBindRejectsDegreeMismatch(t *testing.T) {
	pa, _ := partition.NewHash(relation.WisconsinSchema, []string{"unique2"}, 8)
	pb, _ := partition.NewHash(relation.WisconsinSchema, []string{"unique2"}, 4)
	res := MapResolver{
		"A": {Schema: relation.WisconsinSchema, Degree: 8, Part: pa},
		"B": {Schema: relation.WisconsinSchema, Degree: 4, Part: pb},
	}
	if _, err := Bind(idealJoinGraph(), res); err == nil || !strings.Contains(err.Error(), "co-partitioning") {
		t.Errorf("degree mismatch not rejected: %v", err)
	}
}

func TestBindRejectsIncompatiblePartitioning(t *testing.T) {
	pa, _ := partition.NewHash(relation.WisconsinSchema, []string{"unique2"}, 8)
	pb, _ := partition.NewMod(relation.WisconsinSchema, "unique2", 8)
	res := MapResolver{
		"A": {Schema: relation.WisconsinSchema, Degree: 8, Part: pa},
		"B": {Schema: relation.WisconsinSchema, Degree: 8, Part: pb},
	}
	if _, err := Bind(idealJoinGraph(), res); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Errorf("incompatible partitioning not rejected: %v", err)
	}
}

func TestBindRejectsWrongPartitioningKey(t *testing.T) {
	pa, _ := partition.NewHash(relation.WisconsinSchema, []string{"unique1"}, 8)
	res := wiscResolver(t, 8)
	res["A"] = RelInfo{Schema: relation.WisconsinSchema, Degree: 8, Part: pa}
	// Triggered join: A partitioned on unique1, join key unique2.
	if _, err := Bind(idealJoinGraph(), res); err == nil {
		t.Error("wrong build partitioning key accepted for triggered join")
	}
	// Pipelined join: same problem must be caught when building the router.
	if _, err := Bind(assocJoinGraph(), res); err == nil {
		t.Error("wrong build partitioning key accepted for pipelined join")
	}
}

func TestBindErrors(t *testing.T) {
	res := wiscResolver(t, 4)
	cases := []struct {
		name  string
		build func() *Graph
	}{
		{"empty plan", func() *Graph { return NewGraph() }},
		{"unknown relation", func() *Graph {
			g := NewGraph()
			f := g.Filter("f", "Missing", nil)
			g.ConnectSame(f, g.Store("s", "out"))
			return g
		}},
		{"filter without input", func() *Graph {
			g := NewGraph()
			g.add(&Node{Kind: OpFilter, Name: "f"})
			return g
		}},
		{"bad predicate column", func() *Graph {
			g := NewGraph()
			f := g.Filter("f", "A", ColConst{Col: "nope", Op: EQ, Val: relation.Int(1)})
			g.ConnectSame(f, g.Store("s", "out"))
			return g
		}},
		{"join missing build", func() *Graph {
			g := NewGraph()
			g.add(&Node{Kind: OpJoin, Name: "j", BuildKey: []string{"k"}, ProbeKey: []string{"k"}})
			return g
		}},
		{"join key arity mismatch", func() *Graph {
			g := NewGraph()
			g.JoinBound("j", "A", "B", []string{"unique2", "unique1"}, []string{"unique2"}, NestedLoop)
			return g
		}},
		{"join bad build key", func() *Graph {
			g := NewGraph()
			g.JoinBound("j", "A", "B", []string{"nope"}, []string{"unique2"}, NestedLoop)
			return g
		}},
		{"join bad probe key", func() *Graph {
			g := NewGraph()
			g.JoinBound("j", "A", "B", []string{"unique2"}, []string{"nope"}, NestedLoop)
			return g
		}},
		{"join key type mismatch", func() *Graph {
			g := NewGraph()
			g.JoinBound("j", "A", "B", []string{"unique2"}, []string{"stringu1"}, NestedLoop)
			return g
		}},
		{"pipelined join without input", func() *Graph {
			g := NewGraph()
			g.JoinPipelined("j", "A", []string{"unique2"}, []string{"unique2"}, NestedLoop)
			return g
		}},
		{"pipelined join with RouteSame probe", func() *Graph {
			g := NewGraph()
			tr := g.Transmit("t", "B")
			j := g.JoinPipelined("j", "A", []string{"unique2"}, []string{"unique2"}, NestedLoop)
			g.ConnectSame(tr, j)
			return g
		}},
		{"pipelined join with wrong route cols", func() *Graph {
			g := NewGraph()
			tr := g.Transmit("t", "B")
			j := g.JoinPipelined("j", "A", []string{"unique2"}, []string{"unique2"}, NestedLoop)
			g.ConnectHash(tr, j, []string{"unique1"})
			return g
		}},
		{"store without input", func() *Graph {
			g := NewGraph()
			g.Store("s", "out")
			return g
		}},
		{"store without name", func() *Graph {
			g := NewGraph()
			f := g.Filter("f", "A", nil)
			g.ConnectSame(f, g.Store("s", ""))
			return g
		}},
		{"store with outgoing edge", func() *Graph {
			g := NewGraph()
			f := g.Filter("f", "A", nil)
			st := g.Store("s", "out")
			g.ConnectSame(f, st)
			g.ConnectSame(st, g.TransmitPipelined("t"))
			return g
		}},
		{"map without input", func() *Graph {
			g := NewGraph()
			g.Map("m", []string{"unique2"})
			return g
		}},
		{"map without columns", func() *Graph {
			g := NewGraph()
			f := g.Filter("f", "A", nil)
			g.ConnectSame(f, g.Map("m", nil))
			return g
		}},
		{"map bad column", func() *Graph {
			g := NewGraph()
			f := g.Filter("f", "A", nil)
			m := g.Map("m", []string{"nope"})
			g.ConnectSame(f, m)
			g.ConnectSame(m, g.Store("s", "out"))
			return g
		}},
		{"aggregate without input", func() *Graph {
			g := NewGraph()
			g.Aggregate("a", []string{"ten"}, AggCount, "")
			return g
		}},
		{"aggregate COUNT with column", func() *Graph {
			g := NewGraph()
			f := g.Filter("f", "A", nil)
			a := g.Aggregate("a", []string{"ten"}, AggCount, "unique1")
			g.ConnectSame(f, a)
			g.ConnectSame(a, g.Store("s", "out"))
			return g
		}},
		{"aggregate SUM on string", func() *Graph {
			g := NewGraph()
			f := g.Filter("f", "A", nil)
			a := g.Aggregate("a", []string{"ten"}, AggSum, "stringu1")
			g.ConnectSame(f, a)
			g.ConnectSame(a, g.Store("s", "out"))
			return g
		}},
		{"aggregate bad group col", func() *Graph {
			g := NewGraph()
			f := g.Filter("f", "A", nil)
			a := g.Aggregate("a", []string{"nope"}, AggCount, "")
			g.ConnectSame(f, a)
			g.ConnectSame(a, g.Store("s", "out"))
			return g
		}},
		{"aggregate hash input on wrong key", func() *Graph {
			g := NewGraph()
			f := g.Filter("f", "A", nil)
			a := g.Aggregate("a", []string{"ten"}, AggCount, "")
			g.ConnectHash(f, a, []string{"twenty"})
			g.ConnectSame(a, g.Store("s", "out"))
			return g
		}},
		{"duplicate store output", func() *Graph {
			g := NewGraph()
			f1 := g.Filter("f1", "A", nil)
			g.ConnectSame(f1, g.Store("s1", "out"))
			f2 := g.Filter("f2", "B", nil)
			g.ConnectSame(f2, g.Store("s2", "out"))
			return g
		}},
		{"store shadows base relation", func() *Graph {
			g := NewGraph()
			f := g.Filter("f", "A", nil)
			g.ConnectSame(f, g.Store("s", "B"))
			return g
		}},
	}
	for _, c := range cases {
		if _, err := Bind(c.build(), res); err == nil {
			t.Errorf("%s: Bind should fail", c.name)
		}
	}
}

func TestBindMapAndAggregateSchemas(t *testing.T) {
	g := NewGraph()
	f := g.Filter("f", "A", ColConst{Col: "ten", Op: EQ, Val: relation.Int(3)})
	m := g.Map("m", []string{"unique2", "stringu1"})
	a := g.Aggregate("agg", []string{"stringu1"}, AggCount, "")
	st := g.Store("s", "out")
	g.ConnectSame(f, m)
	g.ConnectHash(m, a, []string{"stringu1"})
	g.ConnectSame(a, st)
	p, err := Bind(g, wiscResolver(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Nodes[m.ID].OutSchema.String(); got != "(unique2 INT, stringu1 STRING)" {
		t.Errorf("map schema = %s", got)
	}
	if got := p.Nodes[a.ID].OutSchema.String(); got != "(stringu1 STRING, count INT)" {
		t.Errorf("agg schema = %s", got)
	}
	// SUM schema naming.
	g2 := NewGraph()
	f2 := g2.Filter("f", "A", nil)
	a2 := g2.Aggregate("agg", []string{"ten"}, AggSum, "unique1")
	g2.ConnectHash(f2, a2, []string{"ten"})
	g2.ConnectSame(a2, g2.Store("s", "out"))
	p2, err := Bind(g2, wiscResolver(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p2.Nodes[a2.ID].OutSchema.Index("SUM_unique1"); !ok {
		t.Errorf("sum schema = %s", p2.Nodes[a2.ID].OutSchema)
	}
}

func TestBindMultiChainPlan(t *testing.T) {
	// Chain 1: filter A -> store T1. Chain 2: join T1 with B (pipelined via
	// transmit reading T1).
	g := NewGraph()
	f := g.Filter("f", "A", ColConst{Col: "two", Op: EQ, Val: relation.Int(0)})
	s1 := g.Store("s1", "T1")
	g.ConnectSame(f, s1)
	tr := g.Transmit("t", "T1")
	j := g.JoinPipelined("j", "B", []string{"unique2"}, []string{"unique2"}, HashJoin)
	s2 := g.Store("s2", "Res")
	g.ConnectHash(tr, j, []string{"unique2"})
	g.ConnectSame(j, s2)
	p, err := Bind(g, wiscResolver(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chains) != 2 {
		t.Fatalf("Chains = %v", p.Chains)
	}
	// Producer chain (containing node f) must come first.
	first := p.Chains[0]
	foundF := false
	for _, id := range first {
		if id == f.ID {
			foundF = true
		}
	}
	if !foundF {
		t.Errorf("producer chain should be ordered first: %v", p.Chains)
	}
	// Transmit over the materialized T1 inherits its degree.
	if p.Nodes[tr.ID].Degree != 4 {
		t.Errorf("transmit degree = %d", p.Nodes[tr.ID].Degree)
	}
}

func TestBindRejectsReadingOwnChainOutput(t *testing.T) {
	g := NewGraph()
	f := g.Filter("f", "A", nil)
	st := g.Store("s", "T1")
	g.ConnectSame(f, st)
	// Join in the same chain (connected by an edge) reading T1.
	j := g.JoinPipelined("j", "T1", []string{"unique2"}, []string{"unique2"}, HashJoin)
	g.ConnectHash(f, j, []string{"unique2"})
	g.ConnectSame(j, g.Store("s2", "Res"))
	if _, err := Bind(g, wiscResolver(t, 4)); err == nil {
		t.Error("reading own chain's materialization accepted")
	}
}

func TestBindRouteSameDegreeMismatch(t *testing.T) {
	g := NewGraph()
	f := g.Filter("f", "A", nil)
	st := g.Store("s", "out")
	st.DegreeOverride = 2 // A has degree 4
	g.ConnectSame(f, st)
	if _, err := Bind(g, wiscResolver(t, 4)); err == nil {
		t.Error("RouteSame degree mismatch accepted")
	}
}

func TestBindDegreeOverrideWithHashRoute(t *testing.T) {
	g := NewGraph()
	f := g.Filter("f", "A", nil)
	st := g.Store("s", "out")
	st.DegreeOverride = 2
	g.ConnectHash(f, st, []string{"unique2"})
	p, err := Bind(g, wiscResolver(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes[st.ID].Degree != 2 {
		t.Errorf("store degree = %d, want 2", p.Nodes[st.ID].Degree)
	}
}
