package lera

import "dbs3/internal/relation"

// EvalBatch evaluates a bound predicate over a whole tuple batch and returns
// the selection vector of passing positions — the vectorized form of
// Predicate.Eval that the batch-native Filter uses. sel is a scratch buffer:
// its contents are overwritten (callers pass sel[:0] and reuse the backing
// array across batches).
//
// Known predicate shapes evaluate column-at-a-time with the column index and
// comparison hoisted out of the loop; conjunctions narrow the selection
// progressively so later terms only touch survivors. Anything else falls
// back to per-tuple Eval, which keeps EvalBatch exactly equivalent to the
// scalar path for every predicate.
func EvalBatch(p Predicate, ts []relation.Tuple, sel relation.Selection) relation.Selection {
	sel = sel[:0]
	switch q := p.(type) {
	case True:
		return relation.SelectAll(sel, len(ts))
	case ColConst:
		if !q.bound {
			panic("lera: EvalBatch on unbound predicate " + q.String())
		}
		if q.Val.Kind() == relation.TInt {
			return appendCmpIntConst(sel, ts, q.idx, q.Op, q.Val.AsInt())
		}
		for i, t := range ts {
			if cmpHolds(q.Op, t[q.idx].Compare(q.Val)) {
				sel = append(sel, int32(i))
			}
		}
		return sel
	case ColCol:
		if !q.bound {
			panic("lera: EvalBatch on unbound predicate " + q.String())
		}
		li, ri := q.li, q.ri
		for i, t := range ts {
			if cmpHolds(q.Op, t[li].Compare(t[ri])) {
				sel = append(sel, int32(i))
			}
		}
		return sel
	case And:
		if len(q.Terms) == 0 {
			return relation.SelectAll(sel, len(ts))
		}
		sel = EvalBatch(q.Terms[0], ts, sel)
		for _, term := range q.Terms[1:] {
			// Refine in place: the write index never passes the read index.
			kept := sel[:0]
			for _, i := range sel {
				if term.Eval(ts[i]) {
					kept = append(kept, i)
				}
			}
			sel = kept
		}
		return sel
	default:
		for i, t := range ts {
			if p.Eval(t) {
				sel = append(sel, int32(i))
			}
		}
		return sel
	}
}

// appendCmpIntConst is the integer column-vs-constant kernel: one tight loop
// per operator with the comparison branch predictable across the batch.
func appendCmpIntConst(sel relation.Selection, ts []relation.Tuple, idx int, op CmpOp, c int64) relation.Selection {
	switch op {
	case EQ:
		for i, t := range ts {
			if t[idx].AsInt() == c {
				sel = append(sel, int32(i))
			}
		}
	case NE:
		for i, t := range ts {
			if t[idx].AsInt() != c {
				sel = append(sel, int32(i))
			}
		}
	case LT:
		for i, t := range ts {
			if t[idx].AsInt() < c {
				sel = append(sel, int32(i))
			}
		}
	case LE:
		for i, t := range ts {
			if t[idx].AsInt() <= c {
				sel = append(sel, int32(i))
			}
		}
	case GT:
		for i, t := range ts {
			if t[idx].AsInt() > c {
				sel = append(sel, int32(i))
			}
		}
	case GE:
		for i, t := range ts {
			if t[idx].AsInt() >= c {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel
}
