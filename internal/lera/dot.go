package lera

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the plan's "simple view" (one node per operation, Figure 1
// left) in Graphviz DOT format. Bound base relations appear as box nodes;
// trigger activations as dashed arrows from a Trigger source.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph lera {\n  rankdir=BT;\n")
	b.WriteString("  trigger [label=\"Trigger\", shape=plaintext];\n")
	rels := make(map[string]bool)
	for _, n := range g.Nodes {
		label := n.Name
		switch n.Kind {
		case OpFilter:
			if n.Pred != nil {
				label += "\\n" + escapeDot(n.Pred.String())
			}
		case OpJoin:
			label += fmt.Sprintf("\\n%s on %s", n.Algo, strings.Join(n.BuildKey, ","))
		case OpStore:
			label += "\\n-> " + n.As
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", shape=ellipse];\n", n.ID, label)
		for _, rel := range []string{n.Rel, n.BuildRel, n.ProbeRel} {
			if rel != "" {
				rels[rel] = true
				fmt.Fprintf(&b, "  rel_%s -> n%d [style=bold];\n", sanitize(rel), n.ID)
			}
		}
		if g.Triggered(n.ID) {
			fmt.Fprintf(&b, "  trigger -> n%d [style=dashed];\n", n.ID)
		}
	}
	names := make([]string, 0, len(rels))
	for r := range rels {
		names = append(names, r)
	}
	sort.Strings(names)
	for _, r := range names {
		fmt.Fprintf(&b, "  rel_%s [label=\"%s\", shape=box];\n", sanitize(r), r)
	}
	for _, e := range g.Edges {
		attr := ""
		if e.Route == RouteHash {
			attr = fmt.Sprintf(" [label=\"hash(%s)\"]", strings.Join(e.RouteCols, ","))
		}
		fmt.Fprintf(&b, "  n%d -> n%d%s;\n", e.From, e.To, attr)
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func escapeDot(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
