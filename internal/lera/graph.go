// Package lera models Lera-par, DBS3's parallel dataflow language
// [Chachaty92]: a plan is a graph whose nodes are operators (filter, join,
// transmit, store, ...) and whose edges carry activations. An activation is
// either a control message (trigger) or a tuple (data); each activation is a
// sequential unit of work. The "extended view" instantiates every node once
// per fragment of its bound relation (§2, Figure 1); instantiation is done
// by the execution engine, this package holds the static description.
package lera

import (
	"fmt"

	"dbs3/internal/partition"
	"dbs3/internal/relation"
)

// OpKind identifies the operator implemented by a node.
type OpKind int

// Operator kinds. Filter and Transmit read a bound (statically partitioned)
// relation and are triggered by a control activation; Join is triggered when
// both operands are bound and co-partitioned (IdealJoin), or pipelined when
// the probe side arrives by data activations (AssocJoin); Store materializes
// its input, ending a pipeline chain; Map projects; Aggregate groups.
const (
	OpFilter OpKind = iota
	OpJoin
	OpTransmit
	OpStore
	OpMap
	OpAggregate
)

// String names the operator kind.
func (k OpKind) String() string {
	switch k {
	case OpFilter:
		return "filter"
	case OpJoin:
		return "join"
	case OpTransmit:
		return "transmit"
	case OpStore:
		return "store"
	case OpMap:
		return "map"
	case OpAggregate:
		return "aggregate"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// JoinAlgo selects the join algorithm of a join node. The paper uses nested
// loop when it wants to magnify execution time and a temporary index
// ("build indexes on the fly") for the larger databases; we add a classic
// hash join as well.
type JoinAlgo int

// Join algorithms.
const (
	NestedLoop JoinAlgo = iota
	HashJoin
	TempIndex
)

// String names the join algorithm.
func (a JoinAlgo) String() string {
	switch a {
	case NestedLoop:
		return "nested-loop"
	case HashJoin:
		return "hash"
	case TempIndex:
		return "temp-index"
	default:
		return fmt.Sprintf("JoinAlgo(%d)", int(a))
	}
}

// AggKind selects an aggregate function.
type AggKind int

// Aggregate functions.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

// String names the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", int(a))
	}
}

// Merge returns the aggregate that combines partial results of a into the
// global result: COUNT partials are counts already, so they add like SUM;
// SUM, MIN and MAX are self-merging. This is the scatter-gather rewrite a
// distributed coordinator applies — each shard runs the original aggregate
// over its fragment, and the merge aggregate folds the per-shard rows
// group-wise into the answer a single node would have produced.
func (a AggKind) Merge() AggKind {
	if a == AggCount {
		return AggSum
	}
	return a
}

// RouteKind says how a data edge routes tuples to consumer instances.
type RouteKind int

const (
	// RouteSame sends producer instance i's output to consumer instance i
	// (no redistribution; degrees must match).
	RouteSame RouteKind = iota
	// RouteHash hashes the named columns of the tuple and routes to
	// instance hash % consumerDegree (dynamic redistribution).
	RouteHash
)

// Node is one operator of a Lera-par plan. Only the fields relevant to Kind
// are set; Validate enforces the per-kind contract.
type Node struct {
	ID   int
	Name string
	Kind OpKind

	// Rel is the bound base relation of filter/transmit nodes; instance i
	// reads fragment i.
	Rel string
	// BuildRel is the join build side (always bound in this model).
	BuildRel string
	// ProbeRel is the join probe side when it is bound and co-partitioned
	// (triggered join); empty when the probe arrives by pipeline.
	ProbeRel string
	// BuildKey/ProbeKey are the equi-join attributes on each side.
	BuildKey, ProbeKey []string
	// Algo selects the join algorithm.
	Algo JoinAlgo
	// Pred filters tuples (filter nodes; optional residual on map nodes).
	Pred Predicate
	// Cols is the projection list of map nodes.
	Cols []string
	// GroupBy/Agg/AggCol configure aggregate nodes. AggCol is empty for
	// COUNT.
	GroupBy []string
	Agg     AggKind
	AggCol  string
	// As is the output relation name of store nodes.
	As string
	// DegreeOverride forces the node's instance count; 0 means inherit
	// (bound relation degree, or producer degree through RouteSame edges).
	DegreeOverride int
}

// Edge is a data activator between two nodes. Control (trigger) activations
// are implicit: every node without incoming data edges is triggered.
type Edge struct {
	From, To  int
	Route     RouteKind
	RouteCols []string
}

// Graph is a Lera-par plan.
type Graph struct {
	Nodes []*Node
	Edges []*Edge
}

// NewGraph returns an empty plan.
func NewGraph() *Graph { return &Graph{} }

// add appends a node, assigning its id.
func (g *Graph) add(n *Node) *Node {
	n.ID = len(g.Nodes)
	if n.Name == "" {
		n.Name = fmt.Sprintf("%s%d", n.Kind, n.ID)
	}
	g.Nodes = append(g.Nodes, n)
	return n
}

// Filter adds a filter node over the bound relation rel.
func (g *Graph) Filter(name, rel string, pred Predicate) *Node {
	if pred == nil {
		pred = True{}
	}
	return g.add(&Node{Name: name, Kind: OpFilter, Rel: rel, Pred: pred})
}

// FilterPipelined adds a filter over a pipelined input stream (a residual
// predicate after a join, for instance).
func (g *Graph) FilterPipelined(name string, pred Predicate) *Node {
	if pred == nil {
		pred = True{}
	}
	return g.add(&Node{Name: name, Kind: OpFilter, Pred: pred})
}

// Transmit adds a transmit node reading the bound relation rel; its output
// edges redistribute the tuples.
func (g *Graph) Transmit(name, rel string) *Node {
	return g.add(&Node{Name: name, Kind: OpTransmit, Rel: rel})
}

// TransmitPipelined adds a transmit node with pipelined input (re-routing a
// stream, e.g. after a filter).
func (g *Graph) TransmitPipelined(name string) *Node {
	return g.add(&Node{Name: name, Kind: OpTransmit})
}

// JoinBound adds a triggered join of two bound, co-partitioned relations
// (the paper's IdealJoin shape).
func (g *Graph) JoinBound(name, buildRel, probeRel string, buildKey, probeKey []string, algo JoinAlgo) *Node {
	return g.add(&Node{Kind: OpJoin, Name: name, BuildRel: buildRel, ProbeRel: probeRel, BuildKey: buildKey, ProbeKey: probeKey, Algo: algo})
}

// JoinPipelined adds a join whose probe side arrives by data activations
// (the paper's AssocJoin shape). The build side is the bound relation.
func (g *Graph) JoinPipelined(name, buildRel string, buildKey, probeKey []string, algo JoinAlgo) *Node {
	return g.add(&Node{Kind: OpJoin, Name: name, BuildRel: buildRel, BuildKey: buildKey, ProbeKey: probeKey, Algo: algo})
}

// Map adds a projection node (pipelined input).
func (g *Graph) Map(name string, cols []string) *Node {
	return g.add(&Node{Kind: OpMap, Name: name, Cols: cols})
}

// Aggregate adds a grouped-aggregate node (pipelined input).
func (g *Graph) Aggregate(name string, groupBy []string, agg AggKind, aggCol string) *Node {
	return g.add(&Node{Kind: OpAggregate, Name: name, GroupBy: groupBy, Agg: agg, AggCol: aggCol})
}

// Store adds a materialization node writing the relation named as.
func (g *Graph) Store(name, as string) *Node {
	return g.add(&Node{Kind: OpStore, Name: name, As: as})
}

// ConnectSame adds a data edge with instance-to-instance routing.
func (g *Graph) ConnectSame(from, to *Node) *Edge {
	e := &Edge{From: from.ID, To: to.ID, Route: RouteSame}
	g.Edges = append(g.Edges, e)
	return e
}

// ConnectHash adds a data edge redistributing tuples by hashing cols.
func (g *Graph) ConnectHash(from, to *Node, cols []string) *Edge {
	e := &Edge{From: from.ID, To: to.ID, Route: RouteHash, RouteCols: append([]string(nil), cols...)}
	g.Edges = append(g.Edges, e)
	return e
}

// In returns the data edges entering node id.
func (g *Graph) In(id int) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.To == id {
			out = append(out, e)
		}
	}
	return out
}

// Out returns the data edges leaving node id.
func (g *Graph) Out(id int) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// Triggered reports whether a node starts on a control activation, i.e. has
// no incoming data edges (§2, Figure 2).
func (g *Graph) Triggered(id int) bool { return len(g.In(id)) == 0 }

// TopoOrder returns the node ids in a topological order of the data edges,
// or an error if the plan is cyclic.
func (g *Graph) TopoOrder() ([]int, error) {
	indeg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	var queue, order []int
	for i := range g.Nodes {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, e := range g.Out(id) {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("lera: plan has a cycle")
	}
	return order, nil
}

// RelInfo describes a base (or previously materialized) relation to the
// validator and the engine.
type RelInfo struct {
	Schema *relation.Schema
	Degree int
	// FragSizes holds per-fragment cardinalities; optional (used by cost
	// estimation and LPT ordering).
	FragSizes []int
	// Part is the relation's static partitioning function; optional. When
	// present, the validator checks join co-partitioning against it and
	// pipelined joins route probe tuples with it.
	Part partition.Func
}

// Resolver supplies relation metadata during validation and binding.
type Resolver interface {
	// RelInfo returns metadata for the named relation.
	RelInfo(name string) (RelInfo, error)
}

// MapResolver is a Resolver backed by a map.
type MapResolver map[string]RelInfo

// RelInfo implements Resolver.
func (m MapResolver) RelInfo(name string) (RelInfo, error) {
	ri, ok := m[name]
	if !ok {
		return RelInfo{}, fmt.Errorf("lera: unknown relation %q", name)
	}
	return ri, nil
}
