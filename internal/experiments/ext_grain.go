package experiments

import (
	"dbs3/internal/sim"
	"dbs3/internal/zipf"
)

// ExtGrain is an extension experiment beyond the paper's figures,
// implementing its §6 future work: "allowing the choice of the grain of
// parallelism independent of the operation semantics". The Figure 15
// configuration (IdealJoin, Zipf 1, d = 200) is re-run with the triggered
// join split into partial triggers of g probe tuples. The whole-fragment
// grain ceilings at nmax ~ 6; finer grains multiply the activation count
// and lift the ceiling toward the processor count — without touching the
// degree of partitioning.
func ExtGrain() *Figure {
	f := &Figure{
		ID:     "ext-grain",
		Title:  "Grain of parallelism (IdealJoin, Zipf 1, d=200, 70 processors) — §6 future work",
		XLabel: "threads",
		YLabel: "speed-up",
		Series: []Series{
			{Name: "Whole-fragment triggers (paper)"},
			{Name: "Grain = 20 probe tuples"},
			{Name: "Grain = 2 probe tuples"},
		},
	}
	m := calibrated
	cfg := m.Config(1)
	aSizes := zipf.Sizes(spdACard, spdDegree, 1)
	bSizes := sim.UniformSizes(spdBCard, spdDegree)
	for si, grain := range []int{0, 20, 2} {
		costs := m.ChunkedNestedLoopTriggerCosts(aSizes, bSizes, grain)
		seq := sim.Triggered(sim.TriggeredSpec{Costs: costs, Threads: 1, QueueOverhead: m.TriggeredQueueOverhead}, cfg).Time
		for _, n := range spdThreads {
			r := sim.Triggered(sim.TriggeredSpec{Costs: costs, Threads: n, Strategy: sim.LPT, QueueOverhead: m.TriggeredQueueOverhead}, cfg)
			f.Series[si].Points = append(f.Series[si].Points, Point{float64(n), seq / r.Time})
		}
	}
	return f
}
