package experiments

import (
	"dbs3/internal/analytic"
	"dbs3/internal/sim"
	"dbs3/internal/zipf"
)

// Expt 3 (§5.6): vary the degree of partitioning, d from 20 to 1500, with 20
// threads. Figure 16 measures the pure queue overhead (no index, unskewed
// 100K/10K); Figure 17 the total time with a temporary index (500K/50K);
// Figures 18-19 the payoff of high d against skew (Zipf 0.6, LPT).

var partDegrees = []int{20, 100, 250, 500, 750, 1000, 1250, 1400, 1500}

const partThreads = 20

// idealTimeAt runs the triggered IdealJoin at one (d, theta) configuration.
func idealTimeAt(aCard, bCard, d int, theta float64, index bool, strat sim.Kind) float64 {
	m := calibrated
	cfg := m.Config(1)
	aSizes := zipf.Sizes(aCard, d, theta)
	bSizes := sim.UniformSizes(bCard, d)
	var costs []float64
	if index {
		costs = m.IndexTriggerCosts(aSizes, bSizes, bSizes)
	} else {
		costs = m.NestedLoopTriggerCosts(aSizes, bSizes, bSizes)
	}
	return sim.Triggered(sim.TriggeredSpec{
		Costs: costs, Threads: partThreads, Strategy: strat,
		QueueOverhead: m.TriggeredQueueOverhead,
	}, cfg).Time
}

// assocTimeAt runs the pipelined AssocJoin at one (d, theta) configuration.
func assocTimeAt(aCard, bCard, d int, theta float64, index bool) float64 {
	m := calibrated
	cfg := m.Config(1)
	aSizes := zipf.Sizes(aCard, d, theta)
	bSizes := sim.UniformSizes(bCard, d)
	prod := m.TransmitTriggerCosts(bSizes)
	var per []float64
	if index {
		probes := make([]int, d)
		emisCount := make([]int, d)
		for i := 0; i < d; i++ {
			for j := 0; j < bSizes[i]; j++ {
				emisCount[(i+j)%d]++
			}
		}
		copy(probes, emisCount)
		per = m.IndexProbeCosts(aSizes, probes)
	} else {
		per = m.NestedLoopProbeCosts(aSizes)
	}
	emis := make([][]int, d)
	for i := 0; i < d; i++ {
		for j := 0; j < bSizes[i]; j++ {
			emis[i] = append(emis[i], (i+j)%d)
		}
	}
	var prodWork, consWork float64
	for i := range prod {
		prodWork += prod[i]
		for _, tgt := range emis[i] {
			consWork += per[tgt]
		}
	}
	split := sim.SplitThreads(partThreads, []float64{prodWork, consWork})
	return sim.Pipeline(sim.PipelineSpec{
		ProducerCosts: prod, Emissions: emis, ConsumerPerTuple: per,
		ProducerThreads: split[0], ConsumerThreads: split[1],
		QueueOverheadProducer: m.TriggeredQueueOverhead,
		QueueOverheadConsumer: m.PipelinedQueueOverhead,
	}, cfg).Time
}

// Fig16 reproduces Figure 16: the partitioning overhead of IdealJoin and
// AssocJoin without indexes (unskewed 100K/10K). Following the paper, the
// overhead is the measured time minus the theoretical time Td = T20 * 20/d
// of the nested-loop join; it grows linearly at ~0.45 ms/degree (IdealJoin:
// d triggered queues) and ~4 ms/degree (AssocJoin: d triggered + d pipelined
// queues).
func Fig16() *Figure {
	f := &Figure{
		ID:     "fig16",
		Title:  "Partitioning overhead for IdealJoin and AssocJoin (no index, 20 threads)",
		XLabel: "degree of partitioning",
		YLabel: "measured overhead (s)",
		Series: []Series{{Name: "Overhead for AssocJoin"}, {Name: "Overhead for IdealJoin"}},
	}
	idealT20 := idealTimeAt(skewACard, skewBCard, 20, 0, false, sim.Random)
	assocT20 := assocTimeAt(skewACard, skewBCard, 20, 0, false)
	for _, d := range partDegrees {
		// The paper's method (footnote of §5.6.1): theoretical time for
		// degree d extrapolates the d=20 measurement by the nested-loop
		// work scaling, Td = T20 * 20/d; the overhead is measured - Td.
		theoIdeal := idealT20 * 20 / float64(d)
		theoAssoc := assocT20 * 20 / float64(d)
		mi := idealTimeAt(skewACard, skewBCard, d, 0, false, sim.Random)
		ma := assocTimeAt(skewACard, skewBCard, d, 0, false)
		f.Series[0].Points = append(f.Series[0].Points, Point{float64(d), ma - theoAssoc})
		f.Series[1].Points = append(f.Series[1].Points, Point{float64(d), mi - theoIdeal})
	}
	return f
}

// Fig17 reproduces Figure 17: total execution time with a temporary index on
// the 500K/50K database. Times fall as fragments shrink (index build is
// superlinear and fragments start fitting the fast subcache) until the queue
// overhead dominates: past d ~ 1000 for AssocJoin (4 ms/degree) and d ~ 1400
// for IdealJoin (0.45 ms/degree).
func Fig17() *Figure {
	f := &Figure{
		ID:     "fig17",
		Title:  "Execution time for IdealJoin and AssocJoin (temporary index, 500K/50K, 20 threads)",
		XLabel: "degree of partitioning",
		YLabel: "execution time (s)",
		Series: []Series{{Name: "AssocJoin execution time"}, {Name: "IdealJoin execution time"}},
	}
	for _, d := range partDegrees {
		f.Series[0].Points = append(f.Series[0].Points, Point{float64(d), assocTimeAt(500_000, 50_000, d, 0, true)})
		f.Series[1].Points = append(f.Series[1].Points, Point{float64(d), idealTimeAt(500_000, 50_000, d, 0, true, sim.Random)})
	}
	return f
}

// Fig18 reproduces Figure 18: the skew overhead v0.6 = T0.6/T0 - 1 of
// IdealJoin (LPT, 20 threads, Zipf 0.6) against the degree of partitioning,
// for the nested-loop (100K/10K) and temp-index (500K/50K) variants, next to
// the analytical worst case. Higher d shrinks the sequential unit of work,
// so LPT balances better and v falls — the behaviour is independent of the
// join algorithm.
func Fig18() *Figure {
	f := &Figure{
		ID:     "fig18",
		Title:  "Skew overhead with IdealJoin (Zipf 0.6, LPT, 20 threads)",
		XLabel: "degree of partitioning",
		YLabel: "skew overhead (v)",
		Series: []Series{
			{Name: "Ideal Join (nested loop)"},
			{Name: "Ideal Join (temp. index)"},
			{Name: "vworst"},
		},
	}
	for _, d := range partDegrees {
		nl0 := idealTimeAt(skewACard, skewBCard, d, 0, false, sim.LPT)
		nl6 := idealTimeAt(skewACard, skewBCard, d, 0.6, false, sim.LPT)
		ix0 := idealTimeAt(500_000, 50_000, d, 0, true, sim.LPT)
		ix6 := idealTimeAt(500_000, 50_000, d, 0.6, true, sim.LPT)
		f.Series[0].Points = append(f.Series[0].Points, Point{float64(d), analytic.VFromTimes(nl6, nl0)})
		f.Series[1].Points = append(f.Series[1].Points, Point{float64(d), analytic.VFromTimes(ix6, ix0)})
		f.Series[2].Points = append(f.Series[2].Points, Point{float64(d), analytic.VBound(zipf.SkewRatio(d, 0.6), partThreads, d)})
	}
	return f
}

// Fig19 reproduces Figure 19: the time saved on the skewed database by
// raising the degree of partitioning (temp-index IdealJoin, Zipf 0.6, LPT),
// compared with the unskewed execution time T0.
func Fig19() *Figure {
	f := &Figure{
		ID:     "fig19",
		Title:  "Saved time for IdealJoin with index (Zipf 0.6, LPT, 20 threads)",
		XLabel: "degree of partitioning",
		YLabel: "saved time (s)",
		Series: []Series{{Name: "Saved time, Ideal Join (temp. index)"}, {Name: "T0 (unskewed execution time)"}},
	}
	// Baseline: the low-partitioning configuration (d = 100, just below the
	// paper's plotted range) whose skew penalty the higher degrees claw
	// back.
	const baseDegree = 100
	base := idealTimeAt(500_000, 50_000, baseDegree, 0.6, true, sim.LPT)
	// T0 reference: the unskewed time in the flat region of Figure 17.
	t0 := idealTimeAt(500_000, 50_000, 500, 0, true, sim.LPT)
	for _, d := range partDegrees {
		if d < baseDegree {
			continue
		}
		saved := base - idealTimeAt(500_000, 50_000, d, 0.6, true, sim.LPT)
		f.Series[0].Points = append(f.Series[0].Points, Point{float64(d), saved})
		f.Series[1].Points = append(f.Series[1].Points, Point{float64(d), t0})
	}
	return f
}
