package experiments

import (
	"dbs3/internal/analytic"
	"dbs3/internal/sim"
	"dbs3/internal/zipf"
)

// Expt 1 (§5.4): vary the skew. Databases of A = 100K and B' = 10K tuples,
// statically partitioned in 200 fragments; A's fragment cardinalities follow
// Zipf(theta); 10 threads.

var calibrated = sim.Calibrated()

const (
	skewACard   = 100_000
	skewBCard   = 10_000
	skewDegree  = 200
	skewThreads = 10
)

var skewThetas = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// assocSpec builds the AssocJoin pipeline for one skew level: transmit reads
// B' (placed off the join key) and redistributes its tuples into the
// pipelined nested-loop join against A.
func assocSpec(theta float64, threads int) (sim.PipelineSpec, sim.Config) {
	m := calibrated
	aSizes := zipf.Sizes(skewACard, skewDegree, theta)
	bSizes := sim.UniformSizes(skewBCard, skewDegree)
	prod := m.TransmitTriggerCosts(bSizes)
	per := m.NestedLoopProbeCosts(aSizes)
	emis := make([][]int, skewDegree)
	for i := 0; i < skewDegree; i++ {
		for j := 0; j < bSizes[i]; j++ {
			// B' fragment i (placed by id) holds keys spread uniformly over
			// the key residues, so redistribution targets cycle.
			emis[i] = append(emis[i], (i+j)%skewDegree)
		}
	}
	var prodWork, consWork float64
	for i := range prod {
		prodWork += prod[i]
		for _, tgt := range emis[i] {
			consWork += per[tgt]
		}
	}
	split := sim.SplitThreads(threads, []float64{prodWork, consWork})
	return sim.PipelineSpec{
		ProducerCosts: prod, Emissions: emis, ConsumerPerTuple: per,
		ProducerThreads: split[0], ConsumerThreads: split[1],
		QueueOverheadProducer: m.TriggeredQueueOverhead,
		QueueOverheadConsumer: m.PipelinedQueueOverhead,
	}, m.Config(1)
}

// idealCosts builds the IdealJoin triggered activation costs for one skew
// level (nested loop: |A_i| x |B_i| pairs).
func idealCosts(theta float64) []float64 {
	m := calibrated
	aSizes := zipf.Sizes(skewACard, skewDegree, theta)
	bSizes := sim.UniformSizes(skewBCard, skewDegree)
	return m.NestedLoopTriggerCosts(aSizes, bSizes, bSizes)
}

// Fig12 reproduces Figure 12: AssocJoin execution time vs skew with the
// Random strategy, next to the analytical worst case. The measured time is
// constant whatever the skew (the pipelined operation's 10K activations
// absorb it), and even Tworst deviates by only ~3%.
func Fig12() *Figure {
	f := &Figure{
		ID:     "fig12",
		Title:  "AssocJoin execution (A=100K, B'=10K, d=200, 10 threads)",
		XLabel: "degree of skew (Zipf)",
		YLabel: "execution time (s)",
		Series: []Series{{Name: "Measured execution time (Random)"}, {Name: "Tworst"}},
	}
	m := calibrated
	var base float64
	for _, theta := range skewThetas {
		spec, cfg := assocSpec(theta, skewThreads)
		r := sim.Pipeline(spec, cfg)
		f.Series[0].Points = append(f.Series[0].Points, Point{theta, r.Time})
		if theta == 0 {
			base = r.Time
		}
		// Analytical worst case (equations 1-3) on the pipelined join: a =
		// 10K activations, skew factor from the Zipf fragment sizes.
		fixed := cfg.Startup(skewThreads, float64(skewDegree)*(m.TriggeredQueueOverhead+m.PipelinedQueueOverhead))
		v := analytic.VBound(zipf.SkewRatio(skewDegree, theta), spec.ConsumerThreads, skewBCard)
		f.Series[1].Points = append(f.Series[1].Points, Point{theta, fixed + (1+v)*(base-fixed)})
	}
	return f
}

// Fig13 reproduces Figure 13: IdealJoin execution time vs skew under Random
// and LPT, next to Tworst. Random degrades with skew; LPT stays near ideal
// up to theta = 0.8, after which the longest activation alone exceeds the
// ideal time and bounds the response time (the inflection the paper
// explains).
func Fig13() *Figure {
	f := &Figure{
		ID:     "fig13",
		Title:  "IdealJoin execution time (A=100K, B'=10K, d=200, 10 threads)",
		XLabel: "degree of skew (Zipf)",
		YLabel: "execution time (s)",
		Series: []Series{
			{Name: "Random consumption strategy"},
			{Name: "LPT consumption strategy"},
			{Name: "Tworst"},
		},
	}
	m := calibrated
	cfg := m.Config(1)
	for _, theta := range skewThetas {
		costs := idealCosts(theta)
		var sum float64
		for _, c := range costs {
			sum += c
		}
		rand := sim.Triggered(sim.TriggeredSpec{Costs: costs, Threads: skewThreads, Strategy: sim.Random, QueueOverhead: m.TriggeredQueueOverhead}, cfg)
		lpt := sim.Triggered(sim.TriggeredSpec{Costs: costs, Threads: skewThreads, Strategy: sim.LPT, QueueOverhead: m.TriggeredQueueOverhead}, cfg)
		fixed := cfg.Startup(skewThreads, float64(skewDegree)*m.TriggeredQueueOverhead)
		v := analytic.VBound(zipf.SkewRatio(skewDegree, theta), skewThreads, skewDegree)
		tworst := fixed + (1+v)*sum/float64(skewThreads)
		f.Series[0].Points = append(f.Series[0].Points, Point{theta, rand.Time})
		f.Series[1].Points = append(f.Series[1].Points, Point{theta, lpt.Time})
		f.Series[2].Points = append(f.Series[2].Points, Point{theta, tworst})
	}
	return f
}
