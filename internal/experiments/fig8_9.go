package experiments

import "dbs3/internal/sim"

// §5.2 experiment: a parallel selection over the 200K-tuple DewittA relation
// with 5..30 threads, executed once with all data local and once with all
// data initially remote (the Allcache ships lines on demand at 6x the local
// cost). The paper reports Tr - Tl ~ 4% of execution time, decreasing with
// the thread count; below 5 threads the per-thread working set exceeds the
// local cache so Tl = Tr.

const (
	selCard   = 200_000
	selDegree = 200
)

func remoteLocalTimes() (threads []int, local, remote []float64) {
	m := calibrated
	cfg := m.Config(1)
	sizes := sim.UniformSizes(selCard, selDegree)
	for n := 5; n <= 30; n += 5 {
		threads = append(threads, n)
		l := sim.Triggered(sim.TriggeredSpec{
			Costs: m.SelectionCosts(sizes, false, n), Threads: n,
			QueueOverhead: m.TriggeredQueueOverhead,
		}, cfg)
		r := sim.Triggered(sim.TriggeredSpec{
			Costs: m.SelectionCosts(sizes, true, n), Threads: n,
			QueueOverhead: m.TriggeredQueueOverhead,
		}, cfg)
		local = append(local, l.Time)
		remote = append(remote, r.Time)
	}
	return
}

// Fig8 reproduces Figure 8: execution time of the 200K selection, remote vs
// local, for 5..30 threads.
func Fig8() *Figure {
	threads, local, remote := remoteLocalTimes()
	f := &Figure{
		ID:     "fig8",
		Title:  "Impact of remote access for a 200K tuples selection",
		XLabel: "threads",
		YLabel: "execution time (s)",
		Series: []Series{{Name: "Remote execution"}, {Name: "Local execution"}},
	}
	for i, n := range threads {
		f.Series[0].Points = append(f.Series[0].Points, Point{float64(n), remote[i]})
		f.Series[1].Points = append(f.Series[1].Points, Point{float64(n), local[i]})
	}
	return f
}

// Fig9 reproduces Figure 9: the difference Tr - Tl in milliseconds,
// decreasing with the thread count as remote fetches parallelize.
func Fig9() *Figure {
	threads, local, remote := remoteLocalTimes()
	f := &Figure{
		ID:     "fig9",
		Title:  "Difference of remote and local execution time",
		XLabel: "threads",
		YLabel: "(Tr - Tl) (ms)",
		Series: []Series{{Name: "Tr - Tl"}},
	}
	for i, n := range threads {
		f.Series[0].Points = append(f.Series[0].Points, Point{float64(n), (remote[i] - local[i]) * 1000})
	}
	return f
}
