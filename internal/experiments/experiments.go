// Package experiments regenerates every measured figure of the paper's
// evaluation (§5) on the virtual-time simulator with the calibrated KSR1
// cost model. Each FigNN function returns the figure's data series; the
// bench harness (bench_test.go, cmd/dbs3-bench) prints them, and the package
// tests assert the paper's shape claims (who wins, by how much, where the
// crossovers fall).
package experiments

import (
	"fmt"
	"strings"
)

// Point is one measurement.
type Point struct {
	X, Y float64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Y returns the series value at x (exact match), or NaN-free ok=false.
func (s Series) Y(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is one reproduced figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Find returns the named series.
func (f *Figure) Find(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// Table renders the figure as an aligned text table, one row per X value,
// one column per series — the paper's rows/series in plain text.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	// Collect the union of X values in first-series order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	fmt.Fprintf(&b, "%16s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " | %22s", s.Name)
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%16.3f", x)
		for _, s := range f.Series {
			if y, ok := s.Y(x); ok {
				fmt.Fprintf(&b, " | %22.4f", y)
			} else {
				fmt.Fprintf(&b, " | %22s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// All runs every figure driver, in paper order, followed by the extension
// experiments (the paper's §6 future work).
func All() []*Figure {
	return []*Figure{
		Fig8(), Fig9(), Fig12(), Fig13(), Fig14(), Fig15(), Fig16(), Fig17(), Fig18(), Fig19(),
		ExtGrain(),
	}
}

// ByID returns one figure driver by id ("8", "9", "12"..."19").
func ByID(id string) (*Figure, error) {
	switch id {
	case "8":
		return Fig8(), nil
	case "9":
		return Fig9(), nil
	case "12":
		return Fig12(), nil
	case "13":
		return Fig13(), nil
	case "14":
		return Fig14(), nil
	case "15":
		return Fig15(), nil
	case "16":
		return Fig16(), nil
	case "17":
		return Fig17(), nil
	case "18":
		return Fig18(), nil
	case "19":
		return Fig19(), nil
	case "grain", "ext-grain":
		return ExtGrain(), nil
	default:
		return nil, fmt.Errorf("experiments: no figure %q (have 8, 9, 12-19, grain)", id)
	}
}
