package experiments

import (
	"math"
	"strings"
	"testing"
)

// These tests pin the paper's qualitative claims — who wins, by what factor,
// where the crossovers fall — for every reproduced figure. Absolute numbers
// are calibration-dependent; shapes are the reproduction target.

func TestFig8RemoteAboveLocalAndDecreasing(t *testing.T) {
	f := Fig8()
	remote, local := f.Find("Remote execution"), f.Find("Local execution")
	if remote == nil || local == nil {
		t.Fatal("missing series")
	}
	for i := range remote.Points {
		r, l := remote.Points[i].Y, local.Points[i].Y
		if r < l {
			t.Errorf("n=%v: remote %v below local %v", remote.Points[i].X, r, l)
		}
		// The paper reports the remote overhead at ~4% of execution time.
		if pct := (r - l) / r; pct < 0.02 || pct > 0.07 {
			t.Errorf("n=%v: overhead %.1f%%, paper says ~4%%", remote.Points[i].X, pct*100)
		}
		if i > 0 && remote.Points[i].Y > remote.Points[i-1].Y {
			t.Errorf("remote time increased with threads at n=%v", remote.Points[i].X)
		}
	}
}

func TestFig9DeltaDecreasesWithThreads(t *testing.T) {
	f := Fig9()
	s := f.Series[0]
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y > s.Points[i-1].Y+1e-9 {
			t.Errorf("Tr-Tl grew from n=%v to n=%v", s.Points[i-1].X, s.Points[i].X)
		}
	}
	// Roughly 4x shrink from 5 to 30 threads (remote fetches parallelize).
	first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
	if first/last < 3 {
		t.Errorf("Tr-Tl shrank only %vx across the sweep", first/last)
	}
}

func TestFig12AssocJoinInsensitiveToSkew(t *testing.T) {
	f := Fig12()
	measured := f.Find("Measured execution time (Random)")
	tworst := f.Find("Tworst")
	base := measured.Points[0].Y
	for i, p := range measured.Points {
		// The paper: "The execution time measured is constant whatever the
		// skew" — allow 3% wiggle.
		if dev := math.Abs(p.Y-base) / base; dev > 0.03 {
			t.Errorf("theta=%v: measured deviates %.1f%% from flat", p.X, dev*100)
		}
		// Tworst must upper-bound the measurement, within measurement noise.
		if p.Y > tworst.Points[i].Y*1.005 {
			t.Errorf("theta=%v: measured %v above Tworst %v", p.X, p.Y, tworst.Points[i].Y)
		}
	}
	// "Even in the worst case, the maximum deviation is small (3%)".
	worstDev := 0.0
	for _, p := range tworst.Points {
		if dev := (p.Y - base) / base; dev > worstDev {
			worstDev = dev
		}
	}
	if worstDev > 0.035 {
		t.Errorf("Tworst deviates %.1f%% from base, paper says ~3%%", worstDev*100)
	}
}

func TestFig13LPTBeatsRandomUnderSkew(t *testing.T) {
	f := Fig13()
	random, lpt, tworst := f.Find("Random consumption strategy"), f.Find("LPT consumption strategy"), f.Find("Tworst")
	ideal := lpt.Points[0].Y
	for i := range random.Points {
		theta := random.Points[i].X
		if lpt.Points[i].Y > random.Points[i].Y+1e-9 {
			t.Errorf("theta=%v: LPT %v worse than Random %v", theta, lpt.Points[i].Y, random.Points[i].Y)
		}
		if random.Points[i].Y > tworst.Points[i].Y*1.005 {
			t.Errorf("theta=%v: Random above Tworst", theta)
		}
		// "LPT ... remains insensitive to skew up to a skew factor of 0.8
		// (less than 2% overhead with respect to the ideal time)".
		if theta <= 0.8 {
			if dev := lpt.Points[i].Y/ideal - 1; dev > 0.02 {
				t.Errorf("theta=%v: LPT deviates %.1f%% from ideal, paper says <2%%", theta, dev*100)
			}
		}
	}
	// "The inflection after 0.8" — at Zipf 1 the longest activation bounds
	// the time well above ideal.
	lptAt1, _ := lpt.Y(1)
	if lptAt1 < ideal*1.4 {
		t.Errorf("no inflection: LPT at Zipf 1 = %v vs ideal %v", lptAt1, ideal)
	}
	// Random at Zipf 1 lands roughly at the paper's ~2.2x ideal.
	randAt1, _ := random.Y(1)
	if randAt1 < ideal*1.6 {
		t.Errorf("Random at Zipf 1 = %v, expected heavy degradation", randAt1)
	}
}

func TestFig14AssocJoinSpeedup(t *testing.T) {
	f := Fig14()
	un, sk := f.Find("Unskewed data"), f.Find("Skewed data (Zipf = 1)")
	// ">60 with 70 processors".
	u70, _ := un.Y(70)
	if u70 < 60 {
		t.Errorf("unskewed speed-up at 70 = %v, paper reports > 60", u70)
	}
	// Skew costs at most the analytical 11.7% (measured < 5% in the paper;
	// the simulator's pipeline stays within the bound).
	for i := range un.Points {
		ratio := un.Points[i].Y / sk.Points[i].Y
		if ratio > 1.125 {
			t.Errorf("n=%v: skew cost %.1f%%, bound is 11.7%%", un.Points[i].X, (ratio-1)*100)
		}
	}
	// "Speed-up is decreasing after 70".
	u100, _ := un.Y(100)
	if u100 >= u70 {
		t.Errorf("speed-up should decline past 70 processors: %v at 100 vs %v at 70", u100, u70)
	}
}

func TestFig15IdealJoinCeilings(t *testing.T) {
	f := Fig15()
	ceilings := []struct {
		series string
		nmax   float64
	}{
		{"Zipf = 0.4", 40},
		{"Zipf = 0.6", 19},
		{"Zipf = 1", 6},
	}
	for _, c := range ceilings {
		s := f.Find(c.series)
		if s == nil {
			t.Fatalf("missing series %q", c.series)
		}
		peak := 0.0
		for _, p := range s.Points {
			if p.Y > peak {
				peak = p.Y
			}
		}
		// The ceiling is nmax (a small tolerance for rounding): "the
		// speed-up reaches a ceiling ... nmax = 6 with Zipf = 1, 19 with
		// 0.6 and 40 with 0.4".
		if peak > c.nmax+1 {
			t.Errorf("%s: peak speed-up %v exceeds nmax %v", c.series, peak, c.nmax)
		}
		if peak < c.nmax*0.85 {
			t.Errorf("%s: peak speed-up %v never approaches nmax %v", c.series, peak, c.nmax)
		}
		// Past the ceiling the curve must not keep climbing: compare the
		// value at 100 threads with the peak.
		at100, _ := s.Y(100)
		if at100 > peak {
			t.Errorf("%s: still climbing at 100 threads", c.series)
		}
	}
	un := f.Find("Unskewed data")
	u70, _ := un.Y(70)
	if u70 < 60 {
		t.Errorf("unskewed speed-up at 70 = %v, paper reports > 60", u70)
	}
}

func TestFig16OverheadSlopes(t *testing.T) {
	f := Fig16()
	slope := func(s *Series, x1, x2 float64) float64 {
		y1, ok1 := s.Y(x1)
		y2, ok2 := s.Y(x2)
		if !ok1 || !ok2 {
			t.Fatalf("missing points at %v/%v", x1, x2)
		}
		return (y2 - y1) / (x2 - x1)
	}
	// "0.45 ms/degree for IdealJoin and 4 ms/degree for AssocJoin". Measure
	// the secant over the d-multiples of 20 (no quantization noise).
	ideal := slope(f.Find("Overhead for IdealJoin"), 100, 1500)
	if ideal < 0.45e-3*0.5 || ideal > 0.45e-3*1.6 {
		t.Errorf("IdealJoin overhead slope = %.3g s/degree, paper says 0.45 ms", ideal)
	}
	assoc := slope(f.Find("Overhead for AssocJoin"), 100, 1500)
	if assoc < 4e-3*0.6 || assoc > 4e-3*1.5 {
		t.Errorf("AssocJoin overhead slope = %.3g s/degree, paper says 4 ms", assoc)
	}
	if assoc < 4*ideal {
		t.Errorf("AssocJoin slope %.3g should dwarf IdealJoin slope %.3g", assoc, ideal)
	}
}

func TestFig17MinimaWhereOverheadDominates(t *testing.T) {
	f := Fig17()
	argmin := func(s *Series) float64 {
		best, bestY := 0.0, math.Inf(1)
		for _, p := range s.Points {
			if p.Y < bestY {
				best, bestY = p.X, p.Y
			}
		}
		return best
	}
	// "The overhead dominates the gain when d > 1000 for AssocJoin and
	// d > 1400 for IdealJoin."
	assocMin := argmin(f.Find("AssocJoin execution time"))
	idealMin := argmin(f.Find("IdealJoin execution time"))
	if assocMin < 500 || assocMin > 1250 {
		t.Errorf("AssocJoin minimum at d=%v, paper says ~1000", assocMin)
	}
	if idealMin < 1250 {
		t.Errorf("IdealJoin minimum at d=%v, paper says ~1400", idealMin)
	}
	if assocMin >= idealMin {
		t.Errorf("AssocJoin minimum (d=%v) must precede IdealJoin's (d=%v)", assocMin, idealMin)
	}
	// Execution times stay in the paper's band (4-12 s axis, small
	// calibration slack).
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Y < 3 || p.Y > 16 {
				t.Errorf("%s at d=%v: %v s outside the expected band", s.Name, p.X, p.Y)
			}
		}
	}
}

func TestFig18SkewOverheadFallsWithPartitioning(t *testing.T) {
	f := Fig18()
	nl, idx, worst := f.Find("Ideal Join (nested loop)"), f.Find("Ideal Join (temp. index)"), f.Find("vworst")
	for i := range nl.Points {
		d := nl.Points[i].X
		// Measurements must respect the analytical bound.
		if nl.Points[i].Y > worst.Points[i].Y+0.02 {
			t.Errorf("d=%v: nested-loop v %v above vworst %v", d, nl.Points[i].Y, worst.Points[i].Y)
		}
		if idx.Points[i].Y > worst.Points[i].Y+0.02 {
			t.Errorf("d=%v: temp-index v %v above vworst %v", d, idx.Points[i].Y, worst.Points[i].Y)
		}
		// "The two curves are almost identical ... independent of the join
		// algorithm."
		if math.Abs(nl.Points[i].Y-idx.Points[i].Y) > 0.35 {
			t.Errorf("d=%v: algorithms diverge (nl=%v idx=%v)", d, nl.Points[i].Y, idx.Points[i].Y)
		}
	}
	// High partitioning defeats the skew: v at d=20 is large, v at d>=500
	// is small.
	first, _ := nl.Y(20)
	late, _ := nl.Y(500)
	if first < 1 {
		t.Errorf("v at d=20 = %v; triggered skew penalty should be severe", first)
	}
	if late > 0.1 {
		t.Errorf("v at d=500 = %v; high partitioning should absorb the skew", late)
	}
	// vworst itself decreases in d.
	for i := 1; i < len(worst.Points); i++ {
		if worst.Points[i].Y > worst.Points[i-1].Y {
			t.Errorf("vworst not decreasing at d=%v", worst.Points[i].X)
		}
	}
}

func TestFig19SavedTimeGrows(t *testing.T) {
	f := Fig19()
	saved := f.Find("Saved time, Ideal Join (temp. index)")
	t0 := f.Find("T0 (unskewed execution time)")
	if saved.Points[0].Y != 0 {
		t.Errorf("saved time at the base degree = %v, want 0", saved.Points[0].Y)
	}
	for i := 1; i < len(saved.Points); i++ {
		if saved.Points[i].Y < saved.Points[i-1].Y-0.3 {
			t.Errorf("saved time fell at d=%v", saved.Points[i].X)
		}
	}
	final := saved.Points[len(saved.Points)-1].Y
	if final < 3 {
		t.Errorf("final saved time = %v s, paper saves several seconds", final)
	}
	// T0 is a constant reference near the paper's 7.34 s.
	for _, p := range t0.Points {
		if p.Y != t0.Points[0].Y {
			t.Error("T0 reference must be constant")
		}
	}
	if t0.Points[0].Y < 4 || t0.Points[0].Y > 11 {
		t.Errorf("T0 = %v, paper reports 7.34 s", t0.Points[0].Y)
	}
}

func TestAllAndByID(t *testing.T) {
	figs := All()
	if len(figs) != 11 {
		t.Fatalf("All returned %d figures", len(figs))
	}
	for _, f := range figs {
		id := strings.TrimPrefix(f.ID, "fig")
		got, err := ByID(id)
		if err != nil {
			t.Errorf("ByID(%s): %v", id, err)
			continue
		}
		if got.ID != f.ID {
			t.Errorf("ByID(%s) = %s", id, got.ID)
		}
		if len(f.Series) == 0 {
			t.Errorf("%s has no series", f.ID)
		}
		table := f.Table()
		if !strings.Contains(table, f.ID) {
			t.Errorf("%s table missing id header", f.ID)
		}
	}
	if _, err := ByID("99"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Name: "x", Points: []Point{{1, 10}, {2, 20}}}
	if y, ok := s.Y(2); !ok || y != 20 {
		t.Errorf("Y(2) = %v,%v", y, ok)
	}
	if _, ok := s.Y(3); ok {
		t.Error("Y(3) should miss")
	}
	f := &Figure{Series: []Series{s}}
	if f.Find("x") == nil || f.Find("nope") != nil {
		t.Error("Find broken")
	}
}

// The §6 future-work extension: finer trigger grains lift the skewed
// triggered join's speed-up ceiling far above nmax ~ 6.
func TestExtGrainLiftsSkewCeiling(t *testing.T) {
	f := ExtGrain()
	peak := func(name string) float64 {
		s := f.Find(name)
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		best := 0.0
		for _, p := range s.Points {
			if p.Y > best {
				best = p.Y
			}
		}
		return best
	}
	whole := peak("Whole-fragment triggers (paper)")
	g20 := peak("Grain = 20 probe tuples")
	g2 := peak("Grain = 2 probe tuples")
	if whole > 7 {
		t.Errorf("whole-fragment ceiling = %v, expected ~nmax 6", whole)
	}
	if g20 < 3*whole {
		t.Errorf("grain 20 ceiling = %v, expected several times the whole-fragment %v", g20, whole)
	}
	if g2 < g20 {
		t.Errorf("finer grain should not hurt: g2=%v g20=%v", g2, g20)
	}
	if g2 < 40 {
		t.Errorf("grain 2 ceiling = %v, expected near-linear scaling", g2)
	}
}
