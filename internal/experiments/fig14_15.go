package experiments

import (
	"dbs3/internal/analytic"
	"dbs3/internal/sim"
	"dbs3/internal/zipf"
)

// Expt 2 (§5.5): vary the degree of parallelism. Larger relations (A = 200K,
// B' = 20K, d = 200), threads from 1 to 100 on 70 processors.

const (
	spdACard  = 200_000
	spdBCard  = 20_000
	spdDegree = 200
)

var spdThreads = []int{1, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// assocSpeedupSpec builds the AssocJoin pipeline of the speed-up experiment.
func assocSpeedupSpec(theta float64, threads int) (sim.PipelineSpec, sim.Config) {
	m := calibrated
	aSizes := zipf.Sizes(spdACard, spdDegree, theta)
	bSizes := sim.UniformSizes(spdBCard, spdDegree)
	prod := m.TransmitTriggerCosts(bSizes)
	per := m.NestedLoopProbeCosts(aSizes)
	emis := make([][]int, spdDegree)
	for i := 0; i < spdDegree; i++ {
		for j := 0; j < bSizes[i]; j++ {
			emis[i] = append(emis[i], (i+j)%spdDegree)
		}
	}
	var prodWork, consWork float64
	for i := range prod {
		prodWork += prod[i]
		for _, tgt := range emis[i] {
			consWork += per[tgt]
		}
	}
	split := sim.SplitThreads(threads, []float64{prodWork, consWork})
	return sim.PipelineSpec{
		ProducerCosts: prod, Emissions: emis, ConsumerPerTuple: per,
		ProducerThreads: split[0], ConsumerThreads: split[1],
		QueueOverheadProducer: m.TriggeredQueueOverhead,
		QueueOverheadConsumer: m.PipelinedQueueOverhead,
	}, m.Config(1)
}

// Fig14 reproduces Figure 14: AssocJoin speed-up for unskewed and fully
// skewed (Zipf 1) data, with the theoretical linear speed-up (capped by the
// 70 processors). The pipelined operation's 20K activations absorb even full
// skew: the paper measures under 5% from ideal (the bound gives 11.7%).
func Fig14() *Figure {
	f := &Figure{
		ID:     "fig14",
		Title:  "AssocJoin speed-up (A=200K, B'=20K, d=200, 70 processors)",
		XLabel: "threads",
		YLabel: "speed-up",
		Series: []Series{
			{Name: "Unskewed data"},
			{Name: "Skewed data (Zipf = 1)"},
			{Name: "Theoretical speed-up"},
		},
	}
	for si, theta := range []float64{0, 1} {
		spec1, cfg := assocSpeedupSpec(theta, 1)
		seq := sim.PipelineSequential(spec1, cfg)
		for _, n := range spdThreads {
			var t float64
			if n == 1 {
				t = seq
			} else {
				spec, cfg := assocSpeedupSpec(theta, n)
				t = sim.Pipeline(spec, cfg).Time
			}
			f.Series[si].Points = append(f.Series[si].Points, Point{float64(n), seq / t})
		}
	}
	for _, n := range spdThreads {
		f.Series[2].Points = append(f.Series[2].Points, Point{float64(n), analytic.SpeedupBound(n, calibrated.Machine.UsableProcessors, 1e18)})
	}
	return f
}

// Fig15 reproduces Figure 15: IdealJoin speed-up for Zipf 0, 0.4, 0.6 and 1.
// The triggered operation has only a = 200 activations, so speed-up ceilings
// at nmax = a*P/Pmax: about 40 (0.4), 19 (0.6) and 6 (1).
func Fig15() *Figure {
	f := &Figure{
		ID:     "fig15",
		Title:  "IdealJoin speed-up (A=200K, B'=20K, d=200, 70 processors)",
		XLabel: "threads",
		YLabel: "speed-up",
		Series: []Series{
			{Name: "Unskewed data"},
			{Name: "Zipf = 0.4"},
			{Name: "Zipf = 0.6"},
			{Name: "Zipf = 1"},
			{Name: "Theoretical speed-up"},
		},
	}
	m := calibrated
	cfg := m.Config(1)
	bSizes := sim.UniformSizes(spdBCard, spdDegree)
	for si, theta := range []float64{0, 0.4, 0.6, 1} {
		aSizes := zipf.Sizes(spdACard, spdDegree, theta)
		costs := m.NestedLoopTriggerCosts(aSizes, bSizes, bSizes)
		seq := sim.Triggered(sim.TriggeredSpec{Costs: costs, Threads: 1, QueueOverhead: m.TriggeredQueueOverhead}, cfg).Time
		for _, n := range spdThreads {
			r := sim.Triggered(sim.TriggeredSpec{Costs: costs, Threads: n, Strategy: sim.LPT, QueueOverhead: m.TriggeredQueueOverhead}, cfg)
			f.Series[si].Points = append(f.Series[si].Points, Point{float64(n), seq / r.Time})
		}
	}
	for _, n := range spdThreads {
		f.Series[4].Points = append(f.Series[4].Points, Point{float64(n), analytic.SpeedupBound(n, m.Machine.UsableProcessors, 1e18)})
	}
	return f
}
