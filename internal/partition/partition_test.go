package partition

import (
	"testing"
	"testing/quick"

	"dbs3/internal/relation"
)

func intRel(t *testing.T, name string, keys ...int64) *relation.Relation {
	t.Helper()
	s := relation.MustSchema(relation.Column{Name: "k", Type: relation.TInt}, relation.Column{Name: "pay", Type: relation.TString})
	r := relation.New(name, s)
	for _, k := range keys {
		r.MustAppend(relation.NewTuple(relation.Int(k), relation.Str("p")))
	}
	return r
}

func TestNewHashValidation(t *testing.T) {
	r := intRel(t, "r", 1)
	if _, err := NewHash(r.Schema, []string{"k"}, 0); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := NewHash(r.Schema, nil, 4); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := NewHash(r.Schema, []string{"absent"}, 4); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestHashCoLocatesEqualKeys(t *testing.T) {
	r := intRel(t, "r", 1, 1, 2, 2, 3, 3)
	h, err := NewHash(r.Schema, []string{"k"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(r.Tuples); i += 2 {
		if h.FragmentOf(r.Tuples[i]) != h.FragmentOf(r.Tuples[i+1]) {
			t.Fatalf("equal keys landed in different fragments")
		}
	}
	if got := h.Degree(); got != 4 {
		t.Errorf("Degree = %d", got)
	}
	if k := h.Key(); len(k) != 1 || k[0] != "k" {
		t.Errorf("Key = %v", k)
	}
}

func TestModPartitioner(t *testing.T) {
	r := intRel(t, "r", 0, 1, 2, 3, 4, -1)
	m, err := NewMod(r.Schema, "k", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2} // -1 mod 3 must be non-negative 2
	for i, tup := range r.Tuples {
		if got := m.FragmentOf(tup); got != want[i] {
			t.Errorf("FragmentOf(k=%v) = %d, want %d", tup[0], got, want[i])
		}
	}
}

func TestNewModValidation(t *testing.T) {
	s := relation.MustSchema(relation.Column{Name: "s", Type: relation.TString})
	if _, err := NewMod(s, "s", 3); err == nil {
		t.Error("string column accepted for modulo partitioning")
	}
	if _, err := NewMod(s, "absent", 3); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := NewMod(relation.WisconsinSchema, "unique2", 0); err == nil {
		t.Error("degree 0 accepted")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr, err := NewRoundRobin(3)
	if err != nil {
		t.Fatal(err)
	}
	got := []int{rr.FragmentOf(nil), rr.FragmentOf(nil), rr.FragmentOf(nil), rr.FragmentOf(nil)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin sequence = %v, want %v", got, want)
		}
	}
	if rr.Key() != nil {
		t.Error("round robin should have no key")
	}
	if _, err := NewRoundRobin(0); err == nil {
		t.Error("degree 0 accepted")
	}
}

func TestPartitionLossless(t *testing.T) {
	r := relation.Wisconsin("A", 2000, 3)
	h, err := NewHash(r.Schema, []string{"unique2"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(r, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cardinality() != 2000 || p.Degree() != 16 {
		t.Fatalf("cardinality=%d degree=%d", p.Cardinality(), p.Degree())
	}
	if !p.Union().EqualMultiset(r) {
		t.Error("partition/union must preserve the tuple multiset")
	}
}

func TestPartitionDiskPlacementRoundRobin(t *testing.T) {
	r := relation.Wisconsin("A", 100, 3)
	h, _ := NewHash(r.Schema, []string{"unique2"}, 10)
	p, err := Partition(r, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range p.Disk {
		if d != i%4 {
			t.Fatalf("fragment %d on disk %d, want %d", i, d, i%4)
		}
	}
	if _, err := Partition(r, h, 0); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestHashReasonablyBalancedOnUniqueKey(t *testing.T) {
	r := relation.Wisconsin("A", 10000, 5)
	h, _ := NewHash(r.Schema, []string{"unique2"}, 20)
	p, err := Partition(r, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, sz := range p.FragmentSizes() {
		if sz < 300 || sz > 700 { // mean 500; allow wide tolerance
			t.Errorf("fragment %d badly unbalanced: %d tuples", i, sz)
		}
	}
}

func TestFromFragments(t *testing.T) {
	s := relation.MustSchema(relation.Column{Name: "k", Type: relation.TInt})
	frags := [][]relation.Tuple{
		{relation.NewTuple(relation.Int(0))},
		{relation.NewTuple(relation.Int(1)), relation.NewTuple(relation.Int(3))},
	}
	p, err := FromFragments("f", s, []string{"k"}, frags, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cardinality() != 3 || p.Degree() != 2 {
		t.Fatalf("cardinality=%d degree=%d", p.Cardinality(), p.Degree())
	}
	sizes := p.FragmentSizes()
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Errorf("sizes = %v", sizes)
	}
	if _, err := FromFragments("f", s, nil, nil, 1); err == nil {
		t.Error("empty fragments accepted")
	}
	if _, err := FromFragments("f", s, nil, frags, 0); err == nil {
		t.Error("zero disks accepted")
	}
}

// Property: hash partitioning preserves cardinality and never emits an
// out-of-range fragment, for any degree and key set.
func TestPartitionCardinalityProperty(t *testing.T) {
	f := func(nRaw uint8, dRaw uint8, seed int64) bool {
		n := int(nRaw)%200 + 1
		d := int(dRaw)%32 + 1
		r := relation.Wisconsin("A", n, seed)
		h, err := NewHash(r.Schema, []string{"unique1"}, d)
		if err != nil {
			return false
		}
		p, err := Partition(r, h, 2)
		if err != nil {
			return false
		}
		return p.Cardinality() == n && p.Union().EqualMultiset(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPartitionedString(t *testing.T) {
	r := intRel(t, "r", 1, 2)
	m, _ := NewMod(r.Schema, "k", 2)
	p, _ := Partition(r, m, 1)
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestFragmentOfKeyMatchesFragmentOf(t *testing.T) {
	r := relation.Wisconsin("A", 500, 3)
	h, _ := NewHash(r.Schema, []string{"unique2"}, 32)
	u2 := r.Schema.MustIndex("unique2")
	for _, tup := range r.Tuples {
		byTuple := h.FragmentOf(tup)
		byKey := h.FragmentOfKey([]relation.Value{tup[u2]})
		if byTuple != byKey {
			t.Fatalf("hash: FragmentOf=%d FragmentOfKey=%d", byTuple, byKey)
		}
	}
	m, _ := NewMod(r.Schema, "unique2", 32)
	for _, tup := range r.Tuples {
		if m.FragmentOf(tup) != m.FragmentOfKey([]relation.Value{tup[u2]}) {
			t.Fatal("mod: FragmentOf and FragmentOfKey disagree")
		}
	}
}

func TestSignatures(t *testing.T) {
	r := relation.Wisconsin("A", 10, 3)
	h, _ := NewHash(r.Schema, []string{"unique2"}, 7)
	m, _ := NewMod(r.Schema, "unique2", 7)
	rr, _ := NewRoundRobin(7)
	if h.Signature() != "hash/7" || m.Signature() != "mod/7" || rr.Signature() != "rr/7" {
		t.Errorf("signatures = %q %q %q", h.Signature(), m.Signature(), rr.Signature())
	}
	if h.Signature() == m.Signature() {
		t.Error("hash and mod must not share a signature")
	}
}

func TestRoundRobinKeyRoutingPanics(t *testing.T) {
	rr, _ := NewRoundRobin(3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	rr.FragmentOfKey(nil)
}

func TestModFragmentOfKeyArity(t *testing.T) {
	r := relation.Wisconsin("A", 10, 3)
	m, _ := NewMod(r.Schema, "unique2", 7)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong key arity")
		}
	}()
	m.FragmentOfKey([]relation.Value{relation.Int(1), relation.Int(2)})
}

func TestRangePartitioner(t *testing.T) {
	r := intRel(t, "r", -5, 0, 9, 10, 11, 99, 100, 1000)
	rp, err := NewRange(r.Schema, "k", []int64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Degree() != 3 {
		t.Fatalf("Degree = %d", rp.Degree())
	}
	want := []int{0, 0, 0, 1, 1, 1, 2, 2} // <10 | [10,100) | >=100
	for i, tup := range r.Tuples {
		if got := rp.FragmentOf(tup); got != want[i] {
			t.Errorf("FragmentOf(k=%v) = %d, want %d", tup[0], got, want[i])
		}
	}
	if k := rp.Key(); len(k) != 1 || k[0] != "k" {
		t.Errorf("Key = %v", k)
	}
	if rp.Signature() != "range[10 100]" {
		t.Errorf("Signature = %q", rp.Signature())
	}
	// FragmentOfKey agrees with FragmentOf.
	for _, tup := range r.Tuples {
		if rp.FragmentOf(tup) != rp.FragmentOfKey([]relation.Value{tup[0]}) {
			t.Fatal("FragmentOf and FragmentOfKey disagree")
		}
	}
}

func TestNewRangeValidation(t *testing.T) {
	s := relation.MustSchema(
		relation.Column{Name: "k", Type: relation.TInt},
		relation.Column{Name: "s", Type: relation.TString},
	)
	if _, err := NewRange(s, "k", nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewRange(s, "k", []int64{5, 5}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := NewRange(s, "s", []int64{1}); err == nil {
		t.Error("string column accepted")
	}
	if _, err := NewRange(s, "absent", []int64{1}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestRangePartitionLossless(t *testing.T) {
	r := relation.Wisconsin("A", 1000, 3)
	rp, err := NewRange(r.Schema, "unique2", []int64{250, 500, 750})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(r, rp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree() != 4 || !p.Union().EqualMultiset(r) {
		t.Error("range partition lost tuples")
	}
	// unique2 is sequential 0..999: exactly 250 per fragment.
	for i, sz := range p.FragmentSizes() {
		if sz != 250 {
			t.Errorf("fragment %d = %d tuples", i, sz)
		}
	}
	// Order property: every key in fragment i is below every key in i+1.
	u2 := r.Schema.MustIndex("unique2")
	for i := 0; i+1 < p.Degree(); i++ {
		maxI := int64(-1 << 62)
		for _, tup := range p.Fragments[i] {
			if v := tup[u2].AsInt(); v > maxI {
				maxI = v
			}
		}
		for _, tup := range p.Fragments[i+1] {
			if tup[u2].AsInt() <= maxI {
				t.Fatalf("range order violated between fragments %d and %d", i, i+1)
			}
		}
	}
}

func TestRangeKeyArityPanics(t *testing.T) {
	s := relation.MustSchema(relation.Column{Name: "k", Type: relation.TInt})
	rp, _ := NewRange(s, "k", []int64{10})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong key arity")
		}
	}()
	rp.FragmentOfKey(nil)
}
