package partition

import (
	"fmt"

	"dbs3/internal/relation"
)

// Partitioned is a statically partitioned relation: the unit the Lera-par
// extended view parallelizes over. Fragment i feeds operator instance i.
type Partitioned struct {
	Name   string
	Schema *relation.Schema
	// Key holds the partitioning attribute names; empty means the placement
	// does not co-locate keys (round-robin).
	Key []string
	// Fragments holds the tuples of each fragment.
	Fragments [][]relation.Tuple
	// Disk[i] is the disk holding fragment i (round-robin placement).
	Disk []int
}

// Partition splits r into fragments with f and places them on numDisks disks
// round-robin, mirroring the paper's storage model ("relation fragments are
// distributed onto disks in a round-robin fashion").
func Partition(r *relation.Relation, f Func, numDisks int) (*Partitioned, error) {
	if numDisks <= 0 {
		return nil, fmt.Errorf("partition: need at least one disk, got %d", numDisks)
	}
	d := f.Degree()
	p := &Partitioned{
		Name:      r.Name,
		Schema:    r.Schema,
		Key:       f.Key(),
		Fragments: make([][]relation.Tuple, d),
		Disk:      make([]int, d),
	}
	for i := 0; i < d; i++ {
		p.Disk[i] = i % numDisks
	}
	for _, t := range r.Tuples {
		fr := f.FragmentOf(t)
		if fr < 0 || fr >= d {
			return nil, fmt.Errorf("partition: function returned fragment %d outside [0,%d)", fr, d)
		}
		p.Fragments[fr] = append(p.Fragments[fr], t)
	}
	return p, nil
}

// FromFragments builds a Partitioned directly from pre-split fragments; the
// skewed database generators use it to impose exact fragment cardinalities.
func FromFragments(name string, schema *relation.Schema, key []string, fragments [][]relation.Tuple, numDisks int) (*Partitioned, error) {
	if numDisks <= 0 {
		return nil, fmt.Errorf("partition: need at least one disk, got %d", numDisks)
	}
	if len(fragments) == 0 {
		return nil, fmt.Errorf("partition: need at least one fragment")
	}
	p := &Partitioned{Name: name, Schema: schema, Key: append([]string(nil), key...), Fragments: fragments, Disk: make([]int, len(fragments))}
	for i := range fragments {
		p.Disk[i] = i % numDisks
	}
	return p, nil
}

// Degree returns the degree of partitioning.
func (p *Partitioned) Degree() int { return len(p.Fragments) }

// Cardinality returns the total number of tuples across fragments.
func (p *Partitioned) Cardinality() int {
	n := 0
	for _, f := range p.Fragments {
		n += len(f)
	}
	return n
}

// FragmentSizes returns the per-fragment cardinalities, the quantity the
// paper's skew analysis is built on.
func (p *Partitioned) FragmentSizes() []int {
	s := make([]int, len(p.Fragments))
	for i, f := range p.Fragments {
		s[i] = len(f)
	}
	return s
}

// Union flattens the fragments back into a single relation (fragment order,
// then intra-fragment order). Tests use it to check partitioning is lossless.
func (p *Partitioned) Union() *relation.Relation {
	r := relation.New(p.Name, p.Schema)
	for _, f := range p.Fragments {
		r.Tuples = append(r.Tuples, f...)
	}
	return r
}

// String summarizes the partitioned relation.
func (p *Partitioned) String() string {
	return fmt.Sprintf("%s [%d tuples, %d fragments, key %v]", p.Name, p.Cardinality(), p.Degree(), p.Key)
}
