// Package partition implements the static data partitioning side of DBS3's
// hybrid execution model. Relations are horizontally partitioned by a
// partitioning function into d fragments (the degree of partitioning) and
// fragments are placed on disks round-robin, so d can exceed the number of
// disks (§2: "the degree of partitioning can be independent of the number of
// disks"). The dynamic side — allocating threads independently of d — lives
// in the core package.
package partition

import (
	"fmt"

	"dbs3/internal/relation"
)

// Func maps a tuple to its fragment index in [0, Degree).
type Func interface {
	// Degree returns the number of fragments the function produces.
	Degree() int
	// FragmentOf returns the fragment index for the tuple.
	FragmentOf(t relation.Tuple) int
	// FragmentOfKey returns the fragment index for an extracted key (the
	// partitioning attribute values in Key() order). Dynamic redistribution
	// uses it to route probe tuples to the fragment that holds matching
	// build tuples: co-location requires routing with the build relation's
	// own partitioning function, not an arbitrary hash.
	FragmentOfKey(key []relation.Value) int
	// FragmentOfCols returns the fragment index for the key found at the
	// given column positions of t (in Key() order). It is FragmentOfKey
	// without the projection: the engine's pipelined routing calls it once
	// per redistributed tuple, so it must not allocate.
	FragmentOfCols(t relation.Tuple, cols []int) int
	// Key returns the partitioning attribute names (empty when the function
	// does not depend on tuple content, e.g. round-robin).
	Key() []string
	// Signature identifies the function family and degree (e.g. "hash/200")
	// so the plan validator can detect incompatibly partitioned join
	// operands: two relations co-locate equal keys only if their functions
	// share a signature.
	Signature() string
}

// Hash partitions by hashing one or more attributes, the paper's storage
// model ("Relations are partitioned by hashing on one or more attributes").
type Hash struct {
	cols   []int
	names  []string
	degree int
}

// NewHash builds a hash partitioner over the named key columns.
func NewHash(schema *relation.Schema, key []string, degree int) (*Hash, error) {
	if degree <= 0 {
		return nil, fmt.Errorf("partition: degree must be positive, got %d", degree)
	}
	if len(key) == 0 {
		return nil, fmt.Errorf("partition: hash partitioning needs at least one key column")
	}
	cols := make([]int, len(key))
	for i, name := range key {
		c, ok := schema.Index(name)
		if !ok {
			return nil, fmt.Errorf("partition: key column %q not in schema %s", name, schema)
		}
		cols[i] = c
	}
	return &Hash{cols: cols, names: append([]string(nil), key...), degree: degree}, nil
}

// Degree implements Func.
func (h *Hash) Degree() int { return h.degree }

// Key implements Func.
func (h *Hash) Key() []string { return append([]string(nil), h.names...) }

// FragmentOf implements Func.
func (h *Hash) FragmentOf(t relation.Tuple) int {
	return int(t.HashOn(h.cols) % uint64(h.degree))
}

// FragmentOfKey implements Func.
func (h *Hash) FragmentOfKey(key []relation.Value) int {
	idx := make([]int, len(key))
	for i := range idx {
		idx[i] = i
	}
	return int(relation.Tuple(key).HashOn(idx) % uint64(h.degree))
}

// FragmentOfCols implements Func.
func (h *Hash) FragmentOfCols(t relation.Tuple, cols []int) int {
	return int(t.HashOn(cols) % uint64(h.degree))
}

// Signature implements Func.
func (h *Hash) Signature() string { return fmt.Sprintf("hash/%d", h.degree) }

// Mod partitions an integer key by non-negative modulo. It co-locates equal
// keys like Hash but keeps the key→fragment mapping transparent, which the
// skewed-database generators exploit to place a chosen number of tuples in
// each fragment (tuple placement skew, TPS).
type Mod struct {
	col    int
	name   string
	degree int
	// mask is degree-1 when degree is a power of two, else 0. k&mask equals
	// the non-negative modulo for any signed k (two's complement), replacing
	// the divide in the per-tuple routing path.
	mask int64
}

// NewMod builds a modulo partitioner on the named integer column.
func NewMod(schema *relation.Schema, key string, degree int) (*Mod, error) {
	if degree <= 0 {
		return nil, fmt.Errorf("partition: degree must be positive, got %d", degree)
	}
	c, ok := schema.Index(key)
	if !ok {
		return nil, fmt.Errorf("partition: key column %q not in schema %s", key, schema)
	}
	if schema.Column(c).Type != relation.TInt {
		return nil, fmt.Errorf("partition: modulo partitioning needs an integer column, %q is %s", key, schema.Column(c).Type)
	}
	m := &Mod{col: c, name: key, degree: degree}
	if degree&(degree-1) == 0 {
		m.mask = int64(degree - 1)
	}
	return m, nil
}

// Degree implements Func.
func (m *Mod) Degree() int { return m.degree }

// Key implements Func.
func (m *Mod) Key() []string { return []string{m.name} }

// FragmentOf implements Func.
func (m *Mod) FragmentOf(t relation.Tuple) int {
	return m.fragmentOfInt(t[m.col].AsInt())
}

// FragmentOfKey implements Func.
func (m *Mod) FragmentOfKey(key []relation.Value) int {
	if len(key) != 1 {
		panic(fmt.Sprintf("partition: modulo partitioning takes one key value, got %d", len(key)))
	}
	return m.fragmentOfInt(key[0].AsInt())
}

func (m *Mod) fragmentOfInt(k int64) int {
	if m.mask != 0 {
		return int(k & m.mask)
	}
	v := k % int64(m.degree)
	if v < 0 {
		v += int64(m.degree)
	}
	return int(v)
}

// FragmentOfCols implements Func.
func (m *Mod) FragmentOfCols(t relation.Tuple, cols []int) int {
	if len(cols) != 1 {
		panic(fmt.Sprintf("partition: modulo partitioning takes one key column, got %d", len(cols)))
	}
	return m.fragmentOfInt(t[cols[0]].AsInt())
}

// Signature implements Func.
func (m *Mod) Signature() string { return fmt.Sprintf("mod/%d", m.degree) }

// Range partitions an integer key by split points: fragment i holds keys in
// [Bounds[i-1], Bounds[i]), with open ends. Range placement (used by Bubba
// and Gamma alongside hashing) co-locates equal keys like Hash but also
// keeps key order, which matters for ordered scans and non-equi predicates.
type Range struct {
	col    int
	name   string
	bounds []int64
}

// NewRange builds a range partitioner on the named integer column with the
// given ascending split points; degree = len(bounds) + 1.
func NewRange(schema *relation.Schema, key string, bounds []int64) (*Range, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("partition: range partitioning needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("partition: range bounds must be strictly ascending, got %v", bounds)
		}
	}
	c, ok := schema.Index(key)
	if !ok {
		return nil, fmt.Errorf("partition: key column %q not in schema %s", key, schema)
	}
	if schema.Column(c).Type != relation.TInt {
		return nil, fmt.Errorf("partition: range partitioning needs an integer column, %q is %s", key, schema.Column(c).Type)
	}
	return &Range{col: c, name: key, bounds: append([]int64(nil), bounds...)}, nil
}

// Degree implements Func.
func (r *Range) Degree() int { return len(r.bounds) + 1 }

// Key implements Func.
func (r *Range) Key() []string { return []string{r.name} }

// FragmentOf implements Func.
func (r *Range) FragmentOf(t relation.Tuple) int {
	return r.fragmentOfInt(t[r.col].AsInt())
}

// FragmentOfKey implements Func.
func (r *Range) FragmentOfKey(key []relation.Value) int {
	if len(key) != 1 {
		panic(fmt.Sprintf("partition: range partitioning takes one key value, got %d", len(key)))
	}
	return r.fragmentOfInt(key[0].AsInt())
}

func (r *Range) fragmentOfInt(k int64) int {
	// Binary search for the first bound > k.
	lo, hi := 0, len(r.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.bounds[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// FragmentOfCols implements Func.
func (r *Range) FragmentOfCols(t relation.Tuple, cols []int) int {
	if len(cols) != 1 {
		panic(fmt.Sprintf("partition: range partitioning takes one key column, got %d", len(cols)))
	}
	return r.fragmentOfInt(t[cols[0]].AsInt())
}

// Signature implements Func. Two range partitionings co-locate keys only
// when their split points agree, so the bounds are part of the signature.
func (r *Range) Signature() string { return fmt.Sprintf("range%v", r.bounds) }

// RoundRobin spreads tuples page-less round-robin, the XPRS/Oracle-style
// placement the paper contrasts with ("relations are not stored using a
// parallel storage model but split, page by page, among all the disks").
// It does not co-locate keys, so plans over round-robin relations must
// redistribute before a partitioned join.
type RoundRobin struct {
	degree int
	next   int
}

// NewRoundRobin builds a round-robin partitioner with the given degree.
func NewRoundRobin(degree int) (*RoundRobin, error) {
	if degree <= 0 {
		return nil, fmt.Errorf("partition: degree must be positive, got %d", degree)
	}
	return &RoundRobin{degree: degree}, nil
}

// Degree implements Func.
func (r *RoundRobin) Degree() int { return r.degree }

// Key implements Func. Round-robin has no partitioning key.
func (r *RoundRobin) Key() []string { return nil }

// FragmentOf implements Func. RoundRobin is stateful: successive calls cycle
// through fragments, so a single goroutine must own the partitioning pass.
func (r *RoundRobin) FragmentOf(relation.Tuple) int {
	f := r.next
	r.next = (r.next + 1) % r.degree
	return f
}

// FragmentOfKey implements Func. Round-robin placement does not co-locate
// keys, so key-based routing over it is a plan error caught at validation;
// reaching this method is a bug.
func (r *RoundRobin) FragmentOfKey([]relation.Value) int {
	panic("partition: round-robin placement cannot route by key")
}

// FragmentOfCols implements Func. Like FragmentOfKey, reaching it is a bug.
func (r *RoundRobin) FragmentOfCols(relation.Tuple, []int) int {
	panic("partition: round-robin placement cannot route by key")
}

// Signature implements Func.
func (r *RoundRobin) Signature() string { return fmt.Sprintf("rr/%d", r.degree) }

// BatchFunc is an optional Func extension for the vectorized data plane: a
// partitioner implementing it routes a whole run of tuples in one call,
// appending one destination per tuple to dst. Results are identical to
// calling FragmentOfCols per tuple — batch routing is an amortization, not a
// different placement.
type BatchFunc interface {
	Func
	FragmentsOfCols(ts []relation.Tuple, cols []int, dst []int32) []int32
}

// FragmentsOfCols implements BatchFunc.
func (h *Hash) FragmentsOfCols(ts []relation.Tuple, cols []int, dst []int32) []int32 {
	degree := uint64(h.degree)
	for _, t := range ts {
		dst = append(dst, int32(t.HashOn(cols)%degree))
	}
	return dst
}

// FragmentsOfCols implements BatchFunc.
func (m *Mod) FragmentsOfCols(ts []relation.Tuple, cols []int, dst []int32) []int32 {
	if len(cols) != 1 {
		panic(fmt.Sprintf("partition: modulo partitioning takes one key column, got %d", len(cols)))
	}
	c := cols[0]
	if mask := m.mask; mask != 0 {
		for _, t := range ts {
			dst = append(dst, int32(t[c].AsInt()&mask))
		}
		return dst
	}
	degree := int64(m.degree)
	for _, t := range ts {
		v := t[c].AsInt() % degree
		if v < 0 {
			v += degree
		}
		dst = append(dst, int32(v))
	}
	return dst
}
