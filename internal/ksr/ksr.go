// Package ksr models the Kendall Square Research KSR1, the 72-processor
// machine of the paper's experiments (§5.1-5.2). The KSR1's Allcache system
// is a hardware-managed COMA: memory is physically distributed in 32 MB
// per-processor "local caches" and virtually shared — touching a remote item
// migrates its cache line, at roughly 6x the cost of a local access. Each
// processor also has a small fast subcache; a fragment must be "relatively
// small compared to the size of a local cache" to benefit from caching.
//
// The real machine is a substitution target: this package supplies the cost
// constants the virtual-time simulator (package sim) charges for memory
// behaviour, calibrated against the measurements the paper reports (Figures
// 8 and 9, and the §5.2 "~4% remote overhead" observation).
package ksr

// Machine describes the memory system and processor complement.
type Machine struct {
	// Processors is the machine size; the paper's configuration has 72, of
	// which 70 could be reserved for experiments.
	Processors int
	// UsableProcessors is the number actually reservable.
	UsableProcessors int
	// LocalCacheBytes is each processor's Allcache local cache (32 MB).
	LocalCacheBytes int64
	// EffectiveLocalBytes is the portion of the local cache realistically
	// available to one thread's working set; below this the paper observed
	// that "a local execution cannot be obtained" (under 5 threads for the
	// 200K selection, i.e. ~8.3 MB of relation data per thread).
	EffectiveLocalBytes int64
	// SubcacheBytes is the fast per-processor subcache; fragments that fit
	// it probe at full speed, larger ones pay the locality penalty.
	SubcacheBytes int64
	// CacheLineBytes is the Allcache transfer granularity (128-byte
	// subpages).
	CacheLineBytes int
	// LocalLineAccess is the virtual-time cost of touching a local line.
	LocalLineAccess float64
	// RemoteFactor is the remote/local access cost ratio ("the access to a
	// remote cache line is 6 times that of the access to a local cache
	// line").
	RemoteFactor float64
}

// KSR1 returns the paper's machine. Virtual-time constants are calibrated so
// the Figure 8/9 selection experiment lands on the reported ~4% remote
// overhead.
func KSR1() Machine {
	return Machine{
		Processors:          72,
		UsableProcessors:    70,
		LocalCacheBytes:     32 << 20,
		EffectiveLocalBytes: 8 << 20,
		SubcacheBytes:       100 << 10,
		CacheLineBytes:      128,
		LocalLineAccess:     0.55e-6,
		RemoteFactor:        6,
	}
}

// LinesFor returns the number of cache lines covering n bytes.
func (m Machine) LinesFor(bytes int) int {
	if bytes <= 0 {
		return 0
	}
	return (bytes + m.CacheLineBytes - 1) / m.CacheLineBytes
}

// RemoteExtra is the extra virtual time paid when a tuple of tupleBytes must
// be shipped from a remote local cache instead of being resident: (factor-1)
// times the local line cost, per line.
func (m Machine) RemoteExtra(tupleBytes int) float64 {
	return float64(m.LinesFor(tupleBytes)) * m.LocalLineAccess * (m.RemoteFactor - 1)
}

// LocalResident reports whether a per-thread working set of the given size
// can stay in the thread's local cache, i.e. whether a "local execution" is
// obtainable (§5.2: below 5 threads the 200K selection could not run local).
func (m Machine) LocalResident(workingSetBytes int64) bool {
	return workingSetBytes <= m.EffectiveLocalBytes
}

// LocalityPenalty returns the fraction of probe accesses that miss the fast
// subcache when randomly touching a fragment of fragBytes: 0 when the
// fragment fits the subcache, approaching 1 as the fragment grows. This is
// the §5.2 observation that "each bucket of a relation must be relatively
// small compared to the size of a local cache in order to benefit from
// caching" — the mechanism that keeps raising the useful degree of
// partitioning in Figure 17.
func (m Machine) LocalityPenalty(fragBytes int64) float64 {
	if fragBytes <= m.SubcacheBytes {
		return 0
	}
	return 1 - float64(m.SubcacheBytes)/float64(fragBytes)
}
