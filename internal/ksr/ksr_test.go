package ksr

import (
	"math"
	"testing"
)

func TestKSR1Constants(t *testing.T) {
	m := KSR1()
	if m.Processors != 72 || m.UsableProcessors != 70 {
		t.Errorf("processors = %d/%d, paper has 72 with 70 reservable", m.Processors, m.UsableProcessors)
	}
	if m.LocalCacheBytes != 32<<20 {
		t.Errorf("local cache = %d, paper says 32 MB", m.LocalCacheBytes)
	}
	if m.RemoteFactor != 6 {
		t.Errorf("remote factor = %v, paper says 6x", m.RemoteFactor)
	}
}

func TestLinesFor(t *testing.T) {
	m := KSR1()
	cases := []struct{ bytes, want int }{
		{0, 0}, {-1, 0}, {1, 1}, {128, 1}, {129, 2}, {208, 2}, {256, 2}, {257, 3},
	}
	for _, c := range cases {
		if got := m.LinesFor(c.bytes); got != c.want {
			t.Errorf("LinesFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestRemoteExtraScalesWithFactor(t *testing.T) {
	m := KSR1()
	base := m.RemoteExtra(208) // a Wisconsin tuple spans 2 lines
	want := 2 * m.LocalLineAccess * 5
	if math.Abs(base-want) > 1e-12 {
		t.Errorf("RemoteExtra(208) = %v, want %v", base, want)
	}
	m.RemoteFactor = 1 // no remote penalty
	if m.RemoteExtra(208) != 0 {
		t.Error("factor 1 should cost nothing extra")
	}
}

func TestLocalResidentThreshold(t *testing.T) {
	m := KSR1()
	// The paper's 200K-tuple selection (~41.6 MB of tuples): local
	// execution obtainable from 5 threads up, not with fewer.
	relBytes := int64(200_000 * 208)
	for n := int64(1); n <= 30; n++ {
		resident := m.LocalResident(relBytes / n)
		if n < 5 && resident {
			t.Errorf("n=%d: unexpectedly local-resident", n)
		}
		if n >= 5 && !resident {
			t.Errorf("n=%d: should be local-resident", n)
		}
	}
}

func TestLocalityPenaltyMonotone(t *testing.T) {
	m := KSR1()
	if p := m.LocalityPenalty(50 << 10); p != 0 {
		t.Errorf("small fragment penalty = %v", p)
	}
	small := m.LocalityPenalty(200 << 10)
	big := m.LocalityPenalty(2 << 20)
	if !(small > 0 && big > small && big < 1) {
		t.Errorf("penalties: 200KB=%v 2MB=%v; want increasing in (0,1)", small, big)
	}
}
