package relation

import (
	"testing"
	"testing/quick"
)

func TestTupleEqual(t *testing.T) {
	a := NewTuple(Int(1), Str("x"))
	b := NewTuple(Int(1), Str("x"))
	c := NewTuple(Int(1), Str("y"))
	d := NewTuple(Int(1))
	if !a.Equal(b) {
		t.Error("equal tuples not equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different tuples reported equal")
	}
}

func TestTupleHashOnSameKeySameHash(t *testing.T) {
	a := NewTuple(Int(7), Str("left"), Int(99))
	b := NewTuple(Int(7), Str("right"), Int(-1))
	if a.HashOn([]int{0}) != b.HashOn([]int{0}) {
		t.Error("same key must hash identically regardless of other columns")
	}
	if a.HashOn([]int{0, 2}) == b.HashOn([]int{0, 2}) {
		t.Error("different composite keys should almost surely differ")
	}
}

func TestTupleHashOnOrderMatters(t *testing.T) {
	a := NewTuple(Int(1), Int(2))
	if a.HashOn([]int{0, 1}) == a.HashOn([]int{1, 0}) {
		t.Error("column order should change the composite hash")
	}
}

func TestTupleProject(t *testing.T) {
	a := NewTuple(Int(1), Str("x"), Int(3))
	p := a.Project([]int{2, 0})
	if len(p) != 2 || p[0].AsInt() != 3 || p[1].AsInt() != 1 {
		t.Errorf("Project = %v", p)
	}
}

func TestTupleConcat(t *testing.T) {
	a := NewTuple(Int(1))
	b := NewTuple(Str("x"), Int(2))
	c := a.Concat(b)
	if len(c) != 3 || c[0].AsInt() != 1 || c[1].AsString() != "x" || c[2].AsInt() != 2 {
		t.Errorf("Concat = %v", c)
	}
	// Concat must not alias a's storage.
	if &c[0] == &a[0] {
		t.Error("Concat aliases input")
	}
}

func TestTupleClone(t *testing.T) {
	a := NewTuple(Int(1), Int(2))
	c := a.Clone()
	c[0] = Int(99)
	if a[0].AsInt() != 1 {
		t.Error("Clone shares storage")
	}
}

func TestTupleString(t *testing.T) {
	a := NewTuple(Int(1), Str("x"))
	if a.String() != "[1 x]" {
		t.Errorf("String = %q", a.String())
	}
}

func TestTupleKeyDistinguishesTypes(t *testing.T) {
	a := NewTuple(Int(1))
	b := NewTuple(Str("1"))
	if a.Key() == b.Key() {
		t.Error("Key must distinguish Int(1) from Str(\"1\")")
	}
}

// Property: Key is injective on integer tuples of the same arity (equal keys
// imply equal tuples).
func TestTupleKeyProperty(t *testing.T) {
	f := func(a, b int64, c, d int64) bool {
		t1 := NewTuple(Int(a), Int(b))
		t2 := NewTuple(Int(c), Int(d))
		return (t1.Key() == t2.Key()) == t1.Equal(t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HashOn is a function of the projected key values only.
func TestTupleHashOnProperty(t *testing.T) {
	f := func(key int64, pad1, pad2 int64) bool {
		t1 := NewTuple(Int(key), Int(pad1))
		t2 := NewTuple(Int(key), Int(pad2))
		return t1.HashOn([]int{0}) == t2.HashOn([]int{0})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
