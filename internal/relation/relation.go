package relation

import (
	"fmt"
	"sort"
)

// Relation is an in-memory relation: a named schema plus a tuple slice. The
// paper runs every experiment with relations cached in main memory (the KSR1
// at INRIA had a single disk), and we follow the same model; the storage
// package adds the disk/buffer substrate around this type.
type Relation struct {
	Name   string
	Schema *Schema
	Tuples []Tuple
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Append adds tuples to the relation. The tuples must match the schema
// arity; type agreement is the caller's responsibility (generators and
// operators always produce schema-conforming tuples).
func (r *Relation) Append(ts ...Tuple) error {
	for _, t := range ts {
		if len(t) != r.Schema.Len() {
			return fmt.Errorf("relation %s: tuple arity %d != schema arity %d", r.Name, len(t), r.Schema.Len())
		}
	}
	r.Tuples = append(r.Tuples, ts...)
	return nil
}

// MustAppend is Append that panics on arity mismatch.
func (r *Relation) MustAppend(ts ...Tuple) {
	if err := r.Append(ts...); err != nil {
		panic(err)
	}
}

// Cardinality returns the number of tuples.
func (r *Relation) Cardinality() int { return len(r.Tuples) }

// Clone returns a deep-enough copy: the tuple slice is copied but the
// (immutable) tuples and schema are shared.
func (r *Relation) Clone() *Relation {
	return &Relation{Name: r.Name, Schema: r.Schema, Tuples: append([]Tuple(nil), r.Tuples...)}
}

// EqualMultiset reports whether two relations contain the same tuples with
// the same multiplicities, regardless of order. Parallel execution is
// permitted to reorder results, so all correctness tests compare multisets.
func (r *Relation) EqualMultiset(o *Relation) bool {
	if len(r.Tuples) != len(o.Tuples) {
		return false
	}
	counts := make(map[string]int, len(r.Tuples))
	for _, t := range r.Tuples {
		counts[t.Key()]++
	}
	for _, t := range o.Tuples {
		counts[t.Key()]--
		if counts[t.Key()] < 0 {
			return false
		}
	}
	return true
}

// SortByKey sorts tuples by their canonical key; handy for deterministic
// output in examples and golden tests.
func (r *Relation) SortByKey() {
	sort.Slice(r.Tuples, func(i, j int) bool { return r.Tuples[i].Key() < r.Tuples[j].Key() })
}

// String summarizes the relation.
func (r *Relation) String() string {
	return fmt.Sprintf("%s%s [%d tuples]", r.Name, r.Schema, len(r.Tuples))
}
