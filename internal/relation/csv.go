package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV import/export for relations, so users can load their own data instead
// of generated benchmarks. The header row carries "name:TYPE" column specs
// (TYPE = INT or STRING); values round-trip losslessly.

// WriteCSV writes the relation with a typed header row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, r.Schema.Len())
	for i := 0; i < r.Schema.Len(); i++ {
		c := r.Schema.Column(i)
		header[i] = c.Name + ":" + c.Type.String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation: writing csv header: %w", err)
	}
	row := make([]string, r.Schema.Len())
	for _, t := range r.Tuples {
		for i, v := range t {
			row[i] = v.String()
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("relation: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation from CSV with a typed header row.
func ReadCSV(name string, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv header: %w", err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		cname, tname, ok := strings.Cut(h, ":")
		if !ok {
			return nil, fmt.Errorf("relation: header %q needs name:TYPE form", h)
		}
		var typ Type
		switch tname {
		case "INT":
			typ = TInt
		case "STRING":
			typ = TString
		default:
			return nil, fmt.Errorf("relation: unknown column type %q in header %q", tname, h)
		}
		cols[i] = Column{Name: cname, Type: typ}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	r := New(name, schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return r, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: csv line %d: %w", line, err)
		}
		t := make(Tuple, len(cols))
		for i, field := range rec {
			if cols[i].Type == TInt {
				v, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("relation: csv line %d column %q: %w", line, cols[i].Name, err)
				}
				t[i] = Int(v)
			} else {
				t[i] = Str(field)
			}
		}
		r.Tuples = append(r.Tuples, t)
	}
}
