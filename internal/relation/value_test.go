package relation

import (
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	if TInt.String() != "INT" {
		t.Errorf("TInt.String() = %q, want INT", TInt.String())
	}
	if TString.String() != "STRING" {
		t.Errorf("TString.String() = %q, want STRING", TString.String())
	}
	if got := Type(99).String(); got != "Type(99)" {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestIntValue(t *testing.T) {
	v := Int(42)
	if v.Kind() != TInt {
		t.Fatalf("kind = %v, want TInt", v.Kind())
	}
	if v.AsInt() != 42 {
		t.Errorf("AsInt = %d, want 42", v.AsInt())
	}
	if v.String() != "42" {
		t.Errorf("String = %q, want 42", v.String())
	}
}

func TestStringValue(t *testing.T) {
	v := Str("paris")
	if v.Kind() != TString {
		t.Fatalf("kind = %v, want TString", v.Kind())
	}
	if v.AsString() != "paris" {
		t.Errorf("AsString = %q", v.AsString())
	}
	if v.String() != "paris" {
		t.Errorf("String = %q", v.String())
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic(t, func() { Int(1).AsString() })
	mustPanic(t, func() { Str("x").AsInt() })
	mustPanic(t, func() { Int(1).Compare(Str("x")) })
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Int(1), Str("1"), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if Int(1).Compare(Int(2)) != -1 || Int(2).Compare(Int(1)) != 1 || Int(2).Compare(Int(2)) != 0 {
		t.Error("integer comparison wrong")
	}
	if Str("a").Compare(Str("b")) != -1 || Str("b").Compare(Str("a")) != 1 || Str("a").Compare(Str("a")) != 0 {
		t.Error("string comparison wrong")
	}
}

func TestValueHashStable(t *testing.T) {
	if Int(7).Hash() != Int(7).Hash() {
		t.Error("int hash not stable")
	}
	if Str("x").Hash() != Str("x").Hash() {
		t.Error("string hash not stable")
	}
	if Int(7).Hash() == Int(8).Hash() {
		t.Error("distinct ints should almost surely hash differently")
	}
}

// Property: Compare is antisymmetric and consistent with Equal for integers.
func TestValueCompareProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.Compare(vb) != -vb.Compare(va) {
			return false
		}
		return (va.Compare(vb) == 0) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: equal values hash identically (ints and strings).
func TestValueHashEqualProperty(t *testing.T) {
	fi := func(a int64) bool { return Int(a).Hash() == Int(a).Hash() }
	fs := func(s string) bool { return Str(s).Hash() == Str(s).Hash() }
	if err := quick.Check(fi, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(fs, nil); err != nil {
		t.Error(err)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
