package relation

import "strings"

// Tuple is one row: a flat slice of values positionally matching a schema.
// Tuples are treated as immutable by the engine; operators build new tuples
// rather than mutating inputs, so a tuple may be shared freely between
// operator instances and threads.
type Tuple []Value

// NewTuple builds a tuple from values.
func NewTuple(vals ...Value) Tuple { return Tuple(vals) }

// Equal reports whether two tuples are identical value-by-value.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// HashOn hashes the tuple on the given column positions. It is the basis of
// both static hash partitioning and dynamic redistribution (the transmit
// operator), so the same key always routes to the same fragment.
func (t Tuple) HashOn(cols []int) uint64 {
	// Combine per-column hashes with the FNV-1a folding constant so that
	// multi-attribute keys mix well.
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h ^= t[c].Hash()
		h *= prime
	}
	return h
}

// Compare orders two tuples of the same schema value-by-value (shorter
// tuples order first on a shared prefix). Deterministic result emission
// (aggregate close) sorts with it instead of rendering canonical string
// keys, which would allocate per tuple.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	default:
		return 0
	}
}

// Project returns a new tuple containing only the given column positions.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Concat returns a new tuple with the values of t followed by those of o;
// used by join operators to build result tuples.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// Clone returns a copy of the tuple sharing no backing storage with t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as "[v1 v2 ...]".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Key renders the tuple as a canonical string; used by tests for multiset
// comparison of results.
func (t Tuple) Key() string {
	parts := make([]string, len(t))
	for i, v := range t {
		if v.Kind() == TInt {
			parts[i] = "i:" + v.String()
		} else {
			parts[i] = "s:" + v.String()
		}
	}
	return strings.Join(parts, "\x1f")
}
