package relation

import "fmt"

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of named, typed columns. Schemas are immutable
// after construction; all lookup methods are safe for concurrent use.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Duplicate column names are
// rejected because the hash partitioner and join operators address columns
// by name.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for statically known schemas
// such as the Wisconsin benchmark.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// MustIndex returns the position of the named column, panicking if absent.
// Plans are validated before execution so a miss here is a programming error.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic(fmt.Sprintf("relation: no column %q", name))
	}
	return i
}

// Concat returns a new schema with the columns of s followed by those of o.
// Name collisions are disambiguated with the given prefixes (e.g. "a.", "b.")
// applied only to colliding names, mirroring how the join operator builds its
// output schema.
func (s *Schema) Concat(o *Schema, leftPrefix, rightPrefix string) *Schema {
	out := make([]Column, 0, len(s.cols)+len(o.cols))
	collide := make(map[string]bool)
	for _, c := range s.cols {
		if _, ok := o.byName[c.Name]; ok {
			collide[c.Name] = true
		}
	}
	for _, c := range s.cols {
		if collide[c.Name] {
			c.Name = leftPrefix + c.Name
		}
		out = append(out, c)
	}
	for _, c := range o.cols {
		if collide[c.Name] {
			c.Name = rightPrefix + c.Name
		}
		out = append(out, c)
	}
	return MustSchema(out...)
}

// Equal reports whether two schemas have identical column lists.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	out := "("
	for i, c := range s.cols {
		if i > 0 {
			out += ", "
		}
		out += c.Name + " " + c.Type.String()
	}
	return out + ")"
}
