package relation

import (
	"fmt"
	"math/rand"
)

// The Wisconsin benchmark relation [Bitton83], the dataset used by all the
// paper's experiments (§5.3 "we use the relations of the Wisconsin
// benchmark"). The schema follows the original definition: thirteen integer
// attributes derived from two unique keys, plus three 52-byte string
// attributes. unique1 is a random permutation of 0..n-1; unique2 is
// sequential and serves as the default join/partitioning key.

// WisconsinSchema is the schema shared by every generated Wisconsin relation.
var WisconsinSchema = MustSchema(
	Column{"unique1", TInt},
	Column{"unique2", TInt},
	Column{"two", TInt},
	Column{"four", TInt},
	Column{"ten", TInt},
	Column{"twenty", TInt},
	Column{"onePercent", TInt},
	Column{"tenPercent", TInt},
	Column{"twentyPercent", TInt},
	Column{"fiftyPercent", TInt},
	Column{"unique3", TInt},
	Column{"evenOnePercent", TInt},
	Column{"oddOnePercent", TInt},
	Column{"stringu1", TString},
	Column{"stringu2", TString},
	Column{"string4", TString},
)

// string4Cycle is the classic cyclic pattern for the string4 attribute.
var string4Cycle = []string{"AAAAxxxx", "HHHHxxxx", "OOOOxxxx", "VVVVxxxx"}

// Wisconsin generates an n-tuple Wisconsin relation with a deterministic
// pseudo-random permutation for unique1 seeded by seed. The same (n, seed)
// always yields the same relation, which keeps every experiment repeatable.
func Wisconsin(name string, n int, seed int64) *Relation {
	if n <= 0 {
		panic(fmt.Sprintf("relation: Wisconsin cardinality must be positive, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	r := &Relation{Name: name, Schema: WisconsinSchema, Tuples: make([]Tuple, 0, n)}
	for u2 := 0; u2 < n; u2++ {
		u1 := int64(perm[u2])
		t := Tuple{
			Int(u1),
			Int(int64(u2)),
			Int(u1 % 2),
			Int(u1 % 4),
			Int(u1 % 10),
			Int(u1 % 20),
			Int(u1 % 100),
			Int(u1 % 10),
			Int(u1 % 5),
			Int(u1 % 2),
			Int(u1),
			Int((u1 % 100) * 2),
			Int((u1%100)*2 + 1),
			Str(wisconsinString(u1)),
			Str(wisconsinString(int64(u2))),
			Str(string4Cycle[u2%len(string4Cycle)]),
		}
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

// wisconsinString converts an integer into the benchmark's 52-character
// string format: a 7-letter base-26 prefix padded with 'x'. Only the prefix
// varies, as in the original generator.
func wisconsinString(v int64) string {
	var prefix [7]byte
	for i := 6; i >= 0; i-- {
		prefix[i] = byte('A' + v%26)
		v /= 26
	}
	b := make([]byte, 52)
	copy(b, prefix[:])
	for i := 7; i < 52; i++ {
		b[i] = 'x'
	}
	return string(b)
}

// DewittA generates the 200K-tuple "DewittA" relation used in §5.2 for the
// Allcache remote-vs-local selection experiment.
func DewittA(seed int64) *Relation { return Wisconsin("DewittA", 200_000, seed) }
