package relation

import "testing"

func smallRel(t *testing.T) *Relation {
	t.Helper()
	s := MustSchema(Column{"id", TInt}, Column{"name", TString})
	r := New("people", s)
	r.MustAppend(
		NewTuple(Int(1), Str("ann")),
		NewTuple(Int(2), Str("bob")),
		NewTuple(Int(3), Str("eve")),
	)
	return r
}

func TestRelationAppendArity(t *testing.T) {
	r := smallRel(t)
	if err := r.Append(NewTuple(Int(4))); err == nil {
		t.Error("arity mismatch accepted")
	}
	mustPanic(t, func() { r.MustAppend(NewTuple(Int(4))) })
	if r.Cardinality() != 3 {
		t.Errorf("Cardinality = %d, want 3", r.Cardinality())
	}
}

func TestRelationClone(t *testing.T) {
	r := smallRel(t)
	c := r.Clone()
	c.MustAppend(NewTuple(Int(4), Str("dan")))
	if r.Cardinality() != 3 || c.Cardinality() != 4 {
		t.Error("Clone shares tuple slice")
	}
}

func TestEqualMultiset(t *testing.T) {
	r := smallRel(t)
	o := r.Clone()
	// Reorder o.
	o.Tuples[0], o.Tuples[2] = o.Tuples[2], o.Tuples[0]
	if !r.EqualMultiset(o) {
		t.Error("reordered relation should be multiset-equal")
	}
	o.Tuples[0] = NewTuple(Int(9), Str("zed"))
	if r.EqualMultiset(o) {
		t.Error("different contents reported equal")
	}
	short := New("s", r.Schema)
	if r.EqualMultiset(short) {
		t.Error("different cardinalities reported equal")
	}
}

func TestEqualMultisetDuplicates(t *testing.T) {
	s := MustSchema(Column{"x", TInt})
	a := New("a", s)
	a.MustAppend(NewTuple(Int(1)), NewTuple(Int(1)), NewTuple(Int(2)))
	b := New("b", s)
	b.MustAppend(NewTuple(Int(1)), NewTuple(Int(2)), NewTuple(Int(2)))
	if a.EqualMultiset(b) {
		t.Error("multiplicity mismatch reported equal")
	}
}

func TestSortByKey(t *testing.T) {
	s := MustSchema(Column{"x", TInt})
	r := New("r", s)
	r.MustAppend(NewTuple(Int(3)), NewTuple(Int(1)), NewTuple(Int(2)))
	r.SortByKey()
	// Keys sort lexically; 1 < 2 < 3 as strings here.
	if r.Tuples[0][0].AsInt() != 1 || r.Tuples[2][0].AsInt() != 3 {
		t.Errorf("SortByKey order = %v", r.Tuples)
	}
}

func TestRelationString(t *testing.T) {
	r := smallRel(t)
	want := "people(id INT, name STRING) [3 tuples]"
	if r.String() != want {
		t.Errorf("String = %q, want %q", r.String(), want)
	}
}
