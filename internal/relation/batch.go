package relation

// Batch-of-tuples helpers for the vectorized operator path. The engine hands
// operators whole activation batches (bounded by the internal cache size);
// operators that process them column-at-a-time use a selection vector to
// carry the surviving positions between evaluation steps instead of copying
// tuples.

// Selection is a selection vector: positions into a tuple batch, in
// ascending order. Vectorized predicate evaluation produces one; downstream
// steps iterate it instead of re-testing every tuple.
type Selection []int32

// SelectAll appends every position of an n-tuple batch to sel.
func SelectAll(sel Selection, n int) Selection {
	for i := 0; i < n; i++ {
		sel = append(sel, int32(i))
	}
	return sel
}

// HashTuplesOn appends the HashOn key hash of each tuple to dst — the batch
// form of Tuple.HashOn, used by vectorized joins and aggregates to hash a
// whole probe/group batch before touching any shared state. The hashes are
// bit-identical to per-tuple HashOn, so batch and per-tuple paths key the
// same hash tables.
func HashTuplesOn(ts []Tuple, cols []int, dst []uint64) []uint64 {
	if len(cols) == 1 {
		c := cols[0]
		const prime = 1099511628211
		for _, t := range ts {
			h := uint64(14695981039346656037) ^ t[c].Hash()
			dst = append(dst, h*prime)
		}
		return dst
	}
	for _, t := range ts {
		dst = append(dst, t.HashOn(cols))
	}
	return dst
}
