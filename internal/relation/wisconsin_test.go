package relation

import (
	"testing"
	"testing/quick"
)

func TestWisconsinDeterministic(t *testing.T) {
	a := Wisconsin("A", 1000, 42)
	b := Wisconsin("B", 1000, 42)
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			t.Fatalf("tuple %d differs across identical seeds", i)
		}
	}
	c := Wisconsin("C", 1000, 43)
	same := true
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(c.Tuples[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical relations")
	}
}

func TestWisconsinUnique1IsPermutation(t *testing.T) {
	n := 5000
	r := Wisconsin("A", n, 7)
	u1 := WisconsinSchema.MustIndex("unique1")
	seen := make([]bool, n)
	for _, tup := range r.Tuples {
		v := tup[u1].AsInt()
		if v < 0 || v >= int64(n) {
			t.Fatalf("unique1 out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("unique1 value %d repeated", v)
		}
		seen[v] = true
	}
}

func TestWisconsinUnique2Sequential(t *testing.T) {
	r := Wisconsin("A", 100, 7)
	u2 := WisconsinSchema.MustIndex("unique2")
	for i, tup := range r.Tuples {
		if tup[u2].AsInt() != int64(i) {
			t.Fatalf("unique2[%d] = %d", i, tup[u2].AsInt())
		}
	}
}

func TestWisconsinDerivedAttributes(t *testing.T) {
	r := Wisconsin("A", 2000, 11)
	idx := func(name string) int { return WisconsinSchema.MustIndex(name) }
	u1, two, four, ten, twenty := idx("unique1"), idx("two"), idx("four"), idx("ten"), idx("twenty")
	onePct, tenPct, twentyPct, fiftyPct := idx("onePercent"), idx("tenPercent"), idx("twentyPercent"), idx("fiftyPercent")
	u3, even, odd := idx("unique3"), idx("evenOnePercent"), idx("oddOnePercent")
	for _, tup := range r.Tuples {
		v := tup[u1].AsInt()
		checks := []struct {
			name string
			got  int64
			want int64
		}{
			{"two", tup[two].AsInt(), v % 2},
			{"four", tup[four].AsInt(), v % 4},
			{"ten", tup[ten].AsInt(), v % 10},
			{"twenty", tup[twenty].AsInt(), v % 20},
			{"onePercent", tup[onePct].AsInt(), v % 100},
			{"tenPercent", tup[tenPct].AsInt(), v % 10},
			{"twentyPercent", tup[twentyPct].AsInt(), v % 5},
			{"fiftyPercent", tup[fiftyPct].AsInt(), v % 2},
			{"unique3", tup[u3].AsInt(), v},
			{"evenOnePercent", tup[even].AsInt(), (v % 100) * 2},
			{"oddOnePercent", tup[odd].AsInt(), (v%100)*2 + 1},
		}
		for _, c := range checks {
			if c.got != c.want {
				t.Fatalf("%s = %d, want %d (unique1=%d)", c.name, c.got, c.want, v)
			}
		}
	}
}

func TestWisconsinStrings(t *testing.T) {
	r := Wisconsin("A", 8, 1)
	s1 := WisconsinSchema.MustIndex("stringu1")
	s4 := WisconsinSchema.MustIndex("string4")
	for i, tup := range r.Tuples {
		if got := len(tup[s1].AsString()); got != 52 {
			t.Fatalf("stringu1 length = %d, want 52", got)
		}
		if tup[s4].AsString() != string4Cycle[i%4] {
			t.Fatalf("string4[%d] = %q", i, tup[s4].AsString())
		}
	}
}

func TestWisconsinStringEncodingInjective(t *testing.T) {
	seen := make(map[string]int64)
	for v := int64(0); v < 10000; v++ {
		s := wisconsinString(v)
		if prev, dup := seen[s]; dup {
			t.Fatalf("wisconsinString collision: %d and %d -> %q", prev, v, s)
		}
		seen[s] = v
	}
}

func TestWisconsinRejectsNonPositive(t *testing.T) {
	mustPanic(t, func() { Wisconsin("A", 0, 1) })
	mustPanic(t, func() { Wisconsin("A", -5, 1) })
}

// Property: for any small n and seed, unique1 is a permutation (checked via
// sum and xor aggregates to keep the property cheap).
func TestWisconsinPermutationProperty(t *testing.T) {
	f := func(nRaw uint16, seed int64) bool {
		n := int(nRaw%500) + 1
		r := Wisconsin("A", n, seed)
		u1 := WisconsinSchema.MustIndex("unique1")
		var sum int64
		for _, tup := range r.Tuples {
			sum += tup[u1].AsInt()
		}
		return sum == int64(n)*int64(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDewittACardinality(t *testing.T) {
	if testing.Short() {
		t.Skip("200K generation in -short mode")
	}
	r := DewittA(1)
	if r.Cardinality() != 200_000 {
		t.Fatalf("DewittA cardinality = %d", r.Cardinality())
	}
}
