// Package relation provides the data model of the DBS3 reproduction: typed
// values, schemas, tuples, in-memory relations, and the Wisconsin benchmark
// generator used throughout the paper's evaluation [Bitton83].
package relation

import (
	"fmt"
	"strconv"
)

// Type enumerates the value types supported by the engine. The Wisconsin
// benchmark only needs integers and fixed strings, which is also all the
// paper's experiments use.
type Type int

const (
	// TInt is a 64-bit signed integer.
	TInt Type = iota
	// TString is a variable-length string.
	TString
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TString:
		return "STRING"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a single typed attribute value. The zero Value is the integer 0.
// Values are immutable once constructed.
type Value struct {
	kind Type
	i    int64
	s    string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: TInt, i: v} }

// Str returns a string Value.
func Str(v string) Value { return Value{kind: TString, s: v} }

// Kind reports the type of the value.
func (v Value) Kind() Type { return v.kind }

// AsInt returns the integer payload. It panics if the value is not an
// integer; engine code always checks schemas before extracting payloads.
func (v Value) AsInt() int64 {
	if v.kind != TInt {
		panic("relation: AsInt on non-integer value")
	}
	return v.i
}

// AsString returns the string payload. It panics if the value is not a
// string.
func (v Value) AsString() string {
	if v.kind != TString {
		panic("relation: AsString on non-string value")
	}
	return v.s
}

// Equal reports whether two values have the same type and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	if v.kind == TInt {
		return v.i == o.i
	}
	return v.s == o.s
}

// Compare orders values of the same type: -1 if v < o, 0 if equal, +1 if
// v > o. Comparing values of different types panics; plans are type-checked
// before execution.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		panic("relation: comparing values of different types")
	}
	switch v.kind {
	case TInt:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		default:
			return 0
		}
	default:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	}
}

// FNV-1a constants (hash/fnv), inlined so hashing never allocates: the
// stdlib constructor returns its state behind the hash.Hash64 interface,
// which costs one heap allocation per call — unacceptable on the join,
// group-by and routing hot paths that hash every pipelined tuple.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash returns a stable FNV-1a hash of the value, used by the hash
// partitioner, the pipelined router, and the hash join and group-by keying.
// The hash is independent of process and run (it matches hash/fnv exactly),
// and the computation is allocation-free.
func (v Value) Hash() uint64 {
	h := uint64(fnvOffset64)
	if v.kind == TInt {
		u := uint64(v.i)
		for k := 0; k < 8; k++ {
			h ^= uint64(byte(u >> (8 * k)))
			h *= fnvPrime64
		}
	} else {
		for i := 0; i < len(v.s); i++ {
			h ^= uint64(v.s[i])
			h *= fnvPrime64
		}
	}
	return h
}

// String renders the value for debugging and CLI output.
func (v Value) String() string {
	if v.kind == TInt {
		return strconv.FormatInt(v.i, 10)
	}
	return v.s
}
