package relation

import "testing"

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(Column{"id", TInt}, Column{"name", TString}, Column{"age", TInt})
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Column(1).Name != "name" || s.Column(1).Type != TString {
		t.Errorf("Column(1) = %+v", s.Column(1))
	}
	i, ok := s.Index("age")
	if !ok || i != 2 {
		t.Errorf("Index(age) = %d,%v", i, ok)
	}
	if _, ok := s.Index("absent"); ok {
		t.Error("Index(absent) should miss")
	}
	if s.MustIndex("id") != 0 {
		t.Error("MustIndex(id) != 0")
	}
	mustPanic(t, func() { s.MustIndex("absent") })
}

func TestSchemaDuplicateRejected(t *testing.T) {
	if _, err := NewSchema(Column{"a", TInt}, Column{"a", TInt}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema(Column{"", TInt}); err == nil {
		t.Error("empty column name accepted")
	}
	mustPanic(t, func() { MustSchema(Column{"a", TInt}, Column{"a", TInt}) })
}

func TestSchemaColumnsCopy(t *testing.T) {
	s := testSchema(t)
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Column(0).Name != "id" {
		t.Error("Columns() must return a copy")
	}
}

func TestSchemaConcatNoCollision(t *testing.T) {
	a := MustSchema(Column{"x", TInt})
	b := MustSchema(Column{"y", TInt})
	c := a.Concat(b, "a.", "b.")
	if c.Len() != 2 || c.Column(0).Name != "x" || c.Column(1).Name != "y" {
		t.Errorf("Concat = %v", c)
	}
}

func TestSchemaConcatCollision(t *testing.T) {
	a := MustSchema(Column{"k", TInt}, Column{"x", TInt})
	b := MustSchema(Column{"k", TInt}, Column{"y", TInt})
	c := a.Concat(b, "a.", "b.")
	want := []string{"a.k", "x", "b.k", "y"}
	for i, w := range want {
		if c.Column(i).Name != w {
			t.Errorf("column %d = %q, want %q", i, c.Column(i).Name, w)
		}
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema(Column{"x", TInt})
	b := MustSchema(Column{"x", TInt})
	c := MustSchema(Column{"x", TString})
	d := MustSchema(Column{"x", TInt}, Column{"y", TInt})
	if !a.Equal(b) {
		t.Error("identical schemas not equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different schemas reported equal")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(Column{"id", TInt}, Column{"name", TString})
	if got := s.String(); got != "(id INT, name STRING)" {
		t.Errorf("String = %q", got)
	}
}
