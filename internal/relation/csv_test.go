package relation

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	r := New("people", MustSchema(
		Column{Name: "id", Type: TInt},
		Column{Name: "name", Type: TString},
	))
	r.MustAppend(
		NewTuple(Int(1), Str("ann")),
		NewTuple(Int(-2), Str("with,comma")),
		NewTuple(Int(3), Str(`with "quotes"`)),
		NewTuple(Int(4), Str("")),
	)
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("people", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !back.Schema.Equal(r.Schema) {
		t.Errorf("schema changed: %s vs %s", back.Schema, r.Schema)
	}
	if !back.EqualMultiset(r) {
		t.Errorf("tuples changed:\n%v\nvs\n%v", back.Tuples, r.Tuples)
	}
	// Order preserved too.
	for i := range r.Tuples {
		if !back.Tuples[i].Equal(r.Tuples[i]) {
			t.Fatalf("row %d reordered", i)
		}
	}
}

func TestCSVWisconsinRoundTrip(t *testing.T) {
	r := Wisconsin("A", 200, 5)
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("A", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualMultiset(r) {
		t.Error("Wisconsin relation changed through CSV")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"id\n1",                 // header without type
		"id:FLOAT\n1",           // unknown type
		"id:INT\nnot-a-number",  // bad int
		"id:INT,id:INT\n1,2",    // duplicate column
		"id:INT,name:STRING\n1", // arity mismatch (csv reader catches)
	}
	for _, c := range cases {
		if _, err := ReadCSV("x", strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", c)
		}
	}
}

func TestReadCSVEmptyRelation(t *testing.T) {
	r, err := ReadCSV("empty", strings.NewReader("id:INT,name:STRING\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 0 || r.Schema.Len() != 2 {
		t.Errorf("empty csv = %v", r)
	}
}
