package baseline

import (
	"math"
	"testing"

	"dbs3/internal/relation"
	"dbs3/internal/sim"
	"dbs3/internal/workload"
	"dbs3/internal/zipf"
)

func TestThreadPerInstanceJoinCorrect(t *testing.T) {
	db, err := workload.NewJoinDB(1000, 100, 10, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ThreadPerInstanceJoin(db.A, db.B, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyJoinResult(res); err != nil {
		t.Error(err)
	}
}

func TestThreadPerInstanceJoinErrors(t *testing.T) {
	db, _ := workload.NewJoinDB(100, 20, 4, 0)
	db8, _ := workload.NewJoinDB(100, 24, 8, 0)
	if _, err := ThreadPerInstanceJoin(db.A, db8.B, "k", "k"); err == nil {
		t.Error("degree mismatch accepted")
	}
	if _, err := ThreadPerInstanceJoin(db.A, db.B, "nope", "k"); err == nil {
		t.Error("bad build key accepted")
	}
	if _, err := ThreadPerInstanceJoin(db.A, db.B, "k", "nope"); err == nil {
		t.Error("bad probe key accepted")
	}
}

func TestDynamicJoinCorrect(t *testing.T) {
	db, err := workload.NewJoinDB(1000, 100, 10, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 4} {
		dj := DynamicJoin{PageSize: 32, Threads: threads}
		res, err := dj.Run(db.A.Union(), db.B.Union(), "k", "k")
		if err != nil {
			t.Fatal(err)
		}
		if res.Cardinality() != db.ExpectedJoinCount() {
			t.Errorf("threads=%d: %d results, want %d", threads, res.Cardinality(), db.ExpectedJoinCount())
		}
	}
}

func TestDynamicJoinMatchesStatic(t *testing.T) {
	db, _ := workload.NewJoinDB(500, 100, 10, 0.3)
	static, err := ThreadPerInstanceJoin(db.A, db.B, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := DynamicJoin{Threads: 3}.Run(db.A.Union(), db.B.Union(), "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if !static.Union().EqualMultiset(dyn) {
		t.Error("dynamic and static joins disagree")
	}
}

func TestDynamicJoinErrors(t *testing.T) {
	db, _ := workload.NewJoinDB(100, 20, 4, 0)
	if _, err := (DynamicJoin{}).Run(db.A.Union(), db.B.Union(), "nope", "k"); err == nil {
		t.Error("bad build key accepted")
	}
	if _, err := (DynamicJoin{}).Run(db.A.Union(), db.B.Union(), "k", "nope"); err == nil {
		t.Error("bad probe key accepted")
	}
}

func TestStaticMakespanPinnedThreads(t *testing.T) {
	// Four fragments on two processors: {10,1} on proc 0, {1,10} on proc 1
	// round-robin => per-proc sums {11, 11}.
	if got := StaticMakespan([]float64{10, 1, 1, 10}, 2); got != 11 {
		t.Errorf("makespan = %v, want 11", got)
	}
	// Degenerate processor count clamps to 1: serial sum.
	if got := StaticMakespan([]float64{1, 2, 3}, 0); got != 6 {
		t.Errorf("serial makespan = %v", got)
	}
}

// The paper's core claim, quantified: under skew, DBS3's shared-queue pool
// (simulated list scheduling) beats the static thread-per-instance model,
// because the static model cannot rebalance fragments across threads.
func TestDBS3BeatsStaticModelUnderSkew(t *testing.T) {
	d, processors := 200, 20
	sizes := zipf.Sizes(100_000, d, 0.8)
	costs := make([]float64, d)
	for i, s := range sizes {
		costs[i] = float64(s)
	}
	static := StaticMakespan(costs, processors)
	pool := sim.Triggered(sim.TriggeredSpec{Costs: costs, Threads: processors, Strategy: sim.LPT}, sim.Config{Processors: processors})
	if pool.Makespan >= static {
		t.Errorf("DBS3 pool (%v) should beat static model (%v) under skew", pool.Makespan, static)
	}
	// And the static model's makespan is at least the biggest per-processor
	// pile, which under Zipf 0.8 is well above the ideal.
	ideal := 100_000.0 / float64(processors)
	if static < ideal*1.2 {
		t.Errorf("static model suspiciously good: %v vs ideal %v", static, ideal)
	}
}

// Baseline result schemas match the DBS3 join's column naming, so outputs
// are comparable in tests and benches.
func TestBaselineSchemaNaming(t *testing.T) {
	db, _ := workload.NewJoinDB(100, 20, 4, 0)
	res, err := ThreadPerInstanceJoin(db.A, db.B, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A.k", "A.id", "B.k", "B.id"} {
		if _, ok := res.Schema.Index(name); !ok {
			t.Errorf("missing column %q in %s", name, res.Schema)
		}
	}
}

func TestStaticMakespanNeverBelowMaxCost(t *testing.T) {
	costs := []float64{5, 1, 1, 1, 1, 1}
	for p := 1; p <= 6; p++ {
		if m := StaticMakespan(costs, p); m < 5-1e-12 {
			t.Errorf("p=%d: makespan %v below longest fragment", p, m)
		}
	}
	if m := StaticMakespan(costs, 6); math.Abs(m-5) > 1e-12 {
		t.Errorf("with one thread per fragment, makespan = longest = 5, got %v", m)
	}
}

var _ = relation.Int // keep the import for future fixtures

func TestFirstFitDecreasing(t *testing.T) {
	// Classic FFD: {7,6,5,4} on 2 processors -> {7,4} and {6,5}: makespan 11.
	if got := FirstFitDecreasingMakespan([]float64{5, 7, 4, 6}, 2); got != 11 {
		t.Errorf("FFD makespan = %v, want 11", got)
	}
	// One processor: serial sum.
	if got := FirstFitDecreasingMakespan([]float64{1, 2, 3}, 0); got != 6 {
		t.Errorf("serial FFD = %v", got)
	}
	// FFD beats (or ties) naive round-robin placement on skewed costs.
	sizes := zipf.Sizes(100_000, 200, 0.8)
	costs := make([]float64, len(sizes))
	for i, s := range sizes {
		costs[i] = float64(s)
	}
	rr := StaticMakespan(costs, 20)
	ffd := FirstFitDecreasingMakespan(costs, 20)
	if ffd > rr {
		t.Errorf("FFD (%v) should beat round-robin placement (%v)", ffd, rr)
	}
	// And DBS3's dynamic LPT pool matches FFD with exact costs (both are
	// LPT schedules) — the difference in practice is robustness to
	// estimation error, which static assignment lacks.
	pool := sim.Triggered(sim.TriggeredSpec{Costs: costs, Threads: 20, Strategy: sim.LPT}, sim.Config{Processors: 20})
	if pool.Makespan > ffd*1.01 {
		t.Errorf("pool LPT (%v) should match FFD (%v) under exact costs", pool.Makespan, ffd)
	}
}
