// Package baseline implements the two execution models the paper positions
// DBS3 against (§1):
//
//   - ThreadPerInstance: the conventional static model (Gamma, Bubba,
//     Volcano and most products), where the degree of parallelism is
//     dictated by the degree of partitioning — one execution thread per
//     operator instance, no queue sharing, so skewed fragments directly
//     stretch the response time and start-up grows with d.
//   - DynamicJoin: the dynamic model (XPRS, Oracle), where relations are
//     not stored with a parallel storage model; workers grab pages of both
//     relations from shared counters (the interference point) and join
//     through a shared hash table.
//
// Both are full executors over the same data model, used by the ablation
// benches to quantify what DBS3's hybrid model buys.
package baseline

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dbs3/internal/partition"
	"dbs3/internal/relation"
)

// joinFragments nested-loop joins one co-located fragment pair.
func joinFragments(build, probe []relation.Tuple, buildKey, probeKey int, out *[]relation.Tuple) {
	for _, p := range probe {
		for _, b := range build {
			if b[buildKey].Equal(p[probeKey]) {
				*out = append(*out, b.Concat(p))
			}
		}
	}
}

// ThreadPerInstanceJoin executes a co-partitioned equi-join with the static
// model: exactly one goroutine per fragment pair, each bound to its own
// fragment (no work sharing). The result schema concatenates build and probe
// columns like the DBS3 join.
func ThreadPerInstanceJoin(build, probe *partition.Partitioned, buildKey, probeKey string) (*partition.Partitioned, error) {
	if build.Degree() != probe.Degree() {
		return nil, fmt.Errorf("baseline: degrees differ (%d vs %d)", build.Degree(), probe.Degree())
	}
	bi, ok := build.Schema.Index(buildKey)
	if !ok {
		return nil, fmt.Errorf("baseline: no column %q in %s", buildKey, build.Schema)
	}
	pi, ok := probe.Schema.Index(probeKey)
	if !ok {
		return nil, fmt.Errorf("baseline: no column %q in %s", probeKey, probe.Schema)
	}
	d := build.Degree()
	results := make([][]relation.Tuple, d)
	var wg sync.WaitGroup
	for i := 0; i < d; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			joinFragments(build.Fragments[i], probe.Fragments[i], bi, pi, &results[i])
		}(i)
	}
	wg.Wait()
	schema := build.Schema.Concat(probe.Schema, build.Name+".", probe.Name+".")
	return partition.FromFragments("Res", schema, nil, results, 1)
}

// StaticMakespan is the virtual-time response of the static model for
// per-fragment costs: each instance runs on its own thread, threads are
// placed round-robin on processors, and a processor serializes its threads.
// Without queue sharing the longest processor queue is the response time —
// this is the curve the ablation benches compare against the DBS3 pool
// model.
func StaticMakespan(costs []float64, processors int) float64 {
	if processors < 1 {
		processors = 1
	}
	perProc := make([]float64, processors)
	for i, c := range costs {
		perProc[i%processors] += c
	}
	max := 0.0
	for _, v := range perProc {
		if v > max {
			max = v
		}
	}
	return max
}

// FirstFitDecreasingMakespan is the bucket-to-processor assignment of
// [Omiecinski91], the shared-memory skew handling §4 contrasts with: buckets
// are sorted by decreasing cost and each is placed on the currently
// least-loaded processor, *statically*, before execution. Unlike DBS3's
// shared queues the assignment cannot react to estimation error at run time,
// but with exact costs it equals LPT list scheduling — the ablation benches
// compare both against the naive round-robin static model.
func FirstFitDecreasingMakespan(costs []float64, processors int) float64 {
	if processors < 1 {
		processors = 1
	}
	sorted := append([]float64(nil), costs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	load := make([]float64, processors)
	for _, c := range sorted {
		min := 0
		for i := 1; i < processors; i++ {
			if load[i] < load[min] {
				min = i
			}
		}
		load[min] += c
	}
	max := 0.0
	for _, v := range load {
		if v > max {
			max = v
		}
	}
	return max
}

// DynamicJoin executes an equi-join in the dynamic page-based model: both
// relations live as unpartitioned page lists; `threads` workers first drain
// a shared build-page counter to populate a shared (sharded) hash table,
// then drain a shared probe-page counter probing it. Every worker touches
// the same shared structures — the interference the paper's hybrid model
// avoids by static partitioning.
type DynamicJoin struct {
	PageSize int
	Threads  int
}

// shardCount for the shared hash table; small on purpose so contention is
// measurable in benches.
const shardCount = 16

type hashShard struct {
	mu sync.Mutex
	m  map[string][]relation.Tuple
}

// Run executes the join and returns the result relation.
func (dj DynamicJoin) Run(build, probe *relation.Relation, buildKey, probeKey string) (*relation.Relation, error) {
	bi, ok := build.Schema.Index(buildKey)
	if !ok {
		return nil, fmt.Errorf("baseline: no column %q in %s", buildKey, build.Schema)
	}
	pi, ok := probe.Schema.Index(probeKey)
	if !ok {
		return nil, fmt.Errorf("baseline: no column %q in %s", probeKey, probe.Schema)
	}
	pageSize := dj.PageSize
	if pageSize <= 0 {
		pageSize = 64
	}
	threads := dj.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}

	shards := make([]*hashShard, shardCount)
	for i := range shards {
		shards[i] = &hashShard{m: make(map[string][]relation.Tuple)}
	}
	shardOf := func(v relation.Value) *hashShard { return shards[v.Hash()%shardCount] }

	// Build phase: workers grab pages from a shared counter.
	var buildCursor atomic.Int64
	pages := func(n int) int { return (n + pageSize - 1) / pageSize }
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(buildCursor.Add(1)) - 1
				if p >= pages(len(build.Tuples)) {
					return
				}
				lo, hi := p*pageSize, (p+1)*pageSize
				if hi > len(build.Tuples) {
					hi = len(build.Tuples)
				}
				for _, t := range build.Tuples[lo:hi] {
					sh := shardOf(t[bi])
					k := relation.Tuple{t[bi]}.Key()
					sh.mu.Lock()
					sh.m[k] = append(sh.m[k], t)
					sh.mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Probe phase: same shared-counter pattern.
	var probeCursor atomic.Int64
	results := make([][]relation.Tuple, threads)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				p := int(probeCursor.Add(1)) - 1
				if p >= pages(len(probe.Tuples)) {
					return
				}
				lo, hi := p*pageSize, (p+1)*pageSize
				if hi > len(probe.Tuples) {
					hi = len(probe.Tuples)
				}
				for _, t := range probe.Tuples[lo:hi] {
					sh := shardOf(t[pi])
					k := relation.Tuple{t[pi]}.Key()
					sh.mu.Lock()
					matches := sh.m[k]
					sh.mu.Unlock()
					for _, b := range matches {
						results[w] = append(results[w], b.Concat(t))
					}
				}
			}
		}(w)
	}
	wg.Wait()

	schema := build.Schema.Concat(probe.Schema, build.Name+".", probe.Name+".")
	out := relation.New("Res", schema)
	for _, rs := range results {
		out.Tuples = append(out.Tuples, rs...)
	}
	return out, nil
}
