package baseline

import (
	"runtime"
	"testing"
	"time"

	"dbs3/internal/workload"
)

// checkNoLeak fails if the goroutine count has not returned to the
// pre-call level shortly after fn returns — both join baselines spawn a
// worker per fragment (or per thread) and must join every one, including
// on the error paths.
func checkNoLeak(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

func TestThreadPerInstanceJoinNoLeak(t *testing.T) {
	db, err := workload.NewJoinDB(500, 100, 10, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	checkNoLeak(t, func() {
		if _, err := ThreadPerInstanceJoin(db.A, db.B, "k", "k"); err != nil {
			t.Error(err)
		}
	})
	// The error path returns before any worker is spawned; it must not
	// strand a partial fan-out either.
	db8, err := workload.NewJoinDB(100, 24, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkNoLeak(t, func() {
		if _, err := ThreadPerInstanceJoin(db.A, db8.B, "k", "k"); err == nil {
			t.Error("mismatched degrees: expected error")
		}
	})
}

func TestDynamicJoinNoLeak(t *testing.T) {
	db, err := workload.NewJoinDB(500, 100, 10, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	checkNoLeak(t, func() {
		dj := DynamicJoin{PageSize: 16, Threads: 8}
		if _, err := dj.Run(db.A.Union(), db.B.Union(), "k", "k"); err != nil {
			t.Error(err)
		}
	})
}
