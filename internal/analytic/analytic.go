// Package analytic implements the paper's performance analysis (§4.1):
// the worst-case overhead bound of equations (1)-(3), the maximum useful
// degree of parallelism nmax of §5.5, and the Zipf-derived skew factors that
// parameterize them. Experiments plot these curves next to the simulated
// measurements exactly as the paper plots Tworst next to measured times.
package analytic

import (
	"math"

	"dbs3/internal/zipf"
)

// Tideal is the ideal execution time of an operation with a activations of
// mean processing time p on n threads: all threads finish simultaneously
// (equation 1's reference point).
func Tideal(a int, p float64, n int) float64 {
	if n <= 0 || a < 0 {
		panic("analytic: Tideal needs n > 0 and a >= 0")
	}
	return float64(a) * p / float64(n)
}

// VBound is the worst-case overhead v of equation (3):
//
//	v <= (Pmax/P) * (n-1) / a
//
// where Pmax/P is the skew factor, n the number of threads and a the number
// of activations.
func VBound(skewFactor float64, n, a int) float64 {
	if a <= 0 {
		panic("analytic: VBound needs a > 0")
	}
	return skewFactor * float64(n-1) / float64(a)
}

// Tworst is the worst-case execution time of equation (2): all activations
// but the most expensive are perfectly balanced, then one thread processes
// the last (most expensive) activation alone:
//
//	Tworst <= (a*P - Pmax)/n + Pmax = (1 + v) * Tideal
func Tworst(a int, p float64, n int, pmax float64) float64 {
	if n <= 0 {
		panic("analytic: Tworst needs n > 0")
	}
	return (float64(a)*p-pmax)/float64(n) + pmax
}

// Nmax is the maximum useful degree of parallelism of a triggered operation
// (§5.5): when Pmax > a*P/n the response time equals Pmax regardless of n,
// so there is no gain beyond nmax = a*P/Pmax.
func Nmax(a int, p, pmax float64) float64 {
	if pmax <= 0 {
		panic("analytic: Nmax needs pmax > 0")
	}
	return float64(a) * p / pmax
}

// ZipfSkewFactor is Pmax/P for a fragments whose cardinalities follow
// Zipf(theta): a * p1. The paper's anchor: ZipfSkewFactor(200, 1) = 34.
func ZipfSkewFactor(a int, theta float64) float64 {
	return zipf.SkewRatio(a, theta)
}

// NmaxZipf is nmax for Zipf-skewed fragments when the per-activation cost is
// proportional to fragment cardinality: a / skewFactor, which reduces to the
// generalized harmonic number H_{a,theta}.
func NmaxZipf(a int, theta float64) float64 {
	return float64(a) / ZipfSkewFactor(a, theta)
}

// SpeedupBound is the response-time speed-up ceiling of a triggered
// operation with n threads: limited both by n itself (and the processor
// count p) and by the longest activation (nmax).
func SpeedupBound(n, processors int, nmax float64) float64 {
	s := math.Min(float64(n), float64(processors))
	return math.Min(s, nmax)
}

// TriggeredTimeLPT predicts the response time of a triggered operation under
// the LPT strategy for per-activation costs sorted any way: the classic
// Graham bound tightened by the "longest activation floor" the paper
// observes (the inflection past Zipf 0.8 in Figure 13):
//
//	T >= max(sum/n, Pmax)
//
// LPT stays within (4/3 - 1/(3n)) of optimum [Graham69]; on the paper's
// fragment-size distributions it is near the floor, so the floor itself is
// the reference curve.
func TriggeredTimeLPT(costs []float64, n int) float64 {
	if n <= 0 {
		panic("analytic: TriggeredTimeLPT needs n > 0")
	}
	var sum, pmax float64
	for _, c := range costs {
		sum += c
		if c > pmax {
			pmax = c
		}
	}
	return math.Max(sum/float64(n), pmax)
}

// VFromTimes computes the measured overhead v = T/T0 - 1 used by Figures 18
// and 19 (v0.6 = T0.6/T0 - 1).
func VFromTimes(t, t0 float64) float64 {
	if t0 <= 0 {
		panic("analytic: VFromTimes needs t0 > 0")
	}
	return t/t0 - 1
}
