package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"dbs3/internal/zipf"
)

func TestTidealAndTworstConsistent(t *testing.T) {
	// Equation (1): Tworst = (1+v) * Tideal with v from equation (3) when
	// Pmax = skew * P.
	a, n := 200, 10
	p := 2.0
	skew := 34.0
	pmax := skew * p
	ti := Tideal(a, p, n)
	tw := Tworst(a, p, n, pmax)
	v := VBound(skew, n, a)
	if rel := math.Abs(tw-(1+v)*ti) / tw; rel > 1e-9 {
		t.Errorf("Tworst=%v != (1+v)*Tideal=%v", tw, (1+v)*ti)
	}
}

// The paper's footnote anchor: "With Zipf = 1 and a = 200 buckets, we have
// Pmax = 34 P. With 70 threads, we have v = 34 x 69 / 20000 = 0.117".
func TestAssocJoinWorstCaseAnchor(t *testing.T) {
	skew := ZipfSkewFactor(200, 1)
	if math.Abs(skew-34) > 0.1 {
		t.Fatalf("skew factor = %v, want ~34", skew)
	}
	v := VBound(34, 70, 20000)
	if math.Abs(v-0.117) > 0.001 {
		t.Errorf("v = %v, paper computes 0.117", v)
	}
}

// §5.5 anchors: nmax = 6 with Zipf 1, 19 with 0.6, 40 with 0.4 (a = 200).
func TestNmaxAnchors(t *testing.T) {
	cases := []struct {
		theta float64
		want  float64
		tol   float64
	}{{1, 6, 0.2}, {0.6, 19, 0.2}, {0.4, 40, 1.1}}
	for _, c := range cases {
		got := NmaxZipf(200, c.theta)
		if math.Abs(math.Ceil(got)-c.want) > c.tol {
			t.Errorf("theta=%v: nmax=%v, paper says %v", c.theta, got, c.want)
		}
	}
}

func TestNmaxEquivalence(t *testing.T) {
	// Nmax(a, P, Pmax) with Pmax = skew*P must equal a/skew.
	a := 200
	p := 3.7
	skew := ZipfSkewFactor(a, 0.6)
	got := Nmax(a, p, skew*p)
	want := NmaxZipf(a, 0.6)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Nmax=%v, NmaxZipf=%v", got, want)
	}
}

func TestSpeedupBound(t *testing.T) {
	if s := SpeedupBound(100, 70, 1e9); s != 70 {
		t.Errorf("processor-limited speedup = %v", s)
	}
	if s := SpeedupBound(30, 70, 1e9); s != 30 {
		t.Errorf("thread-limited speedup = %v", s)
	}
	if s := SpeedupBound(100, 70, 6); s != 6 {
		t.Errorf("nmax-limited speedup = %v", s)
	}
}

func TestTriggeredTimeLPT(t *testing.T) {
	// Balanced: floor is sum/n.
	costs := []float64{1, 1, 1, 1}
	if got := TriggeredTimeLPT(costs, 2); got != 2 {
		t.Errorf("balanced LPT time = %v", got)
	}
	// One giant activation: floor is Pmax.
	costs = []float64{100, 1, 1, 1}
	if got := TriggeredTimeLPT(costs, 8); got != 100 {
		t.Errorf("skewed LPT time = %v", got)
	}
}

func TestVFromTimes(t *testing.T) {
	if v := VFromTimes(12, 10); math.Abs(v-0.2) > 1e-12 {
		t.Errorf("v = %v", v)
	}
	if v := VFromTimes(10, 10); v != 0 {
		t.Errorf("v = %v", v)
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Tideal":           func() { Tideal(1, 1, 0) },
		"VBound":           func() { VBound(1, 1, 0) },
		"Tworst":           func() { Tworst(1, 1, 0, 1) },
		"Nmax":             func() { Nmax(1, 1, 0) },
		"TriggeredTimeLPT": func() { TriggeredTimeLPT(nil, 0) },
		"VFromTimes":       func() { VFromTimes(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic on invalid input", name)
				}
			}()
			f()
		}()
	}
}

// Property: Tworst >= Tideal always (overhead is non-negative) and equals
// Tideal exactly when Pmax = P (no skew... Pmax = mean with a*P total).
func TestWorstNotBelowIdealProperty(t *testing.T) {
	f := func(aRaw uint8, nRaw uint8, skewRaw uint8) bool {
		a := int(aRaw)%500 + 1
		n := int(nRaw)%100 + 1
		p := 1.0
		skew := 1 + float64(skewRaw)/8 // Pmax/P >= 1
		pmax := skew * p
		if pmax > float64(a)*p {
			pmax = float64(a) * p // Pmax cannot exceed total work
		}
		return Tworst(a, p, n, pmax) >= Tideal(a, p, n)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: VBound decreases in a and increases in n — the paper's two
// levers: more activations absorb skew, more threads expose it.
func TestVBoundMonotonicityProperty(t *testing.T) {
	f := func(nRaw, aRaw uint8) bool {
		n := int(nRaw)%50 + 2
		a := int(aRaw)%1000 + 2
		s := 10.0
		return VBound(s, n, a) >= VBound(s, n, a+1)-1e-12 &&
			VBound(s, n+1, a) >= VBound(s, n, a)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Cross-check with the zipf package: VBound with the Zipf skew factor for
// the paper's AssocJoin configuration stays under 12% (the "worst case is
// only 12% worse than ideal" claim of §5.5).
func TestAssocJoinWorstUnder12Percent(t *testing.T) {
	v := VBound(zipf.SkewRatio(200, 1), 70, 20000)
	if v > 0.12 {
		t.Errorf("v = %v, paper bounds it at ~0.117 < 0.12", v)
	}
}
