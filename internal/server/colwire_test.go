package server

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// chunkCase is one round-trip fixture: a column-type vector and rows obeying
// it. The INT values deliberately include magnitudes JSON cannot carry
// losslessly (beyond 2^53) and both int64 extremes — the columnar encoding
// exists partly so those survive the wire.
type chunkCase struct {
	name  string
	types []string
	rows  [][]any
}

func chunkCases() []chunkCase {
	return []chunkCase{
		{"empty", []string{"INT", "STRING"}, nil},
		{"int-extremes", []string{"INT"}, [][]any{
			{int64(0)}, {int64(-1)}, {int64(1)},
			{int64(1) << 53}, {int64(1)<<53 + 1}, {-(int64(1)<<53 + 1)},
			{int64(math.MaxInt64)}, {int64(math.MinInt64)},
		}},
		{"strings", []string{"STRING"}, [][]any{
			{""}, {"a"}, {"héllo wörld"}, {strings.Repeat("x", 1000)},
			{"embedded\x00nul"}, {"newline\nand\ttab"},
		}},
		{"mixed", []string{"INT", "STRING", "INT", "STRING"}, [][]any{
			{int64(42), "alpha", int64(-7), ""},
			{int64(1) << 62, "", int64(math.MinInt64), "β"},
			{int64(-1), "z", int64(0), "trailing"},
		}},
	}
}

// TestColChunkRoundTrip is the codec's core property: decode(encode(rows))
// is identity for every engine column type, at full int64 range.
func TestColChunkRoundTrip(t *testing.T) {
	for _, tc := range chunkCases() {
		t.Run(tc.name, func(t *testing.T) {
			payload, err := appendColChunk(nil, tc.types, tc.rows)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := decodeColChunk(tc.types, payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got) != len(tc.rows) {
				t.Fatalf("round trip returned %d rows, want %d", len(got), len(tc.rows))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], tc.rows[i]) {
					t.Fatalf("row %d: got %v, want %v", i, got[i], tc.rows[i])
				}
			}
		})
	}
}

// TestColChunkTruncationIsError cuts every valid prefix of an encoded chunk:
// none may decode successfully (the full payload is the only valid form) and
// none may panic.
func TestColChunkTruncationIsError(t *testing.T) {
	for _, tc := range chunkCases() {
		if len(tc.rows) == 0 {
			continue
		}
		payload, err := appendColChunk(nil, tc.types, tc.rows)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		for cut := 0; cut < len(payload); cut++ {
			if _, err := decodeColChunk(tc.types, payload[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d decoded without error", tc.name, cut, len(payload))
			}
		}
		// Trailing garbage is corruption too, not ignorable padding.
		if _, err := decodeColChunk(tc.types, append(payload[:len(payload):len(payload)], 0xff)); err == nil {
			t.Fatalf("%s: trailing byte decoded without error", tc.name)
		}
	}
}

// TestColChunkRejectsHostileRowCount: a row count far beyond the payload
// must fail fast instead of allocating rows for it.
func TestColChunkRejectsHostileRowCount(t *testing.T) {
	// Uvarint for 2^40 rows followed by a one-byte "payload".
	payload := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 0x00}
	if _, err := decodeColChunk([]string{"INT"}, payload); err == nil {
		t.Fatal("absurd row count decoded without error")
	}
}

// TestColFrameRoundTrip exercises the frame layer: a written sequence reads
// back kind-for-kind, and a stream cut mid-frame surfaces an error from
// readFrame rather than a silent end (a cut on a frame boundary is io.EOF —
// the protocol layer's job to reject as a missing terminal frame).
func TestColFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		kind    byte
		payload []byte
	}{
		{frameHeader, []byte(`{"columns":["a"]}`)},
		{frameRows, []byte{1, 2}},
		{frameRows, nil},
		{frameDone, []byte(`{"rowCount":1}`)},
	}
	boundaries := map[int]bool{0: true}
	for _, f := range frames {
		if err := writeFrame(&buf, f.kind, f.payload); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		boundaries[buf.Len()] = true
	}
	encoded := buf.Bytes()

	fr := newColFrameReader(bytes.NewReader(encoded))
	for i, f := range frames {
		kind, payload, err := fr.readFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != f.kind || !bytes.Equal(payload, f.payload) {
			t.Fatalf("frame %d: got (%c, %v), want (%c, %v)", i, kind, payload, f.kind, f.payload)
		}
	}
	if _, _, err := fr.readFrame(); err != io.EOF {
		t.Fatalf("read past end: got %v, want io.EOF", err)
	}

	for cut := 1; cut < len(encoded); cut++ {
		fr := newColFrameReader(bytes.NewReader(encoded[:cut]))
		var err error
		for err == nil {
			_, _, err = fr.readFrame()
		}
		if (err == io.EOF) != boundaries[cut] {
			t.Fatalf("cut at %d: got %v, boundary=%v", cut, err, boundaries[cut])
		}
	}
}

// TestColFrameRejectsOversizedLength: a hostile length prefix beyond the
// frame bound errors out instead of allocating it.
func TestColFrameRejectsOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(frameRows)
	// Uvarint for 2^40 bytes.
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	fr := newColFrameReader(&buf)
	if _, _, err := fr.readFrame(); err == nil {
		t.Fatal("oversized frame length read without error")
	}
}

// FuzzColumnarChunk drives arbitrary bytes through the chunk decoder for
// every engine column-type shape the result header can declare: the decoder
// must never panic, and whatever decodes successfully must survive a
// re-encode/re-decode round trip unchanged. (Byte-identity of the re-encode
// is deliberately not asserted: varints admit non-minimal encodings, so two
// payloads can decode to the same chunk.)
func FuzzColumnarChunk(f *testing.F) {
	shapes := [][]string{
		{"INT"},
		{"STRING"},
		{"INT", "STRING"},
		{"STRING", "INT", "INT", "STRING", "INT"},
	}
	for _, tc := range chunkCases() {
		payload, err := appendColChunk(nil, tc.types, tc.rows)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x80}) // one row, truncated varint
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, types := range shapes {
			rows, err := decodeColChunk(types, data)
			if err != nil {
				continue
			}
			re, err := appendColChunk(nil, types, rows)
			if err != nil {
				t.Fatalf("decoded chunk failed to re-encode: %v", err)
			}
			again, err := decodeColChunk(types, re)
			if err != nil {
				t.Fatalf("re-encoded chunk failed to decode: %v", err)
			}
			if !reflect.DeepEqual(again, rows) {
				t.Fatalf("round trip changed rows for %v:\n got %v\nwant %v", types, again, rows)
			}
		}
	})
}

// FuzzColumnarFrame drives arbitrary bytes through the frame reader: no
// input may panic it, and every frame it does return must be bounded by the
// input it was read from.
func FuzzColumnarFrame(f *testing.F) {
	var buf bytes.Buffer
	writeFrame(&buf, frameHeader, []byte(`{"columns":["a"],"types":["INT"]}`))
	writeFrame(&buf, frameRows, []byte{0x01, 0x02})
	writeFrame(&buf, frameDone, []byte(`{"rowCount":1}`))
	f.Add(buf.Bytes())
	f.Add([]byte{'R'})
	f.Add([]byte{'R', 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := newColFrameReader(bytes.NewReader(data))
		total := 0
		for {
			_, payload, err := fr.readFrame()
			if err != nil {
				return
			}
			total += len(payload)
			if total > len(data) {
				t.Fatalf("frames yielded %d payload bytes from %d input bytes", total, len(data))
			}
		}
	})
}
