package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestServeColumnarEndToEnd streams the same mixed INT/STRING query once
// over NDJSON and once over the binary columnar encoding, both negotiation
// paths (Accept header via Client.Columnar, and the wire option), and
// requires identical rows and footers. The encodings must be observationally
// equivalent — only bytes on the wire differ.
func TestServeColumnarEndToEnd(t *testing.T) {
	client, _ := newTestServer(t, 5_000)
	const sql = "SELECT unique1, stringu1, unique2 FROM wisc WHERE unique1 < ?"
	args := []any{300}

	fetch := func(columnar bool, opts *Options) ([][]any, *Footer) {
		t.Helper()
		c := *client
		c.Columnar = columnar
		stream, err := c.Query(context.Background(), sql, args, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer stream.Close()
		if got := stream.Header().Types; !reflect.DeepEqual(got, []string{"INT", "STRING", "INT"}) {
			t.Fatalf("header types = %v", got)
		}
		var rows [][]any
		for stream.Next() {
			rows = append(rows, stream.Row())
		}
		if err := stream.Err(); err != nil {
			t.Fatal(err)
		}
		return rows, stream.Footer()
	}

	ndRows, ndFoot := fetch(false, nil)
	colRows, colFoot := fetch(true, nil)
	optRows, optFoot := fetch(false, &Options{Wire: "columnar"})

	if len(ndRows) != 300 {
		t.Fatalf("ndjson returned %d rows, want 300", len(ndRows))
	}
	if !reflect.DeepEqual(colRows, ndRows) {
		t.Fatalf("columnar rows differ from ndjson rows")
	}
	if !reflect.DeepEqual(optRows, ndRows) {
		t.Fatalf("wire-option columnar rows differ from ndjson rows")
	}
	for _, f := range []*Footer{ndFoot, colFoot, optFoot} {
		if f == nil || f.RowCount != 300 {
			t.Fatalf("footer %+v, want rowCount 300", f)
		}
	}
}

// TestServeColumnarContentType: the response declares the negotiated
// encoding, and the wire option beats the Accept header in both directions.
func TestServeColumnarContentType(t *testing.T) {
	client, _ := newTestServer(t, 100)
	cases := []struct {
		name   string
		accept string
		wire   string
		want   string
	}{
		{"default", "", "", contentTypeNDJSON},
		{"accept", ContentTypeColumnar, "", ContentTypeColumnar},
		{"option", "", "columnar", ContentTypeColumnar},
		{"option-overrides-accept", ContentTypeColumnar, "ndjson", contentTypeNDJSON},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := `{"sql":"SELECT unique2 FROM wisc WHERE unique1 < 1"`
			if tc.wire != "" {
				body += `,"options":{"wire":"` + tc.wire + `"}`
			}
			body += `}`
			req, err := http.NewRequest(http.MethodPost, client.Base+"/query", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			resp, err := client.HTTP.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %s", resp.Status)
			}
			if got := resp.Header.Get("Content-Type"); got != tc.want {
				t.Fatalf("Content-Type = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestServeUnknownWireRejected: an unknown encoding name is the client's
// error, reported before any query work happens.
func TestServeUnknownWireRejected(t *testing.T) {
	client, _ := newTestServer(t, 100)
	_, err := client.Query(context.Background(), "SELECT unique2 FROM wisc WHERE unique1 < 1", nil,
		&Options{Wire: "protobuf"})
	if err == nil || !strings.Contains(err.Error(), "unknown wire encoding") {
		t.Fatalf("err = %v, want unknown wire encoding", err)
	}
}

// TestServeStreamCounters: /stats exposes lifetime bytesWritten and
// rowsStreamed, and the columnar encoding demonstrably spends fewer bytes
// per row than NDJSON on the same result.
func TestServeStreamCounters(t *testing.T) {
	client, _ := newTestServer(t, 5_000)
	const sql = "SELECT * FROM wisc WHERE unique1 < ?"

	drain := func(columnar bool) (rows int64) {
		t.Helper()
		c := *client
		c.Columnar = columnar
		stream, err := c.Query(context.Background(), sql, []any{1000}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer stream.Close()
		for stream.Next() {
			rows++
		}
		if err := stream.Err(); err != nil {
			t.Fatal(err)
		}
		return rows
	}
	counters := func() (bytes, rows int64) {
		t.Helper()
		st, err := client.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return st.BytesWritten, st.RowsStreamed
	}

	b0, r0 := counters()
	n := drain(false)
	b1, r1 := counters()
	if got := r1 - r0; got != n {
		t.Errorf("ndjson stream added %d to rowsStreamed, want %d", got, n)
	}
	ndBytes := b1 - b0
	if ndBytes <= 0 {
		t.Fatalf("ndjson stream added %d to bytesWritten", ndBytes)
	}

	if got := drain(true); got != n {
		t.Fatalf("columnar stream returned %d rows, ndjson %d", got, n)
	}
	b2, r2 := counters()
	if got := r2 - r1; got != n {
		t.Errorf("columnar stream added %d to rowsStreamed, want %d", got, n)
	}
	colBytes := b2 - b1
	if colBytes <= 0 || colBytes >= ndBytes {
		t.Errorf("columnar stream wrote %d bytes, ndjson %d — columnar should be smaller", colBytes, ndBytes)
	}
	t.Logf("bytes/row: ndjson %.1f, columnar %.1f (%.1fx)",
		float64(ndBytes)/float64(n), float64(colBytes)/float64(n), float64(ndBytes)/float64(colBytes))
}

// TestServeColumnarPreparedExec: the encoding negotiates per execution on
// the prepared-statement path too.
func TestServeColumnarPreparedExec(t *testing.T) {
	client, _ := newTestServer(t, 1_000)
	prep, err := client.Prepare(context.Background(),
		"SELECT unique2 FROM wisc WHERE unique1 < ?", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.CloseStmt(context.Background(), prep.ID)

	stream, err := client.Exec(context.Background(), prep.ID, []any{25}, &Options{Wire: "columnar"})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	n := 0
	for stream.Next() {
		if _, ok := stream.Row()[0].(int64); !ok {
			t.Fatalf("row value %T, want int64", stream.Row()[0])
		}
		n++
	}
	if err := stream.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("exec returned %d rows, want 25", n)
	}
}

// TestNegotiateWire pins the precedence table at the unit level.
func TestNegotiateWire(t *testing.T) {
	req := func(accept string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/query", nil)
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		return r
	}
	if ct, err := negotiateWire(req(""), nil); err != nil || ct != contentTypeNDJSON {
		t.Errorf("default: %q, %v", ct, err)
	}
	if ct, err := negotiateWire(req("application/json, "+ContentTypeColumnar), nil); err != nil || ct != ContentTypeColumnar {
		t.Errorf("accept list: %q, %v", ct, err)
	}
	if ct, err := negotiateWire(req(""), &Options{Wire: "columnar"}); err != nil || ct != ContentTypeColumnar {
		t.Errorf("option: %q, %v", ct, err)
	}
	if ct, err := negotiateWire(req(ContentTypeColumnar), &Options{Wire: "ndjson"}); err != nil || ct != contentTypeNDJSON {
		t.Errorf("option beats accept: %q, %v", ct, err)
	}
	if _, err := negotiateWire(req(""), &Options{Wire: "csv"}); err == nil {
		t.Error("unknown wire name accepted")
	}
}
