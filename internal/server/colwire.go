package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
)

// Binary columnar result encoding. NDJSON (the default) spends most of a
// wide result's bytes on JSON syntax — brackets, commas, base-10 digits —
// and most of the server's encode time in reflection. The columnar encoding
// keeps the same stream shape (header, row chunks, one terminal message) but
// carries each row chunk column-major in a compact binary form, so a
// Wisconsin-width integer row costs a handful of varint bytes instead of a
// hundred JSON characters.
//
// A stream is a sequence of length-prefixed frames:
//
//	frame   := kind(1 byte) uvarint(payload length) payload
//	'H'     := JSON-encoded Header        (opens every stream)
//	'R'     := binary columnar row chunk  (zero or more)
//	'D'     := JSON-encoded Footer        (terminal: success)
//	'E'     := UTF-8 error text           (terminal: failure)
//
// An 'R' payload is column-major over the header's column order (column
// payloads are omitted entirely when nRows is 0):
//
//	chunk   := uvarint(nRows) column*
//	column  := INT:    intcol
//	           STRING: nRows × (uvarint(len) bytes)
//	intcol  := 0x00 nRows signed varints (zigzag, lossless for all int64)
//	         | 0x01 varint(min) width(1 byte, ≤64)
//	                ceil(nRows×width/8) bytes of bit-packed (v-min) offsets
//
// The second INT form is frame-of-reference bit-packing: the column stores
// its minimum once and each value as an offset at the column's worst-case
// bit width, LSB-first. Column-major layout is what makes it pay — a
// low-cardinality attribute sitting next to a unique key still packs at its
// own few bits per value. The encoder computes both forms' exact costs and
// keeps the smaller, so adversarially-spread columns (full int64 range in
// one chunk) degrade to plain varints, never worse.
//
// Metadata frames stay JSON: they are rare (two per stream), and keeping
// them self-describing means the header/footer evolve with the NDJSON
// protocol for free. Only the row payload — the part that scales with the
// result — is binary. Both INT forms are lossless for the full int64 range,
// which NDJSON-to-JavaScript consumers cannot say (JSON numbers lose
// precision past 2^53); Header.Types remains the decode contract exactly as
// for NDJSON rows.
//
// Decoders must be safe on hostile input: every length is bounds-checked
// against what was actually read, and a truncated or oversized frame is an
// error, never a panic or an unbounded allocation.

// ContentTypeColumnar is the negotiated media type of the binary columnar
// stream. Clients opt in per request via the Accept header or the wire
// Options; responses declare it in Content-Type.
const ContentTypeColumnar = "application/x-dbs3-colchunk"

// contentTypeNDJSON is the default stream encoding.
const contentTypeNDJSON = "application/x-ndjson"

// Frame kinds. Values are printable so a hexdump of a stream reads.
const (
	frameHeader byte = 'H'
	frameRows   byte = 'R'
	frameDone   byte = 'D'
	frameError  byte = 'E'
)

// maxFramePayload bounds a decoded frame's payload (64 MiB). Real frames
// are a few KiB (one row chunk); the bound exists so a corrupt or hostile
// length prefix cannot make the decoder allocate unboundedly.
const maxFramePayload = 64 << 20

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = kind
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// INT column encodings (the intcol mode byte).
const (
	intColVarint byte = 0x00
	intColPacked byte = 0x01
)

// appendColChunk appends one encoded row chunk to dst. Values must match
// types ("INT" → int64, "STRING" → string), the engine's row contract.
func appendColChunk(dst []byte, types []string, rows [][]any) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	if len(rows) == 0 {
		return dst, nil
	}
	for c, typ := range types {
		switch typ {
		case "INT":
			var err error
			if dst, err = appendIntCol(dst, c, rows); err != nil {
				return nil, err
			}
		case "STRING":
			for _, row := range rows {
				s, ok := row[c].(string)
				if !ok {
					return nil, fmt.Errorf("server: column %d is %T, want string", c, row[c])
				}
				dst = binary.AppendUvarint(dst, uint64(len(s)))
				dst = append(dst, s...)
			}
		default:
			return nil, fmt.Errorf("server: unknown column type %q", typ)
		}
	}
	return dst, nil
}

// appendIntCol encodes one INT column in whichever of the two forms costs
// fewer bytes: plain varints, or frame-of-reference bit-packing (min value
// once, then fixed-width offsets). Both costs are exact, computed in one
// pass over the column.
func appendIntCol(dst []byte, c int, rows [][]any) ([]byte, error) {
	min, max := int64(0), int64(0)
	varintCost := 0
	for i, row := range rows {
		v, ok := row[c].(int64)
		if !ok {
			return nil, fmt.Errorf("server: column %d is %T, want int64", c, row[c])
		}
		if i == 0 {
			min, max = v, v
		} else if v < min {
			min = v
		} else if v > max {
			max = v
		}
		// Zigzag varint length: 1 byte per started 7-bit group.
		zz := uint64(v)<<1 ^ uint64(v>>63)
		varintCost += (bits.Len64(zz|1) + 6) / 7
	}
	// Offsets span the column's range; uint64 subtraction is exact even
	// when the int64 difference would overflow.
	width := bits.Len64(uint64(max) - uint64(min))
	zzMin := uint64(min)<<1 ^ uint64(min>>63)
	packedCost := (bits.Len64(zzMin|1)+6)/7 + 1 + (len(rows)*width+7)/8
	if varintCost <= packedCost {
		dst = append(dst, intColVarint)
		for _, row := range rows {
			dst = binary.AppendVarint(dst, row[c].(int64))
		}
		return dst, nil
	}
	dst = append(dst, intColPacked)
	dst = binary.AppendVarint(dst, min)
	dst = append(dst, byte(width))
	base := len(dst)
	dst = append(dst, make([]byte, (len(rows)*width+7)/8)...)
	for i, row := range rows {
		putBits(dst[base:], i*width, width, uint64(row[c].(int64))-uint64(min))
	}
	return dst, nil
}

// putBits writes the low `width` bits of v into b at bit position pos,
// LSB-first. b must already be zeroed over the target range.
func putBits(b []byte, pos, width int, v uint64) {
	for got := 0; got < width; {
		sh := (pos + got) % 8
		take := 8 - sh
		if take > width-got {
			take = width - got
		}
		b[(pos+got)/8] |= byte(((v >> got) & (1<<take - 1)) << sh)
		got += take
	}
}

// getBits reads `width` bits from b at bit position pos, LSB-first. The
// caller guarantees the range is in bounds.
func getBits(b []byte, pos, width int) uint64 {
	var v uint64
	for got := 0; got < width; {
		sh := (pos + got) % 8
		take := 8 - sh
		if take > width-got {
			take = width - got
		}
		v |= uint64(b[(pos+got)/8]>>sh&(1<<take-1)) << got
		got += take
	}
	return v
}

// maxChunkRows bounds one chunk's row count (2^20). A bit-packed constant
// column costs a few bytes no matter how many rows it spans, so payload
// size cannot bound the row count; this protocol-level cap is what keeps a
// hostile count from driving an enormous allocation. Far above any real
// chunk (servers default to 64 rows).
const maxChunkRows = 1 << 20

// decodeColChunk decodes one 'R' payload into rows of int64/string values.
// It is total over arbitrary input: malformed payloads return an error.
func decodeColChunk(types []string, payload []byte) ([][]any, error) {
	nRows64, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("server: columnar chunk: bad row count")
	}
	payload = payload[n:]
	if nRows64 > maxChunkRows {
		return nil, fmt.Errorf("server: columnar chunk: row count %d exceeds the %d limit", nRows64, maxChunkRows)
	}
	if len(types) == 0 && nRows64 > 0 {
		return nil, fmt.Errorf("server: columnar chunk: rows without columns")
	}
	nRows := int(nRows64)
	rows := make([][]any, nRows)
	vals := make([]any, nRows*len(types))
	for i := range rows {
		rows[i], vals = vals[:len(types):len(types)], vals[len(types):]
	}
	if nRows == 0 {
		if len(payload) != 0 {
			return nil, fmt.Errorf("server: columnar chunk: %d trailing bytes", len(payload))
		}
		return rows, nil
	}
	for c, typ := range types {
		switch typ {
		case "INT":
			var err error
			if payload, err = decodeIntCol(payload, c, rows); err != nil {
				return nil, err
			}
		case "STRING":
			for r := 0; r < nRows; r++ {
				size, n := binary.Uvarint(payload)
				if n <= 0 || size > uint64(len(payload)-n) {
					return nil, fmt.Errorf("server: columnar chunk: truncated STRING column %d", c)
				}
				payload = payload[n:]
				rows[r][c] = string(payload[:size])
				payload = payload[size:]
			}
		default:
			return nil, fmt.Errorf("server: unknown column type %q", typ)
		}
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("server: columnar chunk: %d trailing bytes", len(payload))
	}
	return rows, nil
}

// decodeIntCol decodes one INT column (either intcol form) into rows,
// returning the remaining payload.
func decodeIntCol(payload []byte, c int, rows [][]any) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("server: columnar chunk: truncated INT column %d", c)
	}
	mode := payload[0]
	payload = payload[1:]
	switch mode {
	case intColVarint:
		for r := range rows {
			v, n := binary.Varint(payload)
			if n <= 0 {
				return nil, fmt.Errorf("server: columnar chunk: truncated INT column %d", c)
			}
			payload = payload[n:]
			rows[r][c] = v
		}
		return payload, nil
	case intColPacked:
		min, n := binary.Varint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("server: columnar chunk: truncated INT column %d", c)
		}
		payload = payload[n:]
		if len(payload) == 0 {
			return nil, fmt.Errorf("server: columnar chunk: truncated INT column %d", c)
		}
		width := int(payload[0])
		payload = payload[1:]
		if width > 64 {
			return nil, fmt.Errorf("server: columnar chunk: INT column %d has bit width %d", c, width)
		}
		packedLen := (len(rows)*width + 7) / 8
		if len(payload) < packedLen {
			return nil, fmt.Errorf("server: columnar chunk: truncated INT column %d", c)
		}
		packed := payload[:packedLen]
		for r := range rows {
			// Wrapping add: offsets were computed with uint64 subtraction,
			// so this is exact across the whole int64 range.
			rows[r][c] = int64(uint64(min) + getBits(packed, r*width, width))
		}
		return payload[packedLen:], nil
	default:
		return nil, fmt.Errorf("server: columnar chunk: INT column %d has unknown mode %#x", c, mode)
	}
}

// colFrameReader reads length-prefixed frames off a stream. The payload
// buffer is reused across frames; callers must consume (or copy) a payload
// before reading the next frame.
type colFrameReader struct {
	r   *bufio.Reader
	buf []byte
}

func newColFrameReader(r io.Reader) *colFrameReader {
	return &colFrameReader{r: bufio.NewReader(r)}
}

// readFrame returns the next frame's kind and payload. Any truncation —
// mid-prefix or mid-payload — surfaces as an error (io.EOF only ever means
// a clean boundary before the kind byte; stream completeness is the
// caller's protocol-level check).
func (fr *colFrameReader) readFrame() (byte, []byte, error) {
	kind, err := fr.r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	size, err := binary.ReadUvarint(fr.r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("server: columnar frame: %w", err)
	}
	if size > maxFramePayload {
		return 0, nil, fmt.Errorf("server: columnar frame of %d bytes exceeds the %d limit", size, maxFramePayload)
	}
	if uint64(cap(fr.buf)) < size {
		fr.buf = make([]byte, size)
	}
	payload := fr.buf[:size]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("server: columnar frame: %w", err)
	}
	return kind, payload, nil
}

// resultEncoder is the server half of one streamed result: the stream
// machinery (buffering, flush cadence, cancellation) is shared, only the
// byte encoding differs. Implementations write to the stream's buffered
// writer and are serialized by the stream's write mutex.
type resultEncoder interface {
	header(h *Header) error
	rows(chunk [][]any) error
	done(f *Footer) error
	// fail writes the terminal error message. Encoders must always get it
	// on the wire if at all possible — it is the client's only signal that
	// the stream is truncated deliberately rather than cut.
	fail(msg string) error
}

// StreamEncoder is the exported face of a result-stream encoder, for
// front ends outside this package (the cluster coordinator) that speak the
// same wire protocol: one Header, any number of row chunks, one terminal
// Done or Fail. Calls must be serialized by the caller.
type StreamEncoder struct{ enc resultEncoder }

// NewStreamEncoder builds an encoder for the negotiated Content-Type (from
// NegotiateWire): the NDJSON message stream or the binary columnar frame
// stream. types aligns with the result columns and is required for columnar
// encoding.
func NewStreamEncoder(w io.Writer, contentType string, types []string) *StreamEncoder {
	if contentType == ContentTypeColumnar {
		return &StreamEncoder{enc: &columnarEncoder{w: w, types: types}}
	}
	return &StreamEncoder{enc: &ndjsonEncoder{enc: json.NewEncoder(w)}}
}

// Header opens the stream.
func (s *StreamEncoder) Header(h *Header) error { return s.enc.header(h) }

// Rows writes one row chunk.
func (s *StreamEncoder) Rows(chunk [][]any) error { return s.enc.rows(chunk) }

// Done closes a complete stream.
func (s *StreamEncoder) Done(f *Footer) error { return s.enc.done(f) }

// Fail closes the stream with an in-band error.
func (s *StreamEncoder) Fail(msg string) error { return s.enc.fail(msg) }

// ndjsonEncoder is the default JSON-lines encoding (see Message).
type ndjsonEncoder struct {
	enc *json.Encoder
}

func (e *ndjsonEncoder) header(h *Header) error   { return e.enc.Encode(Message{Header: h}) }
func (e *ndjsonEncoder) rows(chunk [][]any) error { return e.enc.Encode(Message{Rows: chunk}) }
func (e *ndjsonEncoder) done(f *Footer) error     { return e.enc.Encode(Message{Done: f}) }
func (e *ndjsonEncoder) fail(msg string) error    { return e.enc.Encode(Message{Error: msg}) }

// columnarEncoder writes the length-prefixed binary frame stream.
type columnarEncoder struct {
	w     io.Writer
	types []string
	buf   []byte // payload scratch, reused across chunks
}

func (e *columnarEncoder) header(h *Header) error {
	payload, err := json.Marshal(h)
	if err != nil {
		return err
	}
	return writeFrame(e.w, frameHeader, payload)
}

func (e *columnarEncoder) rows(chunk [][]any) error {
	payload, err := appendColChunk(e.buf[:0], e.types, chunk)
	if err != nil {
		return err
	}
	e.buf = payload[:0]
	return writeFrame(e.w, frameRows, payload)
}

func (e *columnarEncoder) done(f *Footer) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	return writeFrame(e.w, frameDone, payload)
}

func (e *columnarEncoder) fail(msg string) error {
	return writeFrame(e.w, frameError, []byte(msg))
}
