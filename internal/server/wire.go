// Package server exposes a dbs3.Database — and the concurrent runtime
// behind it — over HTTP, so independent network clients drive the
// QueryManager the way the paper's multi-user experiments do: many
// concurrent statements sharing one thread budget, with per-query adaptive
// parallelism.
//
// The wire protocol is JSON. Query results stream as NDJSON (one JSON
// message per line) so rows reach the client as the engine produces them:
//
//	POST /query            {"sql": ..., "args": [...], "options": {...}}
//	POST /prepare          {"sql": ..., "options": {...}} -> {"id": "s1", ...}
//	POST /stmt/{id}/exec   {"args": [...]}
//	DELETE /stmt/{id}      close a prepared statement
//	GET  /stmt/{id}        prepared-statement metadata
//	GET  /stats            manager + plan-cache counters
//	GET  /healthz          liveness probe
//
// A streamed response is a header message, any number of row-chunk
// messages, and exactly one terminal message (done or error):
//
//	{"header":{"columns":["a"],"types":["INT"],"threads":3,"utilization":0.5}}
//	{"rows":[[1],[2],[3]]}
//	{"done":{"rowCount":3,"threads":3}}
//
// A client that asks for it (Accept header or options.wire: "columnar")
// gets the same stream shape as length-prefixed binary frames with
// column-major row chunks instead — a several-fold bytes-per-row saving on
// wide results, and lossless for the full int64 range. See colwire.go.
//
// Cancellation is free: each query executes under its HTTP request's
// context, so a client that disconnects mid-stream aborts the query and
// returns its threads to the shared budget.
package server

import (
	"fmt"
	"strconv"

	"encoding/json"

	"dbs3"
)

// Options is the wire form of dbs3.Options: the per-request execution knobs
// a client may set. Field semantics match the facade; zero values defer to
// the server's defaults.
type Options struct {
	// Threads fixes the query's degree of parallelism (0 = scheduler picks).
	Threads int `json:"threads,omitempty"`
	// Strategy is the queue consumption strategy: auto, random, lpt.
	Strategy string `json:"strategy,omitempty"`
	// JoinAlgo selects the join implementation: hash, nested-loop, temp-index.
	JoinAlgo string `json:"join,omitempty"`
	// Grain splits triggered work into partial triggers of this many tuples.
	Grain int `json:"grain,omitempty"`
	// Priority is the admission class: interactive or batch. The
	// X-DBS3-Priority request header sets a per-connection default; this
	// field overrides it per request.
	Priority string `json:"priority,omitempty"`
	// StreamBuffer is the bounded row-sink capacity between engine and wire.
	StreamBuffer int `json:"streamBuffer,omitempty"`
	// BatchGrain is the engine's producer-side tuple batch size on the
	// pipelined data plane (0 = engine default, 1 = per-tuple pushes).
	BatchGrain int `json:"batchGrain,omitempty"`
	// Materialize splits the plan at a materialization point before
	// aggregation/projection, letting the manager renegotiate the query's
	// thread reservation between the two chains (see dbs3.Options).
	Materialize bool `json:"materialize,omitempty"`
	// Utilization in [0, 1) tells this server's scheduler how busy the rest
	// of the system already is, shrinking auto-chosen parallelism [Rahm93].
	// A cluster coordinator sets it from the other nodes' measured load
	// (GET /stats smoothedUtilization), extending the paper's feedback loop
	// across machines.
	Utilization float64 `json:"utilization,omitempty"`
	// MemoryBudget caps the query's blocking-operator working memory in
	// bytes; operators spill to disk beyond it. Under a manager with a
	// machine-wide memory budget this is a ceiling on the admission grant.
	// 0 defers to the server default.
	MemoryBudget int64 `json:"memoryBudget,omitempty"`
	// Wire selects the result-stream encoding: "ndjson" (default) or
	// "columnar" (length-prefixed binary frames; see colwire.go). It
	// overrides the Accept header; anything else is a 400.
	Wire string `json:"wire,omitempty"`
}

// QueryRequest is the body of POST /query and POST /prepare (args are
// ignored by /prepare — they bind per execution).
type QueryRequest struct {
	SQL     string   `json:"sql"`
	Args    []any    `json:"args,omitempty"`
	Options *Options `json:"options,omitempty"`
}

// ExecRequest is the body of POST /stmt/{id}/exec. Options (and the
// priority header) override the statement's prepare-time options for this
// execution only.
type ExecRequest struct {
	Args    []any    `json:"args,omitempty"`
	Options *Options `json:"options,omitempty"`
}

// PrepareResponse describes a server-side prepared statement.
type PrepareResponse struct {
	ID      string   `json:"id"`
	SQL     string   `json:"sql"`
	Columns []string `json:"columns"`
	Types   []string `json:"types"`
	// Params is the number of `?` placeholder arguments each execution
	// must supply.
	Params int `json:"params"`
}

// Header opens every streamed result: the static result shape plus what the
// scheduler decided for this execution.
type Header struct {
	Columns []string `json:"columns"`
	// Types aligns with Columns ("INT" or "STRING"); clients need it to
	// decode row values losslessly (JSON numbers are not int64).
	Types       []string `json:"types"`
	Threads     int      `json:"threads"`
	Utilization float64  `json:"utilization"`
}

// Footer closes a successfully streamed result.
type Footer struct {
	RowCount int64 `json:"rowCount"`
	Threads  int   `json:"threads"`
	// ChainThreads is the per-chain renegotiated thread trace of a managed
	// multi-chain query (one grant per chain, in order); absent for
	// single-chain statements.
	ChainThreads []int                `json:"chainThreads,omitempty"`
	Operators    []dbs3.OperatorStats `json:"operators,omitempty"`
	// SpilledBytes and SpillPasses total the query's larger-than-memory
	// activity under a memory budget; absent when nothing spilled.
	SpilledBytes int64 `json:"spilledBytes,omitempty"`
	SpillPasses  int64 `json:"spillPasses,omitempty"`
}

// Message is one NDJSON line of a streamed result: exactly one field is set.
type Message struct {
	Header *Header `json:"header,omitempty"`
	Rows   [][]any `json:"rows,omitempty"`
	Done   *Footer `json:"done,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	// Budget is the manager's machine-wide thread budget.
	Budget int `json:"budget"`
	// ActiveThreads is the thread count currently allocated across running
	// queries (never exceeds Budget); Active is the running query count.
	ActiveThreads int `json:"activeThreads"`
	PeakThreads   int `json:"peakThreads"`
	Active        int `json:"active"`
	Queued        int `json:"queued"`
	// Lifetime query counters.
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Rejected  int64 `json:"rejected"`
	// Mid-flight adaptivity counters: chain-boundary renegotiations, the
	// threads they returned to the budget before query completion, and the
	// threads they grew into freed budget.
	Readmissions          int64 `json:"readmissions"`
	ThreadsReturnedEarly  int64 `json:"threadsReturnedEarly"`
	ThreadsGrownMidFlight int64 `json:"threadsGrownMidFlight"`
	// SmoothedUtilization is the admission feedback EWMA.
	SmoothedUtilization float64 `json:"smoothedUtilization"`
	// Memory admission counters: the machine-wide working-memory budget (0
	// = memory admission off), the bytes reserved by running queries, the
	// lifetime reservation high-water mark, and the lifetime spill totals
	// (bytes written to spill runs, partition/merge passes) across queries.
	MemBudget    int64 `json:"memBudget,omitempty"`
	MemInFlight  int64 `json:"memInFlight,omitempty"`
	PeakMem      int64 `json:"peakMem,omitempty"`
	SpilledBytes int64 `json:"spilledBytes,omitempty"`
	SpillPasses  int64 `json:"spillPasses,omitempty"`
	// Spill buffer-pool counters aggregated across queries: read-back page
	// hits, misses that went to disk, and pages currently resident.
	BufferPoolHits     int64 `json:"bufferPoolHits,omitempty"`
	BufferPoolMisses   int64 `json:"bufferPoolMisses,omitempty"`
	BufferPoolResident int64 `json:"bufferPoolResident,omitempty"`
	// Plan-cache amortization counters.
	PlanCacheHits   int64 `json:"planCacheHits"`
	PlanCacheMisses int64 `json:"planCacheMisses"`
	// Statements is the number of open server-side prepared statements;
	// StatementsExpired counts the ones the idle-TTL sweep has reclaimed
	// from abandoned clients over the server's lifetime.
	Statements        int   `json:"statements"`
	StatementsExpired int64 `json:"statementsExpired"`
	// BytesWritten and RowsStreamed are lifetime result-stream counters:
	// encoded bytes put on the wire (across every encoding) and rows
	// streamed. Their ratio is the observed bytes-per-row cost of the
	// server's result encodings.
	BytesWritten int64 `json:"bytesWritten"`
	RowsStreamed int64 `json:"rowsStreamed"`
	// Relations lists the served catalog.
	Relations []string `json:"relations"`
}

// decodeArgs converts JSON-decoded placeholder arguments (from a decoder
// with UseNumber set) into the Go kinds the facade binds: json.Number to
// int64, strings as-is. Anything else — floats, booleans, null, nesting —
// has no engine type.
func decodeArgs(args []any) ([]any, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]any, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case json.Number:
			n, err := strconv.ParseInt(v.String(), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("server: argument %d: %q is not a 64-bit integer", i+1, v.String())
			}
			out[i] = n
		case string:
			out[i] = v
		default:
			return nil, fmt.Errorf("server: argument %d has unsupported type %T (want integer or string)", i+1, a)
		}
	}
	return out, nil
}

// DecodeRow converts one wire row (decoded with UseNumber) back into engine
// values using the header's column types: INT columns become int64, STRING
// columns become string. This is the client half of the round-trip contract:
// a row encoded by the server decodes to exactly the values the engine
// produced, for every column type the engine has.
func DecodeRow(types []string, raw []any) ([]any, error) {
	if len(raw) != len(types) {
		return nil, fmt.Errorf("server: row has %d values for %d columns", len(raw), len(types))
	}
	out := make([]any, len(raw))
	for i, v := range raw {
		switch types[i] {
		case "INT":
			num, ok := v.(json.Number)
			if !ok {
				return nil, fmt.Errorf("server: column %d is %T, want a JSON number (decode with UseNumber)", i, v)
			}
			n, err := strconv.ParseInt(num.String(), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("server: column %d: %q is not a 64-bit integer", i, num.String())
			}
			out[i] = n
		case "STRING":
			s, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("server: column %d is %T, want string", i, v)
			}
			out[i] = s
		default:
			return nil, fmt.Errorf("server: unknown column type %q", types[i])
		}
	}
	return out, nil
}
