package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dbs3"
)

// newAuthServer serves a small Wisconsin database locked behind token.
func newAuthServer(t *testing.T, token string) string {
	t.Helper()
	db := dbs3.New()
	if err := db.CreateWisconsin("wisc", 200, 4, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	m := db.Manager(dbs3.ManagerConfig{Budget: testBudget})
	ts := httptest.NewServer(New(db, m, Config{AuthToken: token}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { ts.Client().CloseIdleConnections() })
	return ts.URL
}

// TestAuthRejectsWithoutToken: with AuthToken configured, every endpoint —
// healthz included — 401s a request with a missing or wrong credential, and
// serves one carrying the right token.
func TestAuthRejectsWithoutToken(t *testing.T) {
	url := newAuthServer(t, "s3cret")
	ctx := context.Background()

	for name, client := range map[string]*Client{
		"no token":    {Base: url},
		"wrong token": {Base: url, Token: "wrong"},
	} {
		if err := client.Health(ctx); err == nil {
			t.Errorf("%s: healthz served", name)
		} else if se, ok := err.(*StatusError); !ok || se.Code != http.StatusUnauthorized {
			t.Errorf("%s: healthz error %v, want 401", name, err)
		}
		if _, err := client.Stats(ctx); err == nil {
			t.Errorf("%s: stats served", name)
		}
		if _, err := client.Query(ctx, "SELECT * FROM wisc WHERE unique1 < 5", nil, nil); err == nil {
			t.Errorf("%s: query served", name)
		}
		if _, err := client.Prepare(ctx, "SELECT * FROM wisc", nil); err == nil {
			t.Errorf("%s: prepare served", name)
		}
	}

	authed := &Client{Base: url, Token: "s3cret"}
	if err := authed.Health(ctx); err != nil {
		t.Fatalf("authorized healthz rejected: %v", err)
	}
	stream, err := authed.Query(ctx, "SELECT * FROM wisc WHERE unique1 < 5", nil, nil)
	if err != nil {
		t.Fatalf("authorized query rejected: %v", err)
	}
	n := 0
	for stream.Next() {
		n++
	}
	if err := stream.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("authorized query streamed %d rows, want 5", n)
	}
}

// TestAuthDisabledWhenTokenEmpty: no configured token means no auth — the
// pre-cluster behavior is unchanged.
func TestAuthDisabledWhenTokenEmpty(t *testing.T) {
	url := newAuthServer(t, "")
	if err := (&Client{Base: url}).Health(context.Background()); err != nil {
		t.Fatalf("tokenless server rejected a bare client: %v", err)
	}
}

// TestClientRetriesConnectRefused: a transient connect failure — the server
// binds its listener only after the first attempts fail — is retried with
// backoff and the request ultimately succeeds, transparently.
func TestClientRetriesConnectRefused(t *testing.T) {
	// Reserve an address, then free it so the first dial gets ECONNREFUSED.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	db := dbs3.New()
	if err := db.CreateWisconsin("wisc", 100, 2, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	m := db.Manager(dbs3.ManagerConfig{Budget: testBudget})
	srv := &http.Server{Handler: New(db, m, Config{})}
	started := make(chan struct{})
	go func() {
		// Let the client burn its first attempt against the closed port.
		time.Sleep(50 * time.Millisecond)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			close(started)
			return
		}
		close(started)
		srv.Serve(l2)
	}()
	t.Cleanup(func() { srv.Close() })

	client := &Client{Base: "http://" + addr, Retries: 8, RetryBackoff: 20 * time.Millisecond}
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("health with retries against a late-binding server: %v", err)
	}
	<-started

	// Without retries the same race is a hard error.
	l3, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l3.Addr().String()
	l3.Close()
	bare := &Client{Base: "http://" + deadAddr}
	if err := bare.Health(context.Background()); err == nil {
		t.Fatal("health against a dead address succeeded without retries")
	}
}

// TestClientHeaderTimeout: a server that accepts but never responds trips
// the header-phase timeout instead of hanging the caller forever.
func TestClientHeaderTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			// Hold the connection open, never write a response.
			defer conn.Close()
		}
	}()
	client := &Client{Base: "http://" + l.Addr().String(), Timeout: 100 * time.Millisecond}
	start := time.Now()
	err = client.Health(context.Background())
	if err == nil {
		t.Fatal("health against a black-hole server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", elapsed)
	}
}

// TestClientTimeoutSparesLongStreams: the timeout bounds only the header
// phase — a result body that streams past the deadline is not cut off.
func TestClientTimeoutSparesLongStreams(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentTypeNDJSON)
		w.WriteHeader(http.StatusOK)
		fl, _ := w.(http.Flusher)
		w.Write([]byte(`{"header":{"columns":["a"],"types":["INT"],"threads":1,"utilization":0}}` + "\n"))
		if fl != nil {
			fl.Flush()
		}
		// Stream rows slowly across several timeout windows.
		for i := 0; i < 5; i++ {
			time.Sleep(40 * time.Millisecond)
			w.Write([]byte(`{"rows":[[1]]}` + "\n"))
			if fl != nil {
				fl.Flush()
			}
		}
		w.Write([]byte(`{"done":{"rowCount":5,"threads":1}}` + "\n"))
	}))
	t.Cleanup(slow.Close)
	t.Cleanup(slow.Client().CloseIdleConnections)

	client := &Client{Base: slow.URL, HTTP: slow.Client(), Timeout: 60 * time.Millisecond}
	stream, err := client.Query(context.Background(), "irrelevant", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for stream.Next() {
		n++
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("slow stream killed by the header timeout: %v", err)
	}
	if n != 5 {
		t.Errorf("streamed %d rows, want 5", n)
	}
}

// TestUtilizationOptionReachesScheduler: the wire Utilization field overlays
// onto the execution options — a loaded cluster's fan-out shows up in the
// worker's header as external load the scheduler accounted for.
func TestUtilizationOptionReachesScheduler(t *testing.T) {
	client, _ := newTestServer(t, 2000)
	ctx := context.Background()
	idle, err := client.Query(ctx, "SELECT * FROM wisc WHERE unique1 < 50", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	idleThreads := idle.Header().Threads
	for idle.Next() {
	}
	idle.Close()
	busy, err := client.Query(ctx, "SELECT * FROM wisc WHERE unique1 < 50", nil, &Options{Utilization: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	busyThreads := busy.Header().Threads
	for busy.Next() {
	}
	busy.Close()
	if busyThreads > idleThreads {
		t.Errorf("threads under 0.95 remote load = %d, idle = %d; external load must not grow parallelism", busyThreads, idleThreads)
	}
	if idleThreads > 1 && busyThreads >= idleThreads {
		t.Errorf("scheduler ignored Utilization: idle=%d busy=%d", idleThreads, busyThreads)
	}
}
