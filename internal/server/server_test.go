package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dbs3"
	dbruntime "dbs3/internal/runtime"
)

// testBudget is the shared thread budget every serve test runs under —
// deliberately small so concurrent clients actually contend for it.
const testBudget = 4

// newHTTPServer serves an already-populated database on an ephemeral port.
// Cleanup closes the server and its idle connections so the goroutine-leak
// checks see a quiet world.
func newHTTPServer(t *testing.T, db *dbs3.Database, m *dbruntime.Manager) *Client {
	t.Helper()
	ts := httptest.NewServer(New(db, m, Config{}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { ts.Client().CloseIdleConnections() })
	return &Client{Base: ts.URL, HTTP: ts.Client()}
}

// newTestServer builds a Wisconsin database, installs a manager with
// testBudget threads, and serves it.
func newTestServer(t *testing.T, wiscCard int) (*Client, *dbruntime.Manager) {
	t.Helper()
	db := dbs3.New()
	if err := db.CreateWisconsin("wisc", wiscCard, 8, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	m := db.Manager(dbs3.ManagerConfig{Budget: testBudget})
	return newHTTPServer(t, db, m), m
}

// goroutineBaseline snapshots the goroutine count before a test body runs.
type goroutineBaseline int

func takeGoroutineBaseline() goroutineBaseline {
	return goroutineBaseline(runtime.NumGoroutine())
}

// check fails the test if the goroutine count has not returned to (near)
// the baseline — the goleak-style assertion that a cancelled query's pool
// threads, sink goroutine and HTTP plumbing all unwound. A small slack
// absorbs runtime background goroutines; the retry loop gives unwinding
// code a moment to finish after the observable state (stats) already
// settled.
func (base goroutineBaseline) check(t *testing.T) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= int(base)+slack {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d at baseline, %d after", base, now)
}

// TestServeEndToEnd is the acceptance test: 10 concurrent HTTP clients with
// mixed interactive/batch priorities stream results through a 4-thread
// budget. Rows must arrive correctly for every binding, the manager's
// thread accounting must add up, and the allocated thread count must never
// exceed the budget — sampled live via /stats while the load runs, and
// checked again via the manager's own high-water mark afterwards.
func TestServeEndToEnd(t *testing.T) {
	client, m := newTestServer(t, 20_000)
	const (
		clients    = 10
		executions = 4
	)

	// Warm the plan cache with one serial execution so the concurrent phase
	// cannot race several first-compilations of the same statement (each
	// would count a miss).
	warm, err := client.Query(context.Background(),
		"SELECT unique2 FROM wisc WHERE unique1 < ?", []any{3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for warm.Next() {
	}
	if err := warm.Err(); err != nil {
		t.Fatal(err)
	}

	// Live budget sampler: /stats is polled concurrently with the load.
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st, err := client.Stats(context.Background())
			if err == nil && st.ActiveThreads > st.Budget {
				t.Errorf("ActiveThreads %d exceeds budget %d", st.ActiveThreads, st.Budget)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			pri := "interactive"
			if c%2 == 1 {
				pri = "batch"
			}
			for i := 0; i < executions; i++ {
				limit := (c+1)*50 + i
				stream, err := client.Query(context.Background(),
					"SELECT unique2 FROM wisc WHERE unique1 < ?",
					[]any{limit}, &Options{Priority: pri})
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				n := 0
				for stream.Next() {
					if _, ok := stream.Row()[0].(int64); !ok {
						t.Errorf("client %d: row value %T", c, stream.Row()[0])
					}
					n++
				}
				if err := stream.Err(); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if n != limit {
					t.Errorf("client %d: binding %d returned %d rows", c, limit, n)
					return
				}
				if f := stream.Footer(); f == nil || f.RowCount != int64(limit) {
					t.Errorf("client %d: footer %+v, want rowCount %d", c, f, limit)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakThreads > st.Budget {
		t.Errorf("peak threads %d exceeded budget %d", st.PeakThreads, st.Budget)
	}
	if st.Budget != testBudget {
		t.Errorf("budget = %d, want %d", st.Budget, testBudget)
	}
	// Every execution completed (warm-up included), nothing is still
	// running, and the ledger balances: admitted = completed when nothing
	// failed or was cancelled.
	want := int64(clients*executions + 1)
	if st.Admitted != want || st.Completed != want || st.Failed != 0 || st.Cancelled != 0 {
		t.Errorf("stats ledger %+v, want %d admitted = completed", st, want)
	}
	if st.Active != 0 || st.ActiveThreads != 0 || st.Queued != 0 {
		t.Errorf("load drained but stats show activity: %+v", st)
	}
	// One SQL shape across every execution: the plan compiled exactly once.
	if st.PlanCacheMisses != 1 || st.PlanCacheHits != want-1 {
		t.Errorf("plan cache %d hits / %d misses, want %d/1", st.PlanCacheHits, st.PlanCacheMisses, want-1)
	}
	if mst := m.Stats(); mst.PeakThreads > testBudget {
		t.Errorf("manager high-water mark %d exceeded budget", mst.PeakThreads)
	}
}

// TestServeStreamsBeforeCompletion: the first rows of a large result arrive
// over the wire while the query is demonstrably still executing — /stats
// reports it active and holding threads.
func TestServeStreamsBeforeCompletion(t *testing.T) {
	client, _ := newTestServer(t, 100_000)
	stream, err := client.Query(context.Background(), "SELECT * FROM wisc", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if !stream.Next() {
		t.Fatalf("no first row: %v", stream.Err())
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The bounded sink (64 rows) cannot hold 100k tuples, so a first row
	// with the query still active proves streaming, not buffering.
	if st.Active != 1 || st.ActiveThreads < 1 {
		t.Errorf("query not active after first row: %+v", st)
	}
	if h := stream.Header(); len(h.Columns) == 0 || len(h.Types) != len(h.Columns) {
		t.Errorf("bad header %+v", h)
	}
}

// TestServeDisconnectReleasesThreads: a client that vanishes mid-stream
// must not pin its query's threads. The request context cancels, the
// engine unwinds, the admission returns its reservation, and no goroutine
// is left behind.
func TestServeDisconnectReleasesThreads(t *testing.T) {
	client, m := newTestServer(t, 100_000)
	// Baseline after the server is up (its accept loop is not a leak);
	// closing the client's idle connections before the check lets the
	// per-connection serve goroutines drain too.
	base := takeGoroutineBaseline()

	for round, disconnect := range []string{"cancel", "close"} {
		ctx, cancel := context.WithCancel(context.Background())
		stream, err := client.Query(ctx, "SELECT * FROM wisc", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10 && stream.Next(); i++ {
		}
		if st := m.Stats(); st.Active != 1 {
			t.Fatalf("round %d: query not running mid-stream: %+v", round, st)
		}
		// Kill the client: cancelling the request context and closing the
		// response body are the two ways a real client dies mid-stream.
		if disconnect == "cancel" {
			cancel()
		} else {
			stream.Close()
		}

		deadline := time.Now().Add(5 * time.Second)
		for {
			st := m.Stats()
			if st.ThreadsInFlight == 0 && st.Active == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d (%s): threads not released: %+v", round, disconnect, st)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if st := m.Stats(); st.Cancelled != int64(round+1) {
			t.Errorf("round %d (%s): cancelled = %d, want %d", round, disconnect, st.Cancelled, round+1)
		}
		stream.Close()
		cancel()
	}

	// The budget is immediately reusable after both disconnects.
	stream, err := client.Query(context.Background(), "SELECT unique2 FROM wisc WHERE unique1 < ?", []any{7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for stream.Next() {
		n++
	}
	if err := stream.Err(); err != nil || n != 7 {
		t.Fatalf("follow-up query: %d rows, err %v", n, err)
	}

	client.HTTP.CloseIdleConnections()
	base.check(t)
}

// TestServePreparedStatements: the /prepare + /stmt/{id}/exec path — one
// server-side compilation serving many argument bindings, with metadata,
// close, and post-close 404 semantics.
func TestServePreparedStatements(t *testing.T) {
	client, _ := newTestServer(t, 2000)
	ctx := context.Background()

	prep, err := client.Prepare(ctx, "SELECT unique2, stringu1 FROM wisc WHERE unique1 < ?", nil)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Params != 1 {
		t.Errorf("params = %d, want 1", prep.Params)
	}
	if fmt.Sprint(prep.Columns) != "[unique2 stringu1]" || fmt.Sprint(prep.Types) != "[INT STRING]" {
		t.Errorf("metadata %v %v", prep.Columns, prep.Types)
	}

	for _, limit := range []int{1, 17, 400} {
		stream, err := client.Exec(ctx, prep.ID, []any{limit}, nil)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		n := 0
		for stream.Next() {
			row := stream.Row()
			if _, ok := row[0].(int64); !ok {
				t.Fatalf("limit %d: col 0 is %T", limit, row[0])
			}
			if _, ok := row[1].(string); !ok {
				t.Fatalf("limit %d: col 1 is %T", limit, row[1])
			}
			n++
		}
		if err := stream.Err(); err != nil || n != limit {
			t.Errorf("limit %d: %d rows, err %v", limit, n, err)
		}
	}

	// GET metadata agrees with the prepare response.
	info, err := client.Prepare(ctx, "SELECT unique2 FROM wisc WHERE unique1 < 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Params != 0 {
		t.Errorf("literal statement params = %d", info.Params)
	}

	// Argument errors surface as HTTP errors before any stream starts.
	if _, err := client.Exec(ctx, prep.ID, nil, nil); err == nil || !strings.Contains(err.Error(), "1 argument") {
		t.Errorf("missing arg: %v", err)
	}
	if _, err := client.Exec(ctx, prep.ID, []any{"x"}, nil); err == nil || !strings.Contains(err.Error(), "wants INT") {
		t.Errorf("type mismatch: %v", err)
	}
	if _, err := client.Exec(ctx, prep.ID, []any{1.5}, nil); err == nil {
		t.Errorf("float arg accepted: %v", err)
	}

	// Per-execution option overrides reach admission: an invalid priority
	// is rejected, a valid one executes against the same compiled plan.
	if _, err := client.Exec(ctx, prep.ID, []any{1}, &Options{Priority: "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown priority") {
		t.Errorf("exec priority override not applied: %v", err)
	}
	bstream, err := client.Exec(ctx, prep.ID, []any{5}, &Options{Priority: "batch"})
	if err != nil {
		t.Fatal(err)
	}
	bn := 0
	for bstream.Next() {
		bn++
	}
	if err := bstream.Err(); err != nil || bn != 5 {
		t.Errorf("batch-priority exec: %d rows, err %v", bn, err)
	}

	// Close; the id is gone.
	if err := client.CloseStmt(ctx, prep.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Exec(ctx, prep.ID, []any{1}, nil); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("exec after close: %v", err)
	}
	if err := client.CloseStmt(ctx, prep.ID); err == nil {
		t.Error("double close accepted")
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Statements != 1 { // the literal statement is still open
		t.Errorf("open statements = %d, want 1", st.Statements)
	}
}

// TestServeRequestValidation: malformed requests and bad options map to
// client errors, not stream corruption or 500s.
func TestServeRequestValidation(t *testing.T) {
	client, _ := newTestServer(t, 200)
	ctx := context.Background()

	if _, err := client.Query(ctx, "", nil, nil); err == nil || !strings.Contains(err.Error(), "empty sql") {
		t.Errorf("empty sql: %v", err)
	}
	if _, err := client.Query(ctx, "SELECT nope FROM wisc", nil, nil); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("bad column: %v", err)
	}
	if _, err := client.Query(ctx, "SELECT * FROM wisc", nil, &Options{Priority: "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown priority") {
		t.Errorf("bad priority option: %v", err)
	}
	if _, err := client.Query(ctx, "SELECT * FROM wisc", nil, &Options{Strategy: "bogus"}); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Errorf("bad strategy: %v", err)
	}
	if _, err := client.Exec(ctx, "s999", []any{1}, nil); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown stmt: %v", err)
	}

	// The priority header is honored — and validated — per request.
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, client.Base+"/query",
		strings.NewReader(`{"sql":"SELECT * FROM wisc"}`))
	req.Header.Set("X-DBS3-Priority", "bogus")
	resp, err := client.HTTP.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus priority header: status %d", resp.StatusCode)
	}

	// healthz answers.
	hresp, err := client.HTTP.Get(client.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hresp.StatusCode)
	}
}

// TestServeMaterializeReadmission: a materialize query over the wire splits
// into two chains and renegotiates its thread reservation at the boundary —
// the per-chain trace arrives in the stream footer and the readmission
// counters appear in GET /stats.
func TestServeMaterializeReadmission(t *testing.T) {
	client, m := newTestServer(t, 5_000)
	ctx := context.Background()

	stream, err := client.Query(ctx, "SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil, &Options{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	rows := 0
	for stream.Next() {
		rows++
	}
	if err := stream.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 10 {
		t.Fatalf("got %d groups, want 10", rows)
	}
	footer := stream.Footer()
	if footer == nil {
		t.Fatal("no footer")
	}
	if len(footer.ChainThreads) != 2 {
		t.Fatalf("footer ChainThreads = %v, want one grant per chain", footer.ChainThreads)
	}
	for ci, g := range footer.ChainThreads {
		if g < 1 || g > testBudget {
			t.Errorf("chain %d granted %d threads outside [1, budget]", ci, g)
		}
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Readmissions <= 0 {
		t.Errorf("/stats readmissions = %d, want > 0", st.Readmissions)
	}
	if st.Readmissions != m.Stats().Readmissions {
		t.Errorf("/stats readmissions %d != manager %d", st.Readmissions, m.Stats().Readmissions)
	}
	if st.ActiveThreads != 0 || st.Active != 0 {
		t.Errorf("threads leaked: %+v", st)
	}
	if st.PeakThreads > testBudget {
		t.Errorf("peak %d exceeded budget", st.PeakThreads)
	}
}
