package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a minimal Go client for the wire protocol — the reference
// consumer the end-to-end tests and the serve smoke script drive. Any HTTP
// client can speak the protocol; this one exists so the tests exercise
// exactly what we document.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Columnar asks the server (via the Accept header) for the binary
	// columnar result encoding on every query; a per-request Options.Wire
	// still overrides it. RowStream decodes whichever encoding the
	// response declares, so flipping this changes bytes on the wire, not
	// the rows the caller sees.
	Columnar bool
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post sends a JSON body and returns the raw response.
func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Columnar {
		req.Header.Set("Accept", ContentTypeColumnar)
	}
	return c.http().Do(req)
}

// errorFrom drains a non-200 response into an error.
func errorFrom(resp *http.Response) error {
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("server: %s: %s", resp.Status, bytes.TrimSpace(msg))
}

// Query runs one ad-hoc statement and returns the result stream.
func (c *Client) Query(ctx context.Context, sql string, args []any, opts *Options) (*RowStream, error) {
	resp, err := c.post(ctx, "/query", QueryRequest{SQL: sql, Args: args, Options: opts})
	if err != nil {
		return nil, err
	}
	return newRowStream(resp)
}

// Prepare compiles a statement server-side.
func (c *Client) Prepare(ctx context.Context, sql string, opts *Options) (*PrepareResponse, error) {
	resp, err := c.post(ctx, "/prepare", QueryRequest{SQL: sql, Options: opts})
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, errorFrom(resp)
	}
	defer resp.Body.Close()
	var out PrepareResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Exec executes a prepared statement with per-execution arguments. opts
// (nil for none) override the statement's prepare-time options for this
// execution.
func (c *Client) Exec(ctx context.Context, id string, args []any, opts *Options) (*RowStream, error) {
	resp, err := c.post(ctx, "/stmt/"+id+"/exec", ExecRequest{Args: args, Options: opts})
	if err != nil {
		return nil, err
	}
	return newRowStream(resp)
}

// CloseStmt discards a server-side prepared statement.
func (c *Client) CloseStmt(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/stmt/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent {
		return errorFrom(resp)
	}
	resp.Body.Close()
	return nil
}

// Stats fetches the server's manager and plan-cache counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, errorFrom(resp)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RowStream iterates a streamed result, cursor-style:
//
//	stream, err := client.Query(ctx, sql, nil, nil)
//	defer stream.Close()
//	for stream.Next() {
//		row := stream.Row() // []any of int64 / string per Header.Types
//	}
//	if err := stream.Err(); err != nil { ... }
//
// The stream decodes whichever encoding the response's Content-Type
// declares — NDJSON or binary columnar — into identical rows. Rows arrive
// as the server flushes chunks, so Next can return the first row while the
// query is still executing server-side. Closing mid-stream closes the HTTP
// body, which disconnects the request and cancels the query on the server.
type RowStream struct {
	resp   *http.Response
	dec    *json.Decoder   // NDJSON decode state (nil for columnar streams)
	col    *colFrameReader // columnar decode state (nil for NDJSON streams)
	header *Header
	buf    [][]any
	cur    []any
	footer *Footer
	err    error
	done   bool
}

// newRowStream validates the response, dispatches on its declared encoding
// and reads the header message.
func newRowStream(resp *http.Response) (*RowStream, error) {
	if resp.StatusCode != http.StatusOK {
		return nil, errorFrom(resp)
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), ContentTypeColumnar) {
		return newColumnarRowStream(resp)
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var msg Message
	if err := dec.Decode(&msg); err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("server: reading stream header: %w", err)
	}
	if msg.Error != "" {
		resp.Body.Close()
		return nil, fmt.Errorf("server: %s", msg.Error)
	}
	if msg.Header == nil {
		resp.Body.Close()
		return nil, fmt.Errorf("server: stream did not open with a header")
	}
	return &RowStream{resp: resp, dec: dec, header: msg.Header}, nil
}

// newColumnarRowStream reads the opening frame of a binary columnar stream.
func newColumnarRowStream(resp *http.Response) (*RowStream, error) {
	fr := newColFrameReader(resp.Body)
	kind, payload, err := fr.readFrame()
	if err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("server: reading stream header: %w", err)
	}
	switch kind {
	case frameError:
		resp.Body.Close()
		return nil, fmt.Errorf("server: %s", payload)
	case frameHeader:
		var h Header
		if err := json.Unmarshal(payload, &h); err != nil {
			resp.Body.Close()
			return nil, fmt.Errorf("server: decoding stream header: %w", err)
		}
		return &RowStream{resp: resp, col: fr, header: &h}, nil
	default:
		resp.Body.Close()
		return nil, fmt.Errorf("server: stream did not open with a header")
	}
}

// Header returns the stream's opening message.
func (s *RowStream) Header() *Header { return s.header }

// Next advances to the next row, fetching the next chunk off the wire when
// the buffered one is drained. It returns false at the end of the stream;
// Err distinguishes completion from failure, and Footer is set only after a
// complete stream.
func (s *RowStream) Next() bool {
	if s.done {
		return false
	}
	for len(s.buf) == 0 {
		fetch := s.fetchNDJSON
		if s.col != nil {
			fetch = s.fetchColumnar
		}
		if !fetch() {
			return false
		}
	}
	raw := s.buf[0]
	s.buf = s.buf[1:]
	if s.col != nil {
		// Columnar chunks decode straight to typed values.
		s.cur = raw
		return true
	}
	row, err := DecodeRow(s.header.Types, raw)
	if err != nil {
		s.fail(err)
		return false
	}
	s.cur = row
	return true
}

// fetchNDJSON reads the next NDJSON message into the row buffer. It returns
// false when the stream terminated (done, error, or truncation — the
// terminal state is already recorded on s by then).
func (s *RowStream) fetchNDJSON() bool {
	var msg Message
	if err := s.dec.Decode(&msg); err != nil {
		// Includes io.EOF before a done message: a truncated stream is
		// an error, never silent completion.
		s.fail(fmt.Errorf("server: stream truncated: %w", err))
		return false
	}
	switch {
	case msg.Error != "":
		s.fail(fmt.Errorf("server: %s", msg.Error))
		return false
	case msg.Done != nil:
		s.footer = msg.Done
		s.finish()
		return false
	default:
		s.buf = msg.Rows
		return true
	}
}

// fetchColumnar reads the next binary frame into the row buffer, with the
// same terminal contract as fetchNDJSON.
func (s *RowStream) fetchColumnar() bool {
	kind, payload, err := s.col.readFrame()
	if err != nil {
		s.fail(fmt.Errorf("server: stream truncated: %w", err))
		return false
	}
	switch kind {
	case frameError:
		s.fail(fmt.Errorf("server: %s", payload))
		return false
	case frameDone:
		var f Footer
		if err := json.Unmarshal(payload, &f); err != nil {
			s.fail(fmt.Errorf("server: decoding stream footer: %w", err))
			return false
		}
		s.footer = &f
		s.finish()
		return false
	case frameRows:
		rows, err := decodeColChunk(s.header.Types, payload)
		if err != nil {
			s.fail(err)
			return false
		}
		s.buf = rows
		return true
	default:
		s.fail(fmt.Errorf("server: unexpected frame kind %q", kind))
		return false
	}
}

// Row returns the current row: one int64 or string per column.
func (s *RowStream) Row() []any { return s.cur }

// Err returns the error that terminated the stream, if any.
func (s *RowStream) Err() error { return s.err }

// Footer returns the terminal statistics message, or nil if the stream did
// not complete.
func (s *RowStream) Footer() *Footer { return s.footer }

func (s *RowStream) fail(err error) {
	s.err = err
	s.finish()
}

func (s *RowStream) finish() {
	if !s.done {
		s.done = true
		s.cur = nil
		s.resp.Body.Close()
	}
}

// Close releases the stream. Closing before the done message disconnects
// the HTTP request, which cancels the query server-side and returns its
// threads to the budget.
func (s *RowStream) Close() error {
	s.finish()
	return nil
}
