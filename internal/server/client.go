package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"syscall"
	"time"
)

// defaultRetryBackoff seeds the retry backoff ladder when the client sets
// Retries but no RetryBackoff: long enough that a worker mid-restart gets a
// real chance to bind its listener, short enough that a coordinator fan-out
// barely notices a retried connect.
const defaultRetryBackoff = 50 * time.Millisecond

// defaultBackoffBudget caps the cumulative backoff slept across one
// request's retries when the client sets no BackoffBudget: a fan-out should
// give up on a worker that stayed unreachable for this long rather than
// keep a query pinned behind an ever-growing ladder.
const defaultBackoffBudget = 2 * time.Second

// Client is a minimal Go client for the wire protocol — the reference
// consumer the end-to-end tests, the cluster coordinator and the serve
// smoke script drive. Any HTTP client can speak the protocol; this one
// exists so the tests exercise exactly what we document.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Columnar asks the server (via the Accept header) for the binary
	// columnar result encoding on every query; a per-request Options.Wire
	// still overrides it. RowStream decodes whichever encoding the
	// response declares, so flipping this changes bytes on the wire, not
	// the rows the caller sees.
	Columnar bool
	// Token is the bearer credential sent as "Authorization: Bearer" on
	// every request, for servers running with Config.AuthToken.
	Token string
	// Timeout bounds each request's connect-and-respond phase: dialing,
	// writing the request, and receiving the response header. Streamed
	// result bodies are not covered — a long query streams for as long as
	// it runs — so the timeout catches unreachable or wedged servers
	// without capping result size. 0 means no timeout.
	Timeout time.Duration
	// Retries is how many times a request is re-sent after a transient
	// connect failure (connection refused/reset before any response —
	// e.g. fanning out to a worker that is still starting). Retries are
	// safe there because the server never saw the request. 0 disables.
	Retries int
	// RetryBackoff is the base of the retry backoff ladder (0 = 50ms).
	// Retry i sleeps a full-jitter backoff: uniform in [0, RetryBackoff<<i),
	// so a fleet of clients that all lost the same worker spreads its
	// reconnects out instead of thundering-herding the restart in lockstep.
	RetryBackoff time.Duration
	// BackoffBudget caps the cumulative backoff slept across one request's
	// retries (0 = 2s). Every sleep is clamped to the remaining budget, and
	// once the budget is spent the remaining Retries are forfeited — the
	// total stall a dead worker can inflict per request is bounded no
	// matter how high Retries is set.
	BackoffBudget time.Duration

	// sleep and jitter are test seams: sleep replaces the context-aware
	// backoff wait, jitter the uniform draw in [0, 1). Nil means real.
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func() float64
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// transientConnect reports whether a request failed before reaching the
// server: a dial-phase error (refused, unreachable, no listener yet) or a
// connection reset with no response. Only those are safe to retry blindly —
// the server never observed the request.
func transientConnect(err error) bool {
	var op *net.OpError
	if errors.As(err, &op) && op.Op == "dial" {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET)
}

// do sends one request with auth, the header-phase timeout, and bounded
// retry-with-full-jitter-backoff on transient connect errors. The returned
// cancel releases the request's context and MUST be called once the
// response is consumed (RowStream.finish does it for streamed bodies).
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, context.CancelFunc, error) {
	base := c.RetryBackoff
	if base <= 0 {
		base = defaultRetryBackoff
	}
	budget := c.BackoffBudget
	if budget <= 0 {
		budget = defaultBackoffBudget
	}
	for attempt := 0; ; attempt++ {
		resp, cancel, err := c.attempt(ctx, method, path, body)
		if err == nil {
			return resp, cancel, nil
		}
		if attempt >= c.Retries || budget <= 0 || !transientConnect(err) || ctx.Err() != nil {
			return nil, nil, err
		}
		// Full jitter over the doubling envelope, clamped to what is left
		// of the budget: envelope_i = min(base<<i, remaining budget),
		// sleep_i uniform in [0, envelope_i).
		envelope := budget
		if attempt < 20 { // beyond 2^20 the shift alone exceeds any sane budget
			if e := base << attempt; e < envelope {
				envelope = e
			}
		}
		d := time.Duration(c.rand01() * float64(envelope))
		if err := c.backoffSleep(ctx, d); err != nil {
			return nil, nil, err
		}
		budget -= d
	}
}

// rand01 draws the backoff jitter in [0, 1).
func (c *Client) rand01() float64 {
	if c.jitter != nil {
		return c.jitter()
	}
	return rand.Float64()
}

// backoffSleep waits out one backoff step, aborting early if the request's
// context dies.
func (c *Client) backoffSleep(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	if d <= 0 {
		return nil
	}
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attempt issues the request once. The header-phase timeout runs a timer
// that cancels the request context; on success the timer is disarmed and the
// context stays alive for the body.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) (*http.Response, context.CancelFunc, error) {
	reqCtx, cancel := context.WithCancel(ctx)
	var timer *time.Timer
	if c.Timeout > 0 {
		timer = time.AfterFunc(c.Timeout, cancel)
	}
	fail := func(err error) (*http.Response, context.CancelFunc, error) {
		cancel()
		if timer != nil && !timer.Stop() && ctx.Err() == nil {
			err = &TimeoutError{Limit: c.Timeout, Err: err}
		}
		return nil, nil, err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(reqCtx, method, c.Base+path, rd)
	if err != nil {
		return fail(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Columnar {
		req.Header.Set("Accept", ContentTypeColumnar)
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fail(err)
	}
	if timer != nil && !timer.Stop() {
		// The timer fired between response arrival and here; the body is
		// already doomed, so surface the timeout instead of a mid-read error.
		resp.Body.Close()
		return fail(errors.New("response header raced the timeout"))
	}
	return resp, cancel, nil
}

// TimeoutError reports a request whose connect-and-respond phase overran
// Client.Timeout: the server was reachable enough to dial (or the dial
// itself stalled past the limit) but no response header arrived in time. It
// is a distinct type from dial-phase connect errors and from *StatusError
// so callers — the cluster coordinator's per-node circuit breaker in
// particular — can classify wedged workers without string matching.
type TimeoutError struct {
	// Limit is the Client.Timeout that expired.
	Limit time.Duration
	// Err is the transport error observed when the timeout cancelled the
	// request.
	Err error
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("server: no response header within %v: %v", e.Limit, e.Err)
}

// Unwrap exposes the underlying transport error.
func (e *TimeoutError) Unwrap() error { return e.Err }

// Timeout marks the error as a timeout for net.Error-style checks.
func (e *TimeoutError) Timeout() bool { return true }

// post sends a JSON body and returns the raw response plus its context
// release.
func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, context.CancelFunc, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	return c.do(ctx, http.MethodPost, path, buf)
}

// StatusError is a non-200 response surfaced as an error. Callers can branch
// on the code — the cluster coordinator re-prepares and retries on a 404
// from an expired server-side statement.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Code, http.StatusText(e.Code), e.Msg)
}

// errorFrom drains a non-200 response into a *StatusError.
func errorFrom(resp *http.Response) error {
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return &StatusError{Code: resp.StatusCode, Msg: string(bytes.TrimSpace(msg))}
}

// Query runs one ad-hoc statement and returns the result stream.
func (c *Client) Query(ctx context.Context, sql string, args []any, opts *Options) (*RowStream, error) {
	resp, cancel, err := c.post(ctx, "/query", QueryRequest{SQL: sql, Args: args, Options: opts})
	if err != nil {
		return nil, err
	}
	return newRowStream(resp, cancel)
}

// Prepare compiles a statement server-side.
func (c *Client) Prepare(ctx context.Context, sql string, opts *Options) (*PrepareResponse, error) {
	resp, cancel, err := c.post(ctx, "/prepare", QueryRequest{SQL: sql, Options: opts})
	if err != nil {
		return nil, err
	}
	defer cancel()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFrom(resp)
	}
	defer resp.Body.Close()
	var out PrepareResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Exec executes a prepared statement with per-execution arguments. opts
// (nil for none) override the statement's prepare-time options for this
// execution.
func (c *Client) Exec(ctx context.Context, id string, args []any, opts *Options) (*RowStream, error) {
	resp, cancel, err := c.post(ctx, "/stmt/"+id+"/exec", ExecRequest{Args: args, Options: opts})
	if err != nil {
		return nil, err
	}
	return newRowStream(resp, cancel)
}

// CloseStmt discards a server-side prepared statement.
func (c *Client) CloseStmt(ctx context.Context, id string) error {
	resp, cancel, err := c.do(ctx, http.MethodDelete, "/stmt/"+id, nil)
	if err != nil {
		return err
	}
	defer cancel()
	if resp.StatusCode != http.StatusNoContent {
		return errorFrom(resp)
	}
	resp.Body.Close()
	return nil
}

// Stats fetches the server's manager and plan-cache counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	resp, cancel, err := c.do(ctx, http.MethodGet, "/stats", nil)
	if err != nil {
		return nil, err
	}
	defer cancel()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFrom(resp)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes GET /healthz, reporting nil for a live, authorized server.
func (c *Client) Health(ctx context.Context) error {
	resp, cancel, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	defer cancel()
	if resp.StatusCode != http.StatusOK {
		return errorFrom(resp)
	}
	resp.Body.Close()
	return nil
}

// RowStream iterates a streamed result, cursor-style:
//
//	stream, err := client.Query(ctx, sql, nil, nil)
//	defer stream.Close()
//	for stream.Next() {
//		row := stream.Row() // []any of int64 / string per Header.Types
//	}
//	if err := stream.Err(); err != nil { ... }
//
// The stream decodes whichever encoding the response's Content-Type
// declares — NDJSON or binary columnar — into identical rows. Rows arrive
// as the server flushes chunks, so Next can return the first row while the
// query is still executing server-side. Closing mid-stream closes the HTTP
// body, which disconnects the request and cancels the query on the server.
type RowStream struct {
	resp   *http.Response
	cancel context.CancelFunc // releases the request context; nil-safe via finish
	dec    *json.Decoder      // NDJSON decode state (nil for columnar streams)
	col    *colFrameReader    // columnar decode state (nil for NDJSON streams)
	header *Header
	buf    [][]any
	cur    []any
	footer *Footer
	err    error
	done   bool
}

// newRowStream validates the response, dispatches on its declared encoding
// and reads the header message. cancel releases the request's context; the
// stream owns it from here and fires it when the stream finishes.
func newRowStream(resp *http.Response, cancel context.CancelFunc) (*RowStream, error) {
	abort := func(err error) (*RowStream, error) {
		resp.Body.Close()
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := errorFrom(resp)
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), ContentTypeColumnar) {
		fr := newColFrameReader(resp.Body)
		kind, payload, err := fr.readFrame()
		if err != nil {
			return abort(fmt.Errorf("server: reading stream header: %w", err))
		}
		switch kind {
		case frameError:
			return abort(fmt.Errorf("server: %s", payload))
		case frameHeader:
			var h Header
			if err := json.Unmarshal(payload, &h); err != nil {
				return abort(fmt.Errorf("server: decoding stream header: %w", err))
			}
			return &RowStream{resp: resp, cancel: cancel, col: fr, header: &h}, nil
		default:
			return abort(fmt.Errorf("server: stream did not open with a header"))
		}
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var msg Message
	if err := dec.Decode(&msg); err != nil {
		return abort(fmt.Errorf("server: reading stream header: %w", err))
	}
	if msg.Error != "" {
		return abort(fmt.Errorf("server: %s", msg.Error))
	}
	if msg.Header == nil {
		return abort(fmt.Errorf("server: stream did not open with a header"))
	}
	return &RowStream{resp: resp, cancel: cancel, dec: dec, header: msg.Header}, nil
}

// Header returns the stream's opening message.
func (s *RowStream) Header() *Header { return s.header }

// Next advances to the next row, fetching the next chunk off the wire when
// the buffered one is drained. It returns false at the end of the stream;
// Err distinguishes completion from failure, and Footer is set only after a
// complete stream.
func (s *RowStream) Next() bool {
	if s.done {
		return false
	}
	for len(s.buf) == 0 {
		fetch := s.fetchNDJSON
		if s.col != nil {
			fetch = s.fetchColumnar
		}
		if !fetch() {
			return false
		}
	}
	raw := s.buf[0]
	s.buf = s.buf[1:]
	if s.col != nil {
		// Columnar chunks decode straight to typed values.
		s.cur = raw
		return true
	}
	row, err := DecodeRow(s.header.Types, raw)
	if err != nil {
		s.fail(err)
		return false
	}
	s.cur = row
	return true
}

// fetchNDJSON reads the next NDJSON message into the row buffer. It returns
// false when the stream terminated (done, error, or truncation — the
// terminal state is already recorded on s by then).
func (s *RowStream) fetchNDJSON() bool {
	var msg Message
	if err := s.dec.Decode(&msg); err != nil {
		// Includes io.EOF before a done message: a truncated stream is
		// an error, never silent completion.
		s.fail(fmt.Errorf("server: stream truncated: %w", err))
		return false
	}
	switch {
	case msg.Error != "":
		s.fail(fmt.Errorf("server: %s", msg.Error))
		return false
	case msg.Done != nil:
		s.footer = msg.Done
		s.finish()
		return false
	default:
		s.buf = msg.Rows
		return true
	}
}

// fetchColumnar reads the next binary frame into the row buffer, with the
// same terminal contract as fetchNDJSON.
func (s *RowStream) fetchColumnar() bool {
	kind, payload, err := s.col.readFrame()
	if err != nil {
		s.fail(fmt.Errorf("server: stream truncated: %w", err))
		return false
	}
	switch kind {
	case frameError:
		s.fail(fmt.Errorf("server: %s", payload))
		return false
	case frameDone:
		var f Footer
		if err := json.Unmarshal(payload, &f); err != nil {
			s.fail(fmt.Errorf("server: decoding stream footer: %w", err))
			return false
		}
		s.footer = &f
		s.finish()
		return false
	case frameRows:
		rows, err := decodeColChunk(s.header.Types, payload)
		if err != nil {
			s.fail(err)
			return false
		}
		s.buf = rows
		return true
	default:
		s.fail(fmt.Errorf("server: unexpected frame kind %q", kind))
		return false
	}
}

// Row returns the current row: one int64 or string per column.
func (s *RowStream) Row() []any { return s.cur }

// Err returns the error that terminated the stream, if any.
func (s *RowStream) Err() error { return s.err }

// Footer returns the terminal statistics message, or nil if the stream did
// not complete.
func (s *RowStream) Footer() *Footer { return s.footer }

func (s *RowStream) fail(err error) {
	s.err = err
	s.finish()
}

func (s *RowStream) finish() {
	if !s.done {
		s.done = true
		s.cur = nil
		s.resp.Body.Close()
		if s.cancel != nil {
			s.cancel()
		}
	}
}

// Close releases the stream. Closing before the done message disconnects
// the HTTP request, which cancels the query server-side and returns its
// threads to the budget.
func (s *RowStream) Close() error {
	s.finish()
	return nil
}
