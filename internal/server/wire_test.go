package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dbs3"
)

// TestWireRowRoundTrip audits the JSON encoding of every column type the
// engine produces — rows carry int64 and string values (relation.TInt and
// TString; there are no NULLs in the model). The trap is integers: JSON
// numbers decoded into `any` become float64 and silently lose precision
// past 2^53. The protocol's answer is typed headers plus UseNumber decoding
// (DecodeRow), which this test proves lossless at the integer extremes and
// for adversarial strings. (Strings must be valid UTF-8 — encoding/json
// replaces invalid bytes — which holds for everything the engine produces.)
func TestWireRowRoundTrip(t *testing.T) {
	types := []string{"INT", "INT", "STRING"}
	rows := [][]any{
		{int64(0), int64(-1), ""},
		{int64(math.MaxInt64), int64(math.MinInt64), "plain"},
		{int64(1<<53 + 1), int64(-(1<<53 + 1)), `quotes " and \ backslash`},
		{int64(42), int64(1e15 + 7), "newline\nand\ttab"},
		{int64(7), int64(-7), "unicode: héllo wörld 日本語 🚀"},
		{int64(1), int64(2), "<script>&amp;</script>"},
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(Message{Rows: rows}); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	dec.UseNumber()
	var msg Message
	if err := dec.Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if len(msg.Rows) != len(rows) {
		t.Fatalf("%d rows decoded, want %d", len(msg.Rows), len(rows))
	}
	for i, raw := range msg.Rows {
		got, err := DecodeRow(types, raw)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		for j, v := range got {
			if v != rows[i][j] {
				t.Errorf("row %d col %d: %v (%T) != %v (%T)", i, j, v, v, rows[i][j], rows[i][j])
			}
		}
	}
}

// TestWireRoundTripEndToEnd pushes adversarial values through the whole
// stack — CSV load, partitioned storage, parallel scan, NDJSON streaming,
// client decode — and requires exact equality, including an int64 beyond
// float64's exact range.
func TestWireRoundTripEndToEnd(t *testing.T) {
	const big = int64(1<<53 + 1) // loses precision as float64
	csv := `id:INT,v:INT,s:STRING
1,9007199254740993,"quotes "" and, commas"
2,-9223372036854775808,"line
break"
3,9223372036854775807,héllo 🚀
`
	db := dbs3.New()
	if err := db.LoadCSV("vals", strings.NewReader(csv), "id", 2); err != nil {
		t.Fatal(err)
	}
	m := db.Manager(dbs3.ManagerConfig{Budget: 2})
	srv := newHTTPServer(t, db, m)

	want := map[int64][]any{
		1: {int64(1), big, `quotes " and, commas`},
		2: {int64(2), int64(math.MinInt64), "line\nbreak"},
		3: {int64(3), int64(math.MaxInt64), "héllo 🚀"},
	}
	stream, err := srv.Query(context.Background(), "SELECT * FROM vals", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if got := stream.Header().Types; len(got) != 3 || got[0] != "INT" || got[1] != "INT" || got[2] != "STRING" {
		t.Fatalf("header types %v", got)
	}
	n := 0
	for stream.Next() {
		row := stream.Row()
		id, ok := row[0].(int64)
		if !ok {
			t.Fatalf("id column is %T", row[0])
		}
		exp, seen := want[id]
		if !seen {
			t.Fatalf("unexpected id %d", id)
		}
		for j := range exp {
			if row[j] != exp[j] {
				t.Errorf("id %d col %d: %#v != %#v", id, j, row[j], exp[j])
			}
		}
		n++
	}
	if err := stream.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Errorf("%d rows, want %d", n, len(want))
	}
}
