package server

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// deadAddr returns an address with no listener: every dial fails with a
// transient connect error, driving the full retry ladder.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// retryClient builds a client against a dead address with a fake sleeper
// recording the backoff schedule and a deterministic jitter draw.
func retryClient(t *testing.T, retries int, base, budget time.Duration, jitter float64, sleeps *[]time.Duration) *Client {
	t.Helper()
	return &Client{
		Base:          "http://" + deadAddr(t),
		Retries:       retries,
		RetryBackoff:  base,
		BackoffBudget: budget,
		sleep: func(_ context.Context, d time.Duration) error {
			*sleeps = append(*sleeps, d)
			return nil
		},
		jitter: func() float64 { return jitter },
	}
}

// TestRetryBackoffDoublingEnvelope: with the jitter draw pinned at 1.0 the
// schedule is exactly the doubling envelope — base, 2×, 4×, 8× — one sleep
// per retry.
func TestRetryBackoffDoublingEnvelope(t *testing.T) {
	var sleeps []time.Duration
	c := retryClient(t, 4, 10*time.Millisecond, time.Hour, 1.0, &sleeps)
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("health against a dead address succeeded")
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(sleeps), sleeps, len(want))
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Errorf("retry %d slept %v, want envelope %v", i, sleeps[i], want[i])
		}
	}
}

// TestRetryBackoffFullJitter: the jitter draw scales every sleep inside the
// envelope — two clients with different draws never sleep in lockstep,
// which is the whole thundering-herd point.
func TestRetryBackoffFullJitter(t *testing.T) {
	var half, tenth []time.Duration
	ch := retryClient(t, 3, 10*time.Millisecond, time.Hour, 0.5, &half)
	ct := retryClient(t, 3, 10*time.Millisecond, time.Hour, 0.1, &tenth)
	ch.Health(context.Background())
	ct.Health(context.Background())
	wantHalf := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	wantTenth := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	for i := range wantHalf {
		if half[i] != wantHalf[i] {
			t.Errorf("jitter 0.5 retry %d slept %v, want %v", i, half[i], wantHalf[i])
		}
		if tenth[i] != wantTenth[i] {
			t.Errorf("jitter 0.1 retry %d slept %v, want %v", i, tenth[i], wantTenth[i])
		}
	}
}

// TestRetryBackoffBudgetCapsTotal: each sleep is clamped to the remaining
// budget and retries stop once it is spent, even with Retries to spare.
func TestRetryBackoffBudgetCapsTotal(t *testing.T) {
	var sleeps []time.Duration
	c := retryClient(t, 100, 10*time.Millisecond, 25*time.Millisecond, 1.0, &sleeps)
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("health against a dead address succeeded")
	}
	// Envelope 10ms, then min(20ms, remaining 15ms) = 15ms; budget now 0,
	// so the remaining 98 retries are forfeited.
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("slept %d times (%v), want %d — budget did not cap the ladder", len(sleeps), sleeps, len(want))
	}
	var total time.Duration
	for i := range want {
		if sleeps[i] != want[i] {
			t.Errorf("retry %d slept %v, want %v", i, sleeps[i], want[i])
		}
		total += sleeps[i]
	}
	if total > 25*time.Millisecond {
		t.Errorf("total backoff %v exceeds the 25ms budget", total)
	}
}

// TestRetryBackoffCancelAborts: a context cancelled during the backoff
// sleep abandons the ladder immediately.
func TestRetryBackoffCancelAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var sleeps []time.Duration
	c := retryClient(t, 10, 10*time.Millisecond, time.Hour, 1.0, &sleeps)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		sleeps = append(sleeps, d)
		cancel()
		return ctx.Err()
	}
	err := c.Health(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled mid-backoff, got %v", err)
	}
	if len(sleeps) != 1 {
		t.Errorf("slept %d times after cancellation, want 1", len(sleeps))
	}
}

// TestRetryBackoffDefaultJitterInEnvelope: without seams, real sleeps stay
// within the envelope (smoke for the production rand path — the dead dial
// itself is fast, so tiny real sleeps keep this test quick).
func TestRetryBackoffDefaultJitterInEnvelope(t *testing.T) {
	c := &Client{Base: "http://" + deadAddr(t), Retries: 2, RetryBackoff: time.Millisecond}
	start := time.Now()
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("health against a dead address succeeded")
	}
	// Envelope total = 1ms + 2ms; generous slack for scheduler noise.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("2 jittered retries took %v", elapsed)
	}
}

// TestHeaderTimeoutIsTyped: a header-phase timeout surfaces as
// *TimeoutError — the classification the cluster breaker counts — while a
// plain connect error does not.
func TestHeaderTimeoutIsTyped(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never respond
		}
	}()
	c := &Client{Base: "http://" + l.Addr().String(), Timeout: 50 * time.Millisecond}
	err = c.Health(context.Background())
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("black-hole server produced %T (%v), want *TimeoutError", err, err)
	}
	if te.Limit != 50*time.Millisecond || !te.Timeout() {
		t.Errorf("TimeoutError limit=%v timeout=%v, want 50ms/true", te.Limit, te.Timeout())
	}

	// A refused connection is a connect error, not a timeout.
	dead := &Client{Base: "http://" + deadAddr(t), Timeout: time.Second}
	err = dead.Health(context.Background())
	if err == nil {
		t.Fatal("health against a dead address succeeded")
	}
	if errors.As(err, &te) {
		t.Errorf("connect error classified as TimeoutError: %v", err)
	}
	var se *StatusError
	if errors.As(err, &se) {
		t.Errorf("connect error classified as StatusError: %v", err)
	}
}
