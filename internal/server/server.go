package server

import (
	"bufio"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbs3"
	dbruntime "dbs3/internal/runtime"
)

// defaultChunkRows is how many rows the server batches per NDJSON message.
// Small enough that the first chunk leaves while a big query is still
// producing, large enough that encoding overhead amortizes.
const defaultChunkRows = 64

// defaultWriteBuffer sizes the bufio.Writer that coalesces NDJSON frames:
// a wide streamed result pays one Write to the connection per buffer fill,
// not one per 64-row chunk.
const defaultWriteBuffer = 32 << 10

// streamFlushInterval bounds how stale buffered rows may get on a slowly
// producing query: a chunk emitted at least this long after the last flush
// forces the buffer (and the HTTP flusher) out, so coalescing never turns a
// trickle of rows into a stalled client.
const streamFlushInterval = 100 * time.Millisecond

// defaultStmtTTL is the idle lifetime of a server-side prepared statement
// when Config.StmtTTL is zero: long enough for any interactive pause, short
// enough that abandoned clients cannot pin the capped registry forever.
const defaultStmtTTL = 15 * time.Minute

// Config tunes a Server.
type Config struct {
	// DefaultOptions seeds every request's execution options; request
	// bodies and the X-DBS3-Priority header override per field.
	DefaultOptions dbs3.Options
	// ChunkRows batches streamed rows per NDJSON message (0 = 64).
	ChunkRows int
	// MaxStatements bounds the server-side prepared-statement registry
	// (0 = 1024); beyond it /prepare rejects with 429 so a client leak
	// cannot grow server memory unboundedly.
	MaxStatements int
	// StmtTTL is the idle lifetime of a server-side prepared statement:
	// one that is neither executed nor inspected for this long is expired
	// and its id returns 404, so abandoned clients cannot hold the capped
	// registry at its limit (0 = 15 minutes; negative disables expiry).
	// Expired statements count on /stats as statementsExpired.
	StmtTTL time.Duration
	// WriteBuffer sizes the per-response bufio.Writer coalescing NDJSON
	// frames before they hit the connection (0 = 32 KiB).
	WriteBuffer int
	// AuthToken, when non-empty, locks every endpoint behind bearer-token
	// auth: requests must carry "Authorization: Bearer <token>" or they are
	// rejected with 401 before any handler runs. Serve nodes joined into a
	// cluster set it so coordinator→worker links are not open to the
	// network.
	AuthToken string
}

// Server is the HTTP front end over a Database and its QueryManager. It is
// an http.Handler; wire it to a listener with http.Server or httptest.
type Server struct {
	db       *dbs3.Database
	manager  *dbruntime.Manager
	opts     dbs3.Options
	chunk    int
	maxStmt  int
	stmtTTL  time.Duration
	writeBuf int
	token    string

	mu     sync.Mutex
	stmts  map[string]*stmtEntry
	nextID atomic.Int64
	// expired counts statements removed by the idle-TTL sweep (lifetime).
	expired atomic.Int64
	// bytesWritten and rowsStreamed are lifetime result-stream counters
	// (bytes on the wire after encoding, rows across all streams): together
	// they put a number on what an encoding costs per row, which is how the
	// NDJSON-vs-columnar tradeoff is observed on a live server.
	bytesWritten atomic.Int64
	rowsStreamed atomic.Int64
	// now is the clock, a test seam for the TTL sweep.
	now func() time.Time

	mux *http.ServeMux
}

// stmtEntry is one server-side prepared statement: the compiled handle plus
// the options it was prepared with, kept as the baseline for per-execution
// overrides (an exec with different options re-resolves through the plan
// cache, so the compile work is still amortized).
type stmtEntry struct {
	stmt *dbs3.Stmt
	opt  dbs3.Options
	info PrepareResponse
	// lastUsed is the statement's last prepare/inspect/exec time, guarded
	// by Server.mu; the idle-TTL sweep expires on it.
	lastUsed time.Time
}

// New builds a Server over db. The manager must be the one installed on db
// (Database.Manager's return value); it feeds /stats and is how the serve
// front end shares one thread budget across all clients.
func New(db *dbs3.Database, manager *dbruntime.Manager, cfg Config) *Server {
	if manager == nil {
		panic("server: nil manager (install one with Database.Manager)")
	}
	s := &Server{
		db:       db,
		manager:  manager,
		opts:     cfg.DefaultOptions,
		chunk:    cfg.ChunkRows,
		maxStmt:  cfg.MaxStatements,
		stmtTTL:  cfg.StmtTTL,
		writeBuf: cfg.WriteBuffer,
		token:    cfg.AuthToken,
		stmts:    make(map[string]*stmtEntry),
		now:      time.Now,
		mux:      http.NewServeMux(),
	}
	if s.chunk <= 0 {
		s.chunk = defaultChunkRows
	}
	if s.maxStmt <= 0 {
		s.maxStmt = 1024
	}
	if s.stmtTTL == 0 {
		s.stmtTTL = defaultStmtTTL
	}
	if s.writeBuf <= 0 {
		s.writeBuf = defaultWriteBuffer
	}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /prepare", s.handlePrepare)
	s.mux.HandleFunc("GET /stmt/{id}", s.handleStmtInfo)
	s.mux.HandleFunc("POST /stmt/{id}/exec", s.handleExec)
	s.mux.HandleFunc("DELETE /stmt/{id}", s.handleStmtClose)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler. With an AuthToken configured, every
// request — including /healthz, so an unauthenticated prober learns nothing —
// must present it as a bearer credential.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !Authorized(r, s.token) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="dbs3"`)
		http.Error(w, "server: missing or wrong bearer token", http.StatusUnauthorized)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// Authorized reports whether r carries the bearer token (an empty token
// disables auth). Comparison is constant-time so the check does not leak
// prefix lengths. Shared by the serve front end and the cluster coordinator,
// which enforces the same scheme on its own endpoints.
func Authorized(r *http.Request, token string) bool {
	if token == "" {
		return true
	}
	auth := r.Header.Get("Authorization")
	const scheme = "Bearer "
	if len(auth) < len(scheme) || !strings.EqualFold(auth[:len(scheme)], scheme) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(scheme):]), []byte(token)) == 1
}

// requestOptions resolves one request's execution options: server defaults,
// overridden by the per-connection priority header, overridden by the
// request body's options.
func (s *Server) requestOptions(r *http.Request, wire *Options) dbs3.Options {
	return overlayOptions(s.opts, r, wire)
}

// overlayOptions applies the priority header and per-request wire options
// on top of a baseline.
func overlayOptions(base dbs3.Options, r *http.Request, wire *Options) dbs3.Options {
	opt := base
	if h := r.Header.Get("X-DBS3-Priority"); h != "" {
		opt.Priority = h
	}
	if wire == nil {
		return opt
	}
	if wire.Threads != 0 {
		opt.Threads = wire.Threads
	}
	if wire.Strategy != "" {
		opt.Strategy = wire.Strategy
	}
	if wire.JoinAlgo != "" {
		opt.JoinAlgo = wire.JoinAlgo
	}
	if wire.Grain != 0 {
		opt.Grain = wire.Grain
	}
	if wire.Priority != "" {
		opt.Priority = wire.Priority
	}
	if wire.StreamBuffer != 0 {
		opt.StreamBuffer = wire.StreamBuffer
	}
	if wire.BatchGrain != 0 {
		opt.BatchGrain = wire.BatchGrain
	}
	if wire.Materialize {
		opt.Materialize = true
	}
	if wire.Utilization != 0 {
		opt.Utilization = wire.Utilization
	}
	if wire.MemoryBudget != 0 {
		opt.MemoryBudget = wire.MemoryBudget
	}
	return opt
}

// decodeBody parses a JSON request body with UseNumber so integer arguments
// survive undamaged.
func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

// errorStatus maps an error from the facade to an HTTP status: full
// admission queue is load shedding (503), a closed manager means shutdown
// (503), everything else from prepare/bind is the client's statement (400).
func errorStatus(err error) int {
	switch {
	case errors.Is(err, dbruntime.ErrQueueFull), errors.Is(err, dbruntime.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// handleQuery runs one ad-hoc statement and streams its result. The plan
// cache makes repeated SQL cheap; `?` placeholders bind from args.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		http.Error(w, "server: empty sql", http.StatusBadRequest)
		return
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	enc, err := negotiateWire(r, req.Options)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	opt := s.requestOptions(r, req.Options)
	stmt, err := s.db.Prepare(req.SQL, &opt)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	s.stream(w, r, stmt, args, enc)
}

// handlePrepare compiles a statement server-side and registers it under an
// id for compile-once / execute-many clients.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		http.Error(w, "server: empty sql", http.StatusBadRequest)
		return
	}
	opt := s.requestOptions(r, req.Options)
	stmt, err := s.db.Prepare(req.SQL, &opt)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	entry := &stmtEntry{stmt: stmt, opt: opt, lastUsed: s.now()}
	s.mu.Lock()
	// Expire idle statements before the cap check: abandoned clients must
	// not be the reason a live one is turned away.
	s.sweepLocked(entry.lastUsed)
	if len(s.stmts) >= s.maxStmt {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("server: %d prepared statements open; close some", s.maxStmt), http.StatusTooManyRequests)
		return
	}
	id := fmt.Sprintf("s%d", s.nextID.Add(1))
	entry.info = PrepareResponse{
		ID:      id,
		SQL:     req.SQL,
		Columns: stmt.Columns(),
		Types:   stmt.ColumnTypes(),
		Params:  stmt.NumParams(),
	}
	s.stmts[id] = entry
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, entry.info)
}

// lookup resolves a {id} path segment to a registered statement, enforcing
// the idle TTL (an expired id is gone, exactly as if it was never prepared)
// and touching the entry's idle clock on success.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*stmtEntry, bool) {
	id := r.PathValue("id")
	now := s.now()
	s.mu.Lock()
	entry, ok := s.stmts[id]
	if ok && s.expiredLocked(entry, now) {
		delete(s.stmts, id)
		s.expired.Add(1)
		ok = false
	}
	if ok {
		entry.lastUsed = now
	}
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("server: no prepared statement %q", id), http.StatusNotFound)
		return nil, false
	}
	return entry, true
}

// expiredLocked reports whether an entry's idle time exceeds the TTL.
func (s *Server) expiredLocked(e *stmtEntry, now time.Time) bool {
	return s.stmtTTL > 0 && now.Sub(e.lastUsed) > s.stmtTTL
}

// sweepLocked removes every statement idle beyond the TTL. Callers hold
// s.mu; the sweep is O(open statements), bounded by MaxStatements.
func (s *Server) sweepLocked(now time.Time) {
	if s.stmtTTL <= 0 {
		return
	}
	for id, e := range s.stmts {
		if s.expiredLocked(e, now) {
			delete(s.stmts, id)
			s.expired.Add(1)
		}
	}
}

// handleStmtInfo returns a prepared statement's metadata.
func (s *Server) handleStmtInfo(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, entry.info)
}

// handleExec executes a prepared statement with per-execution arguments.
// The statement's prepare-time options are the baseline; the priority
// header and the request's options override per execution, re-resolving
// the statement through the plan cache (a hit unless the join algorithm
// changed, which genuinely needs a different plan).
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req ExecRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	enc, err := negotiateWire(r, req.Options)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	stmt := entry.stmt
	if opt := overlayOptions(entry.opt, r, req.Options); opt != entry.opt {
		fresh, err := s.db.Prepare(entry.info.SQL, &opt)
		if err != nil {
			http.Error(w, err.Error(), errorStatus(err))
			return
		}
		stmt = fresh
	}
	s.stream(w, r, stmt, args, enc)
}

// handleStmtClose discards a prepared statement.
func (s *Server) handleStmtClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	entry, ok := s.stmts[id]
	delete(s.stmts, id)
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("server: no prepared statement %q", id), http.StatusNotFound)
		return
	}
	entry.stmt.Close()
	w.WriteHeader(http.StatusNoContent)
}

// handleStats snapshots the manager and plan-cache counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.manager.Stats()
	hits, misses := s.db.PlanCacheStats()
	poolHits, poolMisses, poolResident := s.db.BufferPoolStats()
	s.mu.Lock()
	s.sweepLocked(s.now())
	open := len(s.stmts)
	s.mu.Unlock()
	expired := s.expired.Load()
	writeJSON(w, http.StatusOK, StatsResponse{
		Budget:                s.manager.Budget(),
		ActiveThreads:         st.ThreadsInFlight,
		PeakThreads:           st.PeakThreads,
		Active:                st.Active,
		Queued:                st.Queued,
		Admitted:              st.Admitted,
		Completed:             st.Completed,
		Failed:                st.Failed,
		Cancelled:             st.Cancelled,
		Rejected:              st.Rejected,
		Readmissions:          st.Readmissions,
		ThreadsReturnedEarly:  st.ThreadsReturnedEarly,
		ThreadsGrownMidFlight: st.ThreadsGrownMidFlight,
		SmoothedUtilization:   st.SmoothedUtilization,
		MemBudget:             st.MemBudget,
		MemInFlight:           st.MemInFlight,
		PeakMem:               st.PeakMem,
		SpilledBytes:          st.SpilledBytes,
		SpillPasses:           st.SpillPasses,
		BufferPoolHits:        poolHits,
		BufferPoolMisses:      poolMisses,
		BufferPoolResident:    poolResident,
		PlanCacheHits:         hits,
		PlanCacheMisses:       misses,
		Statements:            open,
		StatementsExpired:     expired,
		BytesWritten:          s.bytesWritten.Load(),
		RowsStreamed:          s.rowsStreamed.Load(),
		Relations:             s.db.Relations(),
	})
}

// NegotiateWire picks the result-stream encoding for one request: the wire
// Options field wins, then the Accept header, then the NDJSON default. The
// returned string is the Content-Type to declare (and to hand to
// NewStreamEncoder). An unknown wire name is the client's error. Exported
// for the cluster coordinator, whose front end negotiates identically.
func NegotiateWire(r *http.Request, wire *Options) (string, error) {
	return negotiateWire(r, wire)
}

// negotiateWire implements NegotiateWire.
func negotiateWire(r *http.Request, wire *Options) (string, error) {
	if wire != nil && wire.Wire != "" {
		switch wire.Wire {
		case "ndjson":
			return contentTypeNDJSON, nil
		case "columnar":
			return ContentTypeColumnar, nil
		default:
			return "", fmt.Errorf("server: unknown wire encoding %q (want ndjson or columnar)", wire.Wire)
		}
	}
	if strings.Contains(r.Header.Get("Accept"), ContentTypeColumnar) {
		return ContentTypeColumnar, nil
	}
	return contentTypeNDJSON, nil
}

// countingWriter counts the encoded bytes a stream puts on the wire (it sits
// under the bufio.Writer, so it sees coalesced writes, not per-frame ones)
// and feeds the server's lifetime counter as they happen — a stats poll
// during a long stream sees its progress, not zero.
type countingWriter struct {
	w     io.Writer
	total *atomic.Int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.total.Add(int64(n))
	return n, err
}

// stream executes stmt under the request's context and writes the result
// stream in the negotiated encoding (contentType: NDJSON or binary
// columnar; see colwire.go). The request context is the cancellation path:
// a client that disconnects mid-stream cancels the query, the engine
// unwinds, and Admission.Finish returns its threads to the shared budget —
// the deferred Close is a no-op by then.
func (s *Server) stream(w http.ResponseWriter, r *http.Request, stmt *dbs3.Stmt, args []any, contentType string) {
	rows, err := stmt.QueryContext(r.Context(), args...)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	defer rows.Close()

	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not re-buffer the stream

	// Frames coalesce in a sized bufio.Writer: a wide streamed result pays
	// one connection Write per buffer fill instead of one per 64-row
	// chunk. Streaming latency stays bounded: the header, the first row
	// chunk and the terminal message flush immediately, and a background
	// ticker flushes anything buffered at least every streamFlushInterval —
	// so a slowly producing query can never strand rows in the buffer while
	// it blocks for the next chunk. wmu serializes the handler's writes with
	// the ticker's flushes (neither bufio.Writer nor http.ResponseWriter is
	// concurrency-safe).
	bw := bufio.NewWriterSize(&countingWriter{w: w, total: &s.bytesWritten}, s.writeBuf)
	var enc resultEncoder
	if contentType == ContentTypeColumnar {
		enc = &columnarEncoder{w: bw, types: rows.ColumnTypes()}
	} else {
		enc = &ndjsonEncoder{enc: json.NewEncoder(bw)}
	}
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex
	dirty := false // buffered bytes not yet flushed; guarded by wmu
	flushLocked := func() {
		bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
		dirty = false
	}
	stopFlush := make(chan struct{})
	flushDone := make(chan struct{})
	go func() {
		defer close(flushDone)
		ticker := time.NewTicker(streamFlushInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				wmu.Lock()
				if dirty {
					flushLocked()
				}
				wmu.Unlock()
			case <-stopFlush:
				return
			}
		}
	}()
	defer func() {
		close(stopFlush)
		<-flushDone
		// Final drain for the error-return paths; success paths flushed.
		wmu.Lock()
		flushLocked()
		wmu.Unlock()
	}()
	// write runs one encoder call under the write mutex; flush forces its
	// bytes (and anything buffered) out. Without flush the bytes leave when
	// the buffer fills or the ticker fires.
	write := func(fn func() error, flush bool) error {
		wmu.Lock()
		defer wmu.Unlock()
		err := fn()
		if flush {
			flushLocked()
		} else {
			dirty = true
		}
		return err
	}

	cols := rows.Columns()
	hdr := &Header{
		Columns:     cols,
		Types:       rows.ColumnTypes(),
		Threads:     rows.Threads(),
		Utilization: rows.Utilization(),
	}
	if err := write(func() error { return enc.header(hdr) }, true); err != nil {
		return
	}

	var count int64
	defer func() { s.rowsStreamed.Add(count) }()
	firstChunk := true
	chunk := make([][]any, 0, s.chunk)
	emit := func() bool {
		if len(chunk) == 0 {
			return true
		}
		err := write(func() error { return enc.rows(chunk) }, firstChunk)
		firstChunk = false
		chunk = chunk[:0]
		return err == nil
	}
	for rows.Next() {
		row := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range row {
			ptrs[i] = &row[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			write(func() error { return enc.fail(err.Error()) }, true)
			return
		}
		chunk = append(chunk, row)
		count++
		if len(chunk) >= s.chunk && !emit() {
			return
		}
	}
	if err := rows.Err(); err != nil {
		// The header is already on the wire, so the failure travels in-band;
		// the missing done message tells a half-read client the stream is
		// truncated, not complete.
		write(func() error { return enc.fail(err.Error()) }, true)
		return
	}
	if !emit() {
		return
	}
	foot := &Footer{RowCount: count, Threads: rows.Threads(), ChainThreads: rows.ChainThreads(), Operators: rows.Operators()}
	foot.SpilledBytes, foot.SpillPasses = rows.SpillStats()
	write(func() error { return enc.done(foot) }, true)
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
