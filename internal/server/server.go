package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"dbs3"
	dbruntime "dbs3/internal/runtime"
)

// defaultChunkRows is how many rows the server batches per NDJSON message.
// Small enough that the first chunk leaves while a big query is still
// producing, large enough that encoding overhead amortizes.
const defaultChunkRows = 64

// Config tunes a Server.
type Config struct {
	// DefaultOptions seeds every request's execution options; request
	// bodies and the X-DBS3-Priority header override per field.
	DefaultOptions dbs3.Options
	// ChunkRows batches streamed rows per NDJSON message (0 = 64).
	ChunkRows int
	// MaxStatements bounds the server-side prepared-statement registry
	// (0 = 1024); beyond it /prepare rejects with 429 so a client leak
	// cannot grow server memory unboundedly.
	MaxStatements int
}

// Server is the HTTP front end over a Database and its QueryManager. It is
// an http.Handler; wire it to a listener with http.Server or httptest.
type Server struct {
	db      *dbs3.Database
	manager *dbruntime.Manager
	opts    dbs3.Options
	chunk   int
	maxStmt int

	mu     sync.Mutex
	stmts  map[string]*stmtEntry
	nextID atomic.Int64

	mux *http.ServeMux
}

// stmtEntry is one server-side prepared statement: the compiled handle plus
// the options it was prepared with, kept as the baseline for per-execution
// overrides (an exec with different options re-resolves through the plan
// cache, so the compile work is still amortized).
type stmtEntry struct {
	stmt *dbs3.Stmt
	opt  dbs3.Options
	info PrepareResponse
}

// New builds a Server over db. The manager must be the one installed on db
// (Database.Manager's return value); it feeds /stats and is how the serve
// front end shares one thread budget across all clients.
func New(db *dbs3.Database, manager *dbruntime.Manager, cfg Config) *Server {
	if manager == nil {
		panic("server: nil manager (install one with Database.Manager)")
	}
	s := &Server{
		db:      db,
		manager: manager,
		opts:    cfg.DefaultOptions,
		chunk:   cfg.ChunkRows,
		maxStmt: cfg.MaxStatements,
		stmts:   make(map[string]*stmtEntry),
		mux:     http.NewServeMux(),
	}
	if s.chunk <= 0 {
		s.chunk = defaultChunkRows
	}
	if s.maxStmt <= 0 {
		s.maxStmt = 1024
	}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /prepare", s.handlePrepare)
	s.mux.HandleFunc("GET /stmt/{id}", s.handleStmtInfo)
	s.mux.HandleFunc("POST /stmt/{id}/exec", s.handleExec)
	s.mux.HandleFunc("DELETE /stmt/{id}", s.handleStmtClose)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// requestOptions resolves one request's execution options: server defaults,
// overridden by the per-connection priority header, overridden by the
// request body's options.
func (s *Server) requestOptions(r *http.Request, wire *Options) dbs3.Options {
	return overlayOptions(s.opts, r, wire)
}

// overlayOptions applies the priority header and per-request wire options
// on top of a baseline.
func overlayOptions(base dbs3.Options, r *http.Request, wire *Options) dbs3.Options {
	opt := base
	if h := r.Header.Get("X-DBS3-Priority"); h != "" {
		opt.Priority = h
	}
	if wire == nil {
		return opt
	}
	if wire.Threads != 0 {
		opt.Threads = wire.Threads
	}
	if wire.Strategy != "" {
		opt.Strategy = wire.Strategy
	}
	if wire.JoinAlgo != "" {
		opt.JoinAlgo = wire.JoinAlgo
	}
	if wire.Grain != 0 {
		opt.Grain = wire.Grain
	}
	if wire.Priority != "" {
		opt.Priority = wire.Priority
	}
	if wire.StreamBuffer != 0 {
		opt.StreamBuffer = wire.StreamBuffer
	}
	if wire.Materialize {
		opt.Materialize = true
	}
	return opt
}

// decodeBody parses a JSON request body with UseNumber so integer arguments
// survive undamaged.
func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

// errorStatus maps an error from the facade to an HTTP status: full
// admission queue is load shedding (503), a closed manager means shutdown
// (503), everything else from prepare/bind is the client's statement (400).
func errorStatus(err error) int {
	switch {
	case errors.Is(err, dbruntime.ErrQueueFull), errors.Is(err, dbruntime.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// handleQuery runs one ad-hoc statement and streams its result. The plan
// cache makes repeated SQL cheap; `?` placeholders bind from args.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		http.Error(w, "server: empty sql", http.StatusBadRequest)
		return
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	opt := s.requestOptions(r, req.Options)
	stmt, err := s.db.Prepare(req.SQL, &opt)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	s.stream(w, r, stmt, args)
}

// handlePrepare compiles a statement server-side and registers it under an
// id for compile-once / execute-many clients.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		http.Error(w, "server: empty sql", http.StatusBadRequest)
		return
	}
	opt := s.requestOptions(r, req.Options)
	stmt, err := s.db.Prepare(req.SQL, &opt)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	entry := &stmtEntry{stmt: stmt, opt: opt}
	s.mu.Lock()
	if len(s.stmts) >= s.maxStmt {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("server: %d prepared statements open; close some", s.maxStmt), http.StatusTooManyRequests)
		return
	}
	id := fmt.Sprintf("s%d", s.nextID.Add(1))
	entry.info = PrepareResponse{
		ID:      id,
		SQL:     req.SQL,
		Columns: stmt.Columns(),
		Types:   stmt.ColumnTypes(),
		Params:  stmt.NumParams(),
	}
	s.stmts[id] = entry
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, entry.info)
}

// lookup resolves a {id} path segment to a registered statement.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*stmtEntry, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	entry, ok := s.stmts[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("server: no prepared statement %q", id), http.StatusNotFound)
		return nil, false
	}
	return entry, true
}

// handleStmtInfo returns a prepared statement's metadata.
func (s *Server) handleStmtInfo(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, entry.info)
}

// handleExec executes a prepared statement with per-execution arguments.
// The statement's prepare-time options are the baseline; the priority
// header and the request's options override per execution, re-resolving
// the statement through the plan cache (a hit unless the join algorithm
// changed, which genuinely needs a different plan).
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req ExecRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	stmt := entry.stmt
	if opt := overlayOptions(entry.opt, r, req.Options); opt != entry.opt {
		fresh, err := s.db.Prepare(entry.info.SQL, &opt)
		if err != nil {
			http.Error(w, err.Error(), errorStatus(err))
			return
		}
		stmt = fresh
	}
	s.stream(w, r, stmt, args)
}

// handleStmtClose discards a prepared statement.
func (s *Server) handleStmtClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	entry, ok := s.stmts[id]
	delete(s.stmts, id)
	s.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("server: no prepared statement %q", id), http.StatusNotFound)
		return
	}
	entry.stmt.Close()
	w.WriteHeader(http.StatusNoContent)
}

// handleStats snapshots the manager and plan-cache counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.manager.Stats()
	hits, misses := s.db.PlanCacheStats()
	s.mu.Lock()
	open := len(s.stmts)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StatsResponse{
		Budget:                s.manager.Budget(),
		ActiveThreads:         st.ThreadsInFlight,
		PeakThreads:           st.PeakThreads,
		Active:                st.Active,
		Queued:                st.Queued,
		Admitted:              st.Admitted,
		Completed:             st.Completed,
		Failed:                st.Failed,
		Cancelled:             st.Cancelled,
		Rejected:              st.Rejected,
		Readmissions:          st.Readmissions,
		ThreadsReturnedEarly:  st.ThreadsReturnedEarly,
		ThreadsGrownMidFlight: st.ThreadsGrownMidFlight,
		SmoothedUtilization:   st.SmoothedUtilization,
		PlanCacheHits:         hits,
		PlanCacheMisses:       misses,
		Statements:            open,
		Relations:             s.db.Relations(),
	})
}

// stream executes stmt under the request's context and writes the NDJSON
// result stream. The request context is the cancellation path: a client
// that disconnects mid-stream cancels the query, the engine unwinds, and
// Admission.Finish returns its threads to the shared budget — the deferred
// Close is a no-op by then.
func (s *Server) stream(w http.ResponseWriter, r *http.Request, stmt *dbs3.Stmt, args []any) {
	rows, err := stmt.QueryContext(r.Context(), args...)
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	defer rows.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not re-buffer the stream
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	cols := rows.Columns()
	if err := enc.Encode(Message{Header: &Header{
		Columns:     cols,
		Types:       rows.ColumnTypes(),
		Threads:     rows.Threads(),
		Utilization: rows.Utilization(),
	}}); err != nil {
		return
	}
	flush()

	var count int64
	chunk := make([][]any, 0, s.chunk)
	emit := func() bool {
		if len(chunk) == 0 {
			return true
		}
		err := enc.Encode(Message{Rows: chunk})
		chunk = chunk[:0]
		flush()
		return err == nil
	}
	for rows.Next() {
		row := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range row {
			ptrs[i] = &row[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			enc.Encode(Message{Error: err.Error()})
			return
		}
		chunk = append(chunk, row)
		count++
		if len(chunk) >= s.chunk && !emit() {
			return
		}
	}
	if err := rows.Err(); err != nil {
		// The header is already on the wire, so the failure travels in-band;
		// the missing done message tells a half-read client the stream is
		// truncated, not complete.
		enc.Encode(Message{Error: err.Error()})
		return
	}
	if !emit() {
		return
	}
	enc.Encode(Message{Done: &Footer{RowCount: count, Threads: rows.Threads(), ChainThreads: rows.ChainThreads(), Operators: rows.Operators()}})
	flush()
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
