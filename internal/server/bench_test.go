package server

import (
	"context"
	"net/http/httptest"
	"testing"

	"dbs3"
)

// wideRowSQL projects every integer attribute of the Wisconsin relation —
// the paper's 13-column row shape — so the benchmark measures what a wide
// result actually costs per row on the wire. The bytes/row metric these
// benchmarks report is what bench_core.sh gates on: the columnar encoding
// must stay at least 3x denser than NDJSON on this shape.
const wideRowSQL = "SELECT unique1, unique2, two, four, ten, twenty, onePercent, " +
	"tenPercent, twentyPercent, fiftyPercent, unique3, evenOnePercent, oddOnePercent " +
	"FROM wisc WHERE unique1 < ?"

// benchmarkServeWideRow streams a 5000-row wide result through the full
// HTTP stack and reports the encoded bytes per row (measured beneath the
// response buffer, where /stats counts them).
func benchmarkServeWideRow(b *testing.B, columnar bool) {
	db := dbs3.New()
	if err := db.CreateWisconsin("wisc", 20_000, 8, "unique2", 42); err != nil {
		b.Fatal(err)
	}
	m := db.Manager(dbs3.ManagerConfig{Budget: 4})
	srv := New(db, m, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &Client{Base: ts.URL, HTTP: ts.Client(), Columnar: columnar}

	b.ReportAllocs()
	b.ResetTimer()
	var rows int64
	start := srv.bytesWritten.Load()
	for i := 0; i < b.N; i++ {
		stream, err := client.Query(context.Background(), wideRowSQL, []any{5000}, nil)
		if err != nil {
			b.Fatal(err)
		}
		for stream.Next() {
			rows++
		}
		if err := stream.Err(); err != nil {
			b.Fatal(err)
		}
		stream.Close()
	}
	b.StopTimer()
	if rows != int64(b.N)*5000 {
		b.Fatalf("streamed %d rows, want %d", rows, int64(b.N)*5000)
	}
	b.ReportMetric(float64(srv.bytesWritten.Load()-start)/float64(rows), "bytes/row")
}

func BenchmarkServeWideRowNDJSON(b *testing.B)   { benchmarkServeWideRow(b, false) }
func BenchmarkServeWideRowColumnar(b *testing.B) { benchmarkServeWideRow(b, true) }
