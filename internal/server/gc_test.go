package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dbs3"
)

// fakeClock is a deterministic time source for the statement-GC tests: the
// sweep logic runs against advanced time instead of sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newGCServer serves a small Wisconsin database with the given statement TTL
// and a controllable clock.
func newGCServer(t *testing.T, ttl time.Duration) (*Client, *fakeClock) {
	t.Helper()
	db := dbs3.New()
	if err := db.CreateWisconsin("wisc", 500, 4, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	m := db.Manager(dbs3.ManagerConfig{Budget: testBudget})
	srv := New(db, m, Config{StmtTTL: ttl})
	clock := &fakeClock{t: time.Unix(1_000_000, 0)}
	srv.now = clock.now
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { ts.Client().CloseIdleConnections() })
	return &Client{Base: ts.URL, HTTP: ts.Client()}, clock
}

// TestStatementGCExpiresIdle: a statement idle beyond the TTL is reclaimed —
// its id is gone, the registry count drops, and the expiry is visible on
// /stats — while a statement kept alive by touches survives the same sweep.
func TestStatementGCExpiresIdle(t *testing.T) {
	client, clock := newGCServer(t, time.Minute)
	ctx := context.Background()

	idle, err := client.Prepare(ctx, "SELECT unique1 FROM wisc WHERE unique2 < 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	live, err := client.Prepare(ctx, "SELECT unique2 FROM wisc WHERE unique1 < 10", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Touch the live statement at half the TTL; the idle one sleeps on.
	clock.advance(40 * time.Second)
	if stream, err := client.Exec(ctx, live.ID, nil, nil); err != nil {
		t.Fatal(err)
	} else {
		for stream.Next() {
		}
		stream.Close()
	}

	// Past the idle statement's TTL, short of the live one's.
	clock.advance(40 * time.Second)
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Statements != 1 {
		t.Errorf("open statements after sweep = %d, want 1 (the touched one)", st.Statements)
	}
	if st.StatementsExpired != 1 {
		t.Errorf("statementsExpired = %d, want 1", st.StatementsExpired)
	}
	if _, err := client.Exec(ctx, idle.ID, nil, nil); err == nil {
		t.Error("exec of an expired statement succeeded, want 404")
	}
	if stream, err := client.Exec(ctx, live.ID, nil, nil); err != nil {
		t.Errorf("touched statement expired with the idle one: %v", err)
	} else {
		for stream.Next() {
		}
		stream.Close()
	}
}

// TestStatementGCLookupEnforcesTTL: expiry holds at the moment of use, not
// just at sweep points — an exec after the idle deadline 404s even when no
// sweep ran in between, and counts as expired.
func TestStatementGCLookupEnforcesTTL(t *testing.T) {
	client, clock := newGCServer(t, time.Minute)
	ctx := context.Background()
	prep, err := client.Prepare(ctx, "SELECT unique1 FROM wisc WHERE unique2 < 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Minute)
	if _, err := client.Exec(ctx, prep.ID, nil, nil); err == nil {
		t.Fatal("exec past the TTL succeeded")
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Statements != 0 || st.StatementsExpired != 1 {
		t.Errorf("statements=%d expired=%d, want 0/1", st.Statements, st.StatementsExpired)
	}
}

// TestStatementGCFreesCapForNewClients is the ROADMAP scenario: abandoned
// statements filling the registry to its cap no longer lock new clients out
// once their TTL passes — prepare sweeps before it checks the cap.
func TestStatementGCFreesCapForNewClients(t *testing.T) {
	db := dbs3.New()
	if err := db.CreateWisconsin("wisc", 500, 4, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	m := db.Manager(dbs3.ManagerConfig{Budget: testBudget})
	srv := New(db, m, Config{StmtTTL: time.Minute, MaxStatements: 2})
	clock := &fakeClock{t: time.Unix(1_000_000, 0)}
	srv.now = clock.now
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { ts.Client().CloseIdleConnections() })
	client := &Client{Base: ts.URL, HTTP: ts.Client()}
	ctx := context.Background()

	for _, sql := range []string{
		"SELECT unique1 FROM wisc WHERE unique2 < 10",
		"SELECT unique2 FROM wisc WHERE unique1 < 10",
	} {
		if _, err := client.Prepare(ctx, sql, nil); err != nil {
			t.Fatal(err)
		}
	}
	// At cap: a fresh prepare is shed with 429.
	resp, cancel, err := client.post(ctx, "/prepare", QueryRequest{SQL: "SELECT ten FROM wisc"})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("prepare at cap = %d, want 429", resp.StatusCode)
	}
	// The abandoned statements age out; the same prepare now fits.
	clock.advance(2 * time.Minute)
	if _, err := client.Prepare(ctx, "SELECT ten FROM wisc", nil); err != nil {
		t.Fatalf("prepare after TTL sweep still rejected: %v", err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Statements != 1 || st.StatementsExpired != 2 {
		t.Errorf("statements=%d expired=%d, want 1/2", st.Statements, st.StatementsExpired)
	}
}

// TestStatementGCDisabled: a negative TTL turns expiry off entirely.
func TestStatementGCDisabled(t *testing.T) {
	client, clock := newGCServer(t, -1)
	ctx := context.Background()
	prep, err := client.Prepare(ctx, "SELECT unique1 FROM wisc WHERE unique2 < 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(1000 * time.Hour)
	if stream, err := client.Exec(ctx, prep.ID, nil, nil); err != nil {
		t.Errorf("statement expired with expiry disabled: %v", err)
	} else {
		for stream.Next() {
		}
		stream.Close()
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Statements != 1 || st.StatementsExpired != 0 {
		t.Errorf("statements=%d expired=%d, want 1/0", st.Statements, st.StatementsExpired)
	}
}
