package sim

import (
	"math"

	"dbs3/internal/ksr"
)

// CostModel holds the virtual-time cost constants, calibrated against the
// paper's reported anchors (internal/experiments records paper-vs-measured anchors):
//
//   - NLPair: sequential IdealJoin (nested loop, 200K x 20K, d=200) took
//     Tseq = 956 s => 20M pair comparisons => 47.8 us/pair.
//   - TransmitTuple/StoreTuple: sequential AssocJoin took 1048 s, a 92 s
//     gap over the join work, spread over 20K transmitted + 20K stored
//     tuples.
//   - SelectTuple: the Figure 8 selection (200K tuples) at 5 threads runs
//     ~5.5 s => 137 us/tuple; the remote-access delta is ~4% of total.
//   - TriggeredQueueOverhead/PipelinedQueueOverhead: Figure 16 measures
//     0.45 ms/degree (IdealJoin: d triggered queues) and 4 ms/degree
//     (AssocJoin: d triggered + d pipelined queues), so a pipelined queue
//     costs 4 - 0.45 = 3.55 ms.
//   - Index constants: chosen so the Figure 17 execution-time minima land
//     near the paper's (d ~ 1000 for AssocJoin, ~ 1400 for IdealJoin, times
//     in the 4-12 s band at 20 threads on the 500K/50K database).
type CostModel struct {
	Machine ksr.Machine

	// SelectTuple is the per-tuple cost of a selection predicate.
	SelectTuple float64
	// TransmitTuple is the per-tuple redistribution cost.
	TransmitTuple float64
	// NLPair is the nested-loop per-pair comparison cost.
	NLPair float64
	// StoreTuple is the per-result materialization cost.
	StoreTuple float64

	// Temp-index join: build costs IdxBuildTuple + IdxBuildLog*log2(|A_i|)
	// per build tuple; probes cost IdxProbeTuple + IdxProbeLog*log2(|A_i|)
	// per probe. CacheMissTouch adds Machine.LocalityPenalty(fragment
	// bytes) * CacheMissTouch per touched tuple — the Allcache locality
	// effect that keeps high degrees of partitioning profitable (§5.2).
	IdxBuildTuple  float64
	IdxBuildLog    float64
	IdxProbeTuple  float64
	IdxProbeLog    float64
	CacheMissTouch float64

	// TupleBytes sizes fragments for the memory model (Wisconsin tuples are
	// ~208 bytes).
	TupleBytes int

	// StartupPerThread and the queue overheads feed Config/specs.
	StartupPerThread       float64
	TriggeredQueueOverhead float64
	PipelinedQueueOverhead float64
}

// Calibrated returns the KSR1-calibrated cost model.
func Calibrated() CostModel {
	return CostModel{
		Machine:                ksr.KSR1(),
		SelectTuple:            137e-6,
		TransmitTuple:          1.2e-3,
		NLPair:                 47.8e-6,
		StoreTuple:             0.05e-3,
		IdxBuildTuple:          2e-6,
		IdxBuildLog:            15e-6,
		IdxProbeTuple:          5e-6,
		IdxProbeLog:            24.6e-6,
		CacheMissTouch:         127e-6,
		TupleBytes:             208,
		StartupPerThread:       15e-3,
		TriggeredQueueOverhead: 0.45e-3,
		PipelinedQueueOverhead: 3.55e-3,
	}
}

// Config derives the simulator machine config.
func (m CostModel) Config(seed int64) Config {
	return Config{
		Processors:       m.Machine.UsableProcessors,
		StartupPerThread: m.StartupPerThread,
		Seed:             seed,
	}
}

// log2 of a fragment cardinality, floored at 1 tuple.
func log2Frag(n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Log2(float64(n))
}

// NestedLoopTriggerCosts returns per-instance costs of a triggered nested-
// loop join: |A_i| x |B_i| pair comparisons plus storing matches_i results.
func (m CostModel) NestedLoopTriggerCosts(aSizes, bSizes, matches []int) []float64 {
	out := make([]float64, len(aSizes))
	for i := range out {
		out[i] = float64(aSizes[i])*float64(bSizes[i])*m.NLPair + float64(matches[i])*m.StoreTuple
	}
	return out
}

// ChunkedNestedLoopTriggerCosts splits each instance's probe side into
// partial triggers of at most grain tuples (the engine's TriggerGrain, the
// paper's §6 future work) and returns the flattened activation costs: each
// chunk scans the whole build fragment for its slice of probes.
func (m CostModel) ChunkedNestedLoopTriggerCosts(aSizes, bSizes []int, grain int) []float64 {
	if grain <= 0 {
		return m.NestedLoopTriggerCosts(aSizes, bSizes, bSizes)
	}
	var out []float64
	for i := range aSizes {
		span := bSizes[i]
		for lo := 0; lo < span; lo += grain {
			n := grain
			if lo+n > span {
				n = span - lo
			}
			out = append(out, float64(n)*float64(aSizes[i])*m.NLPair+float64(n)*m.StoreTuple)
		}
		if span == 0 {
			out = append(out, 0)
		}
	}
	return out
}

// IndexTriggerCosts returns per-instance costs of a triggered temp-index
// join: build an index on A_i, probe it with every B_i tuple, store the
// matches. Both build and probe touches pay the Allcache locality penalty
// when the fragment exceeds the fast subcache.
func (m CostModel) IndexTriggerCosts(aSizes, bSizes, matches []int) []float64 {
	out := make([]float64, len(aSizes))
	for i := range out {
		a, b := aSizes[i], bSizes[i]
		lg := log2Frag(a)
		miss := m.Machine.LocalityPenalty(int64(a) * int64(m.TupleBytes))
		build := float64(a) * (m.IdxBuildTuple + m.IdxBuildLog*lg + m.CacheMissTouch*miss)
		probe := float64(b) * (m.IdxProbeTuple + m.IdxProbeLog*lg + m.CacheMissTouch*miss)
		out[i] = build + probe + float64(matches[i])*m.StoreTuple
	}
	return out
}

// TransmitTriggerCosts returns per-instance costs of a triggered transmit
// over fragments of the given sizes.
func (m CostModel) TransmitTriggerCosts(sizes []int) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = float64(s) * m.TransmitTuple
	}
	return out
}

// NestedLoopProbeCosts returns per-consumer-instance per-tuple costs of a
// pipelined nested-loop join: each probe scans A_i (plus storing its match).
func (m CostModel) NestedLoopProbeCosts(aSizes []int) []float64 {
	out := make([]float64, len(aSizes))
	for i, a := range aSizes {
		out[i] = float64(a)*m.NLPair + m.StoreTuple
	}
	return out
}

// IndexProbeCosts returns per-consumer-instance per-tuple costs of a
// pipelined temp-index join (index on A_i built once; amortized into the
// per-tuple rate so the simulator's per-tuple activations carry it).
func (m CostModel) IndexProbeCosts(aSizes, probesPerInstance []int) []float64 {
	out := make([]float64, len(aSizes))
	for i, a := range aSizes {
		lg := log2Frag(a)
		miss := m.Machine.LocalityPenalty(int64(a) * int64(m.TupleBytes))
		build := float64(a) * (m.IdxBuildTuple + m.IdxBuildLog*lg + m.CacheMissTouch*miss)
		perProbe := m.IdxProbeTuple + m.IdxProbeLog*lg + m.CacheMissTouch*miss + m.StoreTuple
		probes := probesPerInstance[i]
		if probes > 0 {
			perProbe += build / float64(probes)
		}
		out[i] = perProbe
	}
	return out
}

// SelectionCosts returns per-instance costs of a triggered selection over
// fragments of the given sizes. When remote is true, every tuple pays the
// Allcache remote-fetch penalty; when the per-thread working set exceeds the
// effective local cache, even the "local" execution pays it (the paper's
// under-5-threads regime where Tl = Tr).
func (m CostModel) SelectionCosts(sizes []int, remote bool, threads int) []float64 {
	totalBytes := int64(0)
	for _, s := range sizes {
		totalBytes += int64(s) * int64(m.TupleBytes)
	}
	if threads < 1 {
		threads = 1
	}
	forcedRemote := !m.Machine.LocalResident(totalBytes / int64(threads))
	per := m.SelectTuple
	if remote || forcedRemote {
		per += m.Machine.RemoteExtra(m.TupleBytes)
	}
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = float64(s) * per
	}
	return out
}

// UniformSizes splits total tuples evenly over d fragments (remainder to the
// first fragments), the unskewed placements of the experiments.
func UniformSizes(total, d int) []int {
	out := make([]int, d)
	base, rem := total/d, total%d
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
