// Package sim is a virtual-time discrete-event simulator of DBS3's parallel
// execution model. It reproduces the scheduling semantics of the real engine
// (package core) — per-instance activation queues, thread pools with main
// and secondary queues, Random and LPT consumption — on a virtual clock with
// per-activation costs from a calibrated KSR1 cost model. The paper's
// figures need up to 100 threads on 70 processors; the simulator makes those
// experiments reproducible on any host, which is the substitution documented
// in DESIGN.md.
package sim

import (
	"math"
	"math/rand"
)

// Kind selects the consumption strategy, mirroring core.StrategyKind.
type Kind int

const (
	// Random picks a random non-empty queue (the engine default).
	Random Kind = iota
	// LPT picks the non-empty queue with the most remaining estimated work.
	LPT
)

// Config holds machine-level simulation parameters.
type Config struct {
	// Processors caps real parallelism; more threads than processors time-
	// share (processor-sharing dilation), which is why the paper's speed-up
	// curves decline past 70 threads.
	Processors int
	// StartupPerThread is the sequential initialization cost per thread
	// (the "start-up time proportional to the degree of parallelism" of
	// §1).
	StartupPerThread float64
	// Seed drives the Random strategy.
	Seed int64
}

// dilation is the processor-sharing slowdown applied to all processing when
// more threads than processors are allocated.
func (c Config) dilation(totalThreads int) float64 {
	if c.Processors <= 0 || totalThreads <= c.Processors {
		return 1
	}
	return float64(totalThreads) / float64(c.Processors)
}

// Startup is the sequential initialization time: thread creation plus queue
// creation. Exposed so experiment drivers can split a simulated time into
// its fixed and parallel parts when overlaying analytical curves.
func (c Config) Startup(totalThreads int, queueOverheads float64) float64 {
	return float64(totalThreads)*c.StartupPerThread + queueOverheads
}

// Result reports one simulated execution.
type Result struct {
	// Time is the total response time: startup + makespan.
	Time float64
	// Makespan is the parallel processing time (excluding startup).
	Makespan float64
	// BusyTime is the summed processing time over all threads.
	BusyTime float64
	// SecondaryPicks counts consumptions from non-main queues.
	SecondaryPicks int
}

// TriggeredSpec describes a triggered operation: one activation per
// instance, all available at time zero (Figure 2).
type TriggeredSpec struct {
	// Costs[i] is instance i's activation processing time.
	Costs []float64
	// Threads is the pool size.
	Threads int
	// Strategy picks among secondary queues.
	Strategy Kind
	// QueueOverhead is the per-queue creation/management cost charged to
	// sequential startup (0.45 ms/queue for triggered queues, Figure 16).
	QueueOverhead float64
	// Estimates overrides the LPT per-queue cost estimates; defaults to
	// Costs (the engine estimates from fragment sizes, which here are the
	// costs themselves).
	Estimates []float64
}

// Triggered simulates a triggered operation: greedy list scheduling with the
// engine's main-queue preference.
func Triggered(spec TriggeredSpec, cfg Config) Result {
	n := spec.Threads
	if n < 1 {
		n = 1
	}
	a := len(spec.Costs)
	est := spec.Estimates
	if est == nil {
		est = spec.Costs
	}
	dil := cfg.dilation(n)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	free := make([]float64, n)
	taken := make([]bool, a)
	remaining := a
	res := Result{}

	pick := func(w int) int {
		// Main queues first: instance i is main for thread i % n.
		best := -1
		switch spec.Strategy {
		case LPT:
			bestEst := -1.0
			for i := w; i < a; i += n {
				if !taken[i] && est[i] > bestEst {
					best, bestEst = i, est[i]
				}
			}
			if best >= 0 {
				return best
			}
			for i := 0; i < a; i++ {
				if !taken[i] && est[i] > bestEst {
					best, bestEst = i, est[i]
				}
			}
			if best >= 0 {
				res.SecondaryPicks++
			}
			return best
		default:
			var mains []int
			for i := w; i < a; i += n {
				if !taken[i] {
					mains = append(mains, i)
				}
			}
			if len(mains) > 0 {
				return mains[rng.Intn(len(mains))]
			}
			var all []int
			for i := 0; i < a; i++ {
				if !taken[i] {
					all = append(all, i)
				}
			}
			if len(all) == 0 {
				return -1
			}
			res.SecondaryPicks++
			return all[rng.Intn(len(all))]
		}
	}

	for remaining > 0 {
		// Thread that frees earliest takes the next activation.
		w := 0
		for i := 1; i < n; i++ {
			if free[i] < free[w] {
				w = i
			}
		}
		qi := pick(w)
		if qi < 0 {
			break
		}
		taken[qi] = true
		remaining--
		d := spec.Costs[qi] * dil
		free[w] += d
		res.BusyTime += d
	}
	for _, f := range free {
		if f > res.Makespan {
			res.Makespan = f
		}
	}
	res.Time = cfg.Startup(n, float64(a)*spec.QueueOverhead) + res.Makespan
	return res
}

// PipelineSpec describes a two-stage pipelined chain (the paper's AssocJoin,
// Figure 11): a triggered producer stage (transmit reading its bound
// fragments) whose emitted tuples become the pipelined activations of a
// consumer stage (the join), one queue per consumer instance.
type PipelineSpec struct {
	// ProducerCosts[i] is producer instance i's trigger processing time; the
	// instance emits its tuples at a uniform rate across that time.
	ProducerCosts []float64
	// Emissions[i][j] is the consumer instance receiving the j-th tuple of
	// producer instance i.
	Emissions [][]int
	// ConsumerPerTuple[t] is the per-tuple processing cost at consumer
	// instance t (e.g. |A_t| * nested-loop pair cost).
	ConsumerPerTuple []float64
	// ProducerThreads and ConsumerThreads size the two pools.
	ProducerThreads, ConsumerThreads int
	// Strategy picks among secondary queues (both pools).
	Strategy Kind
	// QueueOverheadProducer/Consumer are the per-queue costs charged to
	// startup (0.45 ms triggered, ~3.55 ms pipelined; together the 4
	// ms/degree of Figure 16).
	QueueOverheadProducer, QueueOverheadConsumer float64
}

// arrival is one pipelined activation: release time and target queue.
type arrival struct {
	at     float64
	target int
}

// Pipeline simulates the two-stage chain. Producers and consumers have
// separate pools (the engine's per-operation thread pools), so the producer
// schedule is computed first and its emission times drive the consumer DES.
func Pipeline(spec PipelineSpec, cfg Config) Result {
	np, nc := spec.ProducerThreads, spec.ConsumerThreads
	if np < 1 {
		np = 1
	}
	if nc < 1 {
		nc = 1
	}
	total := np + nc
	dil := cfg.dilation(total)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	res := Result{}

	// Stage 1: producers via list scheduling, recording emission times.
	d := len(spec.ProducerCosts)
	prodFree := make([]float64, np)
	taken := make([]bool, d)
	nq := len(spec.ConsumerPerTuple)
	queues := make([][]arrival, nq)
	prodMakespan := 0.0
	for done := 0; done < d; done++ {
		w := 0
		for i := 1; i < np; i++ {
			if prodFree[i] < prodFree[w] {
				w = i
			}
		}
		qi := pickTriggered(spec.Strategy, rng, taken, spec.ProducerCosts, w, np, &res)
		if qi < 0 {
			break
		}
		taken[qi] = true
		start := prodFree[w]
		cost := spec.ProducerCosts[qi] * dil
		m := len(spec.Emissions[qi])
		perTuple := 0.0
		if m > 0 {
			perTuple = cost / float64(m)
		}
		for j, target := range spec.Emissions[qi] {
			queues[target] = append(queues[target], arrival{at: start + float64(j+1)*perTuple, target: target})
		}
		prodFree[w] = start + cost
		res.BusyTime += cost
		if prodFree[w] > prodMakespan {
			prodMakespan = prodFree[w]
		}
	}
	// FIFO order within each queue by arrival time.
	for _, q := range queues {
		sortArrivals(q)
	}

	// Stage 2: consumer DES.
	head := make([]int, nq)
	consFree := make([]float64, nc)
	remaining := 0
	for _, q := range queues {
		remaining += len(q)
	}
	for remaining > 0 {
		w := 0
		for i := 1; i < nc; i++ {
			if consFree[i] < consFree[w] {
				w = i
			}
		}
		t := consFree[w]
		qi := pickPipelined(spec.Strategy, rng, queues, head, spec.ConsumerPerTuple, w, nc, t, &res)
		if qi < 0 {
			// Nothing released yet: idle until the earliest future arrival.
			next := math.Inf(1)
			for q := range queues {
				if head[q] < len(queues[q]) && queues[q][head[q]].at < next {
					next = queues[q][head[q]].at
				}
			}
			if math.IsInf(next, 1) {
				break
			}
			consFree[w] = next
			continue
		}
		head[qi]++
		remaining--
		cost := spec.ConsumerPerTuple[qi] * dil
		consFree[w] = t + cost
		res.BusyTime += cost
	}
	res.Makespan = prodMakespan
	for _, f := range consFree {
		if f > res.Makespan {
			res.Makespan = f
		}
	}
	overheads := float64(d)*spec.QueueOverheadProducer + float64(nq)*spec.QueueOverheadConsumer
	res.Time = cfg.Startup(total, overheads) + res.Makespan
	return res
}

// PipelineSequential is the one-thread execution: the sum of all work plus
// startup, the paper's Tseq baseline.
func PipelineSequential(spec PipelineSpec, cfg Config) float64 {
	var work float64
	for _, c := range spec.ProducerCosts {
		work += c
	}
	for i, q := range spec.Emissions {
		_ = i
		for _, target := range q {
			work += spec.ConsumerPerTuple[target]
		}
	}
	overheads := float64(len(spec.ProducerCosts))*spec.QueueOverheadProducer + float64(len(spec.ConsumerPerTuple))*spec.QueueOverheadConsumer
	return cfg.Startup(1, overheads) + work
}

// pickTriggered chooses an untaken triggered activation for thread w (main
// instances first, then strategy over the rest).
func pickTriggered(kind Kind, rng *rand.Rand, taken []bool, est []float64, w, n int, res *Result) int {
	a := len(taken)
	if kind == LPT {
		best, bestEst := -1, -1.0
		for i := w; i < a; i += n {
			if !taken[i] && est[i] > bestEst {
				best, bestEst = i, est[i]
			}
		}
		if best >= 0 {
			return best
		}
		for i := 0; i < a; i++ {
			if !taken[i] && est[i] > bestEst {
				best, bestEst = i, est[i]
			}
		}
		if best >= 0 {
			res.SecondaryPicks++
		}
		return best
	}
	var mains, all []int
	for i := w; i < a; i += n {
		if !taken[i] {
			mains = append(mains, i)
		}
	}
	if len(mains) > 0 {
		return mains[rng.Intn(len(mains))]
	}
	for i := 0; i < a; i++ {
		if !taken[i] {
			all = append(all, i)
		}
	}
	if len(all) == 0 {
		return -1
	}
	res.SecondaryPicks++
	return all[rng.Intn(len(all))]
}

// pickPipelined chooses a consumer queue with a released activation for
// thread w at time t.
func pickPipelined(kind Kind, rng *rand.Rand, queues [][]arrival, head []int, perTuple []float64, w, n int, t float64, res *Result) int {
	available := func(q int) bool {
		return head[q] < len(queues[q]) && queues[q][head[q]].at <= t
	}
	if kind == LPT {
		score := func(q int) float64 {
			released := 0
			for k := head[q]; k < len(queues[q]) && queues[q][k].at <= t; k++ {
				released++
			}
			return float64(released) * perTuple[q]
		}
		best, bestScore := -1, 0.0
		for q := w; q < len(queues); q += n {
			if available(q) {
				if s := score(q); s > bestScore {
					best, bestScore = q, s
				}
			}
		}
		if best >= 0 {
			return best
		}
		for q := 0; q < len(queues); q++ {
			if available(q) {
				if s := score(q); s > bestScore {
					best, bestScore = q, s
				}
			}
		}
		if best >= 0 {
			res.SecondaryPicks++
		}
		return best
	}
	var mains, all []int
	for q := w; q < len(queues); q += n {
		if available(q) {
			mains = append(mains, q)
		}
	}
	if len(mains) > 0 {
		return mains[rng.Intn(len(mains))]
	}
	for q := 0; q < len(queues); q++ {
		if available(q) {
			all = append(all, q)
		}
	}
	if len(all) == 0 {
		return -1
	}
	res.SecondaryPicks++
	return all[rng.Intn(len(all))]
}

// sortArrivals sorts in place by release time (insertion sort: queues are
// nearly sorted already since producers emit in order).
func sortArrivals(a []arrival) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].at < a[j-1].at; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// SplitThreads divides n threads over stages proportionally to their work
// (scheduler step 3), each stage getting at least one.
func SplitThreads(n int, weights []float64) []int {
	k := len(weights)
	out := make([]int, k)
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	assigned := 0
	type frac struct {
		i int
		f float64
	}
	fr := make([]frac, k)
	for i, w := range weights {
		exact := float64(n) * w / sum
		out[i] = int(math.Floor(exact))
		if out[i] < 1 {
			out[i] = 1
		}
		assigned += out[i]
		fr[i] = frac{i, exact - math.Floor(exact)}
	}
	for j := 0; assigned < n; j = (j + 1) % k {
		out[fr[j].i]++
		assigned++
	}
	return out
}
