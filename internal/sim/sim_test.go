package sim

import (
	"math"
	"testing"
	"testing/quick"

	"dbs3/internal/analytic"
	"dbs3/internal/zipf"
)

func flatCfg() Config { return Config{Processors: 1 << 30} } // no startup, no dilation

func TestTriggeredSingleThreadIsSum(t *testing.T) {
	costs := []float64{3, 1, 4, 1, 5}
	r := Triggered(TriggeredSpec{Costs: costs, Threads: 1}, flatCfg())
	if math.Abs(r.Makespan-14) > 1e-9 {
		t.Errorf("makespan = %v, want 14", r.Makespan)
	}
	if math.Abs(r.BusyTime-14) > 1e-9 {
		t.Errorf("busy = %v", r.BusyTime)
	}
}

func TestTriggeredUniformNearIdeal(t *testing.T) {
	costs := make([]float64, 200)
	for i := range costs {
		costs[i] = 1
	}
	for _, n := range []int{2, 5, 10, 50} {
		r := Triggered(TriggeredSpec{Costs: costs, Threads: n}, flatCfg())
		ideal := 200.0 / float64(n)
		if r.Makespan < ideal-1e-9 {
			t.Fatalf("n=%d: makespan %v below ideal %v", n, r.Makespan, ideal)
		}
		if r.Makespan > ideal+1 { // at most one extra activation of slack
			t.Errorf("n=%d: makespan %v far above ideal %v", n, r.Makespan, ideal)
		}
	}
}

// Any list schedule respects the paper's equation (2):
// T <= (sum - Pmax)/n + Pmax.
func TestTriggeredRespectsTworstBound(t *testing.T) {
	for _, theta := range []float64{0, 0.4, 0.8, 1} {
		sizes := zipf.Sizes(100000, 200, theta)
		costs := make([]float64, len(sizes))
		var sum, pmax float64
		for i, s := range sizes {
			costs[i] = float64(s)
			sum += costs[i]
			if costs[i] > pmax {
				pmax = costs[i]
			}
		}
		for _, n := range []int{5, 10, 20} {
			for _, k := range []Kind{Random, LPT} {
				r := Triggered(TriggeredSpec{Costs: costs, Threads: n, Strategy: k}, flatCfg())
				bound := (sum-pmax)/float64(n) + pmax
				if r.Makespan > bound+1e-6 {
					t.Errorf("theta=%v n=%d %v: makespan %v > Tworst %v", theta, n, k, r.Makespan, bound)
				}
				if r.Makespan < sum/float64(n)-1e-6 {
					t.Errorf("theta=%v n=%d %v: makespan %v below ideal", theta, n, k, r.Makespan)
				}
				if r.Makespan < pmax-1e-6 {
					t.Errorf("makespan below longest activation")
				}
			}
		}
	}
}

// The paper's Figure 13 result: under skew, LPT beats Random on triggered
// operations.
func TestLPTBeatsRandomUnderSkew(t *testing.T) {
	sizes := zipf.Sizes(100000, 200, 1)
	costs := make([]float64, len(sizes))
	for i, s := range sizes {
		costs[i] = float64(s)
	}
	lpt := Triggered(TriggeredSpec{Costs: costs, Threads: 10, Strategy: LPT}, flatCfg())
	worst := 0.0
	for seed := int64(0); seed < 5; seed++ {
		cfg := flatCfg()
		cfg.Seed = seed
		r := Triggered(TriggeredSpec{Costs: costs, Threads: 10, Strategy: Random}, cfg)
		if r.Makespan > worst {
			worst = r.Makespan
		}
	}
	if lpt.Makespan > worst+1e-9 {
		t.Errorf("LPT %v worse than worst Random %v", lpt.Makespan, worst)
	}
}

func TestTriggeredStartupAndOverheadAccounted(t *testing.T) {
	cfg := Config{Processors: 100, StartupPerThread: 0.5}
	r := Triggered(TriggeredSpec{Costs: []float64{1, 1}, Threads: 2, QueueOverhead: 0.25}, cfg)
	// startup = 2*0.5 + 2*0.25 = 1.5; makespan = 1.
	if math.Abs(r.Time-2.5) > 1e-9 {
		t.Errorf("Time = %v, want 2.5", r.Time)
	}
}

func TestDilationBeyondProcessors(t *testing.T) {
	costs := make([]float64, 100)
	for i := range costs {
		costs[i] = 1
	}
	cfg := Config{Processors: 4}
	within := Triggered(TriggeredSpec{Costs: costs, Threads: 4}, cfg)
	beyond := Triggered(TriggeredSpec{Costs: costs, Threads: 8}, cfg)
	// 8 threads on 4 processors: same throughput, so no speedup...
	if beyond.Makespan < within.Makespan-1e-6 {
		t.Errorf("oversubscription sped things up: %v < %v", beyond.Makespan, within.Makespan)
	}
}

func TestPipelineSequentialIsTotalWork(t *testing.T) {
	spec := PipelineSpec{
		ProducerCosts:    []float64{2, 2},
		Emissions:        [][]int{{0, 1}, {0, 1}},
		ConsumerPerTuple: []float64{3, 5},
		ProducerThreads:  1,
		ConsumerThreads:  1,
	}
	got := PipelineSequential(spec, flatCfg())
	want := 4.0 + 2*3 + 2*5
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("sequential = %v, want %v", got, want)
	}
}

func TestPipelineRespectsArrivalOrder(t *testing.T) {
	// One producer instance emitting 4 tuples over 4s to one consumer
	// queue; consumer processes 1s each: last tuple arrives at t=4,
	// finishes at 5.
	spec := PipelineSpec{
		ProducerCosts:    []float64{4},
		Emissions:        [][]int{{0, 0, 0, 0}},
		ConsumerPerTuple: []float64{1},
		ProducerThreads:  1,
		ConsumerThreads:  1,
	}
	r := Pipeline(spec, flatCfg())
	if math.Abs(r.Makespan-5) > 1e-9 {
		t.Errorf("makespan = %v, want 5 (pipelined overlap)", r.Makespan)
	}
}

func TestPipelineParallelismHelps(t *testing.T) {
	d := 20
	prod := make([]float64, d)
	emis := make([][]int, d)
	per := make([]float64, d)
	for i := 0; i < d; i++ {
		prod[i] = 1
		for j := 0; j < 50; j++ {
			emis[i] = append(emis[i], (i+j)%d)
		}
		per[i] = 0.1
	}
	seq := PipelineSequential(PipelineSpec{ProducerCosts: prod, Emissions: emis, ConsumerPerTuple: per}, flatCfg())
	par := Pipeline(PipelineSpec{
		ProducerCosts: prod, Emissions: emis, ConsumerPerTuple: per,
		ProducerThreads: 2, ConsumerThreads: 8,
	}, flatCfg())
	if par.Time >= seq {
		t.Errorf("parallel %v not faster than sequential %v", par.Time, seq)
	}
	if speedup := seq / par.Time; speedup < 4 {
		t.Errorf("speedup = %v, want >= 4 with 10 threads", speedup)
	}
}

// The paper's §4.1 result: pipelined operations with many activations absorb
// skew — makespan within a few percent of ideal even at Zipf 1.
func TestPipelineAbsorbsSkew(t *testing.T) {
	d := 200
	aSizes := zipf.Sizes(100000, d, 1)
	bPer := 50 // 10K tuples over 200 instances
	prod := make([]float64, d)
	emis := make([][]int, d)
	per := make([]float64, d)
	for i := 0; i < d; i++ {
		prod[i] = float64(bPer) * 0.1e-3
		for j := 0; j < bPer; j++ {
			emis[i] = append(emis[i], (i+j*7)%d)
		}
		per[i] = float64(aSizes[i]) * 1e-6
	}
	var prodWork, consWork float64
	for i := range emis {
		prodWork += prod[i]
		for _, tgt := range emis[i] {
			consWork += per[tgt]
		}
	}
	np, nc := 2, 8
	r := Pipeline(PipelineSpec{
		ProducerCosts: prod, Emissions: emis, ConsumerPerTuple: per,
		ProducerThreads: np, ConsumerThreads: nc,
	}, flatCfg())
	// Per-stage pools: the bottleneck stage's ideal time floors the
	// makespan. Even at Zipf 1 the pipelined join stays near it.
	ideal := math.Max(prodWork/float64(np), consWork/float64(nc))
	if v := r.Makespan/ideal - 1; v > 0.30 {
		t.Errorf("pipelined skew overhead v = %v, expected well under the triggered case", v)
	}
}

func TestSplitThreads(t *testing.T) {
	s := SplitThreads(10, []float64{1, 9})
	if s[0] < 1 || s[0]+s[1] != 10 || s[1] <= s[0] {
		t.Errorf("split = %v", s)
	}
	s = SplitThreads(2, []float64{5, 5, 5})
	for _, v := range s {
		if v < 1 {
			t.Fatalf("split starves a stage: %v", s)
		}
	}
	s = SplitThreads(4, []float64{0, 0})
	if s[0] != 1 || s[1] != 1 {
		t.Errorf("zero-weight split = %v", s)
	}
}

// Property: makespan of a triggered op never falls below max(sum/n, Pmax)
// and never exceeds the Graham bound, for random cost vectors.
func TestTriggeredBoundsProperty(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 100 {
			raw = raw[:100]
		}
		n := int(nRaw)%20 + 1
		costs := make([]float64, len(raw))
		var sum, pmax float64
		for i, v := range raw {
			costs[i] = float64(v%1000) + 1
			sum += costs[i]
			if costs[i] > pmax {
				pmax = costs[i]
			}
		}
		for _, k := range []Kind{Random, LPT} {
			r := Triggered(TriggeredSpec{Costs: costs, Threads: n, Strategy: k}, flatCfg())
			lower := math.Max(sum/float64(n), pmax)
			upper := (sum-pmax)/float64(n) + pmax
			if r.Makespan < lower-1e-6 || r.Makespan > upper+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Calibration anchors (paper anchors): sequential times of the Figure
// 14/15 database within a few percent of the paper's Tseq.
func TestCalibrationSequentialAnchors(t *testing.T) {
	m := Calibrated()
	cfg := m.Config(1)
	d := 200
	aSizes := UniformSizes(200_000, d)
	bSizes := UniformSizes(20_000, d)
	// IdealJoin: Tseq = 956 s.
	costs := m.NestedLoopTriggerCosts(aSizes, bSizes, bSizes)
	r := Triggered(TriggeredSpec{Costs: costs, Threads: 1, QueueOverhead: m.TriggeredQueueOverhead}, cfg)
	if rel := math.Abs(r.Time-956) / 956; rel > 0.01 {
		t.Errorf("IdealJoin Tseq = %v, paper 956 s (off %.1f%%)", r.Time, rel*100)
	}
	// AssocJoin: Tseq = 1048 s.
	prod := m.TransmitTriggerCosts(bSizes)
	per := m.NestedLoopProbeCosts(aSizes)
	emis := make([][]int, d)
	for i := 0; i < d; i++ {
		for j := 0; j < bSizes[i]; j++ {
			emis[i] = append(emis[i], (i+j)%d)
		}
	}
	seq := PipelineSequential(PipelineSpec{
		ProducerCosts: prod, Emissions: emis, ConsumerPerTuple: per,
		QueueOverheadProducer: m.TriggeredQueueOverhead, QueueOverheadConsumer: m.PipelinedQueueOverhead,
	}, cfg)
	// The 92 s gap between the paper's two sequential times cannot be fully
	// attributed to transmit CPU without breaking the Figure 17 shape, so
	// the transmit calibration favours the shape and
	// this anchor is held to 8%.
	if rel := math.Abs(seq-1048) / 1048; rel > 0.08 {
		t.Errorf("AssocJoin Tseq = %v, paper 1048 s (off %.1f%%)", seq, rel*100)
	}
}

// Speed-up anchor: unskewed IdealJoin reaches > 60 on 70 threads (§5.5).
func TestCalibrationSpeedupAnchor(t *testing.T) {
	m := Calibrated()
	cfg := m.Config(1)
	d := 200
	costs := m.NestedLoopTriggerCosts(UniformSizes(200_000, d), UniformSizes(20_000, d), UniformSizes(20_000, d))
	seq := Triggered(TriggeredSpec{Costs: costs, Threads: 1, QueueOverhead: m.TriggeredQueueOverhead}, cfg).Time
	par := Triggered(TriggeredSpec{Costs: costs, Threads: 70, QueueOverhead: m.TriggeredQueueOverhead}, cfg).Time
	if s := seq / par; s < 60 {
		t.Errorf("speed-up at 70 threads = %v, paper reports > 60", s)
	}
}

// nmax anchor: with Zipf = 1 the skewed IdealJoin speed-up ceilings at ~6
// (§5.5), because the longest activation bounds the response time.
func TestCalibrationNmaxCeiling(t *testing.T) {
	m := Calibrated()
	cfg := m.Config(1)
	d := 200
	aSizes := zipf.Sizes(200_000, d, 1)
	bSizes := UniformSizes(20_000, d)
	costs := m.NestedLoopTriggerCosts(aSizes, bSizes, bSizes)
	seq := Triggered(TriggeredSpec{Costs: costs, Threads: 1, QueueOverhead: m.TriggeredQueueOverhead}, cfg).Time
	for _, n := range []int{20, 70} {
		par := Triggered(TriggeredSpec{Costs: costs, Threads: n, Strategy: LPT, QueueOverhead: m.TriggeredQueueOverhead}, cfg).Time
		s := seq / par
		nmax := analytic.NmaxZipf(d, 1)
		if s > nmax+0.5 {
			t.Errorf("n=%d: speed-up %v exceeds nmax %v", n, s, nmax)
		}
		if s < nmax-1.5 {
			t.Errorf("n=%d: speed-up %v far below nmax %v", n, s, nmax)
		}
	}
}

// Remote-access anchor (§5.2): the Tr - Tl overhead is ~4% of execution time
// and decreases with the thread count; below 5 threads local execution is
// impossible so Tr = Tl.
func TestCalibrationRemoteAccessAnchor(t *testing.T) {
	m := Calibrated()
	cfg := m.Config(1)
	d := 200
	sizes := UniformSizes(200_000, d)
	var prev float64
	for _, n := range []int{5, 10, 20, 30} {
		local := Triggered(TriggeredSpec{Costs: m.SelectionCosts(sizes, false, n), Threads: n, QueueOverhead: m.TriggeredQueueOverhead}, cfg).Time
		remote := Triggered(TriggeredSpec{Costs: m.SelectionCosts(sizes, true, n), Threads: n, QueueOverhead: m.TriggeredQueueOverhead}, cfg).Time
		delta := remote - local
		if pct := delta / remote; pct < 0.02 || pct > 0.07 {
			t.Errorf("n=%d: remote overhead %.1f%%, paper reports ~4%%", n, pct*100)
		}
		if prev > 0 && delta > prev+1e-9 {
			t.Errorf("n=%d: Tr-Tl grew with threads (%v > %v)", n, delta, prev)
		}
		prev = delta
	}
	// Below 5 threads: forced remote, so Tr == Tl.
	l4 := Triggered(TriggeredSpec{Costs: m.SelectionCosts(sizes, false, 4), Threads: 4}, cfg).Time
	r4 := Triggered(TriggeredSpec{Costs: m.SelectionCosts(sizes, true, 4), Threads: 4}, cfg).Time
	if math.Abs(l4-r4) > 1e-9 {
		t.Errorf("n=4: Tl=%v Tr=%v, paper says they coincide below 5 threads", l4, r4)
	}
}

func TestPipelineWithLPTAndMultipleProducers(t *testing.T) {
	d := 40
	m := Calibrated()
	aSizes := zipf.Sizes(20_000, d, 0.9)
	bSizes := UniformSizes(2_000, d)
	prod := m.TransmitTriggerCosts(bSizes)
	per := m.NestedLoopProbeCosts(aSizes)
	emis := make([][]int, d)
	for i := 0; i < d; i++ {
		for j := 0; j < bSizes[i]; j++ {
			emis[i] = append(emis[i], (i+j)%d)
		}
	}
	spec := PipelineSpec{
		ProducerCosts: prod, Emissions: emis, ConsumerPerTuple: per,
		ProducerThreads: 3, ConsumerThreads: 5, Strategy: LPT,
	}
	lpt := Pipeline(spec, flatCfg())
	spec.Strategy = Random
	random := Pipeline(spec, flatCfg())
	// Both must account the same busy time (same work, different order).
	if math.Abs(lpt.BusyTime-random.BusyTime) > 1e-6 {
		t.Errorf("busy time differs: %v vs %v", lpt.BusyTime, random.BusyTime)
	}
	for _, r := range []Result{lpt, random} {
		if r.Makespan <= 0 || r.Time < r.Makespan {
			t.Errorf("inconsistent result %+v", r)
		}
	}
}

func TestChunkedCostsPreserveWorkAndMultiplyActivations(t *testing.T) {
	m := Calibrated()
	aSizes := zipf.Sizes(100_000, 50, 1)
	bSizes := UniformSizes(5_000, 50)
	whole := m.ChunkedNestedLoopTriggerCosts(aSizes, bSizes, 0)
	chunked := m.ChunkedNestedLoopTriggerCosts(aSizes, bSizes, 7)
	if len(whole) != 50 {
		t.Fatalf("grain 0 should fall back to per-instance costs, got %d", len(whole))
	}
	wantChunks := 50 * 15 // ceil(100/7) = 15 per instance
	if len(chunked) != wantChunks {
		t.Fatalf("chunk count = %d, want %d", len(chunked), wantChunks)
	}
	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	if math.Abs(sum(whole)-sum(chunked)) > 1e-6 {
		t.Errorf("chunking changed total work: %v vs %v", sum(whole), sum(chunked))
	}
	// Max activation shrinks with the grain.
	max := func(xs []float64) float64 {
		best := 0.0
		for _, x := range xs {
			if x > best {
				best = x
			}
		}
		return best
	}
	if max(chunked) >= max(whole) {
		t.Errorf("chunking should shrink the longest activation: %v vs %v", max(chunked), max(whole))
	}
	// Empty probe side still yields one (zero-cost) activation.
	z := m.ChunkedNestedLoopTriggerCosts([]int{10}, []int{0}, 4)
	if len(z) != 1 || z[0] != 0 {
		t.Errorf("empty instance chunking = %v", z)
	}
}

func TestIndexCostsShapes(t *testing.T) {
	m := Calibrated()
	// Index trigger costs decrease when fragments shrink (same data split
	// finer): compare total work at d=100 vs d=1000 for 500K/50K.
	coarse := m.IndexTriggerCosts(UniformSizes(500_000, 100), UniformSizes(50_000, 100), UniformSizes(50_000, 100))
	fine := m.IndexTriggerCosts(UniformSizes(500_000, 1000), UniformSizes(50_000, 1000), UniformSizes(50_000, 1000))
	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	if sum(fine) >= sum(coarse) {
		t.Errorf("finer fragments should cut index work: %v vs %v", sum(fine), sum(coarse))
	}
	// Probe costs: per-tuple rate amortizes the build over the probes.
	per := m.IndexProbeCosts([]int{1000, 1000}, []int{10, 100})
	if per[0] <= per[1] {
		t.Errorf("fewer probes must carry more build cost each: %v", per)
	}
	// Zero probes: build cost is not amortized (rate stays finite).
	z := m.IndexProbeCosts([]int{1000}, []int{0})
	if z[0] <= 0 {
		t.Errorf("zero-probe rate = %v", z[0])
	}
	if log2Frag(1) != 0 || log2Frag(0) != 0 {
		t.Error("log2Frag must floor tiny fragments at 0")
	}
	if math.Abs(log2Frag(8)-3) > 1e-12 {
		t.Errorf("log2Frag(8) = %v", log2Frag(8))
	}
}

func TestTriggeredLPTSecondaryPicks(t *testing.T) {
	// More threads than activations per main set forces secondary picks
	// under LPT too.
	costs := []float64{5, 1, 1, 1, 1, 1, 1, 1}
	r := Triggered(TriggeredSpec{Costs: costs, Threads: 3, Strategy: LPT}, flatCfg())
	if r.SecondaryPicks == 0 {
		t.Log("no secondary picks; acceptable but unusual for this shape")
	}
	if r.Makespan < 5 {
		t.Errorf("makespan %v below longest activation", r.Makespan)
	}
}
