package cluster

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"dbs3"
	"dbs3/internal/faultinject"
	"dbs3/internal/server"
)

// chaosSeed pins the fault schedule; the CI chaos job sets DBS3_CHAOS_LOG
// to capture the schedule this seed produced as a build artifact.
const chaosSeed = 20260807

// chaosQueries is the total mixed-query volume of the chaos phase.
const chaosQueries = 200

// chaosWorkers is the concurrency the queries run at.
const chaosWorkers = 4

// queryResult is one chaos query's outcome.
type queryResult struct {
	kind      string
	delivered int
	err       error
}

// scheduleLog opens the fault-schedule artifact when DBS3_CHAOS_LOG is set
// (the CI chaos job uploads it for post-mortem of a failed seed).
func scheduleLog(t *testing.T) *os.File {
	path := os.Getenv("DBS3_CHAOS_LOG")
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("DBS3_CHAOS_LOG: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestChaosReplicatedCluster is the tier's acceptance stress: a 3-shard ×
// 2-replica in-process cluster runs 200 concurrent mixed queries while a
// seeded fault injector mangles one replica's connections and another
// replica flaps up and down. Invariants checked:
//
//   - every query that succeeds returns the exact correct row count (no
//     lost or duplicated shard after a failover or restart);
//   - transparent failovers happened (failovers > 0) and most queries
//     succeed despite the chaos;
//   - killing a replica and holding it down opens its breaker after the
//     configured threshold, traffic stops reaching it, and a revival probe
//     closes the breaker again;
//   - every worker's ActiveThreads returns to 0 — no thread of any node's
//     budget leaks to a query whose coordinator-side result died;
//   - no coordinator goroutine outlives its query.
func TestChaosReplicatedCluster(t *testing.T) {
	ctx := context.Background()
	// No keep-alive pooling: every subquery dials a fresh connection, so the
	// injector's per-connection schedule applies per request instead of a
	// handful of long-lived pooled streams absorbing it.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	// Six real workers: shard i is served by replicas A and B.
	workerURLs := make([][2]string, testShards)
	for i := 0; i < testShards; i++ {
		workerURLs[i] = [2]string{newWorkerURL(t, i, true), newWorkerURL(t, i, true)}
	}
	// Shard 1's B replica sits behind the seeded injector; shard 2's B
	// replica behind the flap proxy.
	seeded := faultinject.NewSeeded(chaosSeed, faultinject.Weights{
		Clean: 6, Refuse: 2, Latency: 2, Status500: 1, Reset: 1, Truncate: 1,
	}, 600, 20*time.Millisecond)
	chaosProxy, err := faultinject.New(trimScheme(workerURLs[1][1]), seeded, scheduleLog(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { chaosProxy.Close() })
	flapProxy, err := faultinject.New(trimScheme(workerURLs[2][1]), faultinject.Script(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { flapProxy.Close() })

	nodes := []string{
		workerURLs[0][0] + "|" + workerURLs[0][1],
		workerURLs[1][0] + "|" + chaosProxy.URL(),
		workerURLs[2][0] + "|" + flapProxy.URL(),
	}
	coord, err := New(ctx, Config{
		Nodes:           nodes,
		HTTP:            hc,
		PollInterval:    -1, // the test drives Poll explicitly
		Retries:         -1, // faults reach the failover machinery, not the wire client
		RetryWholeQuery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	t.Cleanup(func() {
		if !closed {
			coord.Close()
		}
	})

	// Expected row counts per query kind, from an unsharded reference.
	ref := dbs3.New()
	populate(t, ref)
	const (
		streamSQL = "SELECT unique1 FROM wisc WHERE unique2 < 200"
		aggSQL    = "SELECT ten, COUNT(*) FROM wisc GROUP BY ten"
		execSQL   = "SELECT two, COUNT(*) FROM wisc WHERE unique1 < ? GROUP BY two"
	)
	expect := map[string]int{}
	for kind, q := range map[string]struct {
		sql  string
		args []any
	}{
		"stream": {streamSQL, nil},
		"agg":    {aggSQL, nil},
		"exec":   {execSQL, []any{int64(600)}},
	} {
		res, err := ref.QueryAll(q.sql, nil, q.args...)
		if err != nil {
			t.Fatal(err)
		}
		expect[kind] = len(res.Data)
	}

	// Prepare while everything is up, and prime the load snapshots.
	pr, err := coord.Prepare(ctx, execSQL, nil)
	if err != nil {
		t.Fatal(err)
	}
	coord.Poll(ctx)

	// The leak baseline: everything long-lived (servers, proxies, the
	// coordinator) already exists.
	baseline := runtime.NumGoroutine()

	// Phase 1: concurrent mixed queries under seeded faults, with shard 2's
	// B replica flapping the whole time.
	flapStop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		for {
			select {
			case <-flapStop:
				return
			case <-time.After(30 * time.Millisecond):
			}
			flapProxy.Sever()
			flapProxy.SetDown(true)
			select {
			case <-flapStop:
				flapProxy.SetDown(false)
				return
			case <-time.After(30 * time.Millisecond):
			}
			flapProxy.SetDown(false)
		}
	}()

	results := make([]queryResult, chaosQueries)
	var wg sync.WaitGroup
	for w := 0; w < chaosWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < chaosQueries; i += chaosWorkers {
				var rows *Rows
				var err error
				var kind string
				switch i % 3 {
				case 0:
					kind = "stream"
					rows, err = coord.Query(ctx, streamSQL, nil, nil)
				case 1:
					kind = "agg"
					rows, err = coord.Query(ctx, aggSQL, nil, nil)
				default:
					kind = "exec"
					rows, err = coord.Exec(ctx, pr.ID, []any{int64(600)}, nil)
				}
				res := queryResult{kind: kind}
				if err == nil {
					for rows.Next() {
						res.delivered++
					}
					err = rows.Err()
					rows.Close()
				}
				res.err = err
				results[i] = res
			}
		}(w)
	}
	wg.Wait()
	close(flapStop)
	flapper.Wait()

	// Every success is exact; failures under chaos are tolerated (a replica
	// dying after rows merged is allowed to surface) but must stay a small
	// minority — the failover and retry paths absorb the rest.
	failed := 0
	for i, res := range results {
		if res.err != nil {
			failed++
			continue
		}
		if res.delivered != expect[res.kind] {
			t.Errorf("query %d (%s) delivered %d rows, want %d", i, res.kind, res.delivered, expect[res.kind])
		}
	}
	if failed > chaosQueries/4 {
		t.Errorf("%d/%d chaos queries failed — failover is not absorbing faults", failed, chaosQueries)
	}
	if n := coord.failovers.Load(); n == 0 {
		t.Error("no failovers recorded across the chaos run")
	}
	t.Logf("chaos: %d/%d ok, failovers=%d wholeQueryRetries=%d repreparations=%d failures=%d",
		chaosQueries-failed, chaosQueries, coord.failovers.Load(),
		coord.wholeQueryRetries.Load(), coord.repreparations.Load(), coord.failures.Load())

	// Phase 2: deterministic breaker lifecycle on the flapped replica.
	// Revive it and probe once so its breaker starts closed with a clean
	// failure streak.
	flapRep := coord.shards[2].replicas[1]
	coord.Poll(ctx)
	if st := flapRep.brk.current(); st != breakerClosed {
		t.Fatalf("flapped replica's breaker is %v after a successful probe, want closed", st)
	}
	// Kill it and let the poller count it out: threshold (3) consecutive
	// failed probes open the breaker.
	flapProxy.Sever()
	flapProxy.SetDown(true)
	for i := 0; i < defaultBreakerThreshold; i++ {
		coord.Poll(ctx)
	}
	if st := flapRep.brk.current(); st != breakerOpen {
		t.Fatalf("breaker is %v after %d failed probes, want open", st, defaultBreakerThreshold)
	}
	stats := coord.Stats()
	var flapStatus *NodeStatus
	for i := range stats.Nodes {
		if stats.Nodes[i].Node == flapProxy.URL() {
			flapStatus = &stats.Nodes[i]
		}
	}
	if flapStatus == nil || flapStatus.Breaker != "open" {
		t.Fatalf("Stats does not show the dead replica's breaker open: %+v", flapStatus)
	}
	// With the breaker open, queries route around the dead replica: no new
	// connection reaches its proxy.
	before := flapProxy.Conns()
	for i := 0; i < 20; i++ {
		rows, err := coord.Query(ctx, aggSQL, nil, nil)
		if err != nil {
			t.Fatalf("query %d with an open breaker: %v", i, err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("query %d with an open breaker: %v", i, err)
		}
		rows.Close()
		if n != expect["agg"] {
			t.Fatalf("query %d delivered %d rows, want %d", i, n, expect["agg"])
		}
	}
	if got := flapProxy.Conns(); got != before {
		t.Errorf("dead replica received %d connections while its breaker was open", got-before)
	}
	// Revive: one successful probe closes the breaker and the replica
	// rejoins placement.
	flapProxy.SetDown(false)
	coord.Poll(ctx)
	if st := flapRep.brk.current(); st != breakerClosed {
		t.Errorf("breaker is %v after the replica revived, want closed", st)
	}

	// Drain: every worker's thread budget is whole again.
	for i, pair := range workerURLs {
		for j, url := range pair {
			probe := &server.Client{Base: url, HTTP: hc}
			if err := waitDrained(ctx, probe); err != nil {
				t.Errorf("worker %d%c: %v", i, 'A'+rune(j), err)
			}
		}
	}

	// Leak check: close the coordinator and the shared transport's idle
	// connections, then the goroutine count must fall back to the baseline.
	coord.Close()
	closed = true
	deadline := time.Now().Add(10 * time.Second)
	for {
		hc.CloseIdleConnections()
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines: %d alive, baseline %d — a reader or stream outlived its query",
				runtime.NumGoroutine(), baseline)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitDrained polls one worker's /stats until its thread budget is whole.
func waitDrained(ctx context.Context, probe *server.Client) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := probe.Stats(ctx)
		if err == nil && st.ActiveThreads == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("stats probe: %w", err)
			}
			return fmt.Errorf("ActiveThreads = %d after the cluster went idle, want 0", st.ActiveThreads)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
