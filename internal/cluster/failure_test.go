package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"dbs3"
	"dbs3/internal/server"
)

// failureCluster is a cluster whose httptest servers stay addressable, so a
// test can sever a worker's connections mid-stream. All traffic runs over
// one dedicated http.Client, so the goroutine-leak check can distinguish
// leaked readers from idle keep-alive connections.
type failureCluster struct {
	coord *Coordinator
	ts    []*httptest.Server
	urls  []string
	httpc *http.Client
}

// newFailureCluster builds workers with a wide Wisconsin relation — wide
// enough that a full scan is still streaming when the test pulls a node's
// plug.
func newFailureCluster(t *testing.T) *failureCluster {
	t.Helper()
	fc := &failureCluster{httpc: &http.Client{}}
	t.Cleanup(fc.httpc.CloseIdleConnections)
	for i := 0; i < testShards; i++ {
		db := dbs3.New()
		if err := db.CreateWisconsin("wisc", 30000, 4, "unique2", 42); err != nil {
			t.Fatal(err)
		}
		if err := db.ShardRelation("wisc", "unique2", i, testShards); err != nil {
			t.Fatal(err)
		}
		m := db.Manager(dbs3.ManagerConfig{Budget: testBudget})
		ts := httptest.NewServer(server.New(db, m, server.Config{}))
		t.Cleanup(ts.Close)
		t.Cleanup(func() { ts.Client().CloseIdleConnections() })
		fc.ts = append(fc.ts, ts)
		fc.urls = append(fc.urls, ts.URL)
	}
	coord, err := New(context.Background(), Config{Nodes: fc.urls, HTTP: fc.httpc, PollInterval: -1, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	fc.coord = coord
	return fc
}

// waitThreadsDrained polls a worker's /stats until its thread ledger is
// empty — the proof that an aborted subquery returned its reservation.
func (fc *failureCluster) waitThreadsDrained(t *testing.T, url string) {
	t.Helper()
	client := &server.Client{Base: url, HTTP: fc.httpc}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := client.Stats(context.Background())
		if err == nil && st.ActiveThreads == 0 && st.Active == 0 {
			return
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("worker %s unreachable while waiting for drain: %v", url, err)
			}
			t.Fatalf("worker %s still holds %d threads (%d active queries) after node failure", url, st.ActiveThreads, st.Active)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNodeDeathMidStream is the partial-failure contract: killing one
// worker's connections while a scatter is streaming surfaces exactly one
// error naming a node, cancels the sibling streams so every worker's
// threads return to its budget, and leaks no coordinator goroutines.
func TestNodeDeathMidStream(t *testing.T) {
	fc := newFailureCluster(t)
	before := runtime.NumGoroutine()
	rows, err := fc.coord.Query(context.Background(), "SELECT * FROM wisc", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pull a few rows so every stream is established and mid-flight…
	for i := 0; i < 10 && rows.Next(); i++ {
	}
	// …then sever node 1's connections: its stream dies under the reader.
	fc.ts[1].CloseClientConnections()
	for rows.Next() {
	}
	err = rows.Err()
	if err == nil {
		t.Fatal("scatter completed despite a dead node")
	}
	if !strings.Contains(err.Error(), "cluster: node ") {
		t.Errorf("failure error does not name the node: %v", err)
	}
	rows.Close()

	// Every worker — the killed one included — returns its threads.
	for _, url := range fc.urls {
		fc.waitThreadsDrained(t, url)
	}
	if st := fc.coord.Stats(); st.Failures != 1 {
		t.Errorf("coordinator failures = %d, want 1 (one error per query, not per node)", st.Failures)
	}

	// The fan-in machinery fully unwinds: once idle keep-alive connections
	// are discounted, no reader goroutines survive the failed scatter.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fc.httpc.CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before scatter, %d after failure cleanup", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadNodeFailsQueryAtOpen: a node that is down before the query starts
// fails the fan-out at the header barrier — one clean error, nothing half
// streamed, surviving workers drained.
func TestDeadNodeFailsQueryAtOpen(t *testing.T) {
	fc := newFailureCluster(t)
	fc.ts[2].Close()
	_, err := fc.coord.Query(context.Background(), "SELECT * FROM wisc WHERE unique1 < 100", nil, nil)
	if err == nil {
		t.Fatal("scatter opened with a dead node")
	}
	if !strings.Contains(err.Error(), "cluster: node ") {
		t.Errorf("open-phase error does not name the node: %v", err)
	}
	for _, url := range fc.urls[:2] {
		fc.waitThreadsDrained(t, url)
	}
	if st := fc.coord.Stats(); st.Failures != 1 {
		t.Errorf("coordinator failures = %d, want 1", st.Failures)
	}
}

// TestCloseMidStreamCancelsWorkers: the consumer abandoning a healthy
// scatter is the same cleanup path — Close cancels every worker request and
// the workers' budgets refill.
func TestCloseMidStreamCancelsWorkers(t *testing.T) {
	fc := newFailureCluster(t)
	rows, err := fc.coord.Query(context.Background(), "SELECT * FROM wisc", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && rows.Next(); i++ {
	}
	rows.Close()
	for _, url := range fc.urls {
		fc.waitThreadsDrained(t, url)
	}
}
