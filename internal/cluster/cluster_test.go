package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"dbs3"
	"dbs3/internal/server"
)

// testBudget is each worker's thread budget in the cluster tests.
const testBudget = 4

// testShards is the cluster width the correctness suite runs at.
const testShards = 3

// populate loads the shared test catalog into db: a Wisconsin relation and
// the paper's join pair. Every node and the single-node reference run the
// same calls with the same seeds, so sharding is the only difference.
func populate(t *testing.T, db *dbs3.Database) {
	t.Helper()
	if err := db.CreateWisconsin("wisc", 1200, 4, "unique2", 42); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateJoinPair("", 600, 600, 4, 0.5); err != nil {
		t.Fatal(err)
	}
}

// shardAll restricts db to one node's shard, distributing wisc on unique2
// and the join relations on k — the join key, so both sides of every join
// in the suite co-locate per node.
func shardAll(t *testing.T, db *dbs3.Database, shard int) {
	t.Helper()
	for rel, col := range map[string]string{
		"wisc": "unique2",
		"A":    "k",
		"B":    "k",
		"Br":   "k",
	} {
		if err := db.ShardRelation(rel, col, shard, testShards); err != nil {
			t.Fatalf("shard %s on %s: %v", rel, col, err)
		}
	}
}

// testCluster is a 3-worker cluster plus the single-node reference holding
// the union relation.
type testCluster struct {
	coord *Coordinator
	ref   *dbs3.Database
	srvs  []*server.Server
	urls  []string
}

func newTestCluster(t *testing.T, token string) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < testShards; i++ {
		db := dbs3.New()
		populate(t, db)
		shardAll(t, db, i)
		m := db.Manager(dbs3.ManagerConfig{Budget: testBudget})
		srv := server.New(db, m, server.Config{AuthToken: token})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		t.Cleanup(func() { ts.Client().CloseIdleConnections() })
		tc.srvs = append(tc.srvs, srv)
		tc.urls = append(tc.urls, ts.URL)
	}
	tc.ref = dbs3.New()
	populate(t, tc.ref)
	coord, err := New(context.Background(), Config{Nodes: tc.urls, Token: token, PollInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	tc.coord = coord
	return tc
}

// drain collects a scatter-gather result into a row multiset.
func drain(t *testing.T, rows *Rows) ([][]any, *Footer) {
	t.Helper()
	defer rows.Close()
	var out [][]any
	for rows.Next() {
		out = append(out, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("scatter stream failed: %v", err)
	}
	return out, rows.Footer()
}

// canon renders a row multiset in a comparable canonical order.
func canon(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = fmt.Sprintf("%T:%v", v, v)
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestScatterGatherMatchesSingleNode is the tier's correctness property:
// for every selection, join and aggregate in the suite, scatter-gather over
// three workers holding hash-partitioned shards returns the same result
// multiset as a single node holding the union relation.
func TestScatterGatherMatchesSingleNode(t *testing.T) {
	tc := newTestCluster(t, "")
	ctx := context.Background()
	cases := []struct {
		sql  string
		args []any
	}{
		// Selections and projections, with and without parameters.
		{"SELECT * FROM wisc WHERE unique1 < 400", nil},
		{"SELECT unique1, stringu1 FROM wisc WHERE unique2 < ?", []any{300}},
		{"SELECT * FROM A", nil},
		// Joins: the co-partitioned pair and the placed-on-id variant that
		// forces a run-time redistribution inside each node.
		{"SELECT * FROM A JOIN B ON A.k = B.k", nil},
		{"SELECT A.id FROM A JOIN Br ON A.k = Br.k WHERE Br.id < 100", nil},
		// Every aggregate kind, single and multi group columns, with
		// parameters and over a join.
		{"SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil},
		{"SELECT ten, SUM(unique1) FROM wisc GROUP BY ten", nil},
		{"SELECT two, MIN(unique1) FROM wisc GROUP BY two", nil},
		{"SELECT two, four, MAX(unique1) FROM wisc GROUP BY two, four", nil},
		{"SELECT four, MIN(stringu1) FROM wisc GROUP BY four", nil},
		{"SELECT two, COUNT(*) FROM wisc WHERE unique1 < ? GROUP BY two", []any{500}},
		{"SELECT k, COUNT(*) FROM A JOIN B ON A.k = B.k GROUP BY A.k", nil},
		{"SELECT k, SUM(B.id) FROM A JOIN B ON A.k = B.k GROUP BY A.k", nil},
	}
	for _, c := range cases {
		t.Run(c.sql, func(t *testing.T) {
			want, err := tc.ref.QueryAll(c.sql, nil, c.args...)
			if err != nil {
				t.Fatalf("single-node reference: %v", err)
			}
			rows, err := tc.coord.Query(ctx, c.sql, c.args, nil)
			if err != nil {
				t.Fatalf("scatter: %v", err)
			}
			got, foot := drain(t, rows)
			gotC, wantC := canon(got), canon(want.Data)
			if len(gotC) != len(wantC) {
				t.Fatalf("scatter returned %d rows, single node %d", len(gotC), len(wantC))
			}
			for i := range gotC {
				if gotC[i] != wantC[i] {
					t.Fatalf("row multisets diverge at %d:\n  scatter: %s\n  single:  %s", i, gotC[i], wantC[i])
				}
			}
			if foot == nil {
				t.Fatal("complete scatter stream has no footer")
			}
			if foot.RowCount != int64(len(got)) {
				t.Errorf("footer rowCount = %d, want %d", foot.RowCount, len(got))
			}
			if len(foot.Nodes) != testShards {
				t.Errorf("footer has %d node entries, want %d", len(foot.Nodes), testShards)
			}
		})
	}
}

// TestScatterHeaderAggregatesCluster: the cluster header sums the nodes'
// thread grants and takes the max utilization — the coordinator's view of
// what the whole fan-out cost.
func TestScatterHeaderAggregatesCluster(t *testing.T) {
	tc := newTestCluster(t, "")
	rows, err := tc.coord.Query(context.Background(), "SELECT * FROM wisc WHERE unique1 < 100", nil, &server.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	h := rows.Header()
	if h.Threads != 2*testShards {
		t.Errorf("cluster header threads = %d, want %d (2 per node)", h.Threads, 2*testShards)
	}
	if len(h.Columns) == 0 || len(h.Columns) != len(h.Types) {
		t.Errorf("malformed cluster header: %+v", h)
	}
	drain(t, rows)
}

// TestScatterArgCountChecked: the coordinator pre-checks parameter arity
// before opening any worker stream.
func TestScatterArgCountChecked(t *testing.T) {
	tc := newTestCluster(t, "")
	if _, err := tc.coord.Query(context.Background(), "SELECT * FROM wisc WHERE unique1 < ?", nil, nil); err == nil {
		t.Fatal("missing argument accepted")
	}
	if _, err := tc.coord.Query(context.Background(), "SELECT * FROM wisc", []any{1}, nil); err == nil {
		t.Fatal("surplus argument accepted")
	}
}

// TestPrepareExecLifecycle: the compile-once path — prepare fans out,
// executions bind fresh arguments, close releases every node's half.
func TestPrepareExecLifecycle(t *testing.T) {
	tc := newTestCluster(t, "")
	ctx := context.Background()
	pr, err := tc.coord.Prepare(ctx, "SELECT two, COUNT(*) FROM wisc WHERE unique1 < ? GROUP BY two", nil)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Params != 1 {
		t.Fatalf("prepared params = %d, want 1", pr.Params)
	}
	for _, limit := range []int64{100, 600, 1200} {
		want, err := tc.ref.QueryAll("SELECT two, COUNT(*) FROM wisc WHERE unique1 < ? GROUP BY two", nil, limit)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := tc.coord.Exec(ctx, pr.ID, []any{limit}, nil)
		if err != nil {
			t.Fatalf("exec limit=%d: %v", limit, err)
		}
		got, _ := drain(t, rows)
		gotC, wantC := canon(got), canon(want.Data)
		if len(gotC) != len(wantC) {
			t.Fatalf("exec limit=%d: %d rows, want %d", limit, len(gotC), len(wantC))
		}
		for i := range gotC {
			if gotC[i] != wantC[i] {
				t.Fatalf("exec limit=%d row %d: got %s want %s", limit, i, gotC[i], wantC[i])
			}
		}
	}
	if err := tc.coord.CloseStmt(ctx, pr.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.coord.Exec(ctx, pr.ID, []any{int64(5)}, nil); err == nil {
		t.Fatal("exec of a closed statement succeeded")
	}
	// Every worker's half is gone too.
	for i := range tc.urls {
		st, err := (&server.Client{Base: tc.urls[i]}).Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Statements != 0 {
			t.Errorf("node %d still holds %d statements after CloseStmt", i, st.Statements)
		}
	}
}

// TestExecRepreparesExpiredNodeStatement: a worker that forgot its half of
// a prepared statement (restart, TTL expiry) is transparently re-prepared —
// the execution still succeeds and the repair is counted.
func TestExecRepreparesExpiredNodeStatement(t *testing.T) {
	tc := newTestCluster(t, "")
	ctx := context.Background()
	pr, err := tc.coord.Prepare(ctx, "SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Forget node 0's half behind the coordinator's back.
	tc.coord.mu.Lock()
	nodeID, ok := tc.coord.stmts[pr.ID].id(tc.coord.shards[0].replicas[0])
	tc.coord.mu.Unlock()
	if !ok {
		t.Fatal("shard 0's replica holds no statement id after Prepare")
	}
	if err := (&server.Client{Base: tc.urls[0]}).CloseStmt(ctx, nodeID); err != nil {
		t.Fatal(err)
	}
	rows, err := tc.coord.Exec(ctx, pr.ID, nil, nil)
	if err != nil {
		t.Fatalf("exec after node-side expiry: %v", err)
	}
	got, _ := drain(t, rows)
	if len(got) != 10 {
		t.Errorf("re-prepared exec returned %d groups, want 10", len(got))
	}
	if n := tc.coord.repreparations.Load(); n != 1 {
		t.Errorf("repreparations = %d, want 1", n)
	}
}

// setSnapshot fabricates one replica's polled stats snapshot.
func setSnapshot(r *replica, st server.StatsResponse) {
	r.mu.Lock()
	r.polled = true
	r.alive = true
	r.stats = st
	r.mu.Unlock()
}

// TestUtilizationExchange: when one shard reports load, fan-outs to the
// *other* shards carry it in Options.Utilization — the [Rahm93] loop across
// machines — while the loaded shard itself is not double-charged.
func TestUtilizationExchange(t *testing.T) {
	tc := newTestCluster(t, "")
	// Fabricate a polled snapshot: shard 0 is busy, the rest idle.
	setSnapshot(tc.coord.shards[0].replicas[0], server.StatsResponse{SmoothedUtilization: 0.75, Budget: testBudget})
	for _, sh := range tc.coord.shards[1:] {
		setSnapshot(sh.replicas[0], server.StatsResponse{Budget: testBudget})
	}
	if got := tc.coord.remoteLoad(tc.coord.shards[1]); got != 0.75 {
		t.Errorf("remoteLoad(shard1) = %v, want 0.75 (shard0's load)", got)
	}
	if got := tc.coord.remoteLoad(tc.coord.shards[0]); got != 0 {
		t.Errorf("remoteLoad(shard0) = %v, want 0 (own load excluded)", got)
	}
	opt := tc.coord.shardOptions(tc.coord.shards[1], &server.Options{Utilization: 0.2})
	if opt.Utilization != 0.75 {
		t.Errorf("fan-out utilization = %v, want max(caller 0.2, remote 0.75)", opt.Utilization)
	}
	// The caller's own higher estimate survives the fold.
	opt = tc.coord.shardOptions(tc.coord.shards[1], &server.Options{Utilization: 0.9})
	if opt.Utilization != 0.9 {
		t.Errorf("fan-out utilization = %v, want caller's 0.9", opt.Utilization)
	}
	// ActiveThreads/Budget dominates a stale EWMA.
	setSnapshot(tc.coord.shards[2].replicas[0], server.StatsResponse{Budget: testBudget, ActiveThreads: testBudget})
	if got := tc.coord.remoteLoad(tc.coord.shards[1]); got != 1 {
		t.Errorf("remoteLoad with a saturated shard = %v, want 1", got)
	}
}

// TestClusterPollAndStats: a real poll round marks live nodes alive, folds
// their utilization, and Stats reflects the query counters.
func TestClusterPollAndStats(t *testing.T) {
	tc := newTestCluster(t, "")
	ctx := context.Background()
	tc.coord.Poll(ctx)
	st := tc.coord.Stats()
	if st.Healthy != testShards {
		t.Fatalf("healthy = %d, want %d", st.Healthy, testShards)
	}
	if len(st.Nodes) != testShards {
		t.Fatalf("stats has %d nodes, want %d", len(st.Nodes), testShards)
	}
	for _, ns := range st.Nodes {
		if !ns.Alive || ns.Stats.Budget != testBudget {
			t.Errorf("node %s: alive=%v budget=%d, want alive with budget %d", ns.Node, ns.Alive, ns.Stats.Budget, testBudget)
		}
	}
	rows, err := tc.coord.Query(ctx, "SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, rows)
	if st := tc.coord.Stats(); st.Queries != 1 || st.Failures != 0 {
		t.Errorf("queries=%d failures=%d, want 1/0", st.Queries, st.Failures)
	}
	report, err := tc.coord.Health(ctx)
	if err != nil {
		t.Errorf("Health on a live cluster: %v", err)
	}
	if len(report) != testShards {
		t.Fatalf("Health reported %d replicas, want %d", len(report), testShards)
	}
	for _, nh := range report {
		if !nh.Healthy || nh.Breaker != "closed" {
			t.Errorf("replica %s: healthy=%v breaker=%s, want healthy/closed", nh.Node, nh.Healthy, nh.Breaker)
		}
	}
}

// TestClusterAuth: the coordinator presents its bearer token to workers and
// enforces the same token on its own front end; a tokenless client gets 401
// from both tiers.
func TestClusterAuth(t *testing.T) {
	tc := newTestCluster(t, "cluster-secret")
	ctx := context.Background()

	// Coordinator→worker links carry the token: queries work end to end.
	rows, err := tc.coord.Query(ctx, "SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil, nil)
	if err != nil {
		t.Fatalf("authorized scatter failed: %v", err)
	}
	got, _ := drain(t, rows)
	if len(got) != 10 {
		t.Fatalf("authorized scatter returned %d groups, want 10", len(got))
	}

	// The coordinator's own front end rejects a tokenless client…
	front := httptest.NewServer(tc.coord.Handler())
	defer front.Close()
	defer front.Client().CloseIdleConnections()
	bare := &server.Client{Base: front.URL}
	if err := bare.Health(ctx); err == nil {
		t.Fatal("tokenless client passed coordinator auth")
	} else if se := err.(*server.StatusError); se.Code != 401 {
		t.Fatalf("tokenless client got %d, want 401", se.Code)
	}
	// …and serves one presenting the right token.
	authed := &server.Client{Base: front.URL, Token: "cluster-secret"}
	if err := authed.Health(ctx); err != nil {
		t.Fatalf("authorized client rejected: %v", err)
	}
}

// TestHandlerRoundTrip drives the coordinator's HTTP front end with the
// ordinary server.Client — the full client→coordinator→workers→client path,
// in both wire encodings.
func TestHandlerRoundTrip(t *testing.T) {
	tc := newTestCluster(t, "")
	front := httptest.NewServer(tc.coord.Handler())
	defer front.Close()
	defer front.Client().CloseIdleConnections()
	ctx := context.Background()
	for _, columnar := range []bool{false, true} {
		client := &server.Client{Base: front.URL, Columnar: columnar}
		name := "ndjson"
		if columnar {
			name = "columnar"
		}
		t.Run(name, func(t *testing.T) {
			// Ad-hoc aggregate with a parameter.
			stream, err := client.Query(ctx, "SELECT two, SUM(unique1) FROM wisc WHERE unique1 < ? GROUP BY two", []any{800}, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := tc.ref.QueryAll("SELECT two, SUM(unique1) FROM wisc WHERE unique1 < ? GROUP BY two", nil, int64(800))
			if err != nil {
				t.Fatal(err)
			}
			var got [][]any
			for stream.Next() {
				got = append(got, stream.Row())
			}
			if err := stream.Err(); err != nil {
				t.Fatal(err)
			}
			gotC, wantC := canon(got), canon(want.Data)
			if len(gotC) != len(wantC) {
				t.Fatalf("%d rows, want %d", len(gotC), len(wantC))
			}
			for i := range gotC {
				if gotC[i] != wantC[i] {
					t.Fatalf("row %d: got %s want %s", i, gotC[i], wantC[i])
				}
			}
			if f := stream.Footer(); f == nil || f.RowCount != int64(len(got)) {
				t.Errorf("wire footer %+v, want rowCount %d", f, len(got))
			}

			// Prepared lifecycle over the wire.
			pr, err := client.Prepare(ctx, "SELECT unique1 FROM wisc WHERE unique2 < ?", nil)
			if err != nil {
				t.Fatal(err)
			}
			exec, err := client.Exec(ctx, pr.ID, []any{50}, nil)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for exec.Next() {
				n++
			}
			if err := exec.Err(); err != nil {
				t.Fatal(err)
			}
			if n != 50 {
				t.Errorf("prepared exec streamed %d rows, want 50", n)
			}
			if err := client.CloseStmt(ctx, pr.ID); err != nil {
				t.Fatal(err)
			}
		})
	}
	// The front end's /stats is the cluster view: per-node health plus the
	// coordinator's counters.
	resp, err := front.Client().Get(front.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Healthy != testShards || st.Queries == 0 {
		t.Errorf("cluster /stats healthy=%d queries=%d, want %d healthy and >0 queries", st.Healthy, st.Queries, testShards)
	}
}
