// Package cluster is the distributed scatter-gather tier over dbs3's serve
// nodes: a query coordinator that compiles a statement once, fans out
// shard-restricted subqueries to N worker nodes over the existing wire
// protocol (server-side prepared statements, `?` binding, binary columnar
// streams), streams the partial results back concurrently, and re-aggregates
// locally — union-merge for plain selections and joins, group-wise merge
// aggregation for GROUP BY queries (partial aggregates are pushed down for
// free: each worker's aggregate runs over only its shard).
//
// The tier is shared-nothing in the sense of the paper's degree-of-
// partitioning model lifted one level: a relation's fragments live across
// nodes (dbs3.ShardRelation places them by hashing a distribution column),
// each node keeps its own QueryManager, admission queue and thread budget,
// and the coordinator closes the [Rahm93] utilization feedback loop across
// machines — it polls every node's /stats for SmoothedUtilization and held
// threads, and folds the load of the *other* nodes into each fan-out
// subquery's Options.Utilization so a worker's scheduler sees cluster load
// it cannot measure locally.
//
// Failure semantics: a node that dies mid-stream fails the query cleanly —
// the coordinator surfaces one error, cancels the sibling streams (each
// worker sees its client disconnect, aborts the query, and returns the
// threads to its local budget), and releases every coordinator-side
// resource. Transient connect errors (a worker still starting) are retried
// with bounded backoff by the underlying server.Client.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dbs3/internal/server"
)

const (
	// defaultTimeout bounds each coordinator→worker request's connect-and-
	// respond phase (streamed bodies are unbounded; see server.Client).
	defaultTimeout = 10 * time.Second
	// defaultRetries re-sends a fan-out request after transient connect
	// errors, covering workers that are still binding their listener.
	defaultRetries = 3
	// defaultPollInterval is the cadence of the health/utilization exchange.
	defaultPollInterval = 2 * time.Second
	// defaultMaxStatements caps the coordinator's prepared-statement
	// registry, mirroring the serve-side cap.
	defaultMaxStatements = 1024
)

// Config assembles a Coordinator.
type Config struct {
	// Nodes are the worker base URLs, e.g. "http://10.0.0.1:8080". At
	// least one is required; every node must serve the same catalog,
	// sharded with dbs3.ShardRelation (shard i of len(Nodes)).
	Nodes []string
	// Token is the bearer credential for coordinator→worker links; the
	// coordinator's own HTTP front end enforces the same token.
	Token string
	// HTTP overrides the transport used for worker links (default
	// http.DefaultClient-like per-node clients).
	HTTP *http.Client
	// Wire selects the worker-link result encoding: "" or "columnar"
	// (default — the cheaper encoding for wide fan-in), or "ndjson".
	Wire string
	// Timeout bounds each worker request's header phase (0 = 10s).
	Timeout time.Duration
	// Retries bounds connect retries per worker request (0 = 3; negative
	// disables).
	Retries int
	// PollInterval is the health/utilization exchange cadence (0 = 2s;
	// negative disables the background poller — Poll can still be called
	// explicitly).
	PollInterval time.Duration
	// MaxStatements caps the coordinator-side prepared-statement registry
	// (0 = 1024).
	MaxStatements int
}

// Coordinator fans queries out over a fixed registry of worker nodes and
// merges their result streams. It is safe for concurrent use; create one
// per cluster and Close it to stop the background poller.
type Coordinator struct {
	nodes   []*node
	token   string
	maxStmt int

	mu     sync.Mutex
	stmts  map[string]*coordStmt
	nextID atomic.Int64

	// Lifetime counters, surfaced on Stats and the /stats endpoint.
	queries        atomic.Int64
	failures       atomic.Int64
	repreparations atomic.Int64

	stopPoll context.CancelFunc
	pollDone chan struct{}
}

// node is one worker: its wire client plus the last polled health/stats
// snapshot, the coordinator's input to the cluster utilization exchange.
type node struct {
	name   string
	client *server.Client

	mu       sync.Mutex
	polled   bool
	alive    bool
	lastErr  string
	stats    server.StatsResponse
	lastPoll time.Time
}

// New builds a Coordinator over cfg.Nodes and starts the health poller
// (unless cfg.PollInterval is negative). ctx is the coordinator's
// lifecycle: cancelling it — or calling Close — stops the poller and
// cancels its in-flight /stats requests.
func New(ctx context.Context, cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no worker nodes configured")
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = defaultTimeout
	}
	retries := cfg.Retries
	if retries == 0 {
		retries = defaultRetries
	} else if retries < 0 {
		retries = 0
	}
	columnar := true
	switch cfg.Wire {
	case "", "columnar":
	case "ndjson":
		columnar = false
	default:
		return nil, fmt.Errorf("cluster: unknown worker wire encoding %q (want columnar or ndjson)", cfg.Wire)
	}
	c := &Coordinator{
		token:   cfg.Token,
		maxStmt: cfg.MaxStatements,
		stmts:   make(map[string]*coordStmt),
	}
	if c.maxStmt <= 0 {
		c.maxStmt = defaultMaxStatements
	}
	for _, base := range cfg.Nodes {
		c.nodes = append(c.nodes, &node{
			name: base,
			client: &server.Client{
				Base:     base,
				HTTP:     cfg.HTTP,
				Columnar: columnar,
				Token:    cfg.Token,
				Timeout:  timeout,
				Retries:  retries,
			},
		})
	}
	interval := cfg.PollInterval
	if interval == 0 {
		interval = defaultPollInterval
	}
	if interval > 0 {
		pollCtx, cancel := context.WithCancel(ctx)
		c.stopPoll = cancel
		c.pollDone = make(chan struct{})
		go c.pollLoop(pollCtx, interval)
	}
	return c, nil
}

// Close stops the background poller, cancelling any poll round still in
// flight. In-flight queries are unaffected.
func (c *Coordinator) Close() {
	if c.stopPoll != nil {
		c.stopPoll()
		<-c.pollDone
		c.stopPoll = nil
	}
}

// Nodes returns the configured worker base URLs, in fan-out order.
func (c *Coordinator) Nodes() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.name
	}
	return out
}

// pollLoop runs the utilization exchange until the lifecycle context is
// cancelled (Close, or the caller's ctx). Each round inherits that
// context, so shutdown aborts a poll blocked on a dead worker instead of
// waiting out its timeout.
func (c *Coordinator) pollLoop(ctx context.Context, interval time.Duration) {
	defer close(c.pollDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	// Prime immediately so the first queries already see remote load.
	c.Poll(ctx)
	for {
		select {
		case <-ticker.C:
			c.Poll(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// Poll refreshes every node's health and stats snapshot concurrently: one
// round of the cluster utilization exchange. Workers report their
// SmoothedUtilization and held threads on /stats; a node whose /stats fails
// is marked down until a later round revives it.
func (c *Coordinator) Poll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, n := range c.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			st, err := n.client.Stats(ctx)
			now := time.Now()
			n.mu.Lock()
			defer n.mu.Unlock()
			n.polled = true
			n.lastPoll = now
			if err != nil {
				n.alive = false
				n.lastErr = err.Error()
				return
			}
			n.alive = true
			n.lastErr = ""
			n.stats = *st
		}(n)
	}
	wg.Wait()
}

// load is a node's scalar load signal: the EWMA-smoothed utilization its
// manager measured from concurrent queries, or — whichever is higher — the
// instantaneous fraction of its thread budget currently held. The second
// term reacts within one poll round when a burst lands on a node whose EWMA
// has not caught up yet.
func (n *node) load() (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.polled || !n.alive {
		return 0, false
	}
	l := n.stats.SmoothedUtilization
	if n.stats.Budget > 0 {
		if inst := float64(n.stats.ActiveThreads) / float64(n.stats.Budget); inst > l {
			l = inst
		}
	}
	return l, true
}

// remoteLoad folds the cluster's load as seen from one node: the maximum
// load among the *other* nodes. A worker's own load is excluded — its local
// QueryManager already measures that and feeds it into the scheduler; the
// wire Utilization adds exactly what the worker cannot see. The maximum
// (not the mean) is the right fold for scatter-gather: the merge waits for
// the slowest sibling, so the busiest remote node bounds the useful
// parallelism everywhere.
func (c *Coordinator) remoteLoad(exclude *node) float64 {
	var max float64
	for _, n := range c.nodes {
		if n == exclude {
			continue
		}
		if l, ok := n.load(); ok && l > max {
			max = l
		}
	}
	return max
}

// nodeOptions derives one fan-out subquery's options for a node: the
// caller's options with the worker-link encoding reset (the caller's Wire
// choice governs the coordinator's own response, not worker links) and the
// remote cluster load folded into Utilization [Rahm93].
func (c *Coordinator) nodeOptions(n *node, opt *server.Options) *server.Options {
	var o server.Options
	if opt != nil {
		o = *opt
	}
	o.Wire = ""
	if u := c.remoteLoad(n); u > o.Utilization {
		o.Utilization = u
	}
	return &o
}

// NodeStatus is one node's health snapshot in Stats.
type NodeStatus struct {
	Node string `json:"node"`
	// Alive reports the last poll's outcome; Error carries its failure.
	Alive bool   `json:"alive"`
	Error string `json:"error,omitempty"`
	// LastPoll is when the snapshot was taken (zero = never polled).
	LastPoll time.Time `json:"lastPoll,omitzero"`
	// Stats is the node's last /stats response (valid when Alive).
	Stats server.StatsResponse `json:"stats"`
}

// Stats is the coordinator's cluster-wide snapshot.
type Stats struct {
	// Nodes holds one status per worker, in fan-out order.
	Nodes []NodeStatus `json:"nodes"`
	// Healthy counts nodes whose last poll succeeded.
	Healthy int `json:"healthy"`
	// ClusterUtilization is the maximum per-node load signal — what a
	// fan-out lands on top of.
	ClusterUtilization float64 `json:"clusterUtilization"`
	// Queries/Failures count scatter-gather executions; Repreparations
	// counts per-node statement re-prepares after a worker-side expiry.
	Queries        int64 `json:"queries"`
	Failures       int64 `json:"failures"`
	Repreparations int64 `json:"repreparations"`
	// Statements is the number of open coordinator-side prepared statements.
	Statements int `json:"statements"`
}

// Stats snapshots the cluster from the last poll round (it does not touch
// the network; call Poll first for freshness).
func (c *Coordinator) Stats() Stats {
	st := Stats{}
	for _, n := range c.nodes {
		n.mu.Lock()
		ns := NodeStatus{Node: n.name, Alive: n.alive, Error: n.lastErr, LastPoll: n.lastPoll}
		if n.polled && n.alive {
			ns.Stats = n.stats
		}
		n.mu.Unlock()
		if ns.Alive {
			st.Healthy++
		}
		st.Nodes = append(st.Nodes, ns)
	}
	if u := c.remoteLoad(nil); u > st.ClusterUtilization {
		st.ClusterUtilization = u
	}
	st.Queries = c.queries.Load()
	st.Failures = c.failures.Load()
	st.Repreparations = c.repreparations.Load()
	c.mu.Lock()
	st.Statements = len(c.stmts)
	c.mu.Unlock()
	return st
}

// Health probes every node's /healthz concurrently and returns one error
// naming the first dead node, or nil when all respond.
func (c *Coordinator) Health(ctx context.Context) error {
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			if err := n.client.Health(ctx); err != nil {
				errs[i] = fmt.Errorf("cluster: node %s: %w", n.name, err)
			}
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
