// Package cluster is the distributed scatter-gather tier over dbs3's serve
// nodes: a query coordinator that compiles a statement once, fans out
// shard-restricted subqueries to N worker shards over the existing wire
// protocol (server-side prepared statements, `?` binding, binary columnar
// streams), streams the partial results back concurrently, and re-aggregates
// locally — union-merge for plain selections and joins, group-wise merge
// aggregation for GROUP BY queries (partial aggregates are pushed down for
// free: each worker's aggregate runs over only its shard).
//
// The tier is shared-nothing in the sense of the paper's degree-of-
// partitioning model lifted one level: a relation's fragments live across
// shards (dbs3.ShardRelation places them by hashing a distribution column),
// each node keeps its own QueryManager, admission queue and thread budget,
// and the coordinator closes the [Rahm93] utilization feedback loop across
// machines — it polls every node's /stats for SmoothedUtilization and held
// threads, and folds the load of the *other* shards into each fan-out
// subquery's Options.Utilization so a worker's scheduler sees cluster load
// it cannot measure locally.
//
// Fault tolerance: each shard may hold R replicas serving the same shard of
// the catalog ("addr1|addr2" in Config.Nodes). The coordinator picks one
// replica per subquery — load-aware, skipping replicas whose circuit
// breaker is open — and a subquery that fails before its first row is
// merged is transparently re-issued on the next live replica. A failure
// after rows merged restarts the whole query once when Config.
// RetryWholeQuery is set and nothing was delivered to the consumer yet;
// otherwise it keeps first-error-wins: the coordinator surfaces one error,
// cancels the sibling streams (each worker sees its client disconnect,
// aborts the query, and returns the threads to its local budget), and
// releases every coordinator-side resource. The health poll feeds each
// replica's breaker, so dead replicas stop receiving scatter traffic and
// rejoin automatically once they answer probes again. See DESIGN.md
// "Fault tolerance in the cluster tier" for the full failure-semantics
// table.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbs3/internal/server"
)

const (
	// defaultTimeout bounds each coordinator→worker request's connect-and-
	// respond phase (streamed bodies are unbounded; see server.Client).
	defaultTimeout = 10 * time.Second
	// defaultRetries re-sends a fan-out request after transient connect
	// errors, covering workers that are still binding their listener.
	defaultRetries = 3
	// defaultPollInterval is the cadence of the health/utilization exchange.
	defaultPollInterval = 2 * time.Second
	// defaultMaxStatements caps the coordinator's prepared-statement
	// registry, mirroring the serve-side cap.
	defaultMaxStatements = 1024
	// defaultBreakerThreshold opens a replica's breaker after this many
	// consecutive probe/query failures.
	defaultBreakerThreshold = 3
	// defaultBreakerCooloff is how long an open breaker blocks traffic
	// before half-opening to probe the replica again.
	defaultBreakerCooloff = 5 * time.Second
)

// Config assembles a Coordinator.
type Config struct {
	// Nodes are the worker base URLs, one entry per shard; an entry may be a
	// "|"-separated replica set serving the same shard, e.g.
	// "http://a:8080|http://b:8080". At least one shard is required; every
	// replica of shard i must serve the same catalog, sharded with
	// dbs3.ShardRelation (shard i of len(Nodes)).
	Nodes []string
	// Token is the bearer credential for coordinator→worker links; the
	// coordinator's own HTTP front end enforces the same token.
	Token string
	// HTTP overrides the transport used for worker links (default
	// http.DefaultClient-like per-node clients).
	HTTP *http.Client
	// Wire selects the worker-link result encoding: "" or "columnar"
	// (default — the cheaper encoding for wide fan-in), or "ndjson".
	Wire string
	// Timeout bounds each worker request's header phase (0 = 10s).
	Timeout time.Duration
	// Retries bounds connect retries per worker request (0 = 3; negative
	// disables).
	Retries int
	// PollInterval is the health/utilization exchange cadence (0 = 2s;
	// negative disables the background poller — Poll can still be called
	// explicitly).
	PollInterval time.Duration
	// MaxStatements caps the coordinator-side prepared-statement registry
	// (0 = 1024).
	MaxStatements int
	// RetryWholeQuery restarts a query once from the coordinator when a
	// replica fails after rows were already merged — provided nothing was
	// delivered to the consumer yet. Off, such failures keep
	// first-error-wins.
	RetryWholeQuery bool
	// BreakerThreshold is the consecutive-failure count that opens a
	// replica's circuit breaker (0 = 3).
	BreakerThreshold int
	// BreakerCooloff is how long an open breaker withholds traffic before
	// half-opening (0 = 5s).
	BreakerCooloff time.Duration
}

// Coordinator fans queries out over a fixed registry of worker shards and
// merges their result streams. It is safe for concurrent use; create one
// per cluster and Close it to stop the background poller.
type Coordinator struct {
	shards     []*shard
	token      string
	maxStmt    int
	retryWhole bool

	mu     sync.Mutex
	stmts  map[string]*coordStmt
	nextID atomic.Int64

	// Lifetime counters, surfaced on Stats and the /stats endpoint.
	queries           atomic.Int64
	failures          atomic.Int64
	repreparations    atomic.Int64
	failovers         atomic.Int64
	wholeQueryRetries atomic.Int64

	stopPoll context.CancelFunc
	pollDone chan struct{}
}

// shard is one partition of the catalog and the replica set serving it.
type shard struct {
	index    int
	replicas []*replica
	// rr rotates the starting replica so equally-loaded siblings share
	// traffic instead of all queries landing on replica 0.
	rr atomic.Int64
}

// replica is one worker: its wire client, circuit breaker, and the last
// polled health/stats snapshot — the coordinator's input to both replica
// placement and the cluster utilization exchange.
type replica struct {
	shard  int
	name   string
	client *server.Client
	brk    *breaker

	mu       sync.Mutex
	polled   bool
	alive    bool
	lastErr  string
	stats    server.StatsResponse
	lastPoll time.Time
}

// New builds a Coordinator over cfg.Nodes and starts the health poller
// (unless cfg.PollInterval is negative). ctx is the coordinator's
// lifecycle: cancelling it — or calling Close — stops the poller and
// cancels its in-flight /stats requests.
func New(ctx context.Context, cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no worker nodes configured")
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = defaultTimeout
	}
	retries := cfg.Retries
	if retries == 0 {
		retries = defaultRetries
	} else if retries < 0 {
		retries = 0
	}
	columnar := true
	switch cfg.Wire {
	case "", "columnar":
	case "ndjson":
		columnar = false
	default:
		return nil, fmt.Errorf("cluster: unknown worker wire encoding %q (want columnar or ndjson)", cfg.Wire)
	}
	threshold := cfg.BreakerThreshold
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	cooloff := cfg.BreakerCooloff
	if cooloff <= 0 {
		cooloff = defaultBreakerCooloff
	}
	c := &Coordinator{
		token:      cfg.Token,
		maxStmt:    cfg.MaxStatements,
		retryWhole: cfg.RetryWholeQuery,
		stmts:      make(map[string]*coordStmt),
	}
	if c.maxStmt <= 0 {
		c.maxStmt = defaultMaxStatements
	}
	for si, group := range cfg.Nodes {
		sh := &shard{index: si}
		for _, base := range strings.Split(group, "|") {
			base = strings.TrimSpace(base)
			if base == "" {
				continue
			}
			sh.replicas = append(sh.replicas, &replica{
				shard: si,
				name:  base,
				brk:   newBreaker(threshold, cooloff),
				client: &server.Client{
					Base:     base,
					HTTP:     cfg.HTTP,
					Columnar: columnar,
					Token:    cfg.Token,
					Timeout:  timeout,
					Retries:  retries,
				},
			})
		}
		if len(sh.replicas) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas (entry %q)", si, group)
		}
		c.shards = append(c.shards, sh)
	}
	interval := cfg.PollInterval
	if interval == 0 {
		interval = defaultPollInterval
	}
	if interval > 0 {
		pollCtx, cancel := context.WithCancel(ctx)
		c.stopPoll = cancel
		c.pollDone = make(chan struct{})
		go c.pollLoop(pollCtx, interval)
	}
	return c, nil
}

// Close stops the background poller, cancelling any poll round still in
// flight. In-flight queries are unaffected.
func (c *Coordinator) Close() {
	if c.stopPoll != nil {
		c.stopPoll()
		<-c.pollDone
		c.stopPoll = nil
	}
}

// Nodes returns the configured worker base URLs per shard, replicas joined
// with "|", in fan-out order.
func (c *Coordinator) Nodes() []string {
	out := make([]string, len(c.shards))
	for i, sh := range c.shards {
		names := make([]string, len(sh.replicas))
		for j, r := range sh.replicas {
			names[j] = r.name
		}
		out[i] = strings.Join(names, "|")
	}
	return out
}

// replicas walks every replica of every shard, in shard then replica order.
func (c *Coordinator) replicas(f func(r *replica)) {
	for _, sh := range c.shards {
		for _, r := range sh.replicas {
			f(r)
		}
	}
}

// pollLoop runs the utilization exchange until the lifecycle context is
// cancelled (Close, or the caller's ctx). Each round inherits that
// context, so shutdown aborts a poll blocked on a dead worker instead of
// waiting out its timeout.
func (c *Coordinator) pollLoop(ctx context.Context, interval time.Duration) {
	defer close(c.pollDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	// Prime immediately so the first queries already see remote load.
	c.Poll(ctx)
	for {
		select {
		case <-ticker.C:
			c.Poll(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// Poll refreshes every replica's health and stats snapshot concurrently:
// one round of the cluster utilization exchange. Workers report their
// SmoothedUtilization and held threads on /stats; a replica whose /stats
// fails is marked down until a later round revives it. Each probe outcome
// also feeds the replica's circuit breaker — this is how a dead replica's
// breaker opens without query traffic, and how a revived one closes it.
func (c *Coordinator) Poll(ctx context.Context) {
	var wg sync.WaitGroup
	c.replicas(func(r *replica) {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			st, err := r.client.Stats(ctx)
			now := time.Now()
			if err != nil {
				// Cancellation is the poller shutting down, not replica
				// health evidence.
				if replicaFault(err) {
					r.brk.failure()
				}
			} else {
				r.brk.success()
			}
			r.mu.Lock()
			defer r.mu.Unlock()
			r.polled = true
			r.lastPoll = now
			if err != nil {
				r.alive = false
				r.lastErr = err.Error()
				return
			}
			r.alive = true
			r.lastErr = ""
			r.stats = *st
		}(r)
	})
	wg.Wait()
}

// load is a replica's scalar load signal: the EWMA-smoothed utilization its
// manager measured from concurrent queries, or — whichever is higher — the
// instantaneous fraction of its thread budget currently held. The second
// term reacts within one poll round when a burst lands on a node whose EWMA
// has not caught up yet.
func (r *replica) load() (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.polled || !r.alive {
		return 0, false
	}
	l := r.stats.SmoothedUtilization
	if r.stats.Budget > 0 {
		if inst := float64(r.stats.ActiveThreads) / float64(r.stats.Budget); inst > l {
			l = inst
		}
	}
	return l, true
}

// knownDead reports a replica whose last poll failed — deprioritized in
// placement even while its breaker is still counting toward the threshold.
func (r *replica) knownDead() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.polled && !r.alive
}

// load is a shard's scalar load signal: the load of its least-loaded live
// replica — the one placement would pick for the next subquery.
func (sh *shard) load() (float64, bool) {
	var min float64
	found := false
	for _, r := range sh.replicas {
		if l, ok := r.load(); ok && (!found || l < min) {
			min, found = l, true
		}
	}
	return min, found
}

// candidates returns the shard's replicas in placement-preference order:
// breaker-admitted live replicas first (load ascending), then admitted
// replicas whose last poll failed, and breaker-open replicas last — still
// present so an all-replicas-down shard attempts *something* and produces a
// real error instead of refusing locally. Equal-preference replicas rotate
// round-robin across calls.
func (sh *shard) candidates() []*replica {
	n := len(sh.replicas)
	reps := make([]*replica, n)
	start := int(sh.rr.Add(1)-1) % n
	for i := range reps {
		reps[i] = sh.replicas[(start+i)%n]
	}
	rank := make(map[*replica]int, n)
	loads := make(map[*replica]float64, n)
	for _, r := range reps {
		switch {
		case !r.brk.allow():
			rank[r] = 2
		case r.knownDead():
			rank[r] = 1
		default:
			rank[r] = 0
			if l, ok := r.load(); ok {
				loads[r] = l
			}
		}
	}
	sort.SliceStable(reps, func(i, j int) bool {
		a, b := reps[i], reps[j]
		if rank[a] != rank[b] {
			return rank[a] < rank[b]
		}
		return rank[a] == 0 && loads[a] < loads[b]
	})
	return reps
}

// remoteLoad folds the cluster's load as seen from one shard: the maximum
// load among the *other* shards. A shard's own load is excluded — its local
// QueryManager already measures that and feeds it into the scheduler; the
// wire Utilization adds exactly what the worker cannot see. The maximum
// (not the mean) is the right fold for scatter-gather: the merge waits for
// the slowest sibling, so the busiest remote shard bounds the useful
// parallelism everywhere.
func (c *Coordinator) remoteLoad(exclude *shard) float64 {
	var max float64
	for _, sh := range c.shards {
		if sh == exclude {
			continue
		}
		if l, ok := sh.load(); ok && l > max {
			max = l
		}
	}
	return max
}

// shardOptions derives one fan-out subquery's options for a shard: the
// caller's options with the worker-link encoding reset (the caller's Wire
// choice governs the coordinator's own response, not worker links) and the
// remote cluster load folded into Utilization [Rahm93].
func (c *Coordinator) shardOptions(sh *shard, opt *server.Options) *server.Options {
	var o server.Options
	if opt != nil {
		o = *opt
	}
	o.Wire = ""
	if u := c.remoteLoad(sh); u > o.Utilization {
		o.Utilization = u
	}
	return &o
}

// NodeStatus is one replica's health snapshot in Stats.
type NodeStatus struct {
	// Shard is the partition this replica serves.
	Shard int    `json:"shard"`
	Node  string `json:"node"`
	// Alive reports the last poll's outcome; Error carries its failure.
	Alive bool   `json:"alive"`
	Error string `json:"error,omitempty"`
	// Breaker is the replica's circuit-breaker state: closed, open, or
	// half-open.
	Breaker string `json:"breaker"`
	// LastPoll is when the snapshot was taken (zero = never polled).
	LastPoll time.Time `json:"lastPoll,omitzero"`
	// Stats is the replica's last /stats response (valid when Alive).
	Stats server.StatsResponse `json:"stats"`
}

// Stats is the coordinator's cluster-wide snapshot.
type Stats struct {
	// Nodes holds one status per replica, in shard then replica order.
	Nodes []NodeStatus `json:"nodes"`
	// Healthy counts replicas whose last poll succeeded.
	Healthy int `json:"healthy"`
	// ClusterUtilization is the maximum per-shard load signal — what a
	// fan-out lands on top of.
	ClusterUtilization float64 `json:"clusterUtilization"`
	// Queries/Failures count scatter-gather executions; Repreparations
	// counts per-replica statement re-prepares after a worker-side expiry.
	Queries        int64 `json:"queries"`
	Failures       int64 `json:"failures"`
	Repreparations int64 `json:"repreparations"`
	// Failovers counts subqueries re-established on a sibling replica after
	// their first choice failed; WholeQueryRetries counts coordinator-level
	// query restarts under RetryWholeQuery.
	Failovers         int64 `json:"failovers"`
	WholeQueryRetries int64 `json:"wholeQueryRetries"`
	// Statements is the number of open coordinator-side prepared statements.
	Statements int `json:"statements"`
}

// Stats snapshots the cluster from the last poll round (it does not touch
// the network; call Poll first for freshness).
func (c *Coordinator) Stats() Stats {
	st := Stats{}
	c.replicas(func(r *replica) {
		r.mu.Lock()
		ns := NodeStatus{Shard: r.shard, Node: r.name, Alive: r.alive, Error: r.lastErr, LastPoll: r.lastPoll}
		if r.polled && r.alive {
			ns.Stats = r.stats
		}
		r.mu.Unlock()
		ns.Breaker = r.brk.current().String()
		if ns.Alive {
			st.Healthy++
		}
		st.Nodes = append(st.Nodes, ns)
	})
	if u := c.remoteLoad(nil); u > st.ClusterUtilization {
		st.ClusterUtilization = u
	}
	st.Queries = c.queries.Load()
	st.Failures = c.failures.Load()
	st.Repreparations = c.repreparations.Load()
	st.Failovers = c.failovers.Load()
	st.WholeQueryRetries = c.wholeQueryRetries.Load()
	c.mu.Lock()
	st.Statements = len(c.stmts)
	c.mu.Unlock()
	return st
}

// NodeHealth is one replica's probe result in Health.
type NodeHealth struct {
	Shard int    `json:"shard"`
	Node  string `json:"node"`
	// Healthy is this probe's outcome; Error carries the failure.
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// Breaker is the replica's circuit-breaker state after the probe.
	Breaker string `json:"breaker"`
}

// Health probes every replica's /healthz concurrently and returns the
// per-replica outcomes — breaker state included — plus one aggregate error
// joining every dead replica's failure (nil when all respond). Probe
// outcomes feed the breakers, so an explicit health check doubles as the
// half-open recovery probe.
func (c *Coordinator) Health(ctx context.Context) ([]NodeHealth, error) {
	var reps []*replica
	c.replicas(func(r *replica) { reps = append(reps, r) })
	report := make([]NodeHealth, len(reps))
	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for i, r := range reps {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			err := r.client.Health(ctx)
			if err != nil {
				if replicaFault(err) {
					r.brk.failure()
				}
				errs[i] = &NodeError{Node: r.name, Err: err}
			} else {
				r.brk.success()
			}
			report[i] = NodeHealth{
				Shard:   r.shard,
				Node:    r.name,
				Healthy: err == nil,
				Breaker: r.brk.current().String(),
			}
			if err != nil {
				report[i].Error = err.Error()
			}
		}(i, r)
	}
	wg.Wait()
	return report, errors.Join(errs...)
}
