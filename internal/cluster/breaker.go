package cluster

import (
	"sync"
	"time"
)

// breakerState is a circuit breaker's position.
type breakerState int

const (
	// breakerClosed: the replica takes traffic normally.
	breakerClosed breakerState = iota
	// breakerHalfOpen: the cooloff elapsed; traffic is admitted again as a
	// probe — one success re-closes, one failure re-opens.
	breakerHalfOpen
	// breakerOpen: consecutive failures reached the threshold; the replica
	// receives no scatter traffic until the cooloff elapses.
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// breaker is a per-replica circuit breaker fed by both the health poll and
// query outcomes. closed → open after threshold consecutive failures;
// open → half-open once cooloff passes since the last failure; any success
// (a poll probe answering, a subquery completing) closes it from any state.
//
// Half-open deliberately tracks no single-trial token: replica ordering
// consults allow() for candidates it may never use, and a trial token
// claimed there would dangle. Admitting traffic until the first outcome is
// simpler and converges the same way — the first failure re-opens, the
// first success closes.
type breaker struct {
	threshold int
	cooloff   time.Duration
	now       func() time.Time // test seam

	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
}

func newBreaker(threshold int, cooloff time.Duration) *breaker {
	return &breaker{threshold: threshold, cooloff: cooloff, now: time.Now}
}

// allow reports whether the replica may receive traffic, transitioning
// open → half-open when the cooloff has elapsed.
func (b *breaker) allow() bool {
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && now.Sub(b.openedAt) >= b.cooloff {
		b.state = breakerHalfOpen
	}
	return b.state != breakerOpen
}

// success closes the breaker from any state and clears the failure streak.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.mu.Unlock()
}

// failure records one probe or query failure. A half-open failure re-opens
// immediately; a failure while open refreshes the cooloff clock, so a
// replica that keeps failing probes stays dark.
func (b *breaker) failure() {
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
		}
	case breakerHalfOpen, breakerOpen:
		b.state = breakerOpen
		b.openedAt = now
	}
}

// current returns the state without side effects (no open → half-open
// transition), for stats reporting.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
