package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"dbs3"
	"dbs3/internal/faultinject"
	"dbs3/internal/server"
)

// ndjsonWire is the NDJSON stream content type, for fake workers.
const ndjsonWire = "application/x-ndjson"

// newWorkerURL spins up one real worker. sharded restricts it to one shard
// of testShards; otherwise it holds the full catalog (a 1-shard cluster's
// replica).
func newWorkerURL(t *testing.T, shard int, sharded bool) string {
	t.Helper()
	db := dbs3.New()
	populate(t, db)
	if sharded {
		shardAll(t, db, shard)
	}
	m := db.Manager(dbs3.ManagerConfig{Budget: testBudget})
	ts := httptest.NewServer(server.New(db, m, server.Config{}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { ts.Client().CloseIdleConnections() })
	return ts.URL
}

// newFailoverCoord builds a Coordinator for the failover tests: polling off
// (tests drive Poll explicitly) and client connect-retries off, so every
// fault reaches the failover machinery instead of being absorbed by the
// wire client.
func newFailoverCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	cfg.PollInterval = -1
	cfg.Retries = -1
	coord, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord
}

// newChaosProxy fronts a worker with a fault-injection proxy.
func newChaosProxy(t *testing.T, target string, inj faultinject.Injector) *faultinject.Proxy {
	t.Helper()
	p, err := faultinject.New(trimScheme(target), inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// trimScheme converts an httptest URL to the host:port a TCP proxy dials.
func trimScheme(url string) string {
	const p = "http://"
	if len(url) > len(p) && url[:len(p)] == p {
		return url[len(p):]
	}
	return url
}

// prefer pins replica placement: first gets load 0, the rest 0.9, so the
// shard's candidate order is deterministic regardless of round-robin
// rotation.
func prefer(first *replica, rest ...*replica) {
	setSnapshot(first, server.StatsResponse{Budget: testBudget})
	for _, r := range rest {
		setSnapshot(r, server.StatsResponse{SmoothedUtilization: 0.9, Budget: testBudget})
	}
}

// TestMidStreamFailoverBeforeFirstRow is the tentpole's core property: a
// replica that dies after the header barrier but before its first row is
// merged is replaced transparently — the query completes with the correct
// result, the failover is counted, and no client-visible failure occurs.
func TestMidStreamFailoverBeforeFirstRow(t *testing.T) {
	const sql = "SELECT unique1, stringu1 FROM wisc WHERE unique2 < 300"
	ctx := context.Background()
	urls := make([]string, testShards)
	for i := range urls {
		urls[i] = newWorkerURL(t, i, true)
	}
	// Capture the true result shape so the doomed fake's header passes the
	// cluster barrier.
	probe, err := (&server.Client{Base: urls[0]}).Query(ctx, sql, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	shape := *probe.Header()
	probe.Close()

	// The fake sibling: a valid header, then a dead connection before any
	// row — the canonical kill-mid-stream-before-first-row failure.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/query" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", ndjsonWire)
		enc := server.NewStreamEncoder(w, ndjsonWire, shape.Types)
		enc.Header(&server.Header{Columns: shape.Columns, Types: shape.Types, Threads: 1})
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(fake.Close)
	t.Cleanup(func() { fake.Client().CloseIdleConnections() })

	coord := newFailoverCoord(t, Config{
		Nodes: []string{fake.URL + "|" + urls[0], urls[1], urls[2]},
		Wire:  "ndjson",
	})
	prefer(coord.shards[0].replicas[0], coord.shards[0].replicas[1])

	ref := dbs3.New()
	populate(t, ref)
	want, err := ref.QueryAll(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := coord.Query(ctx, sql, nil, nil)
	if err != nil {
		t.Fatalf("scatter with a doomed replica: %v", err)
	}
	got, foot := drain(t, rows)
	gotC, wantC := canon(got), canon(want.Data)
	if len(gotC) != len(wantC) {
		t.Fatalf("failover result has %d rows, reference %d", len(gotC), len(wantC))
	}
	for i := range gotC {
		if gotC[i] != wantC[i] {
			t.Fatalf("failover result diverges at row %d: got %s want %s", i, gotC[i], wantC[i])
		}
	}
	if foot.Nodes[0].Node != urls[0] {
		t.Errorf("shard 0 footer credits %s, want the surviving sibling %s", foot.Nodes[0].Node, urls[0])
	}
	if n := coord.failovers.Load(); n != 1 {
		t.Errorf("failovers = %d, want 1", n)
	}
	if n := coord.failures.Load(); n != 0 {
		t.Errorf("failures = %d, want 0 (the failover was transparent)", n)
	}
	if n := coord.queries.Load(); n != 1 {
		t.Errorf("queries = %d, want 1", n)
	}
}

// TestExecFailoverRepreparesOnSibling: a prepared execution whose preferred
// replica is dead fails over to the sibling; the sibling lost its half of
// the statement, so the failover also re-prepares — both repairs counted,
// both visible on the coordinator's /stats.
func TestExecFailoverRepreparesOnSibling(t *testing.T) {
	ctx := context.Background()
	urlA := newWorkerURL(t, 0, false)
	urlB := newWorkerURL(t, 0, false)
	proxy := newChaosProxy(t, urlA, faultinject.Script(nil))
	coord := newFailoverCoord(t, Config{Nodes: []string{proxy.URL() + "|" + urlB}})
	repA, repB := coord.shards[0].replicas[0], coord.shards[0].replicas[1]

	pr, err := coord.Prepare(ctx, "SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Expire the sibling's half behind the coordinator's back, so the
	// failover must re-prepare there.
	coord.mu.Lock()
	stmt := coord.stmts[pr.ID]
	coord.mu.Unlock()
	idB, ok := stmt.id(repB)
	if !ok {
		t.Fatal("sibling holds no statement id after Prepare")
	}
	if err := (&server.Client{Base: urlB}).CloseStmt(ctx, idB); err != nil {
		t.Fatal(err)
	}
	// Prefer the proxied replica, then kill it: live connections reset, new
	// ones refused.
	prefer(repA, repB)
	proxy.Sever()
	proxy.SetDown(true)

	rows, err := coord.Exec(ctx, pr.ID, nil, nil)
	if err != nil {
		t.Fatalf("exec with the preferred replica dead: %v", err)
	}
	got, _ := drain(t, rows)
	if len(got) != 10 {
		t.Errorf("failed-over exec returned %d groups, want 10", len(got))
	}
	if n := coord.failovers.Load(); n != 1 {
		t.Errorf("failovers = %d, want 1", n)
	}
	if n := coord.repreparations.Load(); n != 1 {
		t.Errorf("repreparations = %d, want 1", n)
	}
	if n := coord.failures.Load(); n != 0 {
		t.Errorf("failures = %d, want 0", n)
	}

	// Both repair counters travel the HTTP front end's /stats.
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	t.Cleanup(front.Client().CloseIdleConnections)
	resp, err := front.Client().Get(front.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Failovers != 1 || st.Repreparations != 1 {
		t.Errorf("/stats failovers=%d repreparations=%d, want 1/1", st.Failovers, st.Repreparations)
	}
}

// TestAllReplicasDownSurfacesShardError: when every replica of a shard is
// down the query fails with a ShardError naming the shard and how many
// replicas were tried — and once the replicas revive, the shard serves
// again without coordinator surgery.
func TestAllReplicasDownSurfacesShardError(t *testing.T) {
	ctx := context.Background()
	url := newWorkerURL(t, 0, false)
	p1 := newChaosProxy(t, url, faultinject.Script(nil))
	p2 := newChaosProxy(t, url, faultinject.Script(nil))
	coord := newFailoverCoord(t, Config{Nodes: []string{p1.URL() + "|" + p2.URL()}})
	p1.SetDown(true)
	p2.SetDown(true)

	_, err := coord.Query(ctx, "SELECT * FROM A", nil, nil)
	if err == nil {
		t.Fatal("query succeeded with every replica down")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("all-replicas-down error is %T (%v), want *ShardError", err, err)
	}
	if se.Shard != 0 || se.Replicas != 2 {
		t.Errorf("ShardError{Shard: %d, Replicas: %d}, want shard 0 after 2 replicas", se.Shard, se.Replicas)
	}
	if n := coord.failures.Load(); n != 1 {
		t.Errorf("failures = %d, want 1 (this one was client-visible)", n)
	}

	p1.SetDown(false)
	p2.SetDown(false)
	rows, err := coord.Query(ctx, "SELECT * FROM A", nil, nil)
	if err != nil {
		t.Fatalf("query after revival: %v", err)
	}
	got, _ := drain(t, rows)
	if len(got) == 0 {
		t.Error("revived shard returned no rows")
	}
	if n := coord.failures.Load(); n != 1 {
		t.Errorf("failures = %d after recovery, want still 1", n)
	}
}

// flakyWorker fabricates a single-shard NDJSON worker that kills its first
// /query connection after the header and serves the given rows on every
// later one — the deterministic die-then-recover replica.
func flakyWorker(t *testing.T, columns, types []string, rows [][]any) *httptest.Server {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/query" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", ndjsonWire)
		enc := server.NewStreamEncoder(w, ndjsonWire, types)
		enc.Header(&server.Header{Columns: columns, Types: types, Threads: 1})
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		if hits.Add(1) == 1 {
			panic(http.ErrAbortHandler) // die before the first row
		}
		enc.Rows(rows)
		enc.Done(&server.Footer{RowCount: int64(len(rows)), Threads: 1})
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { ts.Client().CloseIdleConnections() })
	return ts
}

// TestRetryWholeQueryRestartsStreaming: with a single replica there is no
// sibling to fail over to; under RetryWholeQuery the whole scatter restarts
// once — mid-iteration, through Rows.Next — and the consumer never sees the
// death.
func TestRetryWholeQueryRestartsStreaming(t *testing.T) {
	ctx := context.Background()
	fake := flakyWorker(t, []string{"unique1"}, []string{"INT"},
		[][]any{{int64(1)}, {int64(2)}, {int64(3)}})
	coord := newFailoverCoord(t, Config{
		Nodes:           []string{fake.URL},
		Wire:            "ndjson",
		RetryWholeQuery: true,
	})
	rows, err := coord.Query(ctx, "SELECT unique1 FROM wisc", nil, nil)
	if err != nil {
		t.Fatalf("query against the flaky worker: %v", err)
	}
	got, foot := drain(t, rows)
	if len(got) != 3 {
		t.Fatalf("restarted stream delivered %d rows, want 3", len(got))
	}
	if got[0][0] != int64(1) || got[2][0] != int64(3) {
		t.Errorf("restarted stream rows = %v", got)
	}
	if foot == nil || foot.RowCount != 3 {
		t.Errorf("restarted stream footer = %+v, want rowCount 3", foot)
	}
	if n := coord.wholeQueryRetries.Load(); n != 1 {
		t.Errorf("wholeQueryRetries = %d, want 1", n)
	}
	if n := coord.failures.Load(); n != 0 {
		t.Errorf("failures = %d, want 0 (the restart was transparent)", n)
	}
	if n := coord.queries.Load(); n != 1 {
		t.Errorf("queries = %d, want 1 (a restart is not a new query)", n)
	}
}

// TestRetryWholeQueryRestartsAggregate: the same single-replica death under
// an aggregate — the failure surfaces during the coordinator-side merge,
// before Rows is returned, and the retry happens inside scatter.
func TestRetryWholeQueryRestartsAggregate(t *testing.T) {
	ctx := context.Background()
	fake := flakyWorker(t, []string{"ten", "count"}, []string{"INT", "INT"},
		[][]any{{int64(0), int64(5)}, {int64(1), int64(7)}})
	coord := newFailoverCoord(t, Config{
		Nodes:           []string{fake.URL},
		Wire:            "ndjson",
		RetryWholeQuery: true,
	})
	rows, err := coord.Query(ctx, "SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil, nil)
	if err != nil {
		t.Fatalf("aggregate against the flaky worker: %v", err)
	}
	got, _ := drain(t, rows)
	if len(got) != 2 || got[0][1] != int64(5) || got[1][1] != int64(7) {
		t.Errorf("restarted aggregate = %v, want [[0 5] [1 7]]", got)
	}
	if n := coord.wholeQueryRetries.Load(); n != 1 {
		t.Errorf("wholeQueryRetries = %d, want 1", n)
	}
	if n := coord.failures.Load(); n != 0 {
		t.Errorf("failures = %d, want 0", n)
	}
}

// TestPostMergeFailureWithoutRetryIsVisible: the same death without
// RetryWholeQuery keeps first-error-wins — the client sees exactly one
// failure and the counter records it.
func TestPostMergeFailureWithoutRetryIsVisible(t *testing.T) {
	ctx := context.Background()
	// Always dies after the header: no recovery on any attempt.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ndjsonWire)
		enc := server.NewStreamEncoder(w, ndjsonWire, []string{"INT"})
		enc.Header(&server.Header{Columns: []string{"ten"}, Types: []string{"INT"}, Threads: 1})
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(dead.Close)
	t.Cleanup(func() { dead.Client().CloseIdleConnections() })
	coord := newFailoverCoord(t, Config{Nodes: []string{dead.URL}, Wire: "ndjson"})
	if _, err := coord.Query(ctx, "SELECT ten, COUNT(*) FROM wisc GROUP BY ten", nil, nil); err == nil {
		t.Fatal("aggregate over a dying single replica succeeded")
	}
	if n := coord.failures.Load(); n != 1 {
		t.Errorf("failures = %d, want 1", n)
	}
	if n := coord.wholeQueryRetries.Load(); n != 0 {
		t.Errorf("wholeQueryRetries = %d, want 0 (RetryWholeQuery off)", n)
	}
}
