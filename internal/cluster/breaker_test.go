package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker's cooloff deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooloff time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(threshold, cooloff)
	b.now = clk.now
	return b, clk
}

// TestBreakerOpensAtThreshold: consecutive failures open the breaker, and a
// success anywhere in the streak resets the count.
func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.failure()
	b.failure()
	if !b.allow() || b.current() != breakerClosed {
		t.Fatalf("breaker opened below the threshold (state %v)", b.current())
	}
	b.success() // streak broken
	b.failure()
	b.failure()
	if b.current() != breakerClosed {
		t.Fatal("success did not reset the failure streak")
	}
	b.failure()
	if b.allow() || b.current() != breakerOpen {
		t.Fatalf("3 consecutive failures left the breaker %v", b.current())
	}
}

// TestBreakerHalfOpenProbe: after the cooloff the breaker half-opens; a
// failure during the probe re-opens it, a success closes it.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(2, 10*time.Second)
	b.failure()
	b.failure()
	if b.allow() {
		t.Fatal("open breaker admitted traffic before the cooloff")
	}
	clk.advance(9 * time.Second)
	if b.allow() {
		t.Fatal("breaker half-opened before the cooloff elapsed")
	}
	clk.advance(time.Second)
	if !b.allow() || b.current() != breakerHalfOpen {
		t.Fatalf("cooloff elapsed but breaker is %v", b.current())
	}
	// Probe fails: straight back to open, with a fresh cooloff.
	b.failure()
	if b.allow() || b.current() != breakerOpen {
		t.Fatalf("half-open failure left the breaker %v", b.current())
	}
	clk.advance(10 * time.Second)
	if !b.allow() {
		t.Fatal("re-opened breaker never half-opened again")
	}
	// Probe succeeds: closed, streak cleared.
	b.success()
	if b.current() != breakerClosed {
		t.Fatalf("half-open success left the breaker %v", b.current())
	}
	b.failure()
	if b.current() != breakerClosed {
		t.Fatal("one failure re-opened a freshly closed breaker (streak not cleared)")
	}
}

// TestBreakerOpenFailuresRefreshCooloff: failures while open (the poll
// still probing a dead node) push the half-open horizon out — the breaker
// only probes after a quiet cooloff.
func TestBreakerOpenFailuresRefreshCooloff(t *testing.T) {
	b, clk := newTestBreaker(1, 10*time.Second)
	b.failure()
	clk.advance(8 * time.Second)
	b.failure() // still dead at the 8s probe
	clk.advance(8 * time.Second)
	if b.allow() {
		t.Fatal("breaker half-opened 8s after its latest failure (cooloff is 10s)")
	}
	clk.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("breaker never half-opened after a full quiet cooloff")
	}
}

// TestBreakerSuccessClosesFromOpen: a success while open (a poll probe
// answering during the cooloff) closes the breaker immediately — the
// rejoin path does not wait out the cooloff.
func TestBreakerSuccessClosesFromOpen(t *testing.T) {
	b, _ := newTestBreaker(1, time.Hour)
	b.failure()
	if b.allow() {
		t.Fatal("breaker open")
	}
	b.success()
	if !b.allow() || b.current() != breakerClosed {
		t.Fatalf("success while open left the breaker %v", b.current())
	}
}

// TestBreakerStateNames pins the strings surfaced on /stats and Health.
func TestBreakerStateNames(t *testing.T) {
	for state, want := range map[breakerState]string{
		breakerClosed:   "closed",
		breakerHalfOpen: "half-open",
		breakerOpen:     "open",
	} {
		if got := state.String(); got != want {
			t.Errorf("state %d named %q, want %q", int(state), got, want)
		}
	}
}
