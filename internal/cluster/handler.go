package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"dbs3/internal/server"
)

// chunkRows batches re-streamed rows per wire message on the coordinator's
// own responses, matching the serve front end's chunking.
const chunkRows = 64

// Handler returns the coordinator's HTTP front end: the same wire protocol
// a single serve node speaks — /query, /prepare, /stmt/{id}/exec,
// /stmt/{id}, /stats, /healthz, NDJSON or binary columnar streams,
// bearer-token auth — so any client (server.Client included) points at a
// coordinator exactly as it would at one node, and gets scatter-gather
// transparently.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", c.handleQuery)
	mux.HandleFunc("POST /prepare", c.handlePrepare)
	mux.HandleFunc("GET /stmt/{id}", c.handleStmtInfo)
	mux.HandleFunc("POST /stmt/{id}/exec", c.handleExec)
	mux.HandleFunc("DELETE /stmt/{id}", c.handleStmtClose)
	mux.HandleFunc("GET /stats", c.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !server.Authorized(r, c.token) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="dbs3"`)
			http.Error(w, "cluster: missing or wrong bearer token", http.StatusUnauthorized)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// decodeBody parses a JSON request body with UseNumber so integer arguments
// survive undamaged, mirroring the serve front end.
func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("cluster: bad request body: %w", err)
	}
	return nil
}

// decodeArgs converts JSON placeholder arguments to engine values (int64 /
// string) — same contract as the serve front end.
func decodeArgs(args []any) ([]any, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]any, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case json.Number:
			n, err := v.Int64()
			if err != nil {
				return nil, fmt.Errorf("cluster: argument %d: %q is not a 64-bit integer", i+1, v.String())
			}
			out[i] = n
		case string:
			out[i] = v
		default:
			return nil, fmt.Errorf("cluster: argument %d has unsupported type %T (want integer or string)", i+1, a)
		}
	}
	return out, nil
}

// requestOptions folds the per-connection priority header into the request
// options, so a priority set by header reaches the workers' admission
// queues.
func requestOptions(r *http.Request, wire *server.Options) *server.Options {
	h := r.Header.Get("X-DBS3-Priority")
	if h == "" {
		return wire
	}
	var o server.Options
	if wire != nil {
		o = *wire
	}
	if o.Priority == "" {
		o.Priority = h
	}
	return &o
}

// errorStatus maps a scatter error to an HTTP status: a worker's own HTTP
// rejection keeps its code, a worker (or whole replica set) that could not
// be reached is a bad gateway, and anything else (parse errors,
// argument-count mismatches, unknown statement ids) is the client's
// request.
func errorStatus(err error) int {
	var se *server.StatusError
	if errors.As(err, &se) {
		return se.Code
	}
	var ne *NodeError
	var she *ShardError
	if errors.As(err, &she) || errors.As(err, &ne) {
		return http.StatusBadGateway
	}
	if strings.Contains(err.Error(), "no prepared statement") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		http.Error(w, "cluster: empty sql", http.StatusBadRequest)
		return
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	contentType, err := server.NegotiateWire(r, req.Options)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rows, err := c.Query(r.Context(), req.SQL, args, requestOptions(r, req.Options))
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	c.restream(w, rows, contentType)
}

func (c *Coordinator) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		http.Error(w, "cluster: empty sql", http.StatusBadRequest)
		return
	}
	pr, err := c.Prepare(r.Context(), req.SQL, requestOptions(r, req.Options))
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	writeJSON(w, http.StatusOK, pr)
}

func (c *Coordinator) handleStmtInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := c.Stmt(id)
	if !ok {
		http.Error(w, fmt.Sprintf("cluster: no prepared statement %q", id), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (c *Coordinator) handleExec(w http.ResponseWriter, r *http.Request) {
	var req server.ExecRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	contentType, err := server.NegotiateWire(r, req.Options)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rows, err := c.Exec(r.Context(), r.PathValue("id"), args, requestOptions(r, req.Options))
	if err != nil {
		http.Error(w, err.Error(), errorStatus(err))
		return
	}
	c.restream(w, rows, contentType)
}

func (c *Coordinator) handleStmtClose(w http.ResponseWriter, r *http.Request) {
	if err := c.CloseStmt(r.Context(), r.PathValue("id")); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStats refreshes the node snapshots and returns the cluster view.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	c.Poll(r.Context())
	writeJSON(w, http.StatusOK, c.Stats())
}

// restream writes a merged scatter-gather result onto the coordinator's own
// response in the negotiated encoding, chunked and flushed like a serve
// node's stream. A mid-stream node failure travels in-band as an error
// frame — the header is already on the wire by then.
func (c *Coordinator) restream(w http.ResponseWriter, rows *Rows, contentType string) {
	defer rows.Close()
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Accel-Buffering", "no")
	head := rows.Header()
	enc := server.NewStreamEncoder(w, contentType, head.Types)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Header(head); err != nil {
		return
	}
	flush()
	firstChunk := true
	chunk := make([][]any, 0, chunkRows)
	emit := func() bool {
		if len(chunk) == 0 {
			return true
		}
		err := enc.Rows(chunk)
		if firstChunk {
			// The first chunk leaves immediately so a streaming client sees
			// rows while workers are still producing; later chunks ride the
			// response writer's own buffering.
			flush()
			firstChunk = false
		}
		chunk = chunk[:0]
		return err == nil
	}
	for rows.Next() {
		chunk = append(chunk, rows.Row())
		if len(chunk) >= chunkRows && !emit() {
			return
		}
	}
	if err := rows.Err(); err != nil {
		enc.Fail(err.Error())
		flush()
		return
	}
	if !emit() {
		return
	}
	f := rows.Footer()
	enc.Done(&server.Footer{RowCount: f.RowCount, Threads: f.Threads})
	flush()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
