package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dbs3/internal/esql"
	"dbs3/internal/lera"
	"dbs3/internal/server"
)

// rowChanDepth buffers the shared fan-in channel: deep enough that a worker
// stream keeps decoding while the consumer is busy with another shard's
// chunk, small enough that backpressure still reaches slow consumers.
const rowChanDepth = 256

// NodeFooter is one shard's contribution to a scatter-gather result.
type NodeFooter struct {
	// Node is the replica that completed the shard's subquery — after a
	// mid-stream failover, the sibling that finished, not the one that died.
	Node string `json:"node"`
	// Rows is the shard's partial row count (pre-merge for aggregates).
	Rows int64 `json:"rows"`
	// Threads is what the replica's scheduler granted the subquery.
	Threads int `json:"threads"`
}

// Footer closes a complete scatter-gather result.
type Footer struct {
	// RowCount is the number of rows the coordinator delivered (post-merge
	// for aggregates).
	RowCount int64 `json:"rowCount"`
	// Threads is the cluster-wide thread total: the sum of every shard's
	// grant.
	Threads int `json:"threads"`
	// Nodes holds the per-shard footers, in fan-out order.
	Nodes []NodeFooter `json:"nodes"`
}

// Rows iterates a scatter-gather result with the same cursor shape as
// server.RowStream: Next/Row/Err/Footer/Close. For plain selections and
// joins rows stream as workers produce them (interleaved across shards, no
// global order); for aggregates the coordinator has already drained and
// merged the partials by the time Rows is returned, and iteration walks the
// merged groups in group-key order.
type Rows struct {
	header *server.Header
	g      *gather
	stream bool    // true: pull from g.rowc; false: walk buf
	buf    [][]any // merged aggregate rows
	cur    []any
	count  int64
	footer *Footer
	err    error
	done   bool
	// onFail is the coordinator's client-visible failure accounting, fired
	// once if an error reaches the consumer. Transparent failovers and
	// whole-query restarts never fire it.
	onFail func()
	// restart re-runs the whole scatter (RetryWholeQuery): armed only for
	// streaming results, consumed on first use.
	restart func() (*Rows, error)
}

// gather is the shared fan-in state of one scatter: the cancel that tears
// down every worker stream, the channel the readers feed, and the first
// error any of them hit.
type gather struct {
	cancel context.CancelFunc
	rowc   chan []any
	closed chan struct{} // closed once every reader exited and rowc is closed

	mu      sync.Mutex
	err     error
	footers []NodeFooter
}

// fail records the first stream error and cancels the siblings. Later
// errors are dropped: once one shard dies the cancellation itself makes the
// other streams fail, and those secondary errors are noise.
func (g *gather) fail(err error) {
	g.mu.Lock()
	first := g.err == nil
	if first {
		g.err = err
	}
	g.mu.Unlock()
	if first {
		g.cancel()
	}
}

func (g *gather) firstErr() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// openFn opens one shard subquery on one concrete replica.
type openFn func(ctx context.Context, rep *replica) (*server.RowStream, error)

// Query scatter-gathers one ad-hoc statement: it derives the merge shape
// once (the coordinator-side compile), fans the unchanged SQL out to every
// shard with the remote-load-adjusted options, and merges the streams.
func (c *Coordinator) Query(ctx context.Context, sql string, args []any, opt *server.Options) (*Rows, error) {
	spec, err := esql.ScatterPlan(sql)
	if err != nil {
		return nil, err
	}
	if len(args) != spec.Params {
		return nil, fmt.Errorf("cluster: statement has %d parameters, got %d arguments", spec.Params, len(args))
	}
	return c.scatter(ctx, spec, func(ctx context.Context, rep *replica) (*server.RowStream, error) {
		return rep.client.Query(ctx, sql, args, c.shardOptions(c.shards[rep.shard], opt))
	})
}

// scatter wraps runScatter with the coordinator-level retry: when
// RetryWholeQuery is set, a replica fault that escapes per-subquery
// failover (a death after rows merged) restarts the query once — here for
// errors surfacing before Rows is returned (open phase, aggregate merge),
// via Rows.restart for errors surfacing mid-iteration. Client-visible
// failures are counted at the edges only, so transparent recoveries never
// inflate the counter.
func (c *Coordinator) scatter(ctx context.Context, spec *esql.ScatterSpec, open openFn) (*Rows, error) {
	c.queries.Add(1)
	rows, err := c.runScatter(ctx, spec, open)
	if err != nil && c.retryWhole && replicaFault(err) && ctx.Err() == nil {
		c.wholeQueryRetries.Add(1)
		rows, err = c.runScatter(ctx, spec, open)
	}
	if err != nil {
		c.failures.Add(1)
		return nil, err
	}
	rows.onFail = func() { c.failures.Add(1) }
	if rows.stream && c.retryWhole {
		rows.restart = func() (*Rows, error) {
			c.wholeQueryRetries.Add(1)
			return c.runScatter(ctx, spec, open)
		}
	}
	return rows, nil
}

// subquery is one shard's live stream and the replica currently serving it.
type subquery struct {
	sh  *shard
	rep *replica
	st  *server.RowStream
}

// openOnShard establishes a shard's subquery on the first replica (in
// placement-preference order, minus exclude) that accepts it. Replica
// faults move on to the next candidate and feed the breaker; a non-fault
// error (bad SQL, cancellation) returns immediately — it would fail
// identically everywhere. want, when non-nil, is the cluster result shape a
// failover replacement stream must match. failedOver reports that at least
// one candidate was skipped over a fault before one succeeded.
func (c *Coordinator) openOnShard(ctx context.Context, sh *shard, exclude *replica, want *server.Header, open openFn) (sub *subquery, failedOver bool, err error) {
	var lastErr error
	tried := 0
	for _, rep := range sh.candidates() {
		if rep == exclude {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		st, err := open(ctx, rep)
		if err != nil {
			ne := &NodeError{Node: rep.name, Err: err}
			if !replicaFault(err) {
				return nil, false, ne
			}
			rep.brk.failure()
			lastErr = ne
			tried++
			continue
		}
		if want != nil {
			h := st.Header()
			if !equalStrings(h.Columns, want.Columns) || !equalStrings(h.Types, want.Types) {
				st.Close()
				return nil, false, &NodeError{Node: rep.name,
					Err: fmt.Errorf("failover result shape %v %v disagrees with the cluster header %v %v (diverged catalogs?)",
						h.Columns, h.Types, want.Columns, want.Types)}
			}
		}
		rep.brk.success()
		return &subquery{sh: sh, rep: rep, st: st}, tried > 0, nil
	}
	if lastErr == nil {
		lastErr = ctx.Err()
		if lastErr == nil {
			lastErr = fmt.Errorf("no replica available")
		}
	}
	return nil, false, &ShardError{Shard: sh.index, Replicas: tried, Err: lastErr}
}

// runScatter opens one subquery per shard, waits for every header, and
// wires up the merge. Any open-phase failure (after per-shard failover is
// exhausted) tears the whole fan-out down and surfaces one error naming the
// shard and its last replica.
func (c *Coordinator) runScatter(ctx context.Context, spec *esql.ScatterSpec, open openFn) (*Rows, error) {
	fanCtx, cancel := context.WithCancel(ctx)
	subs := make([]*subquery, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sub, failedOver, err := c.openOnShard(fanCtx, sh, nil, nil, open)
			if err != nil {
				errs[i] = err
				return
			}
			if failedOver {
				c.failovers.Add(1)
			}
			subs[i] = sub
		}(i, sh)
	}
	wg.Wait()
	abort := func(err error) (*Rows, error) {
		cancel()
		for _, sub := range subs {
			if sub != nil {
				sub.st.Close()
			}
		}
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return abort(err)
		}
	}
	// Header barrier: every shard granted the subquery and declared its
	// result shape; the shapes must agree or the catalogs have diverged.
	head := subs[0].st.Header()
	cluster := &server.Header{
		Columns:     head.Columns,
		Types:       head.Types,
		Threads:     0,
		Utilization: 0,
	}
	for _, sub := range subs {
		h := sub.st.Header()
		if !equalStrings(h.Columns, head.Columns) || !equalStrings(h.Types, head.Types) {
			return abort(fmt.Errorf("cluster: node %s result shape %v %v disagrees with node %s %v %v (diverged catalogs?)",
				sub.rep.name, h.Columns, h.Types, subs[0].rep.name, head.Columns, head.Types))
		}
		cluster.Threads += h.Threads
		if h.Utilization > cluster.Utilization {
			cluster.Utilization = h.Utilization
		}
	}

	g := &gather{
		cancel:  cancel,
		rowc:    make(chan []any, rowChanDepth),
		closed:  make(chan struct{}),
		footers: make([]NodeFooter, len(c.shards)),
	}
	var readers sync.WaitGroup
	for i, sub := range subs {
		readers.Add(1)
		go func(i int, sub *subquery) {
			defer readers.Done()
			c.readSubquery(fanCtx, g, i, sub, cluster, open)
		}(i, sub)
	}
	go func() {
		readers.Wait()
		close(g.rowc)
		close(g.closed)
	}()

	rows := &Rows{header: cluster, g: g}
	if !spec.HasAgg {
		rows.stream = true
		return rows, nil
	}
	// Grouped merge: drain every partial stream, fold group-wise with the
	// merge aggregate, and hand back the groups in key order — the same
	// sorted output a single node's Aggregate operator emits.
	merged, err := mergeGroups(g, spec)
	if err != nil {
		cancel()
		<-g.closed
		return nil, err
	}
	rows.buf = merged
	return rows, nil
}

// readSubquery pumps one shard's stream into the fan-in channel. A replica
// fault before this subquery merged any row is retried transparently on a
// sibling replica — the replacement stream re-produces the shard's rows
// from scratch, which is exactly once from the merge's point of view since
// nothing of this shard entered the channel yet. A fault after rows merged
// cannot be retried shard-locally (the channel already carries a partial
// shard) and fails the gather; scatter-level RetryWholeQuery may still
// restart the query.
func (c *Coordinator) readSubquery(ctx context.Context, g *gather, i int, sub *subquery, want *server.Header, open openFn) {
	st, rep := sub.st, sub.rep
	var merged int64
	for {
		for st.Next() {
			select {
			case g.rowc <- st.Row():
				merged++
			case <-ctx.Done():
				st.Close()
				return
			}
		}
		err := st.Err()
		if err == nil {
			rep.brk.success()
			if f := st.Footer(); f != nil {
				g.mu.Lock()
				g.footers[i] = NodeFooter{Node: rep.name, Rows: f.RowCount, Threads: f.Threads}
				g.mu.Unlock()
			}
			st.Close()
			return
		}
		st.Close()
		if ctx.Err() != nil {
			// A sibling failed first or the consumer closed; our cancellation
			// fallout is noise.
			return
		}
		if !replicaFault(err) || merged > 0 {
			g.fail(&NodeError{Node: rep.name, Err: err})
			return
		}
		rep.brk.failure()
		nsub, _, oerr := c.openOnShard(ctx, sub.sh, rep, want, open)
		if oerr != nil {
			g.fail(oerr)
			return
		}
		c.failovers.Add(1)
		st, rep = nsub.st, nsub.rep
	}
}

// mergeGroups drains the fan-in channel into a group table keyed by the
// leading GroupCols columns, folding the partial aggregate value (the
// single trailing column) with the merge aggregate.
func mergeGroups(g *gather, spec *esql.ScatterSpec) ([][]any, error) {
	groups := make(map[string][]any)
	for row := range g.rowc {
		if len(row) != spec.GroupCols+1 {
			return nil, fmt.Errorf("cluster: aggregate partial row has %d columns, want %d group + 1 value", len(row), spec.GroupCols)
		}
		key := groupKey(row[:spec.GroupCols])
		if acc, ok := groups[key]; ok {
			v, err := foldValue(spec.Merge, acc[spec.GroupCols], row[spec.GroupCols])
			if err != nil {
				return nil, err
			}
			acc[spec.GroupCols] = v
		} else {
			groups[key] = row
		}
	}
	if err := g.firstErr(); err != nil {
		return nil, err
	}
	out := make([][]any, 0, len(groups))
	for _, row := range groups {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		return compareRows(out[i], out[j], spec.GroupCols) < 0
	})
	return out, nil
}

// groupKey canonicalizes a group key for the merge table: type-tagged,
// length-delimited, so ("1","2") and (12,) can never collide.
func groupKey(cols []any) string {
	var b strings.Builder
	for _, v := range cols {
		switch t := v.(type) {
		case int64:
			b.WriteByte('i')
			b.WriteString(strconv.FormatInt(t, 10))
		case string:
			b.WriteByte('s')
			b.WriteString(strconv.Itoa(len(t)))
			b.WriteByte(':')
			b.WriteString(t)
		default:
			// Streams only carry int64 and string; anything else would have
			// failed wire decoding already.
			b.WriteString(fmt.Sprintf("?%v", t))
		}
		b.WriteByte('\x1f')
	}
	return b.String()
}

// foldValue merges two partial aggregate values.
func foldValue(kind lera.AggKind, a, b any) (any, error) {
	switch kind {
	case lera.AggSum:
		ai, aok := a.(int64)
		bi, bok := b.(int64)
		if !aok || !bok {
			return nil, fmt.Errorf("cluster: SUM merge over non-integer partials (%T, %T)", a, b)
		}
		return ai + bi, nil
	case lera.AggMin, lera.AggMax:
		less, err := lessValue(a, b)
		if err != nil {
			return nil, err
		}
		if less == (kind == lera.AggMin) {
			return a, nil
		}
		return b, nil
	default:
		return nil, fmt.Errorf("cluster: aggregate %v has no merge", kind)
	}
}

// lessValue orders two same-typed engine values (int64 numerically, string
// lexically), mirroring relation.Tuple.Compare.
func lessValue(a, b any) (bool, error) {
	switch av := a.(type) {
	case int64:
		bv, ok := b.(int64)
		if !ok {
			return false, fmt.Errorf("cluster: comparing %T with %T", a, b)
		}
		return av < bv, nil
	case string:
		bv, ok := b.(string)
		if !ok {
			return false, fmt.Errorf("cluster: comparing %T with %T", a, b)
		}
		return av < bv, nil
	default:
		return false, fmt.Errorf("cluster: unordered value type %T", a)
	}
}

// compareRows orders rows by their first n columns, for the merged-group
// sort. Values inside one column are homogeneous; a type mismatch would
// have failed the fold already, so it sorts arbitrarily-but-stably here.
func compareRows(a, b []any, n int) int {
	for i := 0; i < n && i < len(a) && i < len(b); i++ {
		if less, err := lessValue(a[i], b[i]); err == nil {
			if less {
				return -1
			}
			if l2, _ := lessValue(b[i], a[i]); l2 {
				return 1
			}
		}
	}
	return 0
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Header returns the cluster-level stream header: the (validated-identical)
// result shape, the sum of the shards' thread grants, and the maximum
// utilization any shard reported.
func (r *Rows) Header() *server.Header { return r.header }

// Next advances the cursor. For streaming results it blocks on the fan-in
// channel; for merged aggregates it walks the buffer.
func (r *Rows) Next() bool {
	for {
		if r.done {
			return false
		}
		if !r.stream {
			if len(r.buf) == 0 {
				r.complete()
				return false
			}
			r.cur = r.buf[0]
			r.buf = r.buf[1:]
			r.count++
			return true
		}
		row, ok := <-r.g.rowc
		if ok {
			r.cur = row
			r.count++
			return true
		}
		err := r.g.firstErr()
		if err == nil {
			r.complete()
			return false
		}
		if !r.tryRestart(err) {
			return false
		}
		// Restarted: loop and pull from the fresh gather.
	}
}

// tryRestart is the RetryWholeQuery path for a failure that escaped
// per-subquery failover: if nothing was delivered to the consumer yet, the
// whole scatter re-runs once and iteration resumes transparently. Returns
// false after recording the (original or restart) error on the cursor.
func (r *Rows) tryRestart(err error) bool {
	if r.restart == nil || r.count != 0 || !replicaFault(err) {
		r.fail(err)
		return false
	}
	restart := r.restart
	r.restart = nil
	onFail := r.onFail
	r.g.cancel() // release the dead gather's fan-out context
	nr, rerr := restart()
	if rerr != nil {
		r.fail(rerr)
		return false
	}
	*r = *nr
	r.onFail = onFail
	return true
}

// Row returns the current row: one int64 or string per header column.
func (r *Rows) Row() []any { return r.cur }

// Err returns the error that terminated the result, if any.
func (r *Rows) Err() error { return r.err }

// Footer returns the cluster footer — set only after a complete iteration.
func (r *Rows) Footer() *Footer { return r.footer }

func (r *Rows) fail(err error) {
	r.err = err
	if r.onFail != nil {
		r.onFail()
		r.onFail = nil
	}
	r.finish()
}

// complete builds the cluster footer from the per-shard footers.
func (r *Rows) complete() {
	f := &Footer{RowCount: r.count}
	r.g.mu.Lock()
	f.Nodes = append(f.Nodes, r.g.footers...)
	r.g.mu.Unlock()
	for _, nf := range f.Nodes {
		f.Threads += nf.Threads
	}
	r.footer = f
	r.finish()
}

func (r *Rows) finish() {
	if !r.done {
		r.done = true
		r.cur = nil
		r.g.cancel()
		<-r.g.closed // every reader exited; no goroutine outlives the result
	}
}

// Close releases the result. Closing mid-stream cancels every worker
// request, which aborts the subqueries and returns their threads to each
// node's budget; Close returns only after all reader goroutines exited.
func (r *Rows) Close() error {
	r.finish()
	return nil
}

// errIsStmtGone reports a worker-side 404: the node's prepared statement
// expired (idle TTL) or the node restarted since prepare time.
func errIsStmtGone(err error) bool {
	var se *server.StatusError
	return errors.As(err, &se) && se.Code == 404
}
