package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dbs3/internal/esql"
	"dbs3/internal/lera"
	"dbs3/internal/server"
)

// rowChanDepth buffers the shared fan-in channel: deep enough that a worker
// stream keeps decoding while the consumer is busy with another node's
// chunk, small enough that backpressure still reaches slow consumers.
const rowChanDepth = 256

// NodeFooter is one worker's contribution to a scatter-gather result.
type NodeFooter struct {
	Node string `json:"node"`
	// Rows is the node's partial row count (pre-merge for aggregates).
	Rows int64 `json:"rows"`
	// Threads is what the node's scheduler granted the subquery.
	Threads int `json:"threads"`
}

// Footer closes a complete scatter-gather result.
type Footer struct {
	// RowCount is the number of rows the coordinator delivered (post-merge
	// for aggregates).
	RowCount int64 `json:"rowCount"`
	// Threads is the cluster-wide thread total: the sum of every node's
	// grant.
	Threads int `json:"threads"`
	// Nodes holds the per-worker footers, in fan-out order.
	Nodes []NodeFooter `json:"nodes"`
}

// Rows iterates a scatter-gather result with the same cursor shape as
// server.RowStream: Next/Row/Err/Footer/Close. For plain selections and
// joins rows stream as workers produce them (interleaved across nodes, no
// global order); for aggregates the coordinator has already drained and
// merged the partials by the time Rows is returned, and iteration walks the
// merged groups in group-key order.
type Rows struct {
	header *server.Header
	g      *gather
	stream bool    // true: pull from g.rowc; false: walk buf
	buf    [][]any // merged aggregate rows
	cur    []any
	count  int64
	footer *Footer
	err    error
	done   bool
}

// gather is the shared fan-in state of one scatter: the cancel that tears
// down every worker stream, the channel the readers feed, and the first
// error any of them hit.
type gather struct {
	cancel context.CancelFunc
	rowc   chan []any
	closed chan struct{} // closed once every reader exited and rowc is closed
	onFail func()        // coordinator failure accounting, fired once

	mu      sync.Mutex
	err     error
	footers []NodeFooter
}

// fail records the first stream error and cancels the siblings. Later
// errors are dropped: once one node dies the cancellation itself makes the
// other streams fail, and those secondary errors are noise.
func (g *gather) fail(err error) {
	g.mu.Lock()
	first := g.err == nil
	if first {
		g.err = err
	}
	g.mu.Unlock()
	if first {
		g.cancel()
		if g.onFail != nil {
			g.onFail()
		}
	}
}

func (g *gather) firstErr() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Query scatter-gathers one ad-hoc statement: it derives the merge shape
// once (the coordinator-side compile), fans the unchanged SQL out to every
// node with the remote-load-adjusted options, and merges the streams.
func (c *Coordinator) Query(ctx context.Context, sql string, args []any, opt *server.Options) (*Rows, error) {
	spec, err := esql.ScatterPlan(sql)
	if err != nil {
		return nil, err
	}
	if len(args) != spec.Params {
		return nil, fmt.Errorf("cluster: statement has %d parameters, got %d arguments", spec.Params, len(args))
	}
	return c.scatter(ctx, spec, func(ctx context.Context, _ int, n *node) (*server.RowStream, error) {
		return n.client.Query(ctx, sql, args, c.nodeOptions(n, opt))
	})
}

// scatter opens one stream per node through open, waits for every header,
// and wires up the merge. Any open failure tears the whole fan-out down and
// surfaces one error naming the node.
func (c *Coordinator) scatter(ctx context.Context, spec *esql.ScatterSpec, open func(ctx context.Context, i int, n *node) (*server.RowStream, error)) (*Rows, error) {
	c.queries.Add(1)
	fanCtx, cancel := context.WithCancel(ctx)
	streams := make([]*server.RowStream, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			st, err := open(fanCtx, i, n)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: node %s: %w", n.name, err)
				return
			}
			streams[i] = st
		}(i, n)
	}
	wg.Wait()
	abort := func(err error) (*Rows, error) {
		cancel()
		for _, st := range streams {
			if st != nil {
				st.Close()
			}
		}
		c.failures.Add(1)
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return abort(err)
		}
	}
	// Header barrier: every node granted the subquery and declared its
	// result shape; the shapes must agree or the catalogs have diverged.
	head := streams[0].Header()
	cluster := &server.Header{
		Columns:     head.Columns,
		Types:       head.Types,
		Threads:     0,
		Utilization: 0,
	}
	for i, st := range streams {
		h := st.Header()
		if !equalStrings(h.Columns, head.Columns) || !equalStrings(h.Types, head.Types) {
			return abort(fmt.Errorf("cluster: node %s result shape %v %v disagrees with node %s %v %v (diverged catalogs?)",
				c.nodes[i].name, h.Columns, h.Types, c.nodes[0].name, head.Columns, head.Types))
		}
		cluster.Threads += h.Threads
		if h.Utilization > cluster.Utilization {
			cluster.Utilization = h.Utilization
		}
	}

	g := &gather{
		cancel:  cancel,
		rowc:    make(chan []any, rowChanDepth),
		closed:  make(chan struct{}),
		onFail:  func() { c.failures.Add(1) },
		footers: make([]NodeFooter, len(c.nodes)),
	}
	var readers sync.WaitGroup
	for i, st := range streams {
		readers.Add(1)
		go func(i int, name string, st *server.RowStream) {
			defer readers.Done()
			defer st.Close()
			for st.Next() {
				select {
				case g.rowc <- st.Row():
				case <-fanCtx.Done():
					return
				}
			}
			if err := st.Err(); err != nil {
				g.fail(fmt.Errorf("cluster: node %s: %w", name, err))
				return
			}
			if f := st.Footer(); f != nil {
				g.mu.Lock()
				g.footers[i] = NodeFooter{Node: name, Rows: f.RowCount, Threads: f.Threads}
				g.mu.Unlock()
			}
		}(i, c.nodes[i].name, st)
	}
	go func() {
		readers.Wait()
		close(g.rowc)
		close(g.closed)
	}()

	rows := &Rows{header: cluster, g: g}
	if !spec.HasAgg {
		rows.stream = true
		return rows, nil
	}
	// Grouped merge: drain every partial stream, fold group-wise with the
	// merge aggregate, and hand back the groups in key order — the same
	// sorted output a single node's Aggregate operator emits.
	merged, err := mergeGroups(g, spec)
	if err != nil {
		cancel()
		<-g.closed
		if g.firstErr() == nil {
			// A coordinator-side merge error; node failures were already
			// counted by onFail.
			c.failures.Add(1)
		}
		return nil, err
	}
	rows.buf = merged
	return rows, nil
}

// mergeGroups drains the fan-in channel into a group table keyed by the
// leading GroupCols columns, folding the partial aggregate value (the
// single trailing column) with the merge aggregate.
func mergeGroups(g *gather, spec *esql.ScatterSpec) ([][]any, error) {
	groups := make(map[string][]any)
	for row := range g.rowc {
		if len(row) != spec.GroupCols+1 {
			return nil, fmt.Errorf("cluster: aggregate partial row has %d columns, want %d group + 1 value", len(row), spec.GroupCols)
		}
		key := groupKey(row[:spec.GroupCols])
		if acc, ok := groups[key]; ok {
			v, err := foldValue(spec.Merge, acc[spec.GroupCols], row[spec.GroupCols])
			if err != nil {
				return nil, err
			}
			acc[spec.GroupCols] = v
		} else {
			groups[key] = row
		}
	}
	if err := g.firstErr(); err != nil {
		return nil, err
	}
	out := make([][]any, 0, len(groups))
	for _, row := range groups {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		return compareRows(out[i], out[j], spec.GroupCols) < 0
	})
	return out, nil
}

// groupKey canonicalizes a group key for the merge table: type-tagged,
// length-delimited, so ("1","2") and (12,) can never collide.
func groupKey(cols []any) string {
	var b strings.Builder
	for _, v := range cols {
		switch t := v.(type) {
		case int64:
			b.WriteByte('i')
			b.WriteString(strconv.FormatInt(t, 10))
		case string:
			b.WriteByte('s')
			b.WriteString(strconv.Itoa(len(t)))
			b.WriteByte(':')
			b.WriteString(t)
		default:
			// Streams only carry int64 and string; anything else would have
			// failed wire decoding already.
			b.WriteString(fmt.Sprintf("?%v", t))
		}
		b.WriteByte('\x1f')
	}
	return b.String()
}

// foldValue merges two partial aggregate values.
func foldValue(kind lera.AggKind, a, b any) (any, error) {
	switch kind {
	case lera.AggSum:
		ai, aok := a.(int64)
		bi, bok := b.(int64)
		if !aok || !bok {
			return nil, fmt.Errorf("cluster: SUM merge over non-integer partials (%T, %T)", a, b)
		}
		return ai + bi, nil
	case lera.AggMin, lera.AggMax:
		less, err := lessValue(a, b)
		if err != nil {
			return nil, err
		}
		if less == (kind == lera.AggMin) {
			return a, nil
		}
		return b, nil
	default:
		return nil, fmt.Errorf("cluster: aggregate %v has no merge", kind)
	}
}

// lessValue orders two same-typed engine values (int64 numerically, string
// lexically), mirroring relation.Tuple.Compare.
func lessValue(a, b any) (bool, error) {
	switch av := a.(type) {
	case int64:
		bv, ok := b.(int64)
		if !ok {
			return false, fmt.Errorf("cluster: comparing %T with %T", a, b)
		}
		return av < bv, nil
	case string:
		bv, ok := b.(string)
		if !ok {
			return false, fmt.Errorf("cluster: comparing %T with %T", a, b)
		}
		return av < bv, nil
	default:
		return false, fmt.Errorf("cluster: unordered value type %T", a)
	}
}

// compareRows orders rows by their first n columns, for the merged-group
// sort. Values inside one column are homogeneous; a type mismatch would
// have failed the fold already, so it sorts arbitrarily-but-stably here.
func compareRows(a, b []any, n int) int {
	for i := 0; i < n && i < len(a) && i < len(b); i++ {
		if less, err := lessValue(a[i], b[i]); err == nil {
			if less {
				return -1
			}
			if l2, _ := lessValue(b[i], a[i]); l2 {
				return 1
			}
		}
	}
	return 0
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Header returns the cluster-level stream header: the (validated-identical)
// result shape, the sum of the nodes' thread grants, and the maximum
// utilization any node reported.
func (r *Rows) Header() *server.Header { return r.header }

// Next advances the cursor. For streaming results it blocks on the fan-in
// channel; for merged aggregates it walks the buffer.
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	if r.stream {
		row, ok := <-r.g.rowc
		if !ok {
			if err := r.g.firstErr(); err != nil {
				r.fail(err)
			} else {
				r.complete()
			}
			return false
		}
		r.cur = row
		r.count++
		return true
	}
	if len(r.buf) == 0 {
		r.complete()
		return false
	}
	r.cur = r.buf[0]
	r.buf = r.buf[1:]
	r.count++
	return true
}

// Row returns the current row: one int64 or string per header column.
func (r *Rows) Row() []any { return r.cur }

// Err returns the error that terminated the result, if any.
func (r *Rows) Err() error { return r.err }

// Footer returns the cluster footer — set only after a complete iteration.
func (r *Rows) Footer() *Footer { return r.footer }

func (r *Rows) fail(err error) {
	r.err = err
	r.finish()
}

// complete builds the cluster footer from the per-node footers.
func (r *Rows) complete() {
	f := &Footer{RowCount: r.count}
	r.g.mu.Lock()
	f.Nodes = append(f.Nodes, r.g.footers...)
	r.g.mu.Unlock()
	for _, nf := range f.Nodes {
		f.Threads += nf.Threads
	}
	r.footer = f
	r.finish()
}

func (r *Rows) finish() {
	if !r.done {
		r.done = true
		r.cur = nil
		r.g.cancel()
		<-r.g.closed // every reader exited; no goroutine outlives the result
	}
}

// Close releases the result. Closing mid-stream cancels every worker
// request, which aborts the subqueries and returns their threads to each
// node's budget; Close returns only after all reader goroutines exited.
func (r *Rows) Close() error {
	r.finish()
	return nil
}

// errIsStmtGone reports a worker-side 404: the node's prepared statement
// expired (idle TTL) or the node restarted since prepare time.
func errIsStmtGone(err error) bool {
	var se *server.StatusError
	return errors.As(err, &se) && se.Code == 404
}
