package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestCloseCancelsInFlightPoll pins the poller's lifecycle contract: the
// background /stats poll runs under the coordinator's lifecycle context,
// so Close aborts a poll round blocked on an unresponsive worker instead
// of waiting out the request timeout (or, as before this contract
// existed, forever — the poll used context.Background()).
func TestCloseCancelsInFlightPoll(t *testing.T) {
	arrived := make(chan struct{}, 16)
	cancelled := make(chan struct{}, 16)
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrived <- struct{}{}
		// Hold the poll open until its request context dies. A worker
		// that never answers is exactly the failure mode Close must
		// not inherit.
		<-r.Context().Done()
		cancelled <- struct{}{}
	}))
	defer worker.Close()

	coord, err := New(context.Background(), Config{
		Nodes:        []string{worker.URL},
		PollInterval: 5 * time.Millisecond,
		Timeout:      time.Minute, // Close, not the request timeout, must end the poll
		Retries:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	select {
	case <-arrived:
	case <-time.After(5 * time.Second):
		t.Fatal("poller never reached the worker")
	}

	done := make(chan struct{})
	go func() {
		coord.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not cancel the in-flight poll")
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("worker handler never saw the poll's context cancelled")
	}
}

// TestCallerContextStopsPoller pins the other half of the lifecycle:
// cancelling the context handed to New stops polling without Close.
func TestCallerContextStopsPoller(t *testing.T) {
	polls := make(chan struct{}, 64)
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case polls <- struct{}{}:
		default:
		}
		w.Write([]byte(`{}`))
	}))
	defer worker.Close()

	ctx, cancel := context.WithCancel(context.Background())
	coord, err := New(ctx, Config{
		Nodes:        []string{worker.URL},
		PollInterval: 2 * time.Millisecond,
		Retries:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	select {
	case <-polls:
	case <-time.After(5 * time.Second):
		t.Fatal("poller never polled")
	}
	cancel()
	<-coord.pollDone // loop exits on ctx.Done, not only on Close
	// Close after caller-cancel must not hang or panic.
	coord.Close()
}
