package cluster

import (
	"context"
	"errors"
	"fmt"

	"dbs3/internal/server"
)

// NodeError names the worker behind a fan-out failure. The message keeps
// the historical "cluster: node <name>: ..." shape, which the HTTP front
// end maps to 502 and operators grep for.
type NodeError struct {
	Node string
	Err  error
}

func (e *NodeError) Error() string { return fmt.Sprintf("cluster: node %s: %v", e.Node, e.Err) }
func (e *NodeError) Unwrap() error { return e.Err }

// ShardError reports that a shard's subquery failed on every replica tried;
// Err is the last replica's NodeError.
type ShardError struct {
	Shard    int
	Replicas int // replicas tried before giving up
	Err      error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d failed on all %d replicas tried: %v", e.Shard, e.Replicas, e.Err)
}
func (e *ShardError) Unwrap() error { return e.Err }

// replicaFault classifies an error as a fault of the replica that served
// it — the signal that failing over to a sibling could succeed. Connection
// failures, header timeouts (server.TimeoutError), truncated or reset
// streams, and worker 5xx responses are faults; cancellation is the
// caller's doing, and a 4xx would fail identically on every replica (bad
// SQL, wrong arity), so neither triggers failover.
func replicaFault(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *server.StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	return true
}
