package cluster

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"dbs3/internal/esql"
	"dbs3/internal/server"
)

// coordStmt is one coordinator-side prepared statement: the original SQL
// (kept for re-preparing), the merge shape compiled once at prepare time,
// the result metadata, and each node's server-side statement id.
type coordStmt struct {
	sql  string
	spec *esql.ScatterSpec
	info server.PrepareResponse // coordinator-facing metadata (coord id)

	mu  sync.Mutex
	ids []string // per node, same order as Coordinator.nodes
}

// nodeID returns node i's server-side statement id under the lock.
func (s *coordStmt) nodeID(i int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ids[i]
}

func (s *coordStmt) setNodeID(i int, id string) {
	s.mu.Lock()
	s.ids[i] = id
	s.mu.Unlock()
}

// Prepare compiles a statement once cluster-wide: the coordinator derives
// the merge shape, prepares the statement on every node in parallel, and
// registers the bundle under one coordinator id. Executions then skip both
// the coordinator-side parse and the workers' parse/compile (their plan
// caches hold the compiled plan against each node's shard).
func (c *Coordinator) Prepare(ctx context.Context, sql string, opt *server.Options) (*server.PrepareResponse, error) {
	spec, err := esql.ScatterPlan(sql)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.stmts) >= c.maxStmt {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: prepared-statement registry full (%d open)", c.maxStmt)
	}
	c.mu.Unlock()

	stmt := &coordStmt{sql: sql, spec: spec, ids: make([]string, len(c.nodes))}
	prs := make([]*server.PrepareResponse, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			pr, err := n.client.Prepare(ctx, sql, c.nodeOptions(n, opt))
			if err != nil {
				errs[i] = fmt.Errorf("cluster: node %s: %w", n.name, err)
				return
			}
			prs[i] = pr
			stmt.setNodeID(i, pr.ID)
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Best-effort cleanup of the nodes that did prepare.
			for i, pr := range prs {
				if pr != nil {
					_ = c.nodes[i].client.CloseStmt(ctx, pr.ID)
				}
			}
			c.failures.Add(1)
			return nil, err
		}
	}

	id := "c" + strconv.FormatInt(c.nextID.Add(1), 10)
	stmt.info = server.PrepareResponse{
		ID:      id,
		SQL:     sql,
		Columns: prs[0].Columns,
		Types:   prs[0].Types,
		Params:  spec.Params,
	}
	c.mu.Lock()
	c.stmts[id] = stmt
	c.mu.Unlock()
	out := stmt.info
	return &out, nil
}

// Stmt returns a prepared statement's metadata.
func (c *Coordinator) Stmt(id string) (*server.PrepareResponse, bool) {
	c.mu.Lock()
	stmt, ok := c.stmts[id]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	out := stmt.info
	return &out, true
}

// Exec scatter-gathers one execution of a prepared statement. A node whose
// server-side statement vanished (expired by its idle-TTL sweep, or the
// node restarted) is transparently re-prepared once and retried; a second
// miss fails the execution.
func (c *Coordinator) Exec(ctx context.Context, id string, args []any, opt *server.Options) (*Rows, error) {
	c.mu.Lock()
	stmt, ok := c.stmts[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cluster: no prepared statement %q", id)
	}
	if len(args) != stmt.spec.Params {
		return nil, fmt.Errorf("cluster: statement %s has %d parameters, got %d arguments", id, stmt.spec.Params, len(args))
	}
	return c.scatter(ctx, stmt.spec, func(ctx context.Context, i int, n *node) (*server.RowStream, error) {
		st, err := n.client.Exec(ctx, stmt.nodeID(i), args, c.nodeOptions(n, opt))
		if err == nil || !errIsStmtGone(err) {
			return st, err
		}
		// The worker forgot the statement; re-prepare and retry once.
		pr, perr := n.client.Prepare(ctx, stmt.sql, nil)
		if perr != nil {
			return nil, fmt.Errorf("re-preparing expired statement: %w", perr)
		}
		stmt.setNodeID(i, pr.ID)
		c.repreparations.Add(1)
		return n.client.Exec(ctx, pr.ID, args, c.nodeOptions(n, opt))
	})
}

// CloseStmt discards a coordinator-side prepared statement and best-effort
// closes each node's half (a node that already expired it returns 404,
// which is the desired end state anyway).
func (c *Coordinator) CloseStmt(ctx context.Context, id string) error {
	c.mu.Lock()
	stmt, ok := c.stmts[id]
	if ok {
		delete(c.stmts, id)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: no prepared statement %q", id)
	}
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			_ = n.client.CloseStmt(ctx, stmt.nodeID(i))
		}(i, n)
	}
	wg.Wait()
	return nil
}
