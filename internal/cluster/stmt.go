package cluster

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"dbs3/internal/esql"
	"dbs3/internal/server"
)

// coordStmt is one coordinator-side prepared statement: the original SQL
// (kept for re-preparing), the merge shape compiled once at prepare time,
// the result metadata, and each replica's server-side statement id. A
// replica missing from ids (down at prepare time, or it expired its half)
// is re-prepared lazily the first time a subquery lands on it.
type coordStmt struct {
	sql  string
	spec *esql.ScatterSpec
	info server.PrepareResponse // coordinator-facing metadata (coord id)

	mu  sync.Mutex
	ids map[*replica]string
}

// id returns a replica's server-side statement id, if it holds one.
func (s *coordStmt) id(r *replica) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.ids[r]
	return id, ok
}

func (s *coordStmt) setID(r *replica, id string) {
	s.mu.Lock()
	s.ids[r] = id
	s.mu.Unlock()
}

// Prepare compiles a statement once cluster-wide: the coordinator derives
// the merge shape, prepares the statement on every replica of every shard
// in parallel, and registers the bundle under one coordinator id.
// Executions then skip both the coordinator-side parse and the workers'
// parse/compile (their plan caches hold the compiled plan against each
// shard). A replica that is down may miss the prepare — tolerated as long
// as at least one replica per shard holds the statement; the missing half
// is re-prepared lazily if a subquery ever fails over onto it.
func (c *Coordinator) Prepare(ctx context.Context, sql string, opt *server.Options) (*server.PrepareResponse, error) {
	spec, err := esql.ScatterPlan(sql)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if len(c.stmts) >= c.maxStmt {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: prepared-statement registry full (%d open)", c.maxStmt)
	}
	c.mu.Unlock()

	stmt := &coordStmt{sql: sql, spec: spec, ids: make(map[*replica]string)}
	var reps []*replica
	c.replicas(func(r *replica) { reps = append(reps, r) })
	prs := make([]*server.PrepareResponse, len(reps))
	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for i, r := range reps {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			pr, err := r.client.Prepare(ctx, sql, c.shardOptions(c.shards[r.shard], opt))
			if err != nil {
				errs[i] = &NodeError{Node: r.name, Err: err}
				return
			}
			prs[i] = pr
			stmt.setID(r, pr.ID)
		}(i, r)
	}
	wg.Wait()

	cleanup := func() {
		// Best-effort cleanup of the replicas that did prepare.
		for i, pr := range prs {
			if pr != nil {
				_ = reps[i].client.CloseStmt(ctx, pr.ID)
			}
		}
	}
	// A non-fault failure (the statement itself is bad) fails the prepare
	// outright — every replica would reject it the same way.
	var first *server.PrepareResponse
	for i, err := range errs {
		if err == nil {
			if first == nil {
				first = prs[i]
			}
			continue
		}
		if !replicaFault(err) {
			cleanup()
			c.failures.Add(1)
			return nil, err
		}
	}
	// Replica faults are tolerated per shard as long as one replica holds
	// the statement.
	for _, sh := range c.shards {
		prepared := false
		var shardErr error
		replicasTried := 0
		for i, r := range reps {
			if r.shard != sh.index {
				continue
			}
			if errs[i] == nil {
				prepared = true
			} else {
				shardErr = errs[i]
				replicasTried++
			}
		}
		if !prepared {
			cleanup()
			c.failures.Add(1)
			return nil, &ShardError{Shard: sh.index, Replicas: replicasTried, Err: shardErr}
		}
	}

	id := "c" + strconv.FormatInt(c.nextID.Add(1), 10)
	stmt.info = server.PrepareResponse{
		ID:      id,
		SQL:     sql,
		Columns: first.Columns,
		Types:   first.Types,
		Params:  spec.Params,
	}
	c.mu.Lock()
	c.stmts[id] = stmt
	c.mu.Unlock()
	out := stmt.info
	return &out, nil
}

// Stmt returns a prepared statement's metadata.
func (c *Coordinator) Stmt(id string) (*server.PrepareResponse, bool) {
	c.mu.Lock()
	stmt, ok := c.stmts[id]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	out := stmt.info
	return &out, true
}

// Exec scatter-gathers one execution of a prepared statement. A replica
// whose server-side statement vanished (expired by its idle-TTL sweep, a
// restart, or it was down at prepare time and a failover just landed on
// it) is transparently re-prepared once and retried; a second miss fails
// that replica's attempt, at which point the ordinary failover machinery
// tries a sibling.
func (c *Coordinator) Exec(ctx context.Context, id string, args []any, opt *server.Options) (*Rows, error) {
	c.mu.Lock()
	stmt, ok := c.stmts[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cluster: no prepared statement %q", id)
	}
	if len(args) != stmt.spec.Params {
		return nil, fmt.Errorf("cluster: statement %s has %d parameters, got %d arguments", id, stmt.spec.Params, len(args))
	}
	return c.scatter(ctx, stmt.spec, func(ctx context.Context, rep *replica) (*server.RowStream, error) {
		opts := c.shardOptions(c.shards[rep.shard], opt)
		if nodeID, ok := stmt.id(rep); ok {
			st, err := rep.client.Exec(ctx, nodeID, args, opts)
			if err == nil || !errIsStmtGone(err) {
				return st, err
			}
		}
		// The replica holds no (live) half of the statement; re-prepare it
		// there and retry once.
		pr, perr := rep.client.Prepare(ctx, stmt.sql, nil)
		if perr != nil {
			return nil, fmt.Errorf("re-preparing expired statement: %w", perr)
		}
		stmt.setID(rep, pr.ID)
		c.repreparations.Add(1)
		return rep.client.Exec(ctx, pr.ID, args, opts)
	})
}

// CloseStmt discards a coordinator-side prepared statement and best-effort
// closes each replica's half (a replica that already expired it returns
// 404, which is the desired end state anyway).
func (c *Coordinator) CloseStmt(ctx context.Context, id string) error {
	c.mu.Lock()
	stmt, ok := c.stmts[id]
	if ok {
		delete(c.stmts, id)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: no prepared statement %q", id)
	}
	stmt.mu.Lock()
	ids := make(map[*replica]string, len(stmt.ids))
	for r, nodeID := range stmt.ids {
		ids[r] = nodeID
	}
	stmt.mu.Unlock()
	var wg sync.WaitGroup
	for r, nodeID := range ids {
		wg.Add(1)
		go func(r *replica, nodeID string) {
			defer wg.Done()
			_ = r.client.CloseStmt(ctx, nodeID)
		}(r, nodeID)
	}
	wg.Wait()
	return nil
}
