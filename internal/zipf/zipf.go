// Package zipf implements the Zipf distribution used by the paper to skew
// fragment cardinalities (§5.4: "To determine fragment cardinality, we use a
// Zipf function [Zipf49] which yields a factor between 0 (no skew) and 1
// (high skew)"). Many real skewed distributions are well modelled by Zipf
// [Lynch88].
package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Harmonic returns the generalized harmonic number H_{n,theta} =
// sum_{i=1..n} i^(-theta). For theta = 0 this is n; for theta = 1 it is the
// ordinary harmonic number.
func Harmonic(n int, theta float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("zipf: Harmonic needs n > 0, got %d", n))
	}
	var h float64
	for i := 1; i <= n; i++ {
		h += math.Pow(float64(i), -theta)
	}
	return h
}

// Weights returns the Zipf probabilities p_i = i^(-theta) / H_{n,theta} for
// i = 1..n, in decreasing order (p_1 is the largest). theta = 0 yields the
// uniform distribution; theta = 1 the paper's "high skew".
func Weights(n int, theta float64) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("zipf: Weights needs n > 0, got %d", n))
	}
	if theta < 0 {
		panic(fmt.Sprintf("zipf: negative skew factor %v", theta))
	}
	h := Harmonic(n, theta)
	w := make([]float64, n)
	for i := 1; i <= n; i++ {
		w[i-1] = math.Pow(float64(i), -theta) / h
	}
	return w
}

// Sizes splits total items into n buckets whose cardinalities follow the
// Zipf weights, using largest-remainder rounding so the sizes sum exactly to
// total. Sizes is how the paper's skewed databases set each fragment's tuple
// count.
func Sizes(total, n int, theta float64) []int {
	if total < 0 {
		panic(fmt.Sprintf("zipf: negative total %d", total))
	}
	w := Weights(n, theta)
	sizes := make([]int, n)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for i, p := range w {
		exact := p * float64(total)
		sizes[i] = int(math.Floor(exact))
		assigned += sizes[i]
		rems[i] = rem{i, exact - math.Floor(exact)}
	}
	// Distribute the remainder to the largest fractional parts; ties break
	// toward lower index so the output stays deterministic and monotone
	// non-increasing.
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; k < total-assigned; k++ {
		sizes[rems[k%n].idx]++
	}
	return sizes
}

// SkewRatio returns Pmax/P for n equally-costed-per-tuple buckets whose
// cardinalities follow Zipf(theta): the ratio of the largest bucket to the
// mean bucket, i.e. n * p_1. The paper's anchor: SkewRatio(200, 1) = 34
// ("With Zipf = 1 and a = 200 buckets, we have Pmax = 34 P").
func SkewRatio(n int, theta float64) float64 {
	return float64(n) * Weights(n, theta)[0]
}

// Sampler draws rank values 1..n with Zipf(theta) probabilities via inverse
// CDF lookup. It is used to generate attribute-value skew (AVS) datasets.
type Sampler struct {
	cdf []float64
	rng *rand.Rand
}

// NewSampler builds a sampler over ranks 1..n with the given skew and seed.
func NewSampler(n int, theta float64, seed int64) *Sampler {
	w := Weights(n, theta)
	cdf := make([]float64, n)
	var acc float64
	for i, p := range w {
		acc += p
		cdf[i] = acc
	}
	cdf[n-1] = 1 // guard against floating point shortfall
	return &Sampler{cdf: cdf, rng: rand.New(rand.NewSource(seed))}
}

// Next returns a rank in [1, n]; rank 1 is the most popular.
func (s *Sampler) Next() int {
	u := s.rng.Float64()
	lo, hi := 0, len(s.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
