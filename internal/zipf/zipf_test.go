package zipf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHarmonicKnownValues(t *testing.T) {
	if got := Harmonic(4, 0); got != 4 {
		t.Errorf("H(4,0) = %v, want 4", got)
	}
	want := 1 + 0.5 + 1.0/3 + 0.25
	if got := Harmonic(4, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("H(4,1) = %v, want %v", got, want)
	}
}

func TestHarmonicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	Harmonic(0, 1)
}

func TestWeightsSumToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.4, 0.6, 0.8, 1} {
		w := Weights(200, theta)
		var sum float64
		for _, p := range w {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta=%v: weights sum to %v", theta, sum)
		}
		for i := 1; i < len(w); i++ {
			if w[i] > w[i-1]+1e-15 {
				t.Fatalf("theta=%v: weights not non-increasing at %d", theta, i)
			}
		}
	}
}

func TestWeightsUniformAtZero(t *testing.T) {
	w := Weights(10, 0)
	for _, p := range w {
		if math.Abs(p-0.1) > 1e-12 {
			t.Fatalf("theta=0 weight = %v, want 0.1", p)
		}
	}
}

// The paper's anchor: with Zipf = 1 and 200 buckets, Pmax = 34 P.
func TestSkewRatioPaperAnchor(t *testing.T) {
	r := SkewRatio(200, 1)
	if math.Abs(r-34) > 0.1 {
		t.Errorf("SkewRatio(200,1) = %v, paper says 34", r)
	}
}

// The paper's nmax anchors (§5.5): nmax = a*P/Pmax = a/SkewRatio, reported
// as 6 (Zipf 1), 19 (0.6) and 40 (0.4) for a = 200. The exact values are
// 5.88, 18.88 and 38.96 — the paper rounds the last one loosely, so we
// assert agreement within one thread.
func TestNmaxPaperAnchors(t *testing.T) {
	cases := []struct {
		theta float64
		want  float64
	}{{1, 6}, {0.6, 19}, {0.4, 40}}
	for _, c := range cases {
		nmax := 200 / SkewRatio(200, c.theta)
		if math.Abs(math.Ceil(nmax)-c.want) > 1 {
			t.Errorf("theta=%v: nmax = %v, paper says %v", c.theta, nmax, c.want)
		}
	}
}

func TestSizesExactTotal(t *testing.T) {
	for _, theta := range []float64{0, 0.3, 0.6, 1} {
		for _, total := range []int{0, 1, 99, 100_000} {
			s := Sizes(total, 200, theta)
			sum := 0
			for _, v := range s {
				sum += v
			}
			if sum != total {
				t.Errorf("theta=%v total=%d: sizes sum to %d", theta, total, sum)
			}
		}
	}
}

func TestSizesUniformWhenNoSkew(t *testing.T) {
	s := Sizes(10_000, 200, 0)
	for i, v := range s {
		if v != 50 {
			t.Fatalf("fragment %d = %d, want 50", i, v)
		}
	}
}

func TestSizesMonotoneForSkew(t *testing.T) {
	s := Sizes(100_000, 200, 1)
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1] {
			t.Fatalf("sizes not non-increasing at %d: %d > %d", i, s[i], s[i-1])
		}
	}
	if s[0] <= s[len(s)-1] {
		t.Error("skewed sizes should differ between head and tail")
	}
}

// Property: Sizes always sums to total and every bucket is non-negative.
func TestSizesProperty(t *testing.T) {
	f := func(totRaw uint16, nRaw uint8, thetaRaw uint8) bool {
		total := int(totRaw)
		n := int(nRaw%100) + 1
		theta := float64(thetaRaw%101) / 100
		s := Sizes(total, n, theta)
		sum := 0
		for _, v := range s {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSamplerDeterministicAndInRange(t *testing.T) {
	a := NewSampler(100, 0.8, 42)
	b := NewSampler(100, 0.8, 42)
	for i := 0; i < 1000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("draw %d: %d != %d with same seed", i, va, vb)
		}
		if va < 1 || va > 100 {
			t.Fatalf("draw out of range: %d", va)
		}
	}
}

func TestSamplerSkewsTowardLowRanks(t *testing.T) {
	s := NewSampler(100, 1, 7)
	counts := make([]int, 101)
	for i := 0; i < 20000; i++ {
		counts[s.Next()]++
	}
	if counts[1] <= counts[100] {
		t.Errorf("rank 1 drawn %d times, rank 100 %d times; expected heavy head", counts[1], counts[100])
	}
	// p_1 should be near 1/H_100(1) ~ 0.192.
	p1 := float64(counts[1]) / 20000
	if math.Abs(p1-0.192) > 0.03 {
		t.Errorf("empirical p1 = %v, want ~0.192", p1)
	}
}
