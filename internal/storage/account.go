package storage

import (
	"sync/atomic"

	"dbs3/internal/relation"
)

// tupleOverhead approximates the in-memory cost of a resident tuple beyond
// its encoded payload: the slice header, the Value boxes, and the pointers
// an operator's index keeps per entry. The accountant charges encoded size
// plus this constant, so the grant governs real footprint, not wire bytes.
const tupleOverhead = 48

// TupleFootprint estimates the resident bytes a tuple costs a blocking
// operator that keeps it.
func TupleFootprint(t relation.Tuple) int64 {
	return int64(EncodedSize(t)) + tupleOverhead
}

// Accountant tracks a query's working-set bytes against its memory grant.
// Blocking operators (join build sides, aggregate groups, stage stores)
// Reserve bytes as they retain state; when Reserve reports the grant
// exceeded, the operator spills part of its state to disk and Releases what
// it freed. A nil accountant (or a grant <= 0) never triggers spill — the
// paper's memory-resident regime.
//
// Reserve is deliberately not an acquire/block primitive: the answer to an
// overrun is spilling, never waiting, so memory pressure cannot introduce a
// second blocking resource and the admission layer's deadlock-freedom
// argument (threads and memory granted atomically, no hold-and-wait)
// survives inside the operators too.
type Accountant struct {
	grant        atomic.Int64
	used         atomic.Int64
	spilledBytes atomic.Int64
	spillPasses  atomic.Int64
}

// NewAccountant returns an accountant enforcing the given grant in bytes.
// grant <= 0 means unlimited.
func NewAccountant(grant int64) *Accountant {
	a := &Accountant{}
	a.grant.Store(grant)
	return a
}

// Grant returns the current grant in bytes (<= 0 = unlimited).
func (a *Accountant) Grant() int64 {
	if a == nil {
		return 0
	}
	return a.grant.Load()
}

// SetGrant renegotiates the grant, e.g. when admission shrinks the
// reservation at a chain boundary. Operators observe the new ceiling at
// their next Reserve.
func (a *Accountant) SetGrant(n int64) {
	if a != nil {
		a.grant.Store(n)
	}
}

// Reserve charges n bytes and reports whether the working set still fits
// the grant. The charge sticks either way: a caller that reacts to false by
// spilling must Release the bytes it actually freed.
func (a *Accountant) Reserve(n int64) bool {
	if a == nil {
		return true
	}
	used := a.used.Add(n)
	g := a.grant.Load()
	return g <= 0 || used <= g
}

// Release returns n bytes to the grant.
func (a *Accountant) Release(n int64) {
	if a != nil {
		a.used.Add(-n)
	}
}

// Used returns the currently charged bytes.
func (a *Accountant) Used() int64 {
	if a == nil {
		return 0
	}
	return a.used.Load()
}

// NoteSpill records bytes written to spill storage.
func (a *Accountant) NoteSpill(bytes int64) {
	if a != nil {
		a.spilledBytes.Add(bytes)
	}
}

// NotePass records one spill pass — a partitioning or run-writing sweep
// over an operator's state. Recursive repartitioning counts once per level.
func (a *Accountant) NotePass() {
	if a != nil {
		a.spillPasses.Add(1)
	}
}

// Spilled returns cumulative (bytes written to spill files, spill passes).
func (a *Accountant) Spilled() (bytes, passes int64) {
	if a == nil {
		return 0, 0
	}
	return a.spilledBytes.Load(), a.spillPasses.Load()
}

// PoolMetrics aggregates buffer-pool counters across pools — one per
// spilling query — into process-lifetime figures a /stats endpoint can
// report. All fields are atomics; a nil receiver is a no-op sink.
type PoolMetrics struct {
	Hits     atomic.Int64
	Misses   atomic.Int64
	Resident atomic.Int64
}

func (m *PoolMetrics) hit() {
	if m != nil {
		m.Hits.Add(1)
	}
}

func (m *PoolMetrics) miss() {
	if m != nil {
		m.Misses.Add(1)
	}
}

func (m *PoolMetrics) resident(delta int64) {
	if m != nil {
		m.Resident.Add(delta)
	}
}

// Snapshot returns (hits, misses, resident).
func (m *PoolMetrics) Snapshot() (hits, misses, resident int64) {
	if m == nil {
		return 0, 0, 0
	}
	return m.Hits.Load(), m.Misses.Load(), m.Resident.Load()
}
