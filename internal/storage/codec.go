// Package storage provides the disk substrate under DBS3's parallel storage
// model: a tuple codec, slotted pages, simulated disks with I/O accounting,
// an LRU buffer pool, and a catalog of partitioned relations. The paper ran
// with relations cached in memory (its KSR1 had one disk), but the storage
// model — fragments placed round-robin on disks — is part of the system, so
// we implement it fully and let experiments warm the cache first.
package storage

import (
	"encoding/binary"
	"fmt"

	"dbs3/internal/relation"
)

// Value wire format: 1 tag byte (0 = int, 1 = string), then either an 8-byte
// little-endian integer or a 4-byte length followed by the string bytes.
const (
	tagInt    byte = 0
	tagString byte = 1
)

// EncodedSize returns the number of bytes EncodeTuple will produce.
func EncodedSize(t relation.Tuple) int {
	n := 2 // uint16 column count
	for _, v := range t {
		if v.Kind() == relation.TInt {
			n += 1 + 8
		} else {
			n += 1 + 4 + len(v.AsString())
		}
	}
	return n
}

// EncodeTuple appends the wire form of t to dst and returns the result.
func EncodeTuple(dst []byte, t relation.Tuple) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(t)))
	for _, v := range t {
		if v.Kind() == relation.TInt {
			dst = append(dst, tagInt)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.AsInt()))
		} else {
			s := v.AsString()
			dst = append(dst, tagString)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
			dst = append(dst, s...)
		}
	}
	return dst
}

// DecodeTuple parses one tuple from buf, returning the tuple and the number
// of bytes consumed.
func DecodeTuple(buf []byte) (relation.Tuple, int, error) {
	if len(buf) < 2 {
		return nil, 0, fmt.Errorf("storage: truncated tuple header")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	off := 2
	t := make(relation.Tuple, 0, n)
	for i := 0; i < n; i++ {
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("storage: truncated tuple at column %d", i)
		}
		tag := buf[off]
		off++
		switch tag {
		case tagInt:
			if off+8 > len(buf) {
				return nil, 0, fmt.Errorf("storage: truncated int at column %d", i)
			}
			t = append(t, relation.Int(int64(binary.LittleEndian.Uint64(buf[off:]))))
			off += 8
		case tagString:
			if off+4 > len(buf) {
				return nil, 0, fmt.Errorf("storage: truncated string length at column %d", i)
			}
			l := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if off+l > len(buf) {
				return nil, 0, fmt.Errorf("storage: truncated string at column %d", i)
			}
			t = append(t, relation.Str(string(buf[off:off+l])))
			off += l
		default:
			return nil, 0, fmt.Errorf("storage: unknown value tag %d at column %d", tag, i)
		}
	}
	return t, off, nil
}
