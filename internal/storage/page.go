package storage

import (
	"encoding/binary"
	"fmt"

	"dbs3/internal/relation"
)

// PageSize is the fixed page size in bytes. 8 KB is the classic choice.
const PageSize = 8192

// Page is a slotted data page. Layout:
//
//	[0:2)   uint16 tuple count
//	[2:..)  tuple payloads, appended front to back
//	[..:]   slot directory at the tail: one uint16 offset per tuple,
//	        growing backward from the end of the page
//
// The zero value is unusable; use NewPage.
type Page struct {
	buf  []byte
	free int // offset of the first free payload byte
}

// NewPage returns an empty page.
func NewPage() *Page {
	return &Page{buf: make([]byte, PageSize), free: 2}
}

// Count returns the number of tuples on the page.
func (p *Page) Count() int { return int(binary.LittleEndian.Uint16(p.buf)) }

func (p *Page) setCount(n int) { binary.LittleEndian.PutUint16(p.buf, uint16(n)) }

// slotOffset returns the byte position of slot i's directory entry.
func (p *Page) slotOffset(i int) int { return PageSize - 2*(i+1) }

// Insert appends a tuple to the page. It reports false (without modifying
// the page) when the tuple plus its slot entry does not fit.
func (p *Page) Insert(t relation.Tuple) bool {
	need := EncodedSize(t)
	n := p.Count()
	// Payload must stay below the slot directory, which will grow by 2.
	if p.free+need > p.slotOffset(n) {
		return false
	}
	start := p.free
	out := EncodeTuple(p.buf[:p.free], t)
	p.free = len(out)
	binary.LittleEndian.PutUint16(p.buf[p.slotOffset(n):], uint16(start))
	p.setCount(n + 1)
	return true
}

// Tuple decodes the i-th tuple on the page.
func (p *Page) Tuple(i int) (relation.Tuple, error) {
	if i < 0 || i >= p.Count() {
		return nil, fmt.Errorf("storage: slot %d out of range (page has %d)", i, p.Count())
	}
	off := int(binary.LittleEndian.Uint16(p.buf[p.slotOffset(i):]))
	t, _, err := DecodeTuple(p.buf[off:])
	return t, err
}

// Tuples decodes every tuple on the page in slot order.
func (p *Page) Tuples() ([]relation.Tuple, error) {
	out := make([]relation.Tuple, 0, p.Count())
	for i := 0; i < p.Count(); i++ {
		t, err := p.Tuple(i)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Bytes exposes the raw page image (for the disk layer). Callers must not
// mutate it.
func (p *Page) Bytes() []byte { return p.buf }

// PageFromBytes adopts a raw 8 KB image as a page.
func PageFromBytes(b []byte) (*Page, error) {
	if len(b) != PageSize {
		return nil, fmt.Errorf("storage: page image is %d bytes, want %d", len(b), PageSize)
	}
	p := &Page{buf: b}
	// Recompute the free pointer: past the end of the highest payload.
	p.free = 2
	for i := 0; i < p.Count(); i++ {
		off := int(binary.LittleEndian.Uint16(p.buf[p.slotOffset(i):]))
		if off >= PageSize {
			return nil, fmt.Errorf("storage: corrupt slot %d offset %d", i, off)
		}
		_, n, err := DecodeTuple(p.buf[off:])
		if err != nil {
			return nil, err
		}
		if off+n > p.free {
			p.free = off + n
		}
	}
	return p, nil
}
