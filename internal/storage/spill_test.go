package storage

import (
	"os"
	"testing"

	"dbs3/internal/relation"
)

func spillTuple(k int64) relation.Tuple {
	return relation.NewTuple(relation.Int(k), relation.Str("pad-pad-pad-pad"))
}

func TestRunWriterRoundTrip(t *testing.T) {
	env, err := NewSpillEnv(t.TempDir(), 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	w := env.NewRun()
	const n = 2000 // several pages worth
	for i := int64(0); i < n; i++ {
		if err := w.Add(spillTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run.Len() != n {
		t.Fatalf("run length = %d, want %d", run.Len(), n)
	}
	if run.Bytes() <= PageSize {
		t.Fatalf("run bytes = %d, want multiple pages", run.Bytes())
	}
	// Each preserves write order and content.
	next := int64(0)
	err = run.Each(func(tup relation.Tuple) error {
		if tup[0].AsInt() != next {
			t.Fatalf("tuple %d out of order: %v", next, tup)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("Each visited %d tuples, want %d", next, n)
	}
	// Cursor agrees with All.
	all, err := run.All()
	if err != nil {
		t.Fatal(err)
	}
	cur := run.Cursor()
	for i := range all {
		tup, ok, err := cur.Next()
		if err != nil || !ok {
			t.Fatalf("cursor stopped at %d: %v", i, err)
		}
		if tup.Compare(all[i]) != 0 {
			t.Fatalf("cursor tuple %d = %v, All = %v", i, tup, all[i])
		}
	}
	if _, ok, _ := cur.Next(); ok {
		t.Fatal("cursor yielded past the end")
	}
}

func TestSpillEnvCloseRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	env, err := NewSpillEnv(dir, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		w := env.NewRun()
		for i := int64(0); i < 500; i++ {
			if err := w.Add(spillTuple(i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := w.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no spill files created")
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after Close: %d entries", len(ents))
	}
	if err := env.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestAccountantSemantics(t *testing.T) {
	var nilAcc *Accountant
	if !nilAcc.Reserve(100) {
		t.Error("nil accountant must admit everything")
	}
	nilAcc.Release(100) // must not panic

	a := NewAccountant(100)
	if !a.Reserve(60) {
		t.Error("60 of 100 must fit")
	}
	if a.Reserve(60) {
		t.Error("120 of 100 must not fit")
	}
	// The charge sticks either way — the caller spills and releases.
	if a.Used() != 120 {
		t.Errorf("used = %d, want 120 (charge sticks)", a.Used())
	}
	a.Release(120)
	if a.Used() != 0 {
		t.Errorf("used = %d after release, want 0", a.Used())
	}
	// Grant <= 0 is unlimited.
	a.SetGrant(0)
	if !a.Reserve(1 << 40) {
		t.Error("unlimited grant rejected a reservation")
	}
	a.Release(1 << 40)
	// Spill counters accumulate.
	a.NoteSpill(PageSize)
	a.NoteSpill(PageSize)
	a.NotePass()
	bytes, passes := a.Spilled()
	if bytes != 2*PageSize || passes != 1 {
		t.Errorf("spilled = (%d, %d), want (%d, 1)", bytes, passes, 2*PageSize)
	}
}

func TestTupleFootprint(t *testing.T) {
	tup := spillTuple(7)
	if f := TupleFootprint(tup); f <= int64(len(tup)) {
		t.Errorf("footprint %d does not cover overhead", f)
	}
}
