package storage

import (
	"fmt"
	"sync"
)

// PageID addresses a page: which disk and which slot on that disk.
type PageID struct {
	Disk int
	Slot int
}

// String renders the page id as "d<disk>:p<slot>".
func (id PageID) String() string { return fmt.Sprintf("d%d:p%d", id.Disk, id.Slot) }

// Disk is a simulated disk: an append-only array of page images with read
// and write counters. Counters let experiments account for sequential-disk
// behaviour (the paper's KSR1 had a single shared disk, which is why all
// measurements ran memory-resident).
type Disk struct {
	mu     sync.Mutex
	pages  [][]byte
	reads  int
	writes int
}

// NewDisk returns an empty disk.
func NewDisk() *Disk { return &Disk{} }

// Append writes a new page to the disk and returns its slot number.
func (d *Disk) Append(img []byte) (int, error) {
	if len(img) != PageSize {
		return 0, fmt.Errorf("storage: page image is %d bytes, want %d", len(img), PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := make([]byte, PageSize)
	copy(cp, img)
	d.pages = append(d.pages, cp)
	d.writes++
	return len(d.pages) - 1, nil
}

// Read returns a copy of the page at slot.
func (d *Disk) Read(slot int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if slot < 0 || slot >= len(d.pages) {
		return nil, fmt.Errorf("storage: read of slot %d on disk with %d pages", slot, len(d.pages))
	}
	d.reads++
	cp := make([]byte, PageSize)
	copy(cp, d.pages[slot])
	return cp, nil
}

// Pages returns the number of pages on the disk.
func (d *Disk) Pages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// Stats returns cumulative (reads, writes).
func (d *Disk) Stats() (reads, writes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// Array is a fixed set of disks, addressed by PageID.Disk.
type Array struct {
	disks []*Disk
}

// NewArray creates n empty disks.
func NewArray(n int) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("storage: disk array needs at least one disk, got %d", n)
	}
	ds := make([]*Disk, n)
	for i := range ds {
		ds[i] = NewDisk()
	}
	return &Array{disks: ds}, nil
}

// Len returns the number of disks.
func (a *Array) Len() int { return len(a.disks) }

// Disk returns disk i.
func (a *Array) Disk(i int) *Disk { return a.disks[i] }

// Write appends a page image to the given disk and returns its PageID.
func (a *Array) Write(disk int, img []byte) (PageID, error) {
	if disk < 0 || disk >= len(a.disks) {
		return PageID{}, fmt.Errorf("storage: disk %d out of range [0,%d)", disk, len(a.disks))
	}
	slot, err := a.disks[disk].Append(img)
	if err != nil {
		return PageID{}, err
	}
	return PageID{Disk: disk, Slot: slot}, nil
}

// Read fetches the page image at id.
func (a *Array) Read(id PageID) ([]byte, error) {
	if id.Disk < 0 || id.Disk >= len(a.disks) {
		return nil, fmt.Errorf("storage: disk %d out of range [0,%d)", id.Disk, len(a.disks))
	}
	return a.disks[id.Disk].Read(id.Slot)
}
