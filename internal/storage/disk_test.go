package storage

import (
	"sync"
	"testing"
)

func TestDiskAppendRead(t *testing.T) {
	d := NewDisk()
	img := make([]byte, PageSize)
	img[0] = 0xAB
	slot, err := d.Append(img)
	if err != nil || slot != 0 {
		t.Fatalf("Append = %d, %v", slot, err)
	}
	img[0] = 0xCD // mutate caller copy; disk must have its own
	got, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Error("disk shares storage with caller")
	}
	got[0] = 0xEF // mutate returned copy; disk must be unaffected
	again, _ := d.Read(0)
	if again[0] != 0xAB {
		t.Error("Read returns aliased storage")
	}
	r, w := d.Stats()
	if r != 2 || w != 1 {
		t.Errorf("stats = %d reads, %d writes", r, w)
	}
}

func TestDiskErrors(t *testing.T) {
	d := NewDisk()
	if _, err := d.Append(make([]byte, 10)); err == nil {
		t.Error("short page accepted")
	}
	if _, err := d.Read(0); err == nil {
		t.Error("read of empty disk accepted")
	}
	if _, err := d.Read(-1); err == nil {
		t.Error("negative slot accepted")
	}
}

func TestDiskConcurrentAppend(t *testing.T) {
	d := NewDisk()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := d.Append(make([]byte, PageSize)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if d.Pages() != 400 {
		t.Errorf("Pages = %d, want 400", d.Pages())
	}
}

func TestArray(t *testing.T) {
	a, err := NewArray(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	img := make([]byte, PageSize)
	img[1] = 7
	id, err := a.Write(2, img)
	if err != nil {
		t.Fatal(err)
	}
	if id.Disk != 2 || id.Slot != 0 {
		t.Errorf("id = %v", id)
	}
	got, err := a.Read(id)
	if err != nil || got[1] != 7 {
		t.Errorf("Read = %v, %v", got[1], err)
	}
	if _, err := a.Write(9, img); err == nil {
		t.Error("out-of-range disk accepted")
	}
	if _, err := a.Read(PageID{Disk: -1}); err == nil {
		t.Error("negative disk accepted")
	}
	if _, err := NewArray(0); err == nil {
		t.Error("empty array accepted")
	}
	if id.String() != "d2:p0" {
		t.Errorf("PageID.String = %q", id.String())
	}
}
