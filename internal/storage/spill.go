package storage

import (
	"fmt"
	"os"
	"sync"

	"dbs3/internal/relation"
)

// Larger-than-memory execution: when a blocking operator exceeds its memory
// grant it writes state to spill files — real OS temp files of PageSize
// slotted pages — and reads it back through a BufferPool. A query's spill
// files form a SpillSet addressed exactly like the simulated disk Array
// (PageID.Disk = file index, PageID.Slot = page within the file), so the
// pool, page, and codec layers serve both regimes unchanged.

// SpillFile is one append-only temp file of PageSize pages. It is removed
// from the filesystem on Close; Close is idempotent and safe on the
// error/cancel path.
type SpillFile struct {
	mu     sync.Mutex
	f      *os.File
	name   string
	pages  int
	closed bool
}

func newSpillFile(dir string) (*SpillFile, error) {
	f, err := os.CreateTemp(dir, "dbs3-spill-*.pages")
	if err != nil {
		return nil, fmt.Errorf("storage: creating spill file: %w", err)
	}
	return &SpillFile{f: f, name: f.Name()}, nil
}

// Append writes a page image at the end of the file and returns its slot.
func (s *SpillFile) Append(img []byte) (int, error) {
	if len(img) != PageSize {
		return 0, fmt.Errorf("storage: spill page image is %d bytes, want %d", len(img), PageSize)
	}
	// Reserve the slot under the lock; write outside it. Holding the
	// mutex across WriteAt would convoy concurrent readers of other
	// slots behind this write's disk latency (the BufferPool.Get bug
	// class). WriteAt on distinct offsets is safe concurrently, and a
	// failed write just leaves a hole the caller never hands out —
	// spill errors abandon the whole SpillSet.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("storage: append to closed spill file %s", s.name)
	}
	slot := s.pages
	s.pages++
	f := s.f
	s.mu.Unlock()
	if _, err := f.WriteAt(img, int64(slot)*PageSize); err != nil {
		return 0, fmt.Errorf("storage: writing spill page: %w", err)
	}
	return slot, nil
}

// Read returns the page image at slot. The bounds check happens under the
// lock, the disk read outside it, so concurrent readers never serialize
// behind one another's I/O. A Close racing the read surfaces as a read
// error (closed descriptor), which only happens on the cancel/error path
// where the result is already discarded.
func (s *SpillFile) Read(slot int) ([]byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("storage: read of closed spill file %s", s.name)
	}
	if slot < 0 || slot >= s.pages {
		pages := s.pages
		s.mu.Unlock()
		return nil, fmt.Errorf("storage: read of slot %d in spill file with %d pages", slot, pages)
	}
	f := s.f
	s.mu.Unlock()
	img := make([]byte, PageSize)
	if _, err := f.ReadAt(img, int64(slot)*PageSize); err != nil {
		return nil, fmt.Errorf("storage: reading spill page: %w", err)
	}
	return img, nil
}

// Pages returns the number of pages written.
func (s *SpillFile) Pages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages
}

// Close closes the descriptor and removes the file. Idempotent.
func (s *SpillFile) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Close()
	if rmErr := os.Remove(s.name); err == nil {
		err = rmErr
	}
	return err
}

// SpillSet is a query's collection of spill files, addressed like a disk
// array: PageID.Disk indexes the file, PageID.Slot the page within it. It
// satisfies PageReader so a BufferPool can cache read-back.
type SpillSet struct {
	dir string

	mu     sync.Mutex
	files  []*SpillFile
	closed bool
	bytes  int64 // page bytes written across all files
}

// NewSpillSet creates an empty set writing temp files under dir ("" =
// os.TempDir()).
func NewSpillSet(dir string) *SpillSet { return &SpillSet{dir: dir} }

// newFile opens a fresh spill file and returns it with its disk index.
func (s *SpillSet) newFile() (*SpillFile, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, fmt.Errorf("storage: spill set already closed")
	}
	f, err := newSpillFile(s.dir)
	if err != nil {
		return nil, 0, err
	}
	s.files = append(s.files, f)
	return f, len(s.files) - 1, nil
}

// Read fetches the page image at id, satisfying PageReader.
func (s *SpillSet) Read(id PageID) ([]byte, error) {
	s.mu.Lock()
	if id.Disk < 0 || id.Disk >= len(s.files) {
		n := len(s.files)
		s.mu.Unlock()
		return nil, fmt.Errorf("storage: spill file %d out of range [0,%d)", id.Disk, n)
	}
	f := s.files[id.Disk]
	s.mu.Unlock()
	return f.Read(id.Slot)
}

// Bytes returns the total page bytes written to the set.
func (s *SpillSet) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Files returns the number of spill files opened.
func (s *SpillSet) Files() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// Close closes and removes every spill file. Idempotent; called on query
// completion, error, and cancellation alike, so a query aborted mid-spill
// leaves no temp files or descriptors behind.
func (s *SpillSet) Close() error {
	s.mu.Lock()
	files := s.files
	s.files = nil
	s.closed = true
	s.mu.Unlock()
	var first error
	for _, f := range files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SpillEnv bundles a query's larger-than-memory resources: the accountant
// enforcing its memory grant, the temp-file set, and a buffer pool for
// read-back. The engine threads one env through every blocking operator of
// a query; Close on any exit path (success, error, cancel) removes all
// spill state.
type SpillEnv struct {
	Mem  *Accountant
	Set  *SpillSet
	Pool *BufferPool
}

// PoolPagesFor sizes a query's read-back buffer pool from its memory grant:
// a quarter of the grant in pages, within [8, 256] — the pool caches spilled
// pages, so it must stay small next to the grant itself.
func PoolPagesFor(grant int64) int {
	p := int(grant / PageSize / 4)
	if p < 8 {
		p = 8
	}
	if p > 256 {
		p = 256
	}
	return p
}

// NewSpillEnv creates an env with the given memory grant (bytes), temp dir
// ("" = os.TempDir()), and read-back pool capacity in pages (<= 0 picks a
// small default).
func NewSpillEnv(dir string, grant int64, poolPages int, metrics *PoolMetrics) (*SpillEnv, error) {
	if poolPages <= 0 {
		poolPages = 16
	}
	set := NewSpillSet(dir)
	pool, err := NewBufferPool(set, poolPages)
	if err != nil {
		return nil, err
	}
	pool.SetMetrics(metrics)
	return &SpillEnv{Mem: NewAccountant(grant), Set: set, Pool: pool}, nil
}

// Close tears down the env: drops cached pages and removes every spill
// file. Idempotent.
func (e *SpillEnv) Close() error {
	if e == nil {
		return nil
	}
	e.Pool.Close()
	return e.Set.Close()
}

// Spilled returns the query's cumulative (bytes, passes).
func (e *SpillEnv) Spilled() (bytes, passes int64) {
	if e == nil {
		return 0, 0
	}
	return e.Mem.Spilled()
}

// NewRun starts a run writer in the env's set.
func (e *SpillEnv) NewRun() *RunWriter { return &RunWriter{env: e} }

// RunWriter packs tuples into slotted pages appended to one spill file (one
// file per run, so a run's pages are slots 0..Pages-1 of its file). Writers
// are not safe for concurrent use; operators guard them with their own
// locks.
type RunWriter struct {
	env    *SpillEnv
	file   *SpillFile
	disk   int
	page   *Page
	tuples int
}

// Add appends a tuple to the run.
func (w *RunWriter) Add(t relation.Tuple) error {
	if w.file == nil {
		f, disk, err := w.env.Set.newFile()
		if err != nil {
			return err
		}
		w.file, w.disk = f, disk
	}
	if w.page == nil {
		w.page = NewPage()
	}
	if !w.page.Insert(t) {
		if w.page.Count() == 0 {
			return fmt.Errorf("storage: tuple of %d bytes exceeds spill page capacity", EncodedSize(t))
		}
		if err := w.flush(); err != nil {
			return err
		}
		if !w.page.Insert(t) {
			return fmt.Errorf("storage: tuple of %d bytes exceeds spill page capacity", EncodedSize(t))
		}
	}
	w.tuples++
	return nil
}

func (w *RunWriter) flush() error {
	if _, err := w.file.Append(w.page.Bytes()); err != nil {
		return err
	}
	w.env.Set.mu.Lock()
	w.env.Set.bytes += PageSize
	w.env.Set.mu.Unlock()
	w.env.Mem.NoteSpill(PageSize)
	w.page = NewPage()
	return nil
}

// Finish flushes the partial page and returns the completed run.
func (w *RunWriter) Finish() (Run, error) {
	if w.page != nil && w.page.Count() > 0 {
		if err := w.flush(); err != nil {
			return Run{}, err
		}
	}
	r := Run{env: w.env, disk: w.disk, tuples: w.tuples}
	if w.file != nil {
		r.pages = w.file.Pages()
	}
	return r, nil
}

// Tuples returns the number of tuples added so far.
func (w *RunWriter) Tuples() int { return w.tuples }

// Run is a finished sequence of spilled tuples, readable in write order
// through the env's buffer pool.
type Run struct {
	env    *SpillEnv
	disk   int
	pages  int
	tuples int
}

// Empty reports whether the run holds no tuples.
func (r Run) Empty() bool { return r.tuples == 0 }

// Len returns the number of tuples in the run.
func (r Run) Len() int { return r.tuples }

// Bytes returns the run's on-disk size.
func (r Run) Bytes() int64 { return int64(r.pages) * PageSize }

// Each calls f for every tuple in write order, reading pages through the
// env's buffer pool.
func (r Run) Each(f func(t relation.Tuple) error) error {
	for slot := 0; slot < r.pages; slot++ {
		p, err := r.env.Pool.Get(PageID{Disk: r.disk, Slot: slot})
		if err != nil {
			return err
		}
		for i := 0; i < p.Count(); i++ {
			t, err := p.Tuple(i)
			if err != nil {
				return err
			}
			if err := f(t); err != nil {
				return err
			}
		}
	}
	return nil
}

// All reads the whole run back into memory.
func (r Run) All() ([]relation.Tuple, error) {
	out := make([]relation.Tuple, 0, r.tuples)
	err := r.Each(func(t relation.Tuple) error {
		out = append(out, t)
		return nil
	})
	return out, err
}

// Cursor returns a streaming reader over the run for k-way merges.
func (r Run) Cursor() *RunCursor { return &RunCursor{run: r} }

// RunCursor streams a run one page at a time.
type RunCursor struct {
	run    Run
	slot   int
	tuples []relation.Tuple
	pos    int
	cur    relation.Tuple
}

// Next advances to the next tuple, reporting false at the end of the run or
// on error (check Err).
func (c *RunCursor) Next() (relation.Tuple, bool, error) {
	for c.pos >= len(c.tuples) {
		if c.slot >= c.run.pages {
			return nil, false, nil
		}
		p, err := c.run.env.Pool.Get(PageID{Disk: c.run.disk, Slot: c.slot})
		if err != nil {
			return nil, false, err
		}
		c.slot++
		c.tuples, err = p.Tuples()
		if err != nil {
			return nil, false, err
		}
		c.pos = 0
	}
	t := c.tuples[c.pos]
	c.pos++
	return t, true, nil
}
