package storage

import (
	"testing"
	"testing/quick"

	"dbs3/internal/relation"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []relation.Tuple{
		{},
		relation.NewTuple(relation.Int(0)),
		relation.NewTuple(relation.Int(-1), relation.Int(1<<62)),
		relation.NewTuple(relation.Str("")),
		relation.NewTuple(relation.Str("hello"), relation.Int(42), relation.Str("world")),
	}
	for _, in := range cases {
		buf := EncodeTuple(nil, in)
		if len(buf) != EncodedSize(in) {
			t.Errorf("EncodedSize(%v) = %d, encoded %d bytes", in, EncodedSize(in), len(buf))
		}
		out, n, err := DecodeTuple(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if n != len(buf) {
			t.Errorf("decode consumed %d of %d bytes", n, len(buf))
		}
		if !in.Equal(out) {
			t.Errorf("round trip: %v -> %v", in, out)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	// Truncated header.
	if _, _, err := DecodeTuple([]byte{1}); err == nil {
		t.Error("truncated header accepted")
	}
	// Claims one column, no payload.
	if _, _, err := DecodeTuple([]byte{1, 0}); err == nil {
		t.Error("missing column accepted")
	}
	// Unknown tag.
	if _, _, err := DecodeTuple([]byte{1, 0, 99}); err == nil {
		t.Error("unknown tag accepted")
	}
	// Truncated int payload.
	if _, _, err := DecodeTuple([]byte{1, 0, tagInt, 1, 2}); err == nil {
		t.Error("truncated int accepted")
	}
	// Truncated string length.
	if _, _, err := DecodeTuple([]byte{1, 0, tagString, 5}); err == nil {
		t.Error("truncated string length accepted")
	}
	// String length exceeding buffer.
	buf := EncodeTuple(nil, relation.NewTuple(relation.Str("abcdef")))
	if _, _, err := DecodeTuple(buf[:len(buf)-2]); err == nil {
		t.Error("truncated string body accepted")
	}
}

// Property: any int/string tuple round-trips through the codec.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(a int64, s string, b int64) bool {
		in := relation.NewTuple(relation.Int(a), relation.Str(s), relation.Int(b))
		out, n, err := DecodeTuple(EncodeTuple(nil, in))
		return err == nil && n == EncodedSize(in) && in.Equal(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encoding appends to dst without disturbing existing bytes.
func TestEncodeAppendsProperty(t *testing.T) {
	f := func(prefix []byte, a int64) bool {
		in := relation.NewTuple(relation.Int(a))
		out := EncodeTuple(append([]byte(nil), prefix...), in)
		if len(out) != len(prefix)+EncodedSize(in) {
			return false
		}
		for i := range prefix {
			if out[i] != prefix[i] {
				return false
			}
		}
		dec, _, err := DecodeTuple(out[len(prefix):])
		return err == nil && dec.Equal(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
