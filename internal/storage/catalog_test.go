package storage

import (
	"testing"

	"dbs3/internal/partition"
	"dbs3/internal/relation"
)

func storedWisconsin(t *testing.T, n, degree, disks int) (*Catalog, *partition.Partitioned) {
	t.Helper()
	r := relation.Wisconsin("A", n, 9)
	h, err := partition.NewHash(r.Schema, []string{"unique2"}, degree)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Partition(r, h, disks)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCatalog(disks, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Store(p); err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestCatalogStoreLoadRoundTrip(t *testing.T) {
	c, p := storedWisconsin(t, 500, 8, 3)
	got, err := c.Load("A")
	if err != nil {
		t.Fatal(err)
	}
	if got.Degree() != 8 {
		t.Fatalf("Degree = %d", got.Degree())
	}
	if !got.Union().EqualMultiset(p.Union()) {
		t.Error("load differs from stored relation")
	}
	// Fragment contents (not just the union) must match exactly.
	for i := range p.Fragments {
		if len(got.Fragments[i]) != len(p.Fragments[i]) {
			t.Fatalf("fragment %d size %d, want %d", i, len(got.Fragments[i]), len(p.Fragments[i]))
		}
		for j := range p.Fragments[i] {
			if !got.Fragments[i][j].Equal(p.Fragments[i][j]) {
				t.Fatalf("fragment %d tuple %d differs", i, j)
			}
		}
	}
}

func TestCatalogFragmentsOnAssignedDisks(t *testing.T) {
	c, p := storedWisconsin(t, 300, 6, 2)
	sr, err := c.Lookup("A")
	if err != nil {
		t.Fatal(err)
	}
	for i, pages := range sr.FragmentPages {
		for _, id := range pages {
			if id.Disk != p.Disk[i] {
				t.Errorf("fragment %d page on disk %d, want %d", i, id.Disk, p.Disk[i])
			}
		}
	}
}

func TestCatalogDuplicateAndMissing(t *testing.T) {
	c, p := storedWisconsin(t, 50, 2, 1)
	if _, err := c.Store(p); err == nil {
		t.Error("duplicate store accepted")
	}
	if _, err := c.Lookup("absent"); err == nil {
		t.Error("missing relation lookup accepted")
	}
	if _, err := c.Load("absent"); err == nil {
		t.Error("missing relation load accepted")
	}
	names := c.Names()
	if len(names) != 1 || names[0] != "A" {
		t.Errorf("Names = %v", names)
	}
}

func TestCatalogScanFragmentBounds(t *testing.T) {
	c, _ := storedWisconsin(t, 50, 2, 1)
	sr, _ := c.Lookup("A")
	if _, err := c.ScanFragment(sr, -1); err == nil {
		t.Error("negative fragment accepted")
	}
	if _, err := c.ScanFragment(sr, 2); err == nil {
		t.Error("out-of-range fragment accepted")
	}
}

func TestCatalogCardinality(t *testing.T) {
	c, _ := storedWisconsin(t, 123, 4, 2)
	sr, _ := c.Lookup("A")
	if sr.Cardinality() != 123 {
		t.Errorf("Cardinality = %d", sr.Cardinality())
	}
	if sr.Degree() != 4 {
		t.Errorf("Degree = %d", sr.Degree())
	}
}

func TestCatalogMultiPageFragments(t *testing.T) {
	// Wisconsin tuples are ~220 bytes; 500 tuples in one fragment needs
	// multiple 8 KB pages.
	r := relation.Wisconsin("B", 500, 3)
	p, err := partition.FromFragments("B", r.Schema, nil, [][]relation.Tuple{r.Tuples}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewCatalog(1, 256)
	sr, err := c.Store(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.FragmentPages[0]) < 2 {
		t.Fatalf("expected multi-page fragment, got %d pages", len(sr.FragmentPages[0]))
	}
	ts, err := c.ScanFragment(sr, 0)
	if err != nil || len(ts) != 500 {
		t.Fatalf("scan returned %d tuples, err %v", len(ts), err)
	}
	for i := range ts {
		if !ts[i].Equal(r.Tuples[i]) {
			t.Fatalf("tuple %d differs after disk round trip", i)
		}
	}
}

func TestCatalogValidation(t *testing.T) {
	if _, err := NewCatalog(0, 10); err == nil {
		t.Error("zero disks accepted")
	}
	if _, err := NewCatalog(1, 0); err == nil {
		t.Error("zero buffer accepted")
	}
}
