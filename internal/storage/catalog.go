package storage

import (
	"fmt"
	"sync"

	"dbs3/internal/partition"
	"dbs3/internal/relation"
)

// StoredRelation is a partitioned relation materialized on the disk array:
// each fragment is a list of page ids on its (round-robin assigned) disk.
type StoredRelation struct {
	Name   string
	Schema *relation.Schema
	Key    []string
	// FragmentPages[i] lists the pages of fragment i in scan order.
	FragmentPages [][]PageID
	// FragmentCard[i] caches fragment i's tuple count.
	FragmentCard []int
}

// Degree returns the relation's degree of partitioning.
func (s *StoredRelation) Degree() int { return len(s.FragmentPages) }

// Cardinality returns the total tuple count.
func (s *StoredRelation) Cardinality() int {
	n := 0
	for _, c := range s.FragmentCard {
		n += c
	}
	return n
}

// Catalog names the stored relations of a database and owns the disk array
// and buffer pool they live on.
type Catalog struct {
	mu        sync.RWMutex
	array     *Array
	pool      *BufferPool
	relations map[string]*StoredRelation
}

// NewCatalog creates a catalog over numDisks disks with a buffer pool of
// bufferPages pages.
func NewCatalog(numDisks, bufferPages int) (*Catalog, error) {
	array, err := NewArray(numDisks)
	if err != nil {
		return nil, err
	}
	pool, err := NewBufferPool(array, bufferPages)
	if err != nil {
		return nil, err
	}
	return &Catalog{array: array, pool: pool, relations: make(map[string]*StoredRelation)}, nil
}

// Array exposes the underlying disk array (for stats).
func (c *Catalog) Array() *Array { return c.array }

// Pool exposes the buffer pool (for stats and warming).
func (c *Catalog) Pool() *BufferPool { return c.pool }

// Store writes a partitioned relation to disk, filling pages fragment by
// fragment on the fragment's assigned disk.
func (c *Catalog) Store(p *partition.Partitioned) (*StoredRelation, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.relations[p.Name]; dup {
		return nil, fmt.Errorf("storage: relation %q already stored", p.Name)
	}
	sr := &StoredRelation{
		Name:          p.Name,
		Schema:        p.Schema,
		Key:           append([]string(nil), p.Key...),
		FragmentPages: make([][]PageID, p.Degree()),
		FragmentCard:  make([]int, p.Degree()),
	}
	for i, frag := range p.Fragments {
		disk := p.Disk[i] % c.array.Len()
		page := NewPage()
		flush := func() error {
			if page.Count() == 0 {
				return nil
			}
			id, err := c.array.Write(disk, page.Bytes())
			if err != nil {
				return err
			}
			sr.FragmentPages[i] = append(sr.FragmentPages[i], id)
			page = NewPage()
			return nil
		}
		for _, t := range frag {
			if !page.Insert(t) {
				if err := flush(); err != nil {
					return nil, err
				}
				if !page.Insert(t) {
					return nil, fmt.Errorf("storage: tuple of %d bytes exceeds page size", EncodedSize(t))
				}
			}
			sr.FragmentCard[i]++
		}
		if err := flush(); err != nil {
			return nil, err
		}
	}
	c.relations[p.Name] = sr
	return sr, nil
}

// Lookup returns the named stored relation.
func (c *Catalog) Lookup(name string) (*StoredRelation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sr, ok := c.relations[name]
	if !ok {
		return nil, fmt.Errorf("storage: no relation %q in catalog", name)
	}
	return sr, nil
}

// Names lists the stored relation names (unordered).
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.relations))
	for n := range c.relations {
		out = append(out, n)
	}
	return out
}

// ScanFragment reads fragment frag of the stored relation through the buffer
// pool and returns its tuples in page order.
func (c *Catalog) ScanFragment(sr *StoredRelation, frag int) ([]relation.Tuple, error) {
	if frag < 0 || frag >= sr.Degree() {
		return nil, fmt.Errorf("storage: fragment %d out of range [0,%d)", frag, sr.Degree())
	}
	out := make([]relation.Tuple, 0, sr.FragmentCard[frag])
	for _, id := range sr.FragmentPages[frag] {
		p, err := c.pool.Get(id)
		if err != nil {
			return nil, err
		}
		ts, err := p.Tuples()
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

// Load reads an entire stored relation back into a partition.Partitioned,
// which is the in-memory form the execution engine consumes. Experiments
// call Load once to warm memory, matching the paper's memory-resident runs.
func (c *Catalog) Load(name string) (*partition.Partitioned, error) {
	sr, err := c.Lookup(name)
	if err != nil {
		return nil, err
	}
	frags := make([][]relation.Tuple, sr.Degree())
	for i := range frags {
		ts, err := c.ScanFragment(sr, i)
		if err != nil {
			return nil, err
		}
		frags[i] = ts
	}
	return partition.FromFragments(sr.Name, sr.Schema, sr.Key, frags, c.array.Len())
}
