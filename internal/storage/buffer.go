package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// BufferPool caches decoded pages with LRU replacement. The paper's
// experiments run with "relations cached in main memory"; a warmed pool
// reproduces exactly that regime while the pool's miss path exercises the
// disk substrate.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	array    *Array
	entries  map[PageID]*list.Element
	lru      *list.List // front = most recently used
	hits     int
	misses   int
}

type bufferEntry struct {
	id   PageID
	page *Page
}

// NewBufferPool creates a pool over the disk array holding at most capacity
// pages.
func NewBufferPool(array *Array, capacity int) (*BufferPool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: buffer pool capacity must be positive, got %d", capacity)
	}
	return &BufferPool{
		capacity: capacity,
		array:    array,
		entries:  make(map[PageID]*list.Element, capacity),
		lru:      list.New(),
	}, nil
}

// Get returns the page with the given id, reading it from disk on a miss.
func (b *BufferPool) Get(id PageID) (*Page, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.entries[id]; ok {
		b.hits++
		b.lru.MoveToFront(el)
		return el.Value.(*bufferEntry).page, nil
	}
	b.misses++
	img, err := b.array.Read(id)
	if err != nil {
		return nil, err
	}
	p, err := PageFromBytes(img)
	if err != nil {
		return nil, err
	}
	el := b.lru.PushFront(&bufferEntry{id: id, page: p})
	b.entries[id] = el
	if b.lru.Len() > b.capacity {
		victim := b.lru.Back()
		b.lru.Remove(victim)
		delete(b.entries, victim.Value.(*bufferEntry).id)
	}
	return p, nil
}

// Stats returns cumulative (hits, misses).
func (b *BufferPool) Stats() (hits, misses int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits, b.misses
}

// Resident returns the number of cached pages.
func (b *BufferPool) Resident() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lru.Len()
}
