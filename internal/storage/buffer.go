package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// PageReader is a source of page images addressed by PageID. *Array (the
// simulated disk array) and *SpillSet (a query's temp files) both satisfy
// it, so one buffer pool serves the paper's memory-resident experiments and
// spill read-back alike.
type PageReader interface {
	Read(id PageID) ([]byte, error)
}

// BufferPool caches decoded pages with LRU replacement. The paper's
// experiments run with "relations cached in main memory"; a warmed pool
// reproduces exactly that regime while the pool's miss path exercises the
// disk substrate.
//
// A miss releases the pool mutex during the read and decode, holding only a
// per-page in-flight latch: concurrent hits proceed while a page is being
// read, and concurrent misses on the same page coalesce into a single read
// (latecomers wait on the latch and share the one decoded page).
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	src      PageReader
	entries  map[PageID]*list.Element
	lru      *list.List // front = most recently used
	inflight map[PageID]*inflightRead
	hits     int
	misses   int
	metrics  *PoolMetrics
	closed   bool
}

// inflightRead is the single-flight latch for one page being read: the
// loader closes done after setting page or err, and every waiter shares the
// result.
type inflightRead struct {
	done chan struct{}
	page *Page
	err  error
}

type bufferEntry struct {
	id   PageID
	page *Page
}

// NewBufferPool creates a pool over the page source holding at most
// capacity pages.
func NewBufferPool(src PageReader, capacity int) (*BufferPool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: buffer pool capacity must be positive, got %d", capacity)
	}
	return &BufferPool{
		capacity: capacity,
		src:      src,
		entries:  make(map[PageID]*list.Element, capacity),
		lru:      list.New(),
		inflight: make(map[PageID]*inflightRead),
	}, nil
}

// SetMetrics attaches process-wide counters the pool mirrors its activity
// into (per-query pools feed one shared PoolMetrics for /stats).
func (b *BufferPool) SetMetrics(m *PoolMetrics) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.metrics = m
}

// Get returns the page with the given id, reading it from the source on a
// miss.
func (b *BufferPool) Get(id PageID) (*Page, error) {
	b.mu.Lock()
	if el, ok := b.entries[id]; ok {
		b.hits++
		b.metrics.hit()
		b.lru.MoveToFront(el)
		p := el.Value.(*bufferEntry).page
		b.mu.Unlock()
		return p, nil
	}
	if fl, ok := b.inflight[id]; ok {
		// Someone is already reading this page: count it as a hit (only one
		// read happens) and wait outside the lock.
		b.hits++
		b.metrics.hit()
		b.mu.Unlock()
		<-fl.done
		return fl.page, fl.err
	}
	b.misses++
	b.metrics.miss()
	fl := &inflightRead{done: make(chan struct{})}
	b.inflight[id] = fl
	b.mu.Unlock()

	img, err := b.src.Read(id)
	var p *Page
	if err == nil {
		p, err = PageFromBytes(img)
	}

	b.mu.Lock()
	delete(b.inflight, id)
	if err != nil {
		fl.err = err
		b.mu.Unlock()
		close(fl.done)
		return nil, err
	}
	fl.page = p
	if !b.closed {
		el := b.lru.PushFront(&bufferEntry{id: id, page: p})
		b.entries[id] = el
		b.metrics.resident(1)
		if b.lru.Len() > b.capacity {
			victim := b.lru.Back()
			b.lru.Remove(victim)
			delete(b.entries, victim.Value.(*bufferEntry).id)
			b.metrics.resident(-1)
		}
	}
	b.mu.Unlock()
	close(fl.done)
	return p, nil
}

// Stats returns cumulative (hits, misses).
func (b *BufferPool) Stats() (hits, misses int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits, b.misses
}

// Resident returns the number of cached pages.
func (b *BufferPool) Resident() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lru.Len()
}

// Close drops every cached page and returns the pool's residency to the
// shared metrics. Get on a closed pool still works (reads pass through
// uncached); per-query pools are closed when the query's spill state is
// cleaned up.
func (b *BufferPool) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.metrics.resident(int64(-b.lru.Len()))
	b.lru.Init()
	b.entries = make(map[PageID]*list.Element)
}
