package storage

import (
	"testing"

	"dbs3/internal/relation"
)

func TestPageInsertAndRead(t *testing.T) {
	p := NewPage()
	tuples := []relation.Tuple{
		relation.NewTuple(relation.Int(1), relation.Str("a")),
		relation.NewTuple(relation.Int(2), relation.Str("bb")),
		relation.NewTuple(relation.Int(3), relation.Str("ccc")),
	}
	for _, tup := range tuples {
		if !p.Insert(tup) {
			t.Fatalf("insert %v failed on empty page", tup)
		}
	}
	if p.Count() != 3 {
		t.Fatalf("Count = %d", p.Count())
	}
	for i, want := range tuples {
		got, err := p.Tuple(i)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("slot %d = %v, want %v", i, got, want)
		}
	}
	all, err := p.Tuples()
	if err != nil || len(all) != 3 {
		t.Fatalf("Tuples() = %v, %v", all, err)
	}
}

func TestPageSlotOutOfRange(t *testing.T) {
	p := NewPage()
	if _, err := p.Tuple(0); err == nil {
		t.Error("empty page slot read accepted")
	}
	if _, err := p.Tuple(-1); err == nil {
		t.Error("negative slot accepted")
	}
}

func TestPageFillsAndRejects(t *testing.T) {
	p := NewPage()
	tup := relation.NewTuple(relation.Int(7), relation.Str(string(make([]byte, 100))))
	inserted := 0
	for p.Insert(tup) {
		inserted++
		if inserted > PageSize {
			t.Fatal("page never filled")
		}
	}
	if inserted == 0 {
		t.Fatal("nothing fit on an empty page")
	}
	// Page must still decode cleanly after rejection.
	all, err := p.Tuples()
	if err != nil || len(all) != inserted {
		t.Fatalf("after fill: %d tuples, err %v", len(all), err)
	}
	// A small tuple may still fit even though the big one did not; make the
	// rejection sticky by filling with small tuples too.
	small := relation.NewTuple(relation.Int(1))
	for p.Insert(small) {
	}
	if p.Count() < inserted {
		t.Error("count shrank")
	}
}

func TestPageFromBytesRoundTrip(t *testing.T) {
	p := NewPage()
	tuples := []relation.Tuple{
		relation.NewTuple(relation.Int(10), relation.Str("x")),
		relation.NewTuple(relation.Int(20), relation.Str("y")),
	}
	for _, tup := range tuples {
		p.Insert(tup)
	}
	img := make([]byte, PageSize)
	copy(img, p.Bytes())
	q, err := PageFromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if q.Count() != 2 {
		t.Fatalf("Count = %d", q.Count())
	}
	// The adopted page must accept further inserts without corrupting
	// existing tuples.
	if !q.Insert(relation.NewTuple(relation.Int(30), relation.Str("z"))) {
		t.Fatal("insert into adopted page failed")
	}
	all, err := q.Tuples()
	if err != nil || len(all) != 3 {
		t.Fatalf("Tuples = %v, %v", all, err)
	}
	for i, want := range tuples {
		if !all[i].Equal(want) {
			t.Errorf("slot %d corrupted: %v", i, all[i])
		}
	}
}

func TestPageFromBytesRejectsBadSize(t *testing.T) {
	if _, err := PageFromBytes(make([]byte, 100)); err == nil {
		t.Error("short image accepted")
	}
}
