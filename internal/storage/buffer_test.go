package storage

import (
	"testing"

	"dbs3/internal/relation"
)

func pageWith(t *testing.T, v int64) []byte {
	t.Helper()
	p := NewPage()
	if !p.Insert(relation.NewTuple(relation.Int(v))) {
		t.Fatal("insert failed")
	}
	return p.Bytes()
}

func TestBufferPoolHitMiss(t *testing.T) {
	a, _ := NewArray(1)
	id0, _ := a.Write(0, pageWith(t, 10))
	id1, _ := a.Write(0, pageWith(t, 20))
	b, err := NewBufferPool(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(id0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(id0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(id1); err != nil {
		t.Fatal(err)
	}
	hits, misses := b.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats = %d hits %d misses, want 1/2", hits, misses)
	}
	if b.Resident() != 2 {
		t.Errorf("Resident = %d", b.Resident())
	}
}

func TestBufferPoolEvictsLRU(t *testing.T) {
	a, _ := NewArray(1)
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i], _ = a.Write(0, pageWith(t, int64(i)))
	}
	b, _ := NewBufferPool(a, 2)
	b.Get(ids[0])
	b.Get(ids[1])
	b.Get(ids[0]) // 0 now MRU, 1 is LRU
	b.Get(ids[2]) // must evict 1
	reads0, _ := a.Disk(0).Stats()
	b.Get(ids[0]) // hit
	b.Get(ids[1]) // miss: was evicted
	reads1, _ := a.Disk(0).Stats()
	if reads1 != reads0+1 {
		t.Errorf("expected exactly one extra disk read, got %d", reads1-reads0)
	}
	if b.Resident() != 2 {
		t.Errorf("Resident = %d, want capacity 2", b.Resident())
	}
}

func TestBufferPoolContentCorrect(t *testing.T) {
	a, _ := NewArray(2)
	id, _ := a.Write(1, pageWith(t, 77))
	b, _ := NewBufferPool(a, 1)
	p, err := b.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tup, err := p.Tuple(0)
	if err != nil || tup[0].AsInt() != 77 {
		t.Errorf("tuple = %v, %v", tup, err)
	}
}

func TestBufferPoolErrors(t *testing.T) {
	a, _ := NewArray(1)
	if _, err := NewBufferPool(a, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	b, _ := NewBufferPool(a, 1)
	if _, err := b.Get(PageID{Disk: 0, Slot: 99}); err == nil {
		t.Error("missing page accepted")
	}
}
