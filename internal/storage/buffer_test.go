package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dbs3/internal/relation"
)

func pageWith(t *testing.T, v int64) []byte {
	t.Helper()
	p := NewPage()
	if !p.Insert(relation.NewTuple(relation.Int(v))) {
		t.Fatal("insert failed")
	}
	return p.Bytes()
}

func TestBufferPoolHitMiss(t *testing.T) {
	a, _ := NewArray(1)
	id0, _ := a.Write(0, pageWith(t, 10))
	id1, _ := a.Write(0, pageWith(t, 20))
	b, err := NewBufferPool(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(id0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(id0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get(id1); err != nil {
		t.Fatal(err)
	}
	hits, misses := b.Stats()
	if hits != 1 || misses != 2 {
		t.Errorf("stats = %d hits %d misses, want 1/2", hits, misses)
	}
	if b.Resident() != 2 {
		t.Errorf("Resident = %d", b.Resident())
	}
}

func TestBufferPoolEvictsLRU(t *testing.T) {
	a, _ := NewArray(1)
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i], _ = a.Write(0, pageWith(t, int64(i)))
	}
	b, _ := NewBufferPool(a, 2)
	b.Get(ids[0])
	b.Get(ids[1])
	b.Get(ids[0]) // 0 now MRU, 1 is LRU
	b.Get(ids[2]) // must evict 1
	reads0, _ := a.Disk(0).Stats()
	b.Get(ids[0]) // hit
	b.Get(ids[1]) // miss: was evicted
	reads1, _ := a.Disk(0).Stats()
	if reads1 != reads0+1 {
		t.Errorf("expected exactly one extra disk read, got %d", reads1-reads0)
	}
	if b.Resident() != 2 {
		t.Errorf("Resident = %d, want capacity 2", b.Resident())
	}
}

func TestBufferPoolContentCorrect(t *testing.T) {
	a, _ := NewArray(2)
	id, _ := a.Write(1, pageWith(t, 77))
	b, _ := NewBufferPool(a, 1)
	p, err := b.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tup, err := p.Tuple(0)
	if err != nil || tup[0].AsInt() != 77 {
		t.Errorf("tuple = %v, %v", tup, err)
	}
}

// gatedReader is a PageReader whose reads block until the test releases
// them, exposing the window where a miss's I/O is in flight.
type gatedReader struct {
	gate  chan struct{}
	data  map[PageID][]byte
	reads atomic.Int32
}

func (r *gatedReader) Read(id PageID) ([]byte, error) {
	r.reads.Add(1)
	<-r.gate
	b, ok := r.data[id]
	if !ok {
		return nil, fmt.Errorf("gatedReader: no page %v", id)
	}
	return b, nil
}

// TestBufferPoolHitDuringMiss is the regression test for the lock-across-I/O
// bug: Get used to hold the pool mutex through the source read, so a hit on
// a resident page stalled behind an unrelated miss's disk I/O. Now the miss
// releases the lock during the read (a per-page latch keeps it single
// flight), so the hit must complete while the miss is still blocked — and a
// second reader of the missing page must wait on the latch rather than issue
// a duplicate read.
func TestBufferPoolHitDuringMiss(t *testing.T) {
	id0, id1 := PageID{Disk: 0, Slot: 0}, PageID{Disk: 0, Slot: 1}
	r := &gatedReader{gate: make(chan struct{}, 1), data: map[PageID][]byte{
		id0: pageWith(t, 10),
		id1: pageWith(t, 20),
	}}
	b, err := NewBufferPool(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Preload id0: one token lets exactly this read through.
	r.gate <- struct{}{}
	if _, err := b.Get(id0); err != nil {
		t.Fatal(err)
	}

	// Miss on id1 blocks inside the source read, holding no pool lock.
	missDone := make(chan error, 1)
	go func() {
		_, err := b.Get(id1)
		missDone <- err
	}()
	for r.reads.Load() < 2 {
		time.Sleep(time.Millisecond)
	}

	// The resident page must be servable while that I/O is in flight.
	hitDone := make(chan error, 1)
	go func() {
		_, err := b.Get(id0)
		hitDone <- err
	}()
	select {
	case err := <-hitDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hit on resident page blocked behind an in-flight miss")
	}

	// Concurrent waiters on the missing page coalesce onto the one read.
	const waiters = 4
	var wg sync.WaitGroup
	waitErrs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := b.Get(id1)
			if err == nil && p == nil {
				err = fmt.Errorf("nil page without error")
			}
			waitErrs[i] = err
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the waiters reach the latch
	r.gate <- struct{}{}              // release the single in-flight read
	wg.Wait()
	if err := <-missDone; err != nil {
		t.Fatal(err)
	}
	for i, err := range waitErrs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if n := r.reads.Load(); n != 2 {
		t.Errorf("source reads = %d, want 2 (preload + single-flight miss)", n)
	}
	hits, misses := b.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2", misses)
	}
	if hits < waiters+1 {
		t.Errorf("hits = %d, want >= %d (resident hit + latch waiters)", hits, waiters+1)
	}
}

func TestBufferPoolErrors(t *testing.T) {
	a, _ := NewArray(1)
	if _, err := NewBufferPool(a, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	b, _ := NewBufferPool(a, 1)
	if _, err := b.Get(PageID{Disk: 0, Slot: 99}); err == nil {
		t.Error("missing page accepted")
	}
}
