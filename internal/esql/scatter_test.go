package esql

import (
	"testing"

	"dbs3/internal/lera"
)

func TestScatterPlan(t *testing.T) {
	cases := []struct {
		sql    string
		hasAgg bool
		merge  lera.AggKind
		groups int
		params int
	}{
		{"SELECT * FROM wisc", false, 0, 0, 0},
		{"SELECT unique1, two FROM wisc WHERE unique1 < ?", false, 0, 0, 1},
		{"SELECT ten, COUNT(*) FROM wisc GROUP BY ten", true, lera.AggSum, 1, 0},
		{"SELECT ten, SUM(unique1) FROM wisc WHERE two = ? GROUP BY ten", true, lera.AggSum, 1, 1},
		{"SELECT ten, MIN(unique1) FROM wisc GROUP BY ten", true, lera.AggMin, 1, 0},
		{"SELECT two, four, MAX(unique1) FROM wisc GROUP BY two, four", true, lera.AggMax, 2, 0},
		{"SELECT k, COUNT(*) FROM A JOIN B ON A.k = B.k GROUP BY A.k", true, lera.AggSum, 1, 0},
	}
	for _, c := range cases {
		spec, err := ScatterPlan(c.sql)
		if err != nil {
			t.Fatalf("ScatterPlan(%q): %v", c.sql, err)
		}
		if spec.HasAgg != c.hasAgg || spec.Params != c.params {
			t.Errorf("ScatterPlan(%q) = %+v, want hasAgg=%v params=%d", c.sql, spec, c.hasAgg, c.params)
		}
		if c.hasAgg && (spec.Merge != c.merge || spec.GroupCols != c.groups) {
			t.Errorf("ScatterPlan(%q) = %+v, want merge=%v groups=%d", c.sql, spec, c.merge, c.groups)
		}
	}
	if _, err := ScatterPlan("SELECT FROM"); err == nil {
		t.Fatalf("ScatterPlan on a parse error must fail")
	}
}

func TestAggKindMerge(t *testing.T) {
	want := map[lera.AggKind]lera.AggKind{
		lera.AggCount: lera.AggSum,
		lera.AggSum:   lera.AggSum,
		lera.AggMin:   lera.AggMin,
		lera.AggMax:   lera.AggMax,
	}
	for k, m := range want {
		if got := k.Merge(); got != m {
			t.Errorf("%v.Merge() = %v, want %v", k, got, m)
		}
	}
}
