package esql

import (
	"strings"
	"testing"

	"dbs3/internal/core"
	"dbs3/internal/lera"
	"dbs3/internal/relation"
	"dbs3/internal/workload"
)

func compiler(t *testing.T, db *workload.JoinDB) *Compiler {
	t.Helper()
	return &Compiler{Resolver: db.Resolver(), JoinAlgo: lera.HashJoin}
}

func testDB(t *testing.T) *workload.JoinDB {
	t.Helper()
	db, err := workload.NewJoinDB(1000, 100, 10, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func run(t *testing.T, db *workload.JoinDB, sql string) *core.Result {
	t.Helper()
	c := compiler(t, db)
	plan, _, err := c.Compile(sql)
	if err != nil {
		t.Fatalf("compile %q: %v", sql, err)
	}
	res, err := core.Execute(plan, db.Relations(), core.Options{Threads: 4})
	if err != nil {
		t.Fatalf("execute %q: %v", sql, err)
	}
	return res
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a.b, c FROM t WHERE x <= -5 AND s = 'hi'")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.text)
	}
	want := "SELECT a . b , c FROM t WHERE x <= -5 AND s = hi "
	if got := strings.Join(texts, " "); got != want {
		t.Errorf("tokens = %q, want %q", got, want)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("SELECT #"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := Parse("SELECT * FROM A WHERE k < 10")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star || q.From != "A" || q.Where == nil {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseJoin(t *testing.T) {
	q, err := Parse("SELECT A.id, B.id FROM A JOIN B ON A.k = B.k")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 || q.Joins[0].Table != "B" || q.Joins[0].LeftCol.String() != "A.k" {
		t.Errorf("parsed %+v", q.Joins)
	}
	if len(q.Cols) != 2 {
		t.Errorf("cols = %v", q.Cols)
	}
}

func TestParseGroupBy(t *testing.T) {
	q, err := Parse("SELECT k, COUNT(*) FROM A GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg == nil || q.Agg.Kind != lera.AggCount || len(q.GroupBy) != 1 {
		t.Errorf("parsed %+v", q)
	}
	q2, err := Parse("SELECT k, SUM(id) FROM A GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Agg.Kind != lera.AggSum || q2.Agg.Col != "id" {
		t.Errorf("parsed %+v", q2.Agg)
	}
}

func TestParsePredicatePrecedence(t *testing.T) {
	q, err := Parse("SELECT * FROM A WHERE k = 1 OR k = 2 AND NOT (id > 5)")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.Where.(lera.Or)
	if !ok || len(or.Terms) != 2 {
		t.Fatalf("top level should be OR: %v", q.Where)
	}
	if _, ok := or.Terms[1].(lera.And); !ok {
		t.Errorf("AND should bind tighter than OR: %v", or.Terms[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM A WHERE",
		"SELECT * FROM A extra",
		"SELECT * FROM A WHERE k !! 3",
		"SELECT COUNT(*) FROM A",                  // aggregate without GROUP BY
		"SELECT k FROM A GROUP BY k",              // GROUP BY without aggregate
		"SELECT COUNT(k) FROM A GROUP BY k",       // COUNT takes *
		"SELECT * FROM A JOIN B ON k = B.k",       // unqualified join column
		"SELECT * FROM A JOIN B ON A.k = B.k AND", // trailing AND
		"SELECT SUM(*) FROM A GROUP BY k",
		"SELECT MIN(k, id) FROM A GROUP BY k",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestCompileSelection(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT * FROM A WHERE id < 100")
	rel, err := res.Relation(OutputName)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 100 {
		t.Errorf("selected %d tuples, want 100", rel.Cardinality())
	}
}

func TestCompileProjection(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT id FROM A WHERE id < 50")
	rel, _ := res.Relation(OutputName)
	if rel.Cardinality() != 50 || rel.Schema.Len() != 1 || rel.Schema.Column(0).Name != "id" {
		t.Errorf("projection = %s [%d]", rel.Schema, rel.Cardinality())
	}
}

func TestCompileIdealJoinShape(t *testing.T) {
	db := testDB(t)
	c := compiler(t, db)
	// A and B are both partitioned on k: expect a triggered (bound) join,
	// no transmit node.
	_, g, err := c.Compile("SELECT * FROM A JOIN B ON A.k = B.k")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if n.Kind == lera.OpTransmit {
			t.Error("co-partitioned join should not need a transmit")
		}
		if n.Kind == lera.OpJoin && n.ProbeRel == "" {
			t.Error("co-partitioned join should be triggered")
		}
	}
	res := run(t, db, "SELECT * FROM A JOIN B ON A.k = B.k")
	rel, _ := res.Relation(OutputName)
	if rel.Cardinality() != db.ExpectedJoinCount() {
		t.Errorf("join returned %d tuples, want %d", rel.Cardinality(), db.ExpectedJoinCount())
	}
}

func TestCompileAssocJoinShape(t *testing.T) {
	db := testDB(t)
	c := compiler(t, db)
	// Br is partitioned on id, not on k: the compiler must stream it.
	_, g, err := c.Compile("SELECT * FROM A JOIN Br ON A.k = Br.k")
	if err != nil {
		t.Fatal(err)
	}
	hasTransmit := false
	for _, n := range g.Nodes {
		if n.Kind == lera.OpTransmit {
			hasTransmit = true
			if n.Rel != "Br" {
				t.Errorf("transmit reads %q, want Br", n.Rel)
			}
		}
	}
	if !hasTransmit {
		t.Fatal("non-co-located join must redistribute")
	}
	res := run(t, db, "SELECT * FROM A JOIN Br ON A.k = Br.k")
	rel, _ := res.Relation(OutputName)
	if rel.Cardinality() != db.ExpectedJoinCount() {
		t.Errorf("join returned %d tuples, want %d", rel.Cardinality(), db.ExpectedJoinCount())
	}
}

func TestCompileAssocJoinStreamLeft(t *testing.T) {
	db := testDB(t)
	// Swapped: FROM Br JOIN A — the planner must still build on A.
	res := run(t, db, "SELECT * FROM Br JOIN A ON Br.k = A.k")
	rel, _ := res.Relation(OutputName)
	if rel.Cardinality() != db.ExpectedJoinCount() {
		t.Errorf("join returned %d tuples, want %d", rel.Cardinality(), db.ExpectedJoinCount())
	}
}

func TestCompileJoinWithResidualWhere(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT * FROM A JOIN B ON A.k = B.k WHERE A.id < 100")
	rel, _ := res.Relation(OutputName)
	if rel.Cardinality() != 100 {
		t.Errorf("filtered join returned %d tuples, want 100", rel.Cardinality())
	}
	// Qualified columns of the streamed side must also resolve.
	res2 := run(t, db, "SELECT * FROM A JOIN Br ON A.k = Br.k WHERE Br.id < 70 AND A.id >= 0")
	rel2, _ := res2.Relation(OutputName)
	// Each Br id < 70 matches... A tuples whose key equals that Br key; the
	// oracle: result keys are A-side unique ids with matching B id < 70.
	if rel2.Cardinality() == 0 || rel2.Cardinality() >= db.ExpectedJoinCount() {
		t.Errorf("residual filter had no effect: %d", rel2.Cardinality())
	}
}

func TestCompileJoinProjection(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT A.id, B.id FROM A JOIN B ON A.k = B.k WHERE A.id < 10")
	rel, _ := res.Relation(OutputName)
	if rel.Schema.Len() != 2 {
		t.Fatalf("schema = %s", rel.Schema)
	}
	if rel.Cardinality() != 10 {
		t.Errorf("returned %d tuples", rel.Cardinality())
	}
}

func TestCompileGroupBy(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT k, COUNT(*) FROM A GROUP BY k")
	rel, _ := res.Relation(OutputName)
	// A has 100 distinct keys (one per B tuple).
	if rel.Cardinality() != 100 {
		t.Errorf("got %d groups, want 100", rel.Cardinality())
	}
	var total int64
	for _, tup := range rel.Tuples {
		total += tup[1].AsInt()
	}
	if total != 1000 {
		t.Errorf("counts sum to %d, want 1000", total)
	}
}

func TestCompileGroupBySum(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT k, SUM(id) FROM A WHERE id < 4 GROUP BY k")
	rel, _ := res.Relation(OutputName)
	var total int64
	for _, tup := range rel.Tuples {
		total += tup[1].AsInt()
	}
	if total != 0+1+2+3 {
		t.Errorf("sum = %d, want 6", total)
	}
}

func TestCompileErrors(t *testing.T) {
	db := testDB(t)
	c := compiler(t, db)
	bad := []string{
		"SELECT * FROM Missing",
		"SELECT nope FROM A",
		"SELECT * FROM A WHERE nope = 1",
		"SELECT * FROM A JOIN B ON A.k = B.k WHERE C.id = 1",
		"SELECT * FROM Br JOIN Br2 ON Br.k = Br2.k",
		"SELECT * FROM A JOIN B ON A.nope = B.k",
		"SELECT k FROM A JOIN B ON A.k = B.k", // ambiguous k after join
	}
	for _, sql := range bad {
		if _, _, err := c.Compile(sql); err == nil {
			t.Errorf("Compile(%q) should fail", sql)
		}
	}
}

func TestCompileRejectsNonColocatedJoin(t *testing.T) {
	db := testDB(t)
	c := compiler(t, db)
	// Join on id: neither side is partitioned on id... Br is! Join Br to
	// itself is rejected above; join A to B on id has no co-located side.
	if _, _, err := c.Compile("SELECT * FROM A JOIN B ON A.id = B.id"); err == nil {
		t.Error("join with no co-located side should fail in this subset")
	}
}

func TestExplainDot(t *testing.T) {
	db := testDB(t)
	c := compiler(t, db)
	_, g, err := c.Compile("SELECT * FROM A JOIN Br ON A.k = Br.k")
	if err != nil {
		t.Fatal(err)
	}
	dot := g.Dot()
	if !strings.Contains(dot, "transmit") || !strings.Contains(dot, "join") {
		t.Errorf("dot output incomplete:\n%s", dot)
	}
}

func TestUnqualifiedColumnResolution(t *testing.T) {
	db := testDB(t)
	// pad collides between A and B; id does too; but a WHERE on the bare
	// name must be rejected as ambiguous while table-qualified names work.
	c := compiler(t, db)
	if _, _, err := c.Compile("SELECT * FROM A JOIN B ON A.k = B.k WHERE id < 5"); err == nil {
		t.Error("ambiguous bare column accepted")
	}
	if _, _, err := c.Compile("SELECT * FROM A JOIN B ON A.k = B.k WHERE A.id < 5"); err != nil {
		t.Errorf("qualified column rejected: %v", err)
	}
}

var _ = relation.Int

func TestParseMinMaxAndColCol(t *testing.T) {
	q, err := Parse("SELECT k, MIN(id) FROM A GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg.Kind != lera.AggMin || q.Agg.Col != "id" {
		t.Errorf("MIN parsed as %+v", q.Agg)
	}
	q, err = Parse("SELECT k, MAX(id) FROM A GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg.Kind != lera.AggMax {
		t.Errorf("MAX parsed as %+v", q.Agg)
	}
	// Column-to-column comparisons with every operator.
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		sql := "SELECT * FROM A WHERE k " + op + " id"
		if _, err := Parse(sql); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
	// String literal comparison.
	q, err = Parse("SELECT * FROM A WHERE pad = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Where.(lera.ColConst); !ok {
		t.Errorf("string comparison parsed as %T", q.Where)
	}
}

func TestParseJoinClauseErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM A JOIN",
		"SELECT * FROM A JOIN B",
		"SELECT * FROM A JOIN B ON",
		"SELECT * FROM A JOIN B ON A.k",
		"SELECT * FROM A JOIN B ON A.k = ",
		"SELECT * FROM A JOIN B ON A.k < B.k",
		"SELECT * FROM A WHERE k = ",
		"SELECT * FROM A WHERE k = 99999999999999999999",
		"SELECT * FROM A WHERE (k = 1",
		"SELECT * FROM A GROUP",
		"SELECT * FROM A.",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestCompileColColPredicate(t *testing.T) {
	db := testDB(t)
	// k = id holds for tuples whose key equals their id; runs end to end.
	res := run(t, db, "SELECT * FROM A WHERE k = id")
	rel, _ := res.Relation(OutputName)
	kIdx := workload.JoinSchema.MustIndex("k")
	idIdx := workload.JoinSchema.MustIndex("id")
	for _, tup := range rel.Tuples {
		if tup[kIdx].AsInt() != tup[idIdx].AsInt() {
			t.Fatalf("predicate violated by %v", tup)
		}
	}
	// NOT / OR nesting through the compiler.
	res = run(t, db, "SELECT * FROM A WHERE NOT (id < 10) AND (k = 0 OR k = 1)")
	rel, _ = res.Relation(OutputName)
	for _, tup := range rel.Tuples {
		if tup[idIdx].AsInt() < 10 {
			t.Fatalf("NOT clause violated by %v", tup)
		}
	}
}

func TestCompileJoinGroupBy(t *testing.T) {
	db := testDB(t)
	// Grouped aggregate over a join output with qualified group column.
	res := run(t, db, "SELECT B.k, COUNT(*) FROM A JOIN B ON A.k = B.k GROUP BY B.k")
	rel, _ := res.Relation(OutputName)
	if rel.Cardinality() != 100 {
		t.Fatalf("groups = %d, want 100 (distinct B keys)", rel.Cardinality())
	}
	var total int64
	for _, tup := range rel.Tuples {
		total += tup[1].AsInt()
	}
	if total != int64(db.ExpectedJoinCount()) {
		t.Errorf("counts sum to %d, want %d", total, db.ExpectedJoinCount())
	}
}

func TestCompileThreeWayJoin(t *testing.T) {
	db := testDB(t)
	// Br streams into A (co-partitioned on k), then the stream joins B
	// (also partitioned on k): every A tuple matches one Br and one B
	// tuple, so the result has exactly ACard rows.
	res := run(t, db, "SELECT * FROM Br JOIN A ON Br.k = A.k JOIN B ON A.k = B.k")
	rel, _ := res.Relation(OutputName)
	if rel.Cardinality() != db.ExpectedJoinCount() {
		t.Fatalf("3-way join returned %d rows, want %d", rel.Cardinality(), db.ExpectedJoinCount())
	}
	// All three key columns agree on every row.
	ak := rel.Schema.MustIndex("A.k")
	brk := rel.Schema.MustIndex("probe.k")
	bk := rel.Schema.MustIndex("k") // B's columns stay bare (no collision)
	for _, tup := range rel.Tuples {
		if tup[ak].AsInt() != tup[brk].AsInt() || tup[ak].AsInt() != tup[bk].AsInt() {
			t.Fatalf("keys disagree in %v", tup)
		}
	}
}

func TestCompileThreeWayJoinWithWhereAndProjection(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT A.id FROM Br JOIN A ON Br.k = A.k JOIN B ON A.k = B.k WHERE A.id < 25")
	rel, _ := res.Relation(OutputName)
	if rel.Cardinality() != 25 {
		t.Fatalf("filtered 3-way join = %d rows, want 25", rel.Cardinality())
	}
	if rel.Schema.Len() != 1 {
		t.Errorf("projection schema = %s", rel.Schema)
	}
}

func TestCompileMultiJoinErrors(t *testing.T) {
	db := testDB(t)
	c := compiler(t, db)
	bad := []string{
		// Second join references no already-joined table.
		"SELECT * FROM A JOIN B ON A.k = B.k JOIN Br ON Br.k = Br.id",
		// Table joined twice.
		"SELECT * FROM A JOIN B ON A.k = B.k JOIN B ON A.k = B.k",
		// New table not partitioned on its join column (Br is on id).
		"SELECT * FROM A JOIN B ON A.k = B.k JOIN Br ON A.k = Br.k",
	}
	for _, sql := range bad {
		if _, _, err := c.Compile(sql); err == nil {
			t.Errorf("Compile(%q) should fail", sql)
		}
	}
	// A legal variant of the last: join Br on id against... A.id is not a
	// partitioning key of Br? Br IS partitioned on id, so joining the
	// stream's A.id to Br.id works.
	if _, _, err := c.Compile("SELECT * FROM A JOIN B ON A.k = B.k JOIN Br ON A.id = Br.id"); err != nil {
		t.Errorf("stream-to-Br join on id should compile: %v", err)
	}
}

// TestCompileMaterialize: the Materialize compiler splits a statement into
// two pipeline chains around an explicit stage store, and the split changes
// no answers.
func TestCompileMaterialize(t *testing.T) {
	db := testDB(t)
	for _, sql := range []string{
		"SELECT id FROM A WHERE k < 5",
		"SELECT k, COUNT(*) FROM A GROUP BY k",
		"SELECT * FROM A JOIN B ON A.k = B.k WHERE A.id < 200",
	} {
		c := compiler(t, db)
		c.Materialize = true
		plan, _, err := c.Compile(sql)
		if err != nil {
			t.Fatalf("compile %q: %v", sql, err)
		}
		if len(plan.Chains) != 2 {
			t.Errorf("%q compiled to %d chains, want 2", sql, len(plan.Chains))
		}
		if _, ok := plan.Outputs[StageName]; !ok {
			t.Errorf("%q has no stage output: %v", sql, plan.Outputs)
		}
		res, err := core.Execute(plan, db.Relations(), core.Options{Threads: 4})
		if err != nil {
			t.Fatalf("execute %q: %v", sql, err)
		}
		plain := run(t, db, sql)
		got, err := res.Relation(OutputName)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.Relation(OutputName)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cardinality() != want.Cardinality() {
			t.Errorf("%q: materialized plan returned %d rows, plain %d", sql, got.Cardinality(), want.Cardinality())
		}
	}
}
