package esql

import (
	"fmt"
	"strconv"

	"dbs3/internal/lera"
	"dbs3/internal/relation"
)

// Query is the parsed form of an ESQL statement.
type Query struct {
	// Star selects every column.
	Star bool
	// Cols are the projected column names (possibly qualified "T.col").
	Cols []string
	// Agg is the aggregate of the select list, if any.
	Agg *AggItem
	// From is the first relation.
	From string
	// Joins lists the equi-joins, in syntactic order; each must connect a
	// new table to one already joined.
	Joins []JoinClause
	// Where is the filter predicate (column names possibly qualified).
	Where lera.Predicate
	// GroupBy lists grouping columns.
	GroupBy []string
	// Params counts the `?` placeholders in the statement, numbered left to
	// right; execution must supply that many arguments.
	Params int
}

// AggItem is one aggregate in the select list.
type AggItem struct {
	Kind lera.AggKind
	Col  string // empty for COUNT(*)
}

// JoinClause is "JOIN t ON a.x = b.y".
type JoinClause struct {
	Table             string
	LeftCol, RightCol qualified
}

// qualified is a possibly table-qualified column reference.
type qualified struct {
	Table, Col string
}

func (q qualified) String() string {
	if q.Table == "" {
		return q.Col
	}
	return q.Table + "." + q.Col
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
	// params numbers `?` placeholders in lexical order.
	params int
}

// Parse parses one ESQL statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	q.Params = p.params
	return q, nil
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.i++
		return t, nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("esql: at position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) query() (*Query, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if err := p.selectList(q); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	q.From = from.text
	for p.eat(tokKeyword, "JOIN") {
		jc, err := p.joinClause()
		if err != nil {
			return nil, err
		}
		q.Joins = append(q.Joins, *jc)
	}
	if p.eat(tokKeyword, "WHERE") {
		pred, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Where = pred
	}
	if p.eat(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.qualifiedCol()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col.String())
			if !p.eat(tokSymbol, ",") {
				break
			}
		}
	}
	if q.Agg != nil && len(q.GroupBy) == 0 {
		return nil, fmt.Errorf("esql: aggregates require GROUP BY in this subset")
	}
	if q.Agg == nil && len(q.GroupBy) > 0 {
		return nil, fmt.Errorf("esql: GROUP BY requires an aggregate in the select list")
	}
	return q, nil
}

func (p *parser) selectList(q *Query) error {
	if p.eat(tokSymbol, "*") {
		q.Star = true
		return nil
	}
	for {
		switch {
		case p.at(tokKeyword, "COUNT"), p.at(tokKeyword, "SUM"), p.at(tokKeyword, "MIN"), p.at(tokKeyword, "MAX"):
			if q.Agg != nil {
				return p.errf("only one aggregate per query in this subset")
			}
			kw := p.cur().text
			p.i++
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return err
			}
			item := &AggItem{}
			switch kw {
			case "COUNT":
				item.Kind = lera.AggCount
				if _, err := p.expect(tokSymbol, "*"); err != nil {
					return err
				}
			case "SUM":
				item.Kind = lera.AggSum
			case "MIN":
				item.Kind = lera.AggMin
			case "MAX":
				item.Kind = lera.AggMax
			}
			if kw != "COUNT" {
				col, err := p.qualifiedCol()
				if err != nil {
					return err
				}
				item.Col = col.String()
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return err
			}
			q.Agg = item
		default:
			col, err := p.qualifiedCol()
			if err != nil {
				return err
			}
			q.Cols = append(q.Cols, col.String())
		}
		if !p.eat(tokSymbol, ",") {
			return nil
		}
	}
}

func (p *parser) joinClause() (*JoinClause, error) {
	table, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	left, err := p.qualifiedCol()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "="); err != nil {
		return nil, err
	}
	right, err := p.qualifiedCol()
	if err != nil {
		return nil, err
	}
	if left.Table == "" || right.Table == "" {
		return nil, fmt.Errorf("esql: join columns must be table-qualified")
	}
	return &JoinClause{Table: table.text, LeftCol: left, RightCol: right}, nil
}

func (p *parser) qualifiedCol() (qualified, error) {
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return qualified{}, err
	}
	if p.eat(tokSymbol, ".") {
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return qualified{}, err
		}
		return qualified{Table: id.text, Col: col.text}, nil
	}
	return qualified{Col: id.text}, nil
}

// Predicate grammar: or := and (OR and)* ; and := unary (AND unary)* ;
// unary := NOT unary | '(' or ')' | comparison.
func (p *parser) orExpr() (lera.Predicate, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	terms := []lera.Predicate{left}
	for p.eat(tokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return lera.Or{Terms: terms}, nil
}

func (p *parser) andExpr() (lera.Predicate, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	terms := []lera.Predicate{left}
	for p.eat(tokKeyword, "AND") {
		right, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return lera.And{Terms: terms}, nil
}

func (p *parser) unaryExpr() (lera.Predicate, error) {
	if p.eat(tokKeyword, "NOT") {
		inner, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return lera.Not{Term: inner}, nil
	}
	if p.eat(tokSymbol, "(") {
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (lera.Predicate, error) {
	left, err := p.qualifiedCol()
	if err != nil {
		return nil, err
	}
	var op lera.CmpOp
	switch {
	case p.eat(tokSymbol, "="):
		op = lera.EQ
	case p.eat(tokSymbol, "<>"):
		op = lera.NE
	case p.eat(tokSymbol, "<="):
		op = lera.LE
	case p.eat(tokSymbol, "<"):
		op = lera.LT
	case p.eat(tokSymbol, ">="):
		op = lera.GE
	case p.eat(tokSymbol, ">"):
		op = lera.GT
	default:
		return nil, p.errf("expected comparison operator, found %q", p.cur().text)
	}
	switch {
	case p.at(tokNumber, ""):
		v, err := strconv.ParseInt(p.cur().text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", p.cur().text)
		}
		p.i++
		return lera.ColConst{Col: left.String(), Op: op, Val: relation.Int(v)}, nil
	case p.at(tokString, ""):
		s := p.cur().text
		p.i++
		return lera.ColConst{Col: left.String(), Op: op, Val: relation.Str(s)}, nil
	case p.at(tokSymbol, "?"):
		// A `?` placeholder, numbered left to right, bound at execution.
		p.i++
		idx := p.params
		p.params++
		return lera.ColParam{Col: left.String(), Op: op, Index: idx}, nil
	case p.at(tokIdent, ""):
		right, err := p.qualifiedCol()
		if err != nil {
			return nil, err
		}
		return lera.ColCol{Left: left.String(), Op: op, Right: right.String()}, nil
	default:
		return nil, p.errf("expected literal, column or ?, found %q", p.cur().text)
	}
}
