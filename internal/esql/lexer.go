// Package esql implements a subset of ESQL [Gardarin92], DBS3's SQL dialect,
// sufficient for the workloads the paper runs: single-table selections,
// two-way equi-joins, projections and grouped aggregates. The compiler
// parses a query and emits a parallel Lera-par plan, choosing between the
// co-located (IdealJoin) and repartitioning (AssocJoin) plan shapes from the
// catalog's partitioning metadata — the compile-time parallelization of §2.
package esql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , * =  <> < <= > >= . ?
	tokKeyword
)

// token is one lexeme.
type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents as written
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "ON": true,
	"GROUP": true, "BY": true, "AND": true, "OR": true, "NOT": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AS": true,
	"USING": true,
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("esql: unterminated string at %d", i)
			}
			out = append(out, token{tokString, input[i+1 : j], i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1]))):
			j := i + 1
			for j < len(input) && unicode.IsDigit(rune(input[j])) {
				j++
			}
			out = append(out, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			if keywords[strings.ToUpper(word)] {
				out = append(out, token{tokKeyword, strings.ToUpper(word), i})
			} else {
				out = append(out, token{tokIdent, word, i})
			}
			i = j
		case c == '<':
			if i+1 < len(input) && (input[i+1] == '=' || input[i+1] == '>') {
				out = append(out, token{tokSymbol, input[i : i+2], i})
				i += 2
			} else {
				out = append(out, token{tokSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				out = append(out, token{tokSymbol, ">=", i})
				i += 2
			} else {
				out = append(out, token{tokSymbol, ">", i})
				i++
			}
		case strings.ContainsRune("(),*=.?", c):
			out = append(out, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("esql: unexpected character %q at %d", c, i)
		}
	}
	out = append(out, token{tokEOF, "", len(input)})
	return out, nil
}
