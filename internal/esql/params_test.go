package esql

import (
	"strings"
	"testing"

	"dbs3/internal/core"
	"dbs3/internal/lera"
	"dbs3/internal/relation"
)

// TestParseParams: `?` placeholders parse as ColParam predicates numbered
// left to right, anywhere a comparison literal is legal — and nowhere else.
func TestParseParams(t *testing.T) {
	cases := []struct {
		sql    string
		params int
		where  string // String() form of the parsed predicate
		errSub string // expected error substring, "" = must parse
	}{
		{sql: "SELECT * FROM A WHERE k < ?", params: 1, where: "k < ?1"},
		{sql: "SELECT * FROM A WHERE k < ? AND id = ?", params: 2, where: "(k < ?1 AND id = ?2)"},
		{sql: "SELECT * FROM A WHERE k = ? OR NOT pad = ?", params: 2, where: "(k = ?1 OR NOT pad = ?2)"},
		{sql: "SELECT * FROM A WHERE k >= ? AND k <= ?", params: 2, where: "(k >= ?1 AND k <= ?2)"},
		{sql: "SELECT * FROM A JOIN B ON A.k = B.k WHERE A.id < ?", params: 1, where: "A.id < ?1"},
		{sql: "SELECT * FROM A WHERE k <> ?", params: 1, where: "k <> ?1"},
		// A placeholder mixes freely with literals; numbering counts
		// placeholders only, not comparisons.
		{sql: "SELECT * FROM A WHERE k < 5 AND id = ? AND pad = 'x'", params: 1, where: "(k < 5 AND id = ?1 AND pad = 'x')"},
		// Positions a placeholder cannot take.
		{sql: "SELECT ? FROM A", errSub: "found \"?\""},
		{sql: "SELECT * FROM A WHERE ? < 5", errSub: "found \"?\""},
		{sql: "SELECT * FROM A WHERE k < ? ?", errSub: "trailing input"},
		{sql: "SELECT * FROM ? WHERE k < 5", errSub: "found \"?\""},
		{sql: "SELECT * FROM A JOIN B ON A.k = ?", errSub: "found \"?\""},
		{sql: "SELECT * FROM A GROUP BY ?", errSub: "found \"?\""},
	}
	for _, tc := range cases {
		q, err := Parse(tc.sql)
		if tc.errSub != "" {
			if err == nil {
				t.Errorf("%q: parsed, want error containing %q", tc.sql, tc.errSub)
			} else if !strings.Contains(err.Error(), tc.errSub) {
				t.Errorf("%q: error %q, want substring %q", tc.sql, err, tc.errSub)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.sql, err)
			continue
		}
		if q.Params != tc.params {
			t.Errorf("%q: Params = %d, want %d", tc.sql, q.Params, tc.params)
		}
		if got := q.Where.String(); got != tc.where {
			t.Errorf("%q: Where = %s, want %s", tc.sql, got, tc.where)
		}
	}
}

// Placeholder numbering in a predicate's String form is 1-based (?1, ?2);
// the underlying indices are 0-based in lexical order. This test pins the
// raw indices.
func TestParseParamIndices(t *testing.T) {
	q, err := Parse("SELECT * FROM A WHERE k < ? AND pad = ? AND id > ?")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := q.Where.(lera.And)
	if !ok || len(and.Terms) != 3 {
		t.Fatalf("Where = %#v", q.Where)
	}
	for i, term := range and.Terms {
		cp, ok := term.(lera.ColParam)
		if !ok {
			t.Fatalf("term %d = %#v, want ColParam", i, term)
		}
		if cp.Index != i {
			t.Errorf("term %d has Index %d", i, cp.Index)
		}
	}
}

// TestCompileAndBindParams: a compiled placeholder plan knows its parameter
// count, rejects wrong counts and types, and executes correctly once bound —
// repeatedly, with different argument vectors, off the same compiled plan.
func TestCompileAndBindParams(t *testing.T) {
	db := testDB(t)
	c := compiler(t, db)
	plan, _, err := c.Compile("SELECT id FROM A WHERE k < ?")
	if err != nil {
		t.Fatal(err)
	}
	if n := plan.NumParams(); n != 1 {
		t.Fatalf("NumParams = %d, want 1", n)
	}

	// Count rows for two different bindings of the same plan.
	baseline := func(limit int64) int {
		res := run(t, db, "SELECT id FROM A WHERE k < "+relation.Int(limit).String())
		rel, err := res.Relation(OutputName)
		if err != nil {
			t.Fatal(err)
		}
		return rel.Cardinality()
	}
	for _, limit := range []int64{3, 7} {
		bound, err := plan.BindParams([]relation.Value{relation.Int(limit)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Execute(bound, db.Relations(), core.Options{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		rel, err := res.Relation(OutputName)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := rel.Cardinality(), baseline(limit); got != want {
			t.Errorf("k < %d: %d rows, want %d", limit, got, want)
		}
	}
	// The template plan is untouched: it still wants its argument.
	if n := plan.NumParams(); n != 1 {
		t.Errorf("template plan mutated: NumParams = %d", n)
	}

	// Too few, too many, wrong type.
	if _, err := plan.BindParams(nil); err == nil || !strings.Contains(err.Error(), "wants 1 argument") {
		t.Errorf("too few args: %v", err)
	}
	if _, err := plan.BindParams([]relation.Value{relation.Int(1), relation.Int(2)}); err == nil || !strings.Contains(err.Error(), "wants 1 argument") {
		t.Errorf("too many args: %v", err)
	}
	if _, err := plan.BindParams([]relation.Value{relation.Str("x")}); err == nil || !strings.Contains(err.Error(), "wants INT") {
		t.Errorf("type mismatch: %v", err)
	}

	// A parameter-free plan passes through BindParams untouched (and rejects
	// stray arguments).
	plain, _, err := c.Compile("SELECT id FROM A WHERE k < 3")
	if err != nil {
		t.Fatal(err)
	}
	same, err := plain.BindParams(nil)
	if err != nil {
		t.Fatal(err)
	}
	if same != plain {
		t.Error("parameter-free plan was copied")
	}
	if _, err := plain.BindParams([]relation.Value{relation.Int(1)}); err == nil {
		t.Error("stray argument accepted")
	}
}

// TestBindParamsStringColumn: placeholders against STRING columns bind string
// arguments and type-check integer ones.
func TestBindParamsStringColumn(t *testing.T) {
	db := testDB(t)
	c := compiler(t, db)
	plan, _, err := c.Compile("SELECT id FROM A WHERE pad = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.BindParams([]relation.Value{relation.Int(1)}); err == nil || !strings.Contains(err.Error(), "wants STRING") {
		t.Errorf("INT into STRING column: %v", err)
	}
	if _, err := plan.BindParams([]relation.Value{relation.Str("pad")}); err != nil {
		t.Errorf("STRING argument rejected: %v", err)
	}
}
