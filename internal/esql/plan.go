package esql

import (
	"fmt"
	"strings"

	"dbs3/internal/lera"
	"dbs3/internal/relation"
)

// OutputName is the relation name every compiled query stores its result as.
const OutputName = "result"

// StageName is the intermediate relation a Materialize plan stores between
// its two chains (see Compiler.Materialize).
const StageName = "__stage"

// Compiler turns parsed queries into bound Lera-par plans, using catalog
// metadata to pick the parallel join shape: co-located operands become a
// triggered join (IdealJoin); otherwise the non-co-located operand is
// redistributed into a pipelined join (AssocJoin), exactly the two execution
// plans of §5.3.
type Compiler struct {
	// Resolver supplies relation schemas and partitioning.
	Resolver lera.Resolver
	// JoinAlgo selects the join implementation (default HashJoin).
	JoinAlgo lera.JoinAlgo
	// Materialize inserts an explicit materialization point before the
	// aggregation/projection stage: the scan/join/filter part of the query
	// stores its stream as an intermediate relation (StageName) and a
	// second pipeline chain scans it into the rest of the plan. The split
	// costs a materialization but gives the executor a §3 chain boundary —
	// the site where a QueryManager renegotiates the query's thread
	// reservation mid-flight (Manager.Readmit).
	Materialize bool
}

// Compile parses and plans one statement, returning the bound plan and the
// plan graph (for EXPLAIN/DOT rendering).
func (c *Compiler) Compile(sql string) (*lera.Plan, *lera.Graph, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	g, err := c.planGraph(q)
	if err != nil {
		return nil, nil, err
	}
	plan, err := lera.Bind(g, c.Resolver)
	if err != nil {
		return nil, nil, err
	}
	return plan, g, nil
}

// planGraph builds the Lera-par graph for a query.
func (c *Compiler) planGraph(q *Query) (*lera.Graph, error) {
	if len(q.Joins) == 0 {
		return c.planSingle(q)
	}
	return c.planJoin(q)
}

// planSingle: filter -> [aggregate | map] -> store.
func (c *Compiler) planSingle(q *Query) (*lera.Graph, error) {
	ri, err := c.Resolver.RelInfo(q.From)
	if err != nil {
		return nil, err
	}
	resolve := schemaResolver(ri.Schema, map[string]string{q.From: ""})
	g := lera.NewGraph()
	pred, err := rewritePredicate(orTrue(q.Where), resolve)
	if err != nil {
		return nil, err
	}
	head := g.Filter("filter", q.From, pred)
	return c.finish(g, head, ri.Schema, resolve, q)
}

// planJoin: choose the co-located side of the first join as build; stream
// the other when necessary; chain every further join as a pipelined join
// against its bound (co-partitioned) table; then filter/project/aggregate/
// store.
func (c *Compiler) planJoin(q *Query) (*lera.Graph, error) {
	j := q.Joins[0]
	// Map the join columns to their relations.
	cols := map[string]string{j.LeftCol.Table: j.LeftCol.Col, j.RightCol.Table: j.RightCol.Col}
	if _, ok := cols[q.From]; !ok {
		return nil, fmt.Errorf("esql: join condition does not reference %q", q.From)
	}
	if _, ok := cols[j.Table]; !ok {
		return nil, fmt.Errorf("esql: join condition does not reference %q", j.Table)
	}
	left, err := c.Resolver.RelInfo(q.From)
	if err != nil {
		return nil, err
	}
	right, err := c.Resolver.RelInfo(j.Table)
	if err != nil {
		return nil, err
	}
	lCol, rCol := cols[q.From], cols[j.Table]
	coPart := func(ri lera.RelInfo, col string) bool {
		return ri.Part != nil && len(ri.Part.Key()) == 1 && ri.Part.Key()[0] == col
	}
	g := lera.NewGraph()
	var head *lera.Node
	var outSchema *relation.Schema
	alias := map[string]string{}
	joined := map[string]bool{q.From: true, j.Table: true}
	switch {
	case coPart(left, lCol) && coPart(right, rCol) &&
		left.Part.Signature() == right.Part.Signature() && left.Degree == right.Degree:
		// IdealJoin: both operands co-located; triggered join.
		head = g.JoinBound("join", q.From, j.Table, []string{lCol}, []string{rCol}, c.JoinAlgo)
		outSchema = left.Schema.Concat(right.Schema, q.From+".", j.Table+".")
		alias[q.From], alias[j.Table] = q.From, j.Table
	case coPart(left, lCol):
		// AssocJoin: stream the right relation into a pipelined join.
		tr := g.Transmit("transmit", j.Table)
		head = g.JoinPipelined("join", q.From, []string{lCol}, []string{rCol}, c.JoinAlgo)
		g.ConnectHash(tr, head, []string{rCol})
		outSchema = left.Schema.Concat(right.Schema, q.From+".", "probe.")
		alias[q.From], alias[j.Table] = q.From, "probe"
	case coPart(right, rCol):
		tr := g.Transmit("transmit", q.From)
		head = g.JoinPipelined("join", j.Table, []string{rCol}, []string{lCol}, c.JoinAlgo)
		g.ConnectHash(tr, head, []string{lCol})
		outSchema = right.Schema.Concat(left.Schema, j.Table+".", "probe.")
		alias[j.Table], alias[q.From] = j.Table, "probe"
	default:
		return nil, fmt.Errorf("esql: neither %q nor %q is partitioned on its join attribute", q.From, j.Table)
	}

	// Subsequent joins: the new table is the bound build side and must be
	// partitioned on its join column; the accumulated stream redistributes
	// into the pipelined join.
	for k := 1; k < len(q.Joins); k++ {
		jc := q.Joins[k]
		var newCol string
		var streamRef qualified
		switch {
		case jc.LeftCol.Table == jc.Table && joined[jc.RightCol.Table]:
			newCol, streamRef = jc.LeftCol.Col, jc.RightCol
		case jc.RightCol.Table == jc.Table && joined[jc.LeftCol.Table]:
			newCol, streamRef = jc.RightCol.Col, jc.LeftCol
		default:
			return nil, fmt.Errorf("esql: join %d must connect new table %q to an already-joined table", k+1, jc.Table)
		}
		if joined[jc.Table] {
			return nil, fmt.Errorf("esql: table %q joined twice", jc.Table)
		}
		build, err := c.Resolver.RelInfo(jc.Table)
		if err != nil {
			return nil, err
		}
		if !coPart(build, newCol) {
			return nil, fmt.Errorf("esql: %q must be partitioned on %q to join a stream in this subset", jc.Table, newCol)
		}
		streamCol, err := schemaResolver(outSchema, alias)(streamRef.String())
		if err != nil {
			return nil, err
		}
		join := g.JoinPipelined(fmt.Sprintf("join%d", k+1), jc.Table, []string{newCol}, []string{streamCol}, c.JoinAlgo)
		g.ConnectHash(head, join, []string{streamCol})
		head = join
		outSchema = build.Schema.Concat(outSchema, jc.Table+".", "probe.")
		alias[jc.Table] = jc.Table
		joined[jc.Table] = true
	}

	resolve := schemaResolver(outSchema, alias)
	if q.Where != nil {
		pred, err := rewritePredicate(q.Where, resolve)
		if err != nil {
			return nil, err
		}
		// Residual predicate as a pipelined filter after the join.
		flt := g.FilterPipelined("where", pred)
		g.ConnectSame(head, flt)
		head = flt
	}
	return c.finish(g, head, outSchema, resolve, q)
}

// finish appends the optional aggregate or projection and the store node.
// With Materialize set, the stream produced so far is first stored as the
// stage relation and scanned back by a second chain, turning the plan into
// two chains with a materialization point between them.
func (c *Compiler) finish(g *lera.Graph, head *lera.Node, schema *relation.Schema, resolve func(string) (string, error), q *Query) (*lera.Graph, error) {
	if c.Materialize {
		st := g.Store("stage", StageName)
		g.ConnectSame(head, st)
		head = g.Transmit("scan", StageName)
	}
	if q.Agg != nil {
		groupBy := make([]string, len(q.GroupBy))
		for i, col := range q.GroupBy {
			r, err := resolve(col)
			if err != nil {
				return nil, err
			}
			groupBy[i] = r
		}
		aggCol := ""
		if q.Agg.Col != "" {
			r, err := resolve(q.Agg.Col)
			if err != nil {
				return nil, err
			}
			aggCol = r
		}
		agg := g.Aggregate("aggregate", groupBy, q.Agg.Kind, aggCol)
		g.ConnectHash(head, agg, groupBy)
		st := g.Store("store", OutputName)
		g.ConnectSame(agg, st)
		return g, nil
	}
	if !q.Star && len(q.Cols) > 0 {
		cols := make([]string, len(q.Cols))
		for i, col := range q.Cols {
			r, err := resolve(col)
			if err != nil {
				return nil, err
			}
			cols[i] = r
		}
		m := g.Map("project", cols)
		g.ConnectSame(head, m)
		head = m
	}
	st := g.Store("store", OutputName)
	g.ConnectSame(head, st)
	return g, nil
}

// schemaResolver resolves (possibly qualified) ESQL column references
// against a schema. alias maps the user-visible table name to the prefix
// used in the schema ("" for unprefixed single-table schemas, "probe" for
// the streamed side of a pipelined join).
func schemaResolver(s *relation.Schema, alias map[string]string) func(string) (string, error) {
	return func(name string) (string, error) {
		// Exact hit first.
		if _, ok := s.Index(name); ok {
			return name, nil
		}
		if table, col, isQualified := strings.Cut(name, "."); isQualified {
			prefix, known := alias[table]
			if !known {
				return "", fmt.Errorf("esql: unknown table %q in %q", table, name)
			}
			// Collision-prefixed name.
			if prefix != "" {
				if cand := prefix + "." + col; candIn(s, cand) {
					return cand, nil
				}
			}
			// Non-colliding column keeps its bare name.
			if candIn(s, col) {
				return col, nil
			}
			return "", fmt.Errorf("esql: no column %q in %s", name, s)
		}
		// Unqualified name: accept when exactly one prefixed variant exists.
		var match string
		for i := 0; i < s.Len(); i++ {
			cn := s.Column(i).Name
			if _, col, ok := strings.Cut(cn, "."); ok && col == name {
				if match != "" {
					return "", fmt.Errorf("esql: ambiguous column %q in %s", name, s)
				}
				match = cn
			}
		}
		if match != "" {
			return match, nil
		}
		return "", fmt.Errorf("esql: no column %q in %s", name, s)
	}
}

func candIn(s *relation.Schema, name string) bool {
	_, ok := s.Index(name)
	return ok
}

// rewritePredicate rebuilds a predicate with resolved column names.
func rewritePredicate(p lera.Predicate, resolve func(string) (string, error)) (lera.Predicate, error) {
	switch t := p.(type) {
	case lera.True:
		return t, nil
	case lera.ColConst:
		col, err := resolve(t.Col)
		if err != nil {
			return nil, err
		}
		t.Col = col
		return t, nil
	case lera.ColParam:
		col, err := resolve(t.Col)
		if err != nil {
			return nil, err
		}
		t.Col = col
		return t, nil
	case lera.ColCol:
		l, err := resolve(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := resolve(t.Right)
		if err != nil {
			return nil, err
		}
		t.Left, t.Right = l, r
		return t, nil
	case lera.And:
		out := lera.And{Terms: make([]lera.Predicate, len(t.Terms))}
		for i, term := range t.Terms {
			rw, err := rewritePredicate(term, resolve)
			if err != nil {
				return nil, err
			}
			out.Terms[i] = rw
		}
		return out, nil
	case lera.Or:
		out := lera.Or{Terms: make([]lera.Predicate, len(t.Terms))}
		for i, term := range t.Terms {
			rw, err := rewritePredicate(term, resolve)
			if err != nil {
				return nil, err
			}
			out.Terms[i] = rw
		}
		return out, nil
	case lera.Not:
		rw, err := rewritePredicate(t.Term, resolve)
		if err != nil {
			return nil, err
		}
		return lera.Not{Term: rw}, nil
	default:
		return nil, fmt.Errorf("esql: unsupported predicate %T", p)
	}
}

// orTrue substitutes TRUE for a missing predicate.
func orTrue(p lera.Predicate) lera.Predicate {
	if p == nil {
		return lera.True{}
	}
	return p
}
