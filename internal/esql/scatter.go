package esql

import (
	"fmt"

	"dbs3/internal/lera"
)

// ScatterSpec is the coordinator half of a scatter-gather execution: how the
// per-node result streams of one statement recombine into the answer a
// single node holding the union relation would produce. Workers run the
// statement unchanged over their shard — for aggregate queries that is
// exactly the partial-aggregate pushdown, because each worker's GROUP BY
// computes complete groups over its fragment of the data — and the
// coordinator either unions the streams (no aggregate) or folds the partial
// rows group-wise with the merge aggregate (lera.AggKind.Merge).
type ScatterSpec struct {
	// HasAgg reports whether the statement aggregates. Without an
	// aggregate, scatter-gather is a plain union-merge of the node streams.
	HasAgg bool
	// Merge is the aggregate that folds partial values (COUNT merges by
	// summing; SUM/MIN/MAX are self-merging). Valid only when HasAgg.
	Merge lera.AggKind
	// GroupCols is the number of leading result columns that form the group
	// key; the partial aggregate value is the single column after them (the
	// engine's aggregate output shape: group key, then value). Valid only
	// when HasAgg.
	GroupCols int
	// Params is the number of `?` placeholders each fan-out execution binds.
	Params int
}

// ScatterPlan parses one statement and derives its scatter-gather merge
// shape. It rejects nothing a worker would accept: any statement in the ESQL
// subset has a well-defined merge (union or grouped fold), because the
// subset's aggregates all decompose over disjoint shards.
func ScatterPlan(sql string) (*ScatterSpec, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	spec := &ScatterSpec{Params: q.Params}
	if q.Agg == nil {
		return spec, nil
	}
	if len(q.GroupBy) == 0 {
		// Unreachable in the current grammar (aggregates require GROUP BY),
		// kept as a guard: a global aggregate would still merge, but the
		// group-key arithmetic below assumes at least one key column.
		return nil, fmt.Errorf("esql: aggregate without GROUP BY has no scatter-gather shape")
	}
	spec.HasAgg = true
	spec.Merge = q.Agg.Kind.Merge()
	spec.GroupCols = len(q.GroupBy)
	return spec, nil
}
