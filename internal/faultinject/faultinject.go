// Package faultinject is a deterministic TCP/HTTP chaos proxy for the
// failure suites: it sits in front of a worker node and injects faults —
// connection refusal, mid-stream connection reset, response latency,
// truncated response bodies (which, against the binary columnar wire,
// means truncated frames), and canned HTTP 500s — under a schedule that is
// a pure function of the accepted-connection index, so a seeded run
// reproduces the exact same fault sequence every time.
//
// Two Injector implementations cover the two kinds of test:
//
//   - Script plays an explicit per-connection fault list and then forwards
//     cleanly — the surgical tool for "the first connection dies after the
//     header, the second succeeds" regressions.
//   - Seeded draws from a weighted fault mix with a seeded PRNG — the
//     chaos-suite tool, with every decision written to a schedule log so a
//     CI failure can be replayed from the artifact.
//
// Independently of the schedule, SetDown(true) hard-kills the proxy: new
// connections are reset immediately without consulting the injector, which
// is how the flapping-node and all-replicas-down scenarios drive outages
// with test-controlled timing.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// None forwards the connection untouched.
	None Kind = iota
	// Refuse resets the connection at accept time, before reading the
	// request — the client sees a connect-phase failure (ECONNRESET/EOF
	// before any response byte), the same class as a dead listener.
	Refuse
	// Reset forwards the request, then hard-resets (RST) the client after
	// After response bytes — a worker dying mid-stream.
	Reset
	// Truncate forwards the request, then closes the client cleanly (FIN)
	// after After response bytes — a truncated stream: against the columnar
	// wire encoding this cuts a frame mid-payload.
	Truncate
	// Latency delays the first response byte by Delay, then forwards
	// untouched — a slow worker, for timeout and jitter paths.
	Latency
	// Status500 swallows the request and answers a canned HTTP 500 without
	// contacting the upstream at all.
	Status500
)

// String names the fault kind for schedule logs.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Refuse:
		return "refuse"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Latency:
		return "latency"
	case Status500:
		return "status500"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one injected failure: the kind plus its parameter — After
// response bytes forwarded before Reset/Truncate strike, Delay before the
// first response byte for Latency.
type Fault struct {
	Kind  Kind
	After int
	Delay time.Duration
}

func (f Fault) String() string {
	switch f.Kind {
	case Reset, Truncate:
		return fmt.Sprintf("%s after %dB", f.Kind, f.After)
	case Latency:
		return fmt.Sprintf("%s %v", f.Kind, f.Delay)
	default:
		return f.Kind.String()
	}
}

// Injector decides the fault for the proxy's n-th accepted connection
// (0-based). Implementations must be safe for calls from the accept loop;
// determinism is their whole point.
type Injector interface {
	Fault(conn int) Fault
}

// Script plays an explicit fault sequence: connection i gets Script[i], and
// every connection past the end is forwarded cleanly.
type Script []Fault

// Fault implements Injector.
func (s Script) Fault(conn int) Fault {
	if conn < len(s) {
		return s[conn]
	}
	return Fault{Kind: None}
}

// Weights is the per-kind decision weight of a Seeded injector. Zero-valued
// kinds are never drawn; Clean is the weight of injecting nothing.
type Weights struct {
	Clean     int
	Refuse    int
	Reset     int
	Truncate  int
	Latency   int
	Status500 int
}

// Seeded draws each connection's fault from a weighted mix with a PRNG
// seeded once at construction: the schedule is a pure function of the seed
// and the connection order.
type Seeded struct {
	weights Weights
	// MaxAfter bounds the bytes forwarded before Reset/Truncate (drawn
	// uniformly in [0, MaxAfter)); MaxDelay bounds Latency the same way.
	maxAfter int
	maxDelay time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewSeeded builds a Seeded injector. maxAfter and maxDelay bound the
// Reset/Truncate byte threshold and the Latency delay.
func NewSeeded(seed int64, w Weights, maxAfter int, maxDelay time.Duration) *Seeded {
	if maxAfter <= 0 {
		maxAfter = 1 << 16
	}
	if maxDelay <= 0 {
		maxDelay = 20 * time.Millisecond
	}
	return &Seeded{
		weights:  w,
		maxAfter: maxAfter,
		maxDelay: maxDelay,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Fault implements Injector: one weighted draw per connection.
func (s *Seeded) Fault(int) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.weights
	total := w.Clean + w.Refuse + w.Reset + w.Truncate + w.Latency + w.Status500
	if total <= 0 {
		return Fault{Kind: None}
	}
	n := s.rng.Intn(total)
	switch {
	case n < w.Clean:
		return Fault{Kind: None}
	case n < w.Clean+w.Refuse:
		return Fault{Kind: Refuse}
	case n < w.Clean+w.Refuse+w.Reset:
		return Fault{Kind: Reset, After: s.rng.Intn(s.maxAfter)}
	case n < w.Clean+w.Refuse+w.Reset+w.Truncate:
		return Fault{Kind: Truncate, After: s.rng.Intn(s.maxAfter)}
	case n < w.Clean+w.Refuse+w.Reset+w.Truncate+w.Latency:
		return Fault{Kind: Latency, Delay: time.Duration(s.rng.Int63n(int64(s.maxDelay)))}
	default:
		return Fault{Kind: Status500}
	}
}

// canned500 is the Status500 response: a complete, connection-closing HTTP
// reply so well-behaved clients surface a clean status error.
const canned500 = "HTTP/1.1 500 Internal Server Error\r\n" +
	"Content-Type: text/plain\r\n" +
	"Content-Length: 21\r\n" +
	"Connection: close\r\n\r\n" +
	"faultinject: injected"

// Proxy is one chaos proxy instance: it listens on a loopback port and
// forwards every accepted connection to the target address, applying the
// injector's fault for that connection index.
type Proxy struct {
	target string
	inj    Injector
	logw   io.Writer // written only from the accept loop (single writer)

	ln     net.Listener
	conns  atomic.Int64
	down   atomic.Bool
	closed atomic.Bool

	mu   sync.Mutex
	live map[net.Conn]struct{}

	wg sync.WaitGroup // accept loop + connection handlers
}

// New starts a proxy in front of target ("host:port"). Every accept
// decision is logged to logw (nil = discard); the log is the injected-fault
// schedule the CI chaos job archives.
func New(target string, inj Injector, logw io.Writer) (*Proxy, error) {
	if inj == nil {
		inj = Script(nil)
	}
	if logw == nil {
		logw = io.Discard
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultinject: listen: %w", err)
	}
	p := &Proxy{target: target, inj: inj, logw: logw, ln: ln, live: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address ("127.0.0.1:port").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's base URL ("http://127.0.0.1:port") — what a cluster
// config lists as the replica address.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Conns is the number of connections accepted so far.
func (p *Proxy) Conns() int64 { return p.conns.Load() }

// SetDown toggles the hard-down state: while down, every new connection is
// reset immediately (the node is dead), without consuming the injector's
// schedule. Flapping a node is SetDown(true); ...; SetDown(false).
func (p *Proxy) SetDown(down bool) { p.down.Store(down) }

// Sever hard-kills (RST) every live connection while leaving the listener
// up — a worker crashing mid-stream and coming straight back: streams in
// flight die, new connections keep following the schedule. Combine with
// SetDown(true) for a crash the node does not come back from.
func (p *Proxy) Sever() {
	p.mu.Lock()
	open := make([]net.Conn, 0, len(p.live))
	for c := range p.live {
		open = append(open, c)
	}
	p.mu.Unlock()
	for _, c := range open {
		hardClose(c)
	}
}

// Close stops the proxy: the listener closes, every live connection is
// severed, and Close returns once all handlers exited.
func (p *Proxy) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.ln.Close()
	p.mu.Lock()
	open := make([]net.Conn, 0, len(p.live))
	for c := range p.live {
		open = append(open, c)
	}
	p.mu.Unlock()
	for _, c := range open {
		c.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.live[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.live, c)
	p.mu.Unlock()
}

// acceptLoop is the single scheduler: it draws each connection's fault (or
// the down override), logs the decision, and hands the connection to a
// handler goroutine. Being the only writer, it needs no lock around logw.
func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n := p.conns.Add(1) - 1
		var f Fault
		if p.down.Load() {
			f = Fault{Kind: Refuse}
			fmt.Fprintf(p.logw, "conn %d: refuse (down)\n", n)
		} else {
			f = p.inj.Fault(int(n))
			fmt.Fprintf(p.logw, "conn %d: %s\n", n, f)
		}
		p.wg.Add(1)
		go p.serve(conn, f)
	}
}

// hardClose resets the peer: linger 0 turns Close into an RST, so the
// client observes a connection reset rather than a clean EOF.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// serve applies one connection's fault.
func (p *Proxy) serve(client net.Conn, f Fault) {
	defer p.wg.Done()
	p.track(client)
	defer p.untrack(client)

	switch f.Kind {
	case Refuse:
		hardClose(client)
		return
	case Status500:
		// Wait for the request to arrive before answering — an HTTP client
		// that sees a response before it finished sending treats the
		// connection as poisoned rather than parsing the 500.
		readRequest(client)
		client.Write([]byte(canned500))
		client.Close()
		return
	}

	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		hardClose(client)
		return
	}
	p.track(upstream)
	defer p.untrack(upstream)

	// Request direction: forward untouched. When the response side decides
	// the connection's fate it closes both conns, unblocking this copy.
	done := make(chan struct{})
	go func() {
		io.Copy(upstream, client)
		close(done)
	}()

	p.copyResponse(client, upstream, f)
	client.Close()
	upstream.Close()
	<-done
}

// readRequest consumes the client's request — headers plus a declared
// Content-Length body (bounded, with a deadline) — so the client considers
// the request fully sent, and no unread bytes linger to turn the close
// into an RST before the canned response is read.
func readRequest(c net.Conn) {
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	defer c.SetReadDeadline(time.Time{})
	buf := make([]byte, 8192)
	var seen []byte
	want := -1
	for len(seen) < 256*1024 {
		if want < 0 {
			if i := bytes.Index(seen, []byte("\r\n\r\n")); i >= 0 {
				want = i + 4 + contentLength(seen[:i])
			}
		}
		if want >= 0 && len(seen) >= want {
			return
		}
		n, err := c.Read(buf)
		seen = append(seen, buf[:n]...)
		if err != nil {
			return
		}
	}
}

// contentLength extracts a Content-Length header from a raw header block
// (0 when absent or malformed).
func contentLength(headers []byte) int {
	for _, line := range bytes.Split(headers, []byte("\r\n")) {
		name, value, ok := bytes.Cut(line, []byte(":"))
		if ok && strings.EqualFold(string(bytes.TrimSpace(name)), "Content-Length") {
			n, err := strconv.Atoi(string(bytes.TrimSpace(value)))
			if err != nil || n < 0 {
				return 0
			}
			return n
		}
	}
	return 0
}

// copyResponse forwards upstream→client, applying the response-side fault:
// Latency sleeps before the first byte; Reset/Truncate stop after After
// bytes, with Reset sending an RST and Truncate a clean FIN.
func (p *Proxy) copyResponse(client, upstream net.Conn, f Fault) {
	if f.Kind == Latency && f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	limit := -1
	if f.Kind == Reset || f.Kind == Truncate {
		limit = f.After
	}
	buf := make([]byte, 16*1024)
	forwarded := 0
	for {
		chunk := len(buf)
		if limit >= 0 && forwarded+chunk > limit {
			chunk = limit - forwarded
		}
		if chunk == 0 {
			// Budget exhausted: strike.
			if f.Kind == Reset {
				hardClose(client)
			}
			return
		}
		n, err := upstream.Read(buf[:chunk])
		if n > 0 {
			if _, werr := client.Write(buf[:n]); werr != nil {
				return
			}
			forwarded += n
		}
		if err != nil {
			return
		}
	}
}
