package faultinject

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// bigBody is the backend payload — large enough that Reset/Truncate
// thresholds land mid-body.
var bigBody = bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB

// newBackend serves bigBody on every request.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(bigBody)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// get issues one request through the proxy on a fresh connection (no
// keep-alive), so each request maps 1:1 onto a proxy connection and the
// Script index is deterministic.
func get(p *Proxy) (int, []byte, error) {
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer client.CloseIdleConnections()
	resp, err := client.Get(p.URL() + "/")
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func newProxy(t *testing.T, target string, inj Injector, logw io.Writer) *Proxy {
	t.Helper()
	p, err := New(target, inj, logw)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestCleanForwarding: a connection with no fault passes bytes untouched in
// both directions.
func TestCleanForwarding(t *testing.T) {
	backend := newBackend(t)
	p := newProxy(t, backend.Listener.Addr().String(), Script(nil), nil)
	code, body, err := get(p)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 || !bytes.Equal(body, bigBody) {
		t.Fatalf("clean forward: code=%d len=%d, want 200 with %d bytes", code, len(body), len(bigBody))
	}
}

// TestRefuse: the connection dies before any response byte — a
// connect-phase failure from the client's point of view.
func TestRefuse(t *testing.T) {
	backend := newBackend(t)
	p := newProxy(t, backend.Listener.Addr().String(), Script{{Kind: Refuse}}, nil)
	if _, _, err := get(p); err == nil {
		t.Fatal("refused connection returned a response")
	}
	// The schedule moves on: the next connection is clean.
	if code, _, err := get(p); err != nil || code != 200 {
		t.Fatalf("connection after refuse: code=%d err=%v, want clean 200", code, err)
	}
}

// TestTruncate: the response ends with a clean FIN mid-body — the client
// sees a short body, not a full one.
func TestTruncate(t *testing.T) {
	backend := newBackend(t)
	p := newProxy(t, backend.Listener.Addr().String(), Script{{Kind: Truncate, After: 1000}}, nil)
	_, body, err := get(p)
	if err == nil && len(body) >= len(bigBody) {
		t.Fatalf("truncated response delivered %d bytes intact", len(body))
	}
	if len(body) > 1000 {
		t.Fatalf("truncation passed %d bytes, limit 1000 (headers included)", len(body))
	}
}

// TestReset: the client observes a hard error mid-read, not a clean EOF.
func TestReset(t *testing.T) {
	backend := newBackend(t)
	p := newProxy(t, backend.Listener.Addr().String(), Script{{Kind: Reset, After: 512}}, nil)
	_, _, err := get(p)
	if err == nil {
		t.Fatal("reset-mid-stream read completed without error")
	}
}

// TestLatency delays the response by at least the configured Delay.
func TestLatency(t *testing.T) {
	backend := newBackend(t)
	const delay = 80 * time.Millisecond
	p := newProxy(t, backend.Listener.Addr().String(), Script{{Kind: Latency, Delay: delay}}, nil)
	start := time.Now()
	code, _, err := get(p)
	if err != nil || code != 200 {
		t.Fatalf("latency fault broke the request: code=%d err=%v", code, err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("response arrived in %v, latency fault promised >= %v", elapsed, delay)
	}
}

// TestStatus500: the canned error is a complete HTTP response the client
// parses as a 500 without the backend ever seeing the request.
func TestStatus500(t *testing.T) {
	hits := 0
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
	}))
	t.Cleanup(backend.Close)
	p := newProxy(t, backend.Listener.Addr().String(), Script{{Kind: Status500}}, nil)
	code, body, err := get(p)
	if err != nil {
		t.Fatal(err)
	}
	if code != 500 {
		t.Fatalf("injected status = %d, want 500", code)
	}
	if !strings.Contains(string(body), "faultinject") {
		t.Errorf("canned body = %q", body)
	}
	if hits != 0 {
		t.Errorf("backend saw %d requests through an injected 500", hits)
	}
}

// TestSetDown: while down every connection is refused regardless of the
// schedule; up again, traffic resumes — the flapping primitive.
func TestSetDown(t *testing.T) {
	backend := newBackend(t)
	p := newProxy(t, backend.Listener.Addr().String(), Script(nil), nil)
	p.SetDown(true)
	if _, _, err := get(p); err == nil {
		t.Fatal("down proxy served a request")
	}
	p.SetDown(false)
	if code, _, err := get(p); err != nil || code != 200 {
		t.Fatalf("revived proxy: code=%d err=%v", code, err)
	}
}

// TestSeededDeterminism: the schedule is a pure function of the seed.
func TestSeededDeterminism(t *testing.T) {
	w := Weights{Clean: 4, Refuse: 2, Reset: 2, Truncate: 2, Latency: 1, Status500: 1}
	a := NewSeeded(42, w, 4096, 10*time.Millisecond)
	b := NewSeeded(42, w, 4096, 10*time.Millisecond)
	c := NewSeeded(43, w, 4096, 10*time.Millisecond)
	var diverged bool
	for i := 0; i < 200; i++ {
		fa, fb, fc := a.Fault(i), b.Fault(i), c.Fault(i)
		if fa != fb {
			t.Fatalf("conn %d: same seed drew %v and %v", i, fa, fb)
		}
		if fa != fc {
			diverged = true
		}
	}
	if !diverged {
		t.Error("two different seeds drew 200 identical faults")
	}
}

// TestScheduleLog: every accept decision lands in the log, in connection
// order — the artifact the CI chaos job uploads.
func TestScheduleLog(t *testing.T) {
	backend := newBackend(t)
	var log bytes.Buffer
	p := newProxy(t, backend.Listener.Addr().String(), Script{{Kind: Refuse}, {Kind: None}}, &log)
	get(p)
	get(p)
	// Accept decisions are logged before the handler runs; both lines are
	// present once both responses resolved.
	for i, want := range []string{"conn 0: refuse", "conn 1: none"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("schedule log missing %q (line %d): %q", want, i, log.String())
		}
	}
	if p.Conns() != 2 {
		t.Errorf("Conns = %d, want 2", p.Conns())
	}
}

// TestSeverKillsLiveStreamButNotProxy: Sever resets an in-flight transfer
// while the proxy keeps serving new connections — the repeatable
// kill-mid-stream primitive.
func TestSeverKillsLiveStreamButNotProxy(t *testing.T) {
	// A backend that holds its response open indefinitely.
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done()
	}))
	t.Cleanup(backend.Close)
	p := newProxy(t, backend.Listener.Addr().String(), Script(nil), nil)
	errc := make(chan error, 1)
	go func() {
		_, _, err := get(p)
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.Conns() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the proxy")
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Sever()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("severed stream completed cleanly")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client still blocked after Sever")
	}
	// The proxy itself survives Sever: it still accepts new connections.
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("proxy refused a new connection after Sever: %v", err)
	}
	conn.Close()
	deadline = time.Now().Add(5 * time.Second)
	for p.Conns() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("Conns = %d after a post-Sever dial, want 2", p.Conns())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCloseSeversLiveConnections: Close returns even with a connection
// wedged mid-transfer.
func TestCloseSeversLiveConnections(t *testing.T) {
	// A backend that never finishes its response.
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done()
	}))
	t.Cleanup(backend.Close)
	p, err := New(backend.Listener.Addr().String(), Script(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := get(p)
		errc <- err
	}()
	// Wait for the connection to establish, then tear the proxy down.
	deadline := time.Now().Add(5 * time.Second)
	for p.Conns() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the proxy")
		}
		time.Sleep(5 * time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a live connection")
	}
	select {
	case <-errc:
	case <-time.After(5 * time.Second):
		t.Fatal("severed client still blocked after Close")
	}
}
