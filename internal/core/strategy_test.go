package core

import "testing"

func queuesWithLens(lens ...int) []*Queue {
	qs := make([]*Queue, len(lens))
	for i, n := range lens {
		qs[i] = NewQueue(maxInt(n, 1))
		for j := 0; j < n; j++ {
			qs[i].Push(tupleAct(int64(j)))
		}
	}
	return qs
}

func TestRandomPicksOnlyNonEmpty(t *testing.T) {
	qs := queuesWithLens(0, 3, 0, 2, 0)
	s := newRandomStrategy(42)
	for i := 0; i < 100; i++ {
		k := s.pick(qs)
		if k != 1 && k != 3 {
			t.Fatalf("picked empty queue %d", k)
		}
	}
}

func TestRandomAllEmpty(t *testing.T) {
	qs := queuesWithLens(0, 0)
	if k := newRandomStrategy(1).pick(qs); k != -1 {
		t.Errorf("pick = %d, want -1", k)
	}
}

func TestRandomDeterministicWithSeed(t *testing.T) {
	qs := queuesWithLens(1, 1, 1, 1)
	a, b := newRandomStrategy(7), newRandomStrategy(7)
	for i := 0; i < 50; i++ {
		if a.pick(qs) != b.pick(qs) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandomCoversAllNonEmpty(t *testing.T) {
	qs := queuesWithLens(1, 1, 1)
	s := newRandomStrategy(3)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[s.pick(qs)] = true
	}
	if len(seen) != 3 {
		t.Errorf("random strategy never visited some queues: %v", seen)
	}
}

func TestLPTPicksMostExpensive(t *testing.T) {
	qs := queuesWithLens(1, 1, 1)
	qs[0].SetEstimate(10)
	qs[1].SetEstimate(99)
	qs[2].SetEstimate(50)
	if k := (lptStrategy{}).pick(qs); k != 1 {
		t.Errorf("LPT picked %d, want 1", k)
	}
	// Drain queue 1; next pick is queue 2.
	qs[1].popBatch(1, nil)
	if k := (lptStrategy{}).pick(qs); k != 2 {
		t.Errorf("LPT picked %d, want 2", k)
	}
}

func TestLPTAllEmpty(t *testing.T) {
	qs := queuesWithLens(0, 0, 0)
	if k := (lptStrategy{}).pick(qs); k != -1 {
		t.Errorf("pick = %d, want -1", k)
	}
}

func TestLPTDynamicPipelinedScore(t *testing.T) {
	qs := queuesWithLens(3, 1)
	qs[0].SetPerTupleCost(1)
	qs[1].SetPerTupleCost(100)
	if k := (lptStrategy{}).pick(qs); k != 1 {
		t.Errorf("LPT should weight per-tuple cost, picked %d", k)
	}
}

func TestNewStrategyFactory(t *testing.T) {
	if _, ok := newStrategy(StrategyLPT, 1).(lptStrategy); !ok {
		t.Error("StrategyLPT should build lptStrategy")
	}
	if _, ok := newStrategy(StrategyRandom, 1).(*randomStrategy); !ok {
		t.Error("StrategyRandom should build randomStrategy")
	}
	if _, ok := newStrategy(StrategyAuto, 1).(*randomStrategy); !ok {
		t.Error("StrategyAuto should default to randomStrategy at pool level")
	}
}

func TestStrategyKindString(t *testing.T) {
	cases := map[StrategyKind]string{
		StrategyAuto:     "auto",
		StrategyRandom:   "random",
		StrategyLPT:      "lpt",
		StrategyKind(99): "unknown",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
