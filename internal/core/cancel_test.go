package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"dbs3/internal/lera"
	"dbs3/internal/workload"
)

// TestExecuteContextCancel cancels mid-execution with a tiny queue capacity
// so producers are blocked on backpressure when the abort lands; the call
// must return ctx.Err() promptly and leak no goroutines.
func TestExecuteContextCancel(t *testing.T) {
	db, err := workload.NewJoinDB(50_000, 5_000, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.AssocJoinPlan(lera.NestedLoop)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		<-started
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	resCh := make(chan error, 1)
	go func() {
		close(started)
		_, err := ExecuteContext(ctx, plan, db.Relations(), Options{Threads: 4, QueueCap: 2})
		resCh <- err
	}()
	select {
	case err := <-resCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled execution did not return within 10s")
	}

	// Workers, producers and the watcher must all unwind.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestExecuteContextPreCancelled never starts work under an already
// cancelled context.
func TestExecuteContextPreCancelled(t *testing.T) {
	db, err := workload.NewJoinDB(1_000, 100, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteContext(ctx, plan, db.Relations(), Options{Threads: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExecuteContextComplete checks that the context plumbing does not
// disturb a normal run, including with concurrent chains.
func TestExecuteContextComplete(t *testing.T) {
	db, err := workload.NewJoinDB(2_000, 200, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.AssocJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range []bool{false, true} {
		res, err := ExecuteContext(context.Background(), plan, db.Relations(), Options{Threads: 4, ConcurrentChains: cc})
		if err != nil {
			t.Fatalf("ConcurrentChains=%v: %v", cc, err)
		}
		if got := res.Outputs["Res"].Cardinality(); got != db.ExpectedJoinCount() {
			t.Fatalf("ConcurrentChains=%v: cardinality = %d, want %d", cc, got, db.ExpectedJoinCount())
		}
	}
}

// TestPlanAllocationMatchesExecute verifies the split allocation API: the
// allocation PlanAllocation returns is the one Execute uses.
func TestPlanAllocationMatchesExecute(t *testing.T) {
	db, err := workload.NewJoinDB(2_000, 200, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Processors: 8, Utilization: 0.5}
	alloc, err := PlanAllocation(plan, db.Relations(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteContext(context.Background(), plan, db.Relations(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc.Total != alloc.Total {
		t.Errorf("Execute used %d threads, PlanAllocation chose %d", res.Alloc.Total, alloc.Total)
	}
}

// TestQueueAbort covers the backpressure release: a producer blocked on a
// full queue is freed by Abort and subsequent pushes are dropped.
func TestQueueAbort(t *testing.T) {
	q := NewQueue(1)
	q.Push(Activation{})
	unblocked := make(chan struct{})
	go func() {
		q.Push(Activation{}) // blocks: capacity 1, already full
		close(unblocked)
	}()
	time.Sleep(5 * time.Millisecond)
	q.Abort()
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Abort did not release a blocked producer")
	}
	q.Push(Activation{}) // dropped, must not panic or block
	if q.Len() != 1 {
		t.Errorf("queue length = %d after abort, want 1 (drops, no appends)", q.Len())
	}
}
