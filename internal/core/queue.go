// Package core implements DBS3's adaptive parallel execution model (§3 of
// the paper): activation queues per operator instance, a pool of threads per
// operation that is sized independently of the degree of partitioning, main
// and secondary queues to limit access conflicts, an internal activation
// cache to batch queue accesses, and Random/LPT consumption strategies. It
// also implements the four-step thread-allocation scheduler of Figure 5.
package core

import (
	"sync"
	"sync/atomic"

	"dbs3/internal/relation"
)

// Activation is a sequential unit of work: a control message (trigger) when
// Tuple is nil, or one pipelined tuple.
//
// A trigger may be *partial*: when Hi > 0 it covers only the [Lo, Hi) slice
// of the instance's triggered operand. Partial triggers implement the
// paper's proposed future work (§6, "the choice of the grain of parallelism
// independent of the operation semantics"): a triggered operation can be
// split into several sequential units per fragment, raising the activation
// count a and thereby shrinking the skew overhead v = (Pmax/P)(n-1)/a
// without touching the degree of partitioning.
type Activation struct {
	Tuple relation.Tuple
	// Lo and Hi bound a partial trigger; both zero for a whole-fragment
	// trigger. int32 keeps the struct at 32 bytes — activations are copied
	// through route buffers and queue rings on every pipelined hop, so their
	// size is data-plane bandwidth. Fragments are bounded well below 2^31
	// tuples.
	Lo, Hi int32
}

// IsTrigger reports whether the activation is a control activation.
func (a Activation) IsTrigger() bool { return a.Tuple == nil }

// IsPartial reports whether a trigger covers only a slice of the operand.
func (a Activation) IsPartial() bool { return a.Tuple == nil && a.Hi > 0 }

// Queue is the FIFO activation queue of one operator instance (paper Figure
// 4: a buffer protected by a mutex with producer/consumer conditions). A
// triggered queue receives exactly one activation; a pipelined queue
// receives one activation per tuple. Push blocks when the queue is full
// (backpressure); consumers drain batches under the owning operation's
// scheduling lock.
type Queue struct {
	mu      sync.Mutex
	notFull *sync.Cond

	// buf is the ring storage. It starts small and doubles on demand up to
	// capacity — a queue's backpressure bound — so idle instances (and the
	// many queues of a high-degree plan) never pay for their worst case.
	buf      []Activation
	capacity int
	head     int
	count    int
	// length mirrors count for lock-free readers: the consumption
	// strategies scan every queue of an operation on each pick, so reading
	// the length must not take the queue mutex (it is a heuristic — a
	// slightly stale value only affects which queue a worker tries first).
	length atomic.Int64

	closed bool
	// aborted marks the execution as cancelled: Push stops blocking and
	// silently drops, so producers drain instead of deadlocking on a full
	// queue whose consumers have exited.
	aborted bool

	// est is the static LPT estimate of the queue's total work (triggered
	// queues: derived from fragment sizes at plan build time). Written only
	// before the pools start (SetEstimate), read lock-free by lptScore.
	est float64
	// perTupleCost weighs dynamic LPT estimates of pipelined queues; same
	// write-before-run contract as est.
	perTupleCost float64

	// onPush wakes the consuming operation's workers; set by the operation.
	onPush func()
}

// NewQueue creates a queue with the given capacity (minimum 1).
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{capacity: capacity, perTupleCost: 1}
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// growLocked enlarges the ring storage (still bounded by capacity) so at
// least one more activation fits. The occupied span is relinearized to the
// front of the new ring. Growth goes straight from the initial size to the
// full capacity: a queue that outgrew one batch worth of slack is a hot
// queue, and intermediate doublings would just churn the allocator.
func (q *Queue) growLocked() {
	size := 64
	if len(q.buf) > 0 {
		size = q.capacity
	}
	if size > q.capacity {
		size = q.capacity
	}
	buf := make([]Activation, size)
	for i := 0; i < q.count; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// SetEstimate sets the static LPT cost estimate (triggered queues). Call
// before the operation's pool starts; lptScore reads it without the lock.
func (q *Queue) SetEstimate(est float64) {
	q.est = est
}

// SetPerTupleCost sets the dynamic LPT weight (pipelined queues). Call
// before the operation's pool starts; lptScore reads it without the lock.
func (q *Queue) SetPerTupleCost(c float64) {
	q.perTupleCost = c
}

// Push appends an activation, blocking while the queue is full. Pushing to a
// closed queue panics: producers are wired to close queues only after their
// last push, so this is an engine bug, not a runtime condition.
func (q *Queue) Push(a Activation) {
	q.mu.Lock()
	for q.count == q.capacity && !q.closed && !q.aborted {
		q.notFull.Wait()
	}
	if q.aborted {
		q.mu.Unlock()
		return
	}
	if q.closed {
		q.mu.Unlock()
		panic("core: push to closed queue")
	}
	if q.count == len(q.buf) {
		q.growLocked()
	}
	q.buf[(q.head+q.count)%len(q.buf)] = a
	q.count++
	q.length.Store(int64(q.count))
	notify := q.onPush
	q.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// PushBatch appends a batch of activations under one lock acquire and one
// consumer wake — the producer half of the batch-at-a-time data plane. The
// per-tuple protocol of Push (blocking backpressure when the queue is full,
// silent dropping after Abort, panic on a closed queue) is preserved: when
// the batch does not fit, PushBatch fills the queue, wakes consumers for the
// part already delivered, and blocks until space frees for the rest. The
// queue stores the individual activations, so consumers — and every counter
// and LPT estimate derived from queue contents — still see tuples, never
// batches.
//
// The caller keeps ownership of as: activations are copied into the ring
// buffer, so the slice may be reused as soon as PushBatch returns.
func (q *Queue) PushBatch(as []Activation) {
	i := 0
	for i < len(as) {
		q.mu.Lock()
		for q.count == q.capacity && !q.closed && !q.aborted {
			q.notFull.Wait()
		}
		if q.aborted {
			q.mu.Unlock()
			return
		}
		if q.closed {
			q.mu.Unlock()
			panic("core: push to closed queue")
		}
		// Copy in contiguous spans (the ring's wrap point) — memmove, not a
		// per-element store loop — growing the ring storage as needed.
		for i < len(as) && q.count < q.capacity {
			if q.count == len(q.buf) {
				q.growLocked()
			}
			tail := (q.head + q.count) % len(q.buf)
			span := len(q.buf) - tail
			if free := len(q.buf) - q.count; span > free {
				span = free
			}
			if rem := len(as) - i; span > rem {
				span = rem
			}
			copy(q.buf[tail:tail+span], as[i:i+span])
			q.count += span
			i += span
		}
		q.length.Store(int64(q.count))
		notify := q.onPush
		q.mu.Unlock()
		// Wake consumers before (possibly) blocking for the remainder: a
		// full queue only drains if its consumers know there is work.
		if notify != nil {
			notify()
		}
	}
}

// popBatch removes up to max activations. It never blocks.
func (q *Queue) popBatch(max int, dst []Activation) []Activation {
	q.mu.Lock()
	n := q.count
	if n > max {
		n = max
	}
	// Drain in at most two contiguous spans — bulk copy plus bulk clear
	// (clearing drops Tuple references so consumed activations do not pin
	// their tuples until the slot is overwritten).
	for rem := n; rem > 0; {
		span := len(q.buf) - q.head
		if span > rem {
			span = rem
		}
		dst = append(dst, q.buf[q.head:q.head+span]...)
		clear(q.buf[q.head : q.head+span])
		q.head = (q.head + span) % len(q.buf)
		rem -= span
	}
	q.count -= n
	if n > 0 {
		q.length.Store(int64(q.count))
		q.notFull.Broadcast()
	}
	q.mu.Unlock()
	return dst
}

// Len returns the number of queued activations. It is lock-free (and so at
// worst momentarily stale) because the consumption strategies call it for
// every queue of an operation on every pick.
func (q *Queue) Len() int {
	return int(q.length.Load())
}

// Close marks the queue as receiving no further activations. Blocked
// producers are released (they will panic — see Push); consumers drain the
// remainder and then treat the queue as exhausted.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.notFull.Broadcast()
	notify := q.onPush
	q.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// Abort marks the execution as cancelled. Blocked producers are released and
// further pushes are dropped; pending activations stay in the buffer but the
// operation's workers exit without consuming them.
func (q *Queue) Abort() {
	q.mu.Lock()
	q.aborted = true
	q.notFull.Broadcast()
	notify := q.onPush
	q.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// Drained reports whether the queue is closed and empty.
func (q *Queue) Drained() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed && q.count == 0
}

// lptScore is the LPT priority: remaining estimated work. For triggered
// queues the static estimate dominates; for pipelined queues the score is
// queue length times the per-tuple cost. Lock-free like Len, for the same
// reason.
func (q *Queue) lptScore() float64 {
	n := q.length.Load()
	if n == 0 {
		return 0
	}
	if q.est > 0 {
		return q.est
	}
	return float64(n) * q.perTupleCost
}
