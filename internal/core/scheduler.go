package core

import (
	"math"
	"sort"

	"dbs3/internal/lera"
)

// SchedulerOptions parameterize the four-step thread allocation of Figure 5.
type SchedulerOptions struct {
	// Threads fixes the query's total thread count (degree of parallelism).
	// Zero selects it from query complexity (step 1).
	Threads int
	// Processors caps the useful degree of parallelism (the paper: "there
	// is no benefit in allocating more threads than available processors").
	Processors int
	// StartupCost is the per-thread start-up cost in the same work units as
	// plan complexities; step 1 minimizes W/n + s*n [Wilschut92], giving
	// n* = sqrt(W/s).
	StartupCost float64
	// Strategy overrides step 4 for every operation; StrategyAuto keeps the
	// per-operation choice.
	Strategy StrategyKind
	// SkewThreshold is the coefficient of variation of per-instance costs
	// above which auto mode picks LPT for a triggered operation.
	SkewThreshold float64
	// Utilization is the average processor utilization by other queries, in
	// [0, 1). Step 1 reduces the auto-chosen thread count by this factor
	// "in order to increase the multi-user throughput" [Rahm93]. Explicit
	// Threads settings are not reduced.
	Utilization float64
	// ConcurrentChains selects step 2's allocation mode. When true, chains
	// run "in a parallel but dependent fashion" and share N via the paper's
	// equation system; when false (sequential chains), every chain gets the
	// full N while it runs.
	ConcurrentChains bool
	// Machine is the hardware (or budget) processor ceiling used for the
	// per-chain desired thread counts (Allocation.ChainWant); 0 = Processors.
	// An admission controller sets Processors to the instantaneous budget
	// headroom so the initial allocation fits what is free right now, but
	// Machine to the whole budget, so a chain-boundary renegotiation can
	// still grow into budget freed after admission.
	Machine int
}

func (o SchedulerOptions) withDefaults() SchedulerOptions {
	if o.Processors <= 0 {
		o.Processors = 1
	}
	if o.StartupCost <= 0 {
		o.StartupCost = 1000
	}
	if o.SkewThreshold <= 0 {
		o.SkewThreshold = 0.25
	}
	return o
}

// Allocation is the scheduler's output: threads per chain and per node, and
// the consumption strategy per node.
type Allocation struct {
	// Total is the query's thread count N (step 1).
	Total int
	// Chain[c] is chain c's thread count (step 2).
	Chain []int
	// ChainWant[c] is chain c's desired thread count considered in
	// isolation: the step-1 square-root rule applied to the chain's own
	// complexity, capped by the machine (Machine, or Processors) but NOT
	// throttled by utilization or by the admission-time headroom. It is
	// what a sequential execution asks for when it renegotiates its
	// reservation at the materialization point before the chain — the
	// renegotiator re-applies the utilization throttle with a fresh
	// measurement. An explicit Threads setting fixes every entry to N
	// (explicit requests are never adapted).
	ChainWant []int
	// Node[id] is node id's thread count within its chain (step 3).
	Node map[int]int
	// Strategy[id] is node id's consumption strategy (step 4).
	Strategy map[int]StrategyKind

	// MemEstimate is the estimated peak working-set bytes of the query's
	// blocking operators — what a memory-aware admission controller
	// reserves next to Total. ChainMem[c] is chain c's own need, so a
	// chain-boundary renegotiation can shrink the reservation to what the
	// remaining chains still require. Both are estimates; enforcement is
	// the spill accountant, which degrades the operators to disk at
	// whatever grant admission actually gave.
	MemEstimate int64
	ChainMem    []int64

	// nodeCost[id] is the complexity estimate step 3 distributed threads
	// by, kept so ResizeChain can re-run the distribution for a
	// renegotiated chain total.
	nodeCost []float64
}

// clone copies the mutable layers of an Allocation (Chain and Node) so a
// renegotiating execution can resize chains without mutating the allocation
// its admission reserved. ChainWant, Strategy and the cost estimates are
// read-only and stay shared.
func (a Allocation) clone() Allocation {
	a.Chain = append([]int(nil), a.Chain...)
	node := make(map[int]int, len(a.Node))
	for k, v := range a.Node {
		node[k] = v
	}
	a.Node = node
	return a
}

// Want returns chain ci's desired thread count (see ChainWant), falling back
// to the planned chain total for allocations without the per-chain split.
func (a Allocation) Want(ci int) int {
	if ci >= 0 && ci < len(a.ChainWant) {
		return a.ChainWant[ci]
	}
	if ci >= 0 && ci < len(a.Chain) {
		return a.Chain[ci]
	}
	return a.Total
}

// ResizeChain re-runs step 3 for one chain with a renegotiated thread total:
// the chain's node thread counts are redistributed proportionally to the
// same complexity estimates the original allocation used. chain lists the
// chain's node ids (plan.Chains[ci]). Called at a materialization point when
// an admission controller granted a different thread count than the plan
// assumed.
func (a *Allocation) ResizeChain(ci int, chain []int, threads int) {
	if ci < 0 || ci >= len(a.Chain) || len(chain) == 0 {
		return
	}
	if threads < 1 {
		threads = 1
	}
	a.Chain[ci] = threads
	weights := make([]float64, len(chain))
	sum := 0.0
	for i, id := range chain {
		w := 0.0
		if id >= 0 && id < len(a.nodeCost) {
			w = a.nodeCost[id]
		}
		if w <= 0 {
			// No estimate (hand-built allocation): weigh by the current
			// shares so the resize preserves the existing proportions.
			w = float64(a.Node[id])
		}
		weights[i] = w
		sum += w
	}
	shares := proportional(threads, weights, sum)
	for i, id := range chain {
		a.Node[id] = shares[i]
	}
}

// Allocate runs the four steps. instCosts gives the per-instance cost
// estimates of a node (used for skew detection in step 4); it may return nil
// when unknown.
func Allocate(plan *lera.Plan, costs *lera.Costs, instCosts func(nodeID int) []float64, o SchedulerOptions) Allocation {
	o = o.withDefaults()

	// Step 1: number of threads for the whole query.
	n := o.Threads
	if n <= 0 {
		n = int(math.Round(math.Sqrt(costs.Total / o.StartupCost)))
		if o.Utilization > 0 && o.Utilization < 1 {
			n = int(math.Round(float64(n) * (1 - o.Utilization)))
		}
	}
	if n < 1 {
		n = 1
	}
	if o.Threads <= 0 && n > o.Processors {
		n = o.Processors
	}

	chainThreads := make([]int, len(plan.Chains))
	if o.ConcurrentChains {
		chainThreads = allocateChains(plan, costs, n)
	} else {
		// Sequential chains: each chain has the whole machine while active.
		for i := range chainThreads {
			chainThreads[i] = n
		}
	}
	// Per-chain desired totals for chain-boundary renegotiation: the step-1
	// rule on each chain's own complexity, capped by the machine but not by
	// the moment's utilization (the renegotiator re-measures that).
	wantCap := o.Processors
	if o.Machine > wantCap {
		wantCap = o.Machine
	}
	chainWant := make([]int, len(plan.Chains))
	for ci := range plan.Chains {
		if o.Threads > 0 {
			chainWant[ci] = n
			continue
		}
		w := int(math.Round(math.Sqrt(costs.Chain[ci] / o.StartupCost)))
		if w < 1 {
			w = 1
		}
		if w > wantCap {
			w = wantCap
		}
		chainWant[ci] = w
	}
	alloc := Allocation{
		Total:     n,
		Chain:     chainThreads,
		ChainWant: chainWant,
		Node:      make(map[int]int, len(plan.Nodes)),
		Strategy:  make(map[int]StrategyKind, len(plan.Nodes)),
		nodeCost:  append([]float64(nil), costs.Node...),
	}

	// Step 3: distribute each chain's threads over its operations using the
	// complexity ratio NbThreads(Op) = NbThreads(Chain) * C(Op)/C(Chain).
	for ci, chain := range plan.Chains {
		nodeCosts := make([]float64, len(chain))
		total := 0.0
		for i, id := range chain {
			nodeCosts[i] = costs.Node[id]
			total += nodeCosts[i]
		}
		shares := proportional(alloc.Chain[ci], nodeCosts, total)
		for i, id := range chain {
			alloc.Node[id] = shares[i]
		}
	}

	// Step 4: consumption strategy per operation.
	for _, id := range plan.Order {
		if o.Strategy != StrategyAuto {
			alloc.Strategy[id] = o.Strategy
			continue
		}
		st := StrategyRandom
		if plan.Graph.Triggered(id) && instCosts != nil {
			if cv := coefficientOfVariation(instCosts(id)); cv > o.SkewThreshold {
				st = StrategyLPT
			}
		}
		alloc.Strategy[id] = st
	}
	return alloc
}

// allocateChains is step 2: the chain-dependency forest is walked from the
// roots; a root chain gets all N threads, and each chain's threads are
// shared among its child chains proportionally to their subtree complexity
// (the paper's system of equations N3+N4=N5, T1/N1 = T2/N2, ...).
func allocateChains(plan *lera.Plan, costs *lera.Costs, n int) []int {
	nc := len(plan.Chains)
	out := make([]int, nc)
	if nc == 0 {
		return out
	}
	chainOf := make(map[int]int) // node id -> chain index
	for ci, chain := range plan.Chains {
		for _, id := range chain {
			chainOf[id] = ci
		}
	}
	// children[c] = chains whose store output chain c reads.
	producer := make(map[string]int)
	for name, nodeID := range plan.Outputs {
		producer[name] = chainOf[nodeID]
	}
	children := make([][]int, nc)
	isChild := make([]bool, nc)
	for ci, chain := range plan.Chains {
		seen := map[int]bool{}
		for _, id := range chain {
			node := plan.Graph.Nodes[id]
			for _, rel := range []string{node.Rel, node.BuildRel, node.ProbeRel} {
				if rel == "" {
					continue
				}
				if src, ok := producer[rel]; ok && src != ci && !seen[src] {
					seen[src] = true
					children[ci] = append(children[ci], src)
					isChild[src] = true
				}
			}
		}
	}
	// Subtree complexity.
	subtree := make([]float64, nc)
	var total func(c int) float64
	total = func(c int) float64 {
		if subtree[c] > 0 {
			return subtree[c]
		}
		s := costs.Chain[c]
		for _, ch := range children[c] {
			s += total(ch)
		}
		subtree[c] = s
		return s
	}
	var assign func(c, threads int)
	assign = func(c, threads int) {
		out[c] = threads
		if len(children[c]) == 0 {
			return
		}
		w := make([]float64, len(children[c]))
		var sum float64
		for i, ch := range children[c] {
			w[i] = total(ch)
			sum += w[i]
		}
		shares := proportional(threads, w, sum)
		for i, ch := range children[c] {
			assign(ch, shares[i])
		}
	}
	for c := 0; c < nc; c++ {
		if !isChild[c] {
			assign(c, n)
		}
	}
	return out
}

// proportional splits n into integer shares proportional to weights, each at
// least 1, using largest-remainder rounding. When n < len(weights) every
// entry still gets 1 thread (an operation cannot run with zero threads).
func proportional(n int, weights []float64, sum float64) []int {
	k := len(weights)
	out := make([]int, k)
	if k == 0 {
		return out
	}
	if sum <= 0 {
		for i := range out {
			out[i] = maxInt(1, n/k)
		}
		return out
	}
	type frac struct {
		i int
		f float64
	}
	fr := make([]frac, k)
	assigned := 0
	for i, w := range weights {
		exact := float64(n) * w / sum
		out[i] = int(math.Floor(exact))
		if out[i] < 1 {
			out[i] = 1
		}
		assigned += out[i]
		fr[i] = frac{i, exact - math.Floor(exact)}
	}
	sort.SliceStable(fr, func(a, b int) bool { return fr[a].f > fr[b].f })
	for j := 0; assigned < n; j = (j + 1) % k {
		out[fr[j].i]++
		assigned++
	}
	return out
}

// coefficientOfVariation returns stddev/mean of the per-instance costs; 0
// for fewer than two instances or zero mean.
func coefficientOfVariation(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var varsum float64
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(xs))) / mean
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
