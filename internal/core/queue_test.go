package core

import (
	"sync"
	"testing"
	"time"

	"dbs3/internal/relation"
)

func tupleAct(k int64) Activation {
	return Activation{Tuple: relation.NewTuple(relation.Int(k))}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(8)
	for i := int64(0); i < 5; i++ {
		q.Push(tupleAct(i))
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	batch := q.popBatch(3, nil)
	if len(batch) != 3 {
		t.Fatalf("batch = %d", len(batch))
	}
	for i, a := range batch {
		if a.Tuple[0].AsInt() != int64(i) {
			t.Fatalf("order violated: %v", a.Tuple)
		}
	}
	rest := q.popBatch(10, nil)
	if len(rest) != 2 || rest[0].Tuple[0].AsInt() != 3 {
		t.Fatalf("rest = %v", rest)
	}
}

func TestQueueTriggerActivation(t *testing.T) {
	q := NewQueue(1)
	q.Push(Activation{})
	batch := q.popBatch(4, nil)
	if len(batch) != 1 || !batch[0].IsTrigger() {
		t.Fatalf("batch = %v", batch)
	}
	if tupleAct(1).IsTrigger() {
		t.Error("tuple activation claims to be trigger")
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := NewQueue(2)
	q.Push(tupleAct(1))
	q.Push(tupleAct(2))
	done := make(chan struct{})
	go func() {
		q.Push(tupleAct(3)) // must block until a pop
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("push to full queue did not block")
	case <-time.After(20 * time.Millisecond):
	}
	q.popBatch(1, nil)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("blocked push never released")
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue(4)
	next := int64(0)
	for round := 0; round < 10; round++ {
		q.Push(tupleAct(next))
		q.Push(tupleAct(next + 1))
		b := q.popBatch(2, nil)
		if len(b) != 2 || b[0].Tuple[0].AsInt() != next || b[1].Tuple[0].AsInt() != next+1 {
			t.Fatalf("round %d: %v", round, b)
		}
		next += 2
	}
}

func TestQueueCloseSemantics(t *testing.T) {
	q := NewQueue(4)
	q.Push(tupleAct(1))
	q.Close()
	if q.Drained() {
		t.Error("closed but non-empty queue reported drained")
	}
	q.popBatch(1, nil)
	if !q.Drained() {
		t.Error("closed empty queue not drained")
	}
	defer func() {
		if recover() == nil {
			t.Error("push after close should panic")
		}
	}()
	q.Push(tupleAct(2))
}

func TestQueueCloseReleasesBlockedProducer(t *testing.T) {
	q := NewQueue(1)
	q.Push(tupleAct(1))
	released := make(chan any, 1)
	go func() {
		defer func() { released <- recover() }()
		q.Push(tupleAct(2))
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case r := <-released:
		if r == nil {
			t.Error("push to closed queue should panic, not succeed")
		}
	case <-time.After(time.Second):
		t.Fatal("blocked producer never released by Close")
	}
}

func TestQueueLPTScore(t *testing.T) {
	q := NewQueue(8)
	if q.lptScore() != 0 {
		t.Error("empty queue should score 0")
	}
	q.SetEstimate(100)
	if q.lptScore() != 0 {
		t.Error("empty queue with estimate should still score 0")
	}
	q.Push(Activation{})
	if q.lptScore() != 100 {
		t.Errorf("triggered score = %v", q.lptScore())
	}
	// Pipelined scoring: no static estimate, per-tuple cost * length.
	p := NewQueue(8)
	p.SetPerTupleCost(5)
	p.Push(tupleAct(1))
	p.Push(tupleAct(2))
	if p.lptScore() != 10 {
		t.Errorf("pipelined score = %v", p.lptScore())
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue(16)
	const producers, per = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(tupleAct(int64(p*per + i)))
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[int64]bool)
	var cwg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				b := q.popBatch(8, nil)
				mu.Lock()
				for _, a := range b {
					seen[a.Tuple[0].AsInt()] = true
				}
				n := len(seen)
				mu.Unlock()
				if n == producers*per {
					return
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	waitDone := make(chan struct{})
	go func() { cwg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		close(stop)
		t.Fatal("consumers did not finish")
	}
	if len(seen) != producers*per {
		t.Fatalf("saw %d distinct activations, want %d", len(seen), producers*per)
	}
}

func TestQueueMinimumCapacity(t *testing.T) {
	q := NewQueue(0)
	q.Push(tupleAct(1)) // capacity clamps to 1; must not deadlock
	if q.Len() != 1 {
		t.Errorf("Len = %d", q.Len())
	}
}
