package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dbs3/internal/operator"
	"dbs3/internal/relation"
)

// stubOperator records calls and can be told to fail.
type stubOperator struct {
	mu          sync.Mutex
	setups      int
	triggers    int
	tuples      int
	closes      []int
	failSetup   error
	failTuple   error
	failClose   error
	emitOnClose bool
}

func (s *stubOperator) Setup(ctx *operator.Context) error {
	s.mu.Lock()
	s.setups++
	s.mu.Unlock()
	return s.failSetup
}

func (s *stubOperator) OnTrigger(ctx *operator.Context, emit operator.Emit) error {
	s.mu.Lock()
	s.triggers++
	s.mu.Unlock()
	return nil
}

func (s *stubOperator) OnTuple(ctx *operator.Context, t relation.Tuple, emit operator.Emit) error {
	s.mu.Lock()
	s.tuples++
	s.mu.Unlock()
	return s.failTuple
}

func (s *stubOperator) OnClose(ctx *operator.Context, emit operator.Emit) error {
	s.mu.Lock()
	s.closes = append(s.closes, ctx.Instance)
	s.mu.Unlock()
	if s.emitOnClose {
		emit(relation.NewTuple(relation.Int(int64(ctx.Instance))))
	}
	return s.failClose
}

func newTestOperation(op operator.Operator, instances, workers int) *Operation {
	ctxs := make([]*operator.Context, instances)
	for i := range ctxs {
		ctxs[i] = &operator.Context{Instance: i}
	}
	o := newOperation("test", 0, op, ctxs, 16, workers, 4, StrategyRandom, 1, false)
	o.emit = func(int, relation.Tuple) {}
	return o
}

func runOperation(t *testing.T, o *Operation, feed func(*Operation)) {
	t.Helper()
	var wg sync.WaitGroup
	o.run(&wg)
	feed(o)
	wg.Wait()
}

func TestOperationProcessesAllActivations(t *testing.T) {
	stub := &stubOperator{}
	o := newTestOperation(stub, 4, 3)
	runOperation(t, o, func(o *Operation) {
		for i, q := range o.Queues {
			for j := 0; j < 10; j++ {
				q.Push(tupleAct(int64(i*10 + j)))
			}
			q.Close()
		}
	})
	if stub.tuples != 40 {
		t.Errorf("processed %d tuples, want 40", stub.tuples)
	}
	if got := o.Stats().Activations.Load(); got != 40 {
		t.Errorf("stats activations = %d", got)
	}
	if err := o.Err(); err != nil {
		t.Errorf("unexpected error %v", err)
	}
}

func TestOperationRunsOnClosePerInstanceExactlyOnce(t *testing.T) {
	stub := &stubOperator{}
	o := newTestOperation(stub, 5, 2)
	runOperation(t, o, func(o *Operation) {
		// Activations only on instances 0 and 3; 1, 2, 4 stay empty.
		o.Queues[0].Push(tupleAct(1))
		o.Queues[3].Push(tupleAct(2))
		for _, q := range o.Queues {
			q.Close()
		}
	})
	if len(stub.closes) != 5 {
		t.Fatalf("OnClose ran for %d instances, want 5 (including empty ones)", len(stub.closes))
	}
	seen := map[int]bool{}
	for _, inst := range stub.closes {
		if seen[inst] {
			t.Fatalf("OnClose ran twice for instance %d", inst)
		}
		seen[inst] = true
	}
	// Setup must also have run for every instance (close needs state).
	if stub.setups != 5 {
		t.Errorf("setups = %d, want 5", stub.setups)
	}
}

func TestOperationCompleteCallbackFiresOnce(t *testing.T) {
	stub := &stubOperator{}
	o := newTestOperation(stub, 3, 4)
	var completions atomic.Int32
	o.onComplete = func() { completions.Add(1) }
	runOperation(t, o, func(o *Operation) {
		for _, q := range o.Queues {
			q.Push(tupleAct(7))
			q.Close()
		}
	})
	if got := completions.Load(); got != 1 {
		t.Errorf("onComplete fired %d times", got)
	}
}

func TestOperationOnCloseMayEmit(t *testing.T) {
	stub := &stubOperator{emitOnClose: true}
	o := newTestOperation(stub, 3, 2)
	var emitted atomic.Int32
	o.emit = func(int, relation.Tuple) { emitted.Add(1) }
	runOperation(t, o, func(o *Operation) {
		for _, q := range o.Queues {
			q.Close()
		}
	})
	if got := emitted.Load(); got != 3 {
		t.Errorf("OnClose emissions = %d, want 3", got)
	}
	if got := o.Stats().Emitted.Load(); got != 3 {
		t.Errorf("stats emitted = %d", got)
	}
}

func TestOperationTupleErrorPropagates(t *testing.T) {
	stub := &stubOperator{failTuple: errors.New("boom")}
	o := newTestOperation(stub, 2, 2)
	runOperation(t, o, func(o *Operation) {
		for _, q := range o.Queues {
			q.Push(tupleAct(1))
			q.Close()
		}
	})
	if err := o.Err(); err == nil || !errors.Is(err, stub.failTuple) {
		t.Errorf("Err = %v, want boom", err)
	}
}

func TestOperationSetupErrorPropagates(t *testing.T) {
	stub := &stubOperator{failSetup: errors.New("setup failed")}
	o := newTestOperation(stub, 2, 1)
	runOperation(t, o, func(o *Operation) {
		for _, q := range o.Queues {
			q.Push(tupleAct(1))
			q.Close()
		}
	})
	if err := o.Err(); err == nil {
		t.Error("setup failure not reported")
	}
}

func TestOperationCloseErrorPropagates(t *testing.T) {
	stub := &stubOperator{failClose: errors.New("close failed")}
	o := newTestOperation(stub, 2, 1)
	runOperation(t, o, func(o *Operation) {
		for _, q := range o.Queues {
			q.Close()
		}
	})
	if err := o.Err(); err == nil {
		t.Error("close failure not reported")
	}
}

func TestOperationFirstErrorWins(t *testing.T) {
	first := errors.New("first")
	stub := &stubOperator{failTuple: first}
	o := newTestOperation(stub, 2, 1)
	runOperation(t, o, func(o *Operation) {
		for _, q := range o.Queues {
			q.Push(tupleAct(1))
			q.Push(tupleAct(2))
			q.Close()
		}
	})
	if err := o.Err(); err == nil || !errors.Is(err, first) {
		t.Errorf("Err = %v", err)
	}
}

func TestOperationTriggerDispatch(t *testing.T) {
	stub := &stubOperator{}
	o := newTestOperation(stub, 3, 2)
	runOperation(t, o, func(o *Operation) {
		for _, q := range o.Queues {
			q.Push(Activation{}) // trigger
			q.Close()
		}
	})
	if stub.triggers != 3 || stub.tuples != 0 {
		t.Errorf("triggers=%d tuples=%d", stub.triggers, stub.tuples)
	}
}

func TestOperationMoreWorkersThanQueues(t *testing.T) {
	stub := &stubOperator{}
	o := newTestOperation(stub, 2, 8)
	runOperation(t, o, func(o *Operation) {
		for _, q := range o.Queues {
			for j := 0; j < 100; j++ {
				q.Push(tupleAct(int64(j)))
			}
			q.Close()
		}
	})
	if stub.tuples != 200 {
		t.Errorf("tuples = %d", stub.tuples)
	}
}

func TestOperationBatchesRespectCache(t *testing.T) {
	stub := &stubOperator{}
	o := newTestOperation(stub, 1, 1)
	o.CacheSize = 4
	runOperation(t, o, func(o *Operation) {
		for j := 0; j < 16; j++ {
			o.Queues[0].Push(tupleAct(int64(j)))
		}
		o.Queues[0].Close()
	})
	batches := o.Stats().Batches.Load()
	if batches < 4 {
		t.Errorf("batches = %d; 16 activations with cache 4 need >= 4 drains", batches)
	}
	if stub.tuples != 16 {
		t.Errorf("tuples = %d", stub.tuples)
	}
}

func TestOperationDegreeAndClamps(t *testing.T) {
	stub := &stubOperator{}
	ctxs := []*operator.Context{{Instance: 0}}
	o := newOperation("t", 0, stub, ctxs, 0, 0, 0, StrategyRandom, 1, true)
	if o.Workers != 1 || o.CacheSize != 1 {
		t.Errorf("clamps: workers=%d cache=%d", o.Workers, o.CacheSize)
	}
	if o.Degree() != 1 {
		t.Errorf("Degree = %d", o.Degree())
	}
}

func TestWorkerActivationBalance(t *testing.T) {
	stub := &stubOperator{}
	o := newTestOperation(stub, 8, 4)
	runOperation(t, o, func(o *Operation) {
		for _, q := range o.Queues {
			for j := 0; j < 50; j++ {
				q.Push(tupleAct(int64(j)))
			}
			q.Close()
		}
	})
	counts := o.Stats().WorkerActivations()
	if len(counts) != 4 {
		t.Fatalf("per-worker counts = %v", counts)
	}
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != 400 {
		t.Errorf("per-worker counts sum to %d, want 400", sum)
	}
	// With plenty of queued work, every thread processes something and the
	// balance ratio stays bounded.
	ratio := o.Stats().BalanceRatio()
	if ratio < 1 || ratio > 4 {
		t.Errorf("balance ratio = %v (counts %v)", ratio, counts)
	}
}

func TestBalanceRatioDegenerate(t *testing.T) {
	s := &OpStats{}
	if s.BalanceRatio() != 1 {
		t.Error("empty stats should balance at 1")
	}
	s2 := &OpStats{perWorker: make([]atomic.Int64, 3)}
	if s2.BalanceRatio() != 1 {
		t.Error("zero-work stats should balance at 1")
	}
}
