package core

import (
	"math"
	"testing"

	"dbs3/internal/lera"
	"dbs3/internal/workload"
)

func boundIdealJoin(t *testing.T, d int) (*lera.Plan, *lera.Costs) {
	t.Helper()
	db, err := workload.NewJoinDB(d*50, d*5, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.NestedLoop)
	if err != nil {
		t.Fatal(err)
	}
	return plan, lera.Estimate(plan, lera.DefaultCostModel())
}

func TestAllocateStep1SqrtRule(t *testing.T) {
	plan, costs := boundIdealJoin(t, 10)
	// W/n + s*n minimized at n = sqrt(W/s).
	a := Allocate(plan, costs, nil, SchedulerOptions{Processors: 1000, StartupCost: 1})
	want := int(math.Round(math.Sqrt(costs.Total)))
	if a.Total != want {
		t.Errorf("Total = %d, want %d (W=%v)", a.Total, want, costs.Total)
	}
}

func TestAllocateStep1Caps(t *testing.T) {
	plan, costs := boundIdealJoin(t, 10)
	a := Allocate(plan, costs, nil, SchedulerOptions{Processors: 4, StartupCost: 1})
	if a.Total != 4 {
		t.Errorf("Total = %d, want processor cap 4", a.Total)
	}
	// Explicit thread count wins over the cap.
	b := Allocate(plan, costs, nil, SchedulerOptions{Threads: 32, Processors: 4})
	if b.Total != 32 {
		t.Errorf("Total = %d, want explicit 32", b.Total)
	}
}

func TestAllocateStep3Proportional(t *testing.T) {
	plan, costs := boundIdealJoin(t, 10)
	a := Allocate(plan, costs, nil, SchedulerOptions{Threads: 10, Processors: 10})
	// Join dwarfs store in nested-loop cost; join should get most threads.
	joinID, storeID := 0, 1
	if a.Node[joinID] <= a.Node[storeID] {
		t.Errorf("join=%d store=%d; join should dominate", a.Node[joinID], a.Node[storeID])
	}
	if a.Node[storeID] < 1 {
		t.Error("every operation needs at least one thread")
	}
	sum := a.Node[joinID] + a.Node[storeID]
	if sum < 10 {
		t.Errorf("threads assigned %d < chain total 10", sum)
	}
}

func TestAllocateStep2MultiChain(t *testing.T) {
	// Two chains: filter->store T1, then transmit(T1)->join->store.
	db, err := workload.NewJoinDB(1000, 100, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := lera.NewGraph()
	f := g.Filter("f", "Br", nil)
	s1 := g.Store("s1", "T1")
	g.ConnectSame(f, s1)
	tr := g.Transmit("t", "T1")
	j := g.JoinPipelined("j", "A", []string{"k"}, []string{"k"}, lera.NestedLoop)
	s2 := g.Store("s2", "Res")
	g.ConnectHash(tr, j, []string{"k"})
	g.ConnectSame(j, s2)
	plan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	costs := lera.Estimate(plan, lera.DefaultCostModel())
	// Dependent-parallel chains: the paper's equation system applies.
	a := Allocate(plan, costs, nil, SchedulerOptions{Threads: 16, Processors: 16, ConcurrentChains: true})
	if len(a.Chain) != 2 {
		t.Fatalf("chains = %v", a.Chain)
	}
	// The root chain (the one containing the join, i.e. the one nobody
	// depends on) gets all N; its child gets a proportional share <= N.
	rootChain := -1
	for ci, chain := range plan.Chains {
		for _, id := range chain {
			if id == j.ID {
				rootChain = ci
			}
		}
	}
	if a.Chain[rootChain] != 16 {
		t.Errorf("root chain threads = %d, want 16", a.Chain[rootChain])
	}
	child := 1 - rootChain
	if a.Chain[child] < 1 || a.Chain[child] > 16 {
		t.Errorf("child chain threads = %d", a.Chain[child])
	}
	// Sequential chains: every chain has the whole machine while active.
	s := Allocate(plan, costs, nil, SchedulerOptions{Threads: 16, Processors: 16})
	if s.Chain[0] != 16 || s.Chain[1] != 16 {
		t.Errorf("sequential chains = %v, want all 16", s.Chain)
	}
}

func TestAllocateStep4AutoStrategies(t *testing.T) {
	db, err := workload.NewJoinDB(10000, 1000, 20, 1) // heavy skew
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.NestedLoop)
	if err != nil {
		t.Fatal(err)
	}
	costs := lera.Estimate(plan, lera.DefaultCostModel())
	inst := func(id int) []float64 {
		if id == 0 { // join node: cost ~ |A_i| * |B_i|
			sizes := db.A.FragmentSizes()
			out := make([]float64, len(sizes))
			for i, s := range sizes {
				out[i] = float64(s) * 50
			}
			return out
		}
		return nil
	}
	a := Allocate(plan, costs, inst, SchedulerOptions{Threads: 8, Processors: 8})
	if a.Strategy[0] != StrategyLPT {
		t.Errorf("skewed triggered join should get LPT, got %v", a.Strategy[0])
	}
	if a.Strategy[1] != StrategyRandom {
		t.Errorf("pipelined store should get Random, got %v", a.Strategy[1])
	}
	// Unskewed: Random everywhere.
	db0, _ := workload.NewJoinDB(10000, 1000, 20, 0)
	plan0, _ := db0.IdealJoinPlan(lera.NestedLoop)
	costs0 := lera.Estimate(plan0, lera.DefaultCostModel())
	inst0 := func(id int) []float64 {
		if id == 0 {
			sizes := db0.A.FragmentSizes()
			out := make([]float64, len(sizes))
			for i, s := range sizes {
				out[i] = float64(s)
			}
			return out
		}
		return nil
	}
	a0 := Allocate(plan0, costs0, inst0, SchedulerOptions{Threads: 8, Processors: 8})
	if a0.Strategy[0] != StrategyRandom {
		t.Errorf("unskewed triggered join should get Random, got %v", a0.Strategy[0])
	}
	// Forced override wins.
	af := Allocate(plan0, costs0, inst0, SchedulerOptions{Threads: 8, Processors: 8, Strategy: StrategyLPT})
	if af.Strategy[0] != StrategyLPT || af.Strategy[1] != StrategyLPT {
		t.Error("explicit strategy not applied to all nodes")
	}
}

func TestProportionalInvariants(t *testing.T) {
	shares := proportional(10, []float64{1, 1, 1, 1}, 4)
	sum := 0
	for _, s := range shares {
		if s < 1 {
			t.Fatalf("share < 1: %v", shares)
		}
		sum += s
	}
	if sum != 10 {
		t.Errorf("shares sum to %d, want 10", sum)
	}
	// Fewer threads than entries: everyone still gets 1.
	tight := proportional(2, []float64{5, 5, 5}, 15)
	for _, s := range tight {
		if s < 1 {
			t.Fatalf("tight share < 1: %v", tight)
		}
	}
	// Zero weights fall back to an even split.
	zero := proportional(4, []float64{0, 0}, 0)
	if zero[0] < 1 || zero[1] < 1 {
		t.Errorf("zero-weight shares = %v", zero)
	}
	// Proportionality: weight 3 vs 1 with 8 threads -> 6 and 2.
	p := proportional(8, []float64{3, 1}, 4)
	if p[0] != 6 || p[1] != 2 {
		t.Errorf("proportional(8, 3:1) = %v", p)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if cv := coefficientOfVariation([]float64{5, 5, 5, 5}); cv != 0 {
		t.Errorf("uniform CV = %v", cv)
	}
	if cv := coefficientOfVariation([]float64{1}); cv != 0 {
		t.Errorf("single-element CV = %v", cv)
	}
	if cv := coefficientOfVariation(nil); cv != 0 {
		t.Errorf("nil CV = %v", cv)
	}
	if cv := coefficientOfVariation([]float64{0, 0}); cv != 0 {
		t.Errorf("zero-mean CV = %v", cv)
	}
	skewed := coefficientOfVariation([]float64{100, 1, 1, 1})
	if skewed < 1 {
		t.Errorf("skewed CV = %v, want > 1", skewed)
	}
}

func TestSchedulerDefaults(t *testing.T) {
	o := SchedulerOptions{}.withDefaults()
	if o.Processors != 1 || o.StartupCost != 1000 || o.SkewThreshold != 0.25 {
		t.Errorf("defaults = %+v", o)
	}
}

// Rahm93: step 1 throttles auto-chosen parallelism by the processors'
// current utilization, raising multi-user throughput.
func TestAllocateUtilizationThrottle(t *testing.T) {
	plan, costs := boundIdealJoin(t, 10)
	idle := Allocate(plan, costs, nil, SchedulerOptions{Processors: 1000, StartupCost: 1})
	busy := Allocate(plan, costs, nil, SchedulerOptions{Processors: 1000, StartupCost: 1, Utilization: 0.75})
	if busy.Total >= idle.Total {
		t.Errorf("75%% utilization should shrink the allocation: %d vs %d", busy.Total, idle.Total)
	}
	want := int(math.Round(float64(idle.Total) * 0.25))
	if want < 1 {
		want = 1
	}
	if busy.Total != want {
		t.Errorf("busy allocation = %d, want %d", busy.Total, want)
	}
	// Explicit thread counts are never throttled.
	explicit := Allocate(plan, costs, nil, SchedulerOptions{Threads: 16, Utilization: 0.9})
	if explicit.Total != 16 {
		t.Errorf("explicit threads throttled to %d", explicit.Total)
	}
}
