package core

import (
	"sync"
	"testing"

	"dbs3/internal/lera"
	"dbs3/internal/relation"
	"dbs3/internal/workload"
)

// twoChainPlan builds the canonical two-chain shape: chain 1 filters Br into
// T1, chain 2 repartitions T1 on k and joins with A (a materialization point
// between them).
func twoChainPlan(t testing.TB, algo lera.JoinAlgo) (*lera.Plan, DB) {
	t.Helper()
	db, err := workload.NewJoinDB(4_000, 400, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := lera.NewGraph()
	f := g.Filter("f", "Br", lera.ColConst{Col: "k", Op: lera.GE, Val: relation.Int(0)})
	s1 := g.Store("s1", "T1")
	g.ConnectSame(f, s1)
	tr := g.Transmit("t", "T1")
	j := g.JoinPipelined("j", "A", []string{"k"}, []string{"k"}, algo)
	s2 := g.Store("s2", "Res")
	g.ConnectHash(tr, j, []string{"k"})
	g.ConnectSame(j, s2)
	plan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	return plan, db.Relations()
}

// Auto mode gives each chain its own desired total from its complexity; the
// light filter chain wants fewer threads than the heavy join chain, and every
// want respects the machine cap.
func TestAllocateChainWant(t *testing.T) {
	plan, db := twoChainPlan(t, lera.NestedLoop)
	alloc, err := PlanAllocation(plan, db, Options{Processors: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.ChainWant) != 2 {
		t.Fatalf("ChainWant = %v, want 2 entries", alloc.ChainWant)
	}
	// Chain 0 is the producer (filter -> store), chain 1 the nested-loop
	// join: the join chain's complexity dwarfs the filter's.
	if alloc.ChainWant[0] >= alloc.ChainWant[1] {
		t.Errorf("ChainWant = %v; the join chain should want more than the filter chain", alloc.ChainWant)
	}
	for ci, w := range alloc.ChainWant {
		if w < 1 || w > 64 {
			t.Errorf("ChainWant[%d] = %d outside [1, machine]", ci, w)
		}
	}
	// Machine raises the want cap past an admission-squeezed Processors.
	squeezed, err := PlanAllocation(plan, db, Options{Processors: 2, Machine: 16})
	if err != nil {
		t.Fatal(err)
	}
	if squeezed.Total > 2 {
		t.Errorf("Total = %d exceeds the 2 processors available now", squeezed.Total)
	}
	if squeezed.ChainWant[1] <= 2 {
		t.Errorf("ChainWant[1] = %d, want a desire above the instantaneous headroom", squeezed.ChainWant[1])
	}
	// Explicit thread counts are never adapted: every want is the request.
	explicit, err := PlanAllocation(plan, db, Options{Threads: 6})
	if err != nil {
		t.Fatal(err)
	}
	for ci, w := range explicit.ChainWant {
		if w != 6 {
			t.Errorf("explicit ChainWant[%d] = %d, want 6", ci, w)
		}
	}
}

func TestResizeChainRedistributes(t *testing.T) {
	plan, db := twoChainPlan(t, lera.HashJoin)
	alloc, err := PlanAllocation(plan, db, Options{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	joinChain := plan.Chains[1]
	alloc.ResizeChain(1, joinChain, 3)
	if alloc.Chain[1] != 3 {
		t.Errorf("Chain[1] = %d, want 3", alloc.Chain[1])
	}
	sum := 0
	for _, id := range joinChain {
		if alloc.Node[id] < 1 {
			t.Errorf("node %d resized to %d threads", id, alloc.Node[id])
		}
		sum += alloc.Node[id]
	}
	if sum < 3 {
		t.Errorf("resized node threads sum to %d < chain total 3", sum)
	}
	// Chain 0 keeps its allocation.
	if alloc.Chain[0] != 8 {
		t.Errorf("Chain[0] = %d, want the untouched 8", alloc.Chain[0])
	}
	for _, id := range plan.Chains[0] {
		if alloc.Node[id] < 1 {
			t.Errorf("chain 0 node %d lost its threads", id)
		}
	}
	// Growing back redistributes again without leaving zeros.
	alloc.ResizeChain(1, joinChain, 8)
	for _, id := range joinChain {
		if alloc.Node[id] < 1 {
			t.Errorf("regrown node %d has %d threads", id, alloc.Node[id])
		}
	}
}

// The engine calls Readmit once per chain of a sequential multi-chain plan,
// in order, with each chain's want — and executes with the granted totals.
func TestEngineReadmitAtChainBoundaries(t *testing.T) {
	plan, db := twoChainPlan(t, lera.HashJoin)
	opts := Options{Processors: 8}
	alloc, err := PlanAllocation(plan, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var calls [][3]int
	opts.Readmit = func(chain, want, min int) int {
		mu.Lock()
		calls = append(calls, [3]int{chain, want, min})
		mu.Unlock()
		return 2 // grant less than asked: the engine must run with it
	}
	res, err := ExecuteAllocated(t.Context(), plan, db, opts, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 {
		t.Fatalf("Readmit called %d times, want once per chain: %v", len(calls), calls)
	}
	for ci, c := range calls {
		if c[0] != ci {
			t.Errorf("call %d renegotiated chain %d", ci, c[0])
		}
		if c[1] != alloc.Want(ci) {
			t.Errorf("call %d asked for %d threads, want ChainWant %d", ci, c[1], alloc.Want(ci))
		}
		if c[2] != len(plan.Chains[ci]) {
			t.Errorf("call %d passed min %d, want the chain's %d nodes", ci, c[2], len(plan.Chains[ci]))
		}
	}
	if res.Alloc.Chain[0] != 2 || res.Alloc.Chain[1] != 2 {
		t.Errorf("executed chain totals = %v, want the granted 2s", res.Alloc.Chain)
	}
	// The caller's allocation is untouched: the engine resized a copy.
	if alloc.Chain[0] == 2 && alloc.Chain[1] == 2 {
		t.Errorf("caller's allocation mutated: %v", alloc.Chain)
	}
	if res.Outputs["Res"] == nil || res.Outputs["Res"].Cardinality() == 0 {
		t.Fatal("renegotiated execution produced no result")
	}
}

// Explicit thread counts, single-chain plans and concurrent chains never
// renegotiate.
func TestEngineReadmitSkipped(t *testing.T) {
	called := 0
	hook := func(chain, want, min int) int { called++; return 1 }

	// Explicit Threads.
	plan, db := twoChainPlan(t, lera.HashJoin)
	opts := Options{Threads: 4, Readmit: hook}
	if _, err := ExecuteContext(t.Context(), plan, db, opts); err != nil {
		t.Fatal(err)
	}
	if called != 0 {
		t.Errorf("Readmit called %d times for an explicit-thread query", called)
	}

	// Concurrent chains.
	opts = Options{ConcurrentChains: true, Readmit: hook}
	if _, err := ExecuteContext(t.Context(), plan, db, opts); err != nil {
		t.Fatal(err)
	}
	if called != 0 {
		t.Errorf("Readmit called %d times with ConcurrentChains", called)
	}

	// Single chain.
	jdb, err := workload.NewJoinDB(1_000, 100, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	single, err := jdb.IdealJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	opts = Options{Readmit: hook}
	if _, err := ExecuteContext(t.Context(), single, jdb.Relations(), opts); err != nil {
		t.Fatal(err)
	}
	if called != 0 {
		t.Errorf("Readmit called %d times for a single-chain plan", called)
	}
}
