package core

import (
	"dbs3/internal/lera"
	"dbs3/internal/relation"
)

// Memory estimation for multi-resource admission: each chain's blocking
// operators (join build structures, aggregate group tables, stage stores)
// are priced from the optimizer's cardinality estimates, giving the
// admission controller a per-query byte figure to reserve alongside the
// thread count. The estimate is a planning figure, not an enforcement
// boundary — enforcement is the spill accountant, which makes operators
// degrade to disk at whatever grant admission actually gave.

// Per-entry overheads mirroring the operator-side accounting: a resident
// tuple beyond its encoded bytes, a join index entry, an aggregate
// accumulator.
const (
	estTupleOverhead = 48
	estIndexEntry    = 24
	estAggState      = 96
)

// estTupleBytes prices one resident tuple of the schema: encoded width
// (strings assumed short) plus the in-memory overhead.
func estTupleBytes(s *relation.Schema) int64 {
	if s == nil {
		return 64 + estTupleOverhead
	}
	n := int64(2)
	for _, c := range s.Columns() {
		if c.Type == relation.TInt {
			n += 9
		} else {
			n += 5 + 12
		}
	}
	return n + estTupleOverhead
}

// estRelCard mirrors the optimizer's relation-cardinality rule: true
// fragment sizes when bound, a nominal 1000 tuples per fragment otherwise.
func estRelCard(ri lera.RelInfo) float64 {
	n := 0
	for _, s := range ri.FragSizes {
		n += s
	}
	if n == 0 && ri.Degree > 0 {
		return float64(ri.Degree) * 1000
	}
	return float64(n)
}

// estimateMemory prices each chain's blocking-operator working set and the
// query's peak (the largest chain: chains run sequentially, and a chain's
// materialized output is priced into the chain that writes it). A streamed
// store accumulates nothing and costs nothing.
func estimateMemory(plan *lera.Plan, costs *lera.Costs, opts Options) (perChain []int64, peak int64) {
	perChain = make([]int64, len(plan.Chains))
	for ci, chain := range plan.Chains {
		var need int64
		for _, id := range chain {
			bn := plan.Nodes[id]
			switch bn.Node.Kind {
			case lera.OpJoin:
				if bn.Node.Algo == lera.NestedLoop {
					continue // probes the resident fragment; no build structure
				}
				w := estTupleBytes(bn.Build.Schema)
				need += int64(estRelCard(bn.Build) * float64(w+estIndexEntry))
			case lera.OpAggregate:
				need += int64(costs.OutCard[id] * float64(estTupleBytes(bn.InSchema)+estAggState))
			case lera.OpStore:
				if bn.Node.As == opts.StreamOutput {
					continue
				}
				var in float64
				for _, e := range plan.Graph.In(id) {
					in += costs.OutCard[e.From]
				}
				need += int64(in * float64(estTupleBytes(bn.InSchema)))
			}
		}
		perChain[ci] = need
		if need > peak {
			peak = need
		}
	}
	return perChain, peak
}
