package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"dbs3/internal/lera"
	"dbs3/internal/relation"
	"dbs3/internal/workload"
)

// collectSink accumulates streamed tuples under a lock — the simplest
// RowSink, with no backpressure.
type collectSink struct {
	mu     sync.Mutex
	tuples []relation.Tuple
}

func (s *collectSink) Push(t relation.Tuple) error {
	s.mu.Lock()
	s.tuples = append(s.tuples, t)
	s.mu.Unlock()
	return nil
}

// TestStreamSinkMatchesMaterialized: streaming the final store through a
// RowSink delivers exactly the tuples a materializing run produces, and the
// streamed output no longer appears in Result.Outputs.
func TestStreamSinkMatchesMaterialized(t *testing.T) {
	db, err := workload.NewJoinDB(2000, 200, 20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Execute(plan, db.Relations(), Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	refRel, err := ref.Relation("Res")
	if err != nil {
		t.Fatal(err)
	}

	sink := &collectSink{}
	res, err := Execute(plan, db.Relations(), Options{Threads: 4, StreamOutput: "Res", Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Outputs["Res"]; ok {
		t.Error("streamed output still materialized in Result.Outputs")
	}
	if len(sink.tuples) != len(refRel.Tuples) {
		t.Fatalf("streamed %d tuples, materialized %d", len(sink.tuples), len(refRel.Tuples))
	}
	seen := make(map[string]int, len(refRel.Tuples))
	for _, tup := range refRel.Tuples {
		seen[tup.Key()]++
	}
	for _, tup := range sink.tuples {
		seen[tup.Key()]--
	}
	for k, n := range seen {
		if n != 0 {
			t.Fatalf("tuple multiset mismatch at %q (delta %d)", k, n)
		}
	}
}

// TestStreamIntermediateStillMaterializes: in a multi-chain plan only the
// named output streams; intermediate materialization points keep feeding
// later chains.
func TestStreamIntermediateStillMaterializes(t *testing.T) {
	db, err := workload.NewJoinDB(1000, 100, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := lera.NewGraph()
	f := g.Filter("f", "Br", lera.ColConst{Col: "k", Op: lera.GE, Val: relation.Int(0)})
	s1 := g.Store("s1", "T1")
	g.ConnectSame(f, s1)
	tr := g.Transmit("t", "T1")
	j := g.JoinPipelined("j", "A", []string{"k"}, []string{"k"}, lera.HashJoin)
	s2 := g.Store("s2", "Res")
	g.ConnectHash(tr, j, []string{"k"})
	g.ConnectSame(j, s2)
	plan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	res, err := Execute(plan, db.Relations(), Options{Threads: 4, StreamOutput: "Res", Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["T1"].Cardinality() != 100 {
		t.Errorf("T1 = %d tuples, want 100", res.Outputs["T1"].Cardinality())
	}
	if len(sink.tuples) != db.ExpectedJoinCount() {
		t.Errorf("streamed %d join tuples, want %d", len(sink.tuples), db.ExpectedJoinCount())
	}
}

// TestStreamValidation: bad streaming options fail fast instead of
// deadlocking or silently materializing.
func TestStreamValidation(t *testing.T) {
	db, err := workload.NewJoinDB(500, 50, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(plan, db.Relations(), Options{StreamOutput: "Res"}); err == nil {
		t.Error("StreamOutput without Sink accepted")
	}
	if _, err := Execute(plan, db.Relations(), Options{StreamOutput: "nope", Sink: &collectSink{}}); err == nil {
		t.Error("unknown StreamOutput accepted")
	}

	// An intermediate output read by a later chain cannot stream.
	g := lera.NewGraph()
	f := g.Filter("f", "Br", lera.ColConst{Col: "k", Op: lera.GE, Val: relation.Int(0)})
	s1 := g.Store("s1", "T1")
	g.ConnectSame(f, s1)
	tr := g.Transmit("t", "T1")
	j := g.JoinPipelined("j", "A", []string{"k"}, []string{"k"}, lera.HashJoin)
	s2 := g.Store("s2", "Res")
	g.ConnectHash(tr, j, []string{"k"})
	g.ConnectSame(j, s2)
	mplan, err := lera.Bind(g, db.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(mplan, db.Relations(), Options{StreamOutput: "T1", Sink: &collectSink{}}); err == nil {
		t.Error("streaming an output read by a later chain accepted")
	}
}

// blockingSink mimics a bounded cursor: a tiny channel plus a context, so
// pushes block once the consumer stops reading and unblock on cancellation.
type blockingSink struct {
	ctx context.Context
	ch  chan relation.Tuple
}

func (s *blockingSink) Push(t relation.Tuple) error {
	select {
	case s.ch <- t:
		return nil
	case <-s.ctx.Done():
		return s.ctx.Err()
	}
}

// TestStreamBackpressureCancel: a producer blocked on a full sink is
// released by context cancellation and the execution returns ctx.Err()
// without leaking goroutines or deadlocking.
func TestStreamBackpressureCancel(t *testing.T) {
	db, err := workload.NewJoinDB(4000, 400, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.IdealJoinPlan(lera.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sink := &blockingSink{ctx: ctx, ch: make(chan relation.Tuple, 4)}
	done := make(chan error, 1)
	go func() {
		_, err := ExecuteContext(ctx, plan, db.Relations(), Options{Threads: 4, StreamOutput: "Res", Sink: sink})
		done <- err
	}()
	// Consume a few rows — proof the stream yields before completion — then
	// walk away and cancel.
	for i := 0; i < 3; i++ {
		<-sink.ch
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
